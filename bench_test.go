package mtcache

// This file regenerates every table and figure of the paper's evaluation
// (§6) as Go benchmarks, plus ablation benches for the design choices in
// DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// Numbers are reported with b.ReportMetric under the names the paper uses
// (wips, backend_cpu_pct, ...). cmd/mtbench prints the same experiments as
// formatted tables at a larger scale.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/opt"
	"mtcache/internal/sim"
	"mtcache/internal/sql"
	"mtcache/internal/tpcw"
)

// benchScale keeps bench runtime reasonable; cmd/mtbench defaults higher.
var benchConfig = tpcw.Config{Items: 300, Customers: 600, OrdersPerCustomer: 0.9, Seed: 20030609}

var (
	calOnce sync.Once
	calRes  *sim.CalibrationResult
	calErr  error
)

func calibration(b *testing.B) *sim.CalibrationResult {
	b.Helper()
	calOnce.Do(func() {
		calRes, calErr = sim.Calibrate(benchConfig, 6)
	})
	if calErr != nil {
		b.Fatal(calErr)
	}
	return calRes
}

// BenchmarkWorkloadMix regenerates the §6.1 workload-mix table and checks
// the Browse/Order split the paper reports (95/5, 80/20, 50/50).
func BenchmarkWorkloadMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range tpcw.Workloads() {
			_ = tpcw.BrowseShare(w)
		}
	}
	b.ReportMetric(tpcw.BrowseShare(tpcw.Browsing), "browsing_browse_pct")
	b.ReportMetric(tpcw.BrowseShare(tpcw.Shopping), "shopping_browse_pct")
	b.ReportMetric(tpcw.BrowseShare(tpcw.Ordering), "ordering_browse_pct")
}

// BenchmarkBaselineNoCache regenerates the §6.2.1 baseline table: WIPS with
// all database work on the backend at ~90% CPU (paper: 50 / 82 / 283).
func BenchmarkBaselineNoCache(b *testing.B) {
	cal := calibration(b)
	var rows []sim.BaselineRow
	for i := 0; i < b.N; i++ {
		rows = sim.ExperimentBaseline(cal, 5)
	}
	for _, r := range rows {
		b.ReportMetric(r.WIPS, "wips_"+r.Workload.String())
	}
}

// BenchmarkScaleoutWIPS regenerates figures 6(a) and 6(b): WIPS and backend
// CPU load versus the number of web/cache servers, caching enabled.
func BenchmarkScaleoutWIPS(b *testing.B) {
	cal := calibration(b)
	var pts []sim.ScaleoutPoint
	for i := 0; i < b.N; i++ {
		pts = sim.ExperimentScaleout(cal, 5)
	}
	for _, p := range pts {
		if p.Servers == 1 || p.Servers == 5 {
			prefix := fmt.Sprintf("%s_%dsrv", p.Workload, p.Servers)
			b.ReportMetric(p.WIPS, "wips_"+prefix)
			b.ReportMetric(p.BackendUtil*100, "backendcpu_"+prefix)
		}
	}
}

// BenchmarkReplicationOverhead regenerates §6.2.2: backend throughput with
// the log reader on vs off (paper: 283 → 311, ~10%) and the idle mid-tier
// machine's apply CPU (paper: ~15%).
func BenchmarkReplicationOverhead(b *testing.B) {
	cal := calibration(b)
	var r sim.ReplOverheadResult
	for i := 0; i < b.N; i++ {
		r = sim.ExperimentReplicationOverhead(cal)
	}
	b.ReportMetric(r.WIPSReaderOn, "wips_reader_on")
	b.ReportMetric(r.WIPSReaderOff, "wips_reader_off")
	b.ReportMetric(r.ReductionPct, "backend_overhead_pct")
	b.ReportMetric(r.IdleCacheApplyUtil*100, "idle_cache_apply_pct")
}

// BenchmarkReplicationLatency regenerates §6.2.3 on the live pipeline:
// average commit-to-commit delay, light vs heavy load (paper: 0.55s/1.67s).
func BenchmarkReplicationLatency(b *testing.B) {
	backend := NewBackend("latbench")
	if err := tpcw.Load(backend, benchConfig); err != nil {
		b.Fatal(err)
	}
	cache, err := NewCache("cache1", backend, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := tpcw.SetupCache(cache); err != nil {
		b.Fatal(err)
	}
	app := tpcw.NewApp(ConnectCache(cache), benchConfig)
	var res sim.ReplLatencyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = sim.ExperimentReplicationLatency(backend, app,
			30*time.Millisecond, 400*time.Millisecond, 400*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LightLoadMean.Seconds(), "light_latency_s")
	b.ReportMetric(res.HeavyLoadMean.Seconds(), "heavy_latency_s")
}

// ---------------------------------------------------------------------
// Ablation benches (DESIGN.md §4)
// ---------------------------------------------------------------------

// dynBench builds the paper's Cust1000 scenario: a backend customer table
// plus a cache holding the cached view.
func dynBench(b *testing.B, options *Options) (*Backend, *Cache) {
	b.Helper()
	backend := NewBackend("backend")
	err := backend.ExecScript(`
		CREATE TABLE customer (
			cid INT PRIMARY KEY,
			cname VARCHAR(40) NOT NULL,
			caddress VARCHAR(60)
		);`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 20000; i += 500 {
		stmt := "INSERT INTO customer (cid, cname, caddress) VALUES "
		for j := i; j < i+500; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'cust%d', 'addr%d')", j, j, j)
		}
		if _, err := backend.Exec(stmt, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := backend.DB.Analyze(); err != nil {
		b.Fatal(err)
	}
	cache, err := NewCache("cache1", backend, options)
	if err != nil {
		b.Fatal(err)
	}
	if err := cache.CreateCachedView(`CREATE CACHED VIEW Cust1000 AS
		SELECT cid, cname, caddress FROM customer WHERE cid <= 1000`); err != nil {
		b.Fatal(err)
	}
	return backend, cache
}

// BenchmarkDynamicPlanVsStatic compares the three strategies for
// parameterized queries (§5.1): one cached dynamic plan (the paper's
// contribution), reoptimizing on every call, and a static always-remote
// plan. The dynamic plan should approach local-plan speed for in-view
// parameters without any reoptimization.
func BenchmarkDynamicPlanVsStatic(b *testing.B) {
	query := "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid"

	b.Run("dynamic-cached-plan", func(b *testing.B) {
		_, cache := dynBench(b, nil)
		params := Params{"cid": Int(500)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Exec(query, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reoptimize-every-call", func(b *testing.B) {
		_, cache := dynBench(b, nil)
		params := Params{"cid": Int(500)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.DB.InvalidatePlans()
			if _, err := cache.Exec(query, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("static-remote", func(b *testing.B) {
		opts := DefaultOptions()
		opts.EnableDynamicPlans = false // guarded view match unusable → remote plan
		_, cache := dynBench(b, &opts)
		params := Params{"cid": Int(500)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Exec(query, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChoosePlanPullup measures §5.1.2: with pull-up the guard-false
// branch ships the whole join to the backend as one query; without it the
// ChoosePlan freezes at the leaf.
func BenchmarkChoosePlanPullup(b *testing.B) {
	setup := func(b *testing.B, pullUp bool) *Cache {
		opts := DefaultOptions()
		opts.PullUpChoosePlan = pullUp
		backend, _ := dynBench(b, &opts)
		if err := backend.ExecScript(`CREATE TABLE orders (okey INT PRIMARY KEY, ckey INT, total FLOAT);
			CREATE INDEX ix_orders_ckey ON orders (ckey);`); err != nil {
			b.Fatal(err)
		}
		for i := 1; i <= 4000; i += 500 {
			stmt := "INSERT INTO orders (okey, ckey, total) VALUES "
			for j := i; j < i+500; j++ {
				if j > i {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, %d, %d.5)", j, j%20000+1, j)
			}
			backend.Exec(stmt, nil)
		}
		backend.DB.Analyze()
		// Refresh the cache's shadow of the new table.
		cache2, err := NewCache("cache2", backend, &opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := cache2.CreateCachedView(`CREATE CACHED VIEW Cust1000 AS
			SELECT cid, cname, caddress FROM customer WHERE cid <= 1000`); err != nil {
			b.Fatal(err)
		}
		return cache2
	}
	query := `SELECT c.cname, o.total FROM customer c, orders o
		WHERE c.cid <= @key AND c.cid = o.ckey AND o.okey <= 200`
	for _, mode := range []struct {
		name   string
		pullUp bool
	}{{"pullup-on", true}, {"pullup-off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cache := setup(b, mode.pullUp)
			params := Params{"key": Int(15000)} // guard false → remote branch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cache.Exec(query, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCostBasedVsAlwaysLocal is the DBCache-comparison ablation: a
// point query the backend can index-seek but the cache can only scan. The
// cost-based optimizer goes remote; the always-use-cache heuristic scans
// the local view.
func BenchmarkCostBasedVsAlwaysLocal(b *testing.B) {
	setup := func(b *testing.B, always bool) *Cache {
		opts := DefaultOptions()
		opts.AlwaysUseCache = always
		_, cache := dynBench(b, &opts)
		// Full-copy view without useful indexes for this predicate.
		if err := cache.CreateCachedView(`CREATE CACHED VIEW AllCust AS
			SELECT cname, caddress FROM customer`); err != nil {
			b.Fatal(err)
		}
		return cache
	}
	query := "SELECT cname FROM customer WHERE cid = 19999"
	for _, mode := range []struct {
		name   string
		always bool
	}{{"cost-based", false}, {"always-local", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cache := setup(b, mode.always)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cache.Exec(query, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemoteCostFactor sweeps the remote-cost multiplier on the
// paper's Cartesian-product example (§5: "it is cheaper to ship the
// individual tables to the local server and evaluate the join locally than
// performing the join remotely"). With the factor at 1.0 the optimizer may
// keep the expensive theta-join remote; as the factor grows — modeling a
// loaded backend — it switches to transferring both inputs and joining on
// the cache. remote_fragments reports how many DataTransfers the chosen
// plan contains (1 = join pushed remote, 2 = both tables shipped).
func BenchmarkRemoteCostFactor(b *testing.B) {
	query := `SELECT COUNT(*) FROM customer c, orders o
		WHERE c.cid <= 400 AND o.okey <= 400 AND c.cid < o.ckey`
	for _, factor := range []float64{1.0, 1.4, 2.0, 4.0} {
		b.Run(fmt.Sprintf("factor=%.1f", factor), func(b *testing.B) {
			opts := DefaultOptions()
			opts.RemoteCostFactor = factor
			backend, _ := dynBench(b, &opts)
			if err := backend.ExecScript(`CREATE TABLE orders (okey INT PRIMARY KEY, ckey INT, total FLOAT);`); err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= 2000; i += 500 {
				stmt := "INSERT INTO orders (okey, ckey, total) VALUES "
				for j := i; j < i+500; j++ {
					if j > i {
						stmt += ", "
					}
					stmt += fmt.Sprintf("(%d, %d, %d.5)", j, j%20000+1, j)
				}
				backend.Exec(stmt, nil)
			}
			backend.DB.Analyze()
			cache, err := NewCache("cache-sweep", backend, &opts)
			if err != nil {
				b.Fatal(err)
			}
			stmt := sql.MustParseSelect(query)
			env := optEnvForCache(cache)
			var fragments float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := opt.Optimize(stmt, env)
				if err != nil {
					b.Fatal(err)
				}
				fragments = float64(len(p.RemoteSQL))
			}
			b.ReportMetric(fragments, "remote_fragments")
		})
	}
}

func optEnvForCache(c *Cache) *opt.Env {
	o := c.DB.Options()
	return &opt.Env{Cat: c.DB.Catalog(), IsCache: true, Opts: o}
}

// BenchmarkShadowedStatsOptimization measures the paper's argument for
// local optimization (§5): optimizing with shadowed statistics takes
// microseconds, whereas remote optimization would pay a round trip per
// subexpression considered.
func BenchmarkShadowedStatsOptimization(b *testing.B) {
	_, cache := dynBench(b, nil)
	stmt := sql.MustParseSelect(`SELECT c.cname FROM customer c WHERE c.cid <= @cid`)
	env := optEnvForCache(cache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(stmt, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixedResultPlans measures §5.1.1 on a backend materialized view:
// with mixed results, an out-of-view parameter reads the view plus only the
// remainder of the base table.
func BenchmarkMixedResultPlans(b *testing.B) {
	setup := func(b *testing.B, allowMixed bool) *Backend {
		backend := NewBackend("backend")
		if err := backend.ExecScript(`CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40) NOT NULL);`); err != nil {
			b.Fatal(err)
		}
		for i := 1; i <= 10000; i += 500 {
			stmt := "INSERT INTO customer (cid, cname) VALUES "
			for j := i; j < i+500; j++ {
				if j > i {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, 'c%d')", j, j)
			}
			backend.Exec(stmt, nil)
		}
		backend.DB.Analyze()
		opts := DefaultOptions()
		opts.AllowMixedResults = allowMixed
		backend.DB.SetOptions(opts)
		if _, err := backend.Exec(`CREATE MATERIALIZED VIEW mv1000 AS
			SELECT cid, cname FROM customer WHERE cid <= 1000`, nil); err != nil {
			b.Fatal(err)
		}
		return backend
	}
	query := "SELECT cid, cname FROM customer WHERE cid <= @cid"
	for _, mode := range []struct {
		name  string
		mixed bool
	}{{"mixed-allowed", true}, {"mixed-disallowed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			backend := setup(b, mode.mixed)
			params := Params{"cid": Int(1200)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := backend.Exec(query, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Engine micro-benchmarks
// ---------------------------------------------------------------------

func BenchmarkPointQueryBackend(b *testing.B) {
	backend, _ := dynBench(b, nil)
	params := Params{"cid": Int(777)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Exec("SELECT cname FROM customer WHERE cid = @cid", params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalViewHitCache(b *testing.B) {
	_, cache := dynBench(b, nil)
	params := Params{"cid": Int(500)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Exec("SELECT cname FROM customer WHERE cid = @cid", params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestSellerQuery(b *testing.B) {
	cal := calibration(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cal.Cache.DB.Exec("EXEC getBestSellers 'ARTS'", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicationApplyThroughput(b *testing.B) {
	backend := NewBackend("replbench")
	if err := backend.ExecScript(`CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20));`); err != nil {
		b.Fatal(err)
	}
	cache, err := NewCache("c", backend, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := cache.CreateCachedView("CREATE CACHED VIEW vt AS SELECT a, b FROM t"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Exec(fmt.Sprintf("INSERT INTO t (a, b) VALUES (%d, 'x')", i), nil); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if err := backend.SyncReplication(); err != nil {
				b.Fatal(err)
			}
		}
	}
	backend.SyncReplication()
	_ = core.ConnectCache
}
