// Package mtcache is a reproduction of "MTCache: Transparent Mid-Tier
// Database Caching in SQL Server" (Larson, Goldstein, Zhou — SIGMOD 2003),
// built as a self-contained Go library.
//
// The package implements the complete stack the paper describes: a
// relational engine (parser, catalog, statistics, B-tree storage, write-
// ahead log, cost-based optimizer, Volcano executor), SQL Server-style
// transactional replication (articles, log reader, distribution agents),
// and MTCache itself — transparent mid-tier caching where
//
//   - a cache server holds a shadow database: the backend's schema,
//     statistics and permissions with empty tables;
//   - cached data is declared with CREATE CACHED VIEW; a matching
//     replication subscription is provisioned and populated automatically;
//   - every query is optimized cost-based with DataLocation as a physical
//     property, choosing local, remote or mixed execution;
//   - parameterized queries get dynamic plans (ChoosePlan) whose active
//     branch is selected at run time from the parameter values;
//   - inserts, updates, deletes and unknown stored procedures forward to
//     the backend transparently.
//
// Quick start:
//
//	backend := mtcache.NewBackend("prod")
//	backend.ExecScript(`CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40));`)
//	// ... load data ...
//	cache, _ := mtcache.NewCache("edge1", backend, nil)
//	cache.CreateCachedView(`CREATE CACHED VIEW hot AS
//	    SELECT cid, cname FROM customer WHERE cid <= 1000`)
//	conn := mtcache.ConnectCache(cache) // applications repoint here — nothing else changes
//	res, _ := conn.Exec("SELECT cname FROM customer WHERE cid = @cid",
//	    mtcache.Params{"cid": mtcache.Int(42)})
package mtcache

import (
	"time"

	"mtcache/internal/advisor"
	"mtcache/internal/core"
	"mtcache/internal/engine"
	"mtcache/internal/exec"
	"mtcache/internal/opt"
	"mtcache/internal/resilience"
	"mtcache/internal/router"
	"mtcache/internal/storage"
	"mtcache/internal/types"
	"mtcache/internal/wire"
)

// Backend is the authoritative database server with its replication runtime.
type Backend = core.BackendServer

// Cache is an MTCache mid-tier cache server.
type Cache = core.CacheServer

// Conn is an application connection; it can point at a backend or a cache
// and the application cannot tell the difference (the transparency the
// paper is named for).
type Conn = core.Conn

// Result is the outcome of one statement: rows for queries, an affected
// count for DML, plus executor counters.
type Result = engine.Result

// Params carries named parameter values (@name) for a statement.
type Params = exec.Params

// Value is one SQL value.
type Value = types.Value

// Options tunes the optimizer (remote cost factor, dynamic plans,
// ChoosePlan pull-up, mixed results, transfer costs).
type Options = opt.Options

// NewBackend creates an empty backend server.
func NewBackend(name string) *Backend { return core.NewBackend(name) }

// DurabilityOptions configures a durable store: data directory, sync policy
// (always/group/interval/none), segment size and automatic checkpointing.
type DurabilityOptions = storage.DurabilityOptions

// SyncPolicy selects when the WAL is fsynced relative to commit.
type SyncPolicy = storage.SyncPolicy

// ParseSyncPolicy parses "always", "group", "interval" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return storage.ParseSyncPolicy(s) }

// NewBackendDurable creates a backend whose commits are journaled to an
// on-disk WAL with group commit and checkpoints. When opts.Dir holds state
// from a previous run, recreate the schema and call DB.Recover() before
// serving.
func NewBackendDurable(name string, opts DurabilityOptions) (*Backend, error) {
	return core.NewBackendDurable(name, opts)
}

// HasDurableState reports whether dir holds a previous run's WAL segments or
// checkpoints — the recover-vs-load decision at boot.
func HasDurableState(dir string) bool { return storage.HasDurableState(nil, dir) }

// NewCache provisions a cache against a backend: shadow schema, shadowed
// statistics and permissions, update forwarding, cached-view hook.
// options may be nil for the paper-faithful defaults.
func NewCache(name string, backend *Backend, options *Options) (*Cache, error) {
	return core.NewCache(name, backend, options)
}

// DefaultOptions returns the paper-faithful optimizer configuration.
func DefaultOptions() Options { return opt.DefaultOptions() }

// ConnectBackend binds a Conn to the backend server.
func ConnectBackend(b *Backend) *Conn { return core.ConnectBackend(b) }

// ConnectCache binds a Conn to a cache server; this is the analog of
// redirecting an application's ODBC source (paper §4).
func ConnectCache(c *Cache) *Conn { return core.ConnectCache(c) }

// Int builds an INT value.
func Int(i int64) Value { return types.NewInt(i) }

// Float builds a FLOAT value.
func Float(f float64) Value { return types.NewFloat(f) }

// Str builds a VARCHAR value.
func Str(s string) Value { return types.NewString(s) }

// Bool builds a BOOL value.
func Bool(b bool) Value { return types.NewBool(b) }

// Time builds a DATETIME value.
func Time(t time.Time) Value { return types.NewTime(t) }

// Null is the SQL NULL value.
var Null = types.Null

// ExplainBackend returns the optimizer's plan for a query on the backend.
func ExplainBackend(b *Backend, query string) (string, error) { return b.DB.Explain(query) }

// ExplainCache returns the optimizer's plan for a query on a cache —
// showing DataTransfer boundaries, ChoosePlan branches and view usage.
func ExplainCache(c *Cache, query string) (string, error) { return c.DB.Explain(query) }

// WireServer exposes a backend over TCP (linked-server protocol plus pull
// subscriptions). Requests are handled concurrently, bounded by
// WireServerOptions.MaxInFlight.
type WireServer = wire.Server

// WireServerOptions tunes a WireServer (see ServeBackendOpts).
type WireServerOptions = wire.ServerOptions

// WireClient is a multiplexed TCP connection to a backend: any number of
// requests may be in flight concurrently, matched to responses by
// correlation ID. It fails hard on the first transport error; use
// DialBackendResilient for pooling and fault tolerance.
type WireClient = wire.Client

// ConnectionPool is a sized set of multiplexed backend connections
// (re-dialed lazily when broken); ResilientClient uses one internally.
type ConnectionPool = wire.Pool

// BackendClient is the client surface a RemoteCache needs — satisfied by
// both WireClient and ResilientClient.
type BackendClient = wire.BackendClient

// ResilientClient is a fault-tolerant backend link: a pool of multiplexed
// connections with per-request deadlines, bounded exponential backoff with
// jitter, and automatic lazy re-dial of broken pooled connections.
type ResilientClient = wire.ResilientClient

// RetryPolicy tunes the resilient client's retry behaviour and pool size.
type RetryPolicy = resilience.Policy

// DefaultRetryPolicy returns the standard retry policy (4 attempts, 10 ms
// base delay doubling to a 500 ms cap with ±25% jitter, 2 s request
// timeout, 4 pooled connections).
func DefaultRetryPolicy() RetryPolicy { return resilience.DefaultPolicy() }

// ErrBackendDown reports an unreachable backend (errors.Is-comparable).
var ErrBackendDown = resilience.ErrBackendDown

// ErrTimeout reports a request that exceeded its deadline
// (errors.Is-comparable).
var ErrTimeout = resilience.ErrTimeout

// FaultProxy is a fault-injecting TCP proxy for chaos testing.
type FaultProxy = wire.FaultProxy

// FaultConfig configures a FaultProxy's injected failures.
type FaultConfig = wire.FaultConfig

// RemoteCache is a cache server connected to its backend over TCP.
type RemoteCache = wire.RemoteCache

// ServeBackend starts a TCP server for a backend on addr (use
// "127.0.0.1:0" to pick a free port; see WireServer.Addr).
func ServeBackend(b *Backend, addr string) (*WireServer, error) { return wire.Serve(b, addr) }

// ServeBackendOpts is ServeBackend with explicit server options (e.g. the
// in-flight request bound).
func ServeBackendOpts(b *Backend, addr string, opts WireServerOptions) (*WireServer, error) {
	return wire.ServeOpts(b, addr, opts)
}

// DialBackend connects to a backend's wire server.
func DialBackend(addr string, timeout time.Duration) (*WireClient, error) {
	return wire.Dial(addr, timeout)
}

// DialBackendResilient connects to a backend's wire server with retry,
// backoff and automatic re-dial under the given policy.
func DialBackendResilient(addr string, policy RetryPolicy) (*ResilientClient, error) {
	return wire.DialResilient(addr, policy, nil)
}

// NewFaultProxy starts a fault-injecting TCP proxy in front of target;
// dial the proxy's Addr instead of the target to test failure handling.
func NewFaultProxy(addr, target string, seed int64) (*FaultProxy, error) {
	return wire.NewFaultProxy(addr, target, seed)
}

// NewRemoteCache provisions a cache over a TCP client connection (bare or
// resilient).
func NewRemoteCache(name string, client BackendClient, options *Options) (*RemoteCache, error) {
	return wire.NewRemoteCache(name, client, options)
}

// NewRemoteCacheDurable is NewRemoteCache plus a data directory the cache
// checkpoints to: on restart, cached views restore from the checkpoint and
// resume their change streams at the checkpointed LSN instead of reseeding.
func NewRemoteCacheDurable(name string, client BackendClient, options *Options, dataDir string) (*RemoteCache, error) {
	return wire.NewRemoteCacheDurable(name, client, options, dataDir)
}

// ServeCache exposes a cache server over TCP so session routers can send it
// application traffic (queries gated on the session's read-your-writes
// watermark, forwarded DML, applied-LSN probes).
func ServeCache(c *RemoteCache, addr string, opts WireServerOptions) (*WireServer, error) {
	return wire.ServeCache(c, addr, opts)
}

// SessionRouter routes application sessions over a cache fleet: each session
// is hash-pinned to a cache, spills to the next live cache on failure, and
// reads its own writes — the router tracks the backend commit LSN of every
// update and gates reads on the cache having replicated that far (bypassing
// to the backend when it has not).
type SessionRouter = router.Router

// SessionRouterConfig describes the fleet a SessionRouter fronts: the
// backend address, the cache addresses in fleet order, and the pool/timeout/
// staleness-wait knobs.
type SessionRouterConfig = router.Config

// RouterSession is one application session routed over the fleet; its Conn
// method yields the same opaque connection a local server would.
type RouterSession = router.Session

// NewSessionRouter builds a router over a fleet of already-serving cache
// processes plus their backend.
func NewSessionRouter(cfg SessionRouterConfig) (*SessionRouter, error) { return router.New(cfg) }

// WorkloadItem is one weighted statement for the caching advisor.
type WorkloadItem = advisor.WorkloadItem

// Advice is the caching advisor's output: recommended cached views and
// stored-procedure placements.
type Advice = advisor.Advice

// Advise analyzes a weighted workload against a backend and recommends a
// caching strategy — the design tool the paper lists as future work (§7).
func Advise(b *Backend, workload []WorkloadItem) (*Advice, error) {
	return advisor.Analyze(b.DB.Catalog(), workload, advisor.DefaultOptions())
}
