package catalog

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"mtcache/internal/sql"
)

// Snapshot is a serializable image of a catalog: the DDL script that
// recreates the schema, the statistics for every table, the permission
// grants, and the stored-procedure texts. It is what a cache server imports
// to build its shadow database (paper §4: "an automatically generated script
// that configures the cache server and sets up the shadow database").
type Snapshot struct {
	Script string                 // CREATE TABLE / INDEX / VIEW statements
	Stats  map[string]*TableStats // keyed by lower-cased table name
	Perms  []Permission
	Procs  []ProcText
}

// ProcText carries one stored procedure as source text so the receiving
// server re-parses it (procedures are not copied into the shadow by default;
// the DBA selects which to copy — paper §5.2).
type ProcText struct {
	Name string
	Text string
}

// ShadowScript generates the DDL script that recreates this catalog's
// schema: tables with constraints, indexes and (non-cached) views. Data is
// deliberately absent — shadow tables are empty.
func ShadowScript(c *Catalog) string {
	var b strings.Builder
	for _, t := range c.Tables() {
		if t.IsView {
			continue
		}
		writeCreateTable(&b, t)
		for _, idx := range t.Indexes {
			if strings.HasPrefix(idx.Name, "pk_") {
				continue // primary key index is implied by the table DDL
			}
			cols := make([]string, len(idx.Columns))
			for i, ord := range idx.Columns {
				cols[i] = t.Columns[ord].Name
			}
			uq := ""
			if idx.Unique {
				uq = "UNIQUE "
			}
			fmt.Fprintf(&b, "CREATE %sINDEX %s ON %s (%s);\n", uq, idx.Name, t.Name, strings.Join(cols, ", "))
		}
	}
	for _, t := range c.Tables() {
		if !t.IsView || t.Cached {
			continue // cached views are created by the DBA's view script, not the shadow script
		}
		kw := "VIEW"
		if t.Materialized {
			kw = "MATERIALIZED VIEW"
		}
		fmt.Fprintf(&b, "CREATE %s %s AS %s;\n", kw, t.Name, sql.Deparse(t.ViewDef))
	}
	return b.String()
}

func writeCreateTable(b *strings.Builder, t *Table) {
	fmt.Fprintf(b, "CREATE TABLE %s (", t.Name)
	singlePK := len(t.PrimaryKey) == 1
	for i, col := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", col.Name, col.Type)
		if singlePK && t.PrimaryKey[0] == i {
			b.WriteString(" PRIMARY KEY")
		} else if col.NotNull {
			b.WriteString(" NOT NULL")
		}
		if col.Default != nil {
			fmt.Fprintf(b, " DEFAULT %s", sql.DeparseExpr(col.Default))
		}
	}
	if len(t.PrimaryKey) > 1 {
		names := make([]string, len(t.PrimaryKey))
		for i, ord := range t.PrimaryKey {
			names[i] = t.Columns[ord].Name
		}
		fmt.Fprintf(b, ", PRIMARY KEY (%s)", strings.Join(names, ", "))
	}
	b.WriteString(");\n")
}

// ExportSnapshot captures the catalog for shipment to a cache server.
func ExportSnapshot(c *Catalog) *Snapshot {
	snap := &Snapshot{
		Script: ShadowScript(c),
		Stats:  make(map[string]*TableStats),
		Perms:  c.Permissions(),
	}
	for _, t := range c.Tables() {
		if t.Stats != nil {
			snap.Stats[key(t.Name)] = t.Stats.Clone()
		}
	}
	for _, p := range c.Procedures() {
		snap.Procs = append(snap.Procs, ProcText{Name: p.Name, Text: p.Text})
	}
	return snap
}

// Encode serializes the snapshot for the wire.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("catalog: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("catalog: decode snapshot: %w", err)
	}
	return &s, nil
}
