package catalog

import (
	"strings"
	"testing"

	"mtcache/internal/sql"
	"mtcache/internal/types"
)

func sampleTable() *Table {
	return &Table{
		Name: "customer",
		Columns: []Column{
			{Name: "cid", Type: types.KindInt, NotNull: true},
			{Name: "cname", Type: types.KindString},
			{Name: "cbalance", Type: types.KindFloat},
		},
		PrimaryKey: []int{0},
	}
}

func TestAddLookupDropTable(t *testing.T) {
	c := New()
	if err := c.AddTable(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if c.Table("CUSTOMER") == nil {
		t.Error("lookup should be case-insensitive")
	}
	if err := c.AddTable(sampleTable()); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := c.DropTable("customer"); err != nil {
		t.Fatal(err)
	}
	if c.Table("customer") != nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("customer"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := sampleTable()
	if tbl.ColumnIndex("CNAME") != 1 {
		t.Error("case-insensitive column lookup")
	}
	if tbl.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	if tbl.Column("cid").Type != types.KindInt {
		t.Error("column type")
	}
}

func TestIndexes(t *testing.T) {
	c := New()
	c.AddTable(sampleTable())
	if err := c.AddIndex("customer", &Index{Name: "ix_name", Columns: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex("customer", &Index{Name: "IX_NAME", Columns: []int{1}}); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := c.AddIndex("missing", &Index{Name: "x"}); err == nil {
		t.Error("index on missing table should fail")
	}
}

func TestPermissions(t *testing.T) {
	c := New()
	if !c.Allowed("anyone", "customer", "SELECT") {
		t.Error("empty grants mean open access")
	}
	c.Grant("web", "customer", "SELECT")
	if !c.Allowed("web", "customer", "select") {
		t.Error("granted access denied")
	}
	if c.Allowed("web", "customer", "DELETE") {
		t.Error("ungranted action allowed")
	}
	if c.Allowed("other", "customer", "SELECT") {
		t.Error("other user allowed")
	}
	c.Grant("admin", "*", "*")
	if !c.Allowed("admin", "orders", "DELETE") {
		t.Error("wildcard grant")
	}
}

func TestProcedures(t *testing.T) {
	c := New()
	p := &Procedure{Name: "getCust", Text: "CREATE PROCEDURE getCust AS SELECT 1"}
	if err := c.AddProcedure(p); err != nil {
		t.Fatal(err)
	}
	if c.Procedure("GETCUST") == nil {
		t.Error("case-insensitive proc lookup")
	}
	if err := c.AddProcedure(p); err == nil {
		t.Error("duplicate proc should fail")
	}
	if err := c.DropProcedure("getCust"); err != nil {
		t.Fatal(err)
	}
	if c.Procedure("getCust") != nil {
		t.Error("dropped proc visible")
	}
}

func intRows(vals ...int64) []types.Row {
	rows := make([]types.Row, len(vals))
	for i, v := range vals {
		rows[i] = types.Row{types.NewInt(v)}
	}
	return rows
}

func TestBuildTableStats(t *testing.T) {
	rows := intRows(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	s := BuildTableStats([]string{"a"}, rows)
	if s.RowCount != 10 {
		t.Errorf("rowcount %d", s.RowCount)
	}
	cs := s.Col("a")
	if cs.Distinct != 10 {
		t.Errorf("distinct %d", cs.Distinct)
	}
	if cs.Min.Int() != 1 || cs.Max.Int() != 10 {
		t.Errorf("min/max %v %v", cs.Min, cs.Max)
	}
}

func TestStatsWithNulls(t *testing.T) {
	rows := []types.Row{{types.NewInt(1)}, {types.Null}, {types.NewInt(3)}}
	s := BuildTableStats([]string{"a"}, rows)
	cs := s.Col("a")
	if cs.NullCount != 1 || cs.Distinct != 2 {
		t.Errorf("nulls=%d distinct=%d", cs.NullCount, cs.Distinct)
	}
}

func TestSelectivityEq(t *testing.T) {
	// 100 rows, values 0..99 — each value should be ~1%.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	s := BuildTableStats([]string{"a"}, intRows(vals...))
	sel := s.Col("a").SelectivityEq(types.NewInt(50))
	if sel < 0.005 || sel > 0.05 {
		t.Errorf("eq selectivity %f, want ~0.01", sel)
	}
}

func TestSelectivityEqSkewed(t *testing.T) {
	// 90 copies of 1, then 2..11 once each.
	vals := make([]int64, 0, 100)
	for i := 0; i < 90; i++ {
		vals = append(vals, 1)
	}
	for i := int64(2); i <= 11; i++ {
		vals = append(vals, i)
	}
	s := BuildTableStats([]string{"a"}, intRows(vals...))
	hot := s.Col("a").SelectivityEq(types.NewInt(1))
	cold := s.Col("a").SelectivityEq(types.NewInt(7))
	if hot < cold {
		t.Errorf("skew not captured: hot=%f cold=%f", hot, cold)
	}
}

func TestSelectivityRange(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	s := BuildTableStats([]string{"a"}, intRows(vals...))
	cs := s.Col("a")
	// [0, 499] should be ~50%
	sel := cs.SelectivityRange(types.NewInt(0), types.NewInt(499), false, false)
	if sel < 0.4 || sel > 0.6 {
		t.Errorf("range selectivity %f, want ~0.5", sel)
	}
	// unbounded hi
	sel = cs.SelectivityRange(types.NewInt(900), types.Value{}, false, false)
	if sel < 0.05 || sel > 0.2 {
		t.Errorf("tail selectivity %f, want ~0.1", sel)
	}
	// full range
	sel = cs.SelectivityRange(types.Value{}, types.Value{}, false, false)
	if sel < 0.95 {
		t.Errorf("full range %f, want ~1", sel)
	}
}

func TestFractionLE(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i + 1) // 1..1000
	}
	s := BuildTableStats([]string{"cid"}, intRows(vals...))
	cs := s.Col("cid")
	f := cs.FractionLE(types.NewInt(1000))
	if f != 1 {
		t.Errorf("FractionLE(max)=%f", f)
	}
	f = cs.FractionLE(types.NewInt(0))
	if f != 0 {
		t.Errorf("FractionLE(below min)=%f", f)
	}
	f = cs.FractionLE(types.NewInt(500))
	if f < 0.45 || f > 0.55 {
		t.Errorf("FractionLE(mid)=%f, want ~0.5", f)
	}
}

func TestStatsClone(t *testing.T) {
	s := BuildTableStats([]string{"a"}, intRows(1, 2, 3))
	c := s.Clone()
	c.RowCount = 99
	c.Col("a").Distinct = 99
	if s.RowCount != 3 || s.Col("a").Distinct != 3 {
		t.Error("clone aliases original")
	}
}

func TestShadowScriptRoundTrip(t *testing.T) {
	c := New()
	tbl := sampleTable()
	c.AddTable(tbl)
	c.AddIndex("customer", &Index{Name: "ix_cname", Columns: []int{1}})
	c.AddTable(&Table{
		Name:    "v_top",
		IsView:  true,
		ViewDef: sql.MustParseSelect("SELECT cid FROM customer WHERE cid < 100"),
		Columns: []Column{{Name: "cid", Type: types.KindInt}},
	})
	script := ShadowScript(c)
	if !strings.Contains(script, "CREATE TABLE customer") {
		t.Errorf("script missing table:\n%s", script)
	}
	if !strings.Contains(script, "CREATE INDEX ix_cname") {
		t.Errorf("script missing index:\n%s", script)
	}
	if !strings.Contains(script, "CREATE VIEW v_top") {
		t.Errorf("script missing view:\n%s", script)
	}
	// script must re-parse
	if _, err := sql.ParseScript(script); err != nil {
		t.Fatalf("shadow script does not re-parse: %v\n%s", err, script)
	}
}

func TestShadowScriptExcludesCachedViews(t *testing.T) {
	c := New()
	c.AddTable(sampleTable())
	c.AddTable(&Table{
		Name: "Cust1000", IsView: true, Cached: true, Materialized: true,
		ViewDef: sql.MustParseSelect("SELECT cid FROM customer WHERE cid <= 1000"),
	})
	if strings.Contains(ShadowScript(c), "Cust1000") {
		t.Error("cached views must not be in the shadow script")
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	c := New()
	tbl := sampleTable()
	tbl.Stats = BuildTableStats([]string{"cid", "cname", "cbalance"}, []types.Row{
		{types.NewInt(1), types.NewString("a"), types.NewFloat(1.5)},
		{types.NewInt(2), types.NewString("b"), types.NewFloat(2.5)},
	})
	c.AddTable(tbl)
	c.Grant("web", "customer", "SELECT")
	c.AddProcedure(&Procedure{Name: "p1", Text: "CREATE PROCEDURE p1 AS SELECT cid FROM customer"})

	snap := ExportSnapshot(c)
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats["customer"].RowCount != 2 {
		t.Error("stats lost in round trip")
	}
	if len(got.Perms) != 1 || got.Perms[0].User != "web" {
		t.Error("perms lost")
	}
	if len(got.Procs) != 1 || got.Procs[0].Name != "p1" {
		t.Error("procs lost")
	}
	if !strings.Contains(got.Script, "CREATE TABLE customer") {
		t.Error("script lost")
	}
}

func TestCachedAndMaterializedViewLists(t *testing.T) {
	c := New()
	c.AddTable(sampleTable())
	c.AddTable(&Table{Name: "cv", IsView: true, Cached: true, Materialized: true})
	c.AddTable(&Table{Name: "mv", IsView: true, Materialized: true})
	if len(c.CachedViews()) != 1 || c.CachedViews()[0].Name != "cv" {
		t.Error("cached views")
	}
	if len(c.MaterializedViews()) != 1 || c.MaterializedViews()[0].Name != "mv" {
		t.Error("materialized views")
	}
}
