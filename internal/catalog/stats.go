package catalog

import (
	"sort"

	"mtcache/internal/types"
)

// DefaultHistogramBuckets is the equi-depth histogram resolution.
const DefaultHistogramBuckets = 32

// Bucket is one equi-depth histogram bucket: rows with value in
// (previous bucket's Hi, Hi].
type Bucket struct {
	Hi       types.Value
	Count    int64
	Distinct int64
}

// ColumnStats summarizes the value distribution of one column.
type ColumnStats struct {
	Distinct  int64
	NullCount int64
	Min, Max  types.Value
	Buckets   []Bucket
}

// TableStats summarizes one table. On an MTCache shadow table, TableStats
// reflects the *backend* table even though the local table is empty —
// without this, local cost-based optimization would be impossible
// (paper §3, "statistics ... reflect the data on the backend server").
type TableStats struct {
	RowCount    int64
	AvgRowBytes float64
	Columns     map[string]*ColumnStats
}

// NewTableStats returns empty stats.
func NewTableStats() *TableStats {
	return &TableStats{Columns: make(map[string]*ColumnStats)}
}

// Clone deep-copies the stats, so a shadow catalog can own its copy.
func (s *TableStats) Clone() *TableStats {
	out := &TableStats{RowCount: s.RowCount, AvgRowBytes: s.AvgRowBytes, Columns: make(map[string]*ColumnStats, len(s.Columns))}
	for name, cs := range s.Columns {
		c := *cs
		c.Buckets = append([]Bucket(nil), cs.Buckets...)
		out.Columns[name] = &c
	}
	return out
}

// BuildTableStats computes statistics from a full table scan. rows holds the
// table's rows; cols the column names in ordinal order.
func BuildTableStats(cols []string, rows []types.Row) *TableStats {
	s := NewTableStats()
	s.RowCount = int64(len(rows))
	var bytes int64
	for _, r := range rows {
		bytes += int64(rowBytes(r))
	}
	if len(rows) > 0 {
		s.AvgRowBytes = float64(bytes) / float64(len(rows))
	} else {
		s.AvgRowBytes = 32
	}
	for i, name := range cols {
		vals := make([]types.Value, 0, len(rows))
		nulls := int64(0)
		for _, r := range rows {
			if i >= len(r) || r[i].IsNull() {
				nulls++
				continue
			}
			vals = append(vals, r[i])
		}
		s.Columns[keyCol(name)] = buildColumnStats(vals, nulls)
	}
	return s
}

func keyCol(name string) string {
	b := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}

// Col returns stats for the named column, or nil.
func (s *TableStats) Col(name string) *ColumnStats {
	if s == nil {
		return nil
	}
	return s.Columns[keyCol(name)]
}

// SetCol installs stats for the named column.
func (s *TableStats) SetCol(name string, cs *ColumnStats) {
	s.Columns[keyCol(name)] = cs
}

func rowBytes(r types.Row) int {
	n := 0
	for _, v := range r {
		switch v.K {
		case types.KindString:
			n += len(v.S) + 4
		default:
			n += 9
		}
	}
	return n
}

func buildColumnStats(vals []types.Value, nulls int64) *ColumnStats {
	cs := &ColumnStats{NullCount: nulls}
	if len(vals) == 0 {
		return cs
	}
	sorted := append([]types.Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return types.Compare(sorted[i], sorted[j]) < 0 })
	cs.Min, cs.Max = sorted[0], sorted[len(sorted)-1]

	// Equi-depth buckets over the sorted values, counting distincts per bucket.
	nb := DefaultHistogramBuckets
	if len(sorted) < nb {
		nb = len(sorted)
	}
	per := len(sorted) / nb
	if per == 0 {
		per = 1
	}
	totalDistinct := int64(0)
	start := 0
	for start < len(sorted) {
		end := start + per
		if end > len(sorted) || len(cs.Buckets) == nb-1 {
			end = len(sorted)
		}
		// extend to include all duplicates of the boundary value so buckets
		// have distinct Hi values
		for end < len(sorted) && types.Equal(sorted[end-1], sorted[end]) {
			end++
		}
		distinct := int64(1)
		for i := start + 1; i < end; i++ {
			if !types.Equal(sorted[i], sorted[i-1]) {
				distinct++
			}
		}
		totalDistinct += distinct
		cs.Buckets = append(cs.Buckets, Bucket{
			Hi:       sorted[end-1],
			Count:    int64(end - start),
			Distinct: distinct,
		})
		start = end
	}
	cs.Distinct = totalDistinct
	return cs
}

// SelectivityEq estimates the fraction of rows with column = v.
func (cs *ColumnStats) SelectivityEq(v types.Value) float64 {
	if cs == nil || cs.Distinct == 0 {
		return 0.1
	}
	total := cs.total()
	if total == 0 {
		return 0
	}
	// Locate v's bucket and use its local density.
	lo := types.Value{}
	for i, b := range cs.Buckets {
		if types.Compare(v, b.Hi) <= 0 {
			if i > 0 {
				lo = cs.Buckets[i-1].Hi
			}
			_ = lo
			d := b.Distinct
			if d == 0 {
				d = 1
			}
			return float64(b.Count) / float64(d) / float64(total)
		}
	}
	return 0.5 / float64(total) // beyond max: essentially no rows
}

// SelectivityRange estimates the fraction of rows in [lo, hi]; either bound
// may be the zero Value meaning unbounded. loOpen/hiOpen exclude the bound.
func (cs *ColumnStats) SelectivityRange(lo, hi types.Value, loOpen, hiOpen bool) float64 {
	if cs == nil || len(cs.Buckets) == 0 {
		return 0.3
	}
	total := cs.total()
	if total == 0 {
		return 0
	}
	var count float64
	prev := cs.Min
	first := true
	for _, b := range cs.Buckets {
		bLo, bHi := prev, b.Hi
		if first {
			bLo = cs.Min
		}
		count += float64(b.Count) * overlapFraction(bLo, bHi, lo, hi, first)
		prev = b.Hi
		first = false
	}
	sel := count / float64(total)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	// Open bounds shave off roughly one distinct value's worth.
	if (loOpen || hiOpen) && cs.Distinct > 0 {
		sel -= 1 / float64(cs.Distinct) * 0.5
		if sel < 0 {
			sel = 0
		}
	}
	return sel
}

// overlapFraction estimates what fraction of bucket (bLo, bHi] falls inside
// the query range [lo, hi]. Interpolation is linear for numeric types and
// all-or-nothing for other types.
func overlapFraction(bLo, bHi, lo, hi types.Value, firstBucket bool) float64 {
	// Entirely below lo?
	if !lo.IsNull() && types.Compare(bHi, lo) < 0 {
		return 0
	}
	// Entirely above hi?
	if !hi.IsNull() && types.Compare(bLo, hi) > 0 && !firstBucket {
		return 0
	}
	numeric := bLo.K == types.KindInt || bLo.K == types.KindFloat
	if !numeric {
		// Within range (at least partially): count it if the bucket top is
		// within bounds.
		inLo := lo.IsNull() || types.Compare(bHi, lo) >= 0
		inHi := hi.IsNull() || types.Compare(bLo, hi) <= 0 || firstBucket
		if inLo && inHi {
			return 1
		}
		return 0
	}
	bl, bh := bLo.Float(), bHi.Float()
	width := bh - bl
	effLo, effHi := bl, bh
	if !lo.IsNull() && lo.Float() > effLo {
		effLo = lo.Float()
	}
	if !hi.IsNull() && hi.Float() < effHi {
		effHi = hi.Float()
	}
	if effHi < effLo {
		return 0
	}
	if width <= 0 {
		return 1
	}
	f := (effHi - effLo) / width
	if f > 1 {
		f = 1
	}
	return f
}

func (cs *ColumnStats) total() int64 {
	var n int64
	for _, b := range cs.Buckets {
		n += b.Count
	}
	return n
}

// FractionLE estimates P(column <= v) over non-null values, used by the
// optimizer's dynamic-plan frequency estimate Fl (paper §5.1: parameter
// assumed uniform between the column's min and max).
func (cs *ColumnStats) FractionLE(v types.Value) float64 {
	if cs == nil || cs.Min.IsNull() || cs.Max.IsNull() {
		return 0.5
	}
	if types.Compare(v, cs.Min) < 0 {
		return 0
	}
	if types.Compare(v, cs.Max) >= 0 {
		return 1
	}
	if cs.Min.K == types.KindInt || cs.Min.K == types.KindFloat {
		lo, hi := cs.Min.Float(), cs.Max.Float()
		if hi > lo {
			return (v.Float() - lo) / (hi - lo)
		}
	}
	return cs.SelectivityRange(types.Value{}, v, false, false)
}
