// Package catalog maintains database metadata: tables, columns, indexes,
// views, stored procedures, permissions and optimizer statistics.
//
// The catalog is the piece MTCache "shadows": a cache server imports the
// backend's full catalog — schema, constraints, permissions and statistics —
// while keeping every table empty (paper §3). Shadowing lets the cache parse
// queries, perform view matching, check permissions and cost plans locally
// without contacting the backend.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    types.Kind
	NotNull bool
	Default sql.Expr // nil if none
}

// Index describes a secondary (or primary) index.
type Index struct {
	Name    string
	Table   string
	Columns []int // ordinals into the table's Columns
	Unique  bool
}

// Table describes a base table, view, materialized view or cached view.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []int // column ordinals; empty if none
	Indexes    []*Index

	// View fields. For cached views the definition is a select-project
	// expression over a table or materialized view on the *backend* server
	// (paper §3); for local materialized views it is over local tables.
	IsView       bool
	Materialized bool
	Cached       bool // MTCache cached view, maintained by replication
	ViewDef      *sql.SelectStmt

	// Virtual marks a read-only system table (sys.* DMV equivalents):
	// no storage, no indexes, rows produced on demand by RowsFn. Virtual
	// tables resolve through Catalog.Table but are excluded from Tables()
	// so view matching, the advisor, shadow export, ANALYZE and user
	// listings never see them.
	Virtual bool
	RowsFn  func() []types.Row

	Stats *TableStats
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	if i := t.ColumnIndex(name); i >= 0 {
		return &t.Columns[i]
	}
	return nil
}

// ColumnNames returns the column names in ordinal order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// Procedure is a stored procedure: a parameterized statement sequence.
type Procedure struct {
	Name   string
	Params []sql.ProcParam
	Body   []sql.Statement
	Text   string // original CREATE PROCEDURE text, for copying to caches
}

// Permission grants are deliberately simple: user -> object -> action set.
// They exist because the shadow database must replicate them so the cache
// can check permissions locally (paper §3).
type Permission struct {
	User   string
	Object string // table/view/proc name, or "*" for all
	Action string // "SELECT", "INSERT", "UPDATE", "DELETE", "EXEC", or "*"
}

// Catalog is the metadata store for one database. It is safe for concurrent
// use; DDL takes the write lock, lookups take the read lock.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	procs  map[string]*Procedure
	perms  []Permission
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		procs:  make(map[string]*Procedure),
	}
}

func key(name string) string { return strings.ToLower(name) }

// AddTable registers a table or view definition.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	if t.Stats == nil {
		t.Stats = NewTableStats()
	}
	c.tables[k] = t
	return nil
}

// PutVirtualTable registers (or replaces) a read-only virtual system
// table. Virtual tables are registered under their full dotted name
// ("sys.query_stats") and may be re-registered freely — a role-specific
// provider (backend repl health vs cache pull state) overrides the
// engine's default. Replacing a non-virtual table is refused.
func (c *Catalog) PutVirtualTable(t *Table) error {
	if t.RowsFn == nil {
		return fmt.Errorf("catalog: virtual table %s has no row provider", t.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if old, ok := c.tables[k]; ok && !old.Virtual {
		return fmt.Errorf("catalog: %s exists and is not virtual", t.Name)
	}
	t.Virtual = true
	if t.Stats == nil {
		t.Stats = NewTableStats()
	}
	c.tables[k] = t
	return nil
}

// VirtualTables returns all virtual system tables sorted by name.
func (c *Catalog) VirtualTables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, 8)
	for _, t := range c.tables {
		if t.Virtual {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropTable removes a table and its indexes.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, k)
	return nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[key(name)]
}

// Tables returns all user tables sorted by name. Virtual system tables
// are deliberately excluded: every consumer of this listing — view
// matching, the advisor, shadow catalog export, ANALYZE, SHOW TABLES —
// must see only real user objects.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		if t.Virtual {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers an index on an existing table.
func (c *Catalog) AddIndex(tableName string, idx *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(tableName)]
	if !ok {
		return fmt.Errorf("catalog: table %s does not exist", tableName)
	}
	for _, existing := range t.Indexes {
		if strings.EqualFold(existing.Name, idx.Name) {
			return fmt.Errorf("catalog: index %s already exists on %s", idx.Name, tableName)
		}
	}
	idx.Table = t.Name
	t.Indexes = append(t.Indexes, idx)
	return nil
}

// AddProcedure registers a stored procedure.
func (c *Catalog) AddProcedure(p *Procedure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(p.Name)
	if _, ok := c.procs[k]; ok {
		return fmt.Errorf("catalog: procedure %s already exists", p.Name)
	}
	c.procs[k] = p
	return nil
}

// DropProcedure removes a stored procedure.
func (c *Catalog) DropProcedure(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.procs[k]; !ok {
		return fmt.Errorf("catalog: procedure %s does not exist", name)
	}
	delete(c.procs, k)
	return nil
}

// Procedure looks up a stored procedure, or nil. Whether a procedure is
// found locally decides where it runs: locally if present, else forwarded
// to the backend (paper §5.2).
func (c *Catalog) Procedure(name string) *Procedure {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.procs[key(name)]
}

// Procedures returns all stored procedures sorted by name.
func (c *Catalog) Procedures() []*Procedure {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Procedure, 0, len(c.procs))
	for _, p := range c.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Grant records a permission.
func (c *Catalog) Grant(user, object, action string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.perms = append(c.perms, Permission{User: user, Object: object, Action: strings.ToUpper(action)})
}

// Allowed checks a permission. An empty permission list means open access
// (single-user mode); otherwise a matching grant is required.
func (c *Catalog) Allowed(user, object, action string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.perms) == 0 {
		return true
	}
	action = strings.ToUpper(action)
	for _, p := range c.perms {
		if p.User != user && p.User != "*" {
			continue
		}
		if p.Object != "*" && !strings.EqualFold(p.Object, object) {
			continue
		}
		if p.Action == "*" || p.Action == action {
			return true
		}
	}
	return false
}

// Permissions returns a copy of all grants.
func (c *Catalog) Permissions() []Permission {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Permission(nil), c.perms...)
}

// CachedViews returns all cached views sorted by name.
func (c *Catalog) CachedViews() []*Table {
	var out []*Table
	for _, t := range c.Tables() {
		if t.Cached {
			out = append(out, t)
		}
	}
	return out
}

// MaterializedViews returns all materialized (non-cached) views.
func (c *Catalog) MaterializedViews() []*Table {
	var out []*Table
	for _, t := range c.Tables() {
		if t.Materialized && !t.Cached {
			out = append(out, t)
		}
	}
	return out
}
