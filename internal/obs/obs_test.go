package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mtcache/internal/metrics"
	"mtcache/internal/querystore"
	"mtcache/internal/trace"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func newObsServer(t *testing.T) (*httptest.Server, *metrics.Registry, *trace.Collector) {
	t.Helper()
	reg := metrics.NewRegistry()
	traces := trace.NewCollector(4)
	srv := httptest.NewServer(Handler(reg, traces))
	t.Cleanup(srv.Close)
	return srv, reg, traces
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	srv, reg, _ := newObsServer(t)
	reg.Counter("opt.chooseplan_local").Add(2)
	reg.Gauge("repl.lag_seconds.cv_item").Set(0.5)
	reg.Histogram("engine.execute_seconds").Observe(0.01)

	code, body, ctype := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("content type: %q", ctype)
	}
	for _, want := range []string{
		"# TYPE mtcache_opt_chooseplan_local counter",
		"mtcache_opt_chooseplan_local 2",
		"# TYPE mtcache_repl_lag_seconds_cv_item gauge",
		"# TYPE mtcache_engine_execute_seconds summary",
		`mtcache_engine_execute_seconds{quantile="0.5"}`,
		"mtcache_engine_execute_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsEndpointJSON(t *testing.T) {
	srv, reg, _ := newObsServer(t)
	reg.Counter("hits").Add(3)
	reg.Histogram("lat").Observe(1.5)

	code, body, ctype := get(t, srv.URL+"/metrics.json")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("status %d content-type %q", code, ctype)
	}
	var e metrics.Export
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if e.Counters["hits"] != 3 {
		t.Errorf("counters: %v", e.Counters)
	}
	if e.Histograms["lat"].Count != 1 || e.Histograms["lat"].Max != 1.5 {
		t.Errorf("histograms: %+v", e.Histograms)
	}
}

func TestTraceEndpoints(t *testing.T) {
	srv, _, traces := newObsServer(t)

	_, body, _ := get(t, srv.URL+"/debug/trace/last")
	if !strings.Contains(body, "(no traces recorded)") {
		t.Errorf("empty collector: %q", body)
	}

	tr := trace.New("", "cache.exec")
	tr.Root.Child("execute").Attr("chooseplan", "local").End()
	tr.Finish()
	traces.Add(tr)

	_, body, _ = get(t, srv.URL+"/debug/trace/last")
	for _, want := range []string{"trace " + tr.ID, "cache.exec", "execute", `chooseplan="local"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/trace/last missing %q:\n%s", want, body)
		}
	}

	tr2 := trace.New("", "cache.exec")
	tr2.Finish()
	traces.Add(tr2)
	_, body, _ = get(t, srv.URL+"/debug/traces")
	if !strings.Contains(body, tr.ID) || !strings.Contains(body, tr2.ID) {
		t.Errorf("/debug/traces should list both traces:\n%s", body)
	}
	if strings.Index(body, tr2.ID) > strings.Index(body, tr.ID) {
		t.Error("/debug/traces must be newest-first")
	}
}

func TestEventsAndQuerystoreEndpoints(t *testing.T) {
	srv, _, _ := newObsServer(t)
	querystore.Events.Reset()
	querystore.Default.Reset()
	t.Cleanup(func() {
		querystore.Events.Reset()
		querystore.Default.Reset()
	})

	code, body, ctype := get(t, srv.URL+"/debug/events")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("status %d content-type %q", code, ctype)
	}
	var events []querystore.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(events) != 0 {
		t.Fatalf("expected empty ring, got %d events", len(events))
	}

	querystore.Emit("checkpoint", "lsn", "42")
	querystore.Emit("gc_run", "versions", "7")
	_, body, _ = get(t, srv.URL+"/debug/events?n=1")
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != "gc_run" {
		t.Fatalf("?n=1 should return the newest event: %+v", events)
	}

	querystore.Default.Record(querystore.Exec{Shape: "SELECT 1", Variant: "local", Rows: 1})
	code, body, _ = get(t, srv.URL+"/debug/querystore")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var out struct {
		Enabled         bool                       `json:"enabled"`
		SlowThresholdMs float64                    `json:"slow_threshold_ms"`
		Shapes          []querystore.ShapeSnapshot `json:"shapes"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !out.Enabled || out.SlowThresholdMs <= 0 {
		t.Fatalf("enabled=%v slow_threshold_ms=%v", out.Enabled, out.SlowThresholdMs)
	}
	if len(out.Shapes) != 1 || out.Shapes[0].Shape != "SELECT 1" {
		t.Fatalf("shapes: %+v", out.Shapes)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	addr, closeFn, err := Serve("127.0.0.1:0", metrics.NewRegistry(), trace.NewCollector(1))
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("endpoint should refuse connections after close")
	}
}
