// Package obs exposes the process's observability state over HTTP:
//
//	/metrics           Prometheus text exposition of the metrics registry
//	/metrics.json      the same snapshot as JSON
//	/debug/trace/last  the most recent query trace, rendered as a text tree
//	/debug/traces      the recent-trace ring, newest first
//	/debug/status      JSON from registered Status sources (e.g. per-
//	                   subscription replication health: queue depth, apply
//	                   errors, staleness)
//	/debug/events      the structured event ring (repl resubscribes,
//	                   checkpoints, deadlock aborts, ...), newest first;
//	                   ?n=K limits the count
//	/debug/querystore  the query store: per-shape per-variant runtime stats
//	                   plus captured slow-query plans, as JSON
//
// Both server binaries mount it; tests hit it through httptest.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"mtcache/internal/metrics"
	"mtcache/internal/querystore"
	"mtcache/internal/trace"
)

// Status is a named source of structured health state, polled at request
// time and rendered as JSON under its name at /debug/status.
type Status struct {
	Name string
	Fn   func() any
}

// Handler returns the observability mux over a registry and a trace
// collector. nil arguments select the process-wide defaults. Status sources,
// if any, are served at /debug/status.
func Handler(reg *metrics.Registry, traces *trace.Collector, status ...Status) http.Handler {
	if reg == nil {
		reg = metrics.Default
	}
	if traces == nil {
		traces = trace.Traces
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WritePrometheus(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w) //nolint:errcheck — best-effort over HTTP
	})
	mux.HandleFunc("/debug/trace/last", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t := traces.Last()
		if t == nil {
			fmt.Fprintln(w, "(no traces recorded)")
			return
		}
		fmt.Fprint(w, trace.Render(t))
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		recent := traces.Recent(0)
		if len(recent) == 0 {
			fmt.Fprintln(w, "(no traces recorded)")
			return
		}
		for _, t := range recent {
			fmt.Fprint(w, trace.Render(t))
			fmt.Fprintln(w)
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		n := 0 // all
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		events := querystore.Events.Recent(n)
		if events == nil {
			events = []querystore.Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(events) //nolint:errcheck — best-effort over HTTP
	})
	mux.HandleFunc("/debug/querystore", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		shapes := querystore.Default.Snapshot()
		if shapes == nil {
			shapes = []querystore.ShapeSnapshot{}
		}
		out := map[string]any{
			"enabled":           querystore.Default.Enabled(),
			"slow_threshold_ms": float64(querystore.Default.SlowThreshold().Microseconds()) / 1000,
			"shapes":            shapes,
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck — best-effort over HTTP
	})
	mux.HandleFunc("/debug/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := make(map[string]any, len(status))
		for _, s := range status {
			out[s.Name] = s.Fn()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck — best-effort over HTTP
	})
	return mux
}

// Serve starts the observability endpoint on addr (e.g. "127.0.0.1:8344")
// in a background goroutine and returns the bound listener address. The
// listener is closed with the returned closer.
func Serve(addr string, reg *metrics.Registry, traces *trace.Collector, status ...Status) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg, traces, status...)}
	go srv.Serve(ln) //nolint:errcheck — closed via the returned closer
	return ln.Addr().String(), srv.Close, nil
}
