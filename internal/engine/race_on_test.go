//go:build race

package engine

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
