package engine

import (
	"fmt"
	"strings"

	"mtcache/internal/catalog"
	"mtcache/internal/opt"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

func (db *Database) execCreateTable(x *sql.CreateTableStmt) (*Result, error) {
	t := &catalog.Table{Name: x.Name}
	for _, cd := range x.Columns {
		t.Columns = append(t.Columns, catalog.Column{
			Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull, Default: cd.Default,
		})
		if cd.PrimaryKey {
			t.PrimaryKey = append(t.PrimaryKey, len(t.Columns)-1)
		}
	}
	for _, pk := range x.PrimaryKey {
		ord := -1
		for i, c := range t.Columns {
			if strEqualFold(c.Name, pk) {
				ord = i
				break
			}
		}
		if ord < 0 {
			return nil, fmt.Errorf("engine: PRIMARY KEY column %s not in table", pk)
		}
		t.PrimaryKey = append(t.PrimaryKey, ord)
	}
	if err := db.cat.AddTable(t); err != nil {
		return nil, err
	}
	if err := db.store.CreateTable(t); err != nil {
		db.cat.DropTable(t.Name)
		return nil, err
	}
	db.InvalidatePlans()
	return &Result{}, nil
}

func (db *Database) execCreateIndex(x *sql.CreateIndexStmt) (*Result, error) {
	t := db.cat.Table(x.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: table %s does not exist", x.Table)
	}
	idx := &catalog.Index{Name: x.Name, Table: t.Name, Unique: x.Unique}
	for _, col := range x.Columns {
		ord := t.ColumnIndex(col)
		if ord < 0 {
			return nil, fmt.Errorf("engine: column %s not in %s", col, x.Table)
		}
		idx.Columns = append(idx.Columns, ord)
	}
	if err := db.cat.AddIndex(t.Name, idx); err != nil {
		return nil, err
	}
	if db.store.Table(t.Name) != nil {
		if err := db.store.AddIndex(t.Name, idx); err != nil {
			return nil, err
		}
	}
	db.InvalidatePlans()
	return &Result{}, nil
}

func (db *Database) execCreateView(x *sql.CreateViewStmt) (*Result, error) {
	if x.Cached && db.role != Cache {
		return nil, fmt.Errorf("engine: CREATE CACHED VIEW is only valid on a cache server")
	}
	// Infer the view schema from its definition.
	cols, err := db.viewSchema(x.Select)
	if err != nil {
		return nil, err
	}
	t := &catalog.Table{
		Name:         x.Name,
		Columns:      cols,
		IsView:       true,
		Materialized: x.Materialized || x.Cached,
		Cached:       x.Cached,
		ViewDef:      x.Select,
	}
	if t.Materialized {
		t.PrimaryKey = derivePK(db.cat, x.Select, cols)
	}
	if !t.Materialized {
		if err := db.cat.AddTable(t); err != nil {
			return nil, err
		}
		db.InvalidatePlans()
		return &Result{}, nil
	}

	// Materialized (or cached) view: compute the initial contents *before*
	// registering the view, so the population query cannot be answered from
	// the still-empty view itself.
	var initial []types.Row
	if !x.Cached {
		res, err := db.Query(x.Select, nil)
		if err != nil {
			return nil, fmt.Errorf("engine: populating %s: %w", t.Name, err)
		}
		initial = res.Rows
	}
	if err := db.cat.AddTable(t); err != nil {
		return nil, err
	}
	if err := db.store.CreateTable(t); err != nil {
		db.cat.DropTable(t.Name)
		return nil, err
	}
	if x.Cached {
		// Cached views are populated and maintained by replication; hand off
		// to the MTCache layer to create the matching subscription (§4).
		if db.onCachedViewCreate != nil {
			if err := db.onCachedViewCreate(t); err != nil {
				db.cat.DropTable(t.Name)
				db.store.DropTable(t.Name)
				return nil, fmt.Errorf("engine: provisioning cached view %s: %w", t.Name, err)
			}
		}
	} else {
		tx := db.store.Begin(true)
		for _, row := range initial {
			if _, err := tx.Insert(t.Name, row); err != nil {
				tx.Abort()
				db.cat.DropTable(t.Name)
				db.store.DropTable(t.Name)
				return nil, err
			}
		}
		// Initial population is not replicated as individual changes.
		if err := tx.CommitUnlogged(); err != nil {
			return nil, err
		}
	}
	if err := db.AnalyzeTable(t.Name); err != nil {
		return nil, err
	}
	db.InvalidatePlans()
	return &Result{}, nil
}

// viewSchema infers the column list of a view definition. Select-project
// definitions resolve directly against the base table; anything else is
// planned for its schema.
func (db *Database) viewSchema(def *sql.SelectStmt) ([]catalog.Column, error) {
	if len(def.From) == 1 {
		if tn, ok := def.From[0].(*sql.TableName); ok {
			base := db.cat.Table(tn.Name)
			if base != nil {
				var cols []catalog.Column
				simple := true
				for _, item := range def.Columns {
					if item.Star {
						cols = append(cols, base.Columns...)
						continue
					}
					ref, ok := item.Expr.(*sql.ColumnRef)
					if !ok {
						simple = false
						break
					}
					bc := base.Column(ref.Name)
					if bc == nil {
						return nil, fmt.Errorf("engine: view column %s not in %s", ref.Name, base.Name)
					}
					name := item.Alias
					if name == "" {
						name = bc.Name
					}
					cols = append(cols, catalog.Column{Name: name, Type: bc.Type, NotNull: bc.NotNull})
				}
				if simple {
					return cols, nil
				}
			}
		}
	}
	p, err := opt.Optimize(def, db.env())
	if err != nil {
		return nil, fmt.Errorf("engine: invalid view definition: %w", err)
	}
	var cols []catalog.Column
	for _, c := range p.Cols {
		cols = append(cols, catalog.Column{Name: c.Name, Type: c.Kind})
	}
	return cols, nil
}

// derivePK keeps the base table's primary key on a materialized view when
// the projection preserves all key columns.
func derivePK(cat *catalog.Catalog, def *sql.SelectStmt, cols []catalog.Column) []int {
	if len(def.From) != 1 {
		return nil
	}
	tn, ok := def.From[0].(*sql.TableName)
	if !ok {
		return nil
	}
	base := cat.Table(tn.Name)
	if base == nil || len(base.PrimaryKey) == 0 {
		return nil
	}
	var pk []int
	for _, ord := range base.PrimaryKey {
		baseName := base.Columns[ord].Name
		// Find the view column projecting this base column.
		found := -1
		for i, item := range def.Columns {
			if item.Star {
				// identity projection: position = base ordinal
				if ord < len(cols) && strEqualFold(cols[ord].Name, baseName) {
					found = ord
				}
				break
			}
			ref, ok := item.Expr.(*sql.ColumnRef)
			if ok && strEqualFold(ref.Name, baseName) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil
		}
		pk = append(pk, found)
	}
	return pk
}

func (db *Database) execCreateProc(x *sql.CreateProcStmt, text string) (*Result, error) {
	p := &catalog.Procedure{Name: x.Name, Params: x.Params, Body: x.Body, Text: text}
	if err := db.cat.AddProcedure(p); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execDrop(x *sql.DropStmt) (*Result, error) {
	switch x.What {
	case "TABLE", "VIEW":
		t := db.cat.Table(x.Name)
		if t == nil {
			return nil, fmt.Errorf("engine: %s %s does not exist", strings.ToLower(x.What), x.Name)
		}
		if err := db.cat.DropTable(x.Name); err != nil {
			return nil, err
		}
		if db.store.Table(x.Name) != nil {
			db.store.DropTable(x.Name)
		}
		// Intermediates derived from the dropped relation are now orphans.
		db.InvalidateIntermediates(t.Name)
	case "PROCEDURE":
		if err := db.cat.DropProcedure(x.Name); err != nil {
			return nil, err
		}
	case "INDEX":
		return nil, fmt.Errorf("engine: DROP INDEX is not supported")
	}
	db.InvalidatePlans()
	return &Result{}, nil
}
