package engine

import (
	"fmt"
	"strings"
	"testing"

	"mtcache/internal/types"
)

// benchDB builds the fact/dim pair the vectorized benchmarks run against.
// rowMode selects the pre-vectorization configuration (one-row adapter,
// parse per execution) so before/after can be compared with -bench.
func benchDB(b *testing.B, rows int, rowMode bool) *Database {
	b.Helper()
	db := New(Config{Name: "bench", Role: Backend, RowMode: rowMode, DisableAutoParam: rowMode})
	err := db.ExecScript(`
		CREATE TABLE big (
			b_id INT PRIMARY KEY,
			b_grp INT,
			b_dim INT,
			b_val FLOAT,
			b_pad VARCHAR(40)
		);
		CREATE TABLE dim (d_id INT PRIMARY KEY, d_name VARCHAR(20));
	`)
	if err != nil {
		b.Fatal(err)
	}
	pad := strings.Repeat("x", 32)
	facts := make([]types.Row, 0, rows)
	for i := 0; i < rows; i++ {
		facts = append(facts, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 64)),
			types.NewInt(int64(i % 256)),
			types.NewFloat(float64(i % 1000)),
			types.NewString(pad),
		})
	}
	if err := db.BulkLoad("big", facts); err != nil {
		b.Fatal(err)
	}
	dims := make([]types.Row, 0, 256)
	for i := 0; i < 256; i++ {
		dims = append(dims, types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("d%d", i))})
	}
	if err := db.BulkLoad("dim", dims); err != nil {
		b.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		b.Fatal(err)
	}
	opts := db.Options()
	opts.MaxDOP = 1
	db.SetOptions(opts)
	return db
}

func benchQuery(b *testing.B, rowMode bool, gen func(i int) string) {
	b.Helper()
	db := benchDB(b, 20000, rowMode)
	for i := 0; i < 16; i++ { // warm plan + shape caches
		if _, err := db.Exec(gen(i), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(gen(i%20000), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQueryRow(b *testing.B) {
	benchQuery(b, true, func(i int) string { return fmt.Sprintf("SELECT b_id, b_val FROM big WHERE b_id = %d", i) })
}

func BenchmarkPointQueryBatch(b *testing.B) {
	benchQuery(b, false, func(i int) string { return fmt.Sprintf("SELECT b_id, b_val FROM big WHERE b_id = %d", i) })
}

func BenchmarkScanRow(b *testing.B) {
	benchQuery(b, true, func(int) string { return "SELECT b_id, b_val FROM big WHERE b_val >= 900.0" })
}

func BenchmarkScanBatch(b *testing.B) {
	benchQuery(b, false, func(int) string { return "SELECT b_id, b_val FROM big WHERE b_val >= 900.0" })
}

func BenchmarkJoinRow(b *testing.B) {
	benchQuery(b, true, func(int) string {
		return "SELECT COUNT(*) AS c FROM big, dim WHERE b_dim = d_id AND b_val >= 500.0"
	})
}

func BenchmarkJoinBatch(b *testing.B) {
	benchQuery(b, false, func(int) string {
		return "SELECT COUNT(*) AS c FROM big, dim WHERE b_dim = d_id AND b_val >= 500.0"
	})
}

func BenchmarkAggRow(b *testing.B) {
	benchQuery(b, true, func(int) string {
		return "SELECT b_grp, COUNT(*) AS c, SUM(b_val) AS s, AVG(b_val) AS a FROM big GROUP BY b_grp"
	})
}

func BenchmarkAggBatch(b *testing.B) {
	benchQuery(b, false, func(int) string {
		return "SELECT b_grp, COUNT(*) AS c, SUM(b_val) AS s, AVG(b_val) AS a FROM big GROUP BY b_grp"
	})
}
