package engine

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"mtcache/internal/metrics"
	"mtcache/internal/types"
)

// newParallelDB builds a backend with big(id INT PK, grp INT, val FLOAT)
// holding n rows, stats analyzed, and GOMAXPROCS raised to 4 for the test
// (the optimizer caps DOP at GOMAXPROCS, and CI containers may have 1 CPU).
func newParallelDB(t *testing.T, n int) *Database {
	t.Helper()
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	db := New(Config{Name: "backend", Role: Backend})
	err := db.ExecScript(`
		CREATE TABLE big (
			id INT PRIMARY KEY,
			grp INT,
			val FLOAT
		);
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 16)), types.NewFloat(float64(i % 1000))}
	}
	if err := db.BulkLoad("big", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEngineChoosesParallelScan(t *testing.T) {
	db := newParallelDB(t, 5000)
	const q = "SELECT id, val FROM big WHERE val >= 100.0"

	text := planText(t, db, "EXPLAIN "+q, nil)
	if !strings.Contains(text, "Gather (Exchange dop=") {
		t.Fatalf("plan not parallel:\n%s", text)
	}

	par, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	opts := db.Options()
	opts.MaxDOP = 1
	db.SetOptions(opts)
	serText := planText(t, db, "EXPLAIN "+q, nil)
	if strings.Contains(serText, "Exchange") {
		t.Fatalf("MaxDOP=1 plan still parallel:\n%s", serText)
	}
	ser, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(par.Rows) != len(ser.Rows) {
		t.Fatalf("parallel rows %d, serial rows %d", len(par.Rows), len(ser.Rows))
	}
	seen := make(map[int64]float64, len(ser.Rows))
	for _, r := range ser.Rows {
		seen[r[0].Int()] = r[1].Float()
	}
	for _, r := range par.Rows {
		v, ok := seen[r[0].Int()]
		if !ok || v != r[1].Float() {
			t.Fatalf("parallel row %v not in serial result", r)
		}
	}
}

func TestEngineExplainAnalyzeShowsWorkerRows(t *testing.T) {
	db := newParallelDB(t, 5000)
	text := planText(t, db, "EXPLAIN ANALYZE SELECT id, val FROM big WHERE val >= 100.0", nil)
	if !strings.Contains(text, "Gather (Exchange dop=") {
		t.Fatalf("plan not parallel:\n%s", text)
	}
	if !strings.Contains(text, "worker_rows=[") {
		t.Fatalf("no per-worker row counts:\n%s", text)
	}
}

func TestEngineParallelAggregation(t *testing.T) {
	db := newParallelDB(t, 5000)
	const q = "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM big GROUP BY grp"

	text := planText(t, db, "EXPLAIN "+q, nil)
	for _, want := range []string{"FinalAggregate", "Gather (Exchange dop=", "PartialAggregate"} {
		if !strings.Contains(text, want) {
			t.Fatalf("plan missing %q:\n%s", want, text)
		}
	}
	par, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	opts := db.Options()
	opts.MaxDOP = 1
	db.SetOptions(opts)
	ser, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Rows) != 16 || len(ser.Rows) != 16 {
		t.Fatalf("groups: parallel %d serial %d, want 16", len(par.Rows), len(ser.Rows))
	}
	byGrp := make(map[int64]types.Row)
	for _, r := range ser.Rows {
		byGrp[r[0].Int()] = r
	}
	for _, r := range par.Rows {
		s := byGrp[r[0].Int()]
		if s == nil || r[1].Int() != s[1].Int() || r[2].Float() != s[2].Float() || r[3].Float() != s[3].Float() {
			t.Fatalf("group %v: parallel %v, serial %v", r[0], r, s)
		}
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	// Auto-parameterization would fold the literal-distinct statements below
	// into one shape (one plan); disable it so each text gets its own plan
	// and the LRU actually evicts. The intermediate-result cache is disabled
	// too: admitting an intermediate invalidates plans (like DDL), which
	// would empty the cache mid-test.
	db := New(Config{Name: "backend", Role: Backend, PlanCacheCap: 4, DisableAutoParam: true, DisableIMCache: true})
	if err := db.ExecScript("CREATE TABLE tiny (id INT PRIMARY KEY, v INT);"); err != nil {
		t.Fatal(err)
	}
	before := metrics.Default.Counter("engine.plan_cache_evictions").Value()
	for i := 0; i < 10; i++ {
		q := fmt.Sprintf("SELECT v FROM tiny WHERE id = %d", i)
		if _, err := db.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.PlanCacheSize(); n > 4 {
		t.Fatalf("plan cache size %d exceeds cap 4", n)
	}
	evicted := metrics.Default.Counter("engine.plan_cache_evictions").Value() - before
	if evicted < 6 {
		t.Fatalf("evictions %d, want >= 6", evicted)
	}
	// Re-running the most recent statement must hit the cache (no growth).
	sz := db.PlanCacheSize()
	if _, err := db.Exec("SELECT v FROM tiny WHERE id = 9", nil); err != nil {
		t.Fatal(err)
	}
	if db.PlanCacheSize() != sz {
		t.Fatalf("cache grew on a repeat statement: %d -> %d", sz, db.PlanCacheSize())
	}
}

func TestPlanCacheDefaultCapBounded(t *testing.T) {
	db := New(Config{Name: "backend", Role: Backend, DisableAutoParam: true})
	if err := db.ExecScript("CREATE TABLE tiny (id INT PRIMARY KEY, v INT);"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < defaultPlanCacheCap+50; i++ {
		q := fmt.Sprintf("SELECT v FROM tiny WHERE id = %d", i)
		if _, err := db.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.PlanCacheSize(); n > defaultPlanCacheCap {
		t.Fatalf("plan cache size %d exceeds default cap %d", n, defaultPlanCacheCap)
	}
}
