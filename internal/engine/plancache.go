package engine

import (
	"container/list"

	"mtcache/internal/metrics"
	"mtcache/internal/opt"
	"mtcache/internal/querystore"
)

// defaultPlanCacheCap bounds the per-database plan cache when Config leaves
// PlanCacheCap zero. Distinct query texts beyond the cap evict the least
// recently used plan (counted by engine.plan_cache_evictions), so ad-hoc
// query churn cannot grow the cache without limit.
const defaultPlanCacheCap = 256

// planLRU is the bounded plan cache. Not self-locking: the Database guards
// it with planMu.
type planLRU struct {
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used

	// gen counts invalidations. planCached snapshots it before optimizing
	// outside the lock and refuses to insert a plan produced against a
	// generation that has since been cleared — otherwise a plan referencing
	// a dropped view or evicted intermediate could outlive the DDL (or
	// imcache transition) that invalidated it.
	gen uint64
}

type planEntry struct {
	key  string
	plan *opt.Plan
}

func newPlanLRU(cap int) *planLRU {
	if cap <= 0 {
		cap = defaultPlanCacheCap
	}
	return &planLRU{cap: cap, items: make(map[string]*list.Element), order: list.New()}
}

func (c *planLRU) get(key string) (*opt.Plan, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

func (c *planLRU) put(key string, p *opt.Plan) {
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&planEntry{key: key, plan: p})
	for len(c.items) > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		victim := back.Value.(*planEntry).key
		delete(c.items, victim)
		metrics.Default.Counter("engine.plan_cache_evictions").Add(1)
		if len(victim) > 120 {
			victim = victim[:120] + "…"
		}
		querystore.Emit("plan_evicted", "shape", victim)
	}
}

func (c *planLRU) clear() {
	c.items = make(map[string]*list.Element)
	c.order.Init()
	c.gen++
}

func (c *planLRU) len() int { return len(c.items) }
