package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"mtcache/internal/imcache"
	"mtcache/internal/metrics"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// imTestDB builds a backend with one fact table for intermediate-result
// cache tests. opts == nil uses the default cache configuration.
func imTestDB(t *testing.T, opts *imcache.Options) *Database {
	t.Helper()
	db := New(Config{Name: "im-test", Role: Backend, IMCache: opts})
	err := db.ExecScript(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT, w FLOAT);`)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 1000)
	for i := 0; i < 1000; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 64)),
			types.NewInt(int64(i % 100)),
			types.NewFloat(float64(i) / 7),
		})
	}
	if err := db.BulkLoad("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func imCanon(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var cells []string
		for _, v := range r {
			cells = append(cells, v.Display())
		}
		out[i] = strings.Join(cells, "|")
	}
	sort.Strings(out)
	return out
}

// TestIMCacheDifferential: a warmed cached aggregate must be row-identical
// to the cold computation, and repeat executions must hit the cache.
func TestIMCacheDifferential(t *testing.T) {
	db := imTestDB(t, nil)
	const q = "SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY grp"

	db.SetIMCacheEnabled(false)
	cold, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.SetIMCacheEnabled(true)

	hitsBefore := metrics.Default.Counter("imcache.hits").Value()
	var warm *Result
	for i := 0; i < 4; i++ {
		if warm, err = db.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := metrics.Default.Counter("imcache.hits").Value(); got == hitsBefore {
		t.Fatal("repeated aggregate never hit the intermediate-result cache")
	}
	want, got := imCanon(cold.Rows), imCanon(warm.Rows)
	if len(want) != len(got) {
		t.Fatalf("row count: cold %d, cached %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("differential mismatch at row %d: cold %q, cached %q", i, want[i], got[i])
		}
	}
}

// TestIMCacheInvalidationOnWrite: DML against a lineage table marks the
// intermediate stale; without a freshness allowance the next execution
// recomputes and sees the write.
func TestIMCacheInvalidationOnWrite(t *testing.T) {
	db := imTestDB(t, nil)
	const q = "SELECT COUNT(*) AS n FROM t"
	var before *Result
	var err error
	for i := 0; i < 3; i++ {
		if before, err = db.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := before.Rows[0][0].Int(); n != 1000 {
		t.Fatalf("baseline count %d, want 1000", n)
	}
	if _, err := db.Exec("INSERT INTO t (id, grp, v, w) VALUES (5000, 1, 1, 1.0)", nil); err != nil {
		t.Fatal(err)
	}
	after, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := after.Rows[0][0].Int(); n != 1001 {
		t.Fatalf("served a stale intermediate after DML: count %d, want 1001", n)
	}
}

// TestIMCacheFreshnessComposition: WITH FRESHNESS gives a stale intermediate
// a second life — a bounded-stale execution may serve it, a plain (or
// zero-bound) execution must recompute.
func TestIMCacheFreshnessComposition(t *testing.T) {
	db := imTestDB(t, nil)
	const q = "SELECT COUNT(*) AS n FROM t WHERE grp = 1"
	var base *Result
	var err error
	for i := 0; i < 3; i++ {
		if base, err = db.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	baseN := base.Rows[0][0].Int()
	if _, err := db.Exec("INSERT INTO t (id, grp, v, w) VALUES (5001, 1, 1, 1.0)", nil); err != nil {
		t.Fatal(err)
	}

	// Bounded-stale read first: the stale entry is within any generous bound.
	stale, err := db.Exec(q+" WITH FRESHNESS 300", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := stale.Rows[0][0].Int(); n != baseN {
		t.Fatalf("WITH FRESHNESS 300 recomputed (%d); want the stale intermediate (%d)", n, baseN)
	}
	// Zero bound means "current": the stale entry is unusable.
	zero, err := db.Exec(q+" WITH FRESHNESS 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := zero.Rows[0][0].Int(); n != baseN+1 {
		t.Fatalf("WITH FRESHNESS 0 served stale data: %d, want %d", n, baseN+1)
	}
	// Plain read recomputes and refreshes the entry in place.
	fresh, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := fresh.Rows[0][0].Int(); n != baseN+1 {
		t.Fatalf("plain read served stale data: %d, want %d", n, baseN+1)
	}
}

// TestIMCacheEvictionUnderPressure: a byte budget far below the working set
// keeps total bytes bounded and evicts lower-benefit entries.
func TestIMCacheEvictionUnderPressure(t *testing.T) {
	db := imTestDB(t, &imcache.Options{MaxBytes: 8 << 10, MaxEntryBytes: 4 << 10, AdmitAfter: 1})
	evBefore := metrics.Default.Counter("imcache.evictions").Value()
	for g := 0; g < 16; g++ {
		q := fmt.Sprintf("SELECT id, v, w FROM t WHERE grp = %d", g)
		for i := 0; i < 3; i++ {
			if _, err := db.Exec(q, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	imc := db.IMCache()
	if imc.Bytes() > 8<<10 {
		t.Fatalf("cache bytes %d exceed the 8KiB budget", imc.Bytes())
	}
	if ev := metrics.Default.Counter("imcache.evictions").Value() - evBefore; ev == 0 {
		t.Fatal("no evictions under a budget far below the working set")
	}
}

// TestIMCacheViewTierSubstitution: an admitted select-project intermediate
// becomes a synthetic view the optimizer substitutes into other queries.
func TestIMCacheViewTierSubstitution(t *testing.T) {
	db := imTestDB(t, nil)
	const q1 = "SELECT id, v FROM t WHERE grp = 5"
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(q1, nil); err != nil {
			t.Fatal(err)
		}
	}
	// A different query subsumed by the intermediate: same source filter,
	// narrower projection plus an extra residual predicate.
	stmt, err := sql.Parse("SELECT v FROM t WHERE grp = 5 AND v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.Plan(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	usedIM := false
	for _, v := range plan.UsedViews {
		if strings.HasPrefix(v, imViewPrefix) {
			usedIM = true
		}
	}
	if !usedIM {
		t.Fatalf("plan did not substitute the intermediate view; used %v", plan.UsedViews)
	}
	// And the substituted plan must produce the right rows.
	res, err := db.Exec("SELECT v FROM t WHERE grp = 5 AND v >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	db.SetIMCacheEnabled(false)
	want, err := db.Exec("SELECT v FROM t WHERE grp = 5 AND v >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	w, g := imCanon(want.Rows), imCanon(res.Rows)
	if len(w) != len(g) {
		t.Fatalf("row count: want %d, got %d", len(w), len(g))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("substituted plan row %d: want %q, got %q", i, w[i], g[i])
		}
	}
}

// TestIMCachePlanInvalidationOnAdmit is the regression test for the
// plan-cache race: admitting (and later dropping) a view-tier intermediate
// must invalidate cached plans exactly like DDL, or a stale plan could keep
// reading a dropped intermediate.
func TestIMCachePlanInvalidationOnAdmit(t *testing.T) {
	db := imTestDB(t, nil)
	if _, err := db.Exec("SELECT COUNT(*) AS n FROM t WHERE v = 3", nil); err != nil {
		t.Fatal(err)
	}
	db.planMu.Lock()
	gen := db.planCache.gen
	db.planMu.Unlock()

	// Two executions admit a select-project intermediate with a view.
	const q = "SELECT id, v FROM t WHERE grp = 7"
	for i := 0; i < 2; i++ {
		if _, err := db.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	db.planMu.Lock()
	afterAdmit := db.planCache.gen
	db.planMu.Unlock()
	if afterAdmit == gen {
		t.Fatal("admitting a view-tier intermediate did not invalidate cached plans")
	}

	// Disabling drops every entry; plans referencing intermediates must go too.
	db.SetIMCacheEnabled(false)
	db.planMu.Lock()
	afterDrop := db.planCache.gen
	db.planMu.Unlock()
	if afterDrop == afterAdmit {
		t.Fatal("dropping intermediates did not invalidate cached plans")
	}
}

// TestIMCacheConcurrentStress drives queries, writes and enable/disable
// toggles concurrently; run under -race this checks the locking discipline
// between the cache, the plan cache and the optimizer env.
func TestIMCacheConcurrentStress(t *testing.T) {
	db := imTestDB(t, &imcache.Options{AdmitAfter: 1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("SELECT COUNT(*) AS n FROM t WHERE grp = %d", (w*50+i)%16)
				if _, err := db.Exec(q, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			ins := fmt.Sprintf("INSERT INTO t (id, grp, v, w) VALUES (%d, %d, 1, 1.0)", 10000+i, i%16)
			if _, err := db.Exec(ins, nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			db.SetIMCacheEnabled(i%2 == 0)
		}
		db.SetIMCacheEnabled(true)
	}()
	wg.Wait()
}

// TestIMCacheSysTable: sys.intermediate_results lists admitted entries with
// lineage and turns stale after a write.
func TestIMCacheSysTable(t *testing.T) {
	db := imTestDB(t, nil)
	const q = "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp"
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec("SELECT shape, lineage, hits, staleness_seconds FROM sys.intermediate_results", nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if strings.Contains(r[0].Str(), "GROUP BY") && strings.Contains(r[1].Str(), "t") {
			found = true
			if r[2].Int() == 0 {
				t.Fatal("sys.intermediate_results shows zero hits for a repeated aggregate")
			}
			if r[3].Float() != 0 {
				t.Fatalf("fresh entry reports staleness %v", r[3].Float())
			}
		}
	}
	if !found {
		t.Fatalf("admitted aggregate missing from sys.intermediate_results: %v", res.Rows)
	}
	if _, err := db.Exec("DELETE FROM t WHERE id = 0", nil); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec("SELECT staleness_seconds FROM sys.intermediate_results", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[0].Float() < 0 {
			t.Fatalf("stale entry reports negative staleness %v", r[0].Float())
		}
	}
}
