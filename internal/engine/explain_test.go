package engine

import (
	"strings"
	"testing"

	"mtcache/internal/trace"
	"mtcache/internal/types"
)

// planText runs an EXPLAIN [ANALYZE] statement through the full SQL path and
// returns the plan column joined into one string.
func planText(t *testing.T, db *Database, stmt string, params map[string]types.Value) string {
	t.Helper()
	res, err := db.Exec(stmt, params)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	if len(res.Cols) != 1 || res.Cols[0].Name != "plan" {
		t.Fatalf("EXPLAIN must return a single plan column, got %+v", res.Cols)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].Str())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExplainStatementSQL(t *testing.T) {
	_, cache := newCachePair(t)
	text := planText(t, cache, "EXPLAIN SELECT i_title FROM item WHERE i_id = 17", nil)
	for _, want := range []string{"location=Remote", "DataTransfer [SELECT"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "actual rows=") {
		t.Errorf("plain EXPLAIN must not execute:\n%s", text)
	}
}

func TestExplainAnalyzeStatementSQL(t *testing.T) {
	_, cache := newCachePair(t)
	text := planText(t, cache, "EXPLAIN ANALYZE SELECT i_title FROM item WHERE i_id = 17", nil)
	for _, want := range []string{"actual_time=", "actual rows=1", "DataTransfer [SELECT"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain analyze missing %q:\n%s", want, text)
		}
	}
}

func TestExplainAnalyzeDynamicBranchSQL(t *testing.T) {
	_, cache := newCachePair(t)
	if _, err := cache.Exec("CREATE CACHED VIEW items100 AS SELECT i_id, i_title FROM item WHERE i_id <= 100", nil); err != nil {
		t.Fatal(err)
	}
	// A parameterized point query straddling the cached range yields a
	// dynamic plan; EXPLAIN shows both ChoosePlan branches.
	text := planText(t, cache, "EXPLAIN SELECT i_title FROM item WHERE i_id = @id", nil)
	for _, want := range []string{
		"dynamic(Fl=",
		"StartupFilter (ChoosePlan branch=local)",
		"StartupFilter (ChoosePlan branch=remote)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	// ANALYZE outside the cached range executes the remote branch only.
	text = planText(t, cache, "EXPLAIN ANALYZE SELECT i_title FROM item WHERE i_id = @id",
		map[string]types.Value{"id": types.NewInt(150)})
	for _, want := range []string{
		"StartupFilter (ChoosePlan branch=remote) (actual rows=1",
		"[executed]",
		"StartupFilter (ChoosePlan branch=local) (actual rows=0",
		"[pruned]",
		"(never executed)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain analyze missing %q:\n%s", want, text)
		}
	}
}

func TestExplainRejectsNesting(t *testing.T) {
	db := newBackendDB(t)
	if _, err := db.Exec("EXPLAIN EXPLAIN SELECT i_id FROM item", nil); err == nil {
		t.Error("nested EXPLAIN should fail to parse")
	}
}

// Exec records a finished trace whose remote round-trip carries the grafted
// backend-side span tree (stitched via the shared trace ID).
func TestExecRecordsStitchedTrace(t *testing.T) {
	_, cache := newCachePair(t)
	res, err := cache.Exec("SELECT i_title FROM item WHERE i_id = 17", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("Result.TraceID not set")
	}
	tr := trace.Traces.Last()
	if tr == nil || tr.ID != res.TraceID {
		t.Fatalf("last trace %+v does not match result trace ID %q", tr, res.TraceID)
	}
	for _, name := range []string{"parse", "optimize", "execute", "remote", "backend.exec"} {
		if tr.FindSpan(name) == nil {
			t.Errorf("trace missing span %q:\n%s", name, trace.Render(tr))
		}
	}
	// The grafted backend subtree shares the cache's trace ID.
	if got := tr.FindSpan("backend.exec").TraceID(); got != tr.ID {
		t.Errorf("backend span trace ID %q, want %q", got, tr.ID)
	}
	if tr.FindSpan("remote").AttrValue("sql") == "" {
		t.Error("remote span should record the shipped SQL")
	}
}
