package engine

import (
	"fmt"

	"mtcache/internal/exec"
	"mtcache/internal/storage"
	"mtcache/internal/trace"
)

// Link is an in-process linked-server connection: it lets one Database act
// as the remote executor for another (the cache's backend link). The TCP
// transport in internal/wire implements the same exec.RemoteClient interface
// for cross-process deployments; the engine cannot tell them apart.
type Link struct {
	db *Database
}

// NewLink wraps a database as a linked server.
func NewLink(db *Database) *Link { return &Link{db: db} }

// Query executes SQL text expected to return rows (SELECT or EXEC).
func (l *Link) Query(sqlText string, params exec.Params) (*exec.ResultSet, error) {
	res, err := l.db.Exec(sqlText, params)
	if err != nil {
		return nil, fmt.Errorf("link(%s): %w", l.db.Name, err)
	}
	return &exec.ResultSet{Cols: res.Cols, Rows: res.Rows, CommitLSN: res.CommitLSN}, nil
}

// QueryTraced implements exec.SpanQuerier: the linked database executes under
// the caller's trace ID and its span tree is returned for grafting, exactly
// like the TCP transport does — minus the serialization.
func (l *Link) QueryTraced(sqlText string, params exec.Params, traceID string) (*exec.ResultSet, *trace.WireSpan, error) {
	res, tr, err := l.db.ExecTraced(sqlText, params, traceID)
	if err != nil {
		return nil, nil, fmt.Errorf("link(%s): %w", l.db.Name, err)
	}
	return &exec.ResultSet{Cols: res.Cols, Rows: res.Rows}, trace.Export(tr.Root), nil
}

// Exec executes SQL text for its side effects (forwarded DML).
func (l *Link) Exec(sqlText string, params exec.Params) (int64, error) {
	res, err := l.db.Exec(sqlText, params)
	if err != nil {
		return 0, fmt.Errorf("link(%s): %w", l.db.Name, err)
	}
	return res.RowsAffected, nil
}

// ExecLSN implements exec.LSNExecer: forwarded DML additionally reports the
// commit LSN the backend assigned, so sessions can track read-your-writes
// watermarks over in-process links exactly as over the TCP transport.
func (l *Link) ExecLSN(sqlText string, params exec.Params) (int64, storage.LSN, error) {
	res, err := l.db.Exec(sqlText, params)
	if err != nil {
		return 0, 0, fmt.Errorf("link(%s): %w", l.db.Name, err)
	}
	return res.RowsAffected, res.CommitLSN, nil
}
