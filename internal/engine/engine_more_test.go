package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"mtcache/internal/opt"
	"mtcache/internal/types"
)

func TestDropStatements(t *testing.T) {
	db := newBackendDB(t)
	db.ExecScript(`CREATE VIEW v AS SELECT i_id FROM item;
		CREATE PROCEDURE p1 AS SELECT COUNT(*) FROM item`)
	if _, err := db.Exec("DROP VIEW v", nil); err != nil {
		t.Fatal(err)
	}
	if db.Catalog().Table("v") != nil {
		t.Error("view not dropped")
	}
	if _, err := db.Exec("DROP PROCEDURE p1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP TABLE orders", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT * FROM orders", nil); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := db.Exec("DROP TABLE missing", nil); err == nil {
		t.Error("dropping a missing table should fail")
	}
}

func TestPlainViewExpansion(t *testing.T) {
	db := newBackendDB(t)
	if err := db.ExecScript(`CREATE VIEW cheapview AS SELECT i_id, i_cost FROM item WHERE i_cost <= 20`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM cheapview", nil)
	if err != nil {
		t.Fatal(err)
	}
	// costs are i+0.5 for i in 1..200 → <= 20 means i <= 19.
	if res.Rows[0][0].Int() != 19 {
		t.Errorf("view rows: %v", res.Rows[0][0])
	}
	// Views of views.
	if err := db.ExecScript(`CREATE VIEW cheaper AS SELECT i_id FROM cheapview WHERE i_cost <= 10`); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Exec("SELECT COUNT(*) FROM cheaper", nil)
	if res.Rows[0][0].Int() != 9 {
		t.Errorf("nested view rows: %v", res.Rows[0][0])
	}
}

func TestSetOptionsInvalidatesPlans(t *testing.T) {
	db := newBackendDB(t)
	db.Exec("SELECT i_id FROM item WHERE i_id = 1", nil)
	if db.PlanCacheSize() == 0 {
		t.Fatal("plan not cached")
	}
	o := opt.DefaultOptions()
	o.RemoteCostFactor = 3
	db.SetOptions(o)
	if db.PlanCacheSize() != 0 {
		t.Error("SetOptions should clear the plan cache")
	}
	if db.Options().RemoteCostFactor != 3 {
		t.Error("options not stored")
	}
	if db.Role() != Backend {
		t.Error("role")
	}
}

func TestBulkLoadValidation(t *testing.T) {
	db := newBackendDB(t)
	if err := db.BulkLoad("missing", nil); err == nil {
		t.Error("bulk load into missing table should fail")
	}
	err := db.BulkLoad("orders", []types.Row{{types.NewInt(1)}})
	if err == nil {
		t.Error("width mismatch should fail")
	}
	err = db.BulkLoad("orders", []types.Row{
		{types.NewInt(1), types.NewInt(2), types.NewInt(3)},
		{types.NewString("4"), types.NewInt(5), types.NewInt(6)}, // cast applies
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.TableRowCount("orders") != 2 {
		t.Error("bulk rows missing")
	}
}

func TestInsertSelectStatement(t *testing.T) {
	db := newBackendDB(t)
	db.ExecScript(`CREATE TABLE archive (a_id INT PRIMARY KEY, a_cost FLOAT)`)
	res, err := db.Exec("INSERT INTO archive (a_id, a_cost) SELECT i_id, i_cost FROM item WHERE i_id <= 30", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 30 {
		t.Errorf("insert-select affected %d", res.RowsAffected)
	}
}

func TestUpdateNoMatchesAffectsZero(t *testing.T) {
	db := newBackendDB(t)
	res, err := db.Exec("UPDATE item SET i_cost = 1 WHERE i_id = 99999", nil)
	if err != nil || res.RowsAffected != 0 {
		t.Errorf("no-match update: %v affected=%d", err, res.RowsAffected)
	}
	res, err = db.Exec("DELETE FROM item WHERE i_id = 99999", nil)
	if err != nil || res.RowsAffected != 0 {
		t.Errorf("no-match delete: %v affected=%d", err, res.RowsAffected)
	}
}

func TestUpdateAllRowsNoWhere(t *testing.T) {
	db := newBackendDB(t)
	res, err := db.Exec("UPDATE orders SET o_qty = 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 0 { // orders is empty in this fixture
		t.Errorf("affected: %d", res.RowsAffected)
	}
	db.Exec("INSERT INTO orders (o_id, o_i_id, o_qty) VALUES (1, 1, 5)", nil)
	db.Exec("INSERT INTO orders (o_id, o_i_id, o_qty) VALUES (2, 2, 5)", nil)
	res, _ = db.Exec("UPDATE orders SET o_qty = 9", nil)
	if res.RowsAffected != 2 {
		t.Errorf("update-all affected: %d", res.RowsAffected)
	}
}

func TestDMLRejectsBadColumn(t *testing.T) {
	db := newBackendDB(t)
	if _, err := db.Exec("UPDATE item SET nope = 1 WHERE i_id = 1", nil); err == nil {
		t.Error("bad SET column")
	}
	if _, err := db.Exec("INSERT INTO item (nope) VALUES (1)", nil); err == nil {
		t.Error("bad insert column")
	}
	if _, err := db.Exec("INSERT INTO missing (a) VALUES (1)", nil); err == nil {
		t.Error("missing table")
	}
}

// Model-based transaction test: random committed DML against a Go map model
// must agree at every checkpoint; procedures that fail must leave no trace.
func TestRandomDMLMatchesModel(t *testing.T) {
	db := New(Config{Name: "model", Role: Backend})
	if err := db.ExecScript(`CREATE TABLE kv (k INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	model := map[int64]int64{}
	r := rand.New(rand.NewSource(11))
	for step := 0; step < 800; step++ {
		k := int64(r.Intn(60))
		v := int64(r.Intn(1000))
		_, exists := model[k]
		switch r.Intn(3) {
		case 0: // insert
			_, err := db.Exec(fmt.Sprintf("INSERT INTO kv (k, v) VALUES (%d, %d)", k, v), nil)
			if exists {
				if err == nil {
					t.Fatalf("step %d: duplicate insert succeeded", step)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: insert failed: %v", step, err)
				}
				model[k] = v
			}
		case 1: // update
			res, err := db.Exec(fmt.Sprintf("UPDATE kv SET v = %d WHERE k = %d", v, k), nil)
			if err != nil {
				t.Fatal(err)
			}
			if exists {
				if res.RowsAffected != 1 {
					t.Fatalf("step %d: update affected %d", step, res.RowsAffected)
				}
				model[k] = v
			} else if res.RowsAffected != 0 {
				t.Fatalf("step %d: phantom update", step)
			}
		case 2: // delete
			res, err := db.Exec(fmt.Sprintf("DELETE FROM kv WHERE k = %d", k), nil)
			if err != nil {
				t.Fatal(err)
			}
			if exists != (res.RowsAffected == 1) {
				t.Fatalf("step %d: delete mismatch", step)
			}
			delete(model, k)
		}
		if step%100 == 99 {
			res, err := db.Exec("SELECT COUNT(*), SUM(v) FROM kv", nil)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, mv := range model {
				sum += mv
			}
			if res.Rows[0][0].Int() != int64(len(model)) {
				t.Fatalf("step %d: count %d model %d", step, res.Rows[0][0].Int(), len(model))
			}
			if len(model) > 0 && res.Rows[0][1].Int() != sum {
				t.Fatalf("step %d: sum %d model %d", step, res.Rows[0][1].Int(), sum)
			}
		}
	}
}

// Regression: cached plans are shared across sessions, so concurrent
// executions of the same statement must not share operator state. Run with
// -race to catch violations.
func TestConcurrentExecutionOfCachedPlan(t *testing.T) {
	db := newBackendDB(t)
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				res, err := db.Exec("SELECT COUNT(*), SUM(i_cost) FROM item WHERE i_id <= 150", nil)
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].Int() != 150 {
					errs <- fmt.Errorf("wrong count %d", res.Rows[0][0].Int())
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if db.PlanCacheSize() != 1 {
		t.Errorf("plan cache size %d, want 1 (all workers share one plan)", db.PlanCacheSize())
	}
}
