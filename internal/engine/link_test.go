package engine

import (
	"fmt"
	"sync"
	"testing"

	"mtcache/internal/exec"
	"mtcache/internal/types"
)

// TestLinkConcurrentQueries pins the Link's concurrency contract: the wire
// transport now carries many requests in flight on one connection, and the
// in-process Link must stay interchangeable with it — concurrent callers on
// one Link must each get their own correct answer, like concurrent round
// trips on a multiplexed connection do.
func TestLinkConcurrentQueries(t *testing.T) {
	backend := New(Config{Name: "backend", Role: Backend})
	if _, err := backend.Exec("CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(40))", nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		stmt := fmt.Sprintf("INSERT INTO part (id, name) VALUES (%d, 'part%d')", i, i)
		if _, err := backend.Exec(stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	backend.Analyze()
	link := NewLink(backend)

	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				id := int64(1 + (w*perWorker+q)%200)
				rs, err := link.Query("SELECT id, name FROM part WHERE id = @id",
					exec.Params{"id": types.NewInt(id)})
				if err != nil {
					errs <- err
					return
				}
				if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != id {
					errs <- fmt.Errorf("query for id %d got %v", id, rs.Rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLinkConcurrentReadsWithWrites mixes forwarded DML with reads on the
// same Link: the store's locking must keep every read consistent (a row is
// seen either before or after an update, never torn).
func TestLinkConcurrentReadsWithWrites(t *testing.T) {
	backend := New(Config{Name: "backend", Role: Backend})
	if _, err := backend.Exec("CREATE TABLE counter (id INT PRIMARY KEY, v INT)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Exec("INSERT INTO counter (id, v) VALUES (1, 0)", nil); err != nil {
		t.Fatal(err)
	}
	link := NewLink(backend)

	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < 20; q++ {
				rs, err := link.Query("SELECT v FROM counter WHERE id = 1", nil)
				if err != nil {
					errs <- err
					return
				}
				if v := rs.Rows[0][0].Int(); v < 0 || v > 100 {
					errs <- fmt.Errorf("torn read: v=%d", v)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 100; i++ {
			if _, err := link.Exec("UPDATE counter SET v = @v WHERE id = 1",
				exec.Params{"v": types.NewInt(int64(i))}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
