package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mtcache/internal/advisor"
	"mtcache/internal/querystore"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// resetQueryStore isolates a test from the process-global query store and
// event log.
func resetQueryStore(t *testing.T) {
	t.Helper()
	querystore.Default.Reset()
	querystore.Default.SetEnabled(true)
	querystore.Events.Reset()
	t.Cleanup(func() {
		querystore.Default.Reset()
		querystore.Default.SetSlowThreshold(100 * time.Millisecond)
		querystore.Events.Reset()
	})
}

func TestSysQueryStatsLiveOnBackend(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	querystore.Default.Reset() // drop shapes recorded during data load
	for i := 0; i < 5; i++ {
		if _, err := db.Exec("SELECT i_title FROM item WHERE i_id = @id",
			map[string]types.Value{"id": types.NewInt(int64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT shape, executions, local_execs, remote_execs, p95_ms
		FROM sys.query_stats ORDER BY executions DESC LIMIT 5`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("sys.query_stats is empty after queries ran")
	}
	top := res.Rows[0]
	if !strings.Contains(top[0].Str(), "i_title") {
		t.Fatalf("hot shape = %q, want the point query", top[0].Str())
	}
	if top[1].Int() != 5 {
		t.Fatalf("executions = %d, want 5", top[1].Int())
	}
	if top[2].Int() != 5 || top[3].Int() != 0 {
		t.Fatalf("local/remote = %d/%d, want 5/0 on a backend", top[2].Int(), top[3].Int())
	}
}

func TestSysQueryStatsSplitsLocalRemoteOnCache(t *testing.T) {
	resetQueryStore(t)
	_, cache := newCachePair(t)
	querystore.Default.Reset()
	// This shape has no local data on the cache: it runs remotely.
	if _, err := cache.Exec("SELECT i_title FROM item WHERE i_id = 17", nil); err != nil {
		t.Fatal(err)
	}
	res, err := cache.Exec("SELECT shape, remote_execs, local_execs FROM sys.query_stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The forwarded text is re-executed by the backend engine, which records
	// its own (local) shape into the shared store — so the cache's remote
	// execution must appear as a shape with remote_execs = 1. On the cache
	// the shape keeps its literal: remote-going shapes are unsafe to
	// auto-parameterize (literals drive cached-view matching), so each text
	// plans individually.
	var foundRemote bool
	for _, row := range res.Rows {
		if strings.Contains(row[0].Str(), "i_id = 17") && row[1].Int() == 1 && row[2].Int() == 0 {
			foundRemote = true
		}
	}
	if !foundRemote {
		t.Fatalf("no remote-executed shape for the point query in sys.query_stats: %+v", res.Rows)
	}
}

func TestSysTablesReadOnly(t *testing.T) {
	resetQueryStore(t)
	backend, cache := newCachePair(t)
	for _, db := range []*Database{backend, cache} {
		for _, stmt := range []string{
			"INSERT INTO sys.query_stats (shape) VALUES ('x')",
			"UPDATE sys.query_stats SET shape = 'x'",
			"DELETE FROM sys.query_stats",
			"DELETE FROM sys.events",
		} {
			_, err := db.Exec(stmt, nil)
			if err == nil {
				t.Fatalf("%s: %q succeeded on a system table", db.Name, stmt)
			}
			if !strings.Contains(err.Error(), "read-only system table") {
				t.Fatalf("%s: %q: unclear error %v", db.Name, stmt, err)
			}
		}
	}
	// A typo'd sys name is rejected too, not forwarded to the backend.
	if _, err := cache.Exec("DELETE FROM sys.nonexistent", nil); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("sys typo not rejected: %v", err)
	}
}

func TestVirtualTablesHiddenFromListings(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	for _, tbl := range db.Catalog().Tables() {
		if tbl.Virtual || strings.HasPrefix(strings.ToLower(tbl.Name), "sys.") {
			t.Fatalf("virtual table %s leaked into Tables()", tbl.Name)
		}
	}
	if len(db.Catalog().VirtualTables()) < 6 {
		t.Fatalf("expected ≥6 registered sys tables, got %d", len(db.Catalog().VirtualTables()))
	}
	// Resolvable by full name, absent under the bare name.
	if db.Catalog().Table("sys.query_stats") == nil {
		t.Fatal("sys.query_stats not resolvable by full name")
	}
	if db.Catalog().Table("query_stats") != nil {
		t.Fatal("bare name query_stats resolves; listing-hiding is broken")
	}
}

func TestVirtualTablesInvisibleToAdvisor(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	advice, err := advisor.Analyze(db.Catalog(), []advisor.WorkloadItem{
		{SQL: "SELECT i_title FROM item WHERE i_id = 5", Weight: 100},
		{SQL: "SELECT shape, total_ms FROM sys.query_stats ORDER BY total_ms DESC LIMIT 10", Weight: 100},
		{SQL: "SELECT seq, kind FROM sys.events", Weight: 50},
	}, advisor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range advice.Views {
		low := strings.ToLower(v.Table)
		if strings.HasPrefix(low, "sys.") || low == "query_stats" || low == "events" {
			t.Fatalf("advisor recommended caching a system table: %+v", v)
		}
	}
}

func TestVirtualTablesInvisibleToViewMatching(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	// A materialized view over item must still be matched; sys tables must
	// never appear as UsedViews nor break matching.
	if err := db.ExecScript(`CREATE MATERIALIZED VIEW cheap_items AS
		SELECT i_id, i_title FROM item WHERE i_id <= 50`); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Plan(sql.MustParseSelect("SELECT i_title FROM item WHERE i_id = 7"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range plan.UsedViews {
		if strings.HasPrefix(strings.ToLower(v), "sys.") {
			t.Fatalf("plan used a system table as a view: %v", plan.UsedViews)
		}
	}
	// And a sys query itself plans as a plain local VirtualScan.
	text, err := db.Explain("SELECT shape FROM sys.query_stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "VirtualScan sys.query_stats") {
		t.Fatalf("sys query did not plan a VirtualScan:\n%s", text)
	}
}

func TestSysEventsAndSlowCapture(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	querystore.Default.Reset()
	querystore.Emit("test_event", "detail", "abc")
	res, err := db.Exec("SELECT seq, kind, detail FROM sys.events ORDER BY seq DESC LIMIT 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "test_event" {
		t.Fatalf("sys.events = %+v", res.Rows)
	}
	if res.Rows[0][2].Str() != "detail=abc" {
		t.Fatalf("detail = %q", res.Rows[0][2].Str())
	}

	// Everything is "slow" at a zero-ish threshold: the second run of the
	// shape executes instrumented and retains its EXPLAIN ANALYZE tree.
	querystore.Default.SetSlowThreshold(time.Nanosecond)
	q := "SELECT COUNT(*) FROM item"
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatal(err)
	}
	pres, err := db.Exec("SELECT shape, analyzed FROM sys.query_plans WHERE analyzed <> ''", nil)
	if err != nil {
		t.Fatal(err)
	}
	var captured string
	for _, row := range pres.Rows {
		if strings.Contains(row[0].Str(), "COUNT") {
			captured = row[1].Str()
		}
	}
	if !strings.Contains(captured, "rows=") {
		t.Fatalf("no EXPLAIN ANALYZE capture for the slow shape: %q", captured)
	}
}

func TestSysTablesStableUnderConcurrentTraffic(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := db.Exec("SELECT i_title FROM item WHERE i_id = @id",
					map[string]types.Value{"id": types.NewInt(int64(i%200 + 1))}); err != nil {
					errs <- err
					return
				}
				if _, err := db.Exec("SELECT shape, executions FROM sys.query_stats ORDER BY total_ms DESC LIMIT 5", nil); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueryStoreDisableSwitch(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	querystore.Default.Reset()
	querystore.Default.SetEnabled(false)
	if _, err := db.Exec("SELECT COUNT(*) FROM item", nil); err != nil {
		t.Fatal(err)
	}
	if n := querystore.Default.Len(); n != 0 {
		t.Fatalf("disabled store recorded %d shapes", n)
	}
	querystore.Default.SetEnabled(true)
	// sys tables still answer while disabled-then-reenabled.
	res, err := db.Exec("SELECT shape FROM sys.query_stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The sys query itself is now the only recorded shape (recorded after
	// its own execution completes, so the result set above may be empty).
	_ = res
	if _, err := db.Exec("SELECT COUNT(*) FROM item", nil); err != nil {
		t.Fatal(err)
	}
	if querystore.Default.Len() == 0 {
		t.Fatal("re-enabled store did not record")
	}
}

func TestSysWalStatsAndCachedViews(t *testing.T) {
	resetQueryStore(t)
	db := newBackendDB(t)
	res, err := db.Exec("SELECT name, value FROM sys.wal_stats ORDER BY name", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !strings.HasPrefix(row[0].Str(), "storage.") {
			t.Fatalf("non-storage instrument in sys.wal_stats: %q", row[0].Str())
		}
	}
	// Backend has no cached views; the table answers (empty), not errors.
	if _, err := db.Exec("SELECT name, rows, hits, staleness_seconds FROM sys.cached_views", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT name, staleness_seconds FROM sys.repl_status", nil); err != nil {
		t.Fatal(err)
	}
}
