package engine

import (
	"fmt"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// execProcCall runs EXEC proc. If the procedure exists locally it runs here
// (its queries may still be computed remotely, decided per statement by the
// optimizer); otherwise the call is transparently forwarded to the backend
// (paper §5.2). "A stored procedure can be run locally even when some of the
// data it requires is not available locally."
func (db *Database) execProcCall(x *sql.ExecStmt, outer exec.Params) (*Result, error) {
	proc := db.cat.Procedure(x.Proc)
	if proc == nil {
		if db.role == Cache && db.remote != nil {
			rs, err := db.remote.Query(sql.Deparse(x), outer)
			if err != nil {
				return nil, err
			}
			return &Result{Cols: rs.Cols, Rows: rs.Rows, CommitLSN: rs.CommitLSN}, nil
		}
		return nil, fmt.Errorf("engine: procedure %s does not exist", x.Proc)
	}
	params, err := bindProcArgs(proc, x.Args, outer)
	if err != nil {
		return nil, err
	}
	return db.CallProcedure(proc.Name, params)
}

// bindProcArgs evaluates EXEC arguments (positional or named) into the
// procedure's parameter map.
func bindProcArgs(proc *catalog.Procedure, args []sql.ExecArg, outer exec.Params) (exec.Params, error) {
	params := exec.Params{}
	for i, arg := range args {
		var name string
		if arg.Name != "" {
			name = arg.Name
		} else {
			if i >= len(proc.Params) {
				return nil, fmt.Errorf("engine: too many arguments for %s", proc.Name)
			}
			name = proc.Params[i].Name
		}
		var target *sql.ProcParam
		for j := range proc.Params {
			if strEqualFold(proc.Params[j].Name, name) {
				target = &proc.Params[j]
				break
			}
		}
		if target == nil {
			return nil, fmt.Errorf("engine: procedure %s has no parameter @%s", proc.Name, name)
		}
		var v types.Value
		switch e := arg.Expr.(type) {
		case *sql.Literal:
			v = e.Val
		case *sql.Param:
			pv, ok := outer[e.Name]
			if !ok {
				return nil, fmt.Errorf("engine: missing value for @%s", e.Name)
			}
			v = pv
		default:
			return nil, fmt.Errorf("engine: EXEC argument must be a literal or parameter")
		}
		cast, err := v.Cast(target.Type)
		if err != nil {
			return nil, fmt.Errorf("engine: parameter @%s: %w", name, err)
		}
		params[target.Name] = cast
	}
	return params, nil
}

// CallProcedure executes a stored procedure with pre-bound parameters.
// The whole body runs in a single transaction when it contains any DML, so
// multi-statement business operations (order placement, cart updates) are
// atomic — and replicate as one transaction.
func (db *Database) CallProcedure(name string, params exec.Params) (*Result, error) {
	proc := db.cat.Procedure(name)
	if proc == nil {
		if db.role == Cache && db.remote != nil {
			call := &sql.ExecStmt{Proc: name}
			for pname, v := range params {
				call.Args = append(call.Args, sql.ExecArg{Name: pname, Expr: &sql.Literal{Val: v}})
			}
			rs, err := db.remote.Query(sql.Deparse(call), nil)
			if err != nil {
				return nil, err
			}
			return &Result{Cols: rs.Cols, Rows: rs.Rows, CommitLSN: rs.CommitLSN}, nil
		}
		return nil, fmt.Errorf("engine: procedure %s does not exist", name)
	}

	hasDML := false
	for _, stmt := range proc.Body {
		switch stmt.(type) {
		case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
			hasDML = true
		}
	}

	res := &Result{}
	// On a cache, DML statements forward individually; only run a local
	// write transaction when this server owns the data.
	if hasDML && db.role == Backend {
		tx := db.store.Begin(true)
		for _, stmt := range proc.Body {
			switch x := stmt.(type) {
			case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
				n, err := db.execDMLInTxn(stmt, params, tx)
				if err != nil {
					tx.Abort()
					return nil, fmt.Errorf("engine: %s: %w", proc.Name, err)
				}
				res.RowsAffected += n
			case *sql.SelectStmt:
				plan, err := db.Plan(x)
				if err != nil {
					tx.Abort()
					return nil, err
				}
				pctx := &exec.Ctx{Txn: tx, Remote: db.remote, Counters: &res.Counters, EstRows: plan.Card, RowMode: db.rowMode}
				bindParams(plan, params, nil, pctx)
				rs, err := exec.Run(exec.CloneOperator(plan.Root), pctx)
				if err != nil {
					tx.Abort()
					return nil, err
				}
				res.Cols, res.Rows = rs.Cols, rs.Rows
			default:
				tx.Abort()
				return nil, fmt.Errorf("engine: unsupported statement in procedure %s", proc.Name)
			}
		}
		lsn, err := tx.Commit()
		if err != nil {
			return nil, err
		}
		for _, stmt := range proc.Body {
			db.invalidateDMLTarget(stmt)
		}
		res.CommitLSN = lsn
		return res, nil
	}

	for _, stmt := range proc.Body {
		r, err := db.ExecStmt(stmt, params)
		if err != nil {
			return nil, fmt.Errorf("engine: %s: %w", proc.Name, err)
		}
		res.RowsAffected += r.RowsAffected
		if r.CommitLSN > res.CommitLSN {
			// A cache-local procedure forwards each DML statement separately;
			// the session watermark is the highest backend commit among them.
			res.CommitLSN = r.CommitLSN
		}
		if len(r.Cols) > 0 {
			res.Cols, res.Rows = r.Cols, r.Rows
		}
		res.Counters.RowsScanned += r.Counters.RowsScanned
		res.Counters.RowsRemote += r.Counters.RowsRemote
		res.Counters.RemoteQueries += r.Counters.RemoteQueries
		res.Counters.StartupPruned += r.Counters.StartupPruned
	}
	return res, nil
}

// CopyProcedureFrom installs a procedure from its source text (used by the
// MTCache setup flow: the DBA selectively copies procedures to the cache,
// paper §5.2).
func (db *Database) CopyProcedureFrom(text string) error {
	stmt, err := sql.Parse(text)
	if err != nil {
		return err
	}
	cp, ok := stmt.(*sql.CreateProcStmt)
	if !ok {
		return fmt.Errorf("engine: not a CREATE PROCEDURE statement")
	}
	_, err = db.execCreateProc(cp, text)
	return err
}
