// Intermediate-result cache glue: key construction, lineage extraction,
// exact-match lookup before planning, admission after execution, and the
// synthetic-view builder that lets Goldstein–Larson view matching
// substitute a hot intermediate into *other* queries like any cached
// view. The cache itself (admission thresholds, benefit-weighted
// eviction, staleness transitions) lives in internal/imcache; the
// replication apply path and every local write path invalidate through
// InvalidateIntermediates.
package engine

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/imcache"
	"mtcache/internal/opt"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// imViewPrefix marks synthetic intermediate views in plan UsedViews lists
// and staleness probes.
const imViewPrefix = "__im_"

// IMCache exposes the intermediate-result cache (nil when disabled at
// construction).
func (db *Database) IMCache() *imcache.Cache { return db.imc }

// SetIMCacheEnabled toggles the intermediate-result cache at runtime.
// Disabling (or re-enabling) clears cached results and plans so the next
// queries replan from scratch; benchmarks use it to measure with/without
// phases on one database.
func (db *Database) SetIMCacheEnabled(on bool) {
	if db.imc == nil {
		return
	}
	db.imcOn.Store(on)
	db.imc.Clear()
	db.InvalidatePlans()
}

// imcacheIfEnabled returns the cache when it is present and switched on.
func (db *Database) imcacheIfEnabled() *imcache.Cache {
	if db.imc != nil && db.imcOn.Load() {
		return db.imc
	}
	return nil
}

// InvalidateIntermediates marks every intermediate whose lineage includes
// table as stale. Every write path calls it after commit: local DML and
// procedures on a backend, forwarded DML on a cache, bulk loads, DROP,
// and — the transparent path — replication apply.
func (db *Database) InvalidateIntermediates(table string) {
	if db.imc == nil {
		return
	}
	db.imc.Invalidate(table, time.Now())
}

// imShape returns the statement shape entries are admitted under. Only
// freshness-free statements are observed, so this is the memoized deparse;
// WITH FRESHNESS lookups reach the same shape through imFreshnessKey.
func imShape(stmt *sql.SelectStmt) string {
	return stmt.CacheKey()
}

// imKey builds the exact-match result key: the shape plus a kind-tagged
// encoding of every bound value (auto-extracted literals positionally,
// named parameters sorted by name). The builder copies all byte content,
// so keys never alias the pooled normalizer buffers autoArgs point into.
func imKey(shape string, params exec.Params, autoArgs []types.Value) string {
	var b strings.Builder
	b.Grow(len(shape) + 16*len(autoArgs) + 16*len(params))
	b.WriteString(shape)
	b.WriteByte(0)
	for i := range autoArgs {
		imWriteValue(&b, autoArgs[i])
	}
	if len(params) > 0 {
		names := make([]string, 0, len(params))
		for n := range params {
			names = append(names, strings.ToLower(n))
		}
		sort.Strings(names)
		for _, n := range names {
			b.WriteByte(1)
			b.WriteString(n)
			b.WriteByte('=')
			imWriteValue(&b, params[n])
		}
	}
	return b.String()
}

// imFreshnessKey computes the exact-match key for a WITH FRESHNESS
// execution so it lands on its unbounded twin's entry. Freshness text is
// ineligible for auto-parameterization (the bound is re-evaluated per
// execution), so the raw statement still carries literals; deparsing the
// stripped statement and re-normalizing that text yields exactly the shape
// and extracted values the twin was admitted under.
func (db *Database) imFreshnessKey(stmt *sql.SelectStmt, params exec.Params) string {
	bare := &sql.SelectStmt{
		Top: stmt.Top, Distinct: stmt.Distinct, Columns: stmt.Columns,
		From: stmt.From, Where: stmt.Where, GroupBy: stmt.GroupBy,
		Having: stmt.Having, OrderBy: stmt.OrderBy,
	}
	text := sql.Deparse(bare)
	keyParams, _ := imStripFreshnessRefs(stmt.Freshness, params, nil)
	if nstmt, args, norm, ok := db.autoParse(text); ok {
		key := imKey(nstmt.CacheKey(), keyParams, args)
		normPool.Put(norm)
		return key
	}
	return imKey(text, keyParams, nil)
}

// imStripFreshnessRefs drops the bound values the WITH FRESHNESS clause
// consumes from key construction: the bound gates *serving*, not result
// identity, so "… WITH FRESHNESS @bound" must share its unbounded twin's
// key. Auto-extracted literals are dropped by position; named parameters
// referenced only by the clause are dropped by name.
func imStripFreshnessRefs(fresh sql.Expr, params exec.Params, autoArgs []types.Value) (exec.Params, []types.Value) {
	skipIdx := map[int]bool{}
	skipName := map[string]bool{}
	imCollectParams(fresh, skipIdx, skipName)
	if len(skipIdx) > 0 {
		kept := make([]types.Value, 0, len(autoArgs))
		for i, v := range autoArgs {
			if !skipIdx[i] {
				kept = append(kept, v)
			}
		}
		autoArgs = kept
	}
	if len(skipName) > 0 && len(params) > 0 {
		kept := make(exec.Params, len(params))
		for n, v := range params {
			if !skipName[strings.ToLower(n)] {
				kept[n] = v
			}
		}
		params = kept
	}
	return params, autoArgs
}

// imCollectParams records every parameter reference under e: auto-params
// by extraction index, explicit ones by lowercased name.
func imCollectParams(e sql.Expr, idx map[int]bool, names map[string]bool) {
	switch x := e.(type) {
	case *sql.Param:
		if i, ok := sql.AutoParamIndex(x.Name); ok {
			idx[i] = true
		} else {
			names[strings.ToLower(x.Name)] = true
		}
	case *sql.BinaryExpr:
		imCollectParams(x.L, idx, names)
		imCollectParams(x.R, idx, names)
	case *sql.UnaryExpr:
		imCollectParams(x.X, idx, names)
	case *sql.FuncCall:
		for _, a := range x.Args {
			imCollectParams(a, idx, names)
		}
	}
}

// imWriteValue appends a kind-tagged rendering of v, unambiguous across
// kinds (an INT 1 and the string "1" must not collide).
func imWriteValue(b *strings.Builder, v types.Value) {
	switch v.K {
	case types.KindNull:
		b.WriteString("n;")
	case types.KindBool, types.KindInt:
		b.WriteString("i:")
		b.WriteString(strconv.FormatInt(v.I, 10))
		b.WriteByte(';')
	case types.KindFloat:
		b.WriteString("f:")
		b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
		b.WriteByte(';')
	case types.KindString:
		b.WriteString("s:")
		b.WriteString(strconv.Quote(v.S))
		b.WriteByte(';')
	case types.KindTime:
		b.WriteString("t:")
		b.WriteString(strconv.FormatInt(v.T.UnixNano(), 10))
		b.WriteByte(';')
	default:
		b.WriteString("?;")
	}
}

// imLineage collects (lowercased, into out) every base table and view the
// statement reads, recursing through view definitions and derived tables.
// It returns false when the statement is ineligible for caching: a
// virtual (sys.*) relation, an unknown name, or an unresolvable ref.
func (db *Database) imLineage(stmt *sql.SelectStmt, out map[string]bool) bool {
	for _, ref := range stmt.From {
		if !db.imLineageRef(ref, out) {
			return false
		}
	}
	return true
}

func (db *Database) imLineageRef(ref sql.TableRef, out map[string]bool) bool {
	switch r := ref.(type) {
	case *sql.TableName:
		t := db.cat.Table(r.FullName())
		if t == nil || t.Virtual {
			return false // sys.* output changes outside any write path
		}
		lower := strings.ToLower(t.Name)
		if out[lower] {
			return true // already expanded (also breaks view cycles)
		}
		out[lower] = true
		if t.IsView && t.ViewDef != nil {
			// Record the underlying bases too: replication apply targets
			// the cached view's own table, local DML targets the base.
			for _, sub := range t.ViewDef.From {
				if !db.imLineageRef(sub, out) {
					return false
				}
			}
		}
		return true
	case *sql.JoinRef:
		return db.imLineageRef(r.Left, out) && db.imLineageRef(r.Right, out)
	case *sql.SubqueryRef:
		return db.imLineage(r.Select, out)
	}
	return false
}

// imObserve feeds one successfully executed SELECT into the cache. Only
// fully-local plans qualify: a remote or mixed plan's rows were produced
// on the backend, where writes this cache never hears about could
// invalidate them silently. Plans that already read an intermediate are
// skipped so entries never layer on each other.
func (db *Database) imObserve(imc *imcache.Cache, key, shape string, stmt *sql.SelectStmt,
	params exec.Params, autoArgs []types.Value, plan *opt.Plan, res *Result, dur time.Duration) {
	if !plan.FullyLocal || res == nil {
		return
	}
	lineage := map[string]bool{}
	if !db.imLineage(stmt, lineage) || len(lineage) == 0 {
		return
	}
	for _, v := range plan.UsedViews {
		if strings.HasPrefix(v, imViewPrefix) {
			return
		}
		lineage[strings.ToLower(v)] = true
	}
	names := make([]string, 0, len(lineage))
	for n := range lineage {
		names = append(names, n)
	}
	admitted := imc.Observe(imcache.Observation{
		Key:     key,
		Shape:   shape,
		Args:    formatLiterals(autoArgs),
		Cols:    res.Cols,
		Rows:    res.Rows,
		Lineage: names,
		LSN:     uint64(res.SnapshotLSN),
		CostNs:  dur.Nanoseconds(),
	}, time.Now())
	if !admitted {
		return
	}
	if view := db.buildIntermediateView(imc, stmt, params, autoArgs, res); view != nil {
		imc.AttachView(key, view)
	}
}

// buildIntermediateView turns a view-matchable statement into a synthetic
// cached-view catalog entry over the already-materialized rows, so the
// optimizer substitutes the intermediate into other queries touching the
// same base table. Requirements mirror MatchView's view-definition shape:
// one plain base-table FROM, no aggregation / TOP / DISTINCT, plain
// column outputs, and a WHERE whose parameters all resolve to the bound
// values this result was computed with. Ineligible statements return nil
// — they still serve exact-match lookups.
func (db *Database) buildIntermediateView(imc *imcache.Cache, stmt *sql.SelectStmt,
	params exec.Params, autoArgs []types.Value, res *Result) *catalog.Table {
	if len(stmt.From) != 1 || stmt.GroupBy != nil || stmt.Having != nil ||
		stmt.Top != nil || stmt.Distinct || len(res.Cols) == 0 {
		return nil
	}
	tn, ok := stmt.From[0].(*sql.TableName)
	if !ok {
		return nil
	}
	base := db.cat.Table(tn.FullName())
	if base == nil || base.Virtual || base.IsView {
		return nil
	}
	var items []sql.SelectItem
	if len(stmt.Columns) == 1 && stmt.Columns[0].Star && stmt.Columns[0].StarTable == "" {
		items = []sql.SelectItem{{Star: true}}
	} else {
		for _, it := range stmt.Columns {
			ref, ok := it.Expr.(*sql.ColumnRef)
			if it.Star || !ok {
				return nil
			}
			items = append(items, sql.SelectItem{Expr: &sql.ColumnRef{Name: ref.Name}, Alias: it.Alias})
		}
	}
	where, ok := imSubstExpr(stmt.Where, params, autoArgs)
	if !ok {
		return nil
	}
	rows := res.Rows
	viewCols := make([]catalog.Column, len(res.Cols))
	colNames := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		viewCols[i] = catalog.Column{Name: c.Name, Type: c.Kind}
		colNames[i] = c.Name
	}
	return &catalog.Table{
		Name:         imc.NextViewName(),
		Columns:      viewCols,
		IsView:       true,
		Materialized: true,
		Cached:       true, // never mixed-result: the rows may be stale
		Virtual:      true, // no storage; scanned through RowsFn
		RowsFn:       func() []types.Row { return rows },
		ViewDef: &sql.SelectStmt{
			Columns: items,
			From:    []sql.TableRef{&sql.TableName{Name: base.Name}},
			Where:   where,
		},
		Stats: catalog.BuildTableStats(colNames, rows),
	}
}

// imSubstExpr deep-copies e with every parameter replaced by its bound
// value as a literal and every column qualifier stripped (the synthetic
// view definition has no alias). false when a parameter has no binding or
// an expression kind is not understood.
func imSubstExpr(e sql.Expr, params exec.Params, autoArgs []types.Value) (sql.Expr, bool) {
	switch x := e.(type) {
	case nil:
		return nil, true
	case *sql.ColumnRef:
		return &sql.ColumnRef{Name: x.Name}, true
	case *sql.Literal:
		c := *x
		return &c, true
	case *sql.Param:
		v, ok := imResolveParam(x.Name, params, autoArgs)
		if !ok {
			return nil, false
		}
		return &sql.Literal{Val: v}, true
	case *sql.BinaryExpr:
		l, ok1 := imSubstExpr(x.L, params, autoArgs)
		r, ok2 := imSubstExpr(x.R, params, autoArgs)
		return &sql.BinaryExpr{Op: x.Op, L: l, R: r}, ok1 && ok2
	case *sql.UnaryExpr:
		sub, ok := imSubstExpr(x.X, params, autoArgs)
		return &sql.UnaryExpr{Op: x.Op, X: sub}, ok
	case *sql.LikeExpr:
		l, ok1 := imSubstExpr(x.X, params, autoArgs)
		p, ok2 := imSubstExpr(x.Pattern, params, autoArgs)
		return &sql.LikeExpr{X: l, Pattern: p, Not: x.Not}, ok1 && ok2
	case *sql.InExpr:
		sub, ok := imSubstExpr(x.X, params, autoArgs)
		c := &sql.InExpr{X: sub, Not: x.Not}
		for _, a := range x.List {
			ca, aok := imSubstExpr(a, params, autoArgs)
			ok = ok && aok
			c.List = append(c.List, ca)
		}
		return c, ok
	case *sql.BetweenExpr:
		sub, ok1 := imSubstExpr(x.X, params, autoArgs)
		lo, ok2 := imSubstExpr(x.Lo, params, autoArgs)
		hi, ok3 := imSubstExpr(x.Hi, params, autoArgs)
		return &sql.BetweenExpr{X: sub, Lo: lo, Hi: hi, Not: x.Not}, ok1 && ok2 && ok3
	case *sql.IsNullExpr:
		sub, ok := imSubstExpr(x.X, params, autoArgs)
		return &sql.IsNullExpr{X: sub, Not: x.Not}, ok
	}
	return nil, false
}

// imResolveParam resolves @name against the auto-extracted literals
// (positional __pN) or the named parameter map, deep-copying string
// payloads so the literal outlives the pooled normalizer buffer.
func imResolveParam(name string, params exec.Params, autoArgs []types.Value) (types.Value, bool) {
	if i, ok := sql.AutoParamIndex(name); ok {
		if i < 0 || i >= len(autoArgs) {
			return types.Value{}, false
		}
		return imCopyValue(autoArgs[i]), true
	}
	for n, v := range params {
		if strings.EqualFold(n, name) {
			return imCopyValue(v), true
		}
	}
	return types.Value{}, false
}

func imCopyValue(v types.Value) types.Value {
	v.S = strings.Clone(v.S)
	return v
}

// intermediateResultsRows backs sys.intermediate_results.
func (db *Database) intermediateResultsRows() []types.Row {
	if db.imc == nil {
		return nil
	}
	infos := db.imc.Snapshot(time.Now())
	rows := make([]types.Row, 0, len(infos))
	for _, e := range infos {
		rows = append(rows, types.Row{
			types.NewString(e.Shape),
			types.NewString(e.Args),
			types.NewString(e.ViewName),
			types.NewInt(int64(e.Rows)),
			types.NewInt(e.Bytes),
			types.NewInt(e.Hits),
			types.NewInt(e.SavedNs),
			types.NewString(strings.Join(e.Lineage, ",")),
			types.NewInt(int64(e.LSN)),
			types.NewFloat(e.StalenessSeconds),
		})
	}
	return rows
}
