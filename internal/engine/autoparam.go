package engine

import (
	"container/list"
	"strings"
	"sync"

	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/opt"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Auto-parameterization front door. Ad-hoc SELECT text is normalized by
// sql.Normalizer before it ever reaches the parser: literals become @__pN
// parameters and the remaining tokens render in canonical form, so every
// literal variant of one query shape maps to ONE cached parse tree and,
// through it, ONE cached plan (paper §5.1: cached dynamic plans "avoid the
// need for frequent reoptimization"). On a shape hit the per-execution work
// is one zero-allocation normalization pass plus a map lookup — no lexing
// into tokens, no AST, no optimizer.

// defaultAutoCacheCap bounds the per-database shape cache; beyond it the
// least recently used shape is evicted and will re-parse on next use.
const defaultAutoCacheCap = 512

// normPool recycles Normalizers across executions and goroutines. Each
// instance keeps its grown buffers, so steady-state normalization performs
// no allocations.
var normPool = sync.Pool{New: func() any { return new(sql.Normalizer) }}

// autoEntry is one cached query shape: the statement parsed from the
// normalized key. stmt is nil for negative entries — shapes the front door
// must skip every time (the key failed to parse, parsed to a non-SELECT, or
// carries WITH FRESHNESS, which is planned per execution and bypasses the
// plan cache anyway). Negative entries make repeated bad or ineligible text
// cost one lookup instead of one parse.
type autoEntry struct {
	key  string
	stmt *sql.SelectStmt
}

// autoLRU mirrors planLRU for parsed shapes. get takes the key as bytes:
// the compiler's map[string(bytes)] lookup optimization keeps cache hits
// allocation-free; only put (a miss, already paying a parse) materializes
// the key string.
type autoLRU struct {
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

func newAutoLRU(cap int) *autoLRU {
	if cap <= 0 {
		cap = defaultAutoCacheCap
	}
	return &autoLRU{cap: cap, items: make(map[string]*list.Element), order: list.New()}
}

func (c *autoLRU) get(key []byte) (*autoEntry, bool) {
	el, ok := c.items[string(key)]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*autoEntry), true
}

func (c *autoLRU) put(e *autoEntry) {
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.items[e.key] = c.order.PushFront(e)
	for len(c.items) > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*autoEntry).key)
		metrics.Default.Counter("engine.autoparam_evictions").Add(1)
	}
}

func (c *autoLRU) clear() {
	c.items = make(map[string]*list.Element)
	c.order.Init()
}

func (c *autoLRU) len() int { return len(c.items) }

// autoParse resolves sqlText through the auto-parameterization cache.
// ok=false means the text is not eligible (not a plain SELECT, disabled, or
// a negative-cached shape) and the caller takes the ordinary parse path.
// On ok=true the returned statement is the SHARED parsed form of the shape —
// callers must treat it as read-only — and args holds the literal values in
// @__p0.. order. args aliases the returned Normalizer's buffers: hand norm
// back to normPool only once args is no longer needed.
func (db *Database) autoParse(sqlText string) (stmt *sql.SelectStmt, args []types.Value, norm *sql.Normalizer, ok bool) {
	if db.autoOff {
		return nil, nil, nil, false
	}
	n := normPool.Get().(*sql.Normalizer)
	key, vals, okN := n.Normalize(sqlText)
	if !okN {
		normPool.Put(n)
		metrics.Default.Counter("engine.autoparam_bypass").Add(1)
		return nil, nil, nil, false
	}
	db.autoMu.Lock()
	if e, hit := db.autoCache.get(key); hit {
		db.autoMu.Unlock()
		if e.stmt == nil {
			normPool.Put(n)
			metrics.Default.Counter("engine.autoparam_bypass").Add(1)
			return nil, nil, nil, false
		}
		metrics.Default.Counter("engine.autoparam_hits").Add(1)
		return e.stmt, vals, n, true
	}
	db.autoMu.Unlock()
	metrics.Default.Counter("engine.autoparam_misses").Add(1)

	// Miss: parse the normalized key once (outside the lock — a concurrent
	// miss on the same shape just parses twice and the second put wins).
	// The key is itself valid SQL in canonical token form, so the parsed
	// statement's deparse — the plan-cache key — is canonical for the shape.
	e := &autoEntry{key: string(key)}
	if parsed, err := sql.Parse(e.key); err == nil {
		if sel, isSel := parsed.(*sql.SelectStmt); isSel && sel.Freshness == nil {
			// Warm the deparse memo before the statement is shared across
			// goroutines; afterwards CacheKey is a read-only field access.
			sel.CacheKey()
			e.stmt = sel
			if db.role == Cache {
				// Safety probe, once per shape: cached-view matching is
				// predicate subsumption against literal values, which @__pN
				// placeholders hide. If the parameterized plan still needs
				// the backend, a literal-bearing text might have matched a
				// cached view and stayed local — so the shape is unsafe to
				// auto-parameterize and every text plans individually with
				// its literals intact (SQL Server applies the same
				// conservatism to its simple parameterization).
				if plan, _, perr := db.planCached(sel); perr != nil || plan.NeedsParams {
					e.stmt = nil
				}
			}
		}
	}
	db.autoMu.Lock()
	db.autoCache.put(e)
	db.autoMu.Unlock()
	if e.stmt == nil {
		normPool.Put(n)
		metrics.Default.Counter("engine.autoparam_bypass").Add(1)
		return nil, nil, nil, false
	}
	return e.stmt, vals, n, true
}

// AutoParamCacheSize reports the number of cached shapes (including
// negative entries); used by tests.
func (db *Database) AutoParamCacheSize() int {
	db.autoMu.Lock()
	defer db.autoMu.Unlock()
	return db.autoCache.len()
}

// AutoParamProbe resolves sqlText against the auto-parameterization front
// door without executing anything, reporting whether the text resolved to a
// cached shape. On a warm shape this is the complete cache-hit key
// computation — normalize, shape lookup, literal extraction — and performs
// zero allocations; benchmarks and the CI allocation gate measure it in
// isolation through this entry point.
func (db *Database) AutoParamProbe(sqlText string) bool {
	_, _, norm, ok := db.autoParse(sqlText)
	if !ok {
		return false
	}
	normPool.Put(norm)
	return true
}

// bindParams installs one execution's parameters on ctx: the named map —
// merged with the auto-parameterized literals when the plan forwards
// parameters to the backend by name — plus the dense slot bindings the
// plan's compiled expressions read without a map lookup (see
// exec.AssignParamSlots). Slots left unbound fall back to the named map at
// Eval time, so missing-parameter errors surface exactly as before.
func bindParams(plan *opt.Plan, params exec.Params, autoArgs []types.Value, ctx *exec.Ctx) {
	if len(autoArgs) > 0 && plan.NeedsParams {
		merged := make(exec.Params, len(params)+len(autoArgs))
		for k, v := range params {
			merged[k] = v
		}
		for i, v := range autoArgs {
			merged[sql.AutoParamName(i)] = v
		}
		params = merged
	}
	ctx.Params = params
	ctx.Env.Named = params
	n := len(plan.Params)
	if n == 0 {
		return
	}
	ctx.Env.Slots = make([]types.Value, n)
	ctx.Env.Bound = make([]bool, n)
	for i, name := range plan.Params {
		if idx, isAuto := sql.AutoParamIndex(name); isAuto && idx < len(autoArgs) {
			ctx.Env.Slots[i], ctx.Env.Bound[i] = autoArgs[idx], true
		} else if v, okP := params[name]; okP {
			ctx.Env.Slots[i], ctx.Env.Bound[i] = v, true
		}
	}
}

// formatLiterals renders the literal values bound to a captured slow query
// ("" when the execution was not auto-parameterized), so sys.query_plans
// can show a concrete reproducing invocation next to the normalized shape.
func formatLiterals(autoArgs []types.Value) string {
	if len(autoArgs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range autoArgs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('@')
		b.WriteString(sql.AutoParamName(i))
		b.WriteString(" = ")
		if v.K == types.KindString {
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(v.Str(), "'", "''"))
			b.WriteByte('\'')
		} else {
			b.WriteString(v.String())
		}
	}
	return b.String()
}
