package engine

import (
	"fmt"
	"strings"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/opt"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// mvPlan is the compiled maintenance recipe for one materialized view:
// evaluate the predicate on a base row, project the view row.
type mvPlan struct {
	view  *catalog.Table
	pred  exec.Expr // nil = no predicate
	ords  []int     // base-table ordinals projected into the view
	pkLen int
}

// maintainViews synchronously maintains local (non-cached) materialized
// views over a base table inside the updating transaction. Because the
// maintenance writes run in the same transaction, the WAL records them under
// the view's name — which is exactly what lets replication articles be
// defined over materialized views as well as tables (paper §2.2: "an article
// is defined by a select-project expression over a table or a materialized
// view").
func (db *Database) maintainViews(tx *storage.Txn, base *catalog.Table, op storage.ChangeOp, oldRow, newRow types.Row) error {
	for _, v := range db.cat.Tables() {
		if !v.IsView || !v.Materialized || v.Cached {
			continue
		}
		mp, err := db.mvPlanFor(v, base)
		if err != nil {
			return err
		}
		if mp == nil {
			continue // view over a different table
		}
		if err := db.applyMVChange(tx, mp, op, oldRow, newRow); err != nil {
			return err
		}
	}
	return nil
}

// mvPlanFor compiles (and caches) the maintenance plan of view v if it is a
// select-project view over base; returns nil otherwise.
func (db *Database) mvPlanFor(v *catalog.Table, base *catalog.Table) (*mvPlan, error) {
	if cached, ok := db.mvPlans.Load(v); ok {
		mp := cached.(*mvPlan)
		if mp == nil {
			return nil, nil
		}
		// Cache hit is only valid for the same base table.
		if len(v.ViewDef.From) == 1 {
			if tn, ok := v.ViewDef.From[0].(*sql.TableName); ok && strings.EqualFold(tn.Name, base.Name) {
				return mp, nil
			}
		}
		return nil, nil
	}
	def := v.ViewDef
	if len(def.From) != 1 || def.GroupBy != nil || def.Top != nil || def.Distinct {
		db.mvPlans.Store(v, (*mvPlan)(nil))
		return nil, nil
	}
	tn, ok := def.From[0].(*sql.TableName)
	if !ok || !strings.EqualFold(tn.Name, base.Name) {
		return nil, nil // might match another base; don't negative-cache
	}
	mp := &mvPlan{view: v, pkLen: len(v.PrimaryKey)}
	if def.Where != nil {
		pred, err := opt.CompileScalar(def.Where, base)
		if err != nil {
			return nil, fmt.Errorf("engine: maintaining %s: %w", v.Name, err)
		}
		mp.pred = pred
	}
	for _, item := range def.Columns {
		if item.Star {
			for i := range base.Columns {
				mp.ords = append(mp.ords, i)
			}
			continue
		}
		ref, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			db.mvPlans.Store(v, (*mvPlan)(nil))
			return nil, nil
		}
		ord := base.ColumnIndex(ref.Name)
		if ord < 0 {
			return nil, fmt.Errorf("engine: view %s projects unknown column %s", v.Name, ref.Name)
		}
		mp.ords = append(mp.ords, ord)
	}
	db.mvPlans.Store(v, mp)
	return mp, nil
}

func (mp *mvPlan) project(row types.Row) types.Row {
	out := make(types.Row, len(mp.ords))
	for i, ord := range mp.ords {
		out[i] = row[ord]
	}
	return out
}

func (mp *mvPlan) matches(row types.Row) (bool, error) {
	if mp.pred == nil {
		return true, nil
	}
	return exec.EvalBool(mp.pred, row, nil)
}

func (db *Database) applyMVChange(tx *storage.Txn, mp *mvPlan, op storage.ChangeOp, oldRow, newRow types.Row) error {
	oldIn, newIn := false, false
	var err error
	if oldRow != nil {
		if oldIn, err = mp.matches(oldRow); err != nil {
			return err
		}
	}
	if newRow != nil {
		if newIn, err = mp.matches(newRow); err != nil {
			return err
		}
	}
	vName := mp.view.Name
	switch {
	case op == storage.OpInsert && newIn:
		_, err = tx.Insert(vName, mp.project(newRow))
	case op == storage.OpDelete && oldIn:
		err = deleteViewRow(tx, mp, mp.project(oldRow))
	case op == storage.OpUpdate:
		switch {
		case oldIn && newIn:
			err = updateViewRow(tx, mp, mp.project(oldRow), mp.project(newRow))
		case oldIn:
			err = deleteViewRow(tx, mp, mp.project(oldRow))
		case newIn:
			_, err = tx.Insert(vName, mp.project(newRow))
		}
	}
	return err
}

// locateViewRow finds the stored view row equal to target (by PK when the
// view kept one, by full-row equality otherwise).
func locateViewRow(tx *storage.Txn, mp *mvPlan, target types.Row) (storage.RowID, error) {
	td := tx.Table(mp.view.Name)
	if td == nil {
		return -1, fmt.Errorf("engine: no storage for view %s", mp.view.Name)
	}
	if mp.pkLen > 0 {
		key := make(types.Row, mp.pkLen)
		for i, ord := range mp.view.PrimaryKey {
			key[i] = target[ord]
		}
		return td.PKLookup(key), nil
	}
	found := storage.RowID(-1)
	td.Scan(func(rid storage.RowID, row types.Row) bool {
		if types.RowsEqual(row, target) {
			found = rid
			return false
		}
		return true
	})
	return found, nil
}

func deleteViewRow(tx *storage.Txn, mp *mvPlan, target types.Row) error {
	rid, err := locateViewRow(tx, mp, target)
	if err != nil {
		return err
	}
	if rid < 0 {
		return fmt.Errorf("engine: view %s out of sync: row %v missing", mp.view.Name, target)
	}
	return tx.Delete(mp.view.Name, rid)
}

func updateViewRow(tx *storage.Txn, mp *mvPlan, oldTarget, newTarget types.Row) error {
	rid, err := locateViewRow(tx, mp, oldTarget)
	if err != nil {
		return err
	}
	if rid < 0 {
		return fmt.Errorf("engine: view %s out of sync: row %v missing", mp.view.Name, oldTarget)
	}
	return tx.Update(mp.view.Name, rid, newTarget)
}
