package engine

import (
	"fmt"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/opt"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// execDML routes a data modification. On a cache server the statement is
// deparsed and forwarded to the backend unchanged — the application never
// knows it talked to a cache (paper §5). On the backend it executes locally
// inside its own transaction.
func (db *Database) execDML(stmt sql.Statement, params exec.Params) (*Result, error) {
	// Virtual system tables are read-only everywhere — reject before the
	// cache role forwards the statement to a backend that would only reject
	// it against *its own* sys tables.
	if t := db.virtualDMLTarget(stmt); t != nil {
		return nil, fmt.Errorf("engine: %s is a read-only system table", t.Name)
	}
	if db.role == Cache {
		if db.remote == nil {
			return nil, fmt.Errorf("engine: cache has no backend link for update forwarding")
		}
		// Prefer the LSN-acknowledging path: the backend's commit LSN rides
		// back with the row count, giving the session its read-your-writes
		// watermark.
		if lx, ok := db.remote.(exec.LSNExecer); ok {
			n, lsn, err := lx.ExecLSN(sql.Deparse(stmt), params)
			if err != nil {
				return nil, err
			}
			db.invalidateDMLTarget(stmt)
			return &Result{RowsAffected: n, CommitLSN: lsn}, nil
		}
		n, err := db.remote.Exec(sql.Deparse(stmt), params)
		if err != nil {
			return nil, err
		}
		db.invalidateDMLTarget(stmt)
		return &Result{RowsAffected: n}, nil
	}
	tx := db.store.Begin(true)
	n, err := db.execDMLInTxn(stmt, params, tx)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	lsn, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	db.invalidateDMLTarget(stmt)
	return &Result{RowsAffected: n, CommitLSN: lsn}, nil
}

// invalidateDMLTarget drops intermediates derived from a DML statement's
// target table, after the write committed (locally on a backend, at the
// backend for a cache's forwarded write — the forwarding cache must not
// keep serving its own overwritten read).
func (db *Database) invalidateDMLTarget(stmt sql.Statement) {
	switch x := stmt.(type) {
	case *sql.InsertStmt:
		db.InvalidateIntermediates(x.Table.Name)
	case *sql.UpdateStmt:
		db.InvalidateIntermediates(x.Table.Name)
	case *sql.DeleteStmt:
		db.InvalidateIntermediates(x.Table.Name)
	}
}

// virtualDMLTarget returns the virtual system table a DML statement names,
// or nil. The sys database qualifier alone is enough to reject — a typo'd
// sys.* name must not be silently forwarded to the backend as user DML.
func (db *Database) virtualDMLTarget(stmt sql.Statement) *catalog.Table {
	var tn *sql.TableName
	switch x := stmt.(type) {
	case *sql.InsertStmt:
		tn = x.Table
	case *sql.UpdateStmt:
		tn = x.Table
	case *sql.DeleteStmt:
		tn = x.Table
	}
	if tn == nil {
		return nil
	}
	if t := db.cat.Table(tn.FullName()); t != nil && t.Virtual {
		return t
	}
	if strEqualFold(tn.Database, "sys") {
		return &catalog.Table{Name: tn.FullName(), Virtual: true}
	}
	return nil
}

// execDMLInTxn performs a DML statement inside an open write transaction
// (stored procedures share one transaction across their whole body).
func (db *Database) execDMLInTxn(stmt sql.Statement, params exec.Params, tx *storage.Txn) (int64, error) {
	switch x := stmt.(type) {
	case *sql.InsertStmt:
		return db.execInsert(x, params, tx)
	case *sql.UpdateStmt:
		return db.execUpdate(x, params, tx)
	case *sql.DeleteStmt:
		return db.execDelete(x, params, tx)
	}
	return 0, fmt.Errorf("engine: not a DML statement: %T", stmt)
}

func (db *Database) execInsert(x *sql.InsertStmt, params exec.Params, tx *storage.Txn) (int64, error) {
	t := db.cat.Table(x.Table.Name)
	if t == nil {
		return 0, fmt.Errorf("engine: table %s does not exist", x.Table.Name)
	}
	colOrds, err := insertColumnOrds(t, x.Columns)
	if err != nil {
		return 0, err
	}
	var count int64
	insertRow := func(vals []types.Value) error {
		row, err := buildInsertRow(t, colOrds, vals)
		if err != nil {
			return err
		}
		if _, err := tx.Insert(t.Name, row); err != nil {
			return err
		}
		if err := db.maintainViews(tx, t, storage.OpInsert, nil, row); err != nil {
			return err
		}
		count++
		return nil
	}

	if x.Select != nil {
		plan, err := db.Plan(x.Select)
		if err != nil {
			return 0, err
		}
		rs, err := exec.Run(exec.CloneOperator(plan.Root), &exec.Ctx{Params: params, Txn: tx, Remote: db.remote, EstRows: plan.Card})
		if err != nil {
			return 0, err
		}
		for _, r := range rs.Rows {
			if err := insertRow(r); err != nil {
				return 0, err
			}
		}
		return count, nil
	}
	sc := &scopeless{}
	env := &exec.Env{Named: params}
	for _, exprRow := range x.Rows {
		vals := make([]types.Value, len(exprRow))
		for i, e := range exprRow {
			ce, err := sc.compile(e)
			if err != nil {
				return 0, err
			}
			v, err := ce.Eval(nil, env)
			if err != nil {
				return 0, err
			}
			vals[i] = v
		}
		if err := insertRow(vals); err != nil {
			return 0, err
		}
	}
	return count, nil
}

// scopeless compiles expressions that may reference only literals and
// parameters (VALUES rows, SET right-hand sides without columns).
type scopeless struct{}

func (s *scopeless) compile(e sql.Expr) (exec.Expr, error) {
	return opt.CompileScalar(e, nil)
}

func insertColumnOrds(t *catalog.Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		ords := make([]int, len(t.Columns))
		for i := range ords {
			ords[i] = i
		}
		return ords, nil
	}
	ords := make([]int, len(cols))
	for i, c := range cols {
		ord := t.ColumnIndex(c)
		if ord < 0 {
			return nil, fmt.Errorf("engine: column %s not in %s", c, t.Name)
		}
		ords[i] = ord
	}
	return ords, nil
}

func buildInsertRow(t *catalog.Table, colOrds []int, vals []types.Value) (types.Row, error) {
	if len(vals) != len(colOrds) {
		return nil, fmt.Errorf("engine: %s: %d values for %d columns", t.Name, len(vals), len(colOrds))
	}
	row := make(types.Row, len(t.Columns))
	assigned := make([]bool, len(t.Columns))
	for i, ord := range colOrds {
		v, err := vals[i].Cast(t.Columns[ord].Type)
		if err != nil {
			return nil, fmt.Errorf("engine: column %s: %w", t.Columns[ord].Name, err)
		}
		row[ord] = v
		assigned[ord] = true
	}
	for i, col := range t.Columns {
		if assigned[i] {
			continue
		}
		if col.Default != nil {
			ce, err := opt.CompileScalar(col.Default, nil)
			if err != nil {
				return nil, err
			}
			v, err := ce.Eval(nil, nil)
			if err != nil {
				return nil, err
			}
			row[i], err = v.Cast(col.Type)
			if err != nil {
				return nil, err
			}
			continue
		}
		if col.NotNull {
			return nil, fmt.Errorf("engine: column %s of %s is NOT NULL and has no default", col.Name, t.Name)
		}
		row[i] = types.Null
	}
	return row, nil
}

// targetRows finds the RowIDs a WHERE clause selects, using the primary key
// when the predicate pins every key column (the hot path for OLTP updates).
func (db *Database) targetRows(t *catalog.Table, where sql.Expr, params exec.Params, tx *storage.Txn) ([]storage.RowID, exec.Expr, error) {
	td := tx.Table(t.Name)
	if td == nil {
		return nil, nil, fmt.Errorf("engine: no storage for %s", t.Name)
	}
	var filter exec.Expr
	if where != nil {
		f, err := opt.CompileScalar(where, t)
		if err != nil {
			return nil, nil, err
		}
		filter = f
	}

	// PK fast path.
	if where != nil && len(t.PrimaryKey) > 0 {
		if key, ok := pkKey(t, where, params); ok {
			rid := td.PKLookup(key)
			if rid < 0 {
				return nil, filter, nil
			}
			return []storage.RowID{rid}, filter, nil
		}
	}

	var rids []storage.RowID
	var evalErr error
	env := &exec.Env{Named: params}
	td.Scan(func(rid storage.RowID, row types.Row) bool {
		if filter != nil {
			ok, err := exec.EvalBool(filter, row, env)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		rids = append(rids, rid)
		return true
	})
	if evalErr != nil {
		return nil, nil, evalErr
	}
	return rids, filter, nil
}

// pkKey extracts a full primary-key binding from equality conjuncts.
func pkKey(t *catalog.Table, where sql.Expr, params exec.Params) (types.Row, bool) {
	bindings := map[string]types.Value{}
	for _, c := range opt.Conjuncts(where) {
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != sql.OpEQ {
			continue
		}
		ref, val := be.L, be.R
		if _, ok := ref.(*sql.ColumnRef); !ok {
			ref, val = be.R, be.L
		}
		cr, ok := ref.(*sql.ColumnRef)
		if !ok {
			continue
		}
		switch v := val.(type) {
		case *sql.Literal:
			bindings[keyLower(cr.Name)] = v.Val
		case *sql.Param:
			if pv, ok := params[v.Name]; ok {
				bindings[keyLower(cr.Name)] = pv
			}
		}
	}
	key := make(types.Row, len(t.PrimaryKey))
	for i, ord := range t.PrimaryKey {
		v, ok := bindings[keyLower(t.Columns[ord].Name)]
		if !ok {
			return nil, false
		}
		cast, err := v.Cast(t.Columns[ord].Type)
		if err != nil {
			return nil, false
		}
		key[i] = cast
	}
	return key, true
}

func keyLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func (db *Database) execUpdate(x *sql.UpdateStmt, params exec.Params, tx *storage.Txn) (int64, error) {
	t := db.cat.Table(x.Table.Name)
	if t == nil {
		return 0, fmt.Errorf("engine: table %s does not exist", x.Table.Name)
	}
	rids, _, err := db.targetRows(t, x.Where, params, tx)
	if err != nil {
		return 0, err
	}
	type setOp struct {
		ord int
		e   exec.Expr
	}
	var sets []setOp
	for _, a := range x.Set {
		ord := t.ColumnIndex(a.Column)
		if ord < 0 {
			return 0, fmt.Errorf("engine: column %s not in %s", a.Column, t.Name)
		}
		ce, err := opt.CompileScalar(a.Expr, t)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setOp{ord: ord, e: ce})
	}
	td := tx.Table(t.Name)
	env := &exec.Env{Named: params}
	var count int64
	for _, rid := range rids {
		old := td.Get(rid)
		if old == nil {
			continue
		}
		newRow := old.Clone()
		for _, s := range sets {
			v, err := s.e.Eval(old, env)
			if err != nil {
				return 0, err
			}
			newRow[s.ord], err = v.Cast(t.Columns[s.ord].Type)
			if err != nil {
				return 0, err
			}
		}
		if err := tx.Update(t.Name, rid, newRow); err != nil {
			return 0, err
		}
		if err := db.maintainViews(tx, t, storage.OpUpdate, old, newRow); err != nil {
			return 0, err
		}
		count++
	}
	return count, nil
}

func (db *Database) execDelete(x *sql.DeleteStmt, params exec.Params, tx *storage.Txn) (int64, error) {
	t := db.cat.Table(x.Table.Name)
	if t == nil {
		return 0, fmt.Errorf("engine: table %s does not exist", x.Table.Name)
	}
	rids, _, err := db.targetRows(t, x.Where, params, tx)
	if err != nil {
		return 0, err
	}
	td := tx.Table(t.Name)
	var count int64
	for _, rid := range rids {
		old := td.Get(rid)
		if old == nil {
			continue
		}
		if err := tx.Delete(t.Name, rid); err != nil {
			return 0, err
		}
		if err := db.maintainViews(tx, t, storage.OpDelete, old, nil); err != nil {
			return 0, err
		}
		count++
	}
	return count, nil
}
