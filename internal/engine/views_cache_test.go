package engine

import "testing"

// TestMVPlanCachePerDatabase: maintenance-plan caching is scoped to one
// Database — populating one database's cache leaves another untouched, and
// InvalidatePlans empties only its own.
func TestMVPlanCachePerDatabase(t *testing.T) {
	a := newBackendDB(t)
	b := newBackendDB(t)
	for _, db := range []*Database{a, b} {
		if err := db.ExecScript(`CREATE MATERIALIZED VIEW cheap AS SELECT i_id, i_cost FROM item WHERE i_cost <= 50`); err != nil {
			t.Fatal(err)
		}
	}

	// DML on a populates a's maintenance-plan cache only.
	if _, err := a.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES (700, 'x', 5)", nil); err != nil {
		t.Fatal(err)
	}
	if n := a.mvPlanCacheSize(); n == 0 {
		t.Fatal("DML did not populate the maintenance-plan cache")
	}
	if n := b.mvPlanCacheSize(); n != 0 {
		t.Errorf("database b's cache has %d entries from a's DML", n)
	}

	a.InvalidatePlans()
	if n := a.mvPlanCacheSize(); n != 0 {
		t.Errorf("InvalidatePlans left %d cached maintenance plans", n)
	}
}

// TestMVPlanCacheDropRecreate: dropping and recreating a matview with a
// different definition must not reuse the old maintenance plan (the catalog
// table pointer keys the cache and DDL invalidates it).
func TestMVPlanCacheDropRecreate(t *testing.T) {
	db := newBackendDB(t)
	if err := db.ExecScript(`CREATE MATERIALIZED VIEW cheap AS SELECT i_id, i_cost FROM item WHERE i_cost <= 50`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES (701, 'x', 5)", nil); err != nil {
		t.Fatal(err)
	}
	if db.mvPlanCacheSize() == 0 {
		t.Fatal("cache not populated")
	}

	if err := db.ExecScript(`DROP VIEW cheap`); err != nil {
		t.Fatal(err)
	}
	if n := db.mvPlanCacheSize(); n != 0 {
		t.Fatalf("DROP VIEW left %d cached plans", n)
	}
	if err := db.ExecScript(`CREATE MATERIALIZED VIEW cheap AS SELECT i_id, i_cost FROM item WHERE i_cost > 100`); err != nil {
		t.Fatal(err)
	}
	// The new definition governs maintenance: a cost-5 row must NOT appear.
	if _, err := db.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES (702, 'y', 5)", nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM cheap WHERE i_id = 702", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Error("recreated view used a stale maintenance plan (old predicate applied)")
	}
	if _, err := db.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES (703, 'z', 150)", nil); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec("SELECT COUNT(*) FROM cheap WHERE i_id = 703", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Error("recreated view did not maintain under its new predicate")
	}
}
