package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/types"
)

// Ten literal variants of one query shape must share a single parsed
// statement and a single cached plan.
func TestAutoParamSharesOnePlan(t *testing.T) {
	db := newBackendDB(t)
	db.InvalidatePlans()
	hits0 := metrics.Default.Counter("engine.autoparam_hits").Value()
	for i := 1; i <= 10; i++ {
		res, err := db.Exec(fmt.Sprintf("SELECT i_title FROM item WHERE i_id = %d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("i_id=%d: %d rows", i, len(res.Rows))
		}
	}
	if n := db.PlanCacheSize(); n != 1 {
		t.Errorf("plan cache holds %d plans for one shape, want 1", n)
	}
	if n := db.AutoParamCacheSize(); n != 1 {
		t.Errorf("auto-param cache holds %d shapes, want 1", n)
	}
	if hits := metrics.Default.Counter("engine.autoparam_hits").Value() - hits0; hits < 9 {
		t.Errorf("autoparam hits = %d, want >= 9", hits)
	}
	// DDL invalidation clears the shape cache along with the plans.
	db.InvalidatePlans()
	if n := db.AutoParamCacheSize(); n != 0 {
		t.Errorf("auto-param cache not cleared by InvalidatePlans: %d", n)
	}
}

// Property: an auto-parameterized execution returns byte-identical results
// to the same text executed with auto-parameterization disabled, for
// arbitrary literal values and shapes.
func TestAutoParamExecutionEquivalence(t *testing.T) {
	auto := newBackendDB(t)
	plain := newBackendDB(t)
	plain.autoOff = true

	r := rand.New(rand.NewSource(31))
	shapes := []func() string{
		func() string {
			return fmt.Sprintf("SELECT i_id, i_title, i_cost FROM item WHERE i_id = %d", r.Intn(250))
		},
		func() string {
			return fmt.Sprintf("SELECT i_id FROM item WHERE i_cost > %d.%d AND i_id < %d ORDER BY i_id",
				r.Intn(200), r.Intn(10), r.Intn(250))
		},
		func() string {
			return fmt.Sprintf("SELECT i_title, COUNT(*) AS c FROM item WHERE i_id <= %d GROUP BY i_title ORDER BY c DESC, i_title", r.Intn(250))
		},
		func() string {
			return fmt.Sprintf("SELECT i_id FROM item WHERE i_title = 'book%s' AND i_stock = %d ORDER BY i_id",
				[]string{"", "x", "xx"}[r.Intn(3)], 100)
		},
		func() string {
			return fmt.Sprintf("SELECT TOP 5 i_id, i_cost * %d AS v FROM item WHERE i_id IN (%d, %d, %d) ORDER BY i_id",
				r.Intn(9)+1, r.Intn(250), r.Intn(250), r.Intn(250))
		},
	}
	for trial := 0; trial < 150; trial++ {
		q := shapes[trial%len(shapes)]()
		a, errA := auto.Exec(q, nil)
		p, errP := plain.Exec(q, nil)
		if (errA == nil) != (errP == nil) {
			t.Fatalf("%s: error divergence: auto=%v plain=%v", q, errA, errP)
		}
		if errA != nil {
			continue
		}
		if fmt.Sprint(a.Cols) != fmt.Sprint(p.Cols) {
			t.Fatalf("%s: cols diverge\nauto:  %v\nplain: %v", q, a.Cols, p.Cols)
		}
		if len(a.Rows) != len(p.Rows) {
			t.Fatalf("%s: %d rows auto vs %d plain", q, len(a.Rows), len(p.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				av, pv := a.Rows[i][j], p.Rows[i][j]
				if av.K != pv.K || types.Compare(av, pv) != 0 {
					t.Fatalf("%s: row %d col %d: %v (%v) vs %v (%v)", q, i, j, av, av.K, pv, pv.K)
				}
			}
		}
	}
	if plain.PlanCacheSize() <= auto.PlanCacheSize() {
		t.Errorf("literal-distinct texts should cache more plans without auto-param: auto=%d plain=%d",
			auto.PlanCacheSize(), plain.PlanCacheSize())
	}
}

// Property: serial batch, forced row-at-a-time, and parallel execution all
// return identical results (ordered queries for a stable comparison). Run
// under -race this also exercises the Exchange workers sharing one Env.
func TestAutoParamRowBatchParallelEquivalence(t *testing.T) {
	batch := newParallelDB(t, 6000)
	row := newParallelDB(t, 6000)
	row.rowMode = true

	queries := []string{
		"SELECT id, val FROM big WHERE val >= 100.0 ORDER BY id",
		"SELECT grp, COUNT(*) AS c, SUM(val) AS s FROM big WHERE id < 5000 GROUP BY grp ORDER BY grp",
		"SELECT a.id, b.val FROM big a INNER JOIN big b ON a.id = b.id WHERE a.grp = 7 ORDER BY a.id",
	}
	for _, q := range queries {
		bres, err := batch.Exec(q, nil)
		if err != nil {
			t.Fatalf("batch %s: %v", q, err)
		}
		rres, err := row.Exec(q, nil)
		if err != nil {
			t.Fatalf("row %s: %v", q, err)
		}
		// Same engine re-planned serial: flip MaxDOP to compare parallel vs
		// serial output of the identical database.
		opts := batch.Options()
		prevDOP := opts.MaxDOP
		opts.MaxDOP = 1
		batch.SetOptions(opts)
		sres, err := batch.Exec(q, nil)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		opts.MaxDOP = prevDOP
		batch.SetOptions(opts)

		for name, res := range map[string]*Result{"row": rres, "serial": sres} {
			if len(res.Rows) != len(bres.Rows) {
				t.Fatalf("%s vs batch %s: %d vs %d rows", name, q, len(res.Rows), len(bres.Rows))
			}
			for i := range res.Rows {
				for j := range res.Rows[i] {
					if types.Compare(res.Rows[i][j], bres.Rows[i][j]) != 0 {
						t.Fatalf("%s vs batch %s: row %d col %d: %v vs %v",
							name, q, i, j, res.Rows[i][j], bres.Rows[i][j])
					}
				}
			}
		}
	}
}

// Allocation regression gate: resolving a warmed shape — normalize, cache
// lookup, literal extraction — performs zero allocations.
func TestAutoParamCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	db := newBackendDB(t)
	const q = "SELECT i_title FROM item WHERE i_id = 123"
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatal(err)
	}
	// Warm the pooled normalizer.
	if _, _, norm, ok := db.autoParse(q); !ok {
		t.Fatal("shape not cached")
	} else {
		normPool.Put(norm)
	}
	if avg := testing.AllocsPerRun(500, func() {
		stmt, args, norm, ok := db.autoParse(q)
		if !ok || stmt == nil || len(args) != 1 {
			t.Fatal("cache hit failed")
		}
		normPool.Put(norm)
	}); avg != 0 {
		t.Errorf("cache-hit key computation: %.1f allocs/op, want 0", avg)
	}
}

// User-supplied named parameters and auto-parameterized literals coexist in
// one statement.
func TestAutoParamMixedWithUserParams(t *testing.T) {
	db := newBackendDB(t)
	res, err := db.Exec("SELECT i_id FROM item WHERE i_id = @id AND i_stock = 100",
		exec.Params{"id": types.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Fatalf("mixed params: %v", res.Rows)
	}
}

// On a cache, shapes whose parameterized plan would go remote are negative-
// cached: each literal text plans individually so cached-view predicate
// matching keeps seeing literal values.
func TestAutoParamUnsafeShapesBypassOnCache(t *testing.T) {
	_, cache := newCachePair(t)
	for i := 0; i < 3; i++ {
		res, err := cache.Exec("SELECT i_title FROM item WHERE i_id = 17", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Counters.RemoteQueries != 1 {
			t.Fatalf("run %d: rows=%d remote=%d", i, len(res.Rows), res.Counters.RemoteQueries)
		}
	}
	// The shape is retained as a negative entry: present in the cache, but
	// executions keep taking the ordinary literal-preserving path.
	if n := cache.AutoParamCacheSize(); n < 1 {
		t.Errorf("negative shape not retained: %d", n)
	}
}
