package engine

import (
	"strings"
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

func newBackendDB(t *testing.T) *Database {
	t.Helper()
	db := New(Config{Name: "backend", Role: Backend})
	err := db.ExecScript(`
		CREATE TABLE item (
			i_id INT PRIMARY KEY,
			i_title VARCHAR(60) NOT NULL,
			i_cost FLOAT,
			i_stock INT DEFAULT 100
		);
		CREATE INDEX ix_item_title ON item (i_title);
		CREATE TABLE orders (
			o_id INT PRIMARY KEY,
			o_i_id INT,
			o_qty INT
		);
	`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		title := "'book" + strings.Repeat("x", i%3) + "'"
		_, err := db.Exec(
			"INSERT INTO item (i_id, i_title, i_cost) VALUES ("+itoa(i)+", "+title+", "+itoa(i)+".5)", nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func itoa(i int) string {
	return string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestDDLAndInsertSelect(t *testing.T) {
	db := newBackendDB(t)
	res, err := db.Exec("SELECT COUNT(*) FROM item", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 200 {
		t.Fatalf("count: %v", res.Rows[0][0])
	}
}

func TestInsertDefaultsAndNotNull(t *testing.T) {
	db := newBackendDB(t)
	if _, err := db.Exec("INSERT INTO item (i_id, i_title) VALUES (999, 'x')", nil); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT i_stock, i_cost FROM item WHERE i_id = 999", nil)
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("default not applied: %v", res.Rows[0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("missing nullable column should be NULL: %v", res.Rows[0])
	}
	if _, err := db.Exec("INSERT INTO item (i_id) VALUES (1000)", nil); err == nil {
		t.Error("NOT NULL without default should fail")
	}
}

func TestInsertCastsValues(t *testing.T) {
	db := newBackendDB(t)
	// i_cost is FLOAT; give an INT literal. i_id INT; give a string.
	if _, err := db.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES ('777', 't', 3)", nil); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT i_cost FROM item WHERE i_id = 777", nil)
	if res.Rows[0][0].K != types.KindFloat || res.Rows[0][0].Float() != 3 {
		t.Errorf("cast on insert: %v", res.Rows[0][0])
	}
}

func TestUpdateByPrimaryKey(t *testing.T) {
	db := newBackendDB(t)
	res, err := db.Exec("UPDATE item SET i_cost = i_cost + 1 WHERE i_id = 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("affected: %d", res.RowsAffected)
	}
	check, _ := db.Exec("SELECT i_cost FROM item WHERE i_id = 5", nil)
	if check.Rows[0][0].Float() != 6.5 {
		t.Errorf("value: %v", check.Rows[0][0])
	}
}

func TestUpdateWithParams(t *testing.T) {
	db := newBackendDB(t)
	res, err := db.Exec("UPDATE item SET i_stock = @s WHERE i_id = @id", map[string]types.Value{
		"s": types.NewInt(42), "id": types.NewInt(7),
	})
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %v affected=%d", err, res.RowsAffected)
	}
	check, _ := db.Exec("SELECT i_stock FROM item WHERE i_id = 7", nil)
	if check.Rows[0][0].Int() != 42 {
		t.Errorf("value: %v", check.Rows[0][0])
	}
}

func TestDeleteWithPredicate(t *testing.T) {
	db := newBackendDB(t)
	res, err := db.Exec("DELETE FROM item WHERE i_id > 190", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 10 {
		t.Fatalf("deleted: %d", res.RowsAffected)
	}
	check, _ := db.Exec("SELECT COUNT(*) FROM item", nil)
	if check.Rows[0][0].Int() != 190 {
		t.Errorf("remaining: %v", check.Rows[0][0])
	}
}

func TestDMLWritesWAL(t *testing.T) {
	db := newBackendDB(t)
	before := db.Store().WAL().End()
	db.Exec("INSERT INTO orders (o_id, o_i_id, o_qty) VALUES (1, 2, 3)", nil)
	db.Exec("UPDATE orders SET o_qty = 4 WHERE o_id = 1", nil)
	db.Exec("DELETE FROM orders WHERE o_id = 1", nil)
	recs := db.Store().WAL().ReadFrom(before, 0)
	if len(recs) != 3 {
		t.Fatalf("wal records: %d", len(recs))
	}
	if recs[0].Changes[0].Op != storage.OpInsert ||
		recs[1].Changes[0].Op != storage.OpUpdate ||
		recs[2].Changes[0].Op != storage.OpDelete {
		t.Error("op sequence wrong")
	}
}

func TestMaterializedViewMaintenance(t *testing.T) {
	db := newBackendDB(t)
	if err := db.ExecScript(`CREATE MATERIALIZED VIEW cheap AS SELECT i_id, i_title, i_cost FROM item WHERE i_cost <= 50`); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT COUNT(*) FROM cheap", nil)
	initial := res.Rows[0][0].Int()
	if initial != 50 { // costs 1.5 .. 200.5; <= 50 → ids 1..49? 49.5 for id 49 → 49 rows... compute: cost = id + .5 <= 50 → id <= 49.5 → 49 rows
		if initial != 49 {
			t.Fatalf("initial view rows: %d", initial)
		}
	}

	// Insert into the view's range.
	db.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES (500, 'new', 10)", nil)
	res, _ = db.Exec("SELECT COUNT(*) FROM cheap", nil)
	if res.Rows[0][0].Int() != initial+1 {
		t.Error("insert not reflected in MV")
	}
	// Update moving a row out of the view.
	db.Exec("UPDATE item SET i_cost = 1000 WHERE i_id = 500", nil)
	res, _ = db.Exec("SELECT COUNT(*) FROM cheap", nil)
	if res.Rows[0][0].Int() != initial {
		t.Error("update-out not reflected in MV")
	}
	// Update moving a row back in, with changed payload.
	db.Exec("UPDATE item SET i_cost = 20, i_title = 'back' WHERE i_id = 500", nil)
	res, _ = db.Exec("SELECT i_title FROM cheap WHERE i_id = 500", nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "back" {
		t.Errorf("update-in not reflected: %v", res.Rows)
	}
	// Delete.
	db.Exec("DELETE FROM item WHERE i_id = 500", nil)
	res, _ = db.Exec("SELECT COUNT(*) FROM cheap WHERE i_id = 500", nil)
	if res.Rows[0][0].Int() != 0 {
		t.Error("delete not reflected in MV")
	}
	// In-place update within the view.
	db.Exec("UPDATE item SET i_title = 'retitled' WHERE i_id = 10", nil)
	res, _ = db.Exec("SELECT i_title FROM cheap WHERE i_id = 10", nil)
	if res.Rows[0][0].Str() != "retitled" {
		t.Error("in-place update not reflected in MV")
	}
}

func TestMVChangesAppearInWALUnderViewName(t *testing.T) {
	db := newBackendDB(t)
	db.ExecScript(`CREATE MATERIALIZED VIEW cheap AS SELECT i_id, i_cost FROM item WHERE i_cost <= 50`)
	before := db.Store().WAL().End()
	db.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES (600, 'z', 5)", nil)
	recs := db.Store().WAL().ReadFrom(before, 0)
	if len(recs) != 1 {
		t.Fatalf("expected one commit record, got %d", len(recs))
	}
	names := map[string]bool{}
	for _, c := range recs[0].Changes {
		names[c.Table] = true
	}
	if !names["item"] || !names["cheap"] {
		t.Errorf("MV change must be logged in the same transaction: %v", names)
	}
}

func TestStoredProcedureAtomicity(t *testing.T) {
	db := newBackendDB(t)
	err := db.ExecScript(`CREATE PROCEDURE placeOrder @oid INT, @iid INT, @qty INT AS BEGIN
		INSERT INTO orders (o_id, o_i_id, o_qty) VALUES (@oid, @iid, @qty);
		UPDATE item SET i_stock = i_stock - @qty WHERE i_id = @iid;
	END`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("EXEC placeOrder @oid = 1, @iid = 3, @qty = 5", nil); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT i_stock FROM item WHERE i_id = 3", nil)
	if res.Rows[0][0].Int() != 95 {
		t.Errorf("stock: %v", res.Rows[0][0])
	}
	// The procedure body must commit as ONE transaction.
	recs := db.Store().WAL().ReadFrom(db.Store().WAL().End()-1, 1)
	if len(recs) != 1 || len(recs[0].Changes) != 2 {
		t.Errorf("procedure changes should share a commit record: %+v", recs)
	}
	// Failing procedure rolls back entirely: duplicate o_id.
	if _, err := db.Exec("EXEC placeOrder @oid = 1, @iid = 3, @qty = 5", nil); err == nil {
		t.Fatal("duplicate order should fail")
	}
	res, _ = db.Exec("SELECT i_stock FROM item WHERE i_id = 3", nil)
	if res.Rows[0][0].Int() != 95 {
		t.Error("failed procedure partially applied")
	}
}

func TestProcedurePositionalArgs(t *testing.T) {
	db := newBackendDB(t)
	db.ExecScript(`CREATE PROCEDURE getItem @id INT AS SELECT i_title FROM item WHERE i_id = @id`)
	res, err := db.Exec("EXEC getItem 11", nil)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("positional exec: %v %v", err, res)
	}
}

func TestPlanCacheReuse(t *testing.T) {
	db := newBackendDB(t)
	db.Exec("SELECT i_title FROM item WHERE i_id = @id", map[string]types.Value{"id": types.NewInt(1)})
	n := db.PlanCacheSize()
	db.Exec("SELECT i_title FROM item WHERE i_id = @id", map[string]types.Value{"id": types.NewInt(2)})
	if db.PlanCacheSize() != n {
		t.Error("same statement text should reuse the cached plan")
	}
	db.Exec("INSERT INTO orders (o_id, o_i_id, o_qty) VALUES (99, 1, 1)", nil)
}

func TestExplainOutput(t *testing.T) {
	db := newBackendDB(t)
	text, err := db.Explain("SELECT i_title FROM item WHERE i_id = 5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "IndexSeek") {
		t.Errorf("explain should show an index seek:\n%s", text)
	}
}

// ---- cache-role engine tests (in-process link) ----

func newCachePair(t *testing.T) (backend, cache *Database) {
	t.Helper()
	backend = newBackendDB(t)
	cache = New(Config{Name: "cache1", Role: Cache, Remote: NewLink(backend)})
	// Shadow schema: same DDL, no data.
	err := cache.ExecScript(`
		CREATE TABLE item (
			i_id INT PRIMARY KEY,
			i_title VARCHAR(60) NOT NULL,
			i_cost FLOAT,
			i_stock INT DEFAULT 100
		);
		CREATE INDEX ix_item_title ON item (i_title);
		CREATE TABLE orders (
			o_id INT PRIMARY KEY,
			o_i_id INT,
			o_qty INT
		);
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Shadowed statistics.
	for _, name := range []string{"item", "orders"} {
		cache.Catalog().Table(name).Stats = backend.Catalog().Table(name).Stats.Clone()
	}
	return backend, cache
}

func TestCacheForwardsQueriesRemotely(t *testing.T) {
	_, cache := newCachePair(t)
	res, err := cache.Exec("SELECT i_title FROM item WHERE i_id = 17", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Counters.RemoteQueries != 1 {
		t.Errorf("remote queries: %d", res.Counters.RemoteQueries)
	}
}

func TestCacheForwardsDML(t *testing.T) {
	backend, cache := newCachePair(t)
	res, err := cache.Exec("INSERT INTO orders (o_id, o_i_id, o_qty) VALUES (42, 1, 2)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Errorf("affected: %d", res.RowsAffected)
	}
	// The row must land on the backend, not the cache.
	if backend.TableRowCount("orders") != 1 {
		t.Error("forwarded insert missing on backend")
	}
	if cache.TableRowCount("orders") != 0 {
		t.Error("shadow table must stay empty")
	}
	// Parameterized update forwarding.
	_, err = cache.Exec("UPDATE orders SET o_qty = @q WHERE o_id = @id",
		map[string]types.Value{"q": types.NewInt(9), "id": types.NewInt(42)})
	if err != nil {
		t.Fatal(err)
	}
	chk, _ := backend.Exec("SELECT o_qty FROM orders WHERE o_id = 42", nil)
	if chk.Rows[0][0].Int() != 9 {
		t.Error("forwarded update not applied")
	}
}

func TestCacheForwardsUnknownProcedure(t *testing.T) {
	backend, cache := newCachePair(t)
	backend.ExecScript(`CREATE PROCEDURE remoteOnly @id INT AS SELECT i_title FROM item WHERE i_id = @id`)
	res, err := cache.Exec("EXEC remoteOnly @id = 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("forwarded proc rows: %d", len(res.Rows))
	}
}

func TestCacheLocalProcedureRemoteData(t *testing.T) {
	backend, cache := newCachePair(t)
	_ = backend
	// Copy the procedure to the cache; its query still computes remotely.
	if err := cache.CopyProcedureFrom(`CREATE PROCEDURE getItem @id INT AS SELECT i_title FROM item WHERE i_id = @id`); err != nil {
		t.Fatal(err)
	}
	res, err := cache.Exec("EXEC getItem @id = 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Counters.RemoteQueries != 1 {
		t.Errorf("local proc should have fetched remotely: %+v", res.Counters)
	}
}

func TestCachedViewRequiresCacheRole(t *testing.T) {
	db := newBackendDB(t)
	if _, err := db.Exec("CREATE CACHED VIEW v AS SELECT i_id FROM item", nil); err == nil {
		t.Error("CACHED VIEW on backend should fail")
	}
}

func TestCachedViewCreateHookRuns(t *testing.T) {
	_, cache := newCachePair(t)
	called := ""
	cache.OnCachedViewCreate(func(v *catalog.Table) error {
		called = v.Name
		return nil
	})
	if _, err := cache.Exec("CREATE CACHED VIEW items100 AS SELECT i_id, i_title FROM item WHERE i_id <= 100", nil); err != nil {
		t.Fatal(err)
	}
	if called != "items100" {
		t.Errorf("hook not called: %q", called)
	}
	v := cache.Catalog().Table("items100")
	if v == nil || !v.Cached || !v.Materialized {
		t.Error("cached view catalog entry wrong")
	}
	if len(v.PrimaryKey) != 1 {
		t.Errorf("pk not derived: %v", v.PrimaryKey)
	}
}
