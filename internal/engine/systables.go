package engine

import (
	"sort"
	"strings"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/metrics"
	"mtcache/internal/opt"
	"mtcache/internal/querystore"
	"mtcache/internal/types"
)

// This file is the DMV layer: read-only virtual system tables (sys.*)
// that expose the query store, event log, cached-view state, replication
// health and WAL counters through ordinary SQL, the way SQL Server DBAs
// reach the Query Store and DMVs. Virtual tables live in the catalog but
// are excluded from Tables(), so view matching, the advisor, shadow
// export and user listings never see them.

// RegisterVirtualTable installs (or replaces) a read-only virtual system
// table served by fn. Names are full dotted names ("sys.repl_status");
// replacing lets a role-specific provider (backend repl health, cache
// pull state) override the engine's default registration.
func (db *Database) RegisterVirtualTable(name string, cols []catalog.Column, fn func() []types.Row) error {
	err := db.cat.PutVirtualTable(&catalog.Table{Name: name, Columns: cols, RowsFn: fn})
	if err != nil {
		return err
	}
	db.InvalidatePlans()
	return nil
}

// planVariant labels a plan for per-shape accounting: where it runs, plus
// the cached/materialized views it reads, so one query shape's local and
// remote lives are tallied separately.
func planVariant(p *opt.Plan) string {
	var base string
	switch {
	case p.Dynamic:
		base = "dynamic"
	case p.FullyLocal:
		base = "local"
	case p.FullyRemote:
		base = "remote"
	default:
		base = "mixed"
	}
	if len(p.UsedViews) > 0 {
		base += "+" + strings.Join(p.UsedViews, ",")
	}
	return base
}

// servedStaleness is the worst staleness among the cached views and
// intermediate results a plan read — the bound actually served to the
// client. -1 when no probe is wired or the plan read no views.
func (db *Database) servedStaleness(p *opt.Plan) float64 {
	if len(p.UsedViews) == 0 {
		return -1
	}
	worst := -1.0
	for _, v := range p.UsedViews {
		if strings.HasPrefix(v, imViewPrefix) {
			if imc := db.imcacheIfEnabled(); imc != nil {
				if s, ok := imc.Staleness(v, time.Now()); ok && s > worst {
					worst = s
				}
			}
			continue
		}
		if db.stalenessOf != nil {
			if s, ok := db.stalenessOf(v); ok && s > worst {
				worst = s
			}
		}
	}
	return worst
}

// ReplStatusColumns is the canonical sys.repl_status schema, shared by the
// engine's empty default and the role-specific providers in core (backend
// subscription health) and wire (cache pull state).
func ReplStatusColumns() []catalog.Column {
	return []catalog.Column{
		{Name: "name", Type: types.KindString},
		{Name: "detail", Type: types.KindString},
		{Name: "pending", Type: types.KindInt},
		{Name: "apply_errors", Type: types.KindInt},
		{Name: "last_error", Type: types.KindString},
		{Name: "last_lsn", Type: types.KindInt},
		{Name: "staleness_seconds", Type: types.KindFloat},
	}
}

// registerSystemTables installs the engine-level sys.* tables on a new
// database. Registration cannot fail here: the catalog is empty of
// non-virtual entries under these dotted names.
func (db *Database) registerSystemTables() {
	str := func(n string) catalog.Column { return catalog.Column{Name: n, Type: types.KindString} }
	i64 := func(n string) catalog.Column { return catalog.Column{Name: n, Type: types.KindInt} }
	f64 := func(n string) catalog.Column { return catalog.Column{Name: n, Type: types.KindFloat} }

	_ = db.RegisterVirtualTable("sys.query_stats", []catalog.Column{
		str("shape"), i64("executions"), i64("rows_returned"),
		f64("total_ms"), f64("mean_ms"), f64("p50_ms"), f64("p95_ms"), f64("p99_ms"),
		i64("local_execs"), i64("remote_execs"),
		i64("plan_cache_hits"), i64("plan_cache_misses"),
		i64("degraded"), i64("errors"), f64("max_staleness_seconds"), str("last_error"),
	}, queryStatsRows)

	_ = db.RegisterVirtualTable("sys.query_plans", []catalog.Column{
		str("shape"), str("variant"), i64("executions"),
		f64("last_ms"), f64("p95_ms"), str("plan"), str("analyzed"), str("literals"),
	}, queryPlansRows)

	_ = db.RegisterVirtualTable("sys.events", []catalog.Column{
		i64("seq"), {Name: "ts", Type: types.KindTime}, str("kind"), str("trace_id"), str("detail"),
	}, eventsRows)

	_ = db.RegisterVirtualTable("sys.wal_stats", []catalog.Column{
		str("name"), f64("value"),
	}, walStatsRows)

	_ = db.RegisterVirtualTable("sys.cached_views", []catalog.Column{
		str("name"), i64("rows"), i64("hits"), f64("staleness_seconds"),
	}, db.cachedViewsRows)

	_ = db.RegisterVirtualTable("sys.repl_status", ReplStatusColumns(),
		func() []types.Row { return nil })

	_ = db.RegisterVirtualTable("sys.intermediate_results", []catalog.Column{
		str("shape"), str("literals"), str("view_name"), i64("rows"), i64("bytes"),
		i64("hits"), i64("saved_ns"), str("lineage"), i64("computed_lsn"), f64("staleness_seconds"),
	}, db.intermediateResultsRows)
}

func queryStatsRows() []types.Row {
	snaps := querystore.Default.Snapshot()
	rows := make([]types.Row, 0, len(snaps))
	for _, ss := range snaps {
		r := ss.Rollup
		rows = append(rows, types.Row{
			types.NewString(ss.Shape),
			types.NewInt(r.Execs), types.NewInt(r.Rows),
			types.NewFloat(r.TotalMs), types.NewFloat(r.MeanMs),
			types.NewFloat(r.P50Ms), types.NewFloat(r.P95Ms), types.NewFloat(r.P99Ms),
			types.NewInt(r.LocalExecs), types.NewInt(r.Remote),
			types.NewInt(r.Hits), types.NewInt(r.Misses),
			types.NewInt(r.Degraded), types.NewInt(r.Errs),
			types.NewFloat(r.MaxStale), types.NewString(ss.LastError),
		})
	}
	return rows
}

func queryPlansRows() []types.Row {
	snaps := querystore.Default.Snapshot()
	var rows []types.Row
	for _, ss := range snaps {
		for _, v := range ss.Variants {
			rows = append(rows, types.Row{
				types.NewString(ss.Shape), types.NewString(v.Variant),
				types.NewInt(v.Execs), types.NewFloat(v.LastMs), types.NewFloat(v.P95Ms),
				types.NewString(v.Plan), types.NewString(v.Analyzed),
				types.NewString(v.Literals),
			})
		}
	}
	return rows
}

func eventsRows() []types.Row {
	evs := querystore.Events.Recent(0)
	rows := make([]types.Row, 0, len(evs))
	for _, e := range evs {
		rows = append(rows, types.Row{
			types.NewInt(e.Seq), types.NewTime(e.Time),
			types.NewString(e.Kind), types.NewString(e.TraceID), types.NewString(e.Detail()),
		})
	}
	return rows
}

// walStatsRows exposes every storage.* instrument (WAL, checkpoint,
// recovery, MVCC GC counters and gauges) as name/value pairs.
func walStatsRows() []types.Row {
	var rows []types.Row
	for name, v := range metrics.Default.Snapshot() {
		if strings.HasPrefix(name, "storage.") {
			rows = append(rows, types.Row{types.NewString(name), types.NewFloat(float64(v))})
		}
	}
	for name, v := range metrics.Default.GaugeSnapshot() {
		if strings.HasPrefix(name, "storage.") {
			rows = append(rows, types.Row{types.NewString(name), types.NewFloat(v)})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].Str() < rows[j][0].Str() })
	return rows
}

func (db *Database) cachedViewsRows() []types.Row {
	views := db.cat.CachedViews()
	rows := make([]types.Row, 0, len(views))
	for _, v := range views {
		stale := -1.0
		if db.stalenessOf != nil {
			if s, ok := db.stalenessOf(v.Name); ok {
				stale = s
			}
		}
		hits := metrics.Default.Counter("opt.view_hit." + v.Name).Value()
		rows = append(rows, types.Row{
			types.NewString(v.Name),
			types.NewInt(int64(db.TableRowCount(v.Name))),
			types.NewInt(hits),
			types.NewFloat(stale),
		})
	}
	return rows
}
