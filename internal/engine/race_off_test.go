//go:build !race

package engine

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race (instrumentation and sync.Pool
// behavior add allocations that do not exist in normal builds).
const raceEnabled = false
