// Package engine binds the parser, catalog, storage, optimizer and executor
// into a Database: the unit that plays either the backend server or an
// MTCache server. The engine implements:
//
//   - DDL: CREATE TABLE / INDEX / VIEW / MATERIALIZED VIEW / PROCEDURE, DROP;
//   - DML: INSERT / UPDATE / DELETE — executed locally on a backend, and
//     transparently forwarded to the backend on a cache (paper §5: "all
//     insert, delete and update requests against a shadow table are
//     immediately converted to remote ... and forwarded");
//   - queries through the cost-based optimizer with a plan cache — dynamic
//     plans make the cache effective for parameterized queries because one
//     cached plan serves all parameter values (paper §5.1);
//   - stored procedures: run locally when present, transparently forwarded
//     otherwise (paper §5.2);
//   - synchronous maintenance of local materialized views, so backend MVs
//     stay consistent within the updating transaction and their changes are
//     visible to the replication log reader.
package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/imcache"
	"mtcache/internal/metrics"
	"mtcache/internal/opt"
	"mtcache/internal/querystore"
	"mtcache/internal/resilience"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/trace"
	"mtcache/internal/types"
)

// Role distinguishes backend databases from mid-tier caches.
type Role uint8

const (
	// Backend holds the authoritative data.
	Backend Role = iota
	// Cache is an MTCache shadow database: empty shadow tables plus cached
	// views maintained by replication.
	Cache
)

// Database is one database server instance (backend or cache).
type Database struct {
	Name string

	cat   *catalog.Catalog
	store *storage.Store
	role  Role
	opts  opt.Options

	// remote is the linked backend server (cache role only).
	remote exec.RemoteClient

	planMu    sync.Mutex
	planCache *planLRU

	// autoMu guards autoCache, the auto-parameterization shape cache
	// (normalized text → parsed statement; see autoparam.go).
	autoMu    sync.Mutex
	autoCache *autoLRU
	autoOff   bool // Config.DisableAutoParam
	rowMode   bool // Config.RowMode: force row-at-a-time execution

	// mvPlans caches compiled matview maintenance plans per view. It is
	// per-database (a *catalog.Table key from one database must never serve
	// another's plan) and cleared by InvalidatePlans so DDL cannot leave
	// stale entries behind.
	mvPlans sync.Map // map[*catalog.Table]*mvPlan

	// imc is the intermediate-result cache (nil when disabled by config);
	// imcOn gates it at runtime so benchmarks can toggle phases. Admission,
	// eviction and stale transitions of view-tier entries call
	// InvalidatePlans through the cache's OnChange hook, exactly like DDL.
	imc   *imcache.Cache
	imcOn atomic.Bool

	// onCachedViewCreate is invoked when CREATE CACHED VIEW runs, so the
	// MTCache layer can provision the replication subscription (paper §4).
	onCachedViewCreate func(view *catalog.Table) error

	// stalenessOf reports a cached view's replication staleness in seconds
	// (wired by the MTCache layer); it backs WITH FRESHNESS queries.
	stalenessOf func(view string) (float64, bool)

	// sessionGate waits (bounded by the budget) until the cache has applied
	// every replicated commit at or below min, reporting the applied LSN it
	// reached and whether the bound was met. Wired by the MTCache layer; it
	// backs ExecSession's read-your-writes guarantee.
	sessionGate func(min storage.LSN, budget time.Duration) (storage.LSN, bool)
}

// Config configures a new Database.
type Config struct {
	Name    string
	Role    Role
	Remote  exec.RemoteClient // backend link; required for Cache role
	Options *opt.Options      // nil = opt.DefaultOptions

	// PlanCacheCap bounds the number of cached plans; LRU eviction beyond
	// it. 0 means defaultPlanCacheCap.
	PlanCacheCap int

	// Durability, when non-nil, backs the store with an on-disk WAL in the
	// given directory (see storage.DurabilityOptions). Only honored by Open;
	// New ignores it because enabling durability can fail.
	Durability *storage.DurabilityOptions

	// DisableAutoParam turns off auto-parameterization of ad-hoc SELECT
	// text: every execution parses its own text and literal-distinct
	// queries optimize separately. Benchmarks use it as the measured
	// "before" of the zero-alloc plan-cache-key work.
	DisableAutoParam bool

	// RowMode forces row-at-a-time Volcano iteration even through
	// operators with a vectorized batch path; the measured baseline of
	// the vectorized-execution benchmarks.
	RowMode bool

	// DisableIMCache turns the intermediate-result cache off entirely
	// (no candidate tracking, no lookups). The default-on cache serves
	// repeated identical SELECTs from materialized results and registers
	// hot intermediates with the optimizer.
	DisableIMCache bool

	// IMCache overrides the intermediate-result cache bounds (nil =
	// imcache defaults: 64 MiB, admit on 2nd execution).
	IMCache *imcache.Options
}

// New creates an empty database.
func New(cfg Config) *Database {
	opts := opt.DefaultOptions()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	db := &Database{
		Name:      cfg.Name,
		cat:       catalog.New(),
		store:     storage.NewStore(),
		role:      cfg.Role,
		opts:      opts,
		remote:    cfg.Remote,
		planCache: newPlanLRU(cfg.PlanCacheCap),
		autoCache: newAutoLRU(0),
		autoOff:   cfg.DisableAutoParam,
		rowMode:   cfg.RowMode,
	}
	if !cfg.DisableIMCache {
		var imOpts imcache.Options
		if cfg.IMCache != nil {
			imOpts = *cfg.IMCache
		}
		db.imc = imcache.New(imOpts)
		db.imc.OnChange(db.InvalidatePlans)
		db.imcOn.Store(true)
	}
	db.registerSystemTables()
	return db
}

// Open is New plus durability: when cfg.Durability is set the store's WAL
// becomes a segmented on-disk log (group commit, checkpoints) rooted at
// cfg.Durability.Dir. The caller recreates the schema (DDL is unlogged) and
// then calls Recover to rebuild state from the latest checkpoint plus the
// log tail.
func Open(cfg Config) (*Database, error) {
	db := New(cfg)
	if cfg.Durability != nil {
		if err := db.store.EnableDurability(*cfg.Durability); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Recover rebuilds a durable database's state from its latest checkpoint and
// WAL tail. The schema must already have been recreated. Refreshes optimizer
// statistics for every recovered table.
func (db *Database) Recover() (*storage.RecoveryStats, error) {
	stats, err := db.store.Recover()
	if err != nil {
		return nil, err
	}
	if err := db.Analyze(); err != nil {
		return nil, err
	}
	return stats, nil
}

// Checkpoint snapshots the heap to the durable data directory, bounding both
// recovery replay time and WAL disk growth.
func (db *Database) Checkpoint() (storage.LSN, error) { return db.store.Checkpoint() }

// CloseStore flushes and closes the durable log (no-op for an in-memory
// database).
func (db *Database) CloseStore() error { return db.store.Close() }

// Catalog exposes the catalog (read-mostly; DDL goes through Exec).
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Store exposes the storage manager (used by replication and tests).
func (db *Database) Store() *storage.Store { return db.store }

// Role returns the database role.
func (db *Database) Role() Role { return db.role }

// SetRemote installs the backend link on a cache.
func (db *Database) SetRemote(rc exec.RemoteClient) { db.remote = rc }

// SetOptions replaces the optimizer options and clears the plan cache.
func (db *Database) SetOptions(o opt.Options) {
	db.opts = o
	db.InvalidatePlans()
}

// Options returns the current optimizer options.
func (db *Database) Options() opt.Options { return db.opts }

// OnCachedViewCreate registers the cached-view provisioning hook.
func (db *Database) OnCachedViewCreate(fn func(view *catalog.Table) error) {
	db.onCachedViewCreate = fn
}

// SetStalenessProbe wires the per-view staleness source used by
// WITH FRESHNESS queries.
func (db *Database) SetStalenessProbe(fn func(view string) (float64, bool)) {
	db.stalenessOf = fn
}

// ErrSessionStale reports that a session-gated statement could not be served
// because the cache has not yet applied the session's watermark LSN within
// the wait budget. The statement did not execute; the caller (typically a
// session router) should retry against the backend, which is always current.
var ErrSessionStale = fmt.Errorf("engine: cache behind session watermark")

// SetSessionGate wires the applied-LSN waiter used by ExecSession (cache
// role; the MTCache layer installs it alongside the staleness probe).
func (db *Database) SetSessionGate(fn func(min storage.LSN, budget time.Duration) (storage.LSN, bool)) {
	db.sessionGate = fn
}

// ExecSession is Exec with a session-consistency precondition: when minLSN
// is nonzero on a cache, the statement runs only after the cache has applied
// every replicated commit at or below minLSN — the session's read-your-writes
// watermark. The gate waits up to the given budget (a pull round is kicked
// while waiting) and fails with ErrSessionStale if the cache is still behind,
// so a stale cache can never time-travel a session that has seen its own
// write acknowledged.
//
// The gate composes with WITH FRESHNESS: the LSN bound is checked first
// (point-in-log consistency for this session), then the statement plans
// normally, including any declared staleness bound (wall-clock freshness for
// everyone). On a backend the gate passes trivially — the backend is the
// source of truth for every LSN it ever issued.
func (db *Database) ExecSession(sqlText string, params exec.Params, minLSN storage.LSN, wait time.Duration) (*Result, error) {
	if minLSN > 0 && db.role == Cache {
		gate := db.sessionGate
		if gate == nil {
			// No applied-LSN source: the cache cannot prove it has caught up,
			// so the only honest answer is "not guaranteed here".
			metrics.Default.Counter("engine.session_gate_stale").Add(1)
			return nil, ErrSessionStale
		}
		if _, ok := gate(minLSN, wait); !ok {
			metrics.Default.Counter("engine.session_gate_stale").Add(1)
			return nil, ErrSessionStale
		}
		metrics.Default.Counter("engine.session_gate_pass").Add(1)
	}
	return db.Exec(sqlText, params)
}

// InvalidatePlans clears the plan cache and the matview maintenance-plan
// cache (after DDL or stats refresh).
func (db *Database) InvalidatePlans() {
	db.planMu.Lock()
	db.planCache.clear()
	db.planMu.Unlock()
	db.autoMu.Lock()
	db.autoCache.clear()
	db.autoMu.Unlock()
	db.mvPlans.Range(func(k, _ any) bool {
		db.mvPlans.Delete(k)
		return true
	})
}

// mvPlanCacheSize reports the number of cached matview maintenance plans
// (including negative entries); used by tests.
func (db *Database) mvPlanCacheSize() int {
	n := 0
	db.mvPlans.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}

func (db *Database) env() *opt.Env {
	e := &opt.Env{Cat: db.cat, IsCache: db.role == Cache, Opts: db.opts, Staleness: db.stalenessOf}
	if imc := db.imcacheIfEnabled(); imc != nil {
		e.Intermediates = func() []*catalog.Table { return imc.ViewTables(time.Now()) }
		e.IntermediateStaleness = func(name string) (float64, bool) { return imc.Staleness(name, time.Now()) }
	}
	return e
}

// Result is the outcome of one statement.
type Result struct {
	// Set for queries.
	Cols []exec.ColInfo
	Rows []types.Row

	// Set for DML.
	RowsAffected int64

	// CommitLSN is the WAL position of the commit this statement performed
	// (0 for reads, DDL and unlogged operations). On a backend it is the
	// local commit's LSN; on a cache it is the backend commit LSN carried
	// back in the forwarded update's acknowledgement, when the backend link
	// supports it (exec.LSNExecer). Session routers use it as the session's
	// read-your-writes high-water mark.
	CommitLSN storage.LSN

	// SnapshotLSN is the MVCC position a query's rows were read at — the
	// store's durable LSN when the read transaction began. The
	// intermediate-result cache records it as the lineage watermark of a
	// materialized result.
	SnapshotLSN storage.LSN

	// Executor work counters (local to this server).
	Counters exec.Counters

	// TraceID identifies the trace recorded for this statement ("" when the
	// statement ran untraced).
	TraceID string
}

// Exec parses and executes one SQL statement (query, DML or DDL). The
// statement is traced; the finished trace lands in trace.Traces.
func (db *Database) Exec(sqlText string, params exec.Params) (*Result, error) {
	res, _, err := db.ExecTraced(sqlText, params, "")
	return res, err
}

// ExecTraced executes one statement under a trace. An empty traceID starts a
// fresh trace; a non-empty one (arriving in a wire frame) joins the caller's
// trace so backend-side spans stitch under the cache-side DataTransfer span.
// The returned trace is always non-nil and finished.
func (db *Database) ExecTraced(sqlText string, params exec.Params, traceID string) (*Result, *trace.Trace, error) {
	tr := trace.New(traceID, db.Name+".exec")
	tr.Root.Attr("sql", sqlText)
	// Auto-parameterization fast path: shape-identical SELECTs share one
	// parsed statement (and through it one cached plan), skipping the
	// parse entirely. Ineligible text falls through to the parser below.
	if stmt, autoArgs, norm, ok := db.autoParse(sqlText); ok {
		tr.Root.Attr("autoparam", "1")
		res, err := db.querySpan(stmt, params, autoArgs, tr.Root)
		normPool.Put(norm)
		tr.Finish()
		trace.Traces.Add(tr)
		if res != nil {
			res.TraceID = tr.ID
		}
		return res, tr, err
	}
	sp := tr.Root.Child("parse")
	stmt, err := sql.Parse(sqlText)
	sp.End()
	metrics.Default.Histogram("engine.parse_seconds").ObserveDuration(sp.Duration())
	if err != nil {
		tr.Finish()
		trace.Traces.Add(tr)
		return nil, tr, err
	}
	res, err := db.execStmtSpan(stmt, params, tr.Root)
	tr.Finish()
	trace.Traces.Add(tr)
	if res != nil {
		res.TraceID = tr.ID
	}
	return res, tr, err
}

// ExecScript executes a multi-statement script, stopping on the first error.
func (db *Database) ExecScript(script string) error {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.ExecStmt(s, nil); err != nil {
			return fmt.Errorf("engine: %s: %w", sql.Deparse(s), err)
		}
	}
	return nil
}

// ExecStmt executes a parsed statement.
func (db *Database) ExecStmt(stmt sql.Statement, params exec.Params) (*Result, error) {
	return db.execStmtSpan(stmt, params, nil)
}

// execStmtSpan executes a parsed statement, hanging stage spans off span
// (nil disables tracing).
func (db *Database) execStmtSpan(stmt sql.Statement, params exec.Params, span *trace.Span) (*Result, error) {
	switch x := stmt.(type) {
	case *sql.SelectStmt:
		return db.querySpan(x, params, nil, span)
	case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
		return db.execDML(stmt, params)
	case *sql.CreateTableStmt:
		return db.execCreateTable(x)
	case *sql.CreateIndexStmt:
		return db.execCreateIndex(x)
	case *sql.CreateViewStmt:
		return db.execCreateView(x)
	case *sql.CreateProcStmt:
		return db.execCreateProc(x, sql.Deparse(x))
	case *sql.ExecStmt:
		return db.execProcCall(x, params)
	case *sql.DropStmt:
		return db.execDrop(x)
	case *sql.ExplainStmt:
		return db.execExplain(x, params, span)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// Query plans (with caching) and runs a SELECT. Queries carrying a
// WITH FRESHNESS clause are planned per execution against the views'
// current staleness, so they bypass the plan cache.
//
// On a cache whose backend link has failed, queries without a freshness
// bound degrade gracefully: the query is re-planned onto local (possibly
// stale) cached views and answered from them. A WITH FRESHNESS query never
// degrades — the user asked for a bound the cache can no longer guarantee,
// so it fails fast with the transport error instead.
func (db *Database) Query(stmt *sql.SelectStmt, params exec.Params) (*Result, error) {
	return db.querySpan(stmt, params, nil, nil)
}

// querySpan runs one SELECT. autoArgs, when non-nil, holds the literal
// values the auto-parameterization front door extracted from the original
// text, bound positionally to the plan's @__pN parameters.
func (db *Database) querySpan(stmt *sql.SelectStmt, params exec.Params, autoArgs []types.Value, span *trace.Span) (*Result, error) {
	// Query-store accounting is keyed by the normalized statement text (the
	// plan-cache key). When the store is disabled the shape stays "" and
	// every hook below is a no-op.
	qs := querystore.Default
	var shape string
	if qs.Enabled() {
		shape = stmt.CacheKey()
	}
	// Intermediate-result exact-match fast path: a repeated statement with
	// identical bound values is answered straight from the materialized
	// result — no planning, no execution. Ordinary queries demand a fresh
	// entry; WITH FRESHNESS accepts one stale up to the declared bound.
	imc := db.imcacheIfEnabled()
	var imkey string
	if imc != nil {
		istart := time.Now()
		maxStale, boundOK := time.Duration(0), true
		if stmt.Freshness != nil {
			if bound, err := db.freshnessBound(stmt, params); err == nil {
				maxStale = time.Duration(bound * float64(time.Second))
			} else {
				boundOK = false // let the planner surface the error
			}
		}
		if boundOK {
			if stmt.Freshness == nil {
				imkey = imKey(stmt.CacheKey(), params, autoArgs)
			} else {
				imkey = db.imFreshnessKey(stmt, params)
			}
			if hit, found := imc.Lookup(imkey, time.Now(), maxStale); found {
				span.Child("imcache_hit").End()
				res := &Result{Cols: hit.Cols, Rows: hit.Rows, SnapshotLSN: storage.LSN(hit.LSN)}
				if shape != "" {
					qs.Record(querystore.Exec{
						Shape: shape, Variant: "imcache", Duration: time.Since(istart),
						Rows: int64(len(res.Rows)), PlanCacheHit: true,
						Staleness: hit.Staleness.Seconds(), TraceID: span.TraceID(),
					})
				}
				return res, nil
			}
		}
	}
	osp := span.Child("optimize")
	start := time.Now()
	var plan *opt.Plan
	var err error
	var hit bool
	if stmt.Freshness != nil {
		// Freshness-bounded queries are planned per execution against the
		// views' current staleness, bypassing the plan cache.
		plan, err = db.planWithFreshness(stmt, params)
	} else {
		plan, hit, err = db.planCached(stmt)
		if err == nil {
			osp.Attr("plan_cache", map[bool]string{true: "hit", false: "miss"}[hit])
		}
	}
	osp.End()
	metrics.Default.Histogram("engine.optimize_seconds").ObserveDuration(time.Since(start))
	if err != nil {
		return nil, err
	}
	variant := ""
	if shape != "" {
		variant = planVariant(plan)
		if !hit {
			// Rendering the plan costs once per cached plan, not per run.
			qs.NotePlan(shape, variant, opt.Explain(plan))
		}
	}
	qstart := time.Now()
	res, err := db.runPlanCaptured(plan, params, autoArgs, span, shape, variant)
	if err != nil && stmt.Freshness == nil && db.role == Cache && resilience.Degradable(err) {
		if lres, lerr := db.queryLocalOnly(stmt, params, autoArgs); lerr == nil {
			if shape != "" {
				e := querystore.Exec{
					Shape: shape, Variant: "degraded-local", Duration: time.Since(qstart),
					Rows: int64(len(lres.Rows)), Degraded: true,
					Staleness: db.servedStaleness(plan), TraceID: span.TraceID(),
				}
				qs.Record(e)
			}
			return lres, nil
		}
		// fall through to record the original failure
	}
	if shape != "" {
		e := querystore.Exec{
			Shape: shape, Variant: variant, Duration: time.Since(qstart),
			PlanCacheHit: hit, Staleness: db.servedStaleness(plan),
			Err: err, TraceID: span.TraceID(),
		}
		if res != nil {
			e.Rows = int64(len(res.Rows))
			e.RemoteQueries = res.Counters.RemoteQueries
			e.RowsRemote = res.Counters.RowsRemote
		}
		qs.Record(e)
	}
	// Feed the intermediate cache. Freshness-bounded executions are not
	// observed: their plan may have read bounded-stale views, so the rows
	// are not a fresh materialization of the statement.
	if imc != nil && imkey != "" && err == nil && stmt.Freshness == nil {
		db.imObserve(imc, imkey, imShape(stmt), stmt, params, autoArgs, plan, res, time.Since(qstart))
	}
	return res, err
}

// queryLocalOnly answers a query from cached views alone (the degraded,
// backend-down path).
func (db *Database) queryLocalOnly(stmt *sql.SelectStmt, params exec.Params, autoArgs []types.Value) (*Result, error) {
	plan, err := opt.OptimizeLocalOnly(stmt, db.env())
	if err != nil {
		return nil, err
	}
	res, err := db.runPlanSpan(plan, params, autoArgs, nil)
	if err != nil {
		return nil, err
	}
	metrics.Default.Counter("engine.degraded_stale").Add(1)
	return res, nil
}

// runPlanCaptured is runPlanSpan plus slow-query capture: when the query
// store armed this shape (a prior run exceeded the slow threshold), the
// plan runs under exec.Instrument and the resulting EXPLAIN ANALYZE tree
// is retained for sys.query_plans / \slow. Instrumented wrappers pass rows
// through unchanged, so the client sees the identical result.
func (db *Database) runPlanCaptured(plan *opt.Plan, params exec.Params, autoArgs []types.Value, span *trace.Span, shape, variant string) (*Result, error) {
	if shape == "" || !querystore.Default.WantCapture(shape) {
		return db.runPlanSpan(plan, params, autoArgs, span)
	}
	esp := span.Child("execute")
	start := time.Now()
	tx := db.store.Begin(false)
	defer tx.Abort()
	res := &Result{}
	ctx := &exec.Ctx{
		Txn: tx, Remote: db.remote, Counters: &res.Counters,
		Span: esp, TraceID: esp.TraceID(), EstRows: plan.Card, RowMode: db.rowMode,
	}
	bindParams(plan, params, autoArgs, ctx)
	root := exec.Instrument(exec.CloneOperator(plan.Root))
	rs, err := exec.Run(root, ctx)
	total := time.Since(start)
	esp.End()
	metrics.Default.Histogram("engine.execute_seconds").ObserveDuration(total)
	if err != nil {
		return nil, err
	}
	querystore.Default.StoreAnalyzed(shape, variant, opt.ExplainAnalyze(plan, root, total), formatLiterals(autoArgs))
	res.Cols = rs.Cols
	res.Rows = rs.Rows
	res.SnapshotLSN = tx.AsOfLSN()
	return res, nil
}

// freshnessBound evaluates the query's WITH FRESHNESS expression to its
// bound in seconds.
func (db *Database) freshnessBound(stmt *sql.SelectStmt, params exec.Params) (float64, error) {
	bound, err := opt.CompileScalar(stmt.Freshness, nil)
	if err != nil {
		return 0, fmt.Errorf("engine: WITH FRESHNESS: %w", err)
	}
	v, err := bound.Eval(nil, &exec.Env{Named: params})
	if err != nil {
		return 0, fmt.Errorf("engine: WITH FRESHNESS: %w", err)
	}
	if v.IsNull() || v.Float() < 0 {
		return 0, fmt.Errorf("engine: WITH FRESHNESS requires a non-negative number of seconds")
	}
	return v.Float(), nil
}

// planWithFreshness optimizes under the query's declared staleness bound.
func (db *Database) planWithFreshness(stmt *sql.SelectStmt, params exec.Params) (*opt.Plan, error) {
	bound, err := db.freshnessBound(stmt, params)
	if err != nil {
		return nil, err
	}
	env := db.env()
	env.HasFreshness = true
	env.MaxStaleness = bound
	return opt.Optimize(stmt, env)
}

// Plan returns the (possibly cached) plan for a SELECT. The cache key is the
// deparsed text, so the same parameterized statement reuses its dynamic plan
// instead of reoptimizing (paper §5.1: dynamic plans "avoid the need for
// frequent reoptimization").
func (db *Database) Plan(stmt *sql.SelectStmt) (*opt.Plan, error) {
	p, _, err := db.planCached(stmt)
	return p, err
}

// planCached is Plan plus a cache-hit indicator, feeding the
// engine.plan_cache_hits / engine.plan_cache_misses counters.
func (db *Database) planCached(stmt *sql.SelectStmt) (*opt.Plan, bool, error) {
	// CacheKey memoizes the deparsed text on the statement, so repeated
	// executions of a prepared statement skip the deparse entirely.
	key := stmt.CacheKey()
	db.planMu.Lock()
	if p, ok := db.planCache.get(key); ok {
		db.planMu.Unlock()
		metrics.Default.Counter("engine.plan_cache_hits").Add(1)
		return p, true, nil
	}
	gen := db.planCache.gen
	db.planMu.Unlock()
	metrics.Default.Counter("engine.plan_cache_misses").Add(1)
	p, err := opt.Optimize(stmt, db.env())
	if err != nil {
		return nil, false, err
	}
	db.planMu.Lock()
	// Optimization ran outside the lock; if InvalidatePlans fired in
	// between (DDL, or an intermediate-result admit/evict/stale
	// transition), this plan may reference state that no longer exists —
	// run it once but do not cache it.
	if db.planCache.gen == gen {
		db.planCache.put(key, p)
	}
	db.planMu.Unlock()
	return p, false, nil
}

// PlanCacheSize reports the number of cached plans.
func (db *Database) PlanCacheSize() int {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	return db.planCache.len()
}

// RunPlan executes a previously produced plan. The operator tree is cloned
// per execution: cached plans are shared across sessions, and operators
// carry per-run state (cursors, hash tables).
func (db *Database) RunPlan(plan *opt.Plan, params exec.Params) (*Result, error) {
	return db.runPlanSpan(plan, params, nil, nil)
}

func (db *Database) runPlanSpan(plan *opt.Plan, params exec.Params, autoArgs []types.Value, span *trace.Span) (*Result, error) {
	esp := span.Child("execute")
	start := time.Now()
	tx := db.store.Begin(false)
	defer tx.Abort()
	res := &Result{}
	ctx := &exec.Ctx{
		Txn: tx, Remote: db.remote, Counters: &res.Counters,
		Span: esp, TraceID: esp.TraceID(), EstRows: plan.Card, RowMode: db.rowMode,
	}
	bindParams(plan, params, autoArgs, ctx)
	rs, err := exec.Run(exec.CloneOperator(plan.Root), ctx)
	esp.End()
	metrics.Default.Histogram("engine.execute_seconds").ObserveDuration(time.Since(start))
	if err != nil {
		return nil, err
	}
	res.Cols = rs.Cols
	res.Rows = rs.Rows
	res.SnapshotLSN = tx.AsOfLSN()
	return res, nil
}

// Explain returns the optimizer's plan description for a query.
func (db *Database) Explain(query string) (string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("engine: EXPLAIN supports only SELECT")
	}
	p, err := opt.Optimize(sel, db.env())
	if err != nil {
		return "", err
	}
	return opt.Explain(p), nil
}

// execExplain implements EXPLAIN [ANALYZE] <select>. Plain EXPLAIN renders
// the optimized plan. ANALYZE additionally executes a private instrumented
// clone (its result rows are discarded) and renders per-operator rows,
// timings and which ChoosePlan branch fired. The rendered text comes back as
// a one-column result set, one row per line, so it flows through the wire
// protocol and the shell like any query result.
func (db *Database) execExplain(x *sql.ExplainStmt, params exec.Params, span *trace.Span) (*Result, error) {
	sel, ok := x.Stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports only SELECT")
	}
	var plan *opt.Plan
	var err error
	if sel.Freshness != nil {
		plan, err = db.planWithFreshness(sel, params)
	} else {
		plan, _, err = db.planCached(sel)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: []exec.ColInfo{{Name: "plan", Kind: types.KindString}}}
	var text string
	if x.Analyze {
		root := exec.Instrument(exec.CloneOperator(plan.Root))
		esp := span.Child("execute")
		tx := db.store.Begin(false)
		ctx := &exec.Ctx{
			Txn: tx, Remote: db.remote, Counters: &res.Counters,
			Span: esp, TraceID: esp.TraceID(), EstRows: plan.Card, RowMode: db.rowMode,
		}
		bindParams(plan, params, nil, ctx)
		start := time.Now()
		_, runErr := exec.Run(root, ctx)
		total := time.Since(start)
		tx.Abort()
		esp.End()
		if runErr != nil {
			return nil, runErr
		}
		text = opt.ExplainAnalyze(plan, root, total)
	} else {
		text = opt.Explain(plan)
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, types.Row{types.NewString(line)})
	}
	return res, nil
}

// AnalyzeTable recomputes optimizer statistics for one table from its
// current contents.
func (db *Database) AnalyzeTable(name string) error {
	t := db.cat.Table(name)
	if t == nil {
		return fmt.Errorf("engine: table %s does not exist", name)
	}
	tx := db.store.Begin(false)
	td := tx.Table(name)
	if td == nil {
		tx.Abort()
		return fmt.Errorf("engine: no storage for %s", name)
	}
	rows := td.Rows()
	tx.Abort()
	t.Stats = catalog.BuildTableStats(t.ColumnNames(), rows)
	db.InvalidatePlans()
	return nil
}

// Analyze refreshes statistics for every stored table.
func (db *Database) Analyze() error {
	for _, t := range db.cat.Tables() {
		if t.IsView && !t.Materialized {
			continue
		}
		if db.store.Table(t.Name) == nil {
			continue
		}
		if err := db.AnalyzeTable(t.Name); err != nil {
			return err
		}
	}
	return nil
}

// BulkLoad inserts rows directly into a table in one unlogged transaction.
// It is the data-loading path: initial populations are not replicated (the
// replication snapshot covers them), and bypassing SQL parsing makes
// benchmark-scale loads fast. Values are cast to the column types.
func (db *Database) BulkLoad(table string, rows []types.Row) error {
	t := db.cat.Table(table)
	if t == nil {
		return fmt.Errorf("engine: table %s does not exist", table)
	}
	tx := db.store.Begin(true)
	for _, row := range rows {
		if len(row) != len(t.Columns) {
			tx.Abort()
			return fmt.Errorf("engine: %s: row width %d != %d columns", table, len(row), len(t.Columns))
		}
		cast := make(types.Row, len(row))
		for i, v := range row {
			cv, err := v.Cast(t.Columns[i].Type)
			if err != nil {
				tx.Abort()
				return fmt.Errorf("engine: %s column %s: %w", table, t.Columns[i].Name, err)
			}
			cast[i] = cv
		}
		if _, err := tx.Insert(table, cast); err != nil {
			tx.Abort()
			return err
		}
		if err := db.maintainViews(tx, t, storage.OpInsert, nil, cast); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.CommitUnlogged(); err != nil {
		return err
	}
	db.InvalidateIntermediates(table)
	return nil
}

// TableRowCount returns the stored row count (0 if no storage).
func (db *Database) TableRowCount(name string) int {
	tx := db.store.Begin(false)
	defer tx.Abort()
	td := tx.Table(name)
	if td == nil {
		return 0
	}
	return td.Count()
}

// strEqualFold is a tiny helper used across the engine.
func strEqualFold(a, b string) bool { return strings.EqualFold(a, b) }
