// Package repl implements transactional replication in the style of SQL
// Server (paper §2.2): a publish–subscribe pipeline where
//
//   - a publisher defines articles — select-project expressions over a table
//     or materialized view;
//   - a log reader agent collects committed changes by sniffing the
//     publisher's transaction log (our storage WAL) and inserts them into a
//     distribution database;
//   - per-subscription distribution agents wake up periodically and apply
//     pending transactions to subscribers one complete committed transaction
//     at a time, in commit order — so a subscriber always sees a
//     transactionally consistent (if slightly stale) state;
//   - changes are deleted from the distribution database once every
//     subscriber has received them (WAL truncation).
//
// Agents can run as background goroutines with a poll interval (the paper's
// "separate agent process that wakes up periodically") or be stepped
// manually for deterministic tests.
package repl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/engine"
	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/opt"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// Article is a select-project publication unit over one source table or
// materialized view.
type Article struct {
	Name    string
	Table   string   // source table/MV name on the publisher
	Columns []string // projected source columns (nil = all, in table order)
	Filter  sql.Expr // row filter over source columns (nil = all rows)

	source *catalog.Table
	pred   exec.Expr // compiled Filter
	ords   []int     // source ordinals of the projected columns
}

// project maps a source row to an article row.
func (a *Article) project(row types.Row) types.Row {
	out := make(types.Row, len(a.ords))
	for i, ord := range a.ords {
		out[i] = row[ord]
	}
	return out
}

func (a *Article) matches(row types.Row) (bool, error) {
	if a.pred == nil {
		return true, nil
	}
	return exec.EvalBool(a.pred, row, nil)
}

// Subscription routes one article to one target table on a subscriber.
type Subscription struct {
	Name        string
	Article     *Article
	Target      *engine.Database
	TargetTable string

	mu      sync.Mutex
	queue   []queuedTxn // the distribution database's pending transactions
	nextLSN storage.LSN // first LSN not yet enqueued for this subscription

	// currentAsOf is the moment the target is known to reflect: set to the
	// snapshot time at subscription, and advanced to the log reader's pass
	// start whenever the queue fully drains. It backs the WITH FRESHNESS
	// extension (paper §7): staleness = now − currentAsOf.
	currentAsOf time.Time

	// Apply-failure bookkeeping, surfaced by Server.Health and the
	// repl.apply_errors metric. The agent tick loop retries failed applies,
	// so errors here are the only durable record of trouble.
	applyErrors int64
	lastErr     string
	lastErrAt   time.Time
}

// LastError returns the most recent apply failure and when it happened
// (zero values when the subscription has never failed).
func (sub *Subscription) LastError() (string, time.Time) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.lastErr, sub.lastErrAt
}

// Staleness returns an upper bound on how far the target trails the
// publisher. With pending transactions it is the age of the oldest one;
// otherwise the time since the subscription was last known current.
func (sub *Subscription) Staleness(now time.Time) time.Duration {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if len(sub.queue) > 0 {
		return now.Sub(sub.queue[0].commitTime)
	}
	return now.Sub(sub.currentAsOf)
}

// queuedTxn is one pending transaction in the distribution database. Like
// SQL Server's distribution database, entries are stored in serialized form:
// the log reader pays the encode cost (backend-side overhead), the
// distribution agent pays the decode cost (subscriber-side overhead).
type queuedTxn struct {
	lsn        storage.LSN
	commitTime time.Time
	encoded    []byte
}

func encodeChanges(changes []storage.ChangeRec) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(changes); err != nil {
		return nil, fmt.Errorf("repl: encode distribution record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeChanges(data []byte) ([]storage.ChangeRec, error) {
	var changes []storage.ChangeRec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&changes); err != nil {
		return nil, fmt.Errorf("repl: decode distribution record: %w", err)
	}
	return changes, nil
}

// Stats reports replication pipeline health and overheads, used by the
// replication experiments (paper §6.2.2 and §6.2.3).
type Stats struct {
	TxnsApplied    *metrics.Counter
	ChangesApplied *metrics.Counter
	TxnsQueued     *metrics.Counter
	Latency        *metrics.Histogram // commit-to-commit propagation delay
	ReaderTime     *metrics.Counter   // ns spent by the log reader (backend overhead)
	ApplyTime      *metrics.Counter   // ns spent applying on subscribers (cache overhead)
}

// Server is the replication runtime for one publisher: its articles, the
// log reader, the distribution queues and the distribution agents.
type Server struct {
	publisher *engine.Database

	mu           sync.Mutex
	articles     []*Article
	subs         []*Subscription
	readerLSN    storage.LSN
	readerOn     bool
	lastReaderAt time.Time

	stopCh chan struct{}
	wg     sync.WaitGroup

	Stats Stats
}

// NewServer creates the replication runtime for a publisher database.
func NewServer(publisher *engine.Database) *Server {
	return &Server{
		publisher: publisher,
		readerLSN: publisher.Store().WAL().End(),
		readerOn:  true,
		Stats: Stats{
			TxnsApplied:    &metrics.Counter{},
			ChangesApplied: &metrics.Counter{},
			TxnsQueued:     &metrics.Counter{},
			Latency:        metrics.NewHistogram(0),
			ReaderTime:     &metrics.Counter{},
			ApplyTime:      &metrics.Counter{},
		},
	}
}

// SetLogReader turns the log reader on or off (experiment §6.2.2 measures
// backend overhead by comparing throughput with the reader on vs off).
func (s *Server) SetLogReader(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readerOn = on
}

// EnsureArticle finds or creates an article matching (table, columns,
// filter). Mirrors the paper's "if no suitable publication exists, one is
// automatically created" (§4).
func (s *Server) EnsureArticle(table string, columns []string, filter sql.Expr) (*Article, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := articleKey(table, columns, filter)
	for _, a := range s.articles {
		if articleKey(a.Table, a.Columns, a.Filter) == key {
			return a, nil
		}
	}
	src := s.publisher.Catalog().Table(table)
	if src == nil {
		return nil, fmt.Errorf("repl: source table %s does not exist on publisher", table)
	}
	a := &Article{
		Name:    fmt.Sprintf("art_%s_%d", strings.ToLower(table), len(s.articles)+1),
		Table:   src.Name,
		Columns: columns,
		Filter:  filter,
		source:  src,
	}
	if filter != nil {
		pred, err := opt.CompileScalar(filter, src)
		if err != nil {
			return nil, fmt.Errorf("repl: article filter: %w", err)
		}
		a.pred = pred
	}
	if columns == nil {
		for i := range src.Columns {
			a.ords = append(a.ords, i)
		}
	} else {
		for _, c := range columns {
			ord := src.ColumnIndex(c)
			if ord < 0 {
				return nil, fmt.Errorf("repl: article column %s not in %s", c, table)
			}
			a.ords = append(a.ords, ord)
		}
	}
	s.articles = append(s.articles, a)
	return a, nil
}

func articleKey(table string, columns []string, filter sql.Expr) string {
	k := strings.ToLower(table) + "|" + strings.ToLower(strings.Join(columns, ","))
	if filter != nil {
		k += "|" + sql.DeparseExpr(filter)
	}
	return k
}

// Subscribe creates a subscription and performs the initial snapshot: the
// target table is populated with the article's current contents and the
// subscription starts streaming from that point.
func (s *Server) Subscribe(a *Article, target *engine.Database, targetTable string) (*Subscription, error) {
	if target.Catalog().Table(targetTable) == nil {
		return nil, fmt.Errorf("repl: target table %s does not exist", targetTable)
	}
	sub := &Subscription{
		Name:        fmt.Sprintf("sub_%s_%s_%d", target.Name, strings.ToLower(targetTable), len(s.subs)+1),
		Article:     a,
		Target:      target,
		TargetTable: targetTable,
		currentAsOf: time.Now(),
	}
	if err := s.snapshot(sub); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub, nil
}

// snapshot copies the article's current state into the target table and
// records the log position the stream starts from.
func (s *Server) snapshot(sub *Subscription) error {
	pubStore := s.publisher.Store()
	rtx := pubStore.Begin(false)
	src := rtx.Table(sub.Article.Table)
	if src == nil {
		rtx.Abort()
		return fmt.Errorf("repl: no storage for %s on publisher", sub.Article.Table)
	}
	var rows []types.Row
	var evalErr error
	src.Scan(func(_ storage.RowID, row types.Row) bool {
		ok, err := sub.Article.matches(row)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			rows = append(rows, sub.Article.project(row))
		}
		return true
	})
	// Under MVCC the scan no longer blocks commits, so the current WAL end
	// may already include transactions our snapshot cannot see. AsOfLSN is
	// the WAL position published atomically with the snapshot's commit
	// timestamp: the stream resumes exactly where the snapshot ends.
	sub.nextLSN = rtx.AsOfLSN()
	rtx.Abort()
	if evalErr != nil {
		return evalErr
	}

	ttx := sub.Target.Store().Begin(true)
	for _, row := range rows {
		if _, err := ttx.Insert(sub.TargetTable, row); err != nil {
			ttx.Abort()
			return fmt.Errorf("repl: snapshot of %s: %w", sub.TargetTable, err)
		}
	}
	if err := ttx.CommitUnlogged(); err != nil {
		return err
	}
	// A (re)seed changes the target table's contents wholesale; any
	// intermediate results derived from it are stale.
	sub.Target.InvalidateIntermediates(sub.TargetTable)
	return sub.Target.AnalyzeTable(sub.TargetTable)
}

// RunLogReader performs one log-reader pass: committed transactions since
// the last pass are filtered per subscription and enqueued in the
// distribution database. Returns the number of commit records processed.
func (s *Server) RunLogReader() int {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.Stats.ReaderTime.Add(int64(d))
		metrics.Default.Histogram("repl.reader_seconds").ObserveDuration(d)
	}()

	s.mu.Lock()
	if !s.readerOn {
		s.mu.Unlock()
		return 0
	}
	from := s.readerLSN
	subs := append([]*Subscription(nil), s.subs...)
	s.lastReaderAt = start
	s.mu.Unlock()

	// Subscriptions with empty queues are current as of this pass start
	// (any later commit will be seen by the next pass).
	defer func() {
		for _, sub := range subs {
			sub.mu.Lock()
			if len(sub.queue) == 0 && start.After(sub.currentAsOf) {
				sub.currentAsOf = start
			}
			sub.mu.Unlock()
			metrics.Default.Gauge("repl.staleness_seconds." + sub.Name).
				Set(sub.Staleness(time.Now()).Seconds())
		}
	}()

	recs := s.publisher.Store().WAL().ReadFrom(from, 0)
	if len(recs) == 0 {
		s.truncate()
		return 0
	}
	for _, rec := range recs {
		for _, sub := range subs {
			sub.mu.Lock()
			if sub.nextLSN > rec.LSN {
				sub.mu.Unlock()
				continue // already included in this subscription's snapshot
			}
			sub.mu.Unlock()
			// Filter and encode outside the lock, but advance the cursor and
			// enqueue in ONE critical section: the cursor doubles as the
			// stream-completeness position (DrainAfterThrough reports
			// nextLSN-1), so a cursor advanced before its record is queued
			// would let a concurrent drain claim completeness through a
			// record it did not deliver. The re-check under the lock keeps
			// concurrent reader passes from enqueueing the record twice.
			filtered := filterTxn(sub.Article, rec)
			var encoded []byte
			if len(filtered) > 0 {
				var err error
				encoded, err = encodeChanges(filtered)
				if err != nil {
					filtered = nil // undecodable change; skip rather than wedge the reader
				}
			}
			sub.mu.Lock()
			if sub.nextLSN > rec.LSN {
				sub.mu.Unlock()
				continue // another pass delivered this record first
			}
			// Advance the per-subscription cursor record by record (not once
			// per pass): it is this subscription's resume point after a
			// subscriber restart, and the truncation floor that keeps records
			// a resumed subscription still needs in the WAL.
			sub.nextLSN = rec.LSN + 1
			if len(filtered) > 0 {
				sub.queue = append(sub.queue, queuedTxn{lsn: rec.LSN, commitTime: rec.CommitTime, encoded: encoded})
			}
			sub.mu.Unlock()
			if len(filtered) > 0 {
				s.Stats.TxnsQueued.Add(1)
			}
		}
	}
	s.mu.Lock()
	s.readerLSN = recs[len(recs)-1].LSN + 1
	s.mu.Unlock()
	s.truncate()
	return len(recs)
}

// filterTxn maps a commit record through an article: changes to other
// tables drop out, rows are filtered and projected, and updates that move
// rows across the filter boundary become inserts or deletes.
func filterTxn(a *Article, rec storage.CommitRecord) []storage.ChangeRec {
	var out []storage.ChangeRec
	for _, ch := range rec.Changes {
		if !strings.EqualFold(ch.Table, a.Table) {
			continue
		}
		oldIn, newIn := false, false
		if ch.Before != nil {
			oldIn, _ = a.matches(ch.Before)
		}
		if ch.After != nil {
			newIn, _ = a.matches(ch.After)
		}
		switch ch.Op {
		case storage.OpInsert:
			if newIn {
				out = append(out, storage.ChangeRec{Table: a.Table, Op: storage.OpInsert, After: a.project(ch.After)})
			}
		case storage.OpDelete:
			if oldIn {
				out = append(out, storage.ChangeRec{Table: a.Table, Op: storage.OpDelete, Before: a.project(ch.Before)})
			}
		case storage.OpUpdate:
			switch {
			case oldIn && newIn:
				out = append(out, storage.ChangeRec{Table: a.Table, Op: storage.OpUpdate, Before: a.project(ch.Before), After: a.project(ch.After)})
			case oldIn:
				out = append(out, storage.ChangeRec{Table: a.Table, Op: storage.OpDelete, Before: a.project(ch.Before)})
			case newIn:
				out = append(out, storage.ChangeRec{Table: a.Table, Op: storage.OpInsert, After: a.project(ch.After)})
			}
		}
	}
	return out
}

// truncate drops distribution/WAL entries every subscription has consumed
// ("once changes have been propagated to all subscribers, they are deleted
// from the distribution database", §2.2).
func (s *Server) truncate() {
	s.mu.Lock()
	min := s.readerLSN
	for _, sub := range s.subs {
		sub.mu.Lock()
		if len(sub.queue) > 0 && sub.queue[0].lsn < min {
			min = sub.queue[0].lsn
		}
		// A subscription that has not consumed up to the reader yet — or was
		// just rewound by ResumeRemote — still needs everything from its own
		// cursor onward, queued or not.
		if sub.nextLSN < min {
			min = sub.nextLSN
		}
		sub.mu.Unlock()
	}
	s.mu.Unlock()
	s.publisher.Store().WAL().Truncate(min)
}

// RunDistribution applies a subscription's pending transactions to its
// target, one committed transaction at a time in commit order. Returns the
// number of transactions applied.
func (s *Server) RunDistribution(sub *Subscription) (int, error) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.Stats.ApplyTime.Add(int64(d))
		metrics.Default.Histogram("repl.apply_seconds").ObserveDuration(d)
	}()

	// Queue-only subscriptions (SubscribeRemote) have no local target: a
	// remote agent drains them with pulls and acks. Applying here would nil-
	// panic the agent loop and, worse, discard batches the puller still needs.
	if sub.Target == nil {
		return 0, nil
	}
	sub.mu.Lock()
	pending := sub.queue
	sub.queue = nil
	sub.mu.Unlock()
	if len(pending) == 0 {
		return 0, nil
	}
	for i, txn := range pending {
		changes, err := decodeChanges(txn.encoded)
		if err == nil {
			err = applyTxn(sub, txn, changes)
		}
		if err != nil {
			// Re-queue the unapplied suffix to preserve commit order, and
			// record the failure: the agent loop retries on the next tick, so
			// without a counter and a last-error slot these would vanish.
			sub.mu.Lock()
			sub.queue = append(append([]queuedTxn{}, pending[i:]...), sub.queue...)
			sub.applyErrors++
			sub.lastErr = err.Error()
			sub.lastErrAt = time.Now()
			sub.mu.Unlock()
			metrics.Default.Counter("repl.apply_errors").Add(1)
			return i, err
		}
		s.Stats.TxnsApplied.Add(1)
		s.Stats.ChangesApplied.Add(int64(len(changes)))
		lat := time.Since(txn.commitTime)
		s.Stats.Latency.ObserveDuration(lat)
		metrics.Default.Histogram("repl.latency_seconds").ObserveDuration(lat)
	}
	return len(pending), nil
}

// applyTxn applies one transaction to the subscriber. The apply commits
// unlogged: replicated changes must not re-enter the subscriber's own WAL.
func applyTxn(sub *Subscription, txn queuedTxn, changes []storage.ChangeRec) error {
	return ApplyBatch(sub.Target, sub.TargetTable, TxnBatch{
		LSN: txn.lsn, CommitTime: txn.commitTime, Changes: changes,
	})
}

// locateTargetRow finds a row by target primary key, falling back to
// full-row equality.
func locateTargetRow(td *storage.TableView, target *catalog.Table, row types.Row) storage.RowID {
	if len(target.PrimaryKey) > 0 {
		key := make(types.Row, len(target.PrimaryKey))
		for i, ord := range target.PrimaryKey {
			key[i] = row[ord]
		}
		return td.PKLookup(key)
	}
	found := storage.RowID(-1)
	td.Scan(func(rid storage.RowID, r types.Row) bool {
		if types.RowsEqual(r, row) {
			found = rid
			return false
		}
		return true
	})
	return found
}

// StepAll runs one log-reader pass followed by one distribution pass per
// subscription (deterministic mode for tests and examples).
func (s *Server) StepAll() error {
	s.RunLogReader()
	s.mu.Lock()
	subs := append([]*Subscription(nil), s.subs...)
	s.mu.Unlock()
	for _, sub := range subs {
		if _, err := s.RunDistribution(sub); err != nil {
			return err
		}
	}
	return nil
}

// Start launches the background agents: a log-reader goroutine and a
// distribution goroutine, each waking at its interval. The distribution
// agent serves every subscription, including ones created after Start.
func (s *Server) Start(readerInterval, distInterval time.Duration) {
	s.mu.Lock()
	if s.stopCh != nil {
		s.mu.Unlock()
		return
	}
	s.stopCh = make(chan struct{})
	stop := s.stopCh
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(readerInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.RunLogReader()
			}
		}
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(distInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				for _, sub := range s.Subscriptions() {
					if _, err := s.RunDistribution(sub); err != nil {
						// Counted in repl.apply_errors and remembered on the
						// subscription; the next tick retries from the
						// re-queued suffix.
						continue
					}
				}
			}
		}
	}()
}

// Stop halts the background agents and waits for them to exit.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopCh == nil {
		s.mu.Unlock()
		return
	}
	close(s.stopCh)
	s.stopCh = nil
	s.mu.Unlock()
	s.wg.Wait()
}

// Subscriptions returns the current subscription list.
func (s *Server) Subscriptions() []*Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Subscription(nil), s.subs...)
}

// PendingFor reports the queued transaction count for a subscription.
func (s *Server) PendingFor(sub *Subscription) int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return len(sub.queue)
}

// SubHealth is one subscription's health snapshot for the obs endpoint.
type SubHealth struct {
	Name             string    `json:"name"`
	Target           string    `json:"target"`
	Pending          int       `json:"pending"`
	ApplyErrors      int64     `json:"apply_errors"`
	LastError        string    `json:"last_error,omitempty"`
	LastErrorAt      time.Time `json:"last_error_at,omitzero"`
	StalenessSeconds float64   `json:"staleness_seconds"`
}

// Health reports per-subscription replication health: queue depth, staleness
// and the apply-failure record. Served at /debug/status by the obs handler.
func (s *Server) Health() []SubHealth {
	now := time.Now()
	subs := s.Subscriptions()
	out := make([]SubHealth, 0, len(subs))
	for _, sub := range subs {
		// Queue-only (pull) subscriptions have no local target database.
		target := "(pull)"
		if sub.Target != nil {
			target = sub.Target.Name + "." + sub.TargetTable
		}
		sub.mu.Lock()
		h := SubHealth{
			Name:             sub.Name,
			Target:           target,
			Pending:          len(sub.queue),
			ApplyErrors:      sub.applyErrors,
			LastError:        sub.lastErr,
			LastErrorAt:      sub.lastErrAt,
			StalenessSeconds: 0,
		}
		sub.mu.Unlock()
		h.StalenessSeconds = sub.Staleness(now).Seconds()
		out = append(out, h)
	}
	return out
}
