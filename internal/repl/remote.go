package repl

import (
	"fmt"
	"strconv"
	"time"

	"mtcache/internal/engine"
	"mtcache/internal/metrics"
	"mtcache/internal/querystore"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// TxnBatch is a wire-transportable committed transaction, used by pull
// subscriptions where the subscriber lives across a network link. The
// distribution agent on the subscriber machine pulls batches and applies
// them locally (the paper's "pull subscription", §2.2).
type TxnBatch struct {
	LSN        storage.LSN
	CommitTime time.Time
	Changes    []storage.ChangeRec
}

// SnapshotRows computes the article's current contents plus the LSN the
// change stream must start from, without applying them anywhere. Used for
// initial population of remote subscribers.
func (s *Server) SnapshotRows(a *Article) ([]types.Row, storage.LSN, error) {
	pubStore := s.publisher.Store()
	rtx := pubStore.Begin(false)
	src := rtx.Table(a.Table)
	if src == nil {
		rtx.Abort()
		return nil, 0, fmt.Errorf("repl: no storage for %s on publisher", a.Table)
	}
	var rows []types.Row
	var evalErr error
	src.Scan(func(_ storage.RowID, row types.Row) bool {
		ok, err := a.matches(row)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			rows = append(rows, a.project(row))
		}
		return true
	})
	// AsOfLSN, not WAL().End(): under MVCC commits proceed during the scan,
	// so the log may already extend past what this snapshot sees.
	lsn := rtx.AsOfLSN()
	rtx.Abort()
	if evalErr != nil {
		return nil, 0, evalErr
	}
	return rows, lsn, nil
}

// SubscribeRemote registers a queue-only subscription: the log reader fills
// its queue, and a remote agent drains it with Drain. startLSN is the value
// returned by SnapshotRows.
func (s *Server) SubscribeRemote(a *Article, name string, startLSN storage.LSN) *Subscription {
	sub := &Subscription{
		Name:    name,
		Article: a,
		nextLSN: startLSN,
	}
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub
}

// ResumeRemote re-creates a queue-only subscription for a subscriber that
// restarted with durable state as of startLSN (its last checkpointed apply
// position + 1). It succeeds only when the publisher's WAL still retains
// every record from startLSN on — then the log reader is rewound so the
// stream replays from there and the subscriber skips the full reseed. When
// the WAL has been truncated past startLSN the gap is unrecoverable and the
// caller must fall back to a fresh snapshot (SnapshotRows + SubscribeRemote).
func (s *Server) ResumeRemote(a *Article, name string, startLSN storage.LSN) (*Subscription, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wal := s.publisher.Store().WAL()
	if startLSN < wal.First() || startLSN > wal.End() {
		metrics.Default.Counter("repl.resume_misses").Add(1)
		querystore.Emit("repl_resume_miss", "sub", name,
			"from_lsn", strconv.FormatUint(uint64(startLSN), 10),
			"wal_first", strconv.FormatUint(uint64(wal.First()), 10))
		return nil, false
	}
	sub := &Subscription{
		Name:    name,
		Article: a,
		nextLSN: startLSN,
	}
	// Rewind the log reader so the next pass re-reads from the resume point;
	// other subscriptions' nextLSN cursors make re-delivered records no-ops
	// for them.
	if startLSN < s.readerLSN {
		s.readerLSN = startLSN
	}
	s.subs = append(s.subs, sub)
	metrics.Default.Counter("repl.resubscribes").Add(1)
	querystore.Emit("repl_resubscribe", "sub", name,
		"from_lsn", strconv.FormatUint(uint64(startLSN), 10))
	return sub, true
}

// ResetRemote rewinds a remote subscription to a fresh snapshot point:
// pending batches are dropped and the stream restarts at startLSN. Used to
// make wire-level provisioning idempotent — re-provisioning an existing
// subscription reuses it instead of leaking an undrained queue that would
// pin the WAL.
func (s *Server) ResetRemote(sub *Subscription, startLSN storage.LSN) {
	sub.mu.Lock()
	sub.queue = nil
	sub.nextLSN = startLSN
	sub.mu.Unlock()
}

// DrainAfter acknowledges every queued transaction with LSN <= ack
// (removing it from the distribution queue) and returns — without removing —
// up to max (<= 0 means all) of the remaining ones, in commit (LSN) order.
//
// This is the fault-tolerant half of a pull subscription: a batch stays
// queued until a later call acknowledges it, so a pull whose response was
// lost in transit re-delivers the same batches. Delivery is therefore
// at-least-once; the subscriber deduplicates by LSN, which together yields
// exactly-once application.
func (s *Server) DrainAfter(sub *Subscription, ack storage.LSN, max int) []TxnBatch {
	out, _ := s.DrainAfterThrough(sub, ack, max)
	return out
}

// DrainAfterThrough is DrainAfter plus the LSN the subscription's change
// stream is complete through: when the whole remaining queue is returned,
// that is the log reader's cursor minus one — which may run ahead of the last
// batch's LSN, because the reader advances past transactions that do not
// touch the article without queueing anything. A truncated response is only
// complete through its last returned batch. Subscribers use the value to
// report applied progress for writes their views never see.
func (s *Server) DrainAfterThrough(sub *Subscription, ack storage.LSN, max int) ([]TxnBatch, storage.LSN) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	drop := 0
	for drop < len(sub.queue) && sub.queue[drop].lsn <= ack {
		drop++
	}
	sub.queue = sub.queue[drop:]
	n := len(sub.queue)
	truncated := false
	if max > 0 && n > max {
		n = max
		truncated = true
	}
	out := make([]TxnBatch, 0, n)
	for i := 0; i < n; i++ {
		q := sub.queue[i]
		changes, err := decodeChanges(q.encoded)
		if err != nil {
			continue
		}
		out = append(out, TxnBatch{LSN: q.lsn, CommitTime: q.commitTime, Changes: changes})
	}
	through := sub.nextLSN - 1
	if truncated {
		through = sub.queue[n-1].lsn
	}
	return out, through
}

// Drain removes and returns up to max queued transactions (max <= 0 means
// all) for a remote subscription.
func (s *Server) Drain(sub *Subscription, max int) []TxnBatch {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	n := len(sub.queue)
	if max > 0 && n > max {
		n = max
	}
	out := make([]TxnBatch, 0, n)
	for i := 0; i < n; i++ {
		q := sub.queue[i]
		changes, err := decodeChanges(q.encoded)
		if err != nil {
			continue
		}
		out = append(out, TxnBatch{LSN: q.lsn, CommitTime: q.commitTime, Changes: changes})
	}
	sub.queue = sub.queue[n:]
	return out
}

// ApplyBatch applies one pulled transaction batch to a local table,
// committing unlogged so replicated changes do not echo. It is the
// subscriber half of a pull subscription.
func ApplyBatch(target *engine.Database, table string, batch TxnBatch) error {
	meta := target.Catalog().Table(table)
	if meta == nil {
		return fmt.Errorf("repl: target table %s does not exist", table)
	}
	tx := target.Store().Begin(true)
	td := tx.Table(table)
	if td == nil {
		tx.Abort()
		return fmt.Errorf("repl: no storage for %s", table)
	}
	for _, ch := range batch.Changes {
		switch ch.Op {
		case storage.OpInsert:
			if _, err := tx.Insert(table, ch.After); err != nil {
				tx.Abort()
				return err
			}
		case storage.OpDelete:
			rid := locateTargetRow(td, meta, ch.Before)
			if rid < 0 {
				tx.Abort()
				return fmt.Errorf("repl: %s: delete target row missing", table)
			}
			if err := tx.Delete(table, rid); err != nil {
				tx.Abort()
				return err
			}
		case storage.OpUpdate:
			rid := locateTargetRow(td, meta, ch.Before)
			if rid < 0 {
				tx.Abort()
				return fmt.Errorf("repl: %s: update target row missing", table)
			}
			if err := tx.Update(table, rid, ch.After); err != nil {
				tx.Abort()
				return err
			}
		}
	}
	if err := tx.CommitUnlogged(); err != nil {
		return err
	}
	// Replicated writes are the invalidation signal for intermediate results
	// derived from this table: mark them stale now that the change is visible.
	target.InvalidateIntermediates(table)
	return nil
}
