package repl

import (
	"testing"
	"time"
)

// Failure injection: a subscriber that temporarily cannot apply (conflicting
// row) must not lose or reorder transactions — the distribution agent
// re-queues the unapplied suffix and retries on its next wake-up.

func TestApplyFailureRequeuesInOrder(t *testing.T) {
	pub := newPublisher(t, 20)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	sub, err := srv.Subscribe(art, subDB, "tgt")
	if err != nil {
		t.Fatal(err)
	}

	// Sabotage: insert a conflicting row directly into the target so the
	// next replicated insert (i_id = 500) collides on the primary key.
	if _, err := subDB.Exec("INSERT INTO tgt (i_id, i_title, i_cost) VALUES (500, 'conflict', 0)", nil); err != nil {
		t.Fatal(err)
	}

	pub.Exec("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (500, 'real', 1, 'ARTS')", nil)
	pub.Exec("UPDATE item SET i_title = 'after-conflict' WHERE i_id = 1", nil)
	srv.RunLogReader()

	// First distribution pass fails on the conflicting transaction.
	if _, err := srv.RunDistribution(sub); err == nil {
		t.Fatal("expected apply failure")
	}
	// Both transactions must still be queued, in commit order.
	if got := srv.PendingFor(sub); got != 2 {
		t.Fatalf("pending after failure: %d", got)
	}
	// The later update must NOT have been applied out of order.
	res, _ := subDB.Exec("SELECT i_title FROM tgt WHERE i_id = 1", nil)
	if res.Rows[0][0].Str() == "after-conflict" {
		t.Fatal("later transaction applied before the failed one")
	}

	// Repair the conflict; the next agent pass applies both, in order.
	if _, err := subDB.Exec("DELETE FROM tgt WHERE i_id = 500", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RunDistribution(sub); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	res, _ = subDB.Exec("SELECT i_title FROM tgt WHERE i_id = 500", nil)
	if res.Rows[0][0].Str() != "real" {
		t.Error("failed transaction not applied after repair")
	}
	res, _ = subDB.Exec("SELECT i_title FROM tgt WHERE i_id = 1", nil)
	if res.Rows[0][0].Str() != "after-conflict" {
		t.Error("subsequent transaction lost")
	}
}

func TestOneFailingSubscriberDoesNotBlockOthers(t *testing.T) {
	pub := newPublisher(t, 10)
	good := newSubscriberTable(t, "good")
	bad := newSubscriberTable(t, "bad")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	gsub, _ := srv.Subscribe(art, good, "tgt")
	bsub, _ := srv.Subscribe(art, bad, "tgt")

	// Break the bad subscriber only.
	bad.Exec("INSERT INTO tgt (i_id, i_title, i_cost) VALUES (777, 'conflict', 0)", nil)
	pub.Exec("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (777, 'x', 1, 'ARTS')", nil)
	srv.RunLogReader()

	if _, err := srv.RunDistribution(gsub); err != nil {
		t.Fatalf("healthy subscriber affected: %v", err)
	}
	if _, err := srv.RunDistribution(bsub); err == nil {
		t.Fatal("expected failure on the broken subscriber")
	}
	res, _ := good.Exec("SELECT COUNT(*) FROM tgt WHERE i_id = 777", nil)
	if res.Rows[0][0].Int() != 1 {
		t.Error("healthy subscriber missing the change")
	}
	// WAL retention: the failed subscriber's pending txn pins the log.
	srv.RunLogReader()
	if pub.Store().WAL().Len() == 0 {
		t.Error("WAL truncated while a subscriber still has pending work")
	}
}

func TestStalenessGrowsWithPendingWork(t *testing.T) {
	pub := newPublisher(t, 10)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	sub, _ := srv.Subscribe(art, subDB, "tgt")

	srv.StepAll()
	pub.Exec("UPDATE item SET i_cost = 1 WHERE i_id = 1", nil)
	time.Sleep(15 * time.Millisecond)
	srv.RunLogReader() // queued but not applied
	stale := sub.Staleness(time.Now())
	if stale < 10*time.Millisecond {
		t.Fatalf("pending txn should show its age: %v", stale)
	}
	if _, err := srv.RunDistribution(sub); err != nil {
		t.Fatal(err)
	}
	srv.RunLogReader() // advances currentAsOf for the drained queue
	after := sub.Staleness(time.Now())
	if after > stale {
		t.Errorf("staleness should reset after catching up: before=%v after=%v", stale, after)
	}
}
