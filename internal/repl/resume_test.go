package repl

import (
	"fmt"
	"testing"

	"mtcache/internal/engine"
	"mtcache/internal/storage"
)

// TestResumeRemoteReplaysFromCheckpoint covers the restart path of a pull
// subscriber: a subscription re-created with ResumeRemote at its durable
// apply position must receive exactly the records from that position on,
// without a reseed, as long as the publisher's WAL retains them.
func TestResumeRemoteReplaysFromCheckpoint(t *testing.T) {
	pub := newPublisher(t, 0)
	srv := NewServer(pub)
	art, err := srv.EnsureArticle("item", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Original subscriber: snapshot at LSN 1, stream everything.
	rows, startLSN, err := srv.SnapshotRows(art)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 || startLSN != 1 {
		t.Fatalf("empty snapshot: %d rows start %d", len(rows), startLSN)
	}
	orig := srv.SubscribeRemote(art, "cache1", startLSN)

	for i := 1; i <= 10; i++ {
		if _, err := pub.Exec(fmt.Sprintf(
			"INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (%d, 't%d', %d.5, 'ARTS')", i, i, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	srv.RunLogReader()
	if got := srv.Drain(orig, 0); len(got) != 10 {
		t.Fatalf("original subscriber drained %d batches, want 10", len(got))
	}

	// The subscriber restarts having durably applied through LSN 4: it
	// resumes at 5 and must get 5..10 again — and only those.
	resumed, ok := srv.ResumeRemote(art, "cache1", 5)
	if !ok {
		t.Fatalf("resume at 5 refused; WAL window is [%d,%d)", pub.Store().WAL().First(), pub.Store().WAL().End())
	}
	srv.RunLogReader()
	batches := srv.Drain(resumed, 0)
	if len(batches) != 6 {
		t.Fatalf("resumed subscriber got %d batches, want 6 (LSNs 5..10)", len(batches))
	}
	for i, b := range batches {
		if b.LSN != storage.LSN(5+i) {
			t.Fatalf("batch %d has LSN %d, want %d", i, b.LSN, 5+i)
		}
	}
	// The rewound pass must not re-deliver to the original subscription.
	if n := srv.PendingFor(orig); n != 0 {
		t.Fatalf("original subscription re-received %d batches after the rewind", n)
	}
}

// TestResumeRemoteRefusesTruncatedWindow: once the WAL has been truncated
// past the restart position, resume must report a miss so the caller falls
// back to a full reseed instead of silently losing the gap.
func TestResumeRemoteRefusesTruncatedWindow(t *testing.T) {
	pub := newPublisher(t, 10) // 10 insert commits, LSNs 1..10
	srv := NewServer(pub)
	art, err := srv.EnsureArticle("item", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No subscriptions: the reader pass truncates everything it has read.
	srv.RunLogReader()
	if first := pub.Store().WAL().First(); first != 11 {
		t.Fatalf("WAL not truncated: First=%d", first)
	}
	if _, ok := srv.ResumeRemote(art, "cache1", 5); ok {
		t.Fatal("resume at a truncated LSN succeeded; it must force a reseed")
	}
	// A position inside the (empty) retained window is fine.
	if _, ok := srv.ResumeRemote(art, "cache2", 11); !ok {
		t.Fatal("resume at the WAL head refused")
	}
	// A position past the publisher's log means the subscriber is ahead of a
	// publisher that lost state — also a reseed.
	if _, ok := srv.ResumeRemote(art, "cache3", 99); ok {
		t.Fatal("resume past the WAL end succeeded")
	}
}

// TestTruncateRetainsUnconsumedTail is the pull-subscriber-behind-checkpoint
// regression: a subscription whose cursor trails the log reader (a resumed
// subscriber, or one the reader has not yet caught up for) must pin WAL
// truncation at its cursor even when its queue is empty and even when a
// storage checkpoint would otherwise allow the whole log to be dropped.
func TestTruncateRetainsUnconsumedTail(t *testing.T) {
	dir := t.TempDir()
	pub := engine.New(engine.Config{Name: "backend", Role: engine.Backend})
	if err := pub.Store().EnableDurability(storage.DurabilityOptions{Dir: dir, Policy: storage.SyncGroup}); err != nil {
		t.Fatal(err)
	}
	defer pub.Store().Close()
	if err := pub.ExecScript(itemDDL); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(pub)
	art, err := srv.EnsureArticle("item", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := srv.SubscribeRemote(art, "cache1", 1)

	for i := 1; i <= 10; i++ {
		if _, err := pub.Exec(fmt.Sprintf(
			"INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (%d, 't%d', %d.5, 'ARTS')", i, i, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint at LSN 11 makes the whole log redundant *for recovery* —
	// but the pull subscriber still needs it.
	if ck, err := pub.Store().Checkpoint(); err != nil || ck != 11 {
		t.Fatalf("checkpoint: lsn=%d err=%v", ck, err)
	}
	srv.RunLogReader()
	if first := pub.Store().WAL().First(); first != 1 {
		t.Fatalf("truncation dropped records the pull subscriber has not acked: First=%d", first)
	}

	// Ack everything; the next pass may now truncate up to the cursor.
	if got := srv.DrainAfter(sub, 0, 0); len(got) != 10 {
		t.Fatalf("drained %d, want 10", len(got))
	}
	srv.DrainAfter(sub, 10, 0)
	srv.RunLogReader()
	if first := pub.Store().WAL().First(); first != 11 {
		t.Fatalf("truncation blocked after full ack: First=%d, want 11", first)
	}

	// Resume a second subscriber behind the checkpoint: refused (truncated),
	// resume at the head: allowed, and it pins truncation again.
	if _, ok := srv.ResumeRemote(art, "late", 5); ok {
		t.Fatal("resume below the truncated window succeeded")
	}
	late, ok := srv.ResumeRemote(art, "late", 11)
	if !ok {
		t.Fatal("resume at the retained head refused")
	}
	for i := 11; i <= 14; i++ {
		if _, err := pub.Exec(fmt.Sprintf(
			"INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (%d, 't%d', %d.5, 'ARTS')", i, i, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	srv.RunLogReader()
	if got := srv.Drain(late, 0); len(got) != 4 {
		t.Fatalf("resumed-at-head subscriber got %d batches, want 4", len(got))
	}
}
