package repl

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mtcache/internal/engine"
	"mtcache/internal/sql"
)

const itemDDL = `
	CREATE TABLE item (
		i_id INT PRIMARY KEY,
		i_title VARCHAR(60) NOT NULL,
		i_cost FLOAT,
		i_subject VARCHAR(20)
	);`

func newPublisher(t *testing.T, rows int) *engine.Database {
	t.Helper()
	db := engine.New(engine.Config{Name: "backend", Role: engine.Backend})
	if err := db.ExecScript(itemDDL); err != nil {
		t.Fatal(err)
	}
	subjects := []string{"ARTS", "BIOGRAPHIES", "COMPUTERS"}
	for i := 1; i <= rows; i++ {
		stmt := fmt.Sprintf("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (%d, 't%d', %d.5, '%s')",
			i, i, i, subjects[i%3])
		if _, err := db.Exec(stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

// newSubscriberTable creates a cache-side database with one target table
// matching the article projection (i_id, i_title, i_cost).
func newSubscriberTable(t *testing.T, name string) *engine.Database {
	t.Helper()
	db := engine.New(engine.Config{Name: name, Role: engine.Backend}) // role irrelevant for apply
	err := db.ExecScript(`CREATE TABLE tgt (i_id INT PRIMARY KEY, i_title VARCHAR(60), i_cost FLOAT)`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func filterCost(t *testing.T, bound float64) sql.Expr {
	t.Helper()
	return sql.MustParseSelect(fmt.Sprintf("SELECT i_id FROM item WHERE i_cost <= %g", bound)).Where
}

func count(t *testing.T, db *engine.Database, q string) int64 {
	t.Helper()
	res, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].Int()
}

func TestSnapshotPopulatesTarget(t *testing.T) {
	pub := newPublisher(t, 100)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, err := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, filterCost(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Subscribe(art, subDB, "tgt"); err != nil {
		t.Fatal(err)
	}
	// costs are i+0.5, filter <= 50 → ids 1..49
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt"); got != 49 {
		t.Fatalf("snapshot rows: %d", got)
	}
}

func TestIncrementalPropagation(t *testing.T) {
	pub := newPublisher(t, 100)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	srv.Subscribe(art, subDB, "tgt")

	pub.Exec("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (500, 'new', 1, 'ARTS')", nil)
	pub.Exec("UPDATE item SET i_title = 'renamed' WHERE i_id = 10", nil)
	pub.Exec("DELETE FROM item WHERE i_id = 20", nil)

	if err := srv.StepAll(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt"); got != 100 {
		t.Fatalf("target rows: %d", got)
	}
	res, _ := subDB.Exec("SELECT i_title FROM tgt WHERE i_id = 10", nil)
	if res.Rows[0][0].Str() != "renamed" {
		t.Error("update not propagated")
	}
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt WHERE i_id = 20"); got != 0 {
		t.Error("delete not propagated")
	}
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt WHERE i_id = 500"); got != 1 {
		t.Error("insert not propagated")
	}
}

func TestFilterBoundaryCrossing(t *testing.T) {
	pub := newPublisher(t, 100)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, filterCost(t, 50))
	srv.Subscribe(art, subDB, "tgt")

	// Update moving a row INTO the filter: id 80 (cost 80.5) → cost 10.
	pub.Exec("UPDATE item SET i_cost = 10 WHERE i_id = 80", nil)
	// Update moving a row OUT: id 5 (cost 5.5) → cost 999.
	pub.Exec("UPDATE item SET i_cost = 999 WHERE i_id = 5", nil)
	// In-place update staying inside.
	pub.Exec("UPDATE item SET i_title = 'kept' WHERE i_id = 7", nil)
	srv.StepAll()

	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt WHERE i_id = 80"); got != 1 {
		t.Error("move-in should become an insert on the subscriber")
	}
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt WHERE i_id = 5"); got != 0 {
		t.Error("move-out should become a delete on the subscriber")
	}
	res, _ := subDB.Exec("SELECT i_title FROM tgt WHERE i_id = 7", nil)
	if res.Rows[0][0].Str() != "kept" {
		t.Error("in-place update lost")
	}
}

func TestCommitOrderAndTransactionality(t *testing.T) {
	pub := newPublisher(t, 10)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	srv.Subscribe(art, subDB, "tgt")

	// A multi-statement transaction via a stored procedure.
	pub.ExecScript(`CREATE PROCEDURE swapTitles @a INT, @b INT AS BEGIN
		UPDATE item SET i_title = 'swapA' WHERE i_id = @a;
		UPDATE item SET i_title = 'swapB' WHERE i_id = @b;
	END`)
	pub.Exec("EXEC swapTitles @a = 1, @b = 2", nil)
	srv.RunLogReader()
	sub := srv.Subscriptions()[0]
	if srv.PendingFor(sub) != 1 {
		t.Fatalf("expected 1 queued transaction, got %d", srv.PendingFor(sub))
	}
	if _, err := srv.RunDistribution(sub); err != nil {
		t.Fatal(err)
	}
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt WHERE i_title LIKE 'swap%'"); got != 2 {
		t.Error("transaction applied partially")
	}
}

func TestLogReaderOffStopsPropagation(t *testing.T) {
	pub := newPublisher(t, 10)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	srv.Subscribe(art, subDB, "tgt")

	srv.SetLogReader(false)
	pub.Exec("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (99, 'x', 1, 'ARTS')", nil)
	srv.StepAll()
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt"); got != 10 {
		t.Error("changes propagated with reader off")
	}
	srv.SetLogReader(true)
	srv.StepAll()
	if got := count(t, subDB, "SELECT COUNT(*) FROM tgt"); got != 11 {
		t.Error("changes lost after reader re-enabled")
	}
}

func TestWALTruncationAfterPropagation(t *testing.T) {
	pub := newPublisher(t, 10)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	srv.Subscribe(art, subDB, "tgt")

	for i := 0; i < 5; i++ {
		pub.Exec(fmt.Sprintf("UPDATE item SET i_cost = %d WHERE i_id = 1", i+100), nil)
	}
	srv.StepAll()
	srv.RunLogReader() // second pass triggers truncation of consumed entries
	if n := pub.Store().WAL().Len(); n != 0 {
		t.Errorf("WAL should be truncated after all subscribers consumed: %d left", n)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	pub := newPublisher(t, 50)
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	var targets []*engine.Database
	for i := 0; i < 3; i++ {
		db := newSubscriberTable(t, fmt.Sprintf("cache%d", i))
		if _, err := srv.Subscribe(art, db, "tgt"); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, db)
	}
	pub.Exec("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (999, 'multi', 1, 'ARTS')", nil)
	srv.StepAll()
	for i, db := range targets {
		if got := count(t, db, "SELECT COUNT(*) FROM tgt"); got != 51 {
			t.Errorf("subscriber %d rows: %d", i, got)
		}
	}
}

func TestArticleReuse(t *testing.T) {
	pub := newPublisher(t, 10)
	srv := NewServer(pub)
	a1, _ := srv.EnsureArticle("item", []string{"i_id", "i_title"}, nil)
	a2, _ := srv.EnsureArticle("item", []string{"i_id", "i_title"}, nil)
	if a1 != a2 {
		t.Error("identical article definitions should be shared")
	}
	a3, _ := srv.EnsureArticle("item", []string{"i_id"}, nil)
	if a1 == a3 {
		t.Error("different projections must be distinct articles")
	}
	a4, _ := srv.EnsureArticle("item", []string{"i_id", "i_title"}, filterCost(t, 5))
	if a1 == a4 {
		t.Error("different filters must be distinct articles")
	}
}

func TestLatencyMeasured(t *testing.T) {
	pub := newPublisher(t, 10)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	srv.Subscribe(art, subDB, "tgt")

	pub.Exec("UPDATE item SET i_cost = 7 WHERE i_id = 1", nil)
	time.Sleep(20 * time.Millisecond)
	srv.StepAll()
	if srv.Stats.Latency.Count() != 1 {
		t.Fatal("latency not recorded")
	}
	if lat := srv.Stats.Latency.Mean(); lat < 0.015 {
		t.Errorf("latency should include queueing delay: %f", lat)
	}
}

func TestBackgroundAgents(t *testing.T) {
	pub := newPublisher(t, 10)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, nil)
	srv.Subscribe(art, subDB, "tgt")

	srv.Start(2*time.Millisecond, 2*time.Millisecond)
	defer srv.Stop()
	pub.Exec("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (77, 'bg', 1, 'ARTS')", nil)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if count(t, subDB, "SELECT COUNT(*) FROM tgt WHERE i_id = 77") == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background agents did not propagate the change")
}

// Property-style convergence test: random committed operations on the
// publisher converge the subscriber to exactly the filtered projection.
func TestConvergenceUnderRandomWorkload(t *testing.T) {
	pub := newPublisher(t, 200)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, _ := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, filterCost(t, 100))
	srv.Subscribe(art, subDB, "tgt")

	r := rand.New(rand.NewSource(7))
	nextID := 1000
	live := map[int]bool{}
	for i := 1; i <= 200; i++ {
		live[i] = true
	}
	ids := func() []int {
		var out []int
		for id := range live {
			out = append(out, id)
		}
		return out
	}
	for step := 0; step < 300; step++ {
		switch r.Intn(3) {
		case 0:
			nextID++
			cost := r.Intn(200)
			pub.Exec(fmt.Sprintf("INSERT INTO item (i_id, i_title, i_cost, i_subject) VALUES (%d, 'r', %d, 'ARTS')", nextID, cost), nil)
			live[nextID] = true
		case 1:
			all := ids()
			id := all[r.Intn(len(all))]
			pub.Exec(fmt.Sprintf("UPDATE item SET i_cost = %d WHERE i_id = %d", r.Intn(200), id), nil)
		case 2:
			all := ids()
			id := all[r.Intn(len(all))]
			pub.Exec(fmt.Sprintf("DELETE FROM item WHERE i_id = %d", id), nil)
			delete(live, id)
		}
		if step%50 == 0 {
			srv.StepAll()
		}
	}
	if err := srv.StepAll(); err != nil {
		t.Fatal(err)
	}
	want := count(t, pub, "SELECT COUNT(*) FROM item WHERE i_cost <= 100")
	got := count(t, subDB, "SELECT COUNT(*) FROM tgt")
	if want != got {
		t.Fatalf("divergence: publisher filtered=%d subscriber=%d", want, got)
	}
	// Spot-check content equality via checksums.
	wantSum, _ := pub.Exec("SELECT SUM(i_id), SUM(i_cost) FROM item WHERE i_cost <= 100", nil)
	gotSum, _ := subDB.Exec("SELECT SUM(i_id), SUM(i_cost) FROM tgt", nil)
	if wantSum.Rows[0][0].Int() != gotSum.Rows[0][0].Int() ||
		wantSum.Rows[0][1].Float() != gotSum.Rows[0][1].Float() {
		t.Fatalf("content divergence: %v vs %v", wantSum.Rows[0], gotSum.Rows[0])
	}
}
