package repl

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNoTornReadsDuringApply runs queries against the subscriber while the
// distribution agent applies generation updates, and asserts no query ever
// observes a half-applied transaction. Each publisher generation is a single
// UPDATE-all statement (one transaction), so every snapshot must see all
// rows at the same cost. Under the seed's store-wide 2PL this test either
// blocks readers behind every apply or — with the exclusion removed — shows
// torn generations; under MVCC it passes, including with -race.
func TestNoTornReadsDuringApply(t *testing.T) {
	const rows = 60
	pub := newPublisher(t, rows)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, err := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, filterCost(t, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	// Level the generation before subscribing: the initial snapshot then
	// carries uniform costs, so "all costs equal" holds for every read.
	if _, err := pub.Exec("UPDATE item SET i_cost = 1000 WHERE i_id > 0", nil); err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Subscribe(art, subDB, "tgt")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Distribution agent: ship publisher commits to the subscriber.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			srv.RunLogReader()
			if _, err := srv.RunDistribution(sub); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	// Readers: every query is one snapshot; a torn apply would surface as
	// min != max within a single result.
	tornCh := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := subDB.Exec("SELECT MIN(i_cost), MAX(i_cost), COUNT(*) FROM tgt", nil)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				lo, hi := res.Rows[0][0].Float(), res.Rows[0][1].Float()
				n := res.Rows[0][2].Int()
				if lo != hi {
					select {
					case tornCh <- fmt.Sprintf("torn generation: min=%g max=%g over %d rows", lo, hi, n):
					default:
					}
					return
				}
				if n != rows {
					select {
					case tornCh <- fmt.Sprintf("torn row count: %d, want %d", n, rows):
					default:
					}
					return
				}
			}
		}()
	}

	// Publisher: one transaction per generation.
	deadline := time.Now().Add(time.Second)
	for g := 1; time.Now().Before(deadline); g++ {
		stmt := fmt.Sprintf("UPDATE item SET i_cost = %d WHERE i_id > 0", 1000+g)
		if _, err := pub.Exec(stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-tornCh:
		t.Fatal(msg)
	default:
	}
}

// TestNoTornReadsDuringApplyParallelScan is the intra-query-parallel variant
// of the torn-read test: the reader's aggregate runs as a Gather over
// partitioned scan workers, all sharing one pinned snapshot, while the
// distribution agent concurrently applies whole-generation updates. Partition
// bounds are computed once at Open from that snapshot, so no worker may ever
// observe a half-applied generation — min must equal max in every result.
func TestNoTornReadsDuringApplyParallelScan(t *testing.T) {
	const rows = 1500
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	pub := newPublisher(t, rows)
	subDB := newSubscriberTable(t, "cache")
	srv := NewServer(pub)
	art, err := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, filterCost(t, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Exec("UPDATE item SET i_cost = 1000 WHERE i_id > 0", nil); err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Subscribe(art, subDB, "tgt")
	if err != nil {
		t.Fatal(err)
	}
	// Stats + a low startup cost make the optimizer pick a parallel plan for
	// the 1500-row aggregate even though the table is modest.
	if err := subDB.Analyze(); err != nil {
		t.Fatal(err)
	}
	opts := subDB.Options()
	opts.MaxDOP = 4
	opts.ParallelStartupCost = 10
	subDB.SetOptions(opts)

	const q = "SELECT MIN(i_cost), MAX(i_cost), COUNT(*) FROM tgt"
	plan, err := subDB.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Gather (Exchange dop=") {
		t.Fatalf("reader plan is not parallel:\n%s", plan)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			srv.RunLogReader()
			if _, err := srv.RunDistribution(sub); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	tornCh := make(chan string, 8)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := subDB.Exec(q, nil)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				lo, hi := res.Rows[0][0].Float(), res.Rows[0][1].Float()
				n := res.Rows[0][2].Int()
				if lo != hi || n != rows {
					select {
					case tornCh <- fmt.Sprintf("torn parallel read: min=%g max=%g count=%d (want %d)", lo, hi, n, rows):
					default:
					}
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(time.Second)
	for g := 1; time.Now().Before(deadline); g++ {
		stmt := fmt.Sprintf("UPDATE item SET i_cost = %d WHERE i_id > 0", 1000+g)
		if _, err := pub.Exec(stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-tornCh:
		t.Fatal(msg)
	default:
	}
}

// TestDistributionSkipsQueueOnlySubscriptions: the agent loop must not try
// to apply a remote (pull) subscription locally — it has no target database
// — and must leave its queue for the remote agent to drain. Regression test
// for a nil-target panic in the backend's distribution goroutine.
func TestDistributionSkipsQueueOnlySubscriptions(t *testing.T) {
	pub := newPublisher(t, 10)
	srv := NewServer(pub)
	art, err := srv.EnsureArticle("item", []string{"i_id", "i_title", "i_cost"}, filterCost(t, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	_, lsn, err := srv.SnapshotRows(art)
	if err != nil {
		t.Fatal(err)
	}
	remote := srv.SubscribeRemote(art, "pull_sub", lsn)

	if _, err := pub.Exec("UPDATE item SET i_cost = 5 WHERE i_id = 1", nil); err != nil {
		t.Fatal(err)
	}
	srv.RunLogReader()
	if srv.PendingFor(remote) == 0 {
		t.Fatal("log reader did not enqueue for the remote subscription")
	}

	n, err := srv.RunDistribution(remote)
	if err != nil {
		t.Fatalf("distribution over a queue-only subscription: %v", err)
	}
	if n != 0 {
		t.Errorf("distribution applied %d txns to a subscription with no target", n)
	}
	if got := len(srv.DrainAfter(remote, 0, 0)); got == 0 {
		t.Error("queued batches were discarded; the remote puller would lose them")
	}

	// Health must describe the target-less subscription without panicking.
	hs := srv.Health()
	if len(hs) != 1 {
		t.Fatalf("health entries: %d", len(hs))
	}
	if hs[0].Target != "(pull)" {
		t.Errorf("queue-only subscription target rendered as %q", hs[0].Target)
	}
	if hs[0].Pending == 0 {
		t.Error("health does not report the pending pull batch")
	}
}
