// Package sim reproduces the paper's multi-machine TPC-W experiments on a
// single machine. The paper used eleven physical servers (a dual-CPU
// backend, five single-CPU web/cache servers, load drivers); we substitute
// a closed-loop discrete-event capacity simulation whose inputs are
// *measured* from the real engine:
//
//   - per-interaction CPU demand on the web/cache server and on the backend
//     (measured by running every interaction against the real engine with a
//     timing shim around the backend link);
//   - replication overheads (log-reader time per transaction on the backend,
//     apply time per transaction on each cache), measured from the real
//     replication pipeline.
//
// The simulation preserves what the paper's figures depend on — where work
// executes — so the shapes (linear WIPS scale-out, backend-load growth per
// workload, the Ordering saturation) reproduce even though absolute numbers
// reflect today's hardware rather than 500 MHz Pentiums.
package sim

import (
	"container/heap"
	"math/rand"
	"sort"

	"mtcache/internal/tpcw"
)

// Costs is the calibrated cost model.
type Costs struct {
	// Web and Backend are per-interaction CPU demands in seconds.
	Web     map[tpcw.Interaction]float64
	Backend map[tpcw.Interaction]float64

	// Writes is the number of write transactions each interaction commits
	// on the backend (drives replication load).
	Writes map[tpcw.Interaction]float64

	// ReaderPerTxn is backend log-reader CPU per write transaction;
	// ApplyPerTxn is per-cache distribution-agent CPU per write transaction.
	ReaderPerTxn float64
	ApplyPerTxn  float64
}

// Config is one simulation scenario.
type Config struct {
	Workload       tpcw.Workload
	Servers        int     // number of web/cache servers
	UsersPerServer int     // emulated browsers per web server
	ThinkTime      float64 // seconds (the paper fixed it at 1s)
	BackendCPUs    int     // the paper's backend was a dual-CPU machine
	Duration       float64 // simulated seconds
	Warmup         float64 // discarded prefix
	Seed           int64
	Replication    bool // include replication overhead (log reader + apply)
}

// Result is what one simulation run measures.
type Result struct {
	WIPS        float64 // completed web interactions per simulated second
	P90Latency  float64 // seconds
	MeanLatency float64
	BackendUtil float64 // 0..1 across the backend's CPUs
	WebUtil     float64 // mean utilization of the web/cache servers
	Completed   int
}

const (
	evThinkEnd = iota
	evWebDone
	evBackendDone
)

type job struct {
	user    int     // -1 for replication apply work
	size    float64 // service demand at the current station, seconds
	started float64 // interaction start time, for latency
	backend float64 // backend demand still ahead after the web phase
	writes  float64 // write transactions this interaction commits
}

type event struct {
	at   float64
	kind int
	who  int // user id (think) or web server id (web done)
	j    job
	seq  int // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// station is a FIFO service center with one or more identical servers.
type station struct {
	queue   []job
	inUse   int
	servers int
	busyAcc float64
}

// Simulate runs one closed-loop scenario.
func Simulate(c Costs, cfg Config) Result {
	if cfg.Duration == 0 {
		cfg.Duration = 120
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration * 0.2
	}
	if cfg.BackendCPUs == 0 {
		cfg.BackendCPUs = 2
	}
	if cfg.ThinkTime == 0 {
		cfg.ThinkTime = 1.0
	}
	r := rand.New(rand.NewSource(cfg.Seed + 1))

	nUsers := cfg.Servers * cfg.UsersPerServer
	webs := make([]*station, cfg.Servers)
	for i := range webs {
		webs[i] = &station{servers: 1}
	}
	backend := &station{servers: cfg.BackendCPUs}

	var events eventHeap
	seq := 0
	push := func(at float64, kind, who int, j job) {
		heap.Push(&events, event{at: at, kind: kind, who: who, j: j, seq: seq})
		seq++
	}

	now := 0.0
	measStart := cfg.Warmup
	measured := func(t0, t1 float64) float64 {
		lo, hi := t0, t1
		if lo < measStart {
			lo = measStart
		}
		if hi > cfg.Duration {
			hi = cfg.Duration
		}
		if hi <= lo {
			return 0
		}
		return hi - lo
	}

	// exponential service times around the measured means keep the queueing
	// behaviour realistic (deterministic services understate contention).
	draw := func(mean float64) float64 {
		if mean <= 0 {
			return 0
		}
		return r.ExpFloat64() * mean
	}

	startWeb := func(sid int) {
		s := webs[sid]
		for s.inUse < s.servers && len(s.queue) > 0 {
			j := s.queue[0]
			s.queue = s.queue[1:]
			s.inUse++
			s.busyAcc += measured(now, now+j.size)
			push(now+j.size, evWebDone, sid, j)
		}
	}
	startBackend := func() {
		for backend.inUse < backend.servers && len(backend.queue) > 0 {
			j := backend.queue[0]
			backend.queue = backend.queue[1:]
			backend.inUse++
			backend.busyAcc += measured(now, now+j.size)
			push(now+j.size, evBackendDone, 0, j)
		}
	}

	var latencies []float64
	completed := 0
	complete := func(j job) {
		if now >= measStart && now <= cfg.Duration {
			completed++
			latencies = append(latencies, now-j.started)
		}
		// back to thinking
		push(now+cfg.ThinkTime, evThinkEnd, j.user, job{})
		// replication fan-out: every cache applies this interaction's writes
		if cfg.Replication && j.writes > 0 && c.ApplyPerTxn > 0 {
			for sid := range webs {
				webs[sid].queue = append(webs[sid].queue, job{user: -1, size: draw(c.ApplyPerTxn * j.writes)})
				startWeb(sid)
			}
		}
	}

	for u := 0; u < nUsers; u++ {
		push(r.Float64()*cfg.ThinkTime, evThinkEnd, u, job{})
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		now = ev.at
		if now > cfg.Duration {
			break
		}
		switch ev.kind {
		case evThinkEnd:
			u := ev.who
			in := tpcw.Pick(cfg.Workload, r)
			j := job{
				user:    u,
				size:    draw(c.Web[in]),
				started: now,
				backend: c.Backend[in],
				writes:  c.Writes[in],
			}
			if cfg.Replication && j.writes > 0 {
				j.backend += c.ReaderPerTxn * j.writes
			}
			sid := u % cfg.Servers
			webs[sid].queue = append(webs[sid].queue, j)
			startWeb(sid)
		case evWebDone:
			sid := ev.who
			webs[sid].inUse--
			j := ev.j
			if j.user < 0 {
				// replication apply work: pure CPU load, nothing follows
				startWeb(sid)
				continue
			}
			if j.backend > 0 {
				bj := j
				bj.size = draw(j.backend)
				bj.backend = 0
				backend.queue = append(backend.queue, bj)
				startBackend()
			} else {
				complete(j)
			}
			startWeb(sid)
		case evBackendDone:
			backend.inUse--
			complete(ev.j)
			startBackend()
		}
	}

	window := cfg.Duration - measStart
	res := Result{Completed: completed}
	if window > 0 {
		res.WIPS = float64(completed) / window
		res.BackendUtil = backend.busyAcc / (window * float64(backend.servers))
		var webBusy float64
		for _, s := range webs {
			webBusy += s.busyAcc
		}
		res.WebUtil = webBusy / (window * float64(cfg.Servers))
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		res.P90Latency = latencies[int(0.9*float64(len(latencies)-1))]
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / float64(len(latencies))
	}
	return res
}

// LatencyLimit is the benchmark's 90th-percentile response-time bound
// (typically three seconds, §6.1).
const LatencyLimit = 3.0

// UtilCap is the paper's 90% CPU ceiling for the bottleneck server.
const UtilCap = 0.90

// FindMaxThroughput searches for the largest users-per-server load whose
// p90 latency stays within the benchmark limit and whose bottleneck server
// stays at or under the 90% CPU cap — the paper's §6.2 methodology
// ("steadily increasing the number of users per web server until the
// response latency requirements ... were barely met").
func FindMaxThroughput(c Costs, cfg Config, cacheMode bool) (int, Result) {
	ok := func(r Result) bool {
		if r.P90Latency > LatencyLimit {
			return false
		}
		if cacheMode {
			return r.WebUtil <= UtilCap
		}
		return r.BackendUtil <= UtilCap
	}
	best := 0
	var bestRes Result
	// Exponential probe then binary search.
	lo, hi := 1, 2
	for {
		cfg.UsersPerServer = hi
		r := Simulate(c, cfg)
		if !ok(r) {
			break
		}
		best, bestRes = hi, r
		lo = hi
		hi *= 2
		if hi > 1<<16 {
			break
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		cfg.UsersPerServer = mid
		r := Simulate(c, cfg)
		if ok(r) {
			best, bestRes = mid, r
			lo = mid
		} else {
			hi = mid
		}
	}
	if best == 0 {
		cfg.UsersPerServer = 1
		bestRes = Simulate(c, cfg)
		best = 1
	}
	return best, bestRes
}
