package sim

import (
	"math"
	"testing"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/tpcw"
)

// syntheticCosts builds a hand-made cost model for deterministic DES tests:
// browse interactions are web-only, order interactions hit the backend.
func syntheticCosts(webMS, backendMS float64) Costs {
	c := Costs{
		Web:     map[tpcw.Interaction]float64{},
		Backend: map[tpcw.Interaction]float64{},
		Writes:  map[tpcw.Interaction]float64{},
	}
	for _, in := range tpcw.Interactions() {
		c.Web[in] = webMS / 1000
		if in.IsBrowse() {
			c.Backend[in] = 0
		} else {
			c.Backend[in] = backendMS / 1000
			c.Writes[in] = 1
		}
	}
	return c
}

func TestSimulateConservation(t *testing.T) {
	c := syntheticCosts(2, 4)
	res := Simulate(c, Config{Workload: tpcw.Shopping, Servers: 2, UsersPerServer: 10, Duration: 60, Seed: 1})
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// Closed-loop upper bound: nUsers / (think + service) interactions/sec.
	upper := float64(20) / 1.0
	if res.WIPS > upper {
		t.Errorf("WIPS %f exceeds closed-loop bound %f", res.WIPS, upper)
	}
	if res.BackendUtil < 0 || res.BackendUtil > 1 || res.WebUtil < 0 || res.WebUtil > 1 {
		t.Errorf("utilizations out of range: %+v", res)
	}
}

func TestSimulateUtilizationMatchesLittleLaw(t *testing.T) {
	// Light load: utilization ≈ throughput × demand.
	c := syntheticCosts(5, 10)
	res := Simulate(c, Config{Workload: tpcw.Ordering, Servers: 2, UsersPerServer: 5, Duration: 120, Seed: 3})
	var backendDemand float64
	for in, pct := range tpcw.Mix(tpcw.Ordering) {
		backendDemand += pct / 100 * c.Backend[in]
	}
	expected := res.WIPS * backendDemand / 2 // two backend CPUs
	if math.Abs(res.BackendUtil-expected) > 0.05 {
		t.Errorf("backend util %f, utilization law predicts %f", res.BackendUtil, expected)
	}
}

func TestSimulateScalesWithServers(t *testing.T) {
	// Pure browse load (no backend): doubling servers ≈ doubles peak WIPS.
	c := syntheticCosts(20, 40)
	cfg := Config{Workload: tpcw.Browsing, Seed: 5}
	cfg.Servers = 1
	u1, r1 := FindMaxThroughput(c, cfg, true)
	cfg.Servers = 2
	u2, r2 := FindMaxThroughput(c, cfg, true)
	if u1 == 0 || u2 == 0 {
		t.Fatal("search failed")
	}
	ratio := r2.WIPS / r1.WIPS
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("scale-out ratio %f, want ~2 (r1=%f r2=%f)", ratio, r1.WIPS, r2.WIPS)
	}
}

func TestSimulateBackendBottleneckCapsScaleout(t *testing.T) {
	// Heavy backend demand: adding servers must NOT scale throughput.
	c := syntheticCosts(1, 50)
	cfg := Config{Workload: tpcw.Ordering, Seed: 8}
	cfg.Servers = 1
	_, r1 := FindMaxThroughput(c, cfg, false)
	cfg.Servers = 5
	_, r5 := FindMaxThroughput(c, cfg, false)
	if r5.WIPS > r1.WIPS*1.6 {
		t.Errorf("backend-bound workload scaled: %f -> %f", r1.WIPS, r5.WIPS)
	}
}

func TestReplicationAddsLoad(t *testing.T) {
	c := syntheticCosts(5, 10)
	c.ReaderPerTxn = 0.004
	c.ApplyPerTxn = 0.003
	base := Config{Workload: tpcw.Ordering, Servers: 2, UsersPerServer: 20, Duration: 60, Seed: 9}
	on := base
	on.Replication = true
	off := base
	off.Replication = false
	resOn := Simulate(c, on)
	resOff := Simulate(c, off)
	if resOn.BackendUtil <= resOff.BackendUtil {
		t.Errorf("log reader should add backend load: on=%f off=%f", resOn.BackendUtil, resOff.BackendUtil)
	}
	if resOn.WebUtil <= resOff.WebUtil {
		t.Errorf("apply agents should add cache load: on=%f off=%f", resOn.WebUtil, resOff.WebUtil)
	}
}

func TestFindMaxThroughputRespectsLatency(t *testing.T) {
	c := syntheticCosts(30, 0)
	cfg := Config{Workload: tpcw.Browsing, Servers: 1, Seed: 11}
	users, res := FindMaxThroughput(c, cfg, true)
	if users == 0 {
		t.Fatal("no feasible load")
	}
	if res.P90Latency > LatencyLimit {
		t.Errorf("accepted config violates latency: %f", res.P90Latency)
	}
	if res.WebUtil > UtilCap+0.02 {
		t.Errorf("accepted config violates utilization cap: %f", res.WebUtil)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	c := syntheticCosts(3, 6)
	cfg := Config{Workload: tpcw.Shopping, Servers: 3, UsersPerServer: 7, Duration: 30, Seed: 42}
	r1 := Simulate(c, cfg)
	r2 := Simulate(c, cfg)
	if r1.WIPS != r2.WIPS || r1.P90Latency != r2.P90Latency {
		t.Error("same seed must reproduce identical results")
	}
}

// ---- end-to-end calibration + experiments at a small scale ----

func smallCalibration(t *testing.T) *CalibrationResult {
	t.Helper()
	cal, err := Calibrate(tpcw.Config{Items: 120, Customers: 200, Seed: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestCalibrateProducesSaneCosts(t *testing.T) {
	cal := smallCalibration(t)
	for _, in := range tpcw.Interactions() {
		if cal.NoCache.Backend[in] < 0 || cal.Cached.Web[in] < 0 {
			t.Errorf("%s: negative cost", in)
		}
	}
	// In cached mode, browse-class interactions should put (almost) no load
	// on the backend — that is the whole point of MTCache.
	var browseBackend, browseTotal float64
	for _, in := range tpcw.Interactions() {
		if in.IsBrowse() {
			browseBackend += cal.Cached.Backend[in]
			browseTotal += cal.Cached.Backend[in] + cal.Cached.Web[in]
		}
	}
	if browseBackend/browseTotal > 0.1 {
		t.Errorf("browse-class backend share %.2f should be near zero", browseBackend/browseTotal)
	}
	// BuyConfirm must generate write transactions.
	if cal.Cached.Writes[tpcw.BuyConfirm] < 1 {
		t.Errorf("BuyConfirm writes: %f", cal.Cached.Writes[tpcw.BuyConfirm])
	}
	// Replication overheads were measured.
	if cal.Cached.ReaderPerTxn <= 0 || cal.Cached.ApplyPerTxn <= 0 {
		t.Errorf("replication costs missing: reader=%g apply=%g", cal.Cached.ReaderPerTxn, cal.Cached.ApplyPerTxn)
	}
}

func TestExperimentShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in short mode")
	}
	cal := smallCalibration(t)

	// Baseline ordering: Browsing < Shopping < Ordering (paper: 50/82/283).
	base := ExperimentBaseline(cal, 5)
	if !(base[0].WIPS < base[1].WIPS && base[1].WIPS < base[2].WIPS) {
		t.Errorf("baseline ordering wrong: %+v", base)
	}

	// Scale-out: Browsing WIPS at 5 servers ≈ 5× WIPS at 1 server, and
	// backend stays lightly loaded (paper: 7.5%% at five servers).
	pts := ExperimentScaleout(cal, 5)
	get := func(w tpcw.Workload, n int) ScaleoutPoint {
		for _, p := range pts {
			if p.Workload == w && p.Servers == n {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", w, n)
		return ScaleoutPoint{}
	}
	b1, b5 := get(tpcw.Browsing, 1), get(tpcw.Browsing, 5)
	if ratio := b5.WIPS / b1.WIPS; ratio < 3.5 {
		t.Errorf("browsing scale-out %f, want near-linear (~5)", ratio)
	}
	if b5.BackendUtil > 0.35 {
		t.Errorf("browsing backend load at 5 servers: %.1f%%, want low", b5.BackendUtil*100)
	}
	// Ordering: backend load clearly higher than Browsing (paper: 55.4% vs
	// 7.5%; at this tiny calibration scale the gap narrows because cheap
	// queries make replication overhead proportionally large on both sides,
	// so assert the ordering, not the magnitude — EXPERIMENTS.md records
	// the full-scale gap).
	o5 := get(tpcw.Ordering, 5)
	if o5.BackendUtil < b5.BackendUtil*1.3 {
		t.Errorf("ordering backend load (%.1f%%) should exceed browsing (%.1f%%)",
			o5.BackendUtil*100, b5.BackendUtil*100)
	}
}

func TestExperimentReplicationOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in short mode")
	}
	cal := smallCalibration(t)
	r := ExperimentReplicationOverhead(cal)
	if r.WIPSReaderOff <= r.WIPSReaderOn {
		t.Errorf("reader off should raise throughput: on=%f off=%f", r.WIPSReaderOn, r.WIPSReaderOff)
	}
	if r.ReductionPct < 0 || r.ReductionPct > 50 {
		t.Errorf("reduction out of plausible range: %f%%", r.ReductionPct)
	}
	// At this deliberately tiny data scale, queries are cheap relative to
	// the (scale-independent) per-transaction apply work, so the idle-cache
	// utilization comes out much higher than at experiment scale (~22% at
	// the mtbench default of 500 items / 1000 customers, vs the paper's
	// ~15%). Here we only assert it is a sane utilization.
	if r.IdleCacheApplyUtil <= 0 || r.IdleCacheApplyUtil > 1.0 {
		t.Errorf("idle cache apply utilization implausible: %f", r.IdleCacheApplyUtil)
	}
}

func TestExperimentReplicationLatencyLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live latency experiment in short mode")
	}
	cal := smallCalibration(t)
	app := tpcw.NewApp(core.ConnectCache(cal.Cache), tpcw.Config{Items: 120, Customers: 200, Seed: 5})
	res, err := ExperimentReplicationLatency(cal.Backend, app, 40*time.Millisecond, 500*time.Millisecond, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.LightLoadMean <= 0 {
		t.Fatal("no light-load latency")
	}
	if res.HeavyLoadMean <= res.LightLoadMean {
		t.Errorf("heavy load should have higher latency: light=%v heavy=%v",
			res.LightLoadMean, res.HeavyLoadMean)
	}
}
