package sim

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/engine"
	"mtcache/internal/exec"
	"mtcache/internal/tpcw"
)

// timedLink wraps the backend link and accumulates the time spent inside
// backend calls, so calibration can split an interaction's cost into
// "web/cache server work" and "backend work".
type timedLink struct {
	inner exec.RemoteClient
	ns    int64
}

func (t *timedLink) Query(sqlText string, params exec.Params) (*exec.ResultSet, error) {
	start := time.Now()
	defer func() { atomic.AddInt64(&t.ns, int64(time.Since(start))) }()
	return t.inner.Query(sqlText, params)
}

func (t *timedLink) Exec(sqlText string, params exec.Params) (int64, error) {
	start := time.Now()
	defer func() { atomic.AddInt64(&t.ns, int64(time.Since(start))) }()
	return t.inner.Exec(sqlText, params)
}

func (t *timedLink) take() time.Duration {
	return time.Duration(atomic.SwapInt64(&t.ns, 0))
}

// PageGenCost models the web server's page-generation work per interaction
// (the ISAPI/HTML layer the paper ran on IIS). Our Go application layer
// renders nothing, so this constant stands in for it; it is deliberately
// small relative to query costs so the backend remains the no-cache
// bottleneck, as in the paper.
const PageGenCost = 0.0003

// CalibrationResult carries both cost models plus the database handles so
// experiments can reuse the loaded system.
type CalibrationResult struct {
	NoCache Costs // all database work on the backend
	Cached  Costs // paper cache configuration (views + procedures)

	// ScaleFactor is the hardware-normalization multiplier applied to every
	// measured cost: today's engine is orders of magnitude faster than the
	// paper's 500 MHz Pentiums, so measured demands are scaled until the
	// no-cache Ordering mix consumes TargetOrderingDemand per interaction on
	// the backend — the demand implied by the paper's numbers (283 WIPS at
	// 90% of two CPUs ⇒ ≈6.4 ms). This preserves every measured *ratio*
	// while making simulated throughput directly comparable to the paper.
	ScaleFactor float64

	Backend *core.BackendServer
	Cache   *core.CacheServer
}

// TargetOrderingDemand is the per-interaction backend CPU demand of the
// Ordering mix on the paper's hardware: 2 CPUs × 0.9 / 283 WIPS.
const TargetOrderingDemand = 2.0 * 0.9 / 283.0

// Scaled returns a copy of the costs with every demand multiplied by f.
func (c Costs) Scaled(f float64) Costs {
	out := Costs{
		Web:          map[tpcw.Interaction]float64{},
		Backend:      map[tpcw.Interaction]float64{},
		Writes:       map[tpcw.Interaction]float64{},
		ReaderPerTxn: c.ReaderPerTxn * f,
		ApplyPerTxn:  c.ApplyPerTxn * f,
	}
	for in, v := range c.Web {
		out.Web[in] = v * f
	}
	for in, v := range c.Backend {
		out.Backend[in] = v * f
	}
	for in, v := range c.Writes {
		out.Writes[in] = v // a count, not a demand
	}
	return out
}

// MeanDemand returns the mix-weighted mean backend demand per interaction.
func (c Costs) MeanDemand(w tpcw.Workload, backend bool) float64 {
	var d float64
	for in, pct := range tpcw.Mix(w) {
		if backend {
			d += pct / 100 * c.Backend[in]
		} else {
			d += pct / 100 * c.Web[in]
		}
	}
	return d
}

// Calibrate builds a real backend + cache pair with the TPC-W data and
// measures every interaction's cost in both configurations, plus the
// replication pipeline's per-transaction overheads.
func Calibrate(cfg tpcw.Config, reps int) (*CalibrationResult, error) {
	if reps <= 0 {
		reps = 12
	}
	backend := core.NewBackend("backend")
	if err := tpcw.Load(backend, cfg); err != nil {
		return nil, err
	}
	cache, err := core.NewCache("cache1", backend, nil)
	if err != nil {
		return nil, err
	}
	if err := tpcw.SetupCache(cache); err != nil {
		return nil, err
	}
	// The capacity simulation reproduces the paper's figures, which know
	// only DBA-declared cached views. The intermediate-result cache would
	// warp the measured per-interaction costs (repeated aggregates with
	// identical parameters become near-free lookups), so calibration runs
	// with it off on both servers.
	backend.DB.SetIMCacheEnabled(false)
	cache.DB.SetIMCacheEnabled(false)

	res := &CalibrationResult{Backend: backend, Cache: cache}

	// ---- no-cache configuration: the app talks straight to the backend.
	noCacheApp := tpcw.NewApp(core.ConnectBackend(backend), cfg)
	res.NoCache, err = measureApp(noCacheApp, nil, backend, cfg, reps)
	if err != nil {
		return nil, fmt.Errorf("sim: no-cache calibration: %w", err)
	}

	// ---- cached configuration: the app talks to the cache; a timing shim
	// splits backend time out of each interaction.
	shim := &timedLink{inner: engine.NewLink(backend.DB)}
	cache.DB.SetRemote(shim)
	cachedApp := tpcw.NewApp(core.ConnectCache(cache), cfg)
	cachedApp.ShareIDsWith(noCacheApp) // both apps create rows on one backend
	res.Cached, err = measureApp(cachedApp, shim, backend, cfg, reps)
	if err != nil {
		return nil, fmt.Errorf("sim: cached calibration: %w", err)
	}

	// ---- replication overheads, measured from the real pipeline.
	reader, apply, err := measureReplication(backend, cache, cachedApp, cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: replication calibration: %w", err)
	}
	res.Cached.ReaderPerTxn = reader
	res.Cached.ApplyPerTxn = apply
	res.NoCache.ReaderPerTxn = reader
	res.NoCache.ApplyPerTxn = apply

	// Hardware normalization (see ScaleFactor).
	measured := res.NoCache.MeanDemand(tpcw.Ordering, true)
	if measured > 0 {
		res.ScaleFactor = TargetOrderingDemand / measured
		res.NoCache = res.NoCache.Scaled(res.ScaleFactor)
		res.Cached = res.Cached.Scaled(res.ScaleFactor)
		// Page generation is already paper-scale; re-add it unscaled.
		for _, in := range tpcw.Interactions() {
			res.NoCache.Web[in] += PageGenCost * (1 - res.ScaleFactor)
			res.Cached.Web[in] += PageGenCost * (1 - res.ScaleFactor)
		}
	}
	return res, nil
}

// measureApp times every interaction type against a configured app.
func measureApp(app *tpcw.App, shim *timedLink, backend *core.BackendServer, cfg tpcw.Config, reps int) (Costs, error) {
	costs := Costs{
		Web:     map[tpcw.Interaction]float64{},
		Backend: map[tpcw.Interaction]float64{},
		Writes:  map[tpcw.Interaction]float64{},
	}
	session := app.NewSession(1)
	// Warm plan caches so calibration measures steady state.
	for _, in := range tpcw.Interactions() {
		if _, err := app.Run(session, in); err != nil {
			return costs, fmt.Errorf("%s warmup: %w", in, err)
		}
	}
	// Measurement is interleaved — one round runs every interaction once —
	// and summarized by the per-interaction median, so transient CPU
	// contention (e.g. parallel test packages) hits all interactions evenly
	// instead of skewing whichever was being measured at the time.
	wallSamples := map[tpcw.Interaction][]float64{}
	backendSamples := map[tpcw.Interaction][]float64{}
	var writes = map[tpcw.Interaction]int64{}
	for rep := 0; rep < reps; rep++ {
		for _, in := range tpcw.Interactions() {
			if shim != nil {
				shim.take()
			}
			walBefore := backend.DB.Store().WAL().End()
			start := time.Now()
			if _, err := app.Run(session, in); err != nil {
				return costs, fmt.Errorf("%s: %w", in, err)
			}
			wallSamples[in] = append(wallSamples[in], time.Since(start).Seconds())
			writes[in] += int64(backend.DB.Store().WAL().End() - walBefore)
			if shim != nil {
				backendSamples[in] = append(backendSamples[in], shim.take().Seconds())
			}
			// Keep the WAL from growing unboundedly during calibration.
			backend.DB.Store().WAL().Truncate(backend.DB.Store().WAL().End())
		}
	}
	for _, in := range tpcw.Interactions() {
		med := median(wallSamples[in])
		costs.Writes[in] = float64(writes[in]) / float64(reps)
		if shim == nil {
			// No-cache: all measured time is backend work; the web server
			// contributes page generation only.
			costs.Backend[in] = med
			costs.Web[in] = PageGenCost
		} else {
			bt := median(backendSamples[in])
			web := med - bt
			if web < 0 {
				web = 0
			}
			costs.Web[in] = web + PageGenCost
			costs.Backend[in] = bt
		}
	}
	return costs, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// measureReplication drives write transactions through the pipeline and
// reports (log-reader seconds per txn, apply seconds per txn per cache).
func measureReplication(backend *core.BackendServer, cache *core.CacheServer, app *tpcw.App, cfg tpcw.Config) (float64, float64, error) {
	stats := backend.Repl.Stats
	readerBefore := stats.ReaderTime.Value()
	applyBefore := stats.ApplyTime.Value()
	walStart := backend.DB.Store().WAL().End()

	s := app.NewSession(2)
	const writers = 60
	for i := 0; i < writers; i++ {
		if _, err := app.Run(s, tpcw.BuyConfirm); err != nil {
			return 0, 0, err
		}
		if i%10 == 9 {
			if err := backend.SyncReplication(); err != nil {
				return 0, 0, err
			}
		}
	}
	if err := backend.SyncReplication(); err != nil {
		return 0, 0, err
	}
	commits := float64(backend.DB.Store().WAL().End() - walStart)
	if commits == 0 {
		return 0, 0, fmt.Errorf("no transactions replicated during calibration")
	}
	reader := float64(stats.ReaderTime.Value()-readerBefore) / 1e9 / commits
	apply := float64(stats.ApplyTime.Value()-applyBefore) / 1e9 / commits
	return reader, apply, nil
}
