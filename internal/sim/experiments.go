package sim

import (
	"fmt"
	"strings"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/tpcw"
)

// BaselineRow is one row of the paper's §6.2.1 baseline table: throughput
// with all database work on the backend, loaded to ~90% CPU.
type BaselineRow struct {
	Workload    tpcw.Workload
	Users       int
	WIPS        float64
	BackendUtil float64
}

// ExperimentBaseline reproduces the no-cache baseline (paper: Browsing 50,
// Shopping 82, Ordering 283 WIPS on the 2003 hardware; shapes — the
// ordering between workloads and backend saturation — carry over).
func ExperimentBaseline(cal *CalibrationResult, servers int) []BaselineRow {
	var rows []BaselineRow
	for _, w := range tpcw.Workloads() {
		cfg := Config{
			Workload: w, Servers: servers, Seed: int64(w) + 100,
			Replication: true,
		}
		users, res := FindMaxThroughput(cal.NoCache, cfg, false)
		rows = append(rows, BaselineRow{Workload: w, Users: users * servers, WIPS: res.WIPS, BackendUtil: res.BackendUtil})
	}
	return rows
}

// ScaleoutPoint is one point of figures 6(a) and 6(b): caching enabled,
// web/cache servers driven to their 90% cap.
type ScaleoutPoint struct {
	Workload    tpcw.Workload
	Servers     int
	Users       int
	WIPS        float64
	BackendUtil float64
	WebUtil     float64
}

// ExperimentScaleout reproduces figures 6(a) and 6(b): WIPS and backend CPU
// load as the number of web/cache servers grows from 1 to maxServers.
func ExperimentScaleout(cal *CalibrationResult, maxServers int) []ScaleoutPoint {
	var pts []ScaleoutPoint
	for _, w := range tpcw.Workloads() {
		for n := 1; n <= maxServers; n++ {
			cfg := Config{
				Workload: w, Servers: n, Seed: int64(w)*31 + int64(n),
				Replication: true,
			}
			users, res := FindMaxThroughput(cal.Cached, cfg, true)
			pts = append(pts, ScaleoutPoint{
				Workload: w, Servers: n, Users: users * n,
				WIPS: res.WIPS, BackendUtil: res.BackendUtil, WebUtil: res.WebUtil,
			})
		}
	}
	return pts
}

// ReplOverheadResult reproduces experiment 2 (§6.2.2).
type ReplOverheadResult struct {
	// Backend side: Ordering throughput at backend saturation with the log
	// reader on vs off (paper: 283 vs 311 WIPS, a ~10% reduction).
	WIPSReaderOn  float64
	WIPSReaderOff float64
	ReductionPct  float64

	// Cache side: CPU utilization of an idle middle-tier machine that only
	// applies replicated changes (paper: ~15%).
	IdleCacheApplyUtil float64
}

// ExperimentReplicationOverhead measures replication's cost on both tiers.
func ExperimentReplicationOverhead(cal *CalibrationResult) ReplOverheadResult {
	// Saturate the backend with web servers accessing it directly
	// (paper: two web servers, Ordering workload).
	base := Config{Workload: tpcw.Ordering, Servers: 2, Seed: 7}

	on := base
	on.Replication = true
	usersOn, resOn := FindMaxThroughput(cal.NoCache, on, false)

	off := base
	off.Replication = false
	_, resOff := FindMaxThroughput(cal.NoCache, off, false)

	// Idle cache: apply work only. The write-transaction rate follows from
	// the reader-on run's throughput and the mix's writes per interaction.
	var writesPerWI float64
	for in, pct := range tpcw.Mix(tpcw.Ordering) {
		writesPerWI += pct / 100 * cal.NoCache.Writes[in]
	}
	writeRate := resOn.WIPS * writesPerWI // write txns per second
	idleUtil := writeRate * cal.Cached.ApplyPerTxn

	_ = usersOn
	red := 0.0
	if resOff.WIPS > 0 {
		red = (resOff.WIPS - resOn.WIPS) / resOff.WIPS * 100
	}
	return ReplOverheadResult{
		WIPSReaderOn:  resOn.WIPS,
		WIPSReaderOff: resOff.WIPS,
		ReductionPct:  red,
		IdleCacheApplyUtil: func() float64 {
			if idleUtil > 1 {
				return 1
			}
			return idleUtil
		}(),
	}
}

// ReplLatencyResult reproduces experiment 3 (§6.2.3): average commit-to-
// commit propagation delay under light and heavy load.
type ReplLatencyResult struct {
	LightLoadMean time.Duration // paper: 0.55 s
	HeavyLoadMean time.Duration // paper: 1.67 s
}

// ExperimentReplicationLatency measures real propagation latency on the
// live pipeline: background agents with the given poll interval, a trickle
// of writes for the light case, and a saturating write burst for the heavy
// case.
func ExperimentReplicationLatency(backend *core.BackendServer, app *tpcw.App, pollInterval, lightDuration, heavyDuration time.Duration) (ReplLatencyResult, error) {
	var out ReplLatencyResult
	stats := backend.Repl.Stats

	// Light load: a few writes, agents comfortably keeping up.
	backend.StartReplication(pollInterval, pollInterval)
	s := app.NewSession(31)
	lightStart := stats.Latency.Count()
	deadline := time.Now().Add(lightDuration)
	for time.Now().Before(deadline) {
		if _, err := app.Run(s, tpcw.BuyConfirm); err != nil {
			backend.StopReplication()
			return out, err
		}
		time.Sleep(pollInterval) // think time between writers
	}
	// drain
	time.Sleep(3 * pollInterval)
	backend.StopReplication()
	lightMean, err := latencySince(backend, lightStart)
	if err != nil {
		return out, err
	}
	out.LightLoadMean = lightMean

	// Heavy load: writes arrive as fast as the system accepts them, so the
	// distribution queues back up and propagation delay grows.
	backend.StartReplication(4*pollInterval, 4*pollInterval)
	heavyStart := stats.Latency.Count()
	deadline = time.Now().Add(heavyDuration)
	for time.Now().Before(deadline) {
		if _, err := app.Run(s, tpcw.BuyConfirm); err != nil {
			backend.StopReplication()
			return out, err
		}
	}
	time.Sleep(10 * pollInterval)
	backend.StopReplication()
	if err := backend.SyncReplication(); err != nil {
		return out, err
	}
	heavyMean, err := latencySince(backend, heavyStart)
	if err != nil {
		return out, err
	}
	out.HeavyLoadMean = heavyMean
	return out, nil
}

func latencySince(backend *core.BackendServer, before int64) (time.Duration, error) {
	h := backend.Repl.Stats.Latency
	if h.Count() <= before {
		return 0, fmt.Errorf("sim: no replication latency samples recorded")
	}
	// The histogram accumulates globally; the mean over the whole run is
	// close enough because each phase dominates its own sample count.
	return time.Duration(h.Mean() * float64(time.Second)), nil
}

// FormatScaleout renders figure 6(a)/6(b) as aligned text tables.
func FormatScaleout(pts []ScaleoutPoint) string {
	var b strings.Builder
	b.WriteString("Figure 6(a): WIPS vs number of web/cache servers\n")
	b.WriteString("servers  ")
	for _, w := range tpcw.Workloads() {
		fmt.Fprintf(&b, "%10s", w)
	}
	b.WriteString("\n")
	byKey := map[string]ScaleoutPoint{}
	maxN := 0
	for _, p := range pts {
		byKey[fmt.Sprintf("%s/%d", p.Workload, p.Servers)] = p
		if p.Servers > maxN {
			maxN = p.Servers
		}
	}
	for n := 1; n <= maxN; n++ {
		fmt.Fprintf(&b, "%7d  ", n)
		for _, w := range tpcw.Workloads() {
			fmt.Fprintf(&b, "%10.0f", byKey[fmt.Sprintf("%s/%d", w, n)].WIPS)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nFigure 6(b): backend CPU load (%) vs number of web/cache servers\n")
	b.WriteString("servers  ")
	for _, w := range tpcw.Workloads() {
		fmt.Fprintf(&b, "%10s", w)
	}
	b.WriteString("\n")
	for n := 1; n <= maxN; n++ {
		fmt.Fprintf(&b, "%7d  ", n)
		for _, w := range tpcw.Workloads() {
			fmt.Fprintf(&b, "%10.1f", byKey[fmt.Sprintf("%s/%d", w, n)].BackendUtil*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
