package storage

// recover.go rebuilds store state after a restart: load the newest valid
// checkpoint image into the heaps, then replay every retained WAL record at
// or past the checkpoint's WalEnd. Replay applies each commit record as its
// own transaction (committed unlogged — the records are already in the log)
// so the rebuilt version chains and indexes are exactly what normal
// execution would have produced. The schema must already exist: DDL is not
// logged, so the boot path recreates it (e.g. tpcw.CreateSchema) before
// calling Recover.

import (
	"errors"
	"fmt"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/metrics"
	"mtcache/internal/types"
)

// RecoveryStats reports what Recover did.
type RecoveryStats struct {
	CheckpointLSN   LSN  // WAL position the heap image was restored to (0 = none)
	CheckpointRows  int  // rows restored from the checkpoint image
	ReplayedTxns    int  // WAL records replayed on top of the image
	ReplayedChanges int  // row changes inside those records
	TornTail        bool // the last record was torn by the crash and cut off
	CRCErrors       int  // corrupt frames encountered while opening the log
	Duration        time.Duration
}

// Recover rebuilds the heaps from the latest checkpoint plus the WAL tail.
// It must run after EnableDurability (which loaded and validated the
// retained records) and after the schema has been recreated, and before any
// new writes.
func (s *Store) Recover() (*RecoveryStats, error) {
	if s.durable == nil {
		return nil, errors.New("storage: store has no durable log")
	}
	start := time.Now()
	stats := &RecoveryStats{TornTail: s.openStats.TornTail, CRCErrors: s.openStats.CRCErrors}

	replayFrom := s.wal.First()
	if img := s.durable.loadCheckpoint(); img != nil {
		stats.CheckpointLSN = img.WalEnd
		replayFrom = img.WalEnd
		for _, ct := range img.Tables {
			if len(ct.Rows) == 0 {
				continue
			}
			t := s.Begin(true)
			for _, row := range ct.Rows {
				if _, err := t.Insert(ct.Name, row); err != nil {
					t.Abort()
					return nil, fmt.Errorf("storage: recover %s from checkpoint: %w", ct.Name, err)
				}
			}
			if err := t.CommitUnlogged(); err != nil {
				return nil, err
			}
			stats.CheckpointRows += len(ct.Rows)
		}
	}

	for _, rec := range s.wal.ReadFrom(replayFrom, 0) {
		if err := s.replayRecord(rec); err != nil {
			return nil, fmt.Errorf("storage: replay LSN %d: %w", rec.LSN, err)
		}
		stats.ReplayedTxns++
		stats.ReplayedChanges += len(rec.Changes)
	}

	stats.Duration = time.Since(start)
	metrics.Default.Counter("storage.recovered_txns").Add(int64(stats.ReplayedTxns))
	metrics.Default.Gauge("storage.recovery_seconds").Set(stats.Duration.Seconds())
	return stats, nil
}

// replayRecord applies one logged transaction to the heaps. Row location
// mirrors the replication apply path: by primary key when the table has
// one, by full-row equality otherwise — redo on the exact pre-state is
// deterministic, so a missing row means the log and heap diverged.
func (s *Store) replayRecord(rec CommitRecord) error {
	t := s.Begin(true)
	for _, ch := range rec.Changes {
		tv := t.Table(ch.Table)
		if tv == nil {
			t.Abort()
			return fmt.Errorf("table %s missing (schema must be recreated before recovery)", ch.Table)
		}
		switch ch.Op {
		case OpInsert:
			if _, err := t.Insert(ch.Table, ch.After); err != nil {
				t.Abort()
				return err
			}
		case OpDelete:
			rid := replayLocate(tv, ch.Before)
			if rid < 0 {
				t.Abort()
				return fmt.Errorf("delete target row missing in %s", ch.Table)
			}
			if err := t.Delete(ch.Table, rid); err != nil {
				t.Abort()
				return err
			}
		case OpUpdate:
			rid := replayLocate(tv, ch.Before)
			if rid < 0 {
				t.Abort()
				return fmt.Errorf("update target row missing in %s", ch.Table)
			}
			if err := t.Update(ch.Table, rid, ch.After); err != nil {
				t.Abort()
				return err
			}
		}
	}
	return t.CommitUnlogged()
}

func replayLocate(tv *TableView, row types.Row) RowID {
	meta := tv.Meta()
	if len(meta.PrimaryKey) > 0 && pkCovered(meta, row) {
		key := make(types.Row, len(meta.PrimaryKey))
		for i, ord := range meta.PrimaryKey {
			key[i] = row[ord]
		}
		if rid := tv.PKLookup(key); rid >= 0 {
			return rid
		}
	}
	found := RowID(-1)
	tv.Scan(func(rid RowID, r types.Row) bool {
		if types.RowsEqual(r, row) {
			found = rid
			return false
		}
		return true
	})
	return found
}

func pkCovered(meta *catalog.Table, row types.Row) bool {
	for _, ord := range meta.PrimaryKey {
		if ord >= len(row) {
			return false
		}
	}
	return true
}
