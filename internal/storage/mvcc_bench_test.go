package storage

import (
	"sync/atomic"
	"testing"

	"mtcache/internal/types"
)

// BenchmarkMVCCReadsUnderApply measures snapshot point-read latency while a
// background writer continuously applies multi-row update batches — the
// replication-apply workload that blocked readers under the seed's
// store-wide 2PL. Reported ns/op is the reader-side cost with the apply
// loop running.
func BenchmarkMVCCReadsUnderApply(b *testing.B) {
	s := newCustStore(b)
	const rows = 2048
	wtx := s.Begin(true)
	for i := 0; i < rows; i++ {
		if _, err := wtx.Insert("customer", types.Row{types.NewInt(int64(i)), types.NewString("seed")}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := wtx.Commit(); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	applyDone := make(chan struct{})
	go func() {
		defer close(applyDone)
		gen := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen++
			tx := s.Begin(true)
			td := tx.Table("customer")
			for i := 0; i < rows; i += 8 {
				rid := td.PKLookup(types.Row{types.NewInt(int64(i))})
				if rid < 0 {
					continue
				}
				if err := tx.Update("customer", rid, types.Row{types.NewInt(int64(i)), types.NewString("gen")}); err != nil {
					tx.Abort()
					return
				}
			}
			if _, err := tx.Commit(); err != nil {
				return
			}
		}
	}()

	var id atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := id.Add(1) % rows
			rtx := s.Begin(false)
			td := rtx.Table("customer")
			rid := td.PKLookup(types.Row{types.NewInt(k)})
			if rid >= 0 {
				_ = td.Get(rid)
			}
			rtx.Abort()
		}
	})
	b.StopTimer()
	close(stop)
	<-applyDone
}
