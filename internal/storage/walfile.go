package storage

// walfile.go makes the WAL real: a segmented on-disk log of CRC-framed
// commit records behind the in-memory WAL, with group commit. The disk log
// is strictly a durability mirror — the in-memory WAL remains the read path
// for the replication log reader — so enabling durability changes no reader
// semantics, only what survives a crash.
//
// On-disk layout (one directory per store):
//
//	wal-00000000000000000001.seg   segment whose first record is LSN 1
//	wal-00000000000000004096.seg   next segment, and so on
//	ckpt-00000000000000003000.ckpt latest heap checkpoint (see checkpoint.go)
//
// Each segment starts with an 8-byte magic and then holds frames:
//
//	[uint32 payload length][uint32 CRC32-C of payload][payload]
//
// where the payload is one binary-encoded CommitRecord (see walcodec.go).
// Recovery reads frames
// sequentially and stops at the first invalid one: a short or CRC-failing
// frame at the tail of the last segment is a torn write from the crash
// (truncated away, counted in storage.wal_torn_tail); anywhere else it is
// corruption (counted in storage.wal_crc_errors) and the log is cut there.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtcache/internal/metrics"
	"mtcache/internal/querystore"
)

// SyncPolicy selects when commits are made durable.
type SyncPolicy uint8

const (
	// SyncGroup (the default) batches fsyncs across concurrent committers:
	// a commit appends its record, then blocks until the syncer goroutine's
	// next fsync covers its LSN. One fsync releases every commit that queued
	// behind it — the classic group commit.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside the commit critical section, one fsync per
	// commit, before the transaction becomes visible. Maximum durability,
	// minimum throughput; the baseline group commit is measured against.
	SyncAlways
	// SyncInterval returns from Commit immediately; a background goroutine
	// fsyncs on a timer. A crash loses at most one interval of commits.
	SyncInterval
	// SyncNone buffers writes and fsyncs only at rotation, checkpoint and
	// Close. A crash loses everything since the last of those.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", p)
}

// ParseSyncPolicy parses "always", "group", "interval" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "group", "":
		return SyncGroup, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return SyncGroup, fmt.Errorf("storage: unknown sync policy %q (want always|group|interval|none)", s)
}

// DurabilityOptions configures a store's on-disk log.
type DurabilityOptions struct {
	Dir      string        // data directory (created if missing)
	Policy   SyncPolicy    // when commits become durable
	Interval time.Duration // SyncInterval cadence; 0 = 5ms
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds it; 0 = 8 MiB. Truncation deletes whole segments only.
	SegmentBytes int64
	// CheckpointEvery takes an automatic heap checkpoint after this many
	// logged commits; 0 disables automatic checkpoints.
	CheckpointEvery int
	// FS overrides the filesystem (crash-injection tests); nil = the OS.
	FS FS
}

// FS is the minimal filesystem surface the durable log needs. The default
// implementation is the OS; the crashtest package wraps it with fault
// injection.
type FS interface {
	MkdirAll(dir string) error
	Create(name string) (File, error)     // truncating create, read/write
	Open(name string) (File, error)       // read-only
	OpenAppend(name string) (File, error) // write, positioned at end
	ReadDir(dir string) ([]string, error) // sorted base names
	Rename(oldPath, newPath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	SyncDir(dir string) error // fsync the directory entry table
}

// File is one open file of an FS.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}
func (osFS) Open(name string) (File, error) { return os.Open(name) }
func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
func (osFS) Rename(o, n string) error             { return os.Rename(o, n) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, sz int64) error { return os.Truncate(name, sz) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

const (
	segMagic        = "MTWALSG1"
	ckptMagic       = "MTCKPT01"
	frameHeaderSize = 8 // uint32 length + uint32 CRC32-C
	defaultSegBytes = 8 << 20
	defaultInterval = 5 * time.Millisecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segName(first LSN) string { return fmt.Sprintf("wal-%020d.seg", first) }
func ckptName(lsn LSN) string  { return fmt.Sprintf("ckpt-%020d.ckpt", lsn) }
func parseSeqName(name, prefix, suffix string) (LSN, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var n int64
	if _, err := fmt.Sscanf(name[len(prefix):len(name)-len(suffix)], "%d", &n); err != nil || n < 0 {
		return 0, false
	}
	return LSN(n), true
}

// appendFrame appends [len][crc][payload] to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendRecordFrame encodes rec as a frame directly into dst — the commit
// hot path, so no intermediate payload allocation: reserve the header,
// encode in place, then backfill length and CRC.
func appendRecordFrame(dst []byte, rec *CommitRecord) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize)...)
	dst = appendCommitRecord(dst, rec)
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc32.Checksum(payload, crcTable))
	return dst
}

// errBadFrame reports a frame whose header or CRC failed validation;
// io.ErrUnexpectedEOF reports a frame cut short by a torn write.
var errBadFrame = errors.New("storage: wal frame CRC mismatch")

// readFrame reads one frame from r. On success it returns the payload.
// io.EOF means a clean end between frames; io.ErrUnexpectedEOF means the
// frame was cut short; errBadFrame means the CRC failed.
func readFrame(r io.Reader, maxLen uint32) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxLen {
		// A garbage length (bit flip in the header) would otherwise ask for
		// gigabytes; treat it as a bad frame, not an allocation.
		return nil, errBadFrame
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, errBadFrame
	}
	return payload, nil
}

// diskWAL is the on-disk mirror of the in-memory WAL. Appends are buffered
// in memory (under mu, in LSN order because commits serialize on the store's
// commitMu); flush moves the buffer to the current segment file and fsync
// publishes a new durable LSN to waiters.
type diskWAL struct {
	fs       FS
	dir      string
	policy   SyncPolicy
	interval time.Duration
	segBytes int64

	mu      sync.Mutex
	buf     []byte // encoded frames not yet written to the file
	spare   []byte // retired batch buffer, recycled to avoid regrowing per batch
	bufEnd  LSN    // highest LSN appended (buffered or written)
	durable LSN    // highest LSN covered by an fsync
	err     error  // sticky I/O error: the log is wedged, commits fail
	closed  bool
	// Group-commit wakeup, precise per batch: curCh is closed when the flush
	// that grabs the *current* buffer completes, so a waiter sleeps on exactly
	// the channel of the batch holding its record — no waiter is woken by an
	// fsync that does not cover it. While a flush is in device wait,
	// inflightEnd/inflightCh describe the batch it took.
	curCh       chan struct{}
	inflightEnd LSN           // highest LSN in the in-flight flush; 0 = none
	inflightCh  chan struct{} // channel of the in-flight batch

	flushMu sync.Mutex // serializes file writes, fsyncs and rotation
	f       File
	written LSN   // highest LSN written to the file (not necessarily synced)
	segSize int64 // bytes in the current segment

	fsyncs atomic.Int64 // fsyncs issued over this log's lifetime

	segsMu sync.Mutex
	segs   []walSegment // all live segments, ascending; last = current

	flushC chan struct{}
	stopC  chan struct{}
	wg     sync.WaitGroup
}

type walSegment struct {
	first LSN
	name  string
}

// walOpenStats records what opening an existing log found; recovery surfaces
// them in RecoveryStats.
type walOpenStats struct {
	TornTail  bool
	CRCErrors int
}

// openDiskWAL opens (or initializes) the log directory, validates every
// retained record and returns them in LSN order. nextLSN is the LSN the next
// append must get — past the last valid record and any checkpoint.
func openDiskWAL(opts DurabilityOptions) (d *diskWAL, recs []CommitRecord, ckptLSN LSN, stats walOpenStats, err error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS()
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if err = fsys.MkdirAll(opts.Dir); err != nil {
		return nil, nil, 0, stats, err
	}
	d = &diskWAL{
		fs:       fsys,
		dir:      opts.Dir,
		policy:   opts.Policy,
		interval: opts.Interval,
		segBytes: opts.SegmentBytes,
		flushC:   make(chan struct{}, 1),
		stopC:    make(chan struct{}),
		curCh:    make(chan struct{}),
	}

	names, err := fsys.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, 0, stats, err
	}
	var segFirsts []LSN
	for _, name := range names {
		if first, ok := parseSeqName(name, "wal-", ".seg"); ok {
			segFirsts = append(segFirsts, first)
		}
		if lsn, ok := parseSeqName(name, "ckpt-", ".ckpt"); ok && lsn > ckptLSN {
			ckptLSN = lsn
		}
	}
	sort.Slice(segFirsts, func(i, j int) bool { return segFirsts[i] < segFirsts[j] })

	// Scan retained segments in order, stopping at the first invalid frame.
	next := LSN(1)
	if ckptLSN > next {
		next = ckptLSN
	}
	stop := false
	for i, first := range segFirsts {
		if stop {
			// The log was cut at a corrupt frame in an earlier segment;
			// anything after the cut can never be appended to again without
			// colliding with re-used LSNs, so delete it.
			_ = fsys.Remove(filepath.Join(opts.Dir, segName(first)))
			continue
		}
		last := i == len(segFirsts)-1
		segRecs, validSize, segErr := readSegment(fsys, filepath.Join(opts.Dir, segName(first)))
		recs = append(recs, segRecs...)
		if len(segRecs) > 0 {
			next = segRecs[len(segRecs)-1].LSN + 1
		} else if first >= next {
			next = first
		}
		d.segs = append(d.segs, walSegment{first: first, name: segName(first)})
		switch {
		case segErr == nil:
		case errors.Is(segErr, io.ErrUnexpectedEOF) && last:
			// Torn final record from the crash: cut it off.
			stats.TornTail = true
			metrics.Default.Counter("storage.wal_torn_tail").Add(1)
			if terr := d.cutSegment(segName(first), validSize); terr != nil {
				return nil, nil, 0, stats, terr
			}
			stop = true // (last segment anyway)
		default:
			// CRC failure, or a torn frame followed by more segments: the
			// log is only trustworthy up to the last valid record.
			stats.CRCErrors++
			metrics.Default.Counter("storage.wal_crc_errors").Add(1)
			if terr := d.cutSegment(segName(first), validSize); terr != nil {
				return nil, nil, 0, stats, terr
			}
			stop = true
		}
	}

	if len(d.segs) == 0 {
		if err = d.createSegmentLocked(next); err != nil {
			return nil, nil, 0, stats, err
		}
	} else {
		// Reopen the tail segment for appending.
		tail := d.segs[len(d.segs)-1]
		f, ferr := fsys.OpenAppend(filepath.Join(opts.Dir, tail.name))
		if ferr != nil {
			return nil, nil, 0, stats, ferr
		}
		d.f = f
		d.segSize = segmentValidSize(recs, tail.first)
	}
	d.written = next - 1
	d.durable = next - 1
	d.bufEnd = next - 1
	return d, recs, ckptLSN, stats, nil
}

// cutSegment truncates a segment to its valid prefix. A segment whose magic
// never made it to disk (a crash during segment creation) has no valid
// prefix at all — it is deleted outright rather than truncated, otherwise a
// later restart would find a magicless file and discard everything appended
// to it since.
func (d *diskWAL) cutSegment(name string, validSize int64) error {
	path := filepath.Join(d.dir, name)
	if validSize < int64(len(segMagic)) {
		if err := d.fs.Remove(path); err != nil {
			return err
		}
		if n := len(d.segs); n > 0 && d.segs[n-1].name == name {
			d.segs = d.segs[:n-1]
		}
		return nil
	}
	return d.fs.Truncate(path, validSize)
}

// segmentValidSize computes the byte size of the valid prefix of the tail
// segment from the records it retained (header + framed payload sizes).
func segmentValidSize(recs []CommitRecord, first LSN) int64 {
	size := int64(len(segMagic))
	for i := range recs {
		if recs[i].LSN < first {
			continue
		}
		payload, err := encodeCommitRecord(&recs[i])
		if err != nil {
			continue
		}
		size += frameHeaderSize + int64(len(payload))
	}
	return size
}

// readSegment reads every valid frame of one segment. validSize is the byte
// offset of the end of the last valid frame; err is nil for a clean read,
// io.ErrUnexpectedEOF for a torn tail, errBadFrame for a CRC failure.
func readSegment(fsys FS, path string) (recs []CommitRecord, validSize int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := chunkReader{r: f}
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(&r, magic); err != nil || string(magic) != segMagic {
		return nil, 0, errBadFrame
	}
	validSize = int64(len(segMagic))
	for {
		payload, ferr := readFrame(&r, 64<<20)
		if ferr == io.EOF {
			return recs, validSize, nil
		}
		if ferr != nil {
			return recs, validSize, ferr
		}
		rec, derr := decodeCommitRecord(payload)
		if derr != nil {
			// CRC passed but gob did not — treat as corruption.
			return recs, validSize, errBadFrame
		}
		recs = append(recs, *rec)
		validSize += frameHeaderSize + int64(len(payload))
	}
}

// chunkReader is a tiny buffered reader over the FS File interface.
type chunkReader struct {
	r   io.Reader
	buf []byte
	off int
}

func (b *chunkReader) Read(p []byte) (int, error) {
	if b.off >= len(b.buf) {
		b.buf = make([]byte, 64<<10)
		n, err := b.r.Read(b.buf)
		if n == 0 {
			if err == nil {
				err = io.EOF
			}
			return 0, err
		}
		b.buf = b.buf[:n]
		b.off = 0
	}
	n := copy(p, b.buf[b.off:])
	b.off += n
	return n, nil
}

// start launches the policy's background goroutine, if any.
func (d *diskWAL) start() {
	switch d.policy {
	case SyncGroup:
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				select {
				case <-d.stopC:
					return
				case <-d.flushC:
					// Commit delay: committers released by the previous fsync
					// are runnable but may not have re-appended yet. Yield to
					// them while the batch is still growing, so one fsync
					// covers the whole pile instead of a third of it. A lone
					// committer costs one no-growth yield, then flushes.
					sz := d.pendingCommits()
					for i, idle := 0, 0; sz > 0 && i < 64 && idle < 2; i++ {
						runtime.Gosched()
						grown := d.pendingCommits()
						if grown == sz {
							// One quiet yield can just mean the scheduler ran
							// a non-committing goroutine; flush after two.
							idle++
							continue
						}
						idle = 0
						sz = grown
					}
					if sz = d.pendingCommits(); sz == 0 {
						// Stale wakeup: the signaling commit was covered by a
						// previous flush (e.g. a checkpoint's). An fsync here
						// would make nothing durable and halve the batch rate.
						continue
					}
					if err := d.flush(true); err == nil {
						metrics.Default.Histogram("storage.wal_group_size").Observe(float64(sz))
					}
				}
			}
		}()
	case SyncInterval:
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			t := time.NewTicker(d.interval)
			defer t.Stop()
			for {
				select {
				case <-d.stopC:
					return
				case <-t.C:
					d.flush(true) //nolint:errcheck — sticky error surfaces at the next commit
				}
			}
		}()
	case SyncNone:
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				select {
				case <-d.stopC:
					return
				case <-d.flushC:
					d.flush(false) //nolint:errcheck — sticky error surfaces at the next commit
				}
			}
		}()
	}
}

// pendingCommits counts commits waiting for durability (group-size metric).
func (d *diskWAL) pendingCommits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(d.bufEnd - d.durable)
}

// append buffers one record's frame. Called with the store's commitMu held,
// so frames enter the buffer in LSN order.
func (d *diskWAL) append(rec *CommitRecord) error {
	d.mu.Lock()
	if d.err != nil {
		err := d.err
		d.mu.Unlock()
		return err
	}
	if d.closed {
		d.mu.Unlock()
		return errors.New("storage: wal is closed")
	}
	d.buf = appendRecordFrame(d.buf, rec)
	d.bufEnd = rec.LSN
	d.mu.Unlock()
	select {
	case d.flushC <- struct{}{}:
	default:
	}
	return nil
}

// fail records a terminal I/O error: every waiter and every future commit
// sees it. A half-written log must not acknowledge anything again. Closing
// curCh releases waiters whose batch was not yet grabbed; it stays closed
// because flush never replaces the channel once err is set.
func (d *diskWAL) fail(err error) error {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
		close(d.curCh)
		querystore.Emit("wal_wedged", "error", err.Error())
	}
	d.mu.Unlock()
	return err
}

// flush writes the buffered frames to the current segment and, when sync is
// set, fsyncs and publishes the new durable LSN. Rotation happens after a
// synced flush that pushed the segment past its size bound, so segment
// boundaries always fall between records.
func (d *diskWAL) flush(sync bool) error {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	if d.f == nil {
		return errors.New("storage: wal is closed")
	}

	d.mu.Lock()
	if d.err != nil {
		err := d.err
		d.mu.Unlock()
		return err
	}
	buf := d.buf
	end := d.bufEnd
	// Swap in the retired batch's backing array: the two buffers ping-pong
	// between flushes, so the hot path never regrows a batch from scratch.
	d.buf = d.spare[:0]
	d.spare = nil
	batchCh := d.curCh
	d.curCh = make(chan struct{})
	if sync {
		d.inflightEnd, d.inflightCh = end, batchCh
	}
	d.mu.Unlock()

	var ferr error
	if len(buf) > 0 {
		if _, err := d.f.Write(buf); err != nil {
			ferr = d.fail(fmt.Errorf("storage: wal write: %w", err))
		} else {
			d.segSize += int64(len(buf))
			d.written = end
			metrics.Default.Counter("storage.wal_bytes").Add(int64(len(buf)))
		}
	}
	if ferr == nil && sync {
		if err := d.f.Sync(); err != nil {
			ferr = d.fail(fmt.Errorf("storage: wal fsync: %w", err))
		} else {
			metrics.Default.Counter("storage.wal_fsyncs").Add(1)
			d.fsyncs.Add(1)
		}
	}
	d.mu.Lock()
	if ferr == nil && sync && end > d.durable {
		d.durable = end
	}
	d.inflightEnd = 0
	// The write is done with buf; retire its array for the next grab. Cap the
	// recycled capacity so one huge batch does not pin memory forever.
	if cap(buf) <= 1<<20 {
		d.spare = buf[:0]
	}
	d.mu.Unlock()
	// Exactly one close per grabbed batch: this flush owns batchCh. On error,
	// waiters wake here and observe the sticky err.
	close(batchCh)
	if ferr != nil {
		return ferr
	}
	if !sync {
		return nil
	}

	if d.segSize >= d.segBytes {
		if err := d.rotate(); err != nil {
			return d.fail(err)
		}
	}
	return nil
}

// rotate closes the current segment and starts a new one whose first LSN is
// one past the last written record. Caller holds flushMu; everything written
// so far has been fsynced.
func (d *diskWAL) rotate() error {
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("storage: wal rotate close: %w", err)
	}
	d.f = nil
	return d.createSegmentLocked(d.written + 1)
}

// createSegmentLocked creates and registers a fresh segment starting at
// first. Caller holds flushMu (or is the single-threaded open path).
func (d *diskWAL) createSegmentLocked(first LSN) error {
	name := segName(first)
	f, err := d.fs.Create(filepath.Join(d.dir, name))
	if err != nil {
		return fmt.Errorf("storage: wal create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("storage: wal segment header: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		f.Close()
		return fmt.Errorf("storage: wal dir sync: %w", err)
	}
	d.f = f
	d.segSize = int64(len(segMagic))
	d.segsMu.Lock()
	d.segs = append(d.segs, walSegment{first: first, name: name})
	d.segsMu.Unlock()
	return nil
}

// waitDurable blocks until lsn is covered by an fsync (SyncGroup), fsyncs
// inline (SyncAlways — the caller holds commitMu, making durability strictly
// precede visibility to later commits), or returns immediately.
func (d *diskWAL) waitDurable(lsn LSN) error {
	switch d.policy {
	case SyncAlways:
		return d.flush(true)
	case SyncGroup:
		d.mu.Lock()
		for d.durable < lsn && d.err == nil && !d.closed {
			// Sleep on the channel of the batch that holds lsn: the in-flight
			// one if it covers us, else the current buffer's. Close() needs no
			// extra wakeup — its final flush(true) grabs every buffered record,
			// so one of these channels always fires for a live waiter.
			ch := d.curCh
			if d.inflightEnd >= lsn {
				ch = d.inflightCh
			}
			d.mu.Unlock()
			<-ch
			d.mu.Lock()
		}
		err := d.err
		closed := d.closed
		durable := d.durable
		d.mu.Unlock()
		if durable >= lsn {
			return nil
		}
		if err != nil {
			return err
		}
		if closed {
			return errors.New("storage: wal closed before commit became durable")
		}
		return nil
	default:
		return nil
	}
}

// DurableLSN reports the highest LSN covered by an fsync.
func (d *diskWAL) DurableLSN() LSN {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.durable
}

// fsyncCount reports how many fsyncs this log has issued; the group-commit
// tests and the recovery benchmark use it to measure batching.
func (d *diskWAL) fsyncCount() int64 { return d.fsyncs.Load() }

// dropSegmentsBelow deletes whole segments every record of which has LSN <
// upTo. The current (last) segment is never deleted.
func (d *diskWAL) dropSegmentsBelow(upTo LSN) {
	d.segsMu.Lock()
	var drop []walSegment
	for len(d.segs) > 1 && d.segs[1].first <= upTo {
		drop = append(drop, d.segs[0])
		d.segs = d.segs[1:]
	}
	d.segsMu.Unlock()
	for _, seg := range drop {
		if err := d.fs.Remove(filepath.Join(d.dir, seg.name)); err == nil {
			metrics.Default.Counter("storage.wal_segments_dropped").Add(1)
		}
	}
	if len(drop) > 0 {
		d.fs.SyncDir(d.dir) //nolint:errcheck — removal is advisory space reclaim
	}
}

// Close flushes and fsyncs whatever is buffered, stops the background
// goroutine and closes the segment file. Safe to call once.
func (d *diskWAL) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stopC)
	d.wg.Wait()
	err := d.flush(true)
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	if d.f != nil {
		if cerr := d.f.Close(); err == nil {
			err = cerr
		}
		d.f = nil
	}
	return err
}
