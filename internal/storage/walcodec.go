package storage

// walcodec.go is the hand-rolled binary codec for on-disk WAL frames. Each
// frame's payload must be independently decodable (recovery cuts the log at
// the first bad frame), which rules out gob's streaming model — a fresh gob
// encoder re-emits full type descriptors per record, ~8µs and ~3KB of
// overhead for a one-row commit. This codec is a few hundred nanoseconds,
// which matters because encoding happens inside the commit critical section:
// it bounds how fast concurrent committers can pile onto one group fsync.
//
// Payload layout (all integers varint/uvarint, little-endian float bits):
//
//	uvarint LSN
//	varint  TxnID
//	varint  CommitTime (unix nanoseconds)
//	uvarint #changes, then per change:
//	  uvarint len(table), table bytes
//	  byte    op
//	  row Before, row After, each:
//	    uvarint #cols+1 (0 = absent row), then per column:
//	      byte kind, then per kind:
//	        NULL —, BOOL/INT varint, FLOAT 8-byte LE bits,
//	        VARCHAR uvarint len + bytes, DATETIME varint unix nanoseconds
//
// Times round-trip as instants (UTC); the engine compares and displays them
// by instant, never by zone.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mtcache/internal/types"
)

// encodeCommitRecord renders one record as a frame payload.
func encodeCommitRecord(rec *CommitRecord) ([]byte, error) {
	// Pre-size roughly: fixed header plus per-change table names and rows.
	size := 32
	for i := range rec.Changes {
		c := &rec.Changes[i]
		size += len(c.Table) + 8 + rowEncSize(c.Before) + rowEncSize(c.After)
	}
	return appendCommitRecord(make([]byte, 0, size), rec), nil
}

// appendCommitRecord appends the encoded record to buf — used by the commit
// path to encode straight into the WAL buffer with no intermediate slice.
func appendCommitRecord(buf []byte, rec *CommitRecord) []byte {
	buf = binary.AppendUvarint(buf, uint64(rec.LSN))
	buf = binary.AppendVarint(buf, rec.TxnID)
	buf = binary.AppendVarint(buf, rec.CommitTime.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(len(rec.Changes)))
	for i := range rec.Changes {
		c := &rec.Changes[i]
		buf = binary.AppendUvarint(buf, uint64(len(c.Table)))
		buf = append(buf, c.Table...)
		buf = append(buf, byte(c.Op))
		buf = appendRow(buf, c.Before)
		buf = appendRow(buf, c.After)
	}
	return buf
}

func rowEncSize(row types.Row) int {
	n := 2
	for i := range row {
		n += 10
		if row[i].K == types.KindString {
			n += len(row[i].S)
		}
	}
	return n
}

func appendRow(buf []byte, row types.Row) []byte {
	if row == nil {
		return binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(row))+1)
	for i := range row {
		v := &row[i]
		buf = append(buf, byte(v.K))
		switch v.K {
		case types.KindNull:
		case types.KindBool, types.KindInt:
			buf = binary.AppendVarint(buf, v.I)
		case types.KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case types.KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case types.KindTime:
			buf = binary.AppendVarint(buf, v.T.UnixNano())
		default:
			// Unknown kinds encode as NULL rather than corrupting the frame.
			buf[len(buf)-1] = byte(types.KindNull)
		}
	}
	return buf
}

// walDecoder walks one frame payload; any overrun sets err and sticks.
type walDecoder struct {
	buf []byte
	off int
	err error
}

func (d *walDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("storage: wal record truncated at byte %d", d.off)
	}
}

func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *walDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *walDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *walDecoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *walDecoder) row() types.Row {
	n := d.uvarint()
	if n == 0 || d.err != nil {
		return nil
	}
	n--
	if n > uint64(len(d.buf)-d.off) { // each column costs ≥1 byte
		d.fail()
		return nil
	}
	row := make(types.Row, n)
	for i := range row {
		k := types.Kind(d.byte())
		switch k {
		case types.KindNull:
			row[i] = types.Null
		case types.KindBool:
			row[i] = types.Value{K: types.KindBool, I: d.varint()}
		case types.KindInt:
			row[i] = types.NewInt(d.varint())
		case types.KindFloat:
			b := d.bytes(8)
			if d.err != nil {
				return nil
			}
			row[i] = types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
		case types.KindString:
			row[i] = types.NewString(string(d.bytes(d.uvarint())))
		case types.KindTime:
			row[i] = types.NewTime(time.Unix(0, d.varint()).UTC())
		default:
			d.fail()
			return nil
		}
		if d.err != nil {
			return nil
		}
	}
	return row
}

// decodeCommitRecord parses a frame payload. The CRC already vouched for the
// bytes, so a parse failure means real corruption, not a torn write.
func decodeCommitRecord(payload []byte) (*CommitRecord, error) {
	d := &walDecoder{buf: payload}
	rec := &CommitRecord{
		LSN:        LSN(d.uvarint()),
		TxnID:      d.varint(),
		CommitTime: time.Unix(0, d.varint()).UTC(),
	}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > uint64(len(payload)) { // each change costs ≥1 byte
		return nil, fmt.Errorf("storage: wal record claims %d changes in %d bytes", n, len(payload))
	}
	rec.Changes = make([]ChangeRec, 0, n)
	for i := uint64(0); i < n; i++ {
		var c ChangeRec
		c.Table = string(d.bytes(d.uvarint()))
		c.Op = ChangeOp(d.byte())
		c.Before = d.row()
		c.After = d.row()
		if d.err != nil {
			return nil, d.err
		}
		rec.Changes = append(rec.Changes, c)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("storage: wal record has %d trailing bytes", len(payload)-d.off)
	}
	return rec, nil
}
