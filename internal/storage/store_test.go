package storage

import (
	"sync"
	"testing"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/types"
)

func custMeta() *catalog.Table {
	return &catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "cid", Type: types.KindInt, NotNull: true},
			{Name: "cname", Type: types.KindString},
		},
		PrimaryKey: []int{0},
	}
}

func newCustStore(t testing.TB) *Store {
	t.Helper()
	s := NewStore()
	if err := s.CreateTable(custMeta()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertAndScan(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	for i := int64(1); i <= 5; i++ {
		if _, err := tx.Insert("customer", types.Row{types.NewInt(i), types.NewString("c")}); err != nil {
			t.Fatal(err)
		}
	}
	lsn, err := tx.Commit()
	if err != nil || lsn == 0 {
		t.Fatalf("commit: lsn=%d err=%v", lsn, err)
	}
	tx = s.Begin(false)
	defer tx.Abort()
	if got := tx.Table("customer").Count(); got != 5 {
		t.Errorf("count %d", got)
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("a")})
	if _, err := tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("b")}); err == nil {
		t.Error("duplicate pk accepted")
	}
	tx.Commit()
}

func TestPKLookupAndUpdate(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("a")})
	tx.Insert("customer", types.Row{types.NewInt(2), types.NewString("b")})
	td := tx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(2)})
	if rid < 0 {
		t.Fatal("pk lookup failed")
	}
	if err := tx.Update("customer", rid, types.Row{types.NewInt(2), types.NewString("B!")}); err != nil {
		t.Fatal(err)
	}
	if got := td.Get(rid)[1].Str(); got != "B!" {
		t.Errorf("updated value %q", got)
	}
	// PK change collides
	rid1 := td.PKLookup(types.Row{types.NewInt(1)})
	if err := tx.Update("customer", rid1, types.Row{types.NewInt(2), types.NewString("x")}); err == nil {
		t.Error("pk collision on update accepted")
	}
	tx.Commit()
}

func TestDeleteReindexes(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("a")})
	td := tx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(1)})
	if err := tx.Delete("customer", rid); err != nil {
		t.Fatal(err)
	}
	if td.PKLookup(types.Row{types.NewInt(1)}) >= 0 {
		t.Error("deleted row still indexed")
	}
	// slot reuse
	if _, err := tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("again")}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestAbortUndoesEverything(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("keep")})
	tx.Commit()

	tx = s.Begin(true)
	td := tx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(1)})
	tx.Update("customer", rid, types.Row{types.NewInt(1), types.NewString("changed")})
	tx.Insert("customer", types.Row{types.NewInt(2), types.NewString("new")})
	rid1 := td.PKLookup(types.Row{types.NewInt(1)})
	tx.Delete("customer", rid1)
	tx.Abort()

	tx = s.Begin(false)
	defer tx.Abort()
	td = tx.Table("customer")
	if td.Count() != 1 {
		t.Fatalf("count after abort: %d", td.Count())
	}
	rid = td.PKLookup(types.Row{types.NewInt(1)})
	if rid < 0 || td.Get(rid)[1].Str() != "keep" {
		t.Error("abort did not restore original row")
	}
	if td.PKLookup(types.Row{types.NewInt(2)}) >= 0 {
		t.Error("aborted insert still present")
	}
}

func TestWALRecordsCommittedChanges(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("a")})
	tx.Commit()

	tx = s.Begin(true)
	td := tx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(1)})
	tx.Update("customer", rid, types.Row{types.NewInt(1), types.NewString("b")})
	tx.Commit()

	recs := s.WAL().ReadFrom(1, 0)
	if len(recs) != 2 {
		t.Fatalf("wal records: %d", len(recs))
	}
	if recs[0].Changes[0].Op != OpInsert {
		t.Error("first change should be insert")
	}
	up := recs[1].Changes[0]
	if up.Op != OpUpdate || up.Before[1].Str() != "a" || up.After[1].Str() != "b" {
		t.Errorf("update images wrong: %+v", up)
	}
	if !recs[0].CommitTime.Before(recs[1].CommitTime.Add(time.Nanosecond)) {
		t.Error("commit times should be non-decreasing")
	}
}

func TestWALAbortedTxnNotLogged(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("a")})
	tx.Abort()
	if s.WAL().Len() != 0 {
		t.Error("aborted txn reached the WAL")
	}
}

func TestWALUnloggedCommit(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("a")})
	if err := tx.CommitUnlogged(); err != nil {
		t.Fatal(err)
	}
	if s.WAL().Len() != 0 {
		t.Error("unlogged commit reached the WAL (would echo replicated changes)")
	}
	tx = s.Begin(false)
	defer tx.Abort()
	if tx.Table("customer").Count() != 1 {
		t.Error("unlogged commit lost data")
	}
}

func TestWALTruncate(t *testing.T) {
	w := NewWAL()
	for i := 0; i < 5; i++ {
		w.Append(int64(i), time.Now(), []ChangeRec{{Table: "t", Op: OpInsert}})
	}
	w.Truncate(3)
	recs := w.ReadFrom(0, 0)
	if len(recs) != 3 || recs[0].LSN != 3 {
		t.Fatalf("after truncate: %d recs, first LSN %d", len(recs), recs[0].LSN)
	}
	if got := w.ReadFrom(4, 2); len(got) != 2 || got[0].LSN != 4 {
		t.Errorf("bounded read: %v", got)
	}
}

func TestReadOnlyTxnCannotWrite(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(false)
	defer tx.Abort()
	if _, err := tx.Insert("customer", types.Row{types.NewInt(1), types.Null}); err == nil {
		t.Error("write in read txn accepted")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := newCustStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 50; i++ {
				tx := s.Begin(true)
				tx.Insert("customer", types.Row{types.NewInt(base*1000 + i), types.NewString("w")})
				tx.Commit()
			}
		}(int64(w))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := s.Begin(false)
				tx.Table("customer").Count()
				tx.Commit()
			}
		}()
	}
	wg.Wait()
	tx := s.Begin(false)
	defer tx.Abort()
	if tx.Table("customer").Count() != 200 {
		t.Errorf("final count %d", tx.Table("customer").Count())
	}
	if s.WAL().Len() != 200 {
		t.Errorf("wal commits %d", s.WAL().Len())
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	s := NewStore()
	meta := custMeta()
	meta.Indexes = []*catalog.Index{{Name: "ix_name", Table: "customer", Columns: []int{1}}}
	s.CreateTable(meta)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("bob")})
	tx.Insert("customer", types.Row{types.NewInt(2), types.NewString("bob")})
	tx.Insert("customer", types.Row{types.NewInt(3), types.NewString("amy")})
	td := tx.Table("customer")
	if got := len(td.Index("ix_name").Get(types.Row{types.NewString("bob")})); got != 2 {
		t.Errorf("non-unique index lookup: %d", got)
	}
	tx.Commit()
}

func TestAddIndexBackfills(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(true)
	tx.Insert("customer", types.Row{types.NewInt(1), types.NewString("z")})
	tx.Commit()
	if err := s.AddIndex("customer", &catalog.Index{Name: "ix2", Columns: []int{1}}); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin(false)
	defer tx.Abort()
	if len(tx.Table("customer").Index("ix2").Get(types.Row{types.NewString("z")})) != 1 {
		t.Error("new index missing existing rows")
	}
}
