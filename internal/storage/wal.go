package storage

import (
	"sync"
	"time"

	"mtcache/internal/types"
)

// LSN is a log sequence number: the commit order of transactions.
type LSN int64

// ChangeOp enumerates the row-level change kinds recorded in the log.
type ChangeOp uint8

const (
	OpInsert ChangeOp = iota
	OpDelete
	OpUpdate
)

func (o ChangeOp) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpUpdate:
		return "UPDATE"
	}
	return "?"
}

// ChangeRec is one row-level change, with full before/after images so the
// replication article filter can evaluate predicates and projections on it.
type ChangeRec struct {
	Table  string
	Op     ChangeOp
	Before types.Row
	After  types.Row
}

// CommitRecord is one committed transaction in the log.
type CommitRecord struct {
	LSN        LSN
	TxnID      int64
	CommitTime time.Time
	Changes    []ChangeRec
}

// WAL is the in-memory write-ahead log of committed transactions, in commit
// order. The replication log reader consumes it exactly as SQL Server's log
// reader agent consumes the transaction log (paper §2.2: "changes to a
// published table or view are collected by log sniffing").
//
// Entries are retained until Truncate; the distributor truncates once all
// subscribers have received a transaction.
type WAL struct {
	mu    sync.Mutex
	recs  []CommitRecord
	first LSN // LSN of recs[0]
	next  LSN

	// disk, when set, mirrors every appended record to a segmented on-disk
	// log (see walfile.go). The in-memory records remain the read path.
	disk *diskWAL

	// retain, when set, returns the truncation floor: the smallest LSN that
	// must be kept for recovery (checkpoint LSN) and live snapshots.
	// Truncate clamps to it.
	retain func() LSN
}

// NewWAL returns an empty log whose first LSN is 1.
func NewWAL() *WAL {
	return &WAL{first: 1, next: 1}
}

// Append adds a committed transaction and returns its LSN.
func (w *WAL) Append(txnID int64, commitTime time.Time, changes []ChangeRec) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.next
	w.next++
	rec := CommitRecord{LSN: lsn, TxnID: txnID, CommitTime: commitTime, Changes: changes}
	w.recs = append(w.recs, rec)
	if w.disk != nil {
		// Buffer the frame under the same mutex that assigned the LSN, so
		// the disk log receives records in LSN order. A sticky disk error
		// surfaces on the commit path's durability wait, not here.
		w.disk.append(&rec) //nolint:errcheck
	}
	return lsn
}

// adopt installs records recovered from disk (EnableDurability on an
// existing directory). nextLSN is the LSN the next append must get.
func (w *WAL) adopt(recs []CommitRecord, nextLSN LSN, disk *diskWAL) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recs = recs
	if len(recs) > 0 {
		w.first = recs[0].LSN
	} else {
		w.first = nextLSN
	}
	w.next = nextLSN
	w.disk = disk
}

// ReadFrom returns up to max commit records with LSN >= from, in order.
// max <= 0 means no limit.
func (w *WAL) ReadFrom(from LSN, max int) []CommitRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	if from < w.first {
		from = w.first
	}
	start := int(from - w.first)
	if start >= len(w.recs) {
		return nil
	}
	out := w.recs[start:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return append([]CommitRecord(nil), out...)
}

// Truncate discards records with LSN < upTo. On a durable store upTo is
// clamped to the retention floor — the minimum of the last checkpoint LSN
// and every pinned snapshot's WAL position — so recovery and live readers
// never lose records they still need; truncation of the on-disk log is
// segment-granular (whole segments strictly below the clamped floor).
func (w *WAL) Truncate(upTo LSN) {
	if w.retain != nil {
		if floor := w.retain(); floor < upTo {
			upTo = floor
		}
	}
	w.mu.Lock()
	if upTo <= w.first {
		w.mu.Unlock()
		return
	}
	if upTo > w.next {
		upTo = w.next
	}
	w.recs = append([]CommitRecord(nil), w.recs[upTo-w.first:]...)
	w.first = upTo
	disk := w.disk
	w.mu.Unlock()
	if disk != nil {
		disk.dropSegmentsBelow(upTo)
	}
}

// First returns the LSN of the oldest retained record (== End when empty).
func (w *WAL) First() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.first
}

// End returns the LSN the next commit will receive.
func (w *WAL) End() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Len returns the number of retained commit records.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}
