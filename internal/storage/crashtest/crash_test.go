package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// TestCrashRecoveryProperty is the crash-injection property test: run a
// randomized committed workload against a store whose filesystem crashes at
// a random write (dropping, tearing or bit-flipping it), recover the on-disk
// state with the real filesystem, and assert the recovered store is exactly
// a prefix of the committed sequence that contains every acknowledged
// commit. 100 seeds vary the crash point, the damage kind, the sync policy
// and whether checkpoints run mid-workload.
func TestCrashRecoveryProperty(t *testing.T) {
	const seeds = 100
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashSeed(t, seed)
		})
	}
}

func crashMeta() *catalog.Table {
	return &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: types.KindInt, NotNull: true},
			{Name: "v", Type: types.KindString},
		},
		PrimaryKey: []int{0},
	}
}

func rowValue(seed, id int) string { return fmt.Sprintf("s%d-r%d", seed, id) }

func runCrashSeed(t *testing.T, seed int) {
	rng := rand.New(rand.NewSource(int64(seed)))
	dir := t.TempDir()
	kind := FaultKind(rng.Intn(3))
	policy := []storage.SyncPolicy{storage.SyncAlways, storage.SyncGroup}[rng.Intn(2)]
	// Crash somewhere in the first ~60 writes: early enough to hit segment
	// creation and checkpoint writes, late enough to leave committed state.
	crashAt := 1 + rng.Intn(60)
	checkpointEvery := 0
	if rng.Intn(2) == 0 {
		checkpointEvery = 3 + rng.Intn(8) // manual, in the loop below
	}
	ffs := New(storage.OSFS(), kind, crashAt, rng.Int())

	s := storage.NewStore()
	err := s.EnableDurability(storage.DurabilityOptions{
		Dir:    dir,
		Policy: policy,
		FS:     ffs,
	})
	acked := 0
	if err == nil {
		if err := s.CreateTable(crashMeta()); err != nil {
			t.Fatalf("create table: %v", err)
		}
		// Commit sequentially until the crash bites. Every commit that
		// returns nil is acknowledged durable (always/group policies).
		for id := 1; id <= 200; id++ {
			tx := s.Begin(true)
			if _, ierr := tx.Insert("t", types.Row{types.NewInt(int64(id)), types.NewString(rowValue(seed, id))}); ierr != nil {
				tx.Abort()
				break
			}
			if _, cerr := tx.Commit(); cerr != nil {
				break
			}
			acked = id
			if checkpointEvery > 0 && id%checkpointEvery == 0 {
				s.Checkpoint() //nolint:errcheck // a crash mid-checkpoint is part of the test
			}
		}
		s.Close() //nolint:errcheck // the log is wedged after the crash
	} else if !errors.Is(err, ErrCrashed) {
		t.Fatalf("EnableDurability failed before the fault: %v", err)
	}
	if !ffs.Crashed() && acked < 200 {
		t.Fatalf("workload stopped at %d commits but the fault (write %d, %s) never triggered", acked, crashAt, kind)
	}

	// Recover with the real filesystem — what a restarted process would see.
	r := storage.NewStore()
	if err := r.EnableDurability(storage.DurabilityOptions{Dir: dir, Policy: policy}); err != nil {
		t.Fatalf("reopen after %s crash at write %d: %v", kind, crashAt, err)
	}
	if err := r.CreateTable(crashMeta()); err != nil {
		t.Fatalf("recreate table: %v", err)
	}
	stats, err := r.Recover()
	if err != nil {
		t.Fatalf("recover after %s crash at write %d (acked %d): %v", kind, crashAt, acked, err)
	}

	// The recovered store must hold rows 1..m for some m >= acked, each with
	// the exact payload that was committed: no lost acknowledged commit, no
	// hole, no damaged row surviving the CRC check.
	tx := r.Begin(false)
	tv := tx.Table("t")
	rows := tv.Rows()
	got := make(map[int64]string, len(rows))
	for _, row := range rows {
		if _, dup := got[row[0].I]; dup {
			t.Fatalf("row id %d recovered twice", row[0].I)
		}
		got[row[0].I] = row[1].S
	}
	tx.Abort()

	m := len(got)
	if m < acked {
		t.Fatalf("%s crash at write %d: lost acknowledged commits — recovered %d rows, %d were acked (ckpt=%d replayed=%d torn=%v crc=%d)",
			kind, crashAt, m, acked, stats.CheckpointLSN, stats.ReplayedTxns, stats.TornTail, stats.CRCErrors)
	}
	for id := 1; id <= m; id++ {
		v, ok := got[int64(id)]
		if !ok {
			t.Fatalf("%s crash at write %d: recovered %d rows but id %d is missing (not a prefix)", kind, crashAt, m, id)
		}
		if want := rowValue(seed, id); v != want {
			t.Fatalf("row %d recovered with payload %q, want %q", id, v, want)
		}
	}

	// The recovered store must accept new commits and survive another clean
	// restart — recovery left a self-consistent log.
	tx = r.Begin(true)
	if _, err := tx.Insert("t", types.Row{types.NewInt(int64(m + 1)), types.NewString(rowValue(seed, m+1))}); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}

	r2 := storage.NewStore()
	if err := r2.EnableDurability(storage.DurabilityOptions{Dir: dir, Policy: policy}); err != nil {
		t.Fatalf("third open: %v", err)
	}
	if err := r2.CreateTable(crashMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Recover(); err != nil {
		t.Fatalf("recover on clean restart: %v", err)
	}
	tx = r2.Begin(false)
	if n := tx.Table("t").Count(); n != m+1 {
		t.Fatalf("clean restart recovered %d rows, want %d", n, m+1)
	}
	tx.Abort()
	r2.Close()
}
