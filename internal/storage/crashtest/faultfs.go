// Package crashtest injects write faults into the durable log's filesystem
// layer to simulate crashes. A FaultFS passes every operation through to a
// real filesystem until a trigger point — the Nth data write — is reached.
// The triggering write is then corrupted in one of the ways a real crash can
// corrupt it (dropped entirely, torn short, or bit-flipped) and from that
// moment the FaultFS behaves like a dead machine: every later operation
// fails with ErrCrashed. What is left on disk is exactly what a kernel would
// have persisted at the instant of the crash, so recovery can be exercised
// against it with the real OS filesystem.
package crashtest

import (
	"errors"
	"fmt"
	"sync"

	"mtcache/internal/storage"
)

// ErrCrashed is returned by every filesystem operation after the fault has
// triggered. Commits in flight at the crash observe it and are never
// acknowledged.
var ErrCrashed = errors.New("crashtest: simulated crash")

// FaultKind selects how the triggering write is damaged.
type FaultKind int

const (
	// DropWrite loses the triggering write entirely — nothing reaches disk.
	DropWrite FaultKind = iota
	// TornWrite persists only a prefix of the triggering write, the way a
	// crash mid-way through a multi-sector write does.
	TornWrite
	// BitFlip persists the full write with one byte corrupted — a misdirected
	// or damaged sector that the frame CRC must catch.
	BitFlip
)

func (k FaultKind) String() string {
	switch k {
	case DropWrite:
		return "drop"
	case TornWrite:
		return "torn"
	case BitFlip:
		return "bitflip"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultFS wraps a storage.FS and crashes it at the Nth write.
type FaultFS struct {
	inner storage.FS
	kind  FaultKind

	mu         sync.Mutex
	writesLeft int  // writes that still pass through untouched
	frac       int  // for TornWrite: numerator/8 of the write to keep
	flipAt     int  // for BitFlip: byte offset factor within the write
	crashed    bool // every op fails once set
}

// New returns a FaultFS over inner that crashes at the writesUntilCrash-th
// Write call (1 = the very first write). jitter varies where inside the
// triggering write the damage lands, so different seeds tear frames at
// different byte offsets.
func New(inner storage.FS, kind FaultKind, writesUntilCrash, jitter int) *FaultFS {
	if writesUntilCrash < 1 {
		writesUntilCrash = 1
	}
	if jitter < 0 {
		jitter = -jitter
	}
	return &FaultFS{
		inner:      inner,
		kind:       kind,
		writesLeft: writesUntilCrash - 1,
		frac:       1 + jitter%7, // keep 1/8 .. 7/8 of a torn write
		flipAt:     jitter,
	}
}

// Crashed reports whether the fault has triggered.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) Create(name string) (storage.File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (storage.File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) OpenAppend(name string) (storage.File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile counts writes across the whole FaultFS (the crash point is
// global, not per file) and damages the one that hits the trigger.
type faultFile struct {
	fs    *FaultFS
	inner storage.File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.check(); err != nil {
		return 0, err
	}
	return ff.inner.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	if ff.fs.writesLeft > 0 {
		ff.fs.writesLeft--
		ff.fs.mu.Unlock()
		return ff.inner.Write(p)
	}
	// This write triggers the crash. Persist the damaged form, then report
	// the machine dead — the caller never learns the write "succeeded".
	kind, frac, flipAt := ff.fs.kind, ff.fs.frac, ff.fs.flipAt
	ff.fs.crashed = true
	ff.fs.mu.Unlock()

	switch kind {
	case DropWrite:
		// nothing reaches disk
	case TornWrite:
		keep := len(p) * frac / 8
		if keep > 0 {
			ff.inner.Write(p[:keep]) //nolint:errcheck
		}
	case BitFlip:
		if len(p) > 0 {
			damaged := make([]byte, len(p))
			copy(damaged, p)
			damaged[flipAt%len(p)] ^= 0x80
			ff.inner.Write(damaged) //nolint:errcheck
		}
	}
	ff.inner.Sync() //nolint:errcheck // persist the damage itself
	return 0, ErrCrashed
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.check(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Close always passes through so the property test can release file
	// handles after the simulated crash.
	return ff.inner.Close()
}
