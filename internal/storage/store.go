package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/types"
)

// Store is the storage manager for one database: a set of table heaps, the
// WAL, and transaction control. Concurrency model: strict two-phase locking
// at store granularity — read transactions share, write transactions are
// exclusive. This gives serializability with a simple proof, which is what
// the replication layer's "transactionally consistent but possibly stale"
// guarantee (paper §3) is built on.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*TableData
	wal    *WAL
	nextTx int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*TableData), wal: NewWAL()}
}

// WAL exposes the log for the replication reader.
func (s *Store) WAL() *WAL { return s.wal }

// CreateTable allocates storage for a catalog table definition.
func (s *Store) CreateTable(meta *catalog.Table) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := keyName(meta.Name)
	if _, ok := s.tables[k]; ok {
		return fmt.Errorf("storage: table %s already exists", meta.Name)
	}
	s.tables[k] = newTableData(meta)
	return nil
}

// DropTable releases a table's storage.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := keyName(name)
	if _, ok := s.tables[k]; !ok {
		return fmt.Errorf("storage: table %s does not exist", name)
	}
	delete(s.tables, k)
	return nil
}

// AddIndex builds an index over existing rows.
func (s *Store) AddIndex(table string, idx *catalog.Index) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.tables[keyName(table)]
	if !ok {
		return fmt.Errorf("storage: table %s does not exist", table)
	}
	td.addIndexLocked(idx)
	return nil
}

// Table returns the storage for a table, or nil. It takes the store's read
// lock for the map lookup (callers such as DDL existence checks hold no
// transaction, and must not race with concurrent CreateTable/DropTable).
// Access to the returned data still requires a transaction spanning it; use
// Txn.Table inside a transaction — the held lock already covers the lookup.
func (s *Store) Table(name string) *TableData {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[keyName(name)]
}

// Txn is an open transaction. All reads and writes of table data must happen
// between Begin and Commit/Abort.
type Txn struct {
	s       *Store
	id      int64
	write   bool
	done    bool
	changes []ChangeRec // redo, for the WAL
	undo    []undoRec
}

type undoRec struct {
	table *TableData
	op    ChangeOp
	rid   RowID
	old   types.Row // for delete/update undo
}

// Begin opens a transaction. write=true takes the exclusive lock.
func (s *Store) Begin(write bool) *Txn {
	if write {
		s.mu.Lock()
	} else {
		s.mu.RLock()
	}
	return &Txn{s: s, id: atomic.AddInt64(&s.nextTx, 1), write: write}
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

// IsWrite reports whether this is a write transaction.
func (t *Txn) IsWrite() bool { return t.write }

func (t *Txn) table(name string) (*TableData, error) {
	td := t.s.tables[keyName(name)]
	if td == nil {
		return nil, fmt.Errorf("storage: table %s does not exist", name)
	}
	return td, nil
}

// Get returns table storage for reading within this transaction.
func (t *Txn) Table(name string) *TableData {
	return t.s.tables[keyName(name)]
}

// Insert adds a row to a table.
func (t *Txn) Insert(table string, row types.Row) (RowID, error) {
	if err := t.writable(); err != nil {
		return 0, err
	}
	td, err := t.table(table)
	if err != nil {
		return 0, err
	}
	rid, err := td.insert(row)
	if err != nil {
		return 0, err
	}
	t.changes = append(t.changes, ChangeRec{Table: td.meta.Name, Op: OpInsert, After: row.Clone()})
	t.undo = append(t.undo, undoRec{table: td, op: OpInsert, rid: rid})
	return rid, nil
}

// Delete removes the row at rid.
func (t *Txn) Delete(table string, rid RowID) error {
	if err := t.writable(); err != nil {
		return err
	}
	td, err := t.table(table)
	if err != nil {
		return err
	}
	old, err := td.delete(rid)
	if err != nil {
		return err
	}
	t.changes = append(t.changes, ChangeRec{Table: td.meta.Name, Op: OpDelete, Before: old.Clone()})
	t.undo = append(t.undo, undoRec{table: td, op: OpDelete, rid: rid, old: old})
	return nil
}

// Update replaces the row at rid.
func (t *Txn) Update(table string, rid RowID, newRow types.Row) error {
	if err := t.writable(); err != nil {
		return err
	}
	td, err := t.table(table)
	if err != nil {
		return err
	}
	old, err := td.update(rid, newRow)
	if err != nil {
		return err
	}
	t.changes = append(t.changes, ChangeRec{Table: td.meta.Name, Op: OpUpdate, Before: old.Clone(), After: newRow.Clone()})
	t.undo = append(t.undo, undoRec{table: td, op: OpUpdate, rid: rid, old: old})
	return nil
}

func (t *Txn) writable() error {
	if t.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	if !t.write {
		return fmt.Errorf("storage: write in read-only transaction")
	}
	return nil
}

// Commit finishes the transaction, logging its changes. The returned LSN is
// 0 for read-only or changeless transactions. logged=false suppresses the
// WAL append (used by the replication subscriber's apply path: replicated
// changes must not re-enter the local log and echo back).
func (t *Txn) Commit() (LSN, error) {
	return t.commit(true)
}

// CommitUnlogged commits without writing the WAL.
func (t *Txn) CommitUnlogged() error {
	_, err := t.commit(false)
	return err
}

func (t *Txn) commit(logged bool) (LSN, error) {
	if t.done {
		return 0, fmt.Errorf("storage: transaction already finished")
	}
	t.done = true
	var lsn LSN
	if t.write {
		if logged && len(t.changes) > 0 {
			lsn = t.s.wal.Append(t.id, time.Now(), t.changes)
		}
		t.s.mu.Unlock()
	} else {
		t.s.mu.RUnlock()
	}
	return lsn, nil
}

// Abort rolls back all changes made by the transaction.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	if t.write {
		for i := len(t.undo) - 1; i >= 0; i-- {
			u := t.undo[i]
			switch u.op {
			case OpInsert:
				// Ignore errors: the row must exist because we hold the lock.
				_, _ = u.table.delete(u.rid)
			case OpDelete:
				// Restore into the same slot.
				u.table.rows[u.rid] = u.old
				u.table.count++
				if n := len(u.table.free); n > 0 && u.table.free[n-1] == u.rid {
					u.table.free = u.table.free[:n-1]
				}
				for _, id := range u.table.indexes {
					id.tree.Insert(Item{Key: indexKey(u.old, id.meta.Columns), RID: u.rid})
				}
			case OpUpdate:
				_, _ = u.table.update(u.rid, u.old)
			}
		}
		t.s.mu.Unlock()
	} else {
		t.s.mu.RUnlock()
	}
}
