package storage

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/metrics"
	"mtcache/internal/querystore"
	"mtcache/internal/types"
)

// ErrDeadlock is returned when acquiring a table write latch would close a
// wait-for cycle. The transaction is poisoned (Err reports it); callers abort
// and may retry.
var ErrDeadlock = errors.New("storage: deadlock detected")

// gcInterval is how many write commits elapse between automatic version GC
// sweeps.
const gcInterval = 64

// snapMark pairs a commit timestamp with the WAL position containing exactly
// the logged transactions committed at or before it. Commit publishes a new
// mark after stamping versions and appending to the log (both under
// commitMu), so a reader pinning the mark gets a snapshot whose WAL prefix is
// consistent with what it sees — the replication layer relies on this to take
// materialization snapshots without blocking writers.
type snapMark struct {
	ts     int64
	walEnd LSN
}

// Store is the storage manager for one database: a set of table heaps, the
// WAL, and transaction control.
//
// Concurrency model: multi-version concurrency control. Rows are version
// chains stamped with begin/end commit timestamps. Read transactions pin the
// newest published commit timestamp at Begin and resolve every row against
// that snapshot — they take no locks and are never blocked by writers (the
// paper §3 guarantee, "transactionally consistent but possibly stale", with
// the blocking removed). Write transactions serialize per table: the first
// access to a table — read or write — takes that table's write latch, held to
// commit/abort (strict 2PL among writers, at table granularity), with
// wait-for-graph deadlock detection. Commit stamps all created/ended versions
// and appends the WAL under a short critical section, then publishes the new
// timestamp with one atomic store — so concurrent readers observe each
// transaction all-or-nothing. Version garbage collection reclaims images no
// live snapshot can reach, keyed off the oldest pinned snapshot.
type Store struct {
	mu     sync.RWMutex // guards the table map (DDL vs lookup), nothing else
	tables map[string]*TableData
	wal    *WAL
	nextTx atomic.Int64

	commitMu  sync.Mutex // serializes commit stamping + WAL append
	published atomic.Pointer[snapMark]

	snapMu  sync.Mutex // guards snaps/readers; pin reads published inside it
	snaps   map[int64]*snapRef
	readers int

	// Durability state (nil/zero on a purely in-memory store).
	durable       *diskWAL
	durOpts       DurabilityOptions
	openStats     walOpenStats // torn-tail/CRC findings from opening the log
	ckptLSN       atomic.Int64 // WAL position of the latest heap checkpoint
	loggedCommits atomic.Int64 // commits since open, drives auto-checkpoints
	ckptBusy      atomic.Bool  // one automatic checkpoint at a time

	lockMu   sync.Mutex // lock manager: table latch owners + wait-for graph
	lockCond *sync.Cond
	waitFor  map[int64]*TableData

	commits atomic.Int64 // write commits since the last automatic GC trigger
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{
		tables:  make(map[string]*TableData),
		wal:     NewWAL(),
		snaps:   make(map[int64]*snapRef),
		waitFor: make(map[int64]*TableData),
	}
	s.lockCond = sync.NewCond(&s.lockMu)
	s.published.Store(&snapMark{ts: 0, walEnd: s.wal.End()})
	return s
}

// WAL exposes the log for the replication reader.
func (s *Store) WAL() *WAL { return s.wal }

// CreateTable allocates storage for a catalog table definition.
func (s *Store) CreateTable(meta *catalog.Table) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := keyName(meta.Name)
	if _, ok := s.tables[k]; ok {
		return fmt.Errorf("storage: table %s already exists", meta.Name)
	}
	s.tables[k] = newTableData(meta)
	return nil
}

// DropTable releases a table's storage.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := keyName(name)
	if _, ok := s.tables[k]; !ok {
		return fmt.Errorf("storage: table %s does not exist", name)
	}
	delete(s.tables, k)
	return nil
}

// AddIndex builds an index over existing rows. It latches the table like a
// writer so the build cannot race an in-flight transaction.
func (s *Store) AddIndex(table string, idx *catalog.Index) error {
	s.mu.RLock()
	td := s.tables[keyName(table)]
	s.mu.RUnlock()
	if td == nil {
		return fmt.Errorf("storage: table %s does not exist", table)
	}
	id := s.nextTx.Add(1)
	if err := s.acquireLatch(id, td); err != nil {
		return err
	}
	td.addIndexLocked(idx)
	s.releaseLatches(id, []*TableData{td})
	return nil
}

// Table returns the storage for a table, or nil. Used by DDL existence
// checks; data access goes through Txn.Table, which returns a TableView
// carrying the transaction's visibility rule.
func (s *Store) Table(name string) *TableData {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[keyName(name)]
}

// --- lock manager -----------------------------------------------------------

// acquireLatch takes td's write latch for owner id, blocking while another
// owner holds it. Before each wait it checks the wait-for graph; closing a
// cycle returns ErrDeadlock instead of waiting forever.
func (s *Store) acquireLatch(id int64, td *TableData) error {
	s.lockMu.Lock()
	defer s.lockMu.Unlock()
	for td.owner != 0 && td.owner != id {
		if s.wouldDeadlock(id, td) {
			querystore.Emit("deadlock_abort",
				"txn", strconv.FormatInt(id, 10), "table", td.meta.Name)
			return ErrDeadlock
		}
		s.waitFor[id] = td
		s.lockCond.Wait()
		delete(s.waitFor, id)
	}
	td.owner = id
	return nil
}

// wouldDeadlock follows owner→waiting-for edges from td; reaching id again
// means granting the wait would close a cycle. Caller holds lockMu.
func (s *Store) wouldDeadlock(id int64, td *TableData) bool {
	for hops := 0; td != nil && hops < 1<<16; hops++ {
		owner := td.owner
		if owner == 0 {
			return false
		}
		if owner == id {
			return true
		}
		td = s.waitFor[owner]
	}
	return false
}

// releaseLatches frees every latch id holds and wakes waiters.
func (s *Store) releaseLatches(id int64, tds []*TableData) {
	if len(tds) == 0 {
		return
	}
	s.lockMu.Lock()
	for _, td := range tds {
		if td.owner == id {
			td.owner = 0
		}
	}
	s.lockCond.Broadcast()
	s.lockMu.Unlock()
}

// --- snapshots --------------------------------------------------------------

// snapRef tracks the readers pinned at one commit timestamp, plus the WAL
// position their snapshot pairs with — the truncation floor must keep every
// record a pinned snapshot's AsOfLSN may still resume from.
type snapRef struct {
	count  int
	walEnd LSN
}

// pinSnapshot registers a reader at the current published mark. The mark is
// read inside snapMu so GC (which computes the oldest visible snapshot under
// the same mutex) can never reclaim versions between the read and the
// registration.
func (s *Store) pinSnapshot() *snapMark {
	s.snapMu.Lock()
	m := s.published.Load()
	if r := s.snaps[m.ts]; r != nil {
		r.count++
	} else {
		s.snaps[m.ts] = &snapRef{count: 1, walEnd: m.walEnd}
	}
	s.readers++
	n := s.readers
	s.snapMu.Unlock()
	metrics.Default.Gauge("storage.snapshots_live").Set(float64(n))
	return m
}

func (s *Store) unpinSnapshot(ts int64) {
	s.snapMu.Lock()
	if r := s.snaps[ts]; r != nil {
		if r.count <= 1 {
			delete(s.snaps, ts)
		} else {
			r.count--
		}
	}
	s.readers--
	n := s.readers
	s.snapMu.Unlock()
	metrics.Default.Gauge("storage.snapshots_live").Set(float64(n))
}

// oldestVisible returns the oldest commit timestamp any live or future
// snapshot can observe: the minimum over pinned snapshots and the current
// published timestamp.
func (s *Store) oldestVisible() int64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	oldest := s.published.Load().ts
	for ts := range s.snaps {
		if ts < oldest {
			oldest = ts
		}
	}
	return oldest
}

// retainFloor returns the smallest LSN WAL truncation must keep: the minimum
// of every pinned snapshot's WAL position and, on a durable store, the last
// checkpoint LSN (recovery replays from there; with no checkpoint yet the
// whole log is the recovery source and nothing may be dropped).
func (s *Store) retainFloor() LSN {
	s.snapMu.Lock()
	floor := s.published.Load().walEnd
	for _, r := range s.snaps {
		if r.walEnd < floor {
			floor = r.walEnd
		}
	}
	s.snapMu.Unlock()
	if s.durable != nil {
		ck := LSN(s.ckptLSN.Load())
		if ck == 0 {
			ck = s.wal.First()
		}
		if ck < floor {
			floor = ck
		}
	}
	return floor
}

// --- version GC -------------------------------------------------------------

// GC reclaims row versions that no live snapshot (nor any snapshot taken
// from now on) can see, and the stale index entries that pointed at them.
// It latches one table at a time, so it can run concurrently with normal
// traffic. Returns the number of versions reclaimed; the total is also
// published as the storage.versions_gc counter.
func (s *Store) GC() int {
	oldest := s.oldestVisible()
	s.mu.RLock()
	tds := make([]*TableData, 0, len(s.tables))
	for _, td := range s.tables {
		tds = append(tds, td)
	}
	s.mu.RUnlock()
	id := s.nextTx.Add(1)
	total := 0
	for _, td := range tds {
		if td.deadHint.Load() == 0 {
			continue // nothing ended since the last scan: no garbage possible
		}
		if err := s.acquireLatch(id, td); err != nil {
			continue // cannot deadlock: GC holds one latch at a time
		}
		pruned := td.gcLocked(oldest)
		// Subtract only what was reclaimed: garbage pinned by a live snapshot
		// keeps the hint positive, so the next GC round retries this table.
		td.deadHint.Add(-int64(pruned))
		s.releaseLatches(id, []*TableData{td})
		total += pruned
	}
	if total > 0 {
		metrics.Default.Counter("storage.versions_gc").Add(int64(total))
		querystore.Emit("gc_run", "versions", strconv.Itoa(total))
	}
	return total
}

func (s *Store) maybeGC() {
	if s.commits.Add(1)%gcInterval != 0 {
		return
	}
	s.GC()
}

// --- transactions -----------------------------------------------------------

// Txn is an open transaction. All reads and writes of table data must happen
// between Begin and Commit/Abort.
type Txn struct {
	s       *Store
	id      int64
	write   bool
	done    bool
	err     error       // sticky: set by deadlock detection, surfaced at commit
	snap    int64       // read transactions: pinned commit timestamp
	asOfLSN LSN         // read transactions: WAL end consistent with snap
	changes []ChangeRec // redo, for the WAL
	undo    []undoRec
	created []*version   // versions to stamp begin=commitTS
	ended   []*version   // versions to stamp end=commitTS
	latched []*TableData // latches held, released at commit/abort
}

type undoRec struct {
	table *TableData
	op    ChangeOp
	rid   RowID
	v     *version // version created by this txn (insert/update)
	old   *version // version ended by this txn (delete/update)
}

// Begin opens a transaction. Read transactions pin the current snapshot and
// take no locks; write transactions latch tables lazily on first access.
func (s *Store) Begin(write bool) *Txn {
	t := &Txn{s: s, id: s.nextTx.Add(1), write: write}
	if !write {
		m := s.pinSnapshot()
		t.snap = m.ts
		t.asOfLSN = m.walEnd
	}
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

// IsWrite reports whether this is a write transaction.
func (t *Txn) IsWrite() bool { return t.write }

// Err returns the transaction's sticky error (e.g. ErrDeadlock), if any.
// Once set, every subsequent operation fails and Commit aborts.
func (t *Txn) Err() error { return t.err }

// AsOfLSN returns, for a read transaction, the WAL position containing
// exactly the logged transactions visible in its snapshot. The replication
// layer uses it to pair a materialization scan with the log position to
// resume from — without blocking writers during the scan.
func (t *Txn) AsOfLSN() LSN {
	if t.write {
		return t.s.wal.End()
	}
	return t.asOfLSN
}

func (t *Txn) table(name string) (*TableData, error) {
	t.s.mu.RLock()
	td := t.s.tables[keyName(name)]
	t.s.mu.RUnlock()
	if td == nil {
		return nil, fmt.Errorf("storage: table %s does not exist", name)
	}
	return td, nil
}

// latch takes td's write latch on first touch; idempotent per transaction.
func (t *Txn) latch(td *TableData) error {
	for _, held := range t.latched {
		if held == td {
			return nil
		}
	}
	if err := t.s.acquireLatch(t.id, td); err != nil {
		t.err = err
		return err
	}
	t.latched = append(t.latched, td)
	return nil
}

// Table returns a view of the table under this transaction's visibility
// rule, or nil if the table does not exist or the transaction hit a latch
// deadlock (check Err). Write transactions latch the table on first access —
// read or write — so everything they read is stable until commit.
func (t *Txn) Table(name string) *TableView {
	td, err := t.table(name)
	if err != nil {
		return nil
	}
	if t.write && !t.done {
		if err := t.latch(td); err != nil {
			return nil
		}
	}
	return &TableView{td: td, txn: t, snap: t.snap}
}

func (t *Txn) writable() error {
	if t.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	if !t.write {
		return fmt.Errorf("storage: write in read-only transaction")
	}
	return t.err
}

func (t *Txn) tableForWrite(name string) (*TableData, error) {
	if err := t.writable(); err != nil {
		return nil, err
	}
	td, err := t.table(name)
	if err != nil {
		return nil, err
	}
	if err := t.latch(td); err != nil {
		return nil, err
	}
	return td, nil
}

// Insert adds a row to a table.
func (t *Txn) Insert(table string, row types.Row) (RowID, error) {
	td, err := t.tableForWrite(table)
	if err != nil {
		return 0, err
	}
	rid, v, err := td.insertLocked(t.id, row)
	if err != nil {
		return 0, err
	}
	t.changes = append(t.changes, ChangeRec{Table: td.meta.Name, Op: OpInsert, After: row.Clone()})
	t.undo = append(t.undo, undoRec{table: td, op: OpInsert, rid: rid, v: v})
	t.created = append(t.created, v)
	return rid, nil
}

// Delete removes the row at rid.
func (t *Txn) Delete(table string, rid RowID) error {
	td, err := t.tableForWrite(table)
	if err != nil {
		return err
	}
	old, err := td.deleteLocked(t.id, rid)
	if err != nil {
		return err
	}
	t.changes = append(t.changes, ChangeRec{Table: td.meta.Name, Op: OpDelete, Before: old.row.Clone()})
	t.undo = append(t.undo, undoRec{table: td, op: OpDelete, rid: rid, old: old})
	t.ended = append(t.ended, old)
	return nil
}

// Update replaces the row at rid.
func (t *Txn) Update(table string, rid RowID, newRow types.Row) error {
	td, err := t.tableForWrite(table)
	if err != nil {
		return err
	}
	v, old, err := td.updateLocked(t.id, rid, newRow)
	if err != nil {
		return err
	}
	t.changes = append(t.changes, ChangeRec{Table: td.meta.Name, Op: OpUpdate, Before: old.row.Clone(), After: newRow.Clone()})
	t.undo = append(t.undo, undoRec{table: td, op: OpUpdate, rid: rid, v: v, old: old})
	t.created = append(t.created, v)
	t.ended = append(t.ended, old)
	return nil
}

// Commit finishes the transaction, logging its changes. The returned LSN is
// 0 for read-only or changeless transactions.
func (t *Txn) Commit() (LSN, error) {
	return t.commit(true)
}

// CommitUnlogged commits without writing the WAL (used by the replication
// subscriber's apply path: replicated changes must not re-enter the local
// log and echo back). The commit timestamp still advances, so readers see
// the applied batch atomically.
func (t *Txn) CommitUnlogged() error {
	_, err := t.commit(false)
	return err
}

func (t *Txn) commit(logged bool) (LSN, error) {
	if t.done {
		return 0, fmt.Errorf("storage: transaction already finished")
	}
	if t.err != nil {
		t.Abort()
		return 0, t.err
	}
	t.done = true
	if !t.write {
		t.s.unpinSnapshot(t.snap)
		return 0, nil
	}
	var lsn LSN
	var syncErr error
	if len(t.undo) > 0 {
		s := t.s
		s.commitMu.Lock()
		ts := s.published.Load().ts + 1
		for _, v := range t.created {
			v.begin.Store(ts)
		}
		for _, v := range t.ended {
			v.end.Store(ts)
		}
		if logged && len(t.changes) > 0 {
			lsn = s.wal.Append(t.id, time.Now(), t.changes)
		}
		if lsn > 0 && s.durable != nil && s.durable.policy == SyncAlways {
			// Strict WAL: the record reaches disk before the commit becomes
			// visible to anyone else — one fsync per commit, serialized by
			// commitMu. This is the baseline group commit is measured against.
			syncErr = s.durable.flush(true)
		}
		// Publishing the mark is the commit point: after this single store,
		// every new snapshot sees the whole transaction; none sees a part.
		s.published.Store(&snapMark{ts: ts, walEnd: s.wal.End()})
		s.commitMu.Unlock()
		// Each superseded/deleted version is future garbage; the hint lets GC
		// skip tables with nothing to reclaim. Counted before the latches
		// drop so a concurrent GC of this table cannot miss it.
		for i := range t.undo {
			if t.undo[i].op != OpInsert {
				t.undo[i].table.deadHint.Add(1)
			}
		}
	}
	t.s.releaseLatches(t.id, t.latched)
	if lsn > 0 && t.s.durable != nil {
		if t.s.durable.policy == SyncGroup {
			// Group commit: visibility is already published and the latches
			// are gone, so concurrent committers pile onto the same pending
			// fsync; the syncer's next fsync releases the whole group.
			syncErr = t.s.durable.waitDurable(lsn)
		}
		if syncErr != nil {
			return lsn, syncErr
		}
		t.s.maybeCheckpoint()
	}
	if t.write && len(t.undo) > 0 {
		t.s.maybeGC()
	}
	return lsn, nil
}

// Abort rolls back all changes made by the transaction: created versions are
// unlinked, ended versions revived. Nothing was stamped with a commit
// timestamp, so no snapshot ever observed any of it.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	if !t.write {
		t.s.unpinSnapshot(t.snap)
		return
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		slot := u.table.slotAt(u.rid)
		switch u.op {
		case OpInsert:
			slot.head.Store(u.v.next.Load())
			u.table.removeEntriesFor(u.v.row, u.rid, nil)
			if slot.head.Load() == nil {
				u.table.free = append(u.table.free, u.rid)
			}
		case OpDelete:
			u.old.end.Store(0)
		case OpUpdate:
			slot.head.Store(u.v.next.Load())
			u.old.end.Store(0)
			u.table.removeEntriesFor(u.v.row, u.rid, u.old.row)
		}
	}
	t.s.releaseLatches(t.id, t.latched)
}

// --- durability -------------------------------------------------------------

// EnableDurability attaches a segmented on-disk log to the store. It must be
// called on a fresh store (before any logged commit); opening an existing
// directory loads the retained commit records into the in-memory WAL so
// Recover can replay them and resumed subscribers can re-read them. The
// heaps stay empty until Recover runs.
func (s *Store) EnableDurability(opts DurabilityOptions) error {
	if s.durable != nil {
		return errors.New("storage: durability already enabled")
	}
	if s.wal.Len() > 0 || s.wal.End() != 1 {
		return errors.New("storage: durability must be enabled on a fresh store")
	}
	d, recs, ckptLSN, stats, err := openDiskWAL(opts)
	if err != nil {
		return err
	}
	next := LSN(1)
	if len(recs) > 0 {
		next = recs[len(recs)-1].LSN + 1
	}
	if ckptLSN+1 > next {
		// A checkpoint can outlive every WAL record (log fully truncated);
		// LSNs must keep ascending across the restart.
		next = ckptLSN + 1
	}
	s.wal.adopt(recs, next, d)
	s.wal.retain = s.retainFloor
	s.durable = d
	s.durOpts = opts
	s.openStats = stats
	s.ckptLSN.Store(int64(ckptLSN))
	s.published.Store(&snapMark{ts: 0, walEnd: s.wal.End()})
	d.start()
	return nil
}

// Durable reports whether the store has an on-disk log.
func (s *Store) Durable() bool { return s.durable != nil }

// SyncedLSN reports the highest LSN the on-disk log has fsynced (0 when the
// store is not durable). Race tests assert on it.
func (s *Store) SyncedLSN() LSN {
	if s.durable == nil {
		return 0
	}
	return s.durable.DurableLSN()
}

// Sync forces buffered log records to disk (used by SyncInterval/SyncNone
// stores before a planned shutdown, and by checkpoints).
func (s *Store) Sync() error {
	if s.durable == nil {
		return nil
	}
	return s.durable.flush(true)
}

// Close flushes and closes the on-disk log. The store itself remains usable
// for reads; further logged commits fail.
func (s *Store) Close() error {
	if s.durable == nil {
		return nil
	}
	return s.durable.Close()
}

// maybeCheckpoint triggers an automatic background checkpoint every
// CheckpointEvery logged commits.
func (s *Store) maybeCheckpoint() {
	every := int64(s.durOpts.CheckpointEvery)
	if every <= 0 || s.loggedCommits.Add(1)%every != 0 {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.ckptBusy.Store(false)
		s.Checkpoint() //nolint:errcheck — best effort; the next trigger retries
	}()
}

// HasDurableState reports whether dir holds a prior store's log or
// checkpoint (the recover-on-boot decision). fsys nil means the OS.
func HasDurableState(fsys FS, dir string) bool {
	if fsys == nil {
		fsys = OSFS()
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, name := range names {
		if _, ok := parseSeqName(name, "wal-", ".seg"); ok {
			return true
		}
		if _, ok := parseSeqName(name, "ckpt-", ".ckpt"); ok {
			return true
		}
	}
	return false
}
