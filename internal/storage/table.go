package storage

import (
	"fmt"

	"mtcache/internal/catalog"
	"mtcache/internal/types"
)

// RowID addresses a row slot within one table's heap.
type RowID int64

// TableData is the physical storage for one table (or materialized view):
// a slotted heap plus its indexes. All mutation goes through a Txn so every
// committed change lands in the WAL.
type TableData struct {
	meta    *catalog.Table
	rows    []types.Row // slot = RowID; nil marks a free slot
	free    []RowID
	count   int
	indexes map[string]*indexData
}

type indexData struct {
	meta *catalog.Index
	tree *BTree
}

func newTableData(meta *catalog.Table) *TableData {
	td := &TableData{meta: meta, indexes: make(map[string]*indexData)}
	if len(meta.PrimaryKey) > 0 {
		td.indexes["__pk"] = &indexData{
			meta: &catalog.Index{Name: "__pk", Table: meta.Name, Columns: meta.PrimaryKey, Unique: true},
			tree: NewBTree(),
		}
	}
	for _, idx := range meta.Indexes {
		td.addIndexLocked(idx)
	}
	return td
}

func (td *TableData) addIndexLocked(idx *catalog.Index) {
	id := &indexData{meta: idx, tree: NewBTree()}
	for rid, row := range td.rows {
		if row != nil {
			id.tree.Insert(Item{Key: indexKey(row, idx.Columns), RID: RowID(rid)})
		}
	}
	td.indexes[keyName(idx.Name)] = id
}

func keyName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func indexKey(row types.Row, cols []int) types.Row {
	k := make(types.Row, len(cols))
	for i, c := range cols {
		k[i] = row[c]
	}
	return k
}

// Count returns the number of live rows.
func (td *TableData) Count() int { return td.count }

// Meta returns the catalog definition this data belongs to.
func (td *TableData) Meta() *catalog.Table { return td.meta }

// Get returns the row at rid, or nil if the slot is free.
func (td *TableData) Get(rid RowID) types.Row {
	if rid < 0 || int(rid) >= len(td.rows) {
		return nil
	}
	return td.rows[rid]
}

// Cap returns the heap slot count (upper bound for cursor iteration).
func (td *TableData) Cap() int { return len(td.rows) }

// At returns the row in slot i, or nil if the slot is free. It is the
// cursor-style access used by the executor's Scan operator.
func (td *TableData) At(i int) types.Row {
	return td.rows[i]
}

// Scan calls fn for every live row until fn returns false.
func (td *TableData) Scan(fn func(RowID, types.Row) bool) {
	for rid, row := range td.rows {
		if row == nil {
			continue
		}
		if !fn(RowID(rid), row) {
			return
		}
	}
}

// Index returns the named index's tree, or the primary-key index for "__pk".
func (td *TableData) Index(name string) *BTree {
	if id := td.indexes[keyName(name)]; id != nil {
		return id.tree
	}
	return nil
}

// IndexMeta returns the catalog definition of a stored index.
func (td *TableData) IndexMeta(name string) *catalog.Index {
	if id := td.indexes[keyName(name)]; id != nil {
		return id.meta
	}
	return nil
}

// PKLookup finds the RowID of the row with the given primary-key values,
// or -1 if absent (or the table has no primary key).
func (td *TableData) PKLookup(key types.Row) RowID {
	pk := td.indexes["__pk"]
	if pk == nil {
		return -1
	}
	rids := pk.tree.Get(key)
	if len(rids) == 0 {
		return -1
	}
	return rids[0]
}

// insert adds a row, enforcing unique constraints. Caller holds the store lock.
func (td *TableData) insert(row types.Row) (RowID, error) {
	if len(row) != len(td.meta.Columns) {
		return 0, fmt.Errorf("storage: %s: row has %d values, table has %d columns", td.meta.Name, len(row), len(td.meta.Columns))
	}
	for _, id := range td.indexes {
		if !id.meta.Unique {
			continue
		}
		k := indexKey(row, id.meta.Columns)
		if len(id.tree.Get(k)) > 0 {
			return 0, fmt.Errorf("storage: %s: duplicate key %v for unique index %s", td.meta.Name, k, id.meta.Name)
		}
	}
	var rid RowID
	if n := len(td.free); n > 0 {
		rid = td.free[n-1]
		td.free = td.free[:n-1]
		td.rows[rid] = row
	} else {
		rid = RowID(len(td.rows))
		td.rows = append(td.rows, row)
	}
	td.count++
	for _, id := range td.indexes {
		id.tree.Insert(Item{Key: indexKey(row, id.meta.Columns), RID: rid})
	}
	return rid, nil
}

// delete removes the row at rid, returning the old row.
func (td *TableData) delete(rid RowID) (types.Row, error) {
	row := td.Get(rid)
	if row == nil {
		return nil, fmt.Errorf("storage: %s: delete of missing row %d", td.meta.Name, rid)
	}
	for _, id := range td.indexes {
		id.tree.Delete(Item{Key: indexKey(row, id.meta.Columns), RID: rid})
	}
	td.rows[rid] = nil
	td.free = append(td.free, rid)
	td.count--
	return row, nil
}

// update replaces the row at rid, enforcing unique constraints.
func (td *TableData) update(rid RowID, newRow types.Row) (types.Row, error) {
	old := td.Get(rid)
	if old == nil {
		return nil, fmt.Errorf("storage: %s: update of missing row %d", td.meta.Name, rid)
	}
	if len(newRow) != len(td.meta.Columns) {
		return nil, fmt.Errorf("storage: %s: row width mismatch", td.meta.Name)
	}
	for _, id := range td.indexes {
		if !id.meta.Unique {
			continue
		}
		nk := indexKey(newRow, id.meta.Columns)
		ok := indexKey(old, id.meta.Columns)
		if types.CompareRows(nk, ok) == 0 {
			continue
		}
		if len(id.tree.Get(nk)) > 0 {
			return nil, fmt.Errorf("storage: %s: duplicate key %v for unique index %s", td.meta.Name, nk, id.meta.Name)
		}
	}
	for _, id := range td.indexes {
		ok := indexKey(old, id.meta.Columns)
		nk := indexKey(newRow, id.meta.Columns)
		if types.CompareRows(nk, ok) != 0 {
			id.tree.Delete(Item{Key: ok, RID: rid})
			id.tree.Insert(Item{Key: nk, RID: rid})
		}
	}
	td.rows[rid] = newRow
	return old, nil
}

// Rows returns a snapshot copy of all live rows (used for statistics builds
// and view population).
func (td *TableData) Rows() []types.Row {
	out := make([]types.Row, 0, td.count)
	for _, r := range td.rows {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}
