package storage

import (
	"fmt"
	"sync/atomic"

	"mtcache/internal/catalog"
	"mtcache/internal/types"
)

// RowID addresses a row slot within one table's heap.
type RowID int64

// version is one committed (or in-flight) image of a row. begin/end are
// commit timestamps; an uncommitted marker is the negated id of the writing
// transaction, and end == 0 means "still live". Chains are ordered newest
// first via next.
type version struct {
	row   types.Row
	begin atomic.Int64
	end   atomic.Int64
	next  atomic.Pointer[version]
}

func newVersion(row types.Row, beginMark int64) *version {
	v := &version{row: row}
	v.begin.Store(beginMark)
	return v
}

// rowSlot is one heap slot: the head of a version chain (nil when the slot is
// free). Readers walk the chain lock-free; the single writer holding the
// table latch pushes new versions at the head.
type rowSlot struct {
	head atomic.Pointer[version]
}

// visibleAt returns the row image visible to a snapshot taken at commit
// timestamp snap, or nil if the row does not exist at that snapshot.
func (s *rowSlot) visibleAt(snap int64) types.Row {
	for v := s.head.Load(); v != nil; v = v.next.Load() {
		b := v.begin.Load()
		if b <= 0 || b > snap {
			continue // uncommitted, or committed after the snapshot
		}
		// First version committed at or before snap. Chains are newest-first,
		// so this is THE version as of snap: live unless ended by then.
		if e := v.end.Load(); e > 0 && e <= snap {
			return nil
		}
		return v.row
	}
	return nil
}

// latestFor returns the version visible to write transaction txnID: the
// newest committed version, or the transaction's own uncommitted one. The
// caller holds the table latch, so no other uncommitted versions can exist.
func (s *rowSlot) latestFor(txnID int64) *version {
	for v := s.head.Load(); v != nil; v = v.next.Load() {
		b := v.begin.Load()
		if b <= 0 && b != -txnID {
			continue
		}
		e := v.end.Load()
		if e > 0 || e == -txnID {
			return nil // deleted (committed, or by this transaction)
		}
		return v
	}
	return nil
}

// TableData is the physical storage for one table (or materialized view): a
// slotted heap of version chains plus its indexes. All mutation goes through
// a Txn so every committed change lands in the WAL; readers access it through
// a TableView, which carries the snapshot (or writer) visibility rule.
type TableData struct {
	meta    *catalog.Table
	slots   atomic.Pointer[[]*rowSlot]
	indexes atomic.Pointer[map[string]*indexData]

	// deadHint counts versions whose end has been stamped since the last GC
	// scan — an upper bound on reclaimable garbage. GC skips tables whose
	// hint is zero, so insert-only tables never pay the full-heap scan.
	deadHint atomic.Int64

	// Latch-guarded state (see Store's lock manager): the heap free list and
	// the current latch owner. owner/waiters bookkeeping lives in Store.
	free  []RowID
	owner int64 // transaction currently holding the write latch; 0 = free
}

type indexData struct {
	meta *catalog.Index
	tree *BTree
}

func newTableData(meta *catalog.Table) *TableData {
	td := &TableData{meta: meta}
	empty := []*rowSlot{}
	td.slots.Store(&empty)
	m := make(map[string]*indexData)
	if len(meta.PrimaryKey) > 0 {
		m["__pk"] = &indexData{
			meta: &catalog.Index{Name: "__pk", Table: meta.Name, Columns: meta.PrimaryKey, Unique: true},
			tree: NewBTree(),
		}
	}
	for _, idx := range meta.Indexes {
		m[keyName(idx.Name)] = buildIndex(td, idx)
	}
	td.indexes.Store(&m)
	return td
}

// buildIndex backfills an index with entries for every version in every
// chain, so snapshots older than the index build still resolve through it.
func buildIndex(td *TableData, idx *catalog.Index) *indexData {
	id := &indexData{meta: idx, tree: NewBTree()}
	for rid, slot := range *td.slots.Load() {
		for v := slot.head.Load(); v != nil; v = v.next.Load() {
			id.tree.Insert(Item{Key: indexKey(v.row, idx.Columns), RID: RowID(rid)})
		}
	}
	return id
}

// addIndexLocked publishes a new index map including idx. The caller holds
// the table latch (DDL acquires it like a writer).
func (td *TableData) addIndexLocked(idx *catalog.Index) {
	old := *td.indexes.Load()
	m := make(map[string]*indexData, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[keyName(idx.Name)] = buildIndex(td, idx)
	td.indexes.Store(&m)
}

func keyName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func indexKey(row types.Row, cols []int) types.Row {
	k := make(types.Row, len(cols))
	for i, c := range cols {
		k[i] = row[c]
	}
	return k
}

// Meta returns the catalog definition this data belongs to.
func (td *TableData) Meta() *catalog.Table { return td.meta }

func (td *TableData) slotAt(rid RowID) *rowSlot {
	slots := *td.slots.Load()
	if rid < 0 || int(rid) >= len(slots) {
		return nil
	}
	return slots[rid]
}

// allocSlot reuses a GC-freed slot or appends a fresh one. Caller holds the
// table latch. The append publishes a new header atomically; readers holding
// the old header never index past their snapshot's length.
func (td *TableData) allocSlot() RowID {
	if n := len(td.free); n > 0 {
		rid := td.free[n-1]
		td.free = td.free[:n-1]
		return rid
	}
	slots := *td.slots.Load()
	grown := append(slots, &rowSlot{})
	td.slots.Store(&grown)
	return RowID(len(grown) - 1)
}

// index returns the named index, or the primary-key index for "__pk".
func (td *TableData) index(name string) *indexData {
	return (*td.indexes.Load())[keyName(name)]
}

// uniqueConflict reports whether a currently-live row (as seen by writer
// txnID) already carries key in the unique index id. Index entries can be
// stale — they are only removed by GC — so each candidate's live image is
// re-checked against the key.
func (td *TableData) uniqueConflict(id *indexData, key types.Row, txnID int64) bool {
	for _, rid := range id.tree.Get(key) {
		slot := td.slotAt(rid)
		if slot == nil {
			continue
		}
		if v := slot.latestFor(txnID); v != nil &&
			types.CompareRows(indexKey(v.row, id.meta.Columns), key) == 0 {
			return true
		}
	}
	return false
}

// insertLocked adds a new uncommitted version in a fresh slot. Caller holds
// the table latch.
func (td *TableData) insertLocked(txnID int64, row types.Row) (RowID, *version, error) {
	if len(row) != len(td.meta.Columns) {
		return 0, nil, fmt.Errorf("storage: %s: row has %d values, table has %d columns", td.meta.Name, len(row), len(td.meta.Columns))
	}
	idxs := *td.indexes.Load()
	for _, id := range idxs {
		if !id.meta.Unique {
			continue
		}
		k := indexKey(row, id.meta.Columns)
		if td.uniqueConflict(id, k, txnID) {
			return 0, nil, fmt.Errorf("storage: %s: duplicate key %v for unique index %s", td.meta.Name, k, id.meta.Name)
		}
	}
	rid := td.allocSlot()
	v := newVersion(row, -txnID)
	slot := td.slotAt(rid)
	v.next.Store(slot.head.Load())
	slot.head.Store(v)
	for _, id := range idxs {
		id.tree.Insert(Item{Key: indexKey(row, id.meta.Columns), RID: rid})
	}
	return rid, v, nil
}

// deleteLocked marks the writer-visible version at rid as ended by txnID.
func (td *TableData) deleteLocked(txnID int64, rid RowID) (*version, error) {
	slot := td.slotAt(rid)
	if slot == nil {
		return nil, fmt.Errorf("storage: %s: delete of missing row %d", td.meta.Name, rid)
	}
	v := slot.latestFor(txnID)
	if v == nil {
		return nil, fmt.Errorf("storage: %s: delete of missing row %d", td.meta.Name, rid)
	}
	v.end.Store(-txnID)
	return v, nil
}

// updateLocked pushes a new uncommitted version over the writer-visible one
// at rid, inserting index entries for any changed keys. Old entries stay (GC
// removes them); readers re-check keys against the visible image.
func (td *TableData) updateLocked(txnID int64, rid RowID, newRow types.Row) (*version, *version, error) {
	slot := td.slotAt(rid)
	if slot == nil {
		return nil, nil, fmt.Errorf("storage: %s: update of missing row %d", td.meta.Name, rid)
	}
	old := slot.latestFor(txnID)
	if old == nil {
		return nil, nil, fmt.Errorf("storage: %s: update of missing row %d", td.meta.Name, rid)
	}
	if len(newRow) != len(td.meta.Columns) {
		return nil, nil, fmt.Errorf("storage: %s: row width mismatch", td.meta.Name)
	}
	idxs := *td.indexes.Load()
	for _, id := range idxs {
		if !id.meta.Unique {
			continue
		}
		nk := indexKey(newRow, id.meta.Columns)
		ok := indexKey(old.row, id.meta.Columns)
		if types.CompareRows(nk, ok) == 0 {
			continue
		}
		if td.uniqueConflict(id, nk, txnID) {
			return nil, nil, fmt.Errorf("storage: %s: duplicate key %v for unique index %s", td.meta.Name, nk, id.meta.Name)
		}
	}
	v := newVersion(newRow, -txnID)
	v.next.Store(slot.head.Load())
	old.end.Store(-txnID)
	slot.head.Store(v)
	for _, id := range idxs {
		nk := indexKey(newRow, id.meta.Columns)
		if types.CompareRows(nk, indexKey(old.row, id.meta.Columns)) != 0 {
			id.tree.Insert(Item{Key: nk, RID: rid})
		}
	}
	return v, old, nil
}

// removeEntriesFor deletes index entries carried by row at rid. When onlyIfNot
// is non-nil, entries whose key also appears on that row are kept (undo of an
// update must not strip the old image's entries).
func (td *TableData) removeEntriesFor(row types.Row, rid RowID, onlyIfNot types.Row) {
	for _, id := range *td.indexes.Load() {
		k := indexKey(row, id.meta.Columns)
		if onlyIfNot != nil && types.CompareRows(k, indexKey(onlyIfNot, id.meta.Columns)) == 0 {
			continue
		}
		id.tree.Delete(Item{Key: k, RID: rid})
	}
}

// gcLocked prunes version-chain suffixes no snapshot at or after oldest can
// see, removes index entries that pointed only at pruned images, and frees
// slots whose chains empty out. Caller holds the table latch. Returns the
// number of versions reclaimed.
func (td *TableData) gcLocked(oldest int64) int {
	slots := *td.slots.Load()
	idxs := *td.indexes.Load()
	pruned := 0
	for rid, slot := range slots {
		head := slot.head.Load()
		if head == nil {
			continue
		}
		// Find the first version whose end is committed at or before oldest:
		// it and everything older is invisible to every live (and future)
		// snapshot. Ends decrease down the chain, so this is a suffix.
		var prev *version
		v := head
		for v != nil {
			if e := v.end.Load(); e > 0 && e <= oldest {
				break
			}
			prev, v = v, v.next.Load()
		}
		if v == nil {
			continue
		}
		var dead []*version
		for d := v; d != nil; d = d.next.Load() {
			dead = append(dead, d)
		}
		if prev == nil {
			slot.head.Store(nil)
		} else {
			prev.next.Store(nil)
		}
		// Drop index entries whose key no longer appears on any surviving
		// version of this slot.
		for _, id := range idxs {
			var surviving []types.Row
			for sv := slot.head.Load(); sv != nil; sv = sv.next.Load() {
				surviving = append(surviving, indexKey(sv.row, id.meta.Columns))
			}
			for _, d := range dead {
				k := indexKey(d.row, id.meta.Columns)
				keep := false
				for _, sk := range surviving {
					if types.CompareRows(sk, k) == 0 {
						keep = true
						break
					}
				}
				if !keep {
					id.tree.Delete(Item{Key: k, RID: RowID(rid)})
				}
			}
		}
		if prev == nil {
			td.free = append(td.free, RowID(rid))
		}
		pruned += len(dead)
	}
	return pruned
}

// TableView is a transaction's window onto one table. For read transactions
// it applies snapshot visibility at the transaction's pinned commit
// timestamp — entirely lock-free. For write transactions it shows the newest
// committed state plus the transaction's own uncommitted changes (the table
// latch excludes other writers).
type TableView struct {
	td   *TableData
	txn  *Txn
	snap int64
}

// Meta returns the catalog definition this data belongs to.
func (tv *TableView) Meta() *catalog.Table { return tv.td.meta }

// rowAt applies the view's visibility rule to one slot.
func (tv *TableView) rowAt(slot *rowSlot) types.Row {
	if slot == nil {
		return nil
	}
	if tv.txn.write {
		if v := slot.latestFor(tv.txn.id); v != nil {
			return v.row
		}
		return nil
	}
	return slot.visibleAt(tv.snap)
}

// Get returns the visible row at rid, or nil.
func (tv *TableView) Get(rid RowID) types.Row {
	return tv.rowAt(tv.td.slotAt(rid))
}

// Cap returns the heap slot count (upper bound for cursor iteration).
func (tv *TableView) Cap() int { return len(*tv.td.slots.Load()) }

// At returns the visible row in slot i, or nil. It is the cursor-style
// access used by the executor's Scan operator.
func (tv *TableView) At(i int) types.Row {
	return tv.Get(RowID(i))
}

// Count returns the number of visible rows.
func (tv *TableView) Count() int {
	n := 0
	tv.Scan(func(RowID, types.Row) bool { n++; return true })
	return n
}

// Scan calls fn for every visible row until fn returns false.
func (tv *TableView) Scan(fn func(RowID, types.Row) bool) {
	for rid, slot := range *tv.td.slots.Load() {
		row := tv.rowAt(slot)
		if row == nil {
			continue
		}
		if !fn(RowID(rid), row) {
			return
		}
	}
}

// Rows returns a snapshot copy of all visible rows (used for statistics
// builds and view population).
func (tv *TableView) Rows() []types.Row {
	var out []types.Row
	tv.Scan(func(_ RowID, r types.Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

// IndexMeta returns the catalog definition of a stored index.
func (tv *TableView) IndexMeta(name string) *catalog.Index {
	if id := tv.td.index(name); id != nil {
		return id.meta
	}
	return nil
}

// Index returns a visibility-filtered view over the named index (or the
// primary-key index for "__pk"), pinned to the index state at call time.
func (tv *TableView) Index(name string) *IndexView {
	id := tv.td.index(name)
	if id == nil {
		return nil
	}
	return &IndexView{tv: tv, id: id, root: id.tree.pin()}
}

// PKLookup finds the RowID of the visible row with the given primary-key
// values, or -1 if absent (or the table has no primary key). It reads the
// current index root, so a write transaction sees entries for rows it
// inserted after the view was created.
func (tv *TableView) PKLookup(key types.Row) RowID {
	pk := tv.td.index("__pk")
	if pk == nil {
		return -1
	}
	for _, rid := range pk.tree.Get(key) {
		if row := tv.Get(rid); row != nil &&
			types.CompareRows(indexKey(row, pk.meta.Columns), key) == 0 {
			return rid
		}
	}
	return -1
}

// IndexView is a snapshot read view over one index: a pinned tree root plus
// the owning TableView's visibility rule. Index entries are never removed at
// delete/update time (only GC prunes them), so every entry is re-checked
// against the visible row image before being surfaced.
type IndexView struct {
	tv   *TableView
	id   *indexData
	root *node
}

// live reports whether the entry resolves to a visible row still carrying
// the entry's key. The key equality check both filters stale entries and
// de-duplicates updated rows that appear under old and new keys.
func (iv *IndexView) live(it Item) bool {
	row := iv.tv.Get(it.RID)
	return row != nil && types.CompareRows(indexKey(row, iv.id.meta.Columns), it.Key) == 0
}

func (iv *IndexView) filtered(fn func(Item) bool) func(Item) bool {
	return func(it Item) bool {
		if !iv.live(it) {
			return true
		}
		return fn(it)
	}
}

// Get returns the RowIDs of visible entries whose key equals key exactly.
func (iv *IndexView) Get(key types.Row) []RowID {
	var out []RowID
	for _, rid := range iv.root.get(key) {
		if iv.live(Item{Key: key, RID: rid}) {
			out = append(out, rid)
		}
	}
	return out
}

// Ascend visits all visible entries in key order.
func (iv *IndexView) Ascend(fn func(Item) bool) {
	iv.root.ascend(Item{}, false, iv.filtered(fn))
}

// AscendGE visits visible entries with key >= from (by key prefix comparison).
func (iv *IndexView) AscendGE(from types.Row, fn func(Item) bool) {
	iv.root.ascend(Item{Key: from, RID: -1 << 62}, true, iv.filtered(fn))
}

// AscendRange visits visible entries whose key prefix is within [lo, hi].
func (iv *IndexView) AscendRange(lo, hi types.Row, fn func(Item) bool) {
	iv.root.ascendRange(lo, hi, iv.filtered(fn))
}
