package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mtcache/internal/types"
)

func intItem(k int64, rid RowID) Item {
	return Item{Key: types.Row{types.NewInt(k)}, RID: rid}
}

func TestBTreeInsertGet(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 1000; i++ {
		bt.Insert(intItem(i, RowID(i)))
	}
	if bt.Len() != 1000 {
		t.Fatalf("len %d", bt.Len())
	}
	for i := int64(0); i < 1000; i++ {
		rids := bt.Get(types.Row{types.NewInt(i)})
		if len(rids) != 1 || rids[0] != RowID(i) {
			t.Fatalf("get %d: %v", i, rids)
		}
	}
	if rids := bt.Get(types.Row{types.NewInt(5000)}); len(rids) != 0 {
		t.Error("missing key returned rows")
	}
}

func TestBTreeDuplicateKeysDistinctRIDs(t *testing.T) {
	bt := NewBTree()
	for rid := RowID(0); rid < 10; rid++ {
		bt.Insert(intItem(7, rid))
	}
	rids := bt.Get(types.Row{types.NewInt(7)})
	if len(rids) != 10 {
		t.Fatalf("want 10 rids, got %d", len(rids))
	}
}

func TestBTreeDeleteAll(t *testing.T) {
	bt := NewBTree()
	const n = 500
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		bt.Insert(intItem(int64(i), RowID(i)))
	}
	perm2 := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm2 {
		if !bt.Delete(intItem(int64(i), RowID(i))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("len after delete-all: %d", bt.Len())
	}
	if _, ok := bt.Min(); ok {
		t.Error("empty tree has a min")
	}
}

func TestBTreeDeleteMissing(t *testing.T) {
	bt := NewBTree()
	bt.Insert(intItem(1, 1))
	if bt.Delete(intItem(2, 2)) {
		t.Error("deleting absent item reported true")
	}
	if bt.Delete(intItem(1, 99)) {
		t.Error("same key, different rid should not delete")
	}
	if bt.Len() != 1 {
		t.Error("len changed")
	}
}

func TestBTreeAscendOrder(t *testing.T) {
	bt := NewBTree()
	vals := rand.New(rand.NewSource(1)).Perm(2000)
	for _, v := range vals {
		bt.Insert(intItem(int64(v), RowID(v)))
	}
	var got []int64
	bt.Ascend(func(it Item) bool {
		got = append(got, it.Key[0].Int())
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("ascend not sorted")
	}
	if len(got) != 2000 {
		t.Fatalf("visited %d", len(got))
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 100; i++ {
		bt.Insert(intItem(i, RowID(i)))
	}
	var got []int64
	bt.AscendRange(types.Row{types.NewInt(10)}, types.Row{types.NewInt(20)}, func(it Item) bool {
		got = append(got, it.Key[0].Int())
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("range scan got %v", got)
	}
}

func TestBTreeAscendGEStopsEarly(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 100; i++ {
		bt.Insert(intItem(i, RowID(i)))
	}
	count := 0
	bt.AscendGE(types.Row{types.NewInt(95)}, func(it Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBTreeCompositeKeyPrefixScan(t *testing.T) {
	bt := NewBTree()
	// key = (category, id)
	for cat := int64(0); cat < 5; cat++ {
		for id := int64(0); id < 20; id++ {
			bt.Insert(Item{Key: types.Row{types.NewInt(cat), types.NewInt(id)}, RID: RowID(cat*100 + id)})
		}
	}
	var got int
	lo := types.Row{types.NewInt(2)}
	hi := types.Row{types.NewInt(2)}
	bt.AscendRange(lo, hi, func(it Item) bool {
		if it.Key[0].Int() != 2 {
			t.Fatalf("prefix scan leaked key %v", it.Key)
		}
		got++
		return true
	})
	if got != 20 {
		t.Fatalf("prefix scan found %d", got)
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := NewBTree()
	for _, v := range []int64{5, 3, 9, 1, 7} {
		bt.Insert(intItem(v, RowID(v)))
	}
	mn, _ := bt.Min()
	mx, _ := bt.Max()
	if mn.Key[0].Int() != 1 || mx.Key[0].Int() != 9 {
		t.Fatalf("min=%v max=%v", mn.Key, mx.Key)
	}
}

// Property: a B-tree behaves like a sorted set under random insert/delete.
func TestBTreeMatchesReferenceModel(t *testing.T) {
	f := func(ops []int16) bool {
		bt := NewBTree()
		ref := map[int64]bool{}
		for _, op := range ops {
			k := int64(op) % 50
			if k < 0 {
				k = -k
			}
			if op%2 == 0 {
				bt.Insert(intItem(k, RowID(k)))
				ref[k] = true
			} else {
				bt.Delete(intItem(k, RowID(k)))
				delete(ref, k)
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if len(bt.Get(types.Row{types.NewInt(k)})) != 1 {
				return false
			}
		}
		// ordered iteration matches sorted reference keys
		var keys []int64
		bt.Ascend(func(it Item) bool { keys = append(keys, it.Key[0].Int()); return true })
		if len(keys) != len(ref) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Stress the rebalancing paths with a large interleaved workload.
func TestBTreeChurn(t *testing.T) {
	bt := NewBTree()
	r := rand.New(rand.NewSource(99))
	live := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		k := int64(r.Intn(3000))
		if live[k] {
			if !bt.Delete(intItem(k, RowID(k))) {
				t.Fatalf("churn delete %d failed at step %d", k, i)
			}
			delete(live, k)
		} else {
			bt.Insert(intItem(k, RowID(k)))
			live[k] = true
		}
	}
	if bt.Len() != len(live) {
		t.Fatalf("len %d want %d", bt.Len(), len(live))
	}
	prev := int64(-1)
	bt.Ascend(func(it Item) bool {
		k := it.Key[0].Int()
		if k <= prev {
			t.Fatalf("order violation: %d after %d", k, prev)
		}
		prev = k
		return true
	})
}
