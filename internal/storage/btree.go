// Package storage implements the in-memory storage engine: table heaps,
// B-tree indexes, multi-version (MVCC) transactions and a write-ahead log of
// committed changes. The log is structurally the thing SQL Server's
// transactional replication "sniffs": the log reader agent in internal/repl
// reads committed transactions from it in commit order (paper §2.2).
package storage

import (
	"sync/atomic"

	"mtcache/internal/types"
)

// btreeOrder is the maximum number of keys per node. 64 keeps nodes around a
// cache line multiple and the tree shallow for our table sizes.
const btreeOrder = 64

// Item is one B-tree entry: an index key plus the RowID it points at. For
// non-unique indexes the RowID is appended to the comparison so every stored
// entry is distinct.
type Item struct {
	Key types.Row
	RID RowID
}

func cmpItem(a, b Item) int {
	if c := types.CompareRows(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.RID < b.RID:
		return -1
	case a.RID > b.RID:
		return 1
	}
	return 0
}

// BTree is an in-memory B+tree over Items with copy-on-write structural
// updates: Insert and Delete clone every node on the mutated path and publish
// a new root with a single atomic store. Mutators must still be externally
// serialized (the Store's per-table write latch does this), but any number of
// readers may traverse a pinned root concurrently — and keep iterating their
// snapshot while later writes publish new roots.
type BTree struct {
	root atomic.Pointer[node]
	size atomic.Int64
}

type node struct {
	items    []Item
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// clone returns a copy of n with fresh item and child slices. The pointed-to
// children are shared; the mutating path replaces only the ones it touches.
func (n *node) clone() *node {
	c := &node{items: append([]Item(nil), n.items...)}
	if n.children != nil {
		c.children = append([]*node(nil), n.children...)
	}
	return c
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	t := &BTree{}
	t.root.Store(&node{})
	return t
}

// pin returns the current root for a consistent read-only traversal.
func (t *BTree) pin() *node { return t.root.Load() }

// Len returns the number of entries.
func (t *BTree) Len() int { return int(t.size.Load()) }

// find locates the first index in n.items >= it, and whether an exact match
// exists at that index.
func (n *node) find(it Item) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpItem(n.items[mid], it) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && cmpItem(n.items[lo], it) == 0 {
		return lo, true
	}
	return lo, false
}

// Insert adds an entry; duplicate (key, rid) pairs are replaced.
func (t *BTree) Insert(it Item) {
	r := t.root.Load()
	if len(r.items) >= btreeOrder {
		nr := &node{children: []*node{r}}
		nr.splitChild(0)
		r = nr
	}
	nr, added := r.insert(it)
	t.root.Store(nr)
	if added {
		t.size.Add(1)
	}
}

// insert returns a path-copied node with the entry applied, and whether the
// entry is new.
func (n *node) insert(it Item) (*node, bool) {
	c := n.clone()
	i, found := c.find(it)
	if found {
		c.items[i] = it
		return c, false
	}
	if c.leaf() {
		c.items = append(c.items, Item{})
		copy(c.items[i+1:], c.items[i:])
		c.items[i] = it
		return c, true
	}
	if len(c.children[i].items) >= btreeOrder {
		c.splitChild(i)
		switch cmp := cmpItem(it, c.items[i]); {
		case cmp == 0:
			c.items[i] = it
			return c, false
		case cmp > 0:
			i++
		}
	}
	nc, added := c.children[i].insert(it)
	c.children[i] = nc
	return c, added
}

// splitChild splits the full child at index i, hoisting its median into n.
// n must be caller-owned (a fresh clone); the child is cloned before mutation.
func (n *node) splitChild(i int) {
	child := n.children[i].clone()
	n.children[i] = child
	mid := len(child.items) / 2
	median := child.items[mid]
	right := &node{items: append([]Item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes the entry equal to it (key and rid both matching).
// It reports whether an entry was removed.
func (t *BTree) Delete(it Item) bool {
	r := t.root.Load()
	nr, ok := r.delete(it)
	if !ok {
		return false
	}
	if len(nr.items) == 0 && !nr.leaf() {
		nr = nr.children[0]
	}
	t.root.Store(nr)
	t.size.Add(-1)
	return true
}

const minItems = btreeOrder / 2

// delete returns a path-copied node with the entry removed. When the entry is
// absent it returns the original node untouched (no clone is published).
func (n *node) delete(it Item) (*node, bool) {
	i, found := n.find(it)
	if n.leaf() {
		if !found {
			return n, false
		}
		c := n.clone()
		c.items = append(c.items[:i], c.items[i+1:]...)
		return c, true
	}
	c := n.clone()
	if found {
		// CLRS case 2: the key lives in this internal node.
		left := c.children[i].clone()
		right := c.children[i+1].clone()
		c.children[i], c.children[i+1] = left, right
		if len(left.items) > minItems {
			pred := left.max()
			c.items[i] = pred
			nl, _ := left.delete(pred)
			c.children[i] = nl
			return c, true
		}
		if len(right.items) > minItems {
			succ := right.min()
			c.items[i] = succ
			nr, _ := right.delete(succ)
			c.children[i+1] = nr
			return c, true
		}
		// Merge left + separator + right, then delete from the merged node.
		left.items = append(left.items, c.items[i])
		left.items = append(left.items, right.items...)
		left.children = append(left.children, right.children...)
		c.items = append(c.items[:i], c.items[i+1:]...)
		c.children = append(c.children[:i+1], c.children[i+2:]...)
		nm, ok := left.delete(it)
		c.children[i] = nm
		return c, ok
	}
	// CLRS case 3: descend, topping up the child first so it cannot underflow.
	c.ensureChild(i)
	j, _ := c.find(it)
	nc, ok := c.children[j].delete(it)
	if !ok {
		// Nothing removed: discard the restructured clone, keep the original.
		return n, false
	}
	c.children[j] = nc
	return c, true
}

func (n *node) max() Item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *node) min() Item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// ensureChild guarantees children[i] has more than minItems entries so a
// recursive delete cannot underflow it. n must be caller-owned (a fresh
// clone); every sibling it mutates is cloned first.
func (n *node) ensureChild(i int) {
	if len(n.children[i].items) > minItems {
		return
	}
	switch {
	case i > 0 && len(n.children[i-1].items) > minItems:
		// borrow from left sibling
		child, left := n.children[i].clone(), n.children[i-1].clone()
		n.children[i], n.children[i-1] = child, left
		child.items = append([]Item{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) > minItems:
		// borrow from right sibling
		child, right := n.children[i].clone(), n.children[i+1].clone()
		n.children[i], n.children[i+1] = child, right
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = right.items[1:]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
	default:
		// merge with a sibling (the absorbed right node is read, not mutated)
		if i == len(n.children)-1 {
			i--
		}
		child, right := n.children[i].clone(), n.children[i+1]
		n.children[i] = child
		child.items = append(child.items, n.items[i])
		child.items = append(child.items, right.items...)
		child.children = append(child.children, right.children...)
		n.items = append(n.items[:i], n.items[i+1:]...)
		n.children = append(n.children[:i+1], n.children[i+2:]...)
	}
}

// Get returns the RowIDs of all entries whose key equals key exactly.
func (t *BTree) Get(key types.Row) []RowID {
	var out []RowID
	t.AscendRange(key, key, func(it Item) bool {
		out = append(out, it.RID)
		return true
	})
	return out
}

// Ascend visits all entries in key order.
func (t *BTree) Ascend(fn func(Item) bool) {
	t.pin().ascend(Item{}, false, fn)
}

// AscendGE visits entries with key >= from (by key prefix comparison).
func (t *BTree) AscendGE(from types.Row, fn func(Item) bool) {
	t.pin().ascend(Item{Key: from, RID: -1 << 62}, true, fn)
}

// AscendRange visits entries whose key prefix is within [lo, hi]. Keys are
// compared only on the first len(lo)/len(hi) columns, so a multi-column
// index supports prefix range scans.
func (t *BTree) AscendRange(lo, hi types.Row, fn func(Item) bool) {
	t.pin().ascendRange(lo, hi, fn)
}

// ascendRange is the node-level range scan shared by BTree and IndexView.
func (n *node) ascendRange(lo, hi types.Row, fn func(Item) bool) {
	n.ascend(Item{Key: lo, RID: -1 << 62}, true, func(it Item) bool {
		prefix := it.Key
		if len(hi) < len(prefix) {
			prefix = prefix[:len(hi)]
		}
		if types.CompareRows(prefix, hi) > 0 {
			return false
		}
		return fn(it)
	})
}

func (n *node) ascend(from Item, bounded bool, fn func(Item) bool) bool {
	start := 0
	if bounded {
		start, _ = n.find(from)
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			b := bounded && i == start
			if !n.children[i].ascend(from, b, fn) {
				return false
			}
		}
		if i < len(n.items) {
			if !fn(n.items[i]) {
				return false
			}
		}
	}
	return true
}

// get collects the RowIDs of all entries equal to key in a pinned subtree.
func (n *node) get(key types.Row) []RowID {
	var out []RowID
	n.ascendRange(key, key, func(it Item) bool {
		out = append(out, it.RID)
		return true
	})
	return out
}

// Min returns the smallest entry, or a zero Item if empty.
func (t *BTree) Min() (Item, bool) {
	n := t.pin()
	if len(n.items) == 0 {
		return Item{}, false
	}
	return n.min(), true
}

// Max returns the largest entry, or a zero Item if empty.
func (t *BTree) Max() (Item, bool) {
	n := t.pin()
	if len(n.items) == 0 {
		return Item{}, false
	}
	return n.max(), true
}
