// Package storage implements the in-memory storage engine: table heaps,
// B-tree indexes, strict transactions and a write-ahead log of committed
// changes. The log is structurally the thing SQL Server's transactional
// replication "sniffs": the log reader agent in internal/repl reads committed
// transactions from it in commit order (paper §2.2).
package storage

import (
	"mtcache/internal/types"
)

// btreeOrder is the maximum number of keys per node. 64 keeps nodes around a
// cache line multiple and the tree shallow for our table sizes.
const btreeOrder = 64

// Item is one B-tree entry: an index key plus the RowID it points at. For
// non-unique indexes the RowID is appended to the comparison so every stored
// entry is distinct.
type Item struct {
	Key types.Row
	RID RowID
}

func cmpItem(a, b Item) int {
	if c := types.CompareRows(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.RID < b.RID:
		return -1
	case a.RID > b.RID:
		return 1
	}
	return 0
}

// BTree is an in-memory B+tree over Items. It is not internally synchronized;
// the Store serializes access.
type BTree struct {
	root *node
	size int
}

type node struct {
	items    []Item
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &node{}}
}

// Len returns the number of entries.
func (t *BTree) Len() int { return t.size }

// find locates the first index in n.items >= it, and whether an exact match
// exists at that index.
func (n *node) find(it Item) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpItem(n.items[mid], it) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && cmpItem(n.items[lo], it) == 0 {
		return lo, true
	}
	return lo, false
}

// Insert adds an entry; duplicate (key, rid) pairs are replaced.
func (t *BTree) Insert(it Item) {
	if len(t.root.items) >= btreeOrder {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	if t.root.insert(it) {
		t.size++
	}
}

// insert returns true if the entry is new.
func (n *node) insert(it Item) bool {
	i, found := n.find(it)
	if found {
		n.items[i] = it
		return false
	}
	if n.leaf() {
		n.items = append(n.items, Item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return true
	}
	if len(n.children[i].items) >= btreeOrder {
		n.splitChild(i)
		switch c := cmpItem(it, n.items[i]); {
		case c == 0:
			n.items[i] = it
			return false
		case c > 0:
			i++
		}
	}
	return n.children[i].insert(it)
}

// splitChild splits the full child at index i, hoisting its median into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := len(child.items) / 2
	median := child.items[mid]
	right := &node{items: append([]Item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes the entry equal to it (key and rid both matching).
// It reports whether an entry was removed.
func (t *BTree) Delete(it Item) bool {
	if !t.root.delete(it) {
		return false
	}
	t.size--
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	return true
}

const minItems = btreeOrder / 2

func (n *node) delete(it Item) bool {
	i, found := n.find(it)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// CLRS case 2: the key lives in this internal node.
		left, right := n.children[i], n.children[i+1]
		if len(left.items) > minItems {
			pred := left.max()
			n.items[i] = pred
			return left.delete(pred)
		}
		if len(right.items) > minItems {
			succ := right.min()
			n.items[i] = succ
			return right.delete(succ)
		}
		// Merge left + separator + right, then delete from the merged node.
		left.items = append(left.items, n.items[i])
		left.items = append(left.items, right.items...)
		left.children = append(left.children, right.children...)
		n.items = append(n.items[:i], n.items[i+1:]...)
		n.children = append(n.children[:i+1], n.children[i+2:]...)
		return left.delete(it)
	}
	// CLRS case 3: descend, topping up the child first so it cannot underflow.
	n.ensureChild(i)
	j, _ := n.find(it)
	return n.children[j].delete(it)
}

func (n *node) max() Item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *node) min() Item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// ensureChild guarantees children[i] has more than minItems entries so a
// recursive delete cannot underflow it.
func (n *node) ensureChild(i int) {
	if len(n.children[i].items) > minItems {
		return
	}
	switch {
	case i > 0 && len(n.children[i-1].items) > minItems:
		// borrow from left sibling
		child, left := n.children[i], n.children[i-1]
		child.items = append([]Item{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) > minItems:
		// borrow from right sibling
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = right.items[1:]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
	default:
		// merge with a sibling
		if i == len(n.children)-1 {
			i--
		}
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		child.items = append(child.items, right.items...)
		child.children = append(child.children, right.children...)
		n.items = append(n.items[:i], n.items[i+1:]...)
		n.children = append(n.children[:i+1], n.children[i+2:]...)
	}
}

// Get returns the RowIDs of all entries whose key equals key exactly.
func (t *BTree) Get(key types.Row) []RowID {
	var out []RowID
	t.AscendRange(key, key, func(it Item) bool {
		out = append(out, it.RID)
		return true
	})
	return out
}

// Ascend visits all entries in key order.
func (t *BTree) Ascend(fn func(Item) bool) {
	t.root.ascend(Item{}, false, fn)
}

// AscendGE visits entries with key >= from (by key prefix comparison).
func (t *BTree) AscendGE(from types.Row, fn func(Item) bool) {
	t.root.ascend(Item{Key: from, RID: -1 << 62}, true, fn)
}

// AscendRange visits entries whose key prefix is within [lo, hi]. Keys are
// compared only on the first len(lo)/len(hi) columns, so a multi-column
// index supports prefix range scans.
func (t *BTree) AscendRange(lo, hi types.Row, fn func(Item) bool) {
	t.AscendGE(lo, func(it Item) bool {
		prefix := it.Key
		if len(hi) < len(prefix) {
			prefix = prefix[:len(hi)]
		}
		if types.CompareRows(prefix, hi) > 0 {
			return false
		}
		return fn(it)
	})
}

func (n *node) ascend(from Item, bounded bool, fn func(Item) bool) bool {
	start := 0
	if bounded {
		start, _ = n.find(from)
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			b := bounded && i == start
			if !n.children[i].ascend(from, b, fn) {
				return false
			}
		}
		if i < len(n.items) {
			if !fn(n.items[i]) {
				return false
			}
		}
	}
	return true
}

// Min returns the smallest entry, or a zero Item if empty.
func (t *BTree) Min() (Item, bool) {
	n := t.root
	if len(n.items) == 0 {
		return Item{}, false
	}
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0], true
}

// Max returns the largest entry, or a zero Item if empty.
func (t *BTree) Max() (Item, bool) {
	if len(t.root.items) == 0 {
		return Item{}, false
	}
	return t.root.max(), true
}
