package storage

import "mtcache/internal/types"

// Range-partitioned scan APIs: split one pinned snapshot into disjoint
// partitions so N parallel workers can scan without any coordination. Heap
// partitions are contiguous slot ranges; index partitions are key ranges cut
// at B-tree separator keys taken from the pinned root. Both views read the
// same immutable snapshot, so partition bounds computed once stay valid for
// the whole scan: slots only grow (new slots are invisible to the snapshot)
// and version GC never reclaims what a live snapshot can see.

// SlotRange is a half-open heap-slot interval [Lo, Hi).
type SlotRange struct {
	Lo, Hi int
}

// SlotPartitions splits the heap's slot space [0, Cap()) into at most n
// contiguous half-open ranges of near-equal size. Every visible row lives in
// exactly one range; ranges may also cover empty or invisible slots.
func (tv *TableView) SlotPartitions(n int) []SlotRange {
	total := tv.Cap()
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if total == 0 {
		return nil
	}
	out := make([]SlotRange, 0, n)
	chunk := (total + n - 1) / n
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		out = append(out, SlotRange{Lo: lo, Hi: hi})
	}
	return out
}

// ScanRange calls fn for every row visible in slots [lo, hi), in slot order.
// It stops early if fn returns false.
func (tv *TableView) ScanRange(lo, hi int, fn func(RowID, types.Row) bool) {
	if lo < 0 {
		lo = 0
	}
	if c := tv.Cap(); hi > c {
		hi = c
	}
	for i := lo; i < hi; i++ {
		if row := tv.At(i); row != nil {
			if !fn(RowID(i), row) {
				return
			}
		}
	}
}

// SeparatorKeys returns up to n-1 sorted keys that cut the pinned index into
// at most n key ranges of roughly equal entry counts. The separators come
// from the top one or two levels of the pinned root, so the call is O(fanout)
// regardless of index size. Partition i covers [sep[i-1], sep[i]) with the
// first partition open below and the last open above; AscendPartition
// iterates one such range.
func (iv *IndexView) SeparatorKeys(n int) []types.Row {
	if n <= 1 || iv.root == nil {
		return nil
	}
	var cand []types.Row
	if iv.root.leaf() {
		for _, it := range iv.root.items {
			cand = append(cand, it.Key)
		}
	} else {
		// In-order walk of the top two levels: child items interleaved with
		// the root's own separator items keeps candidates sorted.
		for i, ch := range iv.root.children {
			for _, it := range ch.items {
				cand = append(cand, it.Key)
			}
			if i < len(iv.root.items) {
				cand = append(cand, iv.root.items[i].Key)
			}
		}
	}
	// Drop duplicate keys (non-unique indexes) so no partition is empty by
	// construction.
	var keys []types.Row
	for _, k := range cand {
		if len(keys) == 0 || types.CompareRows(keys[len(keys)-1], k) != 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) <= n-1 {
		return keys
	}
	out := make([]types.Row, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, keys[i*len(keys)/n])
	}
	return out
}

// AscendPartition visits visible index entries with keys in [lo, hi), in key
// order. A nil lo means from the start, a nil hi means to the end. Unlike
// AscendRange, the upper bound is exclusive and compared on the full key
// (shorter bounds exclude all entries sharing the prefix), which is what
// makes partitions cut at SeparatorKeys disjoint: entry k goes to the first
// partition whose upper separator is > k.
func (iv *IndexView) AscendPartition(lo, hi types.Row, fn func(Item) bool) {
	visit := iv.filtered(fn)
	bounded := func(it Item) bool {
		if hi != nil && types.CompareRows(it.Key, hi) >= 0 {
			return false
		}
		return visit(it)
	}
	if lo == nil {
		iv.root.ascend(Item{}, false, bounded)
		return
	}
	iv.root.ascend(Item{Key: lo, RID: -1 << 62}, true, bounded)
}
