package storage

import (
	"fmt"
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/types"
)

// newPartStore builds a table with a secondary index on cname and n
// committed rows (i, name_i%7).
func newPartStore(t *testing.T, n int64) *Store {
	t.Helper()
	s := NewStore()
	meta := custMeta()
	meta.Indexes = []*catalog.Index{{Name: "ix_name", Table: "customer", Columns: []int{1}}}
	if err := s.CreateTable(meta); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(true)
	for i := int64(0); i < n; i++ {
		row := types.Row{types.NewInt(i), types.NewString(fmt.Sprintf("name_%03d", i%7))}
		if _, err := tx.Insert("customer", row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSlotPartitionsCoverDisjointly(t *testing.T) {
	s := newPartStore(t, 103)
	tx := s.Begin(false)
	defer tx.Abort()
	tv := tx.Table("customer")
	for _, n := range []int{1, 2, 3, 4, 8, 16, 1000} {
		parts := tv.SlotPartitions(n)
		if len(parts) == 0 || len(parts) > n {
			t.Fatalf("n=%d: %d partitions", n, len(parts))
		}
		// Contiguous cover of [0, Cap()) with no gaps or overlaps.
		next := 0
		total := 0
		for _, p := range parts {
			if p.Lo != next || p.Hi <= p.Lo {
				t.Fatalf("n=%d: bad range %+v (want lo=%d)", n, p, next)
			}
			next = p.Hi
			cnt := 0
			tv.ScanRange(p.Lo, p.Hi, func(RowID, types.Row) bool { cnt++; return true })
			total += cnt
		}
		if next != tv.Cap() {
			t.Fatalf("n=%d: cover ends at %d, cap %d", n, next, tv.Cap())
		}
		if total != 103 {
			t.Fatalf("n=%d: partitions saw %d rows, want 103", n, total)
		}
	}
}

func TestSlotPartitionsEmptyTable(t *testing.T) {
	s := newCustStore(t)
	tx := s.Begin(false)
	defer tx.Abort()
	if parts := tx.Table("customer").SlotPartitions(4); parts != nil {
		t.Fatalf("empty table partitions: %v", parts)
	}
}

// TestSeparatorKeysPartitionIndex checks the partition property end to end:
// for any worker count, iterating every [sep[i-1], sep[i]) range visits each
// visible index entry exactly once, in the same order as a full Ascend.
func TestSeparatorKeysPartitionIndex(t *testing.T) {
	s := newPartStore(t, 200)
	tx := s.Begin(false)
	defer tx.Abort()
	for _, idxName := range []string{"__pk", "ix_name"} {
		iv := tx.Table("customer").Index(idxName)
		var full []RowID
		iv.Ascend(func(it Item) bool { full = append(full, it.RID); return true })
		if len(full) != 200 {
			t.Fatalf("%s: full scan saw %d entries", idxName, len(full))
		}
		for _, n := range []int{2, 3, 4, 8} {
			seps := iv.SeparatorKeys(n)
			if len(seps) > n-1 {
				t.Fatalf("%s n=%d: %d separators", idxName, n, len(seps))
			}
			for i := 1; i < len(seps); i++ {
				if types.CompareRows(seps[i-1], seps[i]) >= 0 {
					t.Fatalf("%s n=%d: separators not strictly sorted", idxName, n)
				}
			}
			var got []RowID
			for i := 0; i <= len(seps); i++ {
				var lo, hi types.Row
				if i > 0 {
					lo = seps[i-1]
				}
				if i < len(seps) {
					hi = seps[i]
				}
				iv.AscendPartition(lo, hi, func(it Item) bool { got = append(got, it.RID); return true })
			}
			if len(got) != len(full) {
				t.Fatalf("%s n=%d: partitions saw %d entries, want %d", idxName, n, len(got), len(full))
			}
			for i := range full {
				if got[i] != full[i] {
					t.Fatalf("%s n=%d: entry %d = rid %d, want %d", idxName, n, i, got[i], full[i])
				}
			}
		}
	}
}

// TestAscendPartitionRespectsVisibility: entries committed after the reader's
// snapshot must not appear in any partition.
func TestAscendPartitionRespectsVisibility(t *testing.T) {
	s := newPartStore(t, 50)
	rd := s.Begin(false)
	defer rd.Abort()

	wr := s.Begin(true)
	for i := int64(1000); i < 1010; i++ {
		if _, err := wr.Insert("customer", types.Row{types.NewInt(i), types.NewString("zzz")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wr.Commit(); err != nil {
		t.Fatal(err)
	}

	iv := rd.Table("customer").Index("__pk")
	cnt := 0
	iv.AscendPartition(nil, nil, func(Item) bool { cnt++; return true })
	if cnt != 50 {
		t.Fatalf("snapshot partition scan saw %d entries, want 50", cnt)
	}
}
