package storage

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mtcache/internal/types"
)

func randomValue(r *rand.Rand) types.Value {
	switch r.Intn(6) {
	case 0:
		return types.Null
	case 1:
		return types.NewBool(r.Intn(2) == 1)
	case 2:
		return types.NewInt(r.Int63() - r.Int63())
	case 3:
		return types.NewFloat(math.Float64frombits(r.Uint64()))
	case 4:
		b := make([]byte, r.Intn(40))
		r.Read(b)
		return types.NewString(string(b))
	default:
		return types.NewTime(time.Unix(0, r.Int63()-r.Int63()).UTC())
	}
}

func randomRow(r *rand.Rand) types.Row {
	if r.Intn(4) == 0 {
		return nil
	}
	row := make(types.Row, r.Intn(8))
	for i := range row {
		row[i] = randomValue(r)
	}
	return row
}

// TestCodecRoundTrip checks that randomized commit records survive
// encode/decode byte-for-byte, including NaN floats, empty strings, nil
// rows, zero-change records and zero-length rows.
func TestCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20030609))
	for i := 0; i < 500; i++ {
		rec := &CommitRecord{
			LSN:        LSN(r.Uint64() >> 1),
			TxnID:      r.Int63() - r.Int63(),
			CommitTime: time.Unix(0, r.Int63()).UTC(),
			Changes:    make([]ChangeRec, r.Intn(5)),
		}
		for c := range rec.Changes {
			rec.Changes[c] = ChangeRec{
				Table:  string(rune('a' + r.Intn(26))),
				Op:     ChangeOp(r.Intn(3)),
				Before: randomRow(r),
				After:  randomRow(r),
			}
		}
		payload, err := encodeCommitRecord(rec)
		if err != nil {
			t.Fatalf("encode #%d: %v", i, err)
		}
		got, err := decodeCommitRecord(payload)
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if rec.Changes == nil {
			rec.Changes = []ChangeRec{}
		}
		if !recordsEqual(rec, got) {
			t.Fatalf("round trip #%d:\n in: %+v\nout: %+v", i, rec, got)
		}
	}
}

// recordsEqual compares records treating NaN floats as equal to themselves
// (reflect.DeepEqual on time.Time works because both sides are UTC wall
// clocks with no monotonic component).
func recordsEqual(a, b *CommitRecord) bool {
	if a.LSN != b.LSN || a.TxnID != b.TxnID || !a.CommitTime.Equal(b.CommitTime) || len(a.Changes) != len(b.Changes) {
		return false
	}
	for i := range a.Changes {
		ca, cb := &a.Changes[i], &b.Changes[i]
		if ca.Table != cb.Table || ca.Op != cb.Op ||
			!rowsEqualBits(ca.Before, cb.Before) || !rowsEqualBits(ca.After, cb.After) {
			return false
		}
	}
	return true
}

func rowsEqualBits(a, b types.Row) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		va, vb := a[i], b[i]
		if va.K != vb.K {
			return false
		}
		switch va.K {
		case types.KindFloat:
			if math.Float64bits(va.F) != math.Float64bits(vb.F) {
				return false
			}
		case types.KindTime:
			if !va.T.Equal(vb.T) {
				return false
			}
		default:
			if !reflect.DeepEqual(va, vb) {
				return false
			}
		}
	}
	return true
}

// TestCodecRejectsTruncation checks that every proper prefix of a valid
// payload fails to decode rather than yielding a wrong record.
func TestCodecRejectsTruncation(t *testing.T) {
	rec := &CommitRecord{
		LSN: 42, TxnID: 7, CommitTime: time.Unix(0, 1054166400000000000).UTC(),
		Changes: []ChangeRec{{
			Table: "item", Op: OpUpdate,
			Before: types.Row{types.NewInt(1), types.NewString("before")},
			After:  types.Row{types.NewInt(1), types.NewString("after")},
		}},
	}
	payload, err := encodeCommitRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeCommitRecord(payload[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(payload))
		}
	}
	if _, err := decodeCommitRecord(append(append([]byte{}, payload...), 0)); err == nil {
		t.Fatal("payload with a trailing byte decoded without error")
	}
}

func BenchmarkEncodeCommitRecord(b *testing.B) {
	rec := &CommitRecord{
		LSN: 12345, TxnID: 7, CommitTime: time.Unix(0, 1054166400000000000).UTC(),
		Changes: []ChangeRec{{
			Table: "t", Op: OpInsert,
			After: types.Row{types.NewInt(99), types.NewString("payload-for-one-commit-record")},
		}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeCommitRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}
