package storage

// checkpoint.go snapshots the MVCC heap to disk so recovery replays only
// the WAL tail. A checkpoint is one CRC-framed gob image of every table's
// visible rows, taken under an MVCC snapshot (writers keep committing), and
// stamped with the snapshot's AsOfLSN: the first LSN recovery must replay
// on top of the image. Checkpoints are written to a temp file, fsynced and
// renamed, so a crash mid-checkpoint leaves the previous one intact.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"mtcache/internal/metrics"
	"mtcache/internal/querystore"
	"mtcache/internal/types"
)

// checkpointImage is the serialized heap snapshot.
type checkpointImage struct {
	WalEnd LSN // first LSN to replay on top of the image
	Tables []checkpointTable
}

type checkpointTable struct {
	Name string
	Rows []types.Row
}

// Checkpoint writes a heap snapshot to the data directory and returns the
// LSN recovery would replay from. It runs under an MVCC read snapshot, so
// commits proceed concurrently; the image and its WalEnd are consistent by
// the store's snapMark invariant. The previous checkpoint file is removed
// only after the new one is durable.
func (s *Store) Checkpoint() (LSN, error) {
	if s.durable == nil {
		return 0, errors.New("storage: store has no durable log")
	}
	start := time.Now()
	t := s.Begin(false)
	walEnd := t.AsOfLSN()
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for k := range s.tables {
		names = append(names, k)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	img := checkpointImage{WalEnd: walEnd}
	rows := 0
	for _, name := range names {
		tv := t.Table(name)
		if tv == nil {
			continue // dropped between the list and the read; not in the image
		}
		ct := checkpointTable{Name: tv.Meta().Name, Rows: tv.Rows()}
		rows += len(ct.Rows)
		img.Tables = append(img.Tables, ct)
	}
	t.Abort()

	// The log must be durable up to the image's WalEnd before the checkpoint
	// claims recovery can start there (matters under interval/none policies,
	// where records linger in the flush buffer).
	if err := s.durable.flush(true); err != nil {
		return 0, err
	}
	if err := s.durable.writeCheckpoint(&img); err != nil {
		return 0, err
	}
	s.ckptLSN.Store(int64(walEnd))
	metrics.Default.Counter("storage.checkpoints").Add(1)
	querystore.Emit("checkpoint",
		"lsn", strconv.FormatUint(uint64(walEnd), 10),
		"rows", strconv.Itoa(rows),
		"ms", strconv.FormatInt(time.Since(start).Milliseconds(), 10))
	metrics.Default.Gauge("storage.checkpoint_lsn").Set(float64(walEnd))
	metrics.Default.Histogram("storage.checkpoint_seconds").ObserveDuration(time.Since(start))
	metrics.Default.Gauge("storage.checkpoint_rows").Set(float64(rows))
	return walEnd, nil
}

// CheckpointLSN returns the WAL position of the latest completed checkpoint
// (0 when none has been taken).
func (s *Store) CheckpointLSN() LSN { return LSN(s.ckptLSN.Load()) }

// writeCheckpoint durably writes one checkpoint image: temp file, fsync,
// rename, directory fsync; then older checkpoint files are deleted.
func (d *diskWAL) writeCheckpoint(img *checkpointImage) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(img); err != nil {
		return fmt.Errorf("storage: encode checkpoint: %w", err)
	}
	data := append([]byte(ckptMagic), appendFrame(nil, payload.Bytes())...)

	tmp := filepath.Join(d.dir, ckptName(img.WalEnd)+".tmp")
	final := filepath.Join(d.dir, ckptName(img.WalEnd))
	f, err := d.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		return err
	}
	// Retire older checkpoints (best effort — recovery picks the newest
	// valid one regardless).
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	for _, name := range names {
		if lsn, ok := parseSeqName(name, "ckpt-", ".ckpt"); ok && lsn < img.WalEnd {
			d.fs.Remove(filepath.Join(d.dir, name)) //nolint:errcheck
		}
	}
	return nil
}

// loadCheckpoint returns the newest valid checkpoint image, or nil when the
// directory has none. Corrupt checkpoint files are skipped (counted in
// storage.ckpt_crc_errors) and the next older one is tried.
func (d *diskWAL) loadCheckpoint() *checkpointImage {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var lsns []LSN
	for _, name := range names {
		if lsn, ok := parseSeqName(name, "ckpt-", ".ckpt"); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for _, lsn := range lsns {
		img, err := readCheckpointFile(d.fs, filepath.Join(d.dir, ckptName(lsn)))
		if err != nil {
			metrics.Default.Counter("storage.ckpt_crc_errors").Add(1)
			continue
		}
		return img
	}
	return nil
}

func readCheckpointFile(fsys FS, path string) (*checkpointImage, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := &chunkReader{r: f}
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != ckptMagic {
		return nil, errBadFrame
	}
	payload, err := readFrame(r, 1<<30)
	if err != nil {
		return nil, errBadFrame
	}
	img := new(checkpointImage)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(img); err != nil {
		return nil, fmt.Errorf("storage: decode checkpoint: %w", err)
	}
	return img, nil
}
