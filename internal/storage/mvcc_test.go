package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/types"
)

func insertCust(t *testing.T, s *Store, id int64, name string) {
	t.Helper()
	tx := s.Begin(true)
	if _, err := tx.Insert("customer", types.Row{types.NewInt(id), types.NewString(name)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func custName(t *testing.T, tx *Txn, id int64) (string, bool) {
	t.Helper()
	td := tx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(id)})
	if rid < 0 {
		return "", false
	}
	return td.Get(rid)[1].Str(), true
}

// TestSnapshotIsolation: a reader pinned before a commit keeps seeing the
// pre-commit state; a reader pinned after sees the new state.
func TestSnapshotIsolation(t *testing.T) {
	s := newCustStore(t)
	insertCust(t, s, 1, "old")

	before := s.Begin(false)
	defer before.Abort()

	wtx := s.Begin(true)
	td := wtx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(1)})
	if err := wtx.Update("customer", rid, types.Row{types.NewInt(1), types.NewString("new")}); err != nil {
		t.Fatal(err)
	}
	if _, err := wtx.Insert("customer", types.Row{types.NewInt(2), types.NewString("extra")}); err != nil {
		t.Fatal(err)
	}
	if _, err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}

	if name, ok := custName(t, before, 1); !ok || name != "old" {
		t.Errorf("pinned snapshot sees %q, want old", name)
	}
	if _, ok := custName(t, before, 2); ok {
		t.Error("pinned snapshot sees a row inserted after it")
	}
	if before.Table("customer").Count() != 1 {
		t.Errorf("pinned snapshot count %d, want 1", before.Table("customer").Count())
	}

	after := s.Begin(false)
	defer after.Abort()
	if name, ok := custName(t, after, 1); !ok || name != "new" {
		t.Errorf("new snapshot sees %q, want new", name)
	}
	if after.Table("customer").Count() != 2 {
		t.Errorf("new snapshot count %d, want 2", after.Table("customer").Count())
	}
}

// TestReadersNeverBlockOnOpenWriter: with an uncommitted write transaction
// holding the table latch, read transactions still begin, scan and finish.
// Under the seed's store-wide 2PL this deadlocks (the reader waits for the
// writer's exclusive lock).
func TestReadersNeverBlockOnOpenWriter(t *testing.T) {
	s := newCustStore(t)
	insertCust(t, s, 1, "committed")

	wtx := s.Begin(true)
	if _, err := wtx.Insert("customer", types.Row{types.NewInt(2), types.NewString("uncommitted")}); err != nil {
		t.Fatal(err)
	}

	done := make(chan int, 1)
	go func() {
		rtx := s.Begin(false)
		defer rtx.Abort()
		done <- rtx.Table("customer").Count()
	}()
	select {
	case n := <-done:
		if n != 1 {
			t.Errorf("reader saw %d rows (uncommitted write leaked?)", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader blocked behind an open write transaction")
	}
	if _, err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterReadsOwnWrites: a write transaction's view shows its uncommitted
// changes (latest-plus-own visibility), including through indexes.
func TestWriterReadsOwnWrites(t *testing.T) {
	s := newCustStore(t)
	wtx := s.Begin(true)
	td := wtx.Table("customer")
	if _, err := wtx.Insert("customer", types.Row{types.NewInt(7), types.NewString("mine")}); err != nil {
		t.Fatal(err)
	}
	// The view was created before the insert; PKLookup must still find it.
	rid := td.PKLookup(types.Row{types.NewInt(7)})
	if rid < 0 {
		t.Fatal("writer cannot see its own insert through the PK index")
	}
	if got := td.Get(rid)[1].Str(); got != "mine" {
		t.Errorf("writer view row %q", got)
	}
	wtx.Abort()
}

// TestDeadlockDetection: two writers latch two tables in opposite orders;
// one of them must get ErrDeadlock instead of waiting forever, and its
// commit must fail and roll back.
func TestDeadlockDetection(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"t1", "t2"} {
		meta := &catalog.Table{
			Name:       name,
			Columns:    []catalog.Column{{Name: "id", Type: types.KindInt, NotNull: true}},
			PrimaryKey: []int{0},
		}
		if err := s.CreateTable(meta); err != nil {
			t.Fatal(err)
		}
	}

	txA := s.Begin(true)
	txB := s.Begin(true)
	if _, err := txA.Insert("t1", types.Row{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txB.Insert("t2", types.Row{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}

	// A requests t2 (held by B) in the background, then B requests t1 (held
	// by A) — closing the cycle. Exactly the late-arriving edge must fail.
	aDone := make(chan error, 1)
	go func() {
		_, err := txA.Insert("t2", types.Row{types.NewInt(2)})
		aDone <- err
	}()
	// Give A time to enqueue its wait before B closes the cycle.
	time.Sleep(50 * time.Millisecond)
	_, errB := txB.Insert("t1", types.Row{types.NewInt(2)})
	if !errors.Is(errB, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock for the cycle-closing request, got %v", errB)
	}
	if !errors.Is(txB.Err(), ErrDeadlock) {
		t.Error("transaction error not sticky after deadlock")
	}
	if _, err := txB.Commit(); !errors.Is(err, ErrDeadlock) {
		t.Errorf("commit of deadlocked txn: %v, want ErrDeadlock (and rollback)", err)
	}
	// B's abort released t2; A's blocked insert proceeds and commits.
	if err := <-aDone; err != nil {
		t.Fatalf("victim released, but A's insert failed: %v", err)
	}
	if _, err := txA.Commit(); err != nil {
		t.Fatal(err)
	}

	rtx := s.Begin(false)
	defer rtx.Abort()
	if n := rtx.Table("t2").Count(); n != 1 {
		t.Errorf("t2 rows %d, want 1 (B's insert rolled back, A's applied)", n)
	}
	if n := rtx.Table("t1").Count(); n != 1 {
		t.Errorf("t1 rows %d, want 1 (only A's original insert)", n)
	}
}

// TestVersionGC: overwritten versions are reclaimed once no snapshot needs
// them, and retained while one does.
func TestVersionGC(t *testing.T) {
	s := newCustStore(t)
	insertCust(t, s, 1, "v0")

	pinned := s.Begin(false) // pins the "v0" snapshot

	for i := 0; i < 10; i++ {
		wtx := s.Begin(true)
		td := wtx.Table("customer")
		rid := td.PKLookup(types.Row{types.NewInt(1)})
		if err := wtx.Update("customer", rid, types.Row{types.NewInt(1), types.NewString("v")}); err != nil {
			t.Fatal(err)
		}
		if _, err := wtx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned snapshot holds the oldest version; GC may trim the middle
	// of the chain but must preserve what the snapshot sees.
	s.GC()
	if name, ok := custName(t, pinned, 1); !ok || name != "v0" {
		t.Fatalf("pinned snapshot sees %q after GC, want v0", name)
	}
	pinned.Abort()

	if reclaimed := s.GC(); reclaimed == 0 {
		t.Error("GC reclaimed nothing after the last snapshot unpinned")
	}
	rtx := s.Begin(false)
	defer rtx.Abort()
	if name, ok := custName(t, rtx, 1); !ok || name != "v" {
		t.Errorf("row after GC: %q", name)
	}
}

// TestGCReclaimsDeletedRowsAndIndexEntries: a deleted row's slot and index
// entries disappear after GC, and the slot is reused by a later insert.
func TestGCReclaimsDeletedRowsAndIndexEntries(t *testing.T) {
	s := newCustStore(t)
	insertCust(t, s, 1, "doomed")

	wtx := s.Begin(true)
	td := wtx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(1)})
	if err := wtx.Delete("customer", rid); err != nil {
		t.Fatal(err)
	}
	if _, err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}

	if reclaimed := s.GC(); reclaimed < 1 {
		t.Fatalf("GC reclaimed %d versions, want >= 1", reclaimed)
	}
	pk := s.Table("customer").index("__pk")
	if pk.tree.Len() != 0 {
		t.Errorf("PK index still has %d entries after GC of the only row", pk.tree.Len())
	}

	// The freed slot is reused.
	wtx = s.Begin(true)
	newRid, err := wtx.Insert("customer", types.Row{types.NewInt(2), types.NewString("reuse")})
	if err != nil {
		t.Fatal(err)
	}
	if newRid != rid {
		t.Errorf("insert after GC got slot %d, want reused slot %d", newRid, rid)
	}
	if _, err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestIndexScanNoDuplicatesAcrossKeyChange: after an update moves a row to a
// new index key, the stale entry under the old key must not surface the row
// twice (or at all, under its old key) — and an old snapshot still finds the
// old image under the old key.
func TestIndexScanNoDuplicatesAcrossKeyChange(t *testing.T) {
	s := NewStore()
	meta := custMeta()
	meta.Indexes = []*catalog.Index{{Name: "ix_name", Table: "customer", Columns: []int{1}}}
	if err := s.CreateTable(meta); err != nil {
		t.Fatal(err)
	}
	insertCust(t, s, 1, "aaa")

	old := s.Begin(false)
	defer old.Abort()

	wtx := s.Begin(true)
	td := wtx.Table("customer")
	rid := td.PKLookup(types.Row{types.NewInt(1)})
	if err := wtx.Update("customer", rid, types.Row{types.NewInt(1), types.NewString("zzz")}); err != nil {
		t.Fatal(err)
	}
	if _, err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}

	scanNames := func(tx *Txn) []string {
		var out []string
		ix := tx.Table("customer").Index("ix_name")
		ix.AscendRange(types.Row{types.NewString("a")}, types.Row{types.NewString("zzzz")}, func(it Item) bool {
			out = append(out, tx.Table("customer").Get(it.RID)[1].Str())
			return true
		})
		return out
	}

	if got := scanNames(old); len(got) != 1 || got[0] != "aaa" {
		t.Errorf("old snapshot index scan: %v, want [aaa]", got)
	}
	fresh := s.Begin(false)
	defer fresh.Abort()
	if got := scanNames(fresh); len(got) != 1 || got[0] != "zzz" {
		t.Errorf("fresh snapshot index scan: %v, want [zzz] (stale entry leaked?)", got)
	}
	if rids := fresh.Table("customer").Index("ix_name").Get(types.Row{types.NewString("aaa")}); len(rids) != 0 {
		t.Errorf("fresh snapshot still resolves the old key: %v", rids)
	}
}

// TestAsOfLSNPairsSnapshotWithLog: a read transaction's AsOfLSN covers
// exactly the commits its snapshot sees, even with commits landing around
// Begin. The replication snapshot protocol depends on this pairing.
func TestAsOfLSNPairsSnapshotWithLog(t *testing.T) {
	s := newCustStore(t)
	insertCust(t, s, 1, "a")
	rtx := s.Begin(false)
	asOf := rtx.AsOfLSN()
	insertCust(t, s, 2, "b")

	if n := rtx.Table("customer").Count(); n != 1 {
		t.Fatalf("snapshot rows %d, want 1", n)
	}
	// Replaying the WAL from asOf over the snapshot must yield current state:
	// exactly the one commit after the snapshot.
	recs := s.WAL().ReadFrom(asOf, 0)
	if len(recs) != 1 || recs[0].Changes[0].After[0].Int() != 2 {
		t.Errorf("WAL from AsOfLSN: %d records, want exactly the post-snapshot commit", len(recs))
	}
	rtx.Abort()
}

// TestConcurrentReadersSeeCommittedCountsOnly: readers racing a stream of
// multi-row transactions must always observe a multiple of the batch size —
// never a torn partial batch. This is the storage-level version of the
// repl torn-read test.
func TestConcurrentReadersSeeCommittedCountsOnly(t *testing.T) {
	s := newCustStore(t)
	const batch = 10
	const batches = 30
	stop := make(chan struct{})
	var torn []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx := s.Begin(false)
				n := rtx.Table("customer").Count()
				rtx.Abort()
				if n%batch != 0 {
					mu.Lock()
					torn = append(torn, n)
					mu.Unlock()
					return
				}
			}
		}()
	}
	for b := 0; b < batches; b++ {
		wtx := s.Begin(true)
		for i := 0; i < batch; i++ {
			id := int64(b*batch + i)
			if _, err := wtx.Insert("customer", types.Row{types.NewInt(id), types.NewString("x")}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := wtx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if len(torn) > 0 {
		t.Fatalf("readers observed torn batch counts: %v", torn)
	}
}
