package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/types"
)

func durTestMeta(name string) *catalog.Table {
	return &catalog.Table{
		Name: name,
		Columns: []catalog.Column{
			{Name: "id", Type: types.KindInt, NotNull: true},
			{Name: "v", Type: types.KindString},
		},
		PrimaryKey: []int{0},
	}
}

func newDurableStore(t *testing.T, dir string, opts DurabilityOptions) *Store {
	t.Helper()
	opts.Dir = dir
	s := NewStore()
	if err := s.EnableDurability(opts); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	if err := s.CreateTable(durTestMeta("t")); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return s
}

func mustCommitInsert(t *testing.T, s *Store, id int64, v string) LSN {
	t.Helper()
	tx := s.Begin(true)
	if _, err := tx.Insert("t", types.Row{types.NewInt(id), types.NewString(v)}); err != nil {
		t.Fatalf("insert %d: %v", id, err)
	}
	lsn, err := tx.Commit()
	if err != nil {
		t.Fatalf("commit %d: %v", id, err)
	}
	return lsn
}

func sortedRows(t *testing.T, s *Store) []string {
	t.Helper()
	tx := s.Begin(false)
	defer tx.Abort()
	tv := tx.Table("t")
	if tv == nil {
		t.Fatal("table t missing")
	}
	var out []string
	for _, r := range tv.Rows() {
		out = append(out, fmt.Sprintf("%d|%s", r[0].I, r[1].S))
	}
	sort.Strings(out)
	return out
}

func TestDurableRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncGroup, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := newDurableStore(t, dir, DurabilityOptions{Policy: policy})
			for i := 1; i <= 20; i++ {
				mustCommitInsert(t, s, int64(i), fmt.Sprintf("row%d", i))
			}
			// An update and a delete exercise the non-insert replay paths.
			tx := s.Begin(true)
			tv := tx.Table("t")
			rid := tv.PKLookup(types.Row{types.NewInt(3)})
			if err := tx.Update("t", rid, types.Row{types.NewInt(3), types.NewString("updated")}); err != nil {
				t.Fatalf("update: %v", err)
			}
			rid = tv.PKLookup(types.Row{types.NewInt(7)})
			if err := tx.Delete("t", rid); err != nil {
				t.Fatalf("delete: %v", err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			want := sortedRows(t, s)
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			r := newDurableStore(t, dir, DurabilityOptions{Policy: policy})
			stats, err := r.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if stats.ReplayedTxns != 21 {
				t.Fatalf("replayed %d txns, want 21", stats.ReplayedTxns)
			}
			if got := sortedRows(t, r); !equalStrings(got, want) {
				t.Fatalf("recovered rows mismatch:\n got %v\nwant %v", got, want)
			}
			if r.WAL().End() != s.WAL().End() {
				t.Fatalf("WAL end %d after recovery, want %d", r.WAL().End(), s.WAL().End())
			}
			r.Close()
		})
	}
}

func TestRecoveryFromCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	s := newDurableStore(t, dir, DurabilityOptions{Policy: SyncGroup})
	for i := 1; i <= 10; i++ {
		mustCommitInsert(t, s, int64(i), "pre")
	}
	ckLSN, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ckLSN != 11 {
		t.Fatalf("checkpoint LSN %d, want 11", ckLSN)
	}
	for i := 11; i <= 15; i++ {
		mustCommitInsert(t, s, int64(i), "post")
	}
	want := sortedRows(t, s)
	s.Close()

	r := newDurableStore(t, dir, DurabilityOptions{Policy: SyncGroup})
	stats, err := r.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.CheckpointLSN != 11 || stats.CheckpointRows != 10 {
		t.Fatalf("checkpoint stats = LSN %d rows %d, want 11/10", stats.CheckpointLSN, stats.CheckpointRows)
	}
	if stats.ReplayedTxns != 5 {
		t.Fatalf("replayed %d txns over the checkpoint, want 5", stats.ReplayedTxns)
	}
	if got := sortedRows(t, r); !equalStrings(got, want) {
		t.Fatalf("recovered rows mismatch:\n got %v\nwant %v", got, want)
	}
	// New commits must continue the LSN sequence, not reuse logged ones.
	if lsn := mustCommitInsert(t, r, 100, "new"); lsn != 16 {
		t.Fatalf("first post-recovery LSN = %d, want 16", lsn)
	}
	r.Close()
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newDurableStore(t, dir, DurabilityOptions{Policy: SyncAlways})
	for i := 1; i <= 5; i++ {
		mustCommitInsert(t, s, int64(i), "ok")
	}
	want := sortedRows(t, s)
	s.Close()

	// Simulate a torn write: a frame header promising more bytes than exist.
	seg := onlySegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := newDurableStore(t, dir, DurabilityOptions{Policy: SyncAlways})
	stats, err := r.Recover()
	if err != nil {
		t.Fatalf("recover with torn tail: %v", err)
	}
	if !stats.TornTail {
		t.Fatal("recovery did not report the torn tail")
	}
	if stats.ReplayedTxns != 5 {
		t.Fatalf("replayed %d txns, want 5", stats.ReplayedTxns)
	}
	if got := sortedRows(t, r); !equalStrings(got, want) {
		t.Fatalf("recovered rows mismatch:\n got %v\nwant %v", got, want)
	}
	// The torn bytes are gone: appending works and a re-open is clean.
	mustCommitInsert(t, r, 6, "after")
	r.Close()
	r2 := newDurableStore(t, dir, DurabilityOptions{Policy: SyncAlways})
	stats, err = r2.Recover()
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	if stats.TornTail || stats.ReplayedTxns != 6 {
		t.Fatalf("second recovery: torn=%v replayed=%d, want clean 6", stats.TornTail, stats.ReplayedTxns)
	}
	r2.Close()
}

func TestCRCCorruptionStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	s := newDurableStore(t, dir, DurabilityOptions{Policy: SyncAlways})
	for i := 1; i <= 8; i++ {
		mustCommitInsert(t, s, int64(i), strings.Repeat("x", 50))
	}
	s.Close()

	// Flip a byte in the middle of the segment — inside some record's
	// payload, far from the tail.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := newDurableStore(t, dir, DurabilityOptions{Policy: SyncAlways})
	stats, err := r.Recover()
	if err != nil {
		t.Fatalf("recover after corruption: %v", err)
	}
	if stats.CRCErrors == 0 {
		t.Fatal("recovery did not count the CRC error")
	}
	got := sortedRows(t, r)
	if len(got) == 0 || len(got) >= 8 {
		t.Fatalf("recovered %d rows; want a strict valid prefix (0 < n < 8)", len(got))
	}
	for i, row := range got {
		if want := fmt.Sprintf("%d|%s", i+1, strings.Repeat("x", 50)); row != want {
			t.Fatalf("row %d = %q, want %q (prefix property violated)", i, row, want)
		}
	}
	r.Close()
}

func TestTruncateClampedToCheckpointAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	s := newDurableStore(t, dir, DurabilityOptions{Policy: SyncGroup, SegmentBytes: 256})
	for i := 1; i <= 10; i++ {
		mustCommitInsert(t, s, int64(i), "seg-roll")
	}
	// No checkpoint yet: the whole log is the recovery source.
	s.WAL().Truncate(999)
	if first := s.WAL().First(); first != 1 {
		t.Fatalf("truncate before any checkpoint moved First to %d, want 1", first)
	}

	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A pinned snapshot holds the floor below the checkpoint.
	rtx := s.Begin(false)
	pinned := rtx.AsOfLSN()
	for i := 11; i <= 14; i++ {
		mustCommitInsert(t, s, int64(i), "post-pin")
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.WAL().Truncate(999)
	if first := s.WAL().First(); first > pinned {
		t.Fatalf("truncate dropped records a pinned snapshot needs: First=%d pinned=%d", first, pinned)
	}
	rtx.Abort()

	// Snapshot released: now the floor is the checkpoint LSN.
	s.WAL().Truncate(999)
	ck := s.CheckpointLSN()
	if first := s.WAL().First(); first != ck {
		t.Fatalf("truncate floor = %d, want checkpoint LSN %d", first, ck)
	}
	// Segment files strictly below the floor are gone, the rest remain.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments left after truncation")
	}
	s.Close()

	// The truncated log still recovers (checkpoint covers the dropped part).
	r := newDurableStore(t, dir, DurabilityOptions{Policy: SyncGroup, SegmentBytes: 256})
	if _, err := r.Recover(); err != nil {
		t.Fatalf("recover after truncation: %v", err)
	}
	if got := len(sortedRows(t, r)); got != 14 {
		t.Fatalf("recovered %d rows, want 14", got)
	}
	r.Close()
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := newDurableStore(t, dir, DurabilityOptions{Policy: SyncAlways, SegmentBytes: 200})
	for i := 1; i <= 12; i++ {
		mustCommitInsert(t, s, int64(i), "rotate")
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments at 200-byte rotation, got %d", len(segs))
	}
	r := newDurableStore(t, dir, DurabilityOptions{Policy: SyncAlways, SegmentBytes: 200})
	stats, err := r.Recover()
	if err != nil {
		t.Fatalf("recover across segments: %v", err)
	}
	if stats.ReplayedTxns != 12 {
		t.Fatalf("replayed %d txns across segments, want 12", stats.ReplayedTxns)
	}
	r.Close()
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
