package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mtcache/internal/types"
)

// TestGroupCommitConcurrent drives concurrent committers through each sync
// policy and checks the group-commit contract: every commit that returned
// success is assigned a unique LSN, the LSN sequence has no gaps, and under
// the always/group policies the record is durable (SyncedLSN has passed it)
// before Commit returns. Run with -race.
func TestGroupCommitConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 50
	)
	for _, policy := range []SyncPolicy{SyncAlways, SyncGroup, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := newDurableStore(t, dir, DurabilityOptions{Policy: policy})

			type result struct {
				lsn     LSN
				durable LSN // SyncedLSN observed immediately after Commit
			}
			results := make([][]result, writers)
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						tx := s.Begin(true)
						id := int64(w*perWriter + i)
						if _, err := tx.Insert("t", types.Row{types.NewInt(id), types.NewString(fmt.Sprintf("w%d", w))}); err != nil {
							errs <- err
							tx.Abort()
							return
						}
						lsn, err := tx.Commit()
						if err != nil {
							errs <- err
							return
						}
						results[w] = append(results[w], result{lsn: lsn, durable: s.SyncedLSN()})
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("commit error: %v", err)
			}

			seen := make(map[LSN]bool)
			for w := range results {
				for _, r := range results[w] {
					if seen[r.lsn] {
						t.Fatalf("LSN %d assigned twice", r.lsn)
					}
					seen[r.lsn] = true
					if policy == SyncAlways || policy == SyncGroup {
						if r.durable < r.lsn {
							t.Fatalf("%s: Commit returned at LSN %d with durable watermark %d", policy, r.lsn, r.durable)
						}
					}
				}
			}
			total := writers * perWriter
			if len(seen) != total {
				t.Fatalf("got %d commits, want %d", len(seen), total)
			}
			for lsn := LSN(1); lsn <= LSN(total); lsn++ {
				if !seen[lsn] {
					t.Fatalf("LSN sequence has a gap at %d", lsn)
				}
			}

			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			r := newDurableStore(t, dir, DurabilityOptions{Policy: policy})
			stats, err := r.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if stats.ReplayedTxns != total {
				t.Fatalf("recovered %d txns after clean close, want %d", stats.ReplayedTxns, total)
			}
			if got := len(sortedRows(t, r)); got != total {
				t.Fatalf("recovered %d rows, want %d", got, total)
			}
			r.Close()
		})
	}
}

// slowSyncFS makes every fsync take a fixed wall-clock time, modelling a
// real disk; on the test machine's filesystem fsync can be near-instant,
// which would let commits drain one per flush and hide batching.
type slowSyncFS struct {
	FS
	delay time.Duration
}

func (s slowSyncFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	return slowSyncFile{f, s.delay}, err
}

func (s slowSyncFS) OpenAppend(name string) (File, error) {
	f, err := s.FS.OpenAppend(name)
	return slowSyncFile{f, s.delay}, err
}

type slowSyncFile struct {
	File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestGroupCommitBatchesFsyncs checks that group commit actually coalesces:
// with many concurrent committers the fsync count must be well below the
// commit count (otherwise it degenerates to SyncAlways).
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	s := newDurableStore(t, dir, DurabilityOptions{
		Policy: SyncGroup,
		FS:     slowSyncFS{OSFS(), time.Millisecond},
	})
	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := s.Begin(true)
				id := int64(w*perWriter + i)
				tx.Insert("t", types.Row{types.NewInt(id), types.NewString("x")}) //nolint:errcheck
				if _, err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	fsyncs := s.durable.fsyncCount()
	commits := int64(writers * perWriter)
	if fsyncs >= commits {
		t.Fatalf("group commit did not batch: %d fsyncs for %d commits", fsyncs, commits)
	}
	t.Logf("group commit: %d commits, %d fsyncs (%.1fx batching)", commits, fsyncs, float64(commits)/float64(fsyncs))
	s.Close()
}

// TestConcurrentCommitWithCheckpoint races committers against checkpoints and
// verifies the recovered state afterward — a checkpoint taken mid-burst must
// capture a consistent prefix and replay must supply exactly the rest.
func TestConcurrentCommitWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := newDurableStore(t, dir, DurabilityOptions{Policy: SyncGroup})
	const writers, perWriter = 4, 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var ckWG sync.WaitGroup
	ckWG.Add(1)
	go func() {
		defer ckWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := s.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := s.Begin(true)
				id := int64(w*perWriter + i)
				tx.Insert("t", types.Row{types.NewInt(id), types.NewString("y")}) //nolint:errcheck
				if _, err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	ckWG.Wait()
	want := sortedRows(t, s)
	s.Close()

	r := newDurableStore(t, dir, DurabilityOptions{Policy: SyncGroup})
	if _, err := r.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := sortedRows(t, r); !equalStrings(got, want) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(want))
	}
	r.Close()
}
