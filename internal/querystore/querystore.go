// Package querystore is the workload-introspection layer: a bounded,
// concurrency-safe accumulator of per-query-shape runtime statistics
// (SQL Server's Query Store, in miniature) plus a structured event log.
//
// A "shape" is the normalized query text — the plan-cache key from
// sql.SelectStmt.CacheKey() — so syntactically identical statements with
// different parameter values aggregate into one row. Under each shape,
// stats are kept per plan variant (local / remote / mixed / dynamic /
// degraded-local, suffixed with the cached views the plan used), because
// the same shape legitimately runs under different plans as freshness
// bounds and backend availability change.
//
// Memory is bounded three ways: an LRU over shapes (least recently
// executed shape is evicted at capacity), fixed-retention latency
// histograms per variant, and a last-N error ring per shape. The store
// imports only internal/metrics and the standard library so that every
// other layer (engine, wire, repl, storage, obs) can feed it without an
// import cycle.
package querystore

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"mtcache/internal/metrics"
)

const (
	defaultShapeCap   = 512
	latencySamples    = 256 // per-variant histogram retention
	errorRing         = 4   // last-N errors kept per shape
	defaultSlow       = 100 * time.Millisecond
	defaultRearmEvery = 10 * time.Second
)

// Exec describes one completed (or failed) query execution. The engine
// fills it in after running a plan and hands it to Store.Record.
type Exec struct {
	Shape         string        // normalized query text (plan-cache key)
	Variant       string        // plan variant label, see engine.planVariant
	Duration      time.Duration // wall time of optimize-bound execution
	Rows          int64         // rows returned to the client
	RemoteQueries int64         // backend round trips made by the plan
	RowsRemote    int64         // rows shipped from the backend
	PlanCacheHit  bool
	Degraded      bool    // answered locally because the backend was down
	Staleness     float64 // max served staleness in seconds; < 0 = unknown
	Err           error   // non-nil when the execution failed
	TraceID       string
}

// variantStats accumulates executions of one shape under one plan variant.
// All fields are guarded by the owning Store's mutex except lat, which has
// its own lock (it is read lock-free of the store by snapshots).
type variantStats struct {
	execs      int64
	rows       int64
	localExecs int64 // executions with zero backend round trips
	remote     int64 // executions that touched the backend
	hits       int64 // plan-cache hits
	misses     int64
	degraded   int64
	errs       int64
	lat        *metrics.Histogram // seconds
	maxStale   float64
	lastMs     float64
	plan       string    // optimizer EXPLAIN text, captured on first plan
	analyzed   string    // most recent EXPLAIN ANALYZE (slow-query capture)
	literals   string    // bound literal values of the captured execution
	analyzedAt time.Time // zero until the first capture
}

// shapeEntry is one LRU slot: a shape plus its per-variant stats.
type shapeEntry struct {
	shape       string
	variants    map[string]*variantStats
	lastErrs    []string // ring, newest last, capped at errorRing
	lastErrAt   time.Time
	wantCapture bool // armed when a slow execution is observed
	elem        *list.Element
}

// Store is the query store. The zero value is not usable; use NewStore.
type Store struct {
	enabled    atomic.Bool
	slowNanos  atomic.Int64 // slow-query capture threshold
	rearmNanos atomic.Int64 // min interval between captures per shape

	mu     sync.Mutex
	cap    int
	shapes map[string]*shapeEntry
	lru    *list.List // front = most recently executed
}

// NewStore returns an enabled store retaining up to capacity shapes
// (default 512 when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = defaultShapeCap
	}
	s := &Store{
		cap:    capacity,
		shapes: make(map[string]*shapeEntry),
		lru:    list.New(),
	}
	s.enabled.Store(true)
	s.slowNanos.Store(int64(defaultSlow))
	s.rearmNanos.Store(int64(defaultRearmEvery))
	return s
}

// Default is the process-wide query store fed by the engine.
var Default = NewStore(defaultShapeCap)

// SetEnabled turns accounting on or off. Disabled, Record and WantCapture
// return immediately — the switch is a single atomic load on the hot path.
func (s *Store) SetEnabled(on bool) { s.enabled.Store(on) }

// Enabled reports whether accounting is on.
func (s *Store) Enabled() bool { return s.enabled.Load() }

// SetSlowThreshold sets the latency above which a shape arms slow-query
// capture (its next execution runs instrumented and keeps the EXPLAIN
// ANALYZE tree). d <= 0 disables capture.
func (s *Store) SetSlowThreshold(d time.Duration) { s.slowNanos.Store(int64(d)) }

// SlowThreshold returns the capture threshold (<= 0 means capture is off).
func (s *Store) SlowThreshold() time.Duration { return time.Duration(s.slowNanos.Load()) }

// entryLocked returns the LRU entry for shape, creating (and, at capacity,
// evicting) as needed. Caller holds s.mu.
func (s *Store) entryLocked(shape string) *shapeEntry {
	if ent, ok := s.shapes[shape]; ok {
		s.lru.MoveToFront(ent.elem)
		return ent
	}
	for len(s.shapes) >= s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*shapeEntry)
		s.lru.Remove(back)
		delete(s.shapes, victim.shape)
		metrics.Default.Counter("querystore.evictions").Add(1)
	}
	ent := &shapeEntry{shape: shape, variants: make(map[string]*variantStats)}
	ent.elem = s.lru.PushFront(ent)
	s.shapes[shape] = ent
	metrics.Default.Gauge("querystore.shapes").Set(float64(len(s.shapes)))
	return ent
}

func (ent *shapeEntry) variant(name string) *variantStats {
	vs, ok := ent.variants[name]
	if !ok {
		// maxStale starts at -1 ("staleness never observed"), matching the
		// servedStaleness sentinel: a variant that only ever ran with unknown
		// staleness must not report 0 — or worse, a negative sample — as a
		// real bound.
		vs = &variantStats{lat: metrics.NewHistogram(latencySamples), maxStale: -1}
		ent.variants[name] = vs
	}
	return vs
}

// Record accumulates one execution. It is the single hot-path entry point:
// one mutex acquisition, no allocation for repeat shapes.
func (s *Store) Record(e Exec) {
	if !s.enabled.Load() || e.Shape == "" {
		return
	}
	slow := s.slowNanos.Load()
	rearm := time.Duration(s.rearmNanos.Load())
	s.mu.Lock()
	ent := s.entryLocked(e.Shape)
	vs := ent.variant(e.Variant)
	vs.execs++
	vs.rows += e.Rows
	if e.RemoteQueries > 0 {
		vs.remote++
	} else {
		vs.localExecs++
	}
	if e.PlanCacheHit {
		vs.hits++
	} else {
		vs.misses++
	}
	if e.Degraded {
		vs.degraded++
	}
	// Negative staleness is the "unknown" sentinel (sys.cached_views reports
	// -1 before the first pull); only real observations enter the maximum.
	if e.Staleness >= 0 && e.Staleness > vs.maxStale {
		vs.maxStale = e.Staleness
	}
	vs.lastMs = float64(e.Duration) / float64(time.Millisecond)
	if e.Err != nil {
		vs.errs++
		if len(ent.lastErrs) >= errorRing {
			copy(ent.lastErrs, ent.lastErrs[1:])
			ent.lastErrs = ent.lastErrs[:errorRing-1]
		}
		ent.lastErrs = append(ent.lastErrs, e.Err.Error())
		ent.lastErrAt = time.Now()
	}
	// Arm slow-query capture: the *next* execution of this shape runs
	// instrumented, and at most once per re-arm interval so a persistently
	// slow shape does not pay instrumentation on every run.
	if slow > 0 && e.Duration >= time.Duration(slow) && !ent.wantCapture {
		if vs.analyzedAt.IsZero() || time.Since(vs.analyzedAt) >= rearm {
			ent.wantCapture = true
		}
	}
	s.mu.Unlock()
	// Histogram has its own lock; keep it out of the store critical section.
	vs.lat.ObserveDuration(e.Duration)
}

// NotePlan records the optimizer's EXPLAIN text for a shape × variant.
// Called on plan-cache misses only, so the cost of rendering the plan is
// paid once per cached plan, not per execution.
func (s *Store) NotePlan(shape, variant, plan string) {
	if !s.enabled.Load() || shape == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.entryLocked(shape).variant(variant)
	if vs.plan == "" {
		vs.plan = plan
	}
}

// WantCapture reports whether the next execution of shape should run
// instrumented, clearing the flag (at most one caller wins).
func (s *Store) WantCapture(shape string) bool {
	if !s.enabled.Load() || shape == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.shapes[shape]
	if !ok || !ent.wantCapture {
		return false
	}
	ent.wantCapture = false
	return true
}

// StoreAnalyzed saves the EXPLAIN ANALYZE tree captured for a slow shape.
// literals records the auto-parameterized literal values bound to the
// captured execution ("" when the query was not auto-parameterized), so a
// slow normalized shape can be replayed with the exact values that were
// slow.
func (s *Store) StoreAnalyzed(shape, variant, text, literals string) {
	if shape == "" || text == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.shapes[shape]
	if !ok {
		return
	}
	vs := ent.variant(variant)
	vs.analyzed = text
	vs.literals = literals
	vs.analyzedAt = time.Now()
	metrics.Default.Counter("querystore.slow_captures").Add(1)
}

// Len returns the number of retained shapes.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shapes)
}

// Reset drops all accumulated stats (the enabled switch and thresholds
// are untouched).
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shapes = make(map[string]*shapeEntry)
	s.lru.Init()
	metrics.Default.Gauge("querystore.shapes").Set(0)
}

// VariantSnapshot is the exported per-variant view.
type VariantSnapshot struct {
	Variant    string  `json:"variant"`
	Execs      int64   `json:"execs"`
	Rows       int64   `json:"rows"`
	LocalExecs int64   `json:"local_execs"`
	Remote     int64   `json:"remote_execs"`
	Hits       int64   `json:"plan_cache_hits"`
	Misses     int64   `json:"plan_cache_misses"`
	Degraded   int64   `json:"degraded"`
	Errs       int64   `json:"errors"`
	TotalMs    float64 `json:"total_ms"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	LastMs     float64 `json:"last_ms"`
	MaxStale   float64 `json:"max_staleness_seconds"`
	Plan       string  `json:"plan,omitempty"`
	Analyzed   string  `json:"analyzed,omitempty"`
	Literals   string  `json:"literals,omitempty"`
}

// ShapeSnapshot is the exported per-shape view: variant stats plus a
// rollup across variants (latency histograms merged, counts summed).
type ShapeSnapshot struct {
	Shape     string            `json:"shape"`
	Rollup    VariantSnapshot   `json:"rollup"`
	Variants  []VariantSnapshot `json:"variants"`
	LastError string            `json:"last_error,omitempty"`
	LastErrAt time.Time         `json:"last_error_at,omitempty"`
}

const secToMs = 1000.0

func (vs *variantStats) snapshot(name string) VariantSnapshot {
	h := vs.lat
	return VariantSnapshot{
		Variant:    name,
		Execs:      vs.execs,
		Rows:       vs.rows,
		LocalExecs: vs.localExecs,
		Remote:     vs.remote,
		Hits:       vs.hits,
		Misses:     vs.misses,
		Degraded:   vs.degraded,
		Errs:       vs.errs,
		TotalMs:    h.Mean() * float64(h.Count()) * secToMs,
		MeanMs:     h.Mean() * secToMs,
		P50Ms:      h.Quantile(0.50) * secToMs,
		P95Ms:      h.Quantile(0.95) * secToMs,
		P99Ms:      h.Quantile(0.99) * secToMs,
		LastMs:     vs.lastMs,
		MaxStale:   vs.maxStale,
		Plan:       vs.plan,
		Analyzed:   vs.analyzed,
		Literals:   vs.literals,
	}
}

// Snapshot returns a copy of every retained shape, most recently executed
// first. The store lock is held only long enough to list entries and sum
// counters; histogram reads take the per-histogram locks.
func (s *Store) Snapshot() []ShapeSnapshot {
	s.mu.Lock()
	ents := make([]*shapeEntry, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		ents = append(ents, e.Value.(*shapeEntry))
	}
	// Per-shape materialization happens under the lock too: variantStats
	// scalar fields are mu-guarded. Histogram quantiles are self-locked and
	// cheap at this retention (≤ 256 samples).
	out := make([]ShapeSnapshot, 0, len(ents))
	for _, ent := range ents {
		ss := ShapeSnapshot{Shape: ent.shape}
		if n := len(ent.lastErrs); n > 0 {
			ss.LastError = ent.lastErrs[n-1]
			ss.LastErrAt = ent.lastErrAt
		}
		rollLat := metrics.NewHistogram(latencySamples * 2)
		var roll VariantSnapshot
		roll.Variant = "all"
		roll.MaxStale = -1 // unknown until a variant contributes a real sample
		for name, vs := range ent.variants {
			snap := vs.snapshot(name)
			ss.Variants = append(ss.Variants, snap)
			roll.Execs += snap.Execs
			roll.Rows += snap.Rows
			roll.LocalExecs += snap.LocalExecs
			roll.Remote += snap.Remote
			roll.Hits += snap.Hits
			roll.Misses += snap.Misses
			roll.Degraded += snap.Degraded
			roll.Errs += snap.Errs
			roll.TotalMs += snap.TotalMs
			if snap.MaxStale > roll.MaxStale {
				roll.MaxStale = snap.MaxStale
			}
			roll.LastMs = snap.LastMs
			rollLat.Merge(vs.lat)
		}
		sortVariants(ss.Variants)
		if n := rollLat.Count(); n > 0 {
			roll.MeanMs = rollLat.Mean() * secToMs
			roll.P50Ms = rollLat.Quantile(0.50) * secToMs
			roll.P95Ms = rollLat.Quantile(0.95) * secToMs
			roll.P99Ms = rollLat.Quantile(0.99) * secToMs
		}
		ss.Rollup = roll
		out = append(out, ss)
	}
	s.mu.Unlock()
	return out
}

// sortVariants orders variant snapshots by descending execution count,
// ties broken by name for stable output.
func sortVariants(v []VariantSnapshot) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0; j-- {
			if v[j].Execs > v[j-1].Execs ||
				(v[j].Execs == v[j-1].Execs && v[j].Variant < v[j-1].Variant) {
				v[j], v[j-1] = v[j-1], v[j]
			} else {
				break
			}
		}
	}
}
