package querystore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	s := NewStore(8)
	s.SetSlowThreshold(0)
	for i := 0; i < 5; i++ {
		s.Record(Exec{
			Shape:        "SELECT a FROM t WHERE id = @p",
			Variant:      "local",
			Duration:     time.Duration(i+1) * time.Millisecond,
			Rows:         2,
			PlanCacheHit: i > 0,
			Staleness:    float64(i),
		})
	}
	s.Record(Exec{
		Shape:         "SELECT a FROM t WHERE id = @p",
		Variant:       "remote",
		Duration:      10 * time.Millisecond,
		Rows:          1,
		RemoteQueries: 1,
		RowsRemote:    1,
		Err:           errors.New("boom"),
	})
	snaps := s.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("want 1 shape, got %d", len(snaps))
	}
	ss := snaps[0]
	if ss.Rollup.Execs != 6 || ss.Rollup.Rows != 11 {
		t.Fatalf("rollup execs/rows = %d/%d, want 6/11", ss.Rollup.Execs, ss.Rollup.Rows)
	}
	if ss.Rollup.LocalExecs != 5 || ss.Rollup.Remote != 1 {
		t.Fatalf("local/remote = %d/%d, want 5/1", ss.Rollup.LocalExecs, ss.Rollup.Remote)
	}
	if ss.Rollup.Hits != 4 || ss.Rollup.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 4/2", ss.Rollup.Hits, ss.Rollup.Misses)
	}
	if ss.Rollup.MaxStale != 4 {
		t.Fatalf("max staleness = %v, want 4", ss.Rollup.MaxStale)
	}
	if ss.Rollup.Errs != 1 || ss.LastError != "boom" {
		t.Fatalf("errors = %d lastErr = %q", ss.Rollup.Errs, ss.LastError)
	}
	if len(ss.Variants) != 2 {
		t.Fatalf("want 2 variants, got %d", len(ss.Variants))
	}
	// Variants sorted by descending execs: local (5) before remote (1).
	if ss.Variants[0].Variant != "local" || ss.Variants[1].Variant != "remote" {
		t.Fatalf("variant order = %q,%q", ss.Variants[0].Variant, ss.Variants[1].Variant)
	}
	// p99 over {1..5,10} ms must be the max.
	if got := ss.Rollup.P99Ms; got < 9.9 || got > 10.1 {
		t.Fatalf("rollup p99 = %v, want ~10", got)
	}
	if ss.Rollup.TotalMs < 24.9 || ss.Rollup.TotalMs > 25.1 {
		t.Fatalf("rollup total_ms = %v, want ~25", ss.Rollup.TotalMs)
	}
}

// The engine reports staleness -1 when it is unknown (a cached view before
// its first pull, or a query that touched no cached view). The sentinel must
// not enter the max-staleness aggregate as a negative sample, and a variant
// that never saw a real observation must answer -1, not 0.
func TestStalenessSentinelExcludedFromStats(t *testing.T) {
	s := NewStore(8)

	// Only sentinel samples: max staleness stays "unknown".
	for i := 0; i < 3; i++ {
		s.Record(Exec{Shape: "SELECT a FROM unknown_t", Variant: "local", Staleness: -1})
	}
	// A mix: the sentinel must not mask or perturb the real observations.
	s.Record(Exec{Shape: "SELECT b FROM mixed_t", Variant: "local", Staleness: -1})
	s.Record(Exec{Shape: "SELECT b FROM mixed_t", Variant: "local", Staleness: 2.5})
	s.Record(Exec{Shape: "SELECT b FROM mixed_t", Variant: "remote", Staleness: -1})

	for _, ss := range s.Snapshot() {
		switch ss.Shape {
		case "SELECT a FROM unknown_t":
			if ss.Rollup.MaxStale != -1 {
				t.Fatalf("unknown-only rollup MaxStale = %v, want -1", ss.Rollup.MaxStale)
			}
			for _, v := range ss.Variants {
				if v.MaxStale != -1 {
					t.Fatalf("unknown-only variant %q MaxStale = %v, want -1", v.Variant, v.MaxStale)
				}
			}
		case "SELECT b FROM mixed_t":
			if ss.Rollup.MaxStale != 2.5 {
				t.Fatalf("mixed rollup MaxStale = %v, want 2.5", ss.Rollup.MaxStale)
			}
			for _, v := range ss.Variants {
				switch v.Variant {
				case "local":
					if v.MaxStale != 2.5 {
						t.Fatalf("local MaxStale = %v, want 2.5", v.MaxStale)
					}
				case "remote":
					if v.MaxStale != -1 {
						t.Fatalf("remote MaxStale = %v, want -1", v.MaxStale)
					}
				}
			}
		default:
			t.Fatalf("unexpected shape %q", ss.Shape)
		}
	}
}

func TestLRUBound(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		s.Record(Exec{Shape: fmt.Sprintf("q%d", i), Variant: "local", Duration: time.Microsecond})
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want cap 4", s.Len())
	}
	snaps := s.Snapshot()
	if snaps[0].Shape != "q9" {
		t.Fatalf("most recent shape = %q, want q9", snaps[0].Shape)
	}
	// Touching an old retained shape keeps it alive past further inserts.
	s.Record(Exec{Shape: "q6", Variant: "local", Duration: time.Microsecond})
	for i := 10; i < 13; i++ {
		s.Record(Exec{Shape: fmt.Sprintf("q%d", i), Variant: "local", Duration: time.Microsecond})
	}
	found := false
	for _, ss := range s.Snapshot() {
		if ss.Shape == "q6" {
			found = true
		}
	}
	if !found {
		t.Fatal("recently-touched shape q6 was evicted")
	}
}

func TestDisableIsNoop(t *testing.T) {
	s := NewStore(4)
	s.SetEnabled(false)
	s.Record(Exec{Shape: "q", Variant: "local", Duration: time.Second})
	if s.Len() != 0 {
		t.Fatal("disabled store accumulated a shape")
	}
	if s.WantCapture("q") {
		t.Fatal("disabled store armed a capture")
	}
	s.SetEnabled(true)
	s.Record(Exec{Shape: "q", Variant: "local", Duration: time.Microsecond})
	if s.Len() != 1 {
		t.Fatal("re-enabled store did not accumulate")
	}
}

func TestSlowCaptureArmAndRearm(t *testing.T) {
	s := NewStore(4)
	s.SetSlowThreshold(5 * time.Millisecond)
	fast := Exec{Shape: "q", Variant: "local", Duration: time.Millisecond}
	slow := Exec{Shape: "q", Variant: "local", Duration: 20 * time.Millisecond}

	s.Record(fast)
	if s.WantCapture("q") {
		t.Fatal("fast execution armed capture")
	}
	s.Record(slow)
	if !s.WantCapture("q") {
		t.Fatal("slow execution did not arm capture")
	}
	if s.WantCapture("q") {
		t.Fatal("WantCapture did not clear the flag")
	}
	s.StoreAnalyzed("q", "local", "Scan t (rows=1)", "@__p0 = 7")
	// Within the re-arm interval further slow runs must not re-arm.
	s.Record(slow)
	if s.WantCapture("q") {
		t.Fatal("capture re-armed inside the re-arm interval")
	}
	// Shrink the re-arm interval and it arms again.
	s.rearmNanos.Store(0)
	s.Record(slow)
	if !s.WantCapture("q") {
		t.Fatal("capture did not re-arm after the interval elapsed")
	}
	snaps := s.Snapshot()
	if snaps[0].Variants[0].Analyzed != "Scan t (rows=1)" {
		t.Fatalf("analyzed plan not retained: %q", snaps[0].Variants[0].Analyzed)
	}
	if snaps[0].Variants[0].Literals != "@__p0 = 7" {
		t.Fatalf("captured literals not retained: %q", snaps[0].Variants[0].Literals)
	}
}

func TestNotePlanKeepsFirst(t *testing.T) {
	s := NewStore(4)
	s.NotePlan("q", "local", "plan-a")
	s.NotePlan("q", "local", "plan-b")
	snaps := s.Snapshot()
	if snaps[0].Variants[0].Plan != "plan-a" {
		t.Fatalf("plan = %q, want plan-a", snaps[0].Variants[0].Plan)
	}
}

func TestEventRingWrap(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit("kind", "", "i", fmt.Sprint(i))
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	recent := l.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent = %d events, want 4", len(recent))
	}
	// Newest first: seq 10, 9, 8, 7.
	for i, e := range recent {
		if want := int64(10 - i); e.Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if recent[0].Detail() != "i=9" {
		t.Fatalf("detail = %q, want i=9", recent[0].Detail())
	}
	limited := l.Recent(2)
	if len(limited) != 2 || limited[0].Seq != 10 || limited[1].Seq != 9 {
		t.Fatalf("Recent(2) = %+v", limited)
	}
}

func TestEventOddFields(t *testing.T) {
	l := NewEventLog(4)
	l.Emit("k", "trace-1", "a", "1", "dangling")
	e := l.Recent(1)[0]
	if e.TraceID != "trace-1" {
		t.Fatalf("trace = %q", e.TraceID)
	}
	if e.Detail() != "a=1 dangling=" {
		t.Fatalf("detail = %q", e.Detail())
	}
}

func TestConcurrentRecordSnapshot(t *testing.T) {
	s := NewStore(32)
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Record(Exec{Shape: fmt.Sprintf("q%d", i%40), Variant: "local", Duration: time.Microsecond, Rows: 1})
				l.Emit("tick", "", "g", fmt.Sprint(g))
				if s.WantCapture(fmt.Sprintf("q%d", i%40)) {
					s.StoreAnalyzed(fmt.Sprintf("q%d", i%40), "local", "x", "")
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_ = s.Snapshot()
		_ = l.Recent(10)
	}
	wg.Wait()
	if s.Len() == 0 || s.Len() > 32 {
		t.Fatalf("len = %d, want 1..32", s.Len())
	}
}
