package querystore

import (
	"strings"
	"sync"
	"time"

	"mtcache/internal/metrics"
)

// Event is one discrete occurrence worth a DBA's attention: a repl
// resubscribe, a group-commit wedge, a checkpoint, a GC run, a plan
// eviction, a deadlock abort, retry exhaustion. Events are cheap,
// structured, and bounded — the SQL-visible cousin of a log line.
type Event struct {
	Seq     int64     `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	TraceID string    `json:"trace_id,omitempty"`
	Fields  []Field   `json:"fields,omitempty"`
}

// Field is one key/value pair attached to an event. A slice (not a map)
// keeps emission allocation-light and the rendering order stable.
type Field struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Detail renders the fields as "k=v k=v" for one-line display
// (sys.events, the shell, text debug endpoints).
func (e Event) Detail() string {
	if len(e.Fields) == 0 {
		return ""
	}
	var b strings.Builder
	for i, f := range e.Fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f.K)
		b.WriteByte('=')
		b.WriteString(f.V)
	}
	return b.String()
}

// EventLog is a fixed-size ring buffer of events. Writers never block on
// readers and memory is bounded by the capacity regardless of event rate.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int   // ring write position
	seq  int64 // monotonically increasing event sequence number
}

// NewEventLog returns a ring holding the most recent capacity events
// (default 1024 when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Emit records one event. kv is alternating key, value strings; a trailing
// odd key is recorded with an empty value rather than dropped.
func (l *EventLog) Emit(kind, traceID string, kv ...string) {
	e := Event{Time: time.Now(), Kind: kind, TraceID: traceID}
	if len(kv) > 0 {
		e.Fields = make([]Field, 0, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			f := Field{K: kv[i]}
			if i+1 < len(kv) {
				f.V = kv[i+1]
			}
			e.Fields = append(e.Fields, f)
		}
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.mu.Unlock()
	metrics.Default.Counter("querystore.events").Add(1)
}

// Recent returns up to n events, newest first (all retained events when
// n <= 0).
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := len(l.buf)
	if total == 0 {
		return nil
	}
	if n <= 0 || n > total {
		n = total
	}
	out := make([]Event, 0, n)
	// next-1 is the most recently written slot.
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + total) % total
		out = append(out, l.buf[idx])
	}
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Reset drops all retained events (sequence numbers keep increasing).
func (l *EventLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.next = 0
}

// Events is the process-wide event log, shared by every subsystem so a
// single sys.events query tells the whole story in order.
var Events = NewEventLog(1024)

// Emit records an event on the process-wide log without a trace ID.
func Emit(kind string, kv ...string) { Events.Emit(kind, "", kv...) }

// EmitTraced records an event on the process-wide log with a trace ID.
func EmitTraced(kind, traceID string, kv ...string) { Events.Emit(kind, traceID, kv...) }
