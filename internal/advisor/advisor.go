// Package advisor implements the design tool the paper lists as future work
// (§7): "there are currently no tools to help a DBA define a caching
// strategy by analyzing a workload and providing advice on what cached
// views to create and where to run stored procedures."
//
// The advisor consumes a weighted workload (stored-procedure calls and
// ad-hoc statements with relative frequencies), attributes reads and writes
// to base tables, and emits:
//
//   - CREATE CACHED VIEW statements projecting exactly the columns the
//     read workload touches, for tables whose read/write profile makes
//     caching worthwhile;
//   - a copy/keep recommendation per stored procedure (read-dominated
//     procedures run on the cache; update-dominated ones stay on the
//     backend, as in the paper's §6.1 configuration).
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"mtcache/internal/catalog"
	"mtcache/internal/sql"
)

// WorkloadItem is one statement (or EXEC call) with a relative frequency.
type WorkloadItem struct {
	SQL    string
	Weight float64
}

// Options tunes the recommendation thresholds.
type Options struct {
	// MinReadWeight is the minimum accumulated read weight before a table
	// is worth caching at all.
	MinReadWeight float64
	// MinReadWriteRatio is the minimum read/write weight ratio; below it
	// the replication cost likely exceeds the offloaded work.
	MinReadWriteRatio float64
	// ProcCopyReadShare is the minimum fraction of a procedure's statement
	// weight that must be reads for the advisor to copy it to caches.
	ProcCopyReadShare float64
}

// DefaultOptions mirror the trade-offs of the paper's hand configuration.
func DefaultOptions() Options {
	return Options{MinReadWeight: 1, MinReadWriteRatio: 0.5, ProcCopyReadShare: 0.5}
}

// ViewAdvice is one recommended cached view.
type ViewAdvice struct {
	Table       string
	Columns     []string // projection, in table order
	DDL         string   // ready-to-run CREATE CACHED VIEW
	ReadWeight  float64
	WriteWeight float64
	Recommended bool
	Reason      string
}

// ProcAdvice is one stored procedure's placement recommendation.
type ProcAdvice struct {
	Name        string
	CopyToCache bool
	ReadShare   float64
	Reason      string
}

// Advice is the advisor's full output.
type Advice struct {
	Views []ViewAdvice
	Procs []ProcAdvice
}

// tableUsage accumulates per-table statistics.
type tableUsage struct {
	table   *catalog.Table
	readW   float64
	writeW  float64
	columns map[string]bool
}

// Analyze runs the advisor over a workload against a backend catalog.
func Analyze(cat *catalog.Catalog, workload []WorkloadItem, opts Options) (*Advice, error) {
	usage := map[string]*tableUsage{}
	procStats := map[string]*struct{ readW, writeW float64 }{}

	use := func(name string) *tableUsage {
		k := strings.ToLower(name)
		if u, ok := usage[k]; ok {
			return u
		}
		t := cat.Table(name)
		if t == nil || t.Virtual {
			// Unknown names and virtual system tables (sys.*) carry no
			// cacheable data; they never enter the recommendation set.
			return nil
		}
		u := &tableUsage{table: t, columns: map[string]bool{}}
		usage[k] = u
		return u
	}

	var analyzeStmt func(stmt sql.Statement, weight float64, proc string) error
	analyzeStmt = func(stmt sql.Statement, weight float64, proc string) error {
		record := func(read bool) {
			if proc == "" {
				return
			}
			ps, ok := procStats[proc]
			if !ok {
				ps = &struct{ readW, writeW float64 }{}
				procStats[proc] = ps
			}
			if read {
				ps.readW += weight
			} else {
				ps.writeW += weight
			}
		}
		switch x := stmt.(type) {
		case *sql.SelectStmt:
			record(true)
			analyzeSelect(x, weight, use)
		case *sql.InsertStmt:
			record(false)
			if u := use(x.Table.Name); u != nil {
				u.writeW += weight
			}
			if x.Select != nil {
				analyzeSelect(x.Select, weight, use)
			}
		case *sql.UpdateStmt:
			record(false)
			if u := use(x.Table.Name); u != nil {
				u.writeW += weight
			}
		case *sql.DeleteStmt:
			record(false)
			if u := use(x.Table.Name); u != nil {
				u.writeW += weight
			}
		case *sql.ExecStmt:
			p := cat.Procedure(x.Proc)
			if p == nil {
				return fmt.Errorf("advisor: workload calls unknown procedure %s", x.Proc)
			}
			for _, body := range p.Body {
				if err := analyzeStmt(body, weight, p.Name); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for _, item := range workload {
		stmt, err := sql.Parse(item.SQL)
		if err != nil {
			return nil, fmt.Errorf("advisor: %q: %w", item.SQL, err)
		}
		if err := analyzeStmt(stmt, item.Weight, ""); err != nil {
			return nil, err
		}
	}

	advice := &Advice{}
	var names []string
	for k := range usage {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		u := usage[k]
		va := ViewAdvice{
			Table:       u.table.Name,
			ReadWeight:  u.readW,
			WriteWeight: u.writeW,
		}
		// Projection: referenced columns in table order (fall back to all
		// columns when references could not be attributed).
		for _, c := range u.table.Columns {
			if u.columns[strings.ToLower(c.Name)] {
				va.Columns = append(va.Columns, c.Name)
			}
		}
		if len(va.Columns) == 0 {
			va.Columns = u.table.ColumnNames()
		}
		va.DDL = fmt.Sprintf("CREATE CACHED VIEW cv_%s AS SELECT %s FROM %s",
			strings.ToLower(u.table.Name), strings.Join(va.Columns, ", "), u.table.Name)
		switch {
		case u.readW < opts.MinReadWeight:
			va.Reason = fmt.Sprintf("read weight %.2f below threshold %.2f", u.readW, opts.MinReadWeight)
		case u.writeW > 0 && u.readW/u.writeW < opts.MinReadWriteRatio:
			va.Reason = fmt.Sprintf("read/write ratio %.2f below threshold %.2f", u.readW/u.writeW, opts.MinReadWriteRatio)
		default:
			va.Recommended = true
			va.Reason = fmt.Sprintf("read weight %.2f, write weight %.2f", u.readW, u.writeW)
		}
		advice.Views = append(advice.Views, va)
	}

	var procNames []string
	for name := range procStats {
		procNames = append(procNames, name)
	}
	sort.Strings(procNames)
	for _, name := range procNames {
		ps := procStats[name]
		total := ps.readW + ps.writeW
		share := 0.0
		if total > 0 {
			share = ps.readW / total
		}
		pa := ProcAdvice{Name: name, ReadShare: share}
		if share >= opts.ProcCopyReadShare {
			pa.CopyToCache = true
			pa.Reason = fmt.Sprintf("%.0f%% of statement weight is reads", share*100)
		} else {
			pa.Reason = fmt.Sprintf("update-dominated (%.0f%% reads); keep on the backend", share*100)
		}
		advice.Procs = append(advice.Procs, pa)
	}
	return advice, nil
}

// analyzeSelect attributes a SELECT's reads and column references.
func analyzeSelect(s *sql.SelectStmt, weight float64, use func(string) *tableUsage) {
	// alias -> usage for this block
	aliases := map[string]*tableUsage{}
	var blockUsages []*tableUsage
	var walkFrom func(ref sql.TableRef)
	walkFrom = func(ref sql.TableRef) {
		switch x := ref.(type) {
		case *sql.TableName:
			u := use(x.Name)
			if u == nil {
				return
			}
			u.readW += weight
			blockUsages = append(blockUsages, u)
			alias := x.Alias
			if alias == "" {
				alias = x.Name
			}
			aliases[strings.ToLower(alias)] = u
		case *sql.JoinRef:
			walkFrom(x.Left)
			walkFrom(x.Right)
			record(x.On, aliases, blockUsages)
		case *sql.SubqueryRef:
			analyzeSelect(x.Select, weight, use)
		}
	}
	for _, f := range s.From {
		walkFrom(f)
	}
	exprs := []sql.Expr{s.Where, s.Having, s.Top}
	for _, item := range s.Columns {
		if item.Star {
			// SELECT *: every column of every block table.
			for _, u := range blockUsages {
				for _, c := range u.table.Columns {
					u.columns[strings.ToLower(c.Name)] = true
				}
			}
			continue
		}
		exprs = append(exprs, item.Expr)
	}
	for _, g := range s.GroupBy {
		exprs = append(exprs, g)
	}
	for _, o := range s.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		record(e, aliases, blockUsages)
	}
}

// record attributes an expression's column references: qualified by alias,
// or by unique column-name ownership among the block's tables.
func record(e sql.Expr, aliases map[string]*tableUsage, blockUsages []*tableUsage) {
	if e == nil {
		return
	}
	sql.WalkExpr(e, func(x sql.Expr) bool {
		ref, ok := x.(*sql.ColumnRef)
		if !ok {
			return true
		}
		name := strings.ToLower(ref.Name)
		if ref.Table != "" {
			if u, ok := aliases[strings.ToLower(ref.Table)]; ok {
				u.columns[name] = true
			}
			return true
		}
		var owner *tableUsage
		for _, u := range blockUsages {
			if u.table.ColumnIndex(name) >= 0 {
				if owner != nil {
					return true // ambiguous: skip rather than guess
				}
				owner = u
			}
		}
		if owner != nil {
			owner.columns[name] = true
		}
		return true
	})
}

// Format renders the advice as a readable report.
func (a *Advice) Format() string {
	var b strings.Builder
	b.WriteString("== cached view recommendations ==\n")
	for _, v := range a.Views {
		mark := " "
		if v.Recommended {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s %-18s read=%8.2f write=%8.2f  %s\n", mark, v.Table, v.ReadWeight, v.WriteWeight, v.Reason)
		if v.Recommended {
			fmt.Fprintf(&b, "    %s\n", v.DDL)
		}
	}
	b.WriteString("\n== stored procedure placement ==\n")
	for _, p := range a.Procs {
		where := "backend"
		if p.CopyToCache {
			where = "cache"
		}
		fmt.Fprintf(&b, "  %-22s -> %-7s (%s)\n", p.Name, where, p.Reason)
	}
	return b.String()
}

// RecommendedViews returns the DDL of all recommended views.
func (a *Advice) RecommendedViews() []string {
	var out []string
	for _, v := range a.Views {
		if v.Recommended {
			out = append(out, v.DDL)
		}
	}
	return out
}

// ProcsToCopy returns the names of procedures recommended for cache copies.
func (a *Advice) ProcsToCopy() []string {
	var out []string
	for _, p := range a.Procs {
		if p.CopyToCache {
			out = append(out, p.Name)
		}
	}
	return out
}
