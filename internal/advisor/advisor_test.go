package advisor

import (
	"fmt"
	"strings"
	"testing"

	"mtcache/internal/core"
	"mtcache/internal/tpcw"
)

// tpcwWorkload builds a weighted workload from the Shopping mix: each
// interaction contributes its representative procedure calls at the mix
// frequency — the input a DBA would hand the design tool.
func tpcwWorkload() []WorkloadItem {
	mix := tpcw.Mix(tpcw.Shopping)
	calls := map[tpcw.Interaction][]string{
		tpcw.Home:                 {"EXEC getName 1", "EXEC getRelated 1"},
		tpcw.NewProducts:          {"EXEC getNewProducts 'ARTS'"},
		tpcw.BestSellers:          {"EXEC getBestSellers 'ARTS'"},
		tpcw.ProductDetail:        {"EXEC getBook 1"},
		tpcw.SearchResults:        {"EXEC doSubjectSearch 'ARTS'", "EXEC doTitleSearch '%a%'", "EXEC doAuthorSearch 'S%'"},
		tpcw.ShoppingCart:         {"EXEC createCartWithLine 1, '2003-06-09', 1, 1", "EXEC getCart 1"},
		tpcw.CustomerRegistration: {"EXEC getCustomer 'user1'"},
		tpcw.BuyRequest:           {"EXEC getCustomer 'user1'", "EXEC getCart 1"},
		tpcw.BuyConfirm:           {"EXEC getCDiscount 1", "EXEC doBuyConfirm 1, 1, '2003-06-09', 1, 1, 'AIR', 1, 1, 0.05, 1"},
		tpcw.OrderInquiry:         {"EXEC getPassword 'user1'"},
		tpcw.OrderDisplay:         {"EXEC getMostRecentOrder 'user1'", "EXEC getOrderLines 1"},
		tpcw.AdminRequest:         {"EXEC getBook 1"},
		tpcw.AdminConfirm:         {"EXEC adminUpdate 1, 1.0, 2", "EXEC getBook 1"},
	}
	var items []WorkloadItem
	for in, stmts := range calls {
		w := mix[in] / float64(len(stmts))
		for _, s := range stmts {
			items = append(items, WorkloadItem{SQL: s, Weight: w})
		}
	}
	return items
}

func analyzed(t *testing.T) *Advice {
	t.Helper()
	b := core.NewBackend("backend")
	if err := tpcw.Load(b, tpcw.Config{Items: 50, Customers: 80, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	advice, err := Analyze(b.DB.Catalog(), tpcwWorkload(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return advice
}

// The headline test: over the TPC-W Shopping workload, the advisor should
// rediscover the paper's hand configuration (§6.1) — cache projections of
// item, author, orders and order_line; keep update-dominated procedures on
// the backend.
func TestAdvisorRediscoversPaperConfiguration(t *testing.T) {
	advice := analyzed(t)
	rec := map[string]bool{}
	for _, v := range advice.Views {
		if v.Recommended {
			rec[strings.ToLower(v.Table)] = true
		}
	}
	for _, want := range []string{"item", "author", "orders", "order_line"} {
		if !rec[want] {
			t.Errorf("paper cached %s; advisor did not recommend it\n%s", want, advice.Format())
		}
	}
}

func TestAdvisorKeepsUpdateDominatedProcsOnBackend(t *testing.T) {
	advice := analyzed(t)
	placement := map[string]bool{}
	for _, p := range advice.Procs {
		placement[strings.ToLower(p.Name)] = p.CopyToCache
	}
	for _, name := range []string{"dobuyconfirm", "adminupdate", "createcartwithline"} {
		if copyIt, ok := placement[name]; !ok || copyIt {
			t.Errorf("%s should stay on the backend (ok=%v copy=%v)", name, ok, copyIt)
		}
	}
	for _, name := range []string{"getbestsellers", "getbook", "docart"} {
		if name == "docart" {
			continue
		}
		if copyIt, ok := placement[name]; !ok || !copyIt {
			t.Errorf("%s should be copied to caches (ok=%v copy=%v)", name, ok, copyIt)
		}
	}
}

func TestAdvisorProjectionsAreMinimal(t *testing.T) {
	advice := analyzed(t)
	for _, v := range advice.Views {
		if strings.EqualFold(v.Table, "author") {
			// The workload touches a_id, a_fname, a_lname only.
			if len(v.Columns) != 3 {
				t.Errorf("author projection: %v", v.Columns)
			}
		}
		if strings.EqualFold(v.Table, "customer") {
			// customer must not project every column: c_since etc. unused.
			if len(v.Columns) >= 12 {
				t.Errorf("customer projection not pruned: %v", v.Columns)
			}
		}
	}
}

func TestAdvisorDDLIsValid(t *testing.T) {
	advice := analyzed(t)
	b := core.NewBackend("backend2")
	if err := tpcw.Load(b, tpcw.Config{Items: 50, Customers: 80, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCache("cache1", b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range advice.RecommendedViews() {
		if err := c.CreateCachedView(ddl); err != nil {
			t.Errorf("recommended DDL rejected: %v\n%s", err, ddl)
		}
	}
	for _, name := range advice.ProcsToCopy() {
		if err := c.CopyProcedure(name); err != nil {
			t.Errorf("recommended procedure copy failed: %v", err)
		}
	}
	// The advised configuration actually serves the hot queries locally.
	res, err := c.DB.Exec("EXEC getBestSellers 'ARTS'", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.RemoteQueries != 0 {
		t.Errorf("advised config should answer bestsellers locally (remote=%d)", res.Counters.RemoteQueries)
	}
}

func TestAdvisorWeightsScaleRecommendations(t *testing.T) {
	b := core.NewBackend("backend")
	if err := tpcw.Load(b, tpcw.Config{Items: 50, Customers: 80, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	// A write-only workload on orders must not recommend caching it.
	writeOnly := []WorkloadItem{
		{SQL: "EXEC doBuyConfirm 1, 1, '2003-06-09', 1, 1, 'AIR', 1, 1, 0.05, 1", Weight: 100},
	}
	advice, err := Analyze(b.DB.Catalog(), writeOnly, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range advice.Views {
		if strings.EqualFold(v.Table, "orders") && v.Recommended {
			t.Errorf("write-only orders table recommended for caching:\n%s", advice.Format())
		}
	}
}

func TestAdvisorAdHocStatements(t *testing.T) {
	b := core.NewBackend("backend")
	if err := tpcw.Load(b, tpcw.Config{Items: 50, Customers: 80, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	items := []WorkloadItem{
		{SQL: "SELECT i_title, i_cost FROM item WHERE i_subject = 'ARTS'", Weight: 50},
		{SQL: "UPDATE item SET i_stock = 1 WHERE i_id = 1", Weight: 1},
	}
	advice, err := Analyze(b.DB.Catalog(), items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var item *ViewAdvice
	for i := range advice.Views {
		if strings.EqualFold(advice.Views[i].Table, "item") {
			item = &advice.Views[i]
		}
	}
	if item == nil || !item.Recommended {
		t.Fatal("item should be recommended")
	}
	want := map[string]bool{"i_title": true, "i_cost": true, "i_subject": true}
	for _, c := range item.Columns {
		if !want[strings.ToLower(c)] {
			t.Errorf("unexpected projected column %s", c)
		}
		delete(want, strings.ToLower(c))
	}
	if len(want) != 0 {
		t.Errorf("missing projected columns: %v", want)
	}
}

func TestAdvisorUnknownProcedure(t *testing.T) {
	b := core.NewBackend("backend")
	b.ExecScript("CREATE TABLE t (a INT PRIMARY KEY)")
	if _, err := Analyze(b.DB.Catalog(), []WorkloadItem{{SQL: "EXEC nope", Weight: 1}}, DefaultOptions()); err == nil {
		t.Fatal("unknown procedure should error")
	}
}

func TestAdvisorFormatReadable(t *testing.T) {
	advice := analyzed(t)
	out := advice.Format()
	if !strings.Contains(out, "cached view recommendations") || !strings.Contains(out, "stored procedure placement") {
		t.Error("format sections missing")
	}
	fmt.Fprintln(testingWriter{}, out)
}

type testingWriter struct{}

func (testingWriter) Write(p []byte) (int, error) { return len(p), nil }
