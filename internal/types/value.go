// Package types defines the SQL value model shared by every layer of the
// engine: the storage manager stores rows of Values, the executor evaluates
// expressions over them, the optimizer's statistics summarize them, and the
// wire protocol serializes them.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the SQL data types supported by the engine.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt    // 64-bit signed integer (covers INT, BIGINT, SMALLINT)
	KindFloat  // 64-bit float (covers FLOAT, REAL, NUMERIC in this engine)
	KindString // variable-length string (covers CHAR, VARCHAR, TEXT)
	KindTime   // timestamp (covers DATE, DATETIME)
)

// String returns the SQL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindTime:
		return "DATETIME"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a SQL type name to a Kind. Unknown names report an error.
func ParseKind(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN", "BIT":
		return KindBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "NUMERIC", "DECIMAL", "MONEY":
		return KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "NVARCHAR", "NCHAR", "STRING":
		return KindString, nil
	case "DATE", "DATETIME", "TIMESTAMP", "TIME":
		return KindTime, nil
	}
	return KindNull, fmt.Errorf("unknown type %q", name)
}

// Value is a single SQL value. The zero Value is SQL NULL.
//
// Value is a small tagged struct rather than an interface so that rows can be
// stored as flat []Value slices with no per-value heap allocation.
type Value struct {
	K Kind
	I int64 // KindBool (0/1) and KindInt payload
	F float64
	S string
	T time.Time
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a BOOL value.
func NewBool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewTime returns a DATETIME value.
func NewTime(t time.Time) Value { return Value{K: KindTime, T: t} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean payload. It is only meaningful for KindBool.
func (v Value) Bool() bool { return v.I != 0 }

// Int returns the integer payload, converting from FLOAT and BOOL.
func (v Value) Int() int64 {
	switch v.K {
	case KindFloat:
		return int64(v.F)
	default:
		return v.I
	}
}

// Float returns the float payload, converting from INT and BOOL.
func (v Value) Float() float64 {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I)
	default:
		return v.F
	}
}

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.S }

// Time returns the time payload. It is only meaningful for KindTime.
func (v Value) Time() time.Time { return v.T }

// numericKinds reports whether both kinds are numeric (INT/FLOAT/BOOL).
func numericKinds(a, b Kind) bool {
	n := func(k Kind) bool { return k == KindInt || k == KindFloat || k == KindBool }
	return n(a) && n(b)
}

// Compare orders two values. NULL sorts before every non-NULL value (this
// matters for index ordering; three-valued comparison semantics are handled
// by the expression evaluator, which checks IsNull before comparing).
// Cross-kind numeric comparisons are performed in float64.
// Comparing incomparable kinds (e.g. INT vs VARCHAR) orders by kind, which
// keeps Compare a total order for sorting.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.K != b.K {
		if numericKinds(a.K, b.K) {
			return cmpFloat(a.Float(), b.Float())
		}
		return int(a.K) - int(b.K)
	}
	switch a.K {
	case KindBool, KindInt:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case KindFloat:
		return cmpFloat(a.F, b.F)
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindTime:
		switch {
		case a.T.Before(b.T):
			return -1
		case a.T.After(b.T):
			return 1
		}
		return 0
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a stable hash of v, used by hash joins and hash aggregation.
// Values that compare equal hash equal (numeric kinds hash via float64).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.K {
	case KindNull:
		h.Write([]byte{0})
	case KindBool, KindInt, KindFloat:
		var f float64
		f = v.Float()
		bits := math.Float64bits(f)
		var buf [9]byte
		buf[0] = 1
		for i := 0; i < 8; i++ {
			buf[i+1] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	case KindString:
		h.Write([]byte{2})
		h.Write([]byte(v.S))
	case KindTime:
		n := v.T.UnixNano()
		var buf [9]byte
		buf[0] = 3
		for i := 0; i < 8; i++ {
			buf[i+1] = byte(uint64(n) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// String renders the value for display and for shipping literals inside
// remote SQL text (strings are quoted with ” doubling).
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindTime:
		return "'" + v.T.UTC().Format("2006-01-02 15:04:05.000") + "'"
	}
	return "?"
}

// Display renders the value for result grids (strings unquoted).
func (v Value) Display() string {
	if v.K == KindString {
		return v.S
	}
	return v.String()
}

// Cast converts v to kind k following SQL-ish coercion rules. Casting NULL
// yields NULL of any kind. Failed string parses report an error.
func (v Value) Cast(k Kind) (Value, error) {
	if v.K == KindNull || v.K == k {
		if v.K == KindNull {
			return Null, nil
		}
		return v, nil
	}
	switch k {
	case KindBool:
		switch v.K {
		case KindInt, KindFloat:
			return NewBool(v.Float() != 0), nil
		}
	case KindInt:
		switch v.K {
		case KindBool:
			return NewInt(v.I), nil
		case KindFloat:
			return NewInt(int64(v.F)), nil
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to INT", v.S)
			}
			return NewInt(i), nil
		}
	case KindFloat:
		switch v.K {
		case KindBool, KindInt:
			return NewFloat(v.Float()), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to FLOAT", v.S)
			}
			return NewFloat(f), nil
		}
	case KindString:
		return NewString(v.Display()), nil
	case KindTime:
		if v.K == KindString {
			for _, layout := range []string{
				"2006-01-02 15:04:05.000", "2006-01-02 15:04:05", "2006-01-02",
				time.RFC3339Nano, time.RFC3339,
			} {
				if t, err := time.Parse(layout, v.S); err == nil {
					return NewTime(t), nil
				}
			}
			return Null, fmt.Errorf("cannot cast %q to DATETIME", v.S)
		}
		if v.K == KindInt {
			return NewTime(time.Unix(0, v.I).UTC()), nil
		}
	}
	return Null, fmt.Errorf("cannot cast %s to %s", v.K, k)
}

// Row is a tuple of values.
type Row []Value

// Clone returns a deep-enough copy of the row (Values are value types).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Hash returns a stable hash of the row.
func (r Row) Hash() uint64 {
	h := uint64(14695981039346656037)
	for _, v := range r {
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h
}

// RowsEqual reports element-wise equality of two rows.
func RowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// CompareRows orders rows lexicographically.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}
