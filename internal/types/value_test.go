package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCompareWithinKinds(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("abc"), NewString("abd"), -1},
		{NewString("abc"), NewString("abc"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
	}
	for _, c := range cases {
		got := Compare(c.a, c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v,%v)=%d want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareCrossNumeric(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Error("INT 2 should equal FLOAT 2.0")
	}
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Error("INT 2 should be less than FLOAT 2.5")
	}
	if Compare(NewBool(true), NewInt(1)) != 0 {
		t.Error("BOOL true should equal INT 1 numerically")
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewFloat(7)},
		{NewBool(true), NewInt(1)},
		{NewString("x"), NewString("x")},
	}
	for _, p := range pairs {
		if Compare(p[0], p[1]) == 0 && p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v,%v hash differently", p[0], p[1])
		}
	}
}

func TestCastRoundTrips(t *testing.T) {
	v, err := NewString("42").Cast(KindInt)
	if err != nil || v.Int() != 42 {
		t.Fatalf("cast '42' to int: %v %v", v, err)
	}
	v, err = NewInt(42).Cast(KindString)
	if err != nil || v.Str() != "42" {
		t.Fatalf("cast 42 to string: %v %v", v, err)
	}
	v, err = NewString("3.5").Cast(KindFloat)
	if err != nil || v.Float() != 3.5 {
		t.Fatalf("cast '3.5' to float: %v %v", v, err)
	}
	if _, err = NewString("zebra").Cast(KindInt); err == nil {
		t.Fatal("cast 'zebra' to int should fail")
	}
	v, err = Null.Cast(KindInt)
	if err != nil || !v.IsNull() {
		t.Fatalf("cast NULL should stay NULL: %v %v", v, err)
	}
	v, err = NewString("2003-06-09").Cast(KindTime)
	if err != nil || v.Time().Year() != 2003 {
		t.Fatalf("cast date string: %v %v", v, err)
	}
}

func TestValueStringQuoting(t *testing.T) {
	if got := NewString("O'Brien").String(); got != "'O''Brien'" {
		t.Errorf("string quoting: got %s", got)
	}
	if got := Null.String(); got != "NULL" {
		t.Errorf("null rendering: got %s", got)
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "VARCHAR": KindString, "Float": KindFloat,
		"datetime": KindTime, "BIT": KindBool, "decimal": KindFloat,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q)=%v,%v want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("BLOB"); err == nil {
		t.Error("ParseKind(BLOB) should fail")
	}
}

// Property: Compare is antisymmetric and Equal values hash identically.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return sign(Compare(va, vb)) == -sign(Compare(vb, va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare over ints agrees with native ordering.
func TestCompareIntAgreesWithNative(t *testing.T) {
	f := func(a, b int64) bool {
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return sign(Compare(NewInt(a), NewInt(b))) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string values round-trip through SQL literal rendering length-safely.
func TestStringHashStability(t *testing.T) {
	f := func(s string) bool {
		v := NewString(s)
		return v.Hash() == NewString(s).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareRowsLexicographic(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("c")}
	if CompareRows(a, b) >= 0 {
		t.Error("row a should sort before b")
	}
	if CompareRows(a, a) != 0 {
		t.Error("row should equal itself")
	}
	short := Row{NewInt(1)}
	if CompareRows(short, a) >= 0 {
		t.Error("prefix row should sort first")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("clone should not alias original")
	}
	if !RowsEqual(r, Row{NewInt(1), NewString("x")}) {
		t.Error("original mutated")
	}
}
