package exec

import (
	"strings"

	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Vectorized predicate evaluation. The interpreted Expr tree pays three
// dynamic dispatches and a 64-byte Value copy per row just to compare one
// column against one constant; on a 20k-row scan that interpretation is
// nearly half the query's CPU. compilePred recognizes the filter shapes
// that dominate real plans — a conjunction of <column> <cmp> <constant or
// parameter> terms — and turns them into a flat leaf list that BatchNext
// evaluates with direct row indexing and static comparisons, touching the
// generic Expr machinery once per batch (to resolve the row-independent
// right-hand sides) instead of three times per row.
//
// The compiled form is used only on the batch path. Filter.Next keeps the
// interpreted evaluator, so RowMode remains the faithful pre-vectorization
// baseline and the equivalence tests compare the two implementations.

// vecLeaf is one compiled comparison: row[col] op rhs, where rhs is
// row-independent (ConstExpr or ParamExpr).
type vecLeaf struct {
	col int
	op  sql.BinOp
	rhs Expr
}

// vecPred is a compiled conjunction of leaves. It is immutable after
// compilePred; per-batch scratch lives in the owning operator.
type vecPred struct {
	leaves []vecLeaf
}

// compilePred compiles e into a vectorized evaluator, or returns nil when
// e's shape is not covered and the caller must keep the interpreted path.
func compilePred(e Expr) *vecPred {
	p := &vecPred{}
	if !p.collect(e) {
		return nil
	}
	return p
}

func (p *vecPred) collect(e Expr) bool {
	b, ok := e.(*BinExpr)
	if !ok {
		return false
	}
	if b.Op == sql.OpAnd {
		return p.collect(b.L) && p.collect(b.R)
	}
	if !b.Op.IsComparison() {
		return false
	}
	col, okL := b.L.(*ColExpr)
	rhs, op := b.R, b.Op
	if !okL {
		// constant op column: flip into column form.
		col, okL = b.R.(*ColExpr)
		if !okL {
			return false
		}
		rhs, op = b.L, flipCmp(b.Op)
	}
	switch rhs.(type) {
	case *ConstExpr, *ParamExpr:
	default:
		return false
	}
	p.leaves = append(p.leaves, vecLeaf{col: col.I, op: op, rhs: rhs})
	return true
}

// flipCmp mirrors a comparison across its operands: c < x becomes x > c.
func flipCmp(op sql.BinOp) sql.BinOp {
	switch op {
	case sql.OpLT:
		return sql.OpGT
	case sql.OpGT:
		return sql.OpLT
	case sql.OpLE:
		return sql.OpGE
	case sql.OpGE:
		return sql.OpLE
	}
	return op // EQ, NE are symmetric
}

// resolve evaluates the row-independent right-hand sides into rhsBuf,
// caller scratch reused across batches.
func (p *vecPred) resolve(rhsBuf []types.Value, env *Env) ([]types.Value, error) {
	rhsBuf = rhsBuf[:0]
	for i := range p.leaves {
		v, err := p.leaves[i].rhs.Eval(nil, env)
		if err != nil {
			return rhsBuf, err
		}
		rhsBuf = append(rhsBuf, v)
	}
	return rhsBuf, nil
}

// holds reports whether row satisfies every leaf against the resolved
// right-hand sides.
func (p *vecPred) holds(row types.Row, rhs []types.Value, env *Env) (bool, error) {
	for i := range p.leaves {
		lf := &p.leaves[i]
		if lf.col < 0 || lf.col >= len(row) {
			// Defer to the interpreter for its exact error message.
			_, err := (&ColExpr{I: lf.col}).Eval(row, env)
			return false, err
		}
		l, r := &row[lf.col], &rhs[i]
		if l.K == types.KindNull || r.K == types.KindNull {
			return false, nil // NULL comparison is not true
		}
		var c int
		switch {
		case l.K == types.KindInt && r.K == types.KindInt:
			c = cmpInt(l.I, r.I)
		case l.K == types.KindFloat && r.K == types.KindFloat:
			switch {
			case l.F < r.F:
				c = -1
			case l.F > r.F:
				c = 1
			}
		case l.K == types.KindString && r.K == types.KindString:
			c = strings.Compare(l.S, r.S)
		default:
			c = types.Compare(*l, *r)
		}
		if !cmpHolds(lf.op, c) {
			return false, nil
		}
	}
	return true, nil
}

// sel appends the rows satisfying the predicate to out. rhsBuf is caller
// scratch for the resolved right-hand sides (reused across batches).
func (p *vecPred) sel(rows, out []types.Row, rhsBuf []types.Value, env *Env) ([]types.Row, []types.Value, error) {
	rhsBuf, err := p.resolve(rhsBuf, env)
	if err != nil {
		return out, rhsBuf, err
	}
	for _, row := range rows {
		ok, err := p.holds(row, rhsBuf, env)
		if err != nil {
			return out, rhsBuf, err
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, rhsBuf, nil
}
