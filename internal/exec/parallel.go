package exec

import (
	"fmt"
	"sync"

	"mtcache/internal/metrics"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// Intra-query parallelism: the Exchange (Gather) enforcer runs DOP clones of
// its Template pipeline on worker goroutines, each over a disjoint partition
// of the same pinned MVCC snapshot, and merges their output through a bounded
// channel. The optimizer inserts Exchange cost-based (see opt/parallel.go);
// partition bounds are computed once at Open from the shared snapshot, so
// workers never coordinate during the scan.

// exchangeBatch is how many rows ride in one channel send; batching
// amortizes channel synchronization on the row path.
const exchangeBatch = 64

// Exchange runs DOP partitioned clones of Template concurrently and gathers
// their rows. Row order across partitions is unspecified. Errors from any
// worker cancel the others; Close is safe at any point and never leaks
// goroutines: it aborts the workers, drains the channel, and waits for them.
type Exchange struct {
	Template Operator
	DOP      int

	workers    []Operator
	ch         chan []types.Row
	abort      chan struct{}
	abortOnce  *sync.Once
	wg         sync.WaitGroup
	mu         sync.Mutex
	err        error
	buf        []types.Row
	bufPos     int
	workerRows []int64
	opened     bool
	closed     bool
}

func (e *Exchange) Columns() []ColInfo { return e.Template.Columns() }

func (e *Exchange) Open(ctx *Ctx) error {
	dop := e.DOP
	if dop < 1 {
		dop = 1
	}
	e.workers = make([]Operator, dop)
	for i := range e.workers {
		e.workers[i] = CloneOperator(e.Template)
	}
	if err := bindPartitions(ctx, e.Template, e.workers); err != nil {
		return err
	}
	metrics.Default.Counter("exec.parallel_exchanges").Add(1)
	metrics.Default.Counter("exec.parallel_workers").Add(int64(dop))
	span := ctx.Span.Child("exchange")
	span.Attr("dop", fmt.Sprint(dop))

	e.ch = make(chan []types.Row, dop*2)
	e.abort = make(chan struct{})
	e.abortOnce = &sync.Once{}
	e.err = nil
	e.buf, e.bufPos = nil, 0
	e.workerRows = make([]int64, dop)
	e.opened, e.closed = true, false

	var done <-chan struct{}
	if ctx.Context != nil {
		done = ctx.Context.Done()
	}
	e.wg.Add(dop)
	for i := range e.workers {
		wctx := *ctx
		wctx.Counters = &Counters{}
		wctx.Span = span.Child(fmt.Sprintf("worker%d", i))
		go e.runWorker(i, e.workers[i], &wctx, ctx, done)
	}
	// Closer: once every worker has exited, the stream is complete.
	go func() {
		e.wg.Wait()
		close(e.ch)
		span.End()
	}()
	return nil
}

// runWorker drives one partitioned clone to completion, pushing row batches
// to the gather channel. Worker counters are private and merged into the
// parent's on exit; the worker span records the rows it produced.
func (e *Exchange) runWorker(i int, op Operator, ctx *Ctx, parent *Ctx, done <-chan struct{}) {
	var rows int64
	defer func() {
		e.workerRows[i] = rows
		if parent.Counters != nil {
			e.mu.Lock()
			parent.Counters.RowsScanned += ctx.Counters.RowsScanned
			parent.Counters.RowsRemote += ctx.Counters.RowsRemote
			parent.Counters.RemoteQueries += ctx.Counters.RemoteQueries
			parent.Counters.StartupPruned += ctx.Counters.StartupPruned
			e.mu.Unlock()
		}
		ctx.Span.Attr("rows", fmt.Sprint(rows))
		ctx.Span.End()
		e.wg.Done()
	}()
	if err := op.Open(ctx); err != nil {
		e.fail(err)
		return
	}
	defer op.Close()
	batch := make([]types.Row, 0, exchangeBatch)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case e.ch <- batch:
			batch = make([]types.Row, 0, exchangeBatch)
			return true
		case <-e.abort:
			return false
		case <-done:
			e.fail(parent.Context.Err())
			return false
		}
	}
	var in Batch
	for {
		select {
		case <-e.abort:
			return
		case <-done:
			e.fail(parent.Context.Err())
			return
		default:
		}
		// Pull a whole batch through the worker pipeline; the channel send
		// needs an owned slice, so rows are copied out of the reused window.
		if err := NextBatch(ctx, op, &in); err != nil {
			e.fail(err)
			return
		}
		if len(in.Rows) == 0 {
			flush()
			return
		}
		rows += int64(len(in.Rows))
		batch = append(batch, in.Rows...)
		if len(batch) >= exchangeBatch {
			if !flush() {
				return
			}
		}
	}
}

// fail records the first worker error and aborts the other workers.
func (e *Exchange) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.abortOnce.Do(func() { close(e.abort) })
}

func (e *Exchange) Next(*Ctx) (types.Row, error) {
	for {
		if e.bufPos < len(e.buf) {
			row := e.buf[e.bufPos]
			e.bufPos++
			return row, nil
		}
		batch, ok := <-e.ch
		if !ok {
			e.mu.Lock()
			err := e.err
			e.mu.Unlock()
			return nil, err
		}
		e.buf, e.bufPos = batch, 0
	}
}

// BatchNext hands a whole worker chunk to the parent per call instead of
// one row per virtual call.
func (e *Exchange) BatchNext(_ *Ctx, b *Batch) error {
	if e.bufPos < len(e.buf) {
		b.Rows = append(b.Rows[:0], e.buf[e.bufPos:]...)
		e.bufPos = len(e.buf)
		return nil
	}
	batch, ok := <-e.ch
	if !ok {
		e.mu.Lock()
		err := e.err
		e.mu.Unlock()
		b.Rows = b.Rows[:0]
		return err
	}
	b.Rows = append(b.Rows[:0], batch...)
	return nil
}

func (e *Exchange) Close() error {
	if !e.opened || e.closed {
		return nil
	}
	e.closed = true
	e.abortOnce.Do(func() { close(e.abort) })
	// Drain until the closer closes the channel: unblocks any worker parked
	// on a send, then the Wait below guarantees no goroutine outlives Close.
	for range e.ch {
	}
	e.wg.Wait()
	e.buf = nil
	e.workers = nil
	return nil
}

// WorkerRows reports how many rows each worker produced in the last
// execution. Valid after the stream is drained or Close returns; EXPLAIN
// ANALYZE prints it.
func (e *Exchange) WorkerRows() []int64 { return e.workerRows }

// bindPartitions walks the template tree and all worker clones in lockstep
// (CloneOperator preserves shape), computes partition bounds once from the
// shared snapshot, and installs each worker's binding: heap-slot ranges on
// Parallel Scans, separator-key ranges on Parallel IndexScans, and one
// sharedBuild on ShareBuild HashJoins.
func bindPartitions(ctx *Ctx, tmpl Operator, workers []Operator) error {
	switch t := tmpl.(type) {
	case *Scan:
		if !t.Parallel {
			return nil
		}
		tv := ctx.Txn.Table(t.TableName)
		if tv == nil {
			if err := ctx.Txn.Err(); err != nil {
				return err
			}
			return fmt.Errorf("exec: table %s does not exist", t.TableName)
		}
		parts := tv.SlotPartitions(len(workers))
		for i, w := range workers {
			ws := w.(*Scan)
			if i < len(parts) {
				r := parts[i]
				ws.part = &r
			} else {
				ws.part = &storage.SlotRange{} // empty range
			}
		}
	case *IndexScan:
		if !t.Parallel {
			return nil
		}
		tv := ctx.Txn.Table(t.TableName)
		if tv == nil {
			if err := ctx.Txn.Err(); err != nil {
				return err
			}
			return fmt.Errorf("exec: table %s does not exist", t.TableName)
		}
		iv := tv.Index(t.IndexName)
		if iv == nil {
			return fmt.Errorf("exec: index %s on %s does not exist", t.IndexName, t.TableName)
		}
		seps := iv.SeparatorKeys(len(workers))
		for i, w := range workers {
			ws := w.(*IndexScan)
			p := &indexPart{}
			switch {
			case i > len(seps):
				p.empty = true // more workers than key ranges
			default:
				if i > 0 {
					p.lo = seps[i-1]
				}
				if i < len(seps) {
					p.hi = seps[i]
				}
			}
			ws.part = p
		}
	case *Filter:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*Filter).Input }))
	case *Project:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*Project).Input }))
	case *Limit:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*Limit).Input }))
	case *Distinct:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*Distinct).Input }))
	case *Sort:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*Sort).Input }))
	case *TopN:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*TopN).Input }))
	case *HashAgg:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*HashAgg).Input }))
	case *PartialAgg:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*PartialAgg).Input }))
	case *HashJoin:
		if t.ShareBuild {
			sb := newSharedBuild(t, len(workers))
			for _, w := range workers {
				w.(*HashJoin).shared = sb
			}
			// Only the probe side is partitioned; the build side belongs to
			// the shared build.
			return bindPartitions(ctx, t.Left, pickChildren(workers, func(op Operator) Operator { return op.(*HashJoin).Left }))
		}
		if err := bindPartitions(ctx, t.Left, pickChildren(workers, func(op Operator) Operator { return op.(*HashJoin).Left })); err != nil {
			return err
		}
		return bindPartitions(ctx, t.Right, pickChildren(workers, func(op Operator) Operator { return op.(*HashJoin).Right }))
	case *NestedLoop:
		if err := bindPartitions(ctx, t.Left, pickChildren(workers, func(op Operator) Operator { return op.(*NestedLoop).Left })); err != nil {
			return err
		}
		return bindPartitions(ctx, t.Right, pickChildren(workers, func(op Operator) Operator { return op.(*NestedLoop).Right }))
	case *UnionAll:
		for ci := range t.Inputs {
			ci := ci
			if err := bindPartitions(ctx, t.Inputs[ci], pickChildren(workers, func(op Operator) Operator { return op.(*UnionAll).Inputs[ci] })); err != nil {
				return err
			}
		}
	case *StartupFilter:
		return bindPartitions(ctx, t.Input, pickChildren(workers, func(op Operator) Operator { return op.(*StartupFilter).Input }))
	}
	return nil
}

func pickChildren(workers []Operator, pick func(Operator) Operator) []Operator {
	out := make([]Operator, len(workers))
	for i, w := range workers {
		out[i] = pick(w)
	}
	return out
}

// sharedBuild materializes one hash-join build table exactly once — the
// first worker in runs it, everyone blocks on the same sync.Once — and
// shares the resulting read-only table across all probe workers. When the
// build side itself has a Parallel leaf, the build is partitioned across
// goroutines and the per-partition tables merged.
type sharedBuild struct {
	once  sync.Once
	build func(ctx *Ctx) (map[uint64][]types.Row, error)
	table map[uint64][]types.Row
	err   error
}

func (s *sharedBuild) get(ctx *Ctx) (map[uint64][]types.Row, error) {
	s.once.Do(func() { s.table, s.err = s.build(ctx) })
	return s.table, s.err
}

func newSharedBuild(tj *HashJoin, dop int) *sharedBuild {
	sb := &sharedBuild{}
	sb.build = func(ctx *Ctx) (map[uint64][]types.Row, error) {
		if dop > 1 && hasParallelLeaf(tj.Right) {
			return parallelBuild(ctx, tj.Right, tj.RightKeys, tj.BuildEst, dop)
		}
		return buildHashTable(ctx, CloneOperator(tj.Right), tj.RightKeys, tj.BuildEst)
	}
	return sb
}

// parallelBuild partitions the build-side pipeline across dop goroutines and
// merges their private hash tables into one.
func parallelBuild(ctx *Ctx, tmpl Operator, keys []Expr, est float64, dop int) (map[uint64][]types.Row, error) {
	clones := make([]Operator, dop)
	for i := range clones {
		clones[i] = CloneOperator(tmpl)
	}
	if err := bindPartitions(ctx, tmpl, clones); err != nil {
		return nil, err
	}
	tables := make([]map[uint64][]types.Row, dop)
	errs := make([]error, dop)
	counters := make([]*Counters, dop)
	var wg sync.WaitGroup
	for i := range clones {
		wg.Add(1)
		counters[i] = &Counters{}
		go func(i int) {
			defer wg.Done()
			wctx := *ctx
			wctx.Counters = counters[i]
			tables[i], errs[i] = buildHashTable(&wctx, clones[i], keys, est/float64(dop))
		}(i)
	}
	wg.Wait()
	if ctx.Counters != nil {
		for _, c := range counters {
			ctx.Counters.RowsScanned += c.RowsScanned
			ctx.Counters.RowsRemote += c.RowsRemote
			ctx.Counters.RemoteQueries += c.RemoteQueries
			ctx.Counters.StartupPruned += c.StartupPruned
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := tables[0]
	for _, t := range tables[1:] {
		for h, rows := range t {
			merged[h] = append(merged[h], rows...)
		}
	}
	return merged, nil
}

// hasParallelLeaf reports whether op contains a Parallel-marked scan the
// partition binder can split.
func hasParallelLeaf(op Operator) bool {
	switch x := op.(type) {
	case *Scan:
		return x.Parallel
	case *IndexScan:
		return x.Parallel
	case *Filter:
		return hasParallelLeaf(x.Input)
	case *Project:
		return hasParallelLeaf(x.Input)
	case *HashJoin:
		return hasParallelLeaf(x.Left)
	}
	return false
}
