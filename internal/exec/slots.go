package exec

// Dense parameter slots: AssignParamSlots runs once per plan (the optimizer
// calls it from finish()) and burns a slot index into every ParamExpr, so
// per-row parameter access on the hot path is a slice load instead of a
// map[string] lookup. Slots are 1-based inside ParamExpr — the zero value
// means "unslotted, resolve by name" — which keeps hand-built ParamExpr
// literals (tests, CompileScalar for DML) working unchanged.

// AssignParamSlots assigns every ParamExpr reachable from root a dense slot
// and returns the parameter names in slot order. Idempotent: parameters are
// slotted by first appearance, and expressions shared between operators get
// the same slot on every visit.
func AssignParamSlots(root Operator) []string {
	var names []string
	index := map[string]int{}
	WalkExprs(root, func(e Expr) {
		walkExprTree(e, func(x Expr) {
			if p, ok := x.(*ParamExpr); ok {
				i, seen := index[p.Name]
				if !seen {
					i = len(names)
					index[p.Name] = i
					names = append(names, p.Name)
				}
				p.slot = i + 1
			}
		})
	})
	return names
}

// WalkExprs invokes fn on every compiled expression attached to the operator
// tree rooted at op (including nil-checked optional ones).
func WalkExprs(op Operator, fn func(Expr)) {
	visit := func(e Expr) {
		if e != nil {
			fn(e)
		}
	}
	switch x := op.(type) {
	case *Scan, *Remote, *VirtualScan:
	case *IndexScan:
		for _, e := range x.Lo {
			visit(e)
		}
		for _, e := range x.Hi {
			visit(e)
		}
	case *Filter:
		visit(x.Pred)
		WalkExprs(x.Input, fn)
	case *StartupFilter:
		visit(x.Guard)
		WalkExprs(x.Input, fn)
	case *Project:
		for _, e := range x.Exprs {
			visit(e)
		}
		WalkExprs(x.Input, fn)
	case *Limit:
		visit(x.N)
		WalkExprs(x.Input, fn)
	case *Sort:
		for _, k := range x.Keys {
			visit(k.E)
		}
		WalkExprs(x.Input, fn)
	case *TopN:
		visit(x.N)
		for _, k := range x.Keys {
			visit(k.E)
		}
		WalkExprs(x.Input, fn)
	case *Distinct:
		WalkExprs(x.Input, fn)
	case *HashJoin:
		for _, e := range x.LeftKeys {
			visit(e)
		}
		for _, e := range x.RightKeys {
			visit(e)
		}
		visit(x.Residual)
		WalkExprs(x.Left, fn)
		WalkExprs(x.Right, fn)
	case *NestedLoop:
		visit(x.Pred)
		WalkExprs(x.Left, fn)
		WalkExprs(x.Right, fn)
	case *UnionAll:
		for _, in := range x.Inputs {
			WalkExprs(in, fn)
		}
	case *HashAgg:
		for _, e := range x.GroupBy {
			visit(e)
		}
		for _, a := range x.Aggs {
			visit(a.Arg)
		}
		WalkExprs(x.Input, fn)
	case *PartialAgg:
		for _, e := range x.GroupBy {
			visit(e)
		}
		for _, a := range x.Aggs {
			visit(a.Arg)
		}
		WalkExprs(x.Input, fn)
	case *FinalAgg:
		for _, a := range x.Aggs {
			visit(a.Arg)
		}
		WalkExprs(x.Input, fn)
	case *Exchange:
		WalkExprs(x.Template, fn)
	case *Values:
		for _, row := range x.Rows {
			for _, e := range row {
				visit(e)
			}
		}
	case *Instrumented:
		WalkExprs(x.Op, fn)
	}
}

// walkExprTree invokes fn on e and every subexpression.
func walkExprTree(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinExpr:
		walkExprTree(x.L, fn)
		walkExprTree(x.R, fn)
	case *NotExpr:
		walkExprTree(x.X, fn)
	case *NegExpr:
		walkExprTree(x.X, fn)
	case *LikeMatch:
		walkExprTree(x.X, fn)
		walkExprTree(x.Pattern, fn)
	case *InMatch:
		walkExprTree(x.X, fn)
		for _, le := range x.List {
			walkExprTree(le, fn)
		}
	case *BetweenMatch:
		walkExprTree(x.X, fn)
		walkExprTree(x.Lo, fn)
		walkExprTree(x.Hi, fn)
	case *IsNullMatch:
		walkExprTree(x.X, fn)
	case *CaseMatch:
		for _, w := range x.Whens {
			walkExprTree(w.Cond, fn)
			walkExprTree(w.Then, fn)
		}
		walkExprTree(x.Else, fn)
	case *ScalarFunc:
		for _, a := range x.Args {
			walkExprTree(a, fn)
		}
	}
}
