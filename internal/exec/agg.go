package exec

import (
	"fmt"

	"mtcache/internal/types"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

const (
	AggCount AggFunc = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// ParseAggFunc maps a function name (upper case) to an AggFunc.
// star selects COUNT(*) vs COUNT(expr).
func ParseAggFunc(name string, star bool) (AggFunc, bool) {
	switch name {
	case "COUNT":
		if star {
			return AggCountStar, true
		}
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	}
	return 0, false
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func     AggFunc
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	allInt  bool
	min     types.Value
	max     types.Value
	started bool
	seen    map[uint64][]types.Value // for DISTINCT
}

func newAggState() *aggState { return &aggState{allInt: true} }

func (a *aggState) add(spec AggSpec, v types.Value) {
	if spec.Func != AggCountStar && v.IsNull() {
		return // SQL aggregates ignore NULLs
	}
	if spec.Distinct {
		if a.seen == nil {
			a.seen = make(map[uint64][]types.Value)
		}
		h := v.Hash()
		for _, prev := range a.seen[h] {
			if types.Equal(prev, v) {
				return
			}
		}
		a.seen[h] = append(a.seen[h], v)
	}
	a.count++
	switch spec.Func {
	case AggSum, AggAvg:
		if v.K == types.KindInt {
			a.sumInt += v.I
		} else {
			a.allInt = false
		}
		a.sum += v.Float()
	case AggMin:
		if !a.started || types.Compare(v, a.min) < 0 {
			a.min = v
		}
	case AggMax:
		if !a.started || types.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.started = true
}

func (a *aggState) result(spec AggSpec) types.Value {
	switch spec.Func {
	case AggCount, AggCountStar:
		return types.NewInt(a.count)
	case AggSum:
		if a.count == 0 {
			return types.Null
		}
		if a.allInt {
			return types.NewInt(a.sumInt)
		}
		return types.NewFloat(a.sum)
	case AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat(a.sum / float64(a.count))
	case AggMin:
		if !a.started {
			return types.Null
		}
		return a.min
	case AggMax:
		if !a.started {
			return types.Null
		}
		return a.max
	}
	return types.Null
}

// HashAgg groups its input by the GroupBy expressions and computes the
// aggregates. Output rows are [group keys..., agg results...].
// With no GroupBy the output is a single global-aggregate row.
type HashAgg struct {
	Input   Operator
	GroupBy []Expr
	Aggs    []AggSpec
	Cols    []ColInfo

	out []types.Row
	pos int
}

func (h *HashAgg) Columns() []ColInfo { return h.Cols }

// aggGroup is one group's accumulated state, shared by HashAgg and the
// per-worker PartialAgg.
type aggGroup struct {
	keys   types.Row
	states []*aggState
}

// aggregateInput opens, drains and closes input, grouping rows by the
// groupBy expressions and feeding the aggregate states. Input is pulled in
// batches; the group-key row is evaluated into a reusable buffer and cloned
// only when it starts a new group. Groups come back in first-seen order.
// With no groupBy, one global group exists even for empty input.
func aggregateInput(ctx *Ctx, input Operator, groupBy []Expr, aggs []AggSpec) ([]*aggGroup, error) {
	if err := input.Open(ctx); err != nil {
		return nil, err
	}
	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup
	newGroup := func(keys types.Row) *aggGroup {
		g := &aggGroup{keys: keys, states: make([]*aggState, len(aggs))}
		for i := range g.states {
			g.states[i] = newAggState()
		}
		order = append(order, g)
		return g
	}
	if len(groupBy) == 0 {
		// Global aggregate: one group exists even with zero input rows.
		// Register it under the empty row's hash so per-row lookups find it.
		groups[(types.Row{}).Hash()] = []*aggGroup{newGroup(types.Row{})}
	}

	// Vectorized fast path (batch mode only, so RowMode stays the faithful
	// pre-vectorization baseline): grouping by one column of INT values
	// probes a direct int-keyed table instead of evaluating the key
	// expression, FNV-hashing it and comparing candidate key rows for every
	// input row; column aggregate arguments are read by index. The first
	// row whose key is not a non-NULL INT migrates the groups built so far
	// into the generic table and aggregation continues interpreted.
	keyCol := -1
	if !ctx.RowMode && len(groupBy) == 1 {
		if c, ok := groupBy[0].(*ColExpr); ok {
			keyCol = c.I
		}
	}
	var intGroups map[int64]*aggGroup
	var argCols []int
	if keyCol >= 0 {
		intGroups = make(map[int64]*aggGroup)
		argCols = make([]int, len(aggs))
		for i, s := range aggs {
			switch a := s.Arg.(type) {
			case nil:
				argCols[i] = -2 // COUNT(*): no argument
			case *ColExpr:
				argCols[i] = a.I
			default:
				argCols[i] = -1 // interpreted argument
			}
		}
	}

	keyBuf := make(types.Row, len(groupBy))
	var b Batch
	// Group keys are cloned and aggregate inputs copied by value, so the
	// producer may recycle delivered rows.
	b.Ephemeral = true
	for {
		if err := NextBatch(ctx, input, &b); err != nil {
			return nil, err
		}
		if len(b.Rows) == 0 {
			break
		}
		rows := b.Rows
		if intGroups != nil {
			n, err := aggIntKeyBatch(ctx, rows, keyCol, argCols, aggs, intGroups, newGroup)
			if err != nil {
				return nil, err
			}
			if n == len(rows) {
				continue
			}
			for _, g := range order {
				h := g.keys.Hash()
				groups[h] = append(groups[h], g)
			}
			intGroups = nil
			rows = rows[n:]
		}
		for _, row := range rows {
			for i, e := range groupBy {
				v, err := e.Eval(row, &ctx.Env)
				if err != nil {
					return nil, err
				}
				keyBuf[i] = v
			}
			hash := keyBuf.Hash()
			var g *aggGroup
			for _, cand := range groups[hash] {
				if types.RowsEqual(cand.keys, keyBuf) {
					g = cand
					break
				}
			}
			if g == nil {
				g = newGroup(append(types.Row{}, keyBuf...))
				groups[hash] = append(groups[hash], g)
			}
			for i, spec := range aggs {
				var v types.Value
				if spec.Arg != nil {
					var err error
					v, err = spec.Arg.Eval(row, &ctx.Env)
					if err != nil {
						return nil, err
					}
				}
				g.states[i].add(spec, v)
			}
		}
	}
	input.Close()
	return order, nil
}

// aggIntKeyBatch aggregates rows grouped by the INT values of column keyCol,
// returning how many leading rows it consumed. It stops (and the caller
// migrates to the generic hash table) at the first row whose key is not a
// non-NULL INT.
func aggIntKeyBatch(ctx *Ctx, rows []types.Row, keyCol int, argCols []int, aggs []AggSpec, intGroups map[int64]*aggGroup, newGroup func(types.Row) *aggGroup) (int, error) {
	for n, row := range rows {
		if keyCol >= len(row) || row[keyCol].K != types.KindInt {
			return n, nil
		}
		k := row[keyCol].I
		g := intGroups[k]
		if g == nil {
			g = newGroup(types.Row{types.NewInt(k)})
			intGroups[k] = g
		}
		for i := range aggs {
			var v types.Value
			switch c := argCols[i]; {
			case c == -2:
				// COUNT(*): no argument.
			case c >= 0 && c < len(row):
				v = row[c]
			default:
				var err error
				v, err = aggs[i].Arg.Eval(row, &ctx.Env)
				if err != nil {
					return n, err
				}
			}
			g.states[i].add(aggs[i], v)
		}
	}
	return len(rows), nil
}

func (h *HashAgg) Open(ctx *Ctx) error {
	order, err := aggregateInput(ctx, h.Input, h.GroupBy, h.Aggs)
	if err != nil {
		return err
	}
	h.out = h.out[:0]
	for _, g := range order {
		row := make(types.Row, 0, len(g.keys)+len(h.Aggs))
		row = append(row, g.keys...)
		for i, spec := range h.Aggs {
			row = append(row, g.states[i].result(spec))
		}
		h.out = append(h.out, row)
	}
	h.pos = 0
	return nil
}

func (h *HashAgg) Next(*Ctx) (types.Row, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	row := h.out[h.pos]
	h.pos++
	return row, nil
}

// BatchNext slices the materialized output.
func (h *HashAgg) BatchNext(_ *Ctx, b *Batch) error {
	sliceBatch(h.out, &h.pos, b)
	return nil
}

func (h *HashAgg) Close() error {
	h.out = nil
	return nil
}

// ValidateAggShape sanity-checks an AggSpec list against the operator's
// declared columns; used by plan construction tests.
func (h *HashAgg) ValidateAggShape() error {
	want := len(h.GroupBy) + len(h.Aggs)
	if len(h.Cols) != want {
		return fmt.Errorf("exec: HashAgg declares %d columns, computes %d", len(h.Cols), want)
	}
	return nil
}
