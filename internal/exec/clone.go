package exec

import "fmt"

// CloneOperator deep-copies an operator tree's structure, leaving runtime
// state (cursors, hash tables, buffers) fresh. Compiled expressions are
// immutable and shared.
//
// This is what makes the engine's plan cache safe: a cached plan may be
// executed by many sessions concurrently, so each execution runs a private
// clone of the operator tree.
func CloneOperator(op Operator) Operator {
	switch x := op.(type) {
	case *Scan:
		return &Scan{TableName: x.TableName, Cols: x.Cols, Parallel: x.Parallel}
	case *IndexScan:
		return &IndexScan{TableName: x.TableName, IndexName: x.IndexName, Cols: x.Cols, Lo: x.Lo, Hi: x.Hi, Parallel: x.Parallel, EstRows: x.EstRows}
	case *Filter:
		return &Filter{Input: CloneOperator(x.Input), Pred: x.Pred}
	case *StartupFilter:
		return &StartupFilter{Input: CloneOperator(x.Input), Guard: x.Guard, Branch: x.Branch}
	case *Project:
		return &Project{Input: CloneOperator(x.Input), Exprs: x.Exprs, Cols: x.Cols}
	case *Limit:
		return &Limit{Input: CloneOperator(x.Input), N: x.N}
	case *Sort:
		return &Sort{Input: CloneOperator(x.Input), Keys: x.Keys}
	case *Distinct:
		return &Distinct{Input: CloneOperator(x.Input)}
	case *HashJoin:
		return &HashJoin{
			Left: CloneOperator(x.Left), Right: CloneOperator(x.Right),
			LeftKeys: x.LeftKeys, RightKeys: x.RightKeys,
			LeftOuter: x.LeftOuter, Residual: x.Residual, BuildEst: x.BuildEst,
			ShareBuild: x.ShareBuild,
		}
	case *NestedLoop:
		return &NestedLoop{
			Left: CloneOperator(x.Left), Right: CloneOperator(x.Right),
			Pred: x.Pred, LeftOuter: x.LeftOuter,
		}
	case *UnionAll:
		inputs := make([]Operator, len(x.Inputs))
		for i, in := range x.Inputs {
			inputs[i] = CloneOperator(in)
		}
		return &UnionAll{Inputs: inputs}
	case *HashAgg:
		return &HashAgg{Input: CloneOperator(x.Input), GroupBy: x.GroupBy, Aggs: x.Aggs, Cols: x.Cols}
	case *PartialAgg:
		return &PartialAgg{Input: CloneOperator(x.Input), GroupBy: x.GroupBy, Aggs: x.Aggs, Cols: x.Cols}
	case *FinalAgg:
		return &FinalAgg{Input: CloneOperator(x.Input), GroupKeys: x.GroupKeys, Aggs: x.Aggs, Cols: x.Cols}
	case *TopN:
		return &TopN{Input: CloneOperator(x.Input), Keys: x.Keys, N: x.N}
	case *Exchange:
		// The template is cloned too: each execution then binds partitions
		// and shared builds on a private tree.
		return &Exchange{Template: CloneOperator(x.Template), DOP: x.DOP}
	case *Remote:
		return &Remote{SQLText: x.SQLText, Cols: x.Cols}
	case *Values:
		return &Values{Cols: x.Cols, Rows: x.Rows}
	case *VirtualScan:
		return &VirtualScan{Name: x.Name, Rows: x.Rows, Cols: x.Cols}
	case *Instrumented:
		return &Instrumented{Op: CloneOperator(x.Op)}
	}
	panic(fmt.Sprintf("exec: CloneOperator: unknown operator %T", op))
}
