package exec

import (
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// newTestStore builds a store with table nums(a INT PRIMARY KEY, b VARCHAR)
// holding n rows (i, name_i%5).
func newTestStore(t *testing.T, n int64) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	meta := &catalog.Table{
		Name: "nums",
		Columns: []catalog.Column{
			{Name: "a", Type: types.KindInt},
			{Name: "b", Type: types.KindString},
		},
		PrimaryKey: []int{0},
	}
	if err := s.CreateTable(meta); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(true)
	names := []string{"red", "green", "blue", "cyan", "teal"}
	for i := int64(0); i < n; i++ {
		if _, err := tx.Insert("nums", types.Row{types.NewInt(i), types.NewString(names[i%5])}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	return s
}

func numsCols() []ColInfo {
	return []ColInfo{{Table: "nums", Name: "a", Kind: types.KindInt}, {Table: "nums", Name: "b", Kind: types.KindString}}
}

func runOp(t *testing.T, s *storage.Store, op Operator, params Params) *ResultSet {
	t.Helper()
	tx := s.Begin(false)
	defer tx.Abort()
	ctx := &Ctx{Params: params, Txn: tx, Counters: &Counters{}}
	rs, err := Run(op, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestScanAll(t *testing.T) {
	s := newTestStore(t, 10)
	rs := runOp(t, s, &Scan{TableName: "nums", Cols: numsCols()}, nil)
	if len(rs.Rows) != 10 {
		t.Fatalf("rows %d", len(rs.Rows))
	}
}

func TestFilterPredicate(t *testing.T) {
	s := newTestStore(t, 100)
	op := &Filter{
		Input: &Scan{TableName: "nums", Cols: numsCols()},
		Pred:  &BinExpr{Op: sql.OpLT, L: &ColExpr{I: 0}, R: &ConstExpr{V: types.NewInt(10)}},
	}
	rs := runOp(t, s, op, nil)
	if len(rs.Rows) != 10 {
		t.Fatalf("rows %d", len(rs.Rows))
	}
}

func TestIndexScanRange(t *testing.T) {
	s := newTestStore(t, 100)
	op := &IndexScan{
		TableName: "nums", IndexName: "__pk", Cols: numsCols(),
		Lo: []Expr{&ConstExpr{V: types.NewInt(20)}},
		Hi: []Expr{&ConstExpr{V: types.NewInt(29)}},
	}
	tx := s.Begin(false)
	defer tx.Abort()
	ctr := &Counters{}
	rs, err := Run(op, &Ctx{Txn: tx, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 10 {
		t.Fatalf("rows %d", len(rs.Rows))
	}
	if ctr.RowsScanned != 10 {
		t.Errorf("index scan touched %d rows, want 10", ctr.RowsScanned)
	}
}

func TestIndexScanParameterizedBound(t *testing.T) {
	s := newTestStore(t, 100)
	op := &IndexScan{
		TableName: "nums", IndexName: "__pk", Cols: numsCols(),
		Lo: []Expr{&ParamExpr{Name: "k"}},
		Hi: []Expr{&ParamExpr{Name: "k"}},
	}
	rs := runOp(t, s, op, Params{"k": types.NewInt(42)})
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != 42 {
		t.Fatalf("param seek: %v", rs.Rows)
	}
}

func TestProjectComputes(t *testing.T) {
	s := newTestStore(t, 3)
	op := &Project{
		Input: &Scan{TableName: "nums", Cols: numsCols()},
		Exprs: []Expr{&BinExpr{Op: sql.OpMul, L: &ColExpr{I: 0}, R: &ConstExpr{V: types.NewInt(2)}}},
		Cols:  []ColInfo{{Name: "a2", Kind: types.KindInt}},
	}
	rs := runOp(t, s, op, nil)
	if rs.Rows[2][0].Int() != 4 {
		t.Fatalf("projection: %v", rs.Rows)
	}
}

func TestLimitAndSort(t *testing.T) {
	s := newTestStore(t, 50)
	op := &Limit{
		N: &ConstExpr{V: types.NewInt(3)},
		Input: &Sort{
			Input: &Scan{TableName: "nums", Cols: numsCols()},
			Keys:  []SortKey{{E: &ColExpr{I: 0}, Desc: true}},
		},
	}
	rs := runOp(t, s, op, nil)
	if len(rs.Rows) != 3 || rs.Rows[0][0].Int() != 49 || rs.Rows[2][0].Int() != 47 {
		t.Fatalf("top-3 desc: %v", rs.Rows)
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	s := newTestStore(t, 10)
	op := &Sort{
		Input: &Scan{TableName: "nums", Cols: numsCols()},
		Keys:  []SortKey{{E: &ColExpr{I: 1}}, {E: &ColExpr{I: 0}, Desc: true}},
	}
	rs := runOp(t, s, op, nil)
	// first group is "blue" (b sorted asc), within it a desc
	if rs.Rows[0][1].Str() != "blue" || rs.Rows[0][0].Int() != 7 {
		t.Fatalf("multi-key sort: %v", rs.Rows[0])
	}
}

func TestHashJoinInner(t *testing.T) {
	s := newTestStore(t, 10)
	// self join on a = a
	op := &HashJoin{
		Left:      &Scan{TableName: "nums", Cols: numsCols()},
		Right:     &Scan{TableName: "nums", Cols: numsCols()},
		LeftKeys:  []Expr{&ColExpr{I: 0}},
		RightKeys: []Expr{&ColExpr{I: 0}},
	}
	rs := runOp(t, s, op, nil)
	if len(rs.Rows) != 10 {
		t.Fatalf("join rows %d", len(rs.Rows))
	}
	if len(rs.Rows[0]) != 4 {
		t.Fatalf("join width %d", len(rs.Rows[0]))
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	s := newTestStore(t, 10)
	// join a with a+100: no matches, all left rows padded
	op := &HashJoin{
		Left:      &Scan{TableName: "nums", Cols: numsCols()},
		Right:     &Scan{TableName: "nums", Cols: numsCols()},
		LeftKeys:  []Expr{&ColExpr{I: 0}},
		RightKeys: []Expr{&BinExpr{Op: sql.OpAdd, L: &ColExpr{I: 0}, R: &ConstExpr{V: types.NewInt(100)}}},
		LeftOuter: true,
	}
	rs := runOp(t, s, op, nil)
	if len(rs.Rows) != 10 {
		t.Fatalf("left join rows %d", len(rs.Rows))
	}
	if !rs.Rows[0][2].IsNull() || !rs.Rows[0][3].IsNull() {
		t.Fatal("unmatched right side should be NULL")
	}
}

func TestNestedLoopThetaJoin(t *testing.T) {
	s := newTestStore(t, 5)
	op := &NestedLoop{
		Left:  &Scan{TableName: "nums", Cols: numsCols()},
		Right: &Scan{TableName: "nums", Cols: numsCols()},
		Pred:  &BinExpr{Op: sql.OpLT, L: &ColExpr{I: 0}, R: &ColExpr{I: 2}},
	}
	rs := runOp(t, s, op, nil)
	// pairs (i,j) with i<j among 5 rows = 10
	if len(rs.Rows) != 10 {
		t.Fatalf("theta join rows %d", len(rs.Rows))
	}
}

func TestHashAggGrouped(t *testing.T) {
	s := newTestStore(t, 50)
	op := &HashAgg{
		Input:   &Scan{TableName: "nums", Cols: numsCols()},
		GroupBy: []Expr{&ColExpr{I: 1}},
		Aggs: []AggSpec{
			{Func: AggCountStar},
			{Func: AggSum, Arg: &ColExpr{I: 0}},
			{Func: AggMin, Arg: &ColExpr{I: 0}},
			{Func: AggMax, Arg: &ColExpr{I: 0}},
		},
		Cols: make([]ColInfo, 5),
	}
	rs := runOp(t, s, op, nil)
	if len(rs.Rows) != 5 {
		t.Fatalf("groups %d", len(rs.Rows))
	}
	for _, row := range rs.Rows {
		if row[1].Int() != 10 {
			t.Errorf("group %v count %d", row[0], row[1].Int())
		}
	}
}

func TestHashAggGlobalEmptyInput(t *testing.T) {
	s := newTestStore(t, 0)
	op := &HashAgg{
		Input: &Scan{TableName: "nums", Cols: numsCols()},
		Aggs:  []AggSpec{{Func: AggCountStar}, {Func: AggSum, Arg: &ColExpr{I: 0}}},
		Cols:  make([]ColInfo, 2),
	}
	rs := runOp(t, s, op, nil)
	if len(rs.Rows) != 1 {
		t.Fatalf("global agg over empty input must yield one row, got %d", len(rs.Rows))
	}
	if rs.Rows[0][0].Int() != 0 || !rs.Rows[0][1].IsNull() {
		t.Fatalf("COUNT=0, SUM=NULL expected: %v", rs.Rows[0])
	}
}

func TestAggDistinct(t *testing.T) {
	s := newTestStore(t, 50)
	op := &HashAgg{
		Input: &Scan{TableName: "nums", Cols: numsCols()},
		Aggs:  []AggSpec{{Func: AggCount, Arg: &ColExpr{I: 1}, Distinct: true}},
		Cols:  make([]ColInfo, 1),
	}
	rs := runOp(t, s, op, nil)
	if rs.Rows[0][0].Int() != 5 {
		t.Fatalf("count distinct: %v", rs.Rows[0])
	}
}

func TestStartupFilterPrunesInput(t *testing.T) {
	s := newTestStore(t, 10)
	ctr := &Counters{}
	tx := s.Begin(false)
	defer tx.Abort()
	// guard: @k <= 5 — false for k=7, so the scan must never open
	op := &StartupFilter{
		Guard: &BinExpr{Op: sql.OpLE, L: &ParamExpr{Name: "k"}, R: &ConstExpr{V: types.NewInt(5)}},
		Input: &Scan{TableName: "nums", Cols: numsCols()},
	}
	rs, err := Run(op, &Ctx{Txn: tx, Params: Params{"k": types.NewInt(7)}, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatal("pruned branch produced rows")
	}
	if ctr.StartupPruned != 1 {
		t.Error("startup prune not counted")
	}
	if ctr.RowsScanned != 0 {
		t.Error("pruned input was scanned")
	}
}

func TestChoosePlanShape(t *testing.T) {
	// UnionAll of two StartupFilters with complementary guards: exactly one
	// branch runs (paper figure 2b).
	s := newTestStore(t, 10)
	guard := &BinExpr{Op: sql.OpLE, L: &ParamExpr{Name: "k"}, R: &ConstExpr{V: types.NewInt(5)}}
	notGuard := &NotExpr{X: guard}
	local := &StartupFilter{Guard: guard, Input: &Scan{TableName: "nums", Cols: numsCols()}}
	remoteStub := &StartupFilter{Guard: notGuard, Input: &Values{
		Cols: numsCols(),
		Rows: [][]Expr{{&ConstExpr{V: types.NewInt(-1)}, &ConstExpr{V: types.NewString("remote")}}},
	}}
	op := &UnionAll{Inputs: []Operator{local, remoteStub}}

	rs := runOp(t, s, op, Params{"k": types.NewInt(3)})
	if len(rs.Rows) != 10 {
		t.Fatalf("local branch: %d rows", len(rs.Rows))
	}
	rs = runOp(t, s, op, Params{"k": types.NewInt(9)})
	if len(rs.Rows) != 1 || rs.Rows[0][1].Str() != "remote" {
		t.Fatalf("remote branch: %v", rs.Rows)
	}
}

type fakeRemote struct {
	queries []string
	result  *ResultSet
}

func (f *fakeRemote) Query(sqlText string, _ Params) (*ResultSet, error) {
	f.queries = append(f.queries, sqlText)
	return f.result, nil
}

func (f *fakeRemote) Exec(string, Params) (int64, error) { return 0, nil }

func TestRemoteOperator(t *testing.T) {
	s := newTestStore(t, 0)
	fr := &fakeRemote{result: &ResultSet{
		Cols: numsCols(),
		Rows: []types.Row{{types.NewInt(1), types.NewString("x")}},
	}}
	tx := s.Begin(false)
	defer tx.Abort()
	ctr := &Counters{}
	op := &Remote{SQLText: "SELECT a, b FROM nums", Cols: numsCols()}
	rs, err := Run(op, &Ctx{Txn: tx, Remote: fr, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || fr.queries[0] != "SELECT a, b FROM nums" {
		t.Fatalf("remote round trip: %v / %v", rs.Rows, fr.queries)
	}
	if ctr.RemoteQueries != 1 || ctr.RowsRemote != 1 {
		t.Error("remote counters")
	}
}

func TestRemoteWithoutClientFails(t *testing.T) {
	s := newTestStore(t, 0)
	tx := s.Begin(false)
	defer tx.Abort()
	op := &Remote{SQLText: "SELECT 1"}
	if _, err := Run(op, &Ctx{Txn: tx}); err == nil {
		t.Fatal("remote without client should fail")
	}
}

func TestDistinct(t *testing.T) {
	s := newTestStore(t, 50)
	op := &Distinct{Input: &Project{
		Input: &Scan{TableName: "nums", Cols: numsCols()},
		Exprs: []Expr{&ColExpr{I: 1}},
		Cols:  []ColInfo{{Name: "b", Kind: types.KindString}},
	}}
	rs := runOp(t, s, op, nil)
	if len(rs.Rows) != 5 {
		t.Fatalf("distinct rows %d", len(rs.Rows))
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_go", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"SQL Server", "%sql%", true}, // case-insensitive
		{"aXb", "a%c", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q)=%v want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := &ConstExpr{V: types.Null}
	tru := &ConstExpr{V: types.NewBool(true)}
	fls := &ConstExpr{V: types.NewBool(false)}

	// NULL AND FALSE = FALSE; NULL AND TRUE = NULL
	v, _ := (&BinExpr{Op: sql.OpAnd, L: null, R: fls}).Eval(nil, nil)
	if v.IsNull() || v.Bool() {
		t.Error("NULL AND FALSE should be FALSE")
	}
	v, _ = (&BinExpr{Op: sql.OpAnd, L: null, R: tru}).Eval(nil, nil)
	if !v.IsNull() {
		t.Error("NULL AND TRUE should be NULL")
	}
	// NULL OR TRUE = TRUE; NULL OR FALSE = NULL
	v, _ = (&BinExpr{Op: sql.OpOr, L: null, R: tru}).Eval(nil, nil)
	if v.IsNull() || !v.Bool() {
		t.Error("NULL OR TRUE should be TRUE")
	}
	v, _ = (&BinExpr{Op: sql.OpOr, L: null, R: fls}).Eval(nil, nil)
	if !v.IsNull() {
		t.Error("NULL OR FALSE should be NULL")
	}
	// comparisons with NULL are NULL
	v, _ = (&BinExpr{Op: sql.OpEQ, L: null, R: &ConstExpr{V: types.NewInt(1)}}).Eval(nil, nil)
	if !v.IsNull() {
		t.Error("NULL = 1 should be NULL")
	}
}

func TestDivisionByZero(t *testing.T) {
	e := &BinExpr{Op: sql.OpDiv, L: &ConstExpr{V: types.NewInt(1)}, R: &ConstExpr{V: types.NewInt(0)}}
	if _, err := e.Eval(nil, nil); err == nil {
		t.Error("int division by zero should error")
	}
}

func TestScalarFunctions(t *testing.T) {
	upper := &ScalarFunc{Name: "UPPER", Args: []Expr{&ConstExpr{V: types.NewString("abc")}}}
	v, err := upper.Eval(nil, nil)
	if err != nil || v.Str() != "ABC" {
		t.Errorf("UPPER: %v %v", v, err)
	}
	sub := &ScalarFunc{Name: "SUBSTRING", Args: []Expr{
		&ConstExpr{V: types.NewString("hello")}, &ConstExpr{V: types.NewInt(2)}, &ConstExpr{V: types.NewInt(3)},
	}}
	v, _ = sub.Eval(nil, nil)
	if v.Str() != "ell" {
		t.Errorf("SUBSTRING: %v", v)
	}
	co := &ScalarFunc{Name: "COALESCE", Args: []Expr{&ConstExpr{V: types.Null}, &ConstExpr{V: types.NewInt(5)}}}
	v, _ = co.Eval(nil, nil)
	if v.Int() != 5 {
		t.Errorf("COALESCE: %v", v)
	}
}

func TestMissingParamError(t *testing.T) {
	e := &ParamExpr{Name: "missing"}
	if _, err := e.Eval(nil, &Env{Named: Params{}}); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestInMatchNullSemantics(t *testing.T) {
	// 5 IN (1, NULL) = NULL (unknown)
	in := &InMatch{X: &ConstExpr{V: types.NewInt(5)}, List: []Expr{
		&ConstExpr{V: types.NewInt(1)}, &ConstExpr{V: types.Null},
	}}
	v, _ := in.Eval(nil, nil)
	if !v.IsNull() {
		t.Error("IN with NULL list member and no match should be NULL")
	}
	// 1 IN (1, NULL) = TRUE
	in2 := &InMatch{X: &ConstExpr{V: types.NewInt(1)}, List: in.List}
	v, _ = in2.Eval(nil, nil)
	if v.IsNull() || !v.Bool() {
		t.Error("IN should find the match despite NULLs")
	}
}
