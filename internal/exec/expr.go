// Package exec implements the Volcano-style iterator executor. Plans are
// trees of Operators; expressions are compiled from the SQL AST into a
// compact evaluable form with column references resolved to ordinals.
//
// Two operators here are the paper's additions to the executor:
//
//   - StartupFilter: a Select whose predicate references only parameters and
//     is evaluated once at Open; if false, the input is never opened. A
//     UnionAll over two StartupFilters with complementary guards is exactly
//     the paper's ChoosePlan implementation (§5.1, figure 2b).
//   - Remote: the DataTransfer operator. It ships a deparsed SQL text to the
//     backend through a RemoteClient and streams the result rows back.
package exec

import (
	"fmt"
	"strings"

	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Params carries the run-time parameter values of a query by name.
type Params map[string]types.Value

// Env is the per-execution expression environment. Named holds parameters by
// name (the compatibility path); Slots/Bound hold the same values densely
// indexed by the slot numbers AssignParamSlots burned into the plan's
// ParamExpr nodes, so the hot path never touches a map. A nil *Env is legal
// and means "no parameters supplied".
type Env struct {
	Named Params
	Slots []types.Value
	Bound []bool
}

// lookup resolves a parameter by slot (fast path) or name.
func (e *Env) lookup(slot int, name string) (types.Value, bool) {
	if e == nil {
		return types.Null, false
	}
	if slot > 0 && slot <= len(e.Slots) && e.Bound[slot-1] {
		return e.Slots[slot-1], true
	}
	v, ok := e.Named[name]
	return v, ok
}

// Expr is a compiled scalar expression.
type Expr interface {
	Eval(row types.Row, env *Env) (types.Value, error)
}

// ColExpr reads column i of the input row.
type ColExpr struct{ I int }

// ConstExpr is a literal.
type ConstExpr struct{ V types.Value }

// ParamExpr reads a named parameter. slot is assigned by AssignParamSlots
// once per plan; it is 1-based so that the zero value (a ParamExpr built by
// hand or by CompileScalar outside a plan) still resolves by name.
type ParamExpr struct {
	Name string
	slot int
}

// BinExpr applies a binary operator with SQL NULL semantics.
type BinExpr struct {
	Op   sql.BinOp
	L, R Expr
}

// NotExpr negates a boolean (three-valued).
type NotExpr struct{ X Expr }

// NegExpr is unary minus.
type NegExpr struct{ X Expr }

// LikeMatch is x LIKE pattern (compiled; pattern may be dynamic).
type LikeMatch struct {
	X, Pattern Expr
	Not        bool
}

// inMatchSetThreshold is the list length from which NewInMatch builds a
// constant hash set instead of leaving the probe to a linear scan.
const inMatchSetThreshold = 8

// InMatch is x IN (list). When every list element is a constant and the list
// is long enough, set holds the values hashed once at compile time and Eval
// probes it instead of re-evaluating the list per row; setNull records
// whether the list contained NULL (needed for three-valued IN semantics).
type InMatch struct {
	X       Expr
	List    []Expr
	Not     bool
	set     map[uint64][]types.Value
	setNull bool
}

// NewInMatch compiles x IN (list), building the constant hash set when the
// list is all-constant and at least inMatchSetThreshold long.
func NewInMatch(x Expr, list []Expr, not bool) *InMatch {
	m := &InMatch{X: x, List: list, Not: not}
	if len(list) < inMatchSetThreshold {
		return m
	}
	set := make(map[uint64][]types.Value, len(list))
	sawNull := false
	for _, le := range list {
		c, ok := le.(*ConstExpr)
		if !ok {
			return m
		}
		if c.V.IsNull() {
			sawNull = true
			continue
		}
		h := c.V.Hash()
		dup := false
		for _, v := range set[h] {
			if types.Equal(v, c.V) {
				dup = true
				break
			}
		}
		if !dup {
			set[h] = append(set[h], c.V)
		}
	}
	m.set, m.setNull = set, sawNull
	return m
}

// BetweenMatch is x BETWEEN lo AND hi.
type BetweenMatch struct {
	X, Lo, Hi Expr
	Not       bool
}

// IsNullMatch is x IS [NOT] NULL.
type IsNullMatch struct {
	X   Expr
	Not bool
}

// CaseMatch is CASE WHEN ... THEN ... ELSE ... END.
type CaseMatch struct {
	Whens []struct{ Cond, Then Expr }
	Else  Expr
}

// ScalarFunc is a non-aggregate function call.
type ScalarFunc struct {
	Name string
	Args []Expr
}

func (e *ColExpr) Eval(row types.Row, _ *Env) (types.Value, error) {
	if e.I < 0 || e.I >= len(row) {
		return types.Null, fmt.Errorf("exec: column ordinal %d out of range (row width %d)", e.I, len(row))
	}
	return row[e.I], nil
}

func (e *ConstExpr) Eval(types.Row, *Env) (types.Value, error) { return e.V, nil }

func (e *ParamExpr) Eval(_ types.Row, env *Env) (types.Value, error) {
	v, ok := env.lookup(e.slot, e.Name)
	if !ok {
		return types.Null, fmt.Errorf("exec: missing parameter @%s", e.Name)
	}
	return v, nil
}

func (e *BinExpr) Eval(row types.Row, env *Env) (types.Value, error) {
	// AND/OR need Kleene logic and short-circuiting.
	if e.Op == sql.OpAnd || e.Op == sql.OpOr {
		return e.evalLogic(row, env)
	}
	l, err := e.L.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	r, err := e.R.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	if e.Op.IsComparison() {
		// Same-kind fast paths avoid the generic Compare dispatch on the
		// two dominant column types.
		if l.K == r.K {
			switch l.K {
			case types.KindInt:
				return types.NewBool(cmpHolds(e.Op, cmpInt(l.I, r.I))), nil
			case types.KindString:
				return types.NewBool(cmpHolds(e.Op, strings.Compare(l.S, r.S))), nil
			}
		}
		return types.NewBool(cmpHolds(e.Op, types.Compare(l, r))), nil
	}
	return evalArith(e.Op, l, r)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpHolds(op sql.BinOp, c int) bool {
	switch op {
	case sql.OpEQ:
		return c == 0
	case sql.OpNE:
		return c != 0
	case sql.OpLT:
		return c < 0
	case sql.OpLE:
		return c <= 0
	case sql.OpGT:
		return c > 0
	case sql.OpGE:
		return c >= 0
	}
	return false
}

func (e *BinExpr) evalLogic(row types.Row, env *Env) (types.Value, error) {
	l, err := e.L.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	if e.Op == sql.OpAnd {
		if !l.IsNull() && !l.Bool() {
			return types.NewBool(false), nil
		}
	} else {
		if !l.IsNull() && l.Bool() {
			return types.NewBool(true), nil
		}
	}
	r, err := e.R.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	if e.Op == sql.OpAnd {
		switch {
		case !r.IsNull() && !r.Bool():
			return types.NewBool(false), nil
		case l.IsNull() || r.IsNull():
			return types.Null, nil
		default:
			return types.NewBool(true), nil
		}
	}
	switch {
	case !r.IsNull() && r.Bool():
		return types.NewBool(true), nil
	case l.IsNull() || r.IsNull():
		return types.Null, nil
	default:
		return types.NewBool(false), nil
	}
}

func evalArith(op sql.BinOp, l, r types.Value) (types.Value, error) {
	// String concatenation with +.
	if op == sql.OpAdd && l.K == types.KindString && r.K == types.KindString {
		return types.NewString(l.S + r.S), nil
	}
	bothInt := l.K == types.KindInt && r.K == types.KindInt
	if bothInt {
		a, b := l.I, r.I
		switch op {
		case sql.OpAdd:
			return types.NewInt(a + b), nil
		case sql.OpSub:
			return types.NewInt(a - b), nil
		case sql.OpMul:
			return types.NewInt(a * b), nil
		case sql.OpDiv:
			if b == 0 {
				return types.Null, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(a / b), nil
		case sql.OpMod:
			if b == 0 {
				return types.Null, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case sql.OpAdd:
		return types.NewFloat(a + b), nil
	case sql.OpSub:
		return types.NewFloat(a - b), nil
	case sql.OpMul:
		return types.NewFloat(a * b), nil
	case sql.OpDiv:
		if b == 0 {
			return types.Null, fmt.Errorf("exec: division by zero")
		}
		return types.NewFloat(a / b), nil
	case sql.OpMod:
		if b == 0 {
			return types.Null, fmt.Errorf("exec: division by zero")
		}
		return types.NewFloat(float64(int64(a) % int64(b))), nil
	}
	return types.Null, fmt.Errorf("exec: unsupported arithmetic on %s", op)
}

func (e *NotExpr) Eval(row types.Row, env *Env) (types.Value, error) {
	v, err := e.X.Eval(row, env)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	return types.NewBool(!v.Bool()), nil
}

func (e *NegExpr) Eval(row types.Row, env *Env) (types.Value, error) {
	v, err := e.X.Eval(row, env)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	switch v.K {
	case types.KindInt:
		return types.NewInt(-v.I), nil
	case types.KindFloat:
		return types.NewFloat(-v.F), nil
	}
	return types.Null, fmt.Errorf("exec: cannot negate %s", v.K)
}

func (e *LikeMatch) Eval(row types.Row, env *Env) (types.Value, error) {
	x, err := e.X.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	pat, err := e.Pattern.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() || pat.IsNull() {
		return types.Null, nil
	}
	m := likeMatch(x.Display(), pat.Display())
	if e.Not {
		m = !m
	}
	return types.NewBool(m), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively
// (matching SQL Server's default collation behaviour).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func (e *InMatch) Eval(row types.Row, env *Env) (types.Value, error) {
	x, err := e.X.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() {
		return types.Null, nil
	}
	if e.set != nil {
		for _, v := range e.set[x.Hash()] {
			if types.Equal(x, v) {
				return types.NewBool(!e.Not), nil
			}
		}
		if e.setNull {
			return types.Null, nil
		}
		return types.NewBool(e.Not), nil
	}
	sawNull := false
	for _, le := range e.List {
		v, err := le.Eval(row, env)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(x, v) {
			return types.NewBool(!e.Not), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(e.Not), nil
}

func (e *BetweenMatch) Eval(row types.Row, env *Env) (types.Value, error) {
	x, err := e.X.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	lo, err := e.Lo.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	hi, err := e.Hi.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return types.Null, nil
	}
	in := types.Compare(x, lo) >= 0 && types.Compare(x, hi) <= 0
	if e.Not {
		in = !in
	}
	return types.NewBool(in), nil
}

func (e *IsNullMatch) Eval(row types.Row, env *Env) (types.Value, error) {
	v, err := e.X.Eval(row, env)
	if err != nil {
		return types.Null, err
	}
	isNull := v.IsNull()
	if e.Not {
		isNull = !isNull
	}
	return types.NewBool(isNull), nil
}

func (e *CaseMatch) Eval(row types.Row, env *Env) (types.Value, error) {
	for _, w := range e.Whens {
		c, err := w.Cond.Eval(row, env)
		if err != nil {
			return types.Null, err
		}
		if !c.IsNull() && c.Bool() {
			return w.Then.Eval(row, env)
		}
	}
	if e.Else != nil {
		return e.Else.Eval(row, env)
	}
	return types.Null, nil
}

func (e *ScalarFunc) Eval(row types.Row, env *Env) (types.Value, error) {
	// Small fixed-size argument buffer keeps common calls allocation-free.
	var argbuf [4]types.Value
	var args []types.Value
	if len(e.Args) <= len(argbuf) {
		args = argbuf[:len(e.Args)]
	} else {
		args = make([]types.Value, len(e.Args))
	}
	for i, a := range e.Args {
		v, err := a.Eval(row, env)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	switch e.Name {
	case "UPPER":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToUpper(args[0].Display())), nil
	case "LOWER":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToLower(args[0].Display())), nil
	case "LEN", "LENGTH":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt(int64(len(args[0].Display()))), nil
	case "ABS":
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].K == types.KindInt {
			if args[0].I < 0 {
				return types.NewInt(-args[0].I), nil
			}
			return args[0], nil
		}
		f := args[0].Float()
		if f < 0 {
			f = -f
		}
		return types.NewFloat(f), nil
	case "SUBSTRING":
		if len(args) != 3 || args[0].IsNull() {
			return types.Null, nil
		}
		s := args[0].Display()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		n := int(args[2].Int())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return types.NewString(s[start:end]), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null, nil
	}
	return types.Null, fmt.Errorf("exec: unknown function %s", e.Name)
}

// EvalBool evaluates a predicate; NULL counts as false (SQL filter
// semantics).
func EvalBool(e Expr, row types.Row, env *Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(row, env)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
