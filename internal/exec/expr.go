// Package exec implements the Volcano-style iterator executor. Plans are
// trees of Operators; expressions are compiled from the SQL AST into a
// compact evaluable form with column references resolved to ordinals.
//
// Two operators here are the paper's additions to the executor:
//
//   - StartupFilter: a Select whose predicate references only parameters and
//     is evaluated once at Open; if false, the input is never opened. A
//     UnionAll over two StartupFilters with complementary guards is exactly
//     the paper's ChoosePlan implementation (§5.1, figure 2b).
//   - Remote: the DataTransfer operator. It ships a deparsed SQL text to the
//     backend through a RemoteClient and streams the result rows back.
package exec

import (
	"fmt"
	"strings"

	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Params carries the run-time parameter values of a query.
type Params map[string]types.Value

// Expr is a compiled scalar expression.
type Expr interface {
	Eval(row types.Row, p Params) (types.Value, error)
}

// ColExpr reads column i of the input row.
type ColExpr struct{ I int }

// ConstExpr is a literal.
type ConstExpr struct{ V types.Value }

// ParamExpr reads a named parameter.
type ParamExpr struct{ Name string }

// BinExpr applies a binary operator with SQL NULL semantics.
type BinExpr struct {
	Op   sql.BinOp
	L, R Expr
}

// NotExpr negates a boolean (three-valued).
type NotExpr struct{ X Expr }

// NegExpr is unary minus.
type NegExpr struct{ X Expr }

// LikeMatch is x LIKE pattern (compiled; pattern may be dynamic).
type LikeMatch struct {
	X, Pattern Expr
	Not        bool
}

// InMatch is x IN (list).
type InMatch struct {
	X    Expr
	List []Expr
	Not  bool
}

// BetweenMatch is x BETWEEN lo AND hi.
type BetweenMatch struct {
	X, Lo, Hi Expr
	Not       bool
}

// IsNullMatch is x IS [NOT] NULL.
type IsNullMatch struct {
	X   Expr
	Not bool
}

// CaseMatch is CASE WHEN ... THEN ... ELSE ... END.
type CaseMatch struct {
	Whens []struct{ Cond, Then Expr }
	Else  Expr
}

// ScalarFunc is a non-aggregate function call.
type ScalarFunc struct {
	Name string
	Args []Expr
}

func (e *ColExpr) Eval(row types.Row, _ Params) (types.Value, error) {
	if e.I < 0 || e.I >= len(row) {
		return types.Null, fmt.Errorf("exec: column ordinal %d out of range (row width %d)", e.I, len(row))
	}
	return row[e.I], nil
}

func (e *ConstExpr) Eval(types.Row, Params) (types.Value, error) { return e.V, nil }

func (e *ParamExpr) Eval(_ types.Row, p Params) (types.Value, error) {
	v, ok := p[e.Name]
	if !ok {
		return types.Null, fmt.Errorf("exec: missing parameter @%s", e.Name)
	}
	return v, nil
}

func (e *BinExpr) Eval(row types.Row, p Params) (types.Value, error) {
	// AND/OR need Kleene logic and short-circuiting.
	if e.Op == sql.OpAnd || e.Op == sql.OpOr {
		return e.evalLogic(row, p)
	}
	l, err := e.L.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	r, err := e.R.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	if e.Op.IsComparison() {
		c := types.Compare(l, r)
		var b bool
		switch e.Op {
		case sql.OpEQ:
			b = c == 0
		case sql.OpNE:
			b = c != 0
		case sql.OpLT:
			b = c < 0
		case sql.OpLE:
			b = c <= 0
		case sql.OpGT:
			b = c > 0
		case sql.OpGE:
			b = c >= 0
		}
		return types.NewBool(b), nil
	}
	return evalArith(e.Op, l, r)
}

func (e *BinExpr) evalLogic(row types.Row, p Params) (types.Value, error) {
	l, err := e.L.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	if e.Op == sql.OpAnd {
		if !l.IsNull() && !l.Bool() {
			return types.NewBool(false), nil
		}
	} else {
		if !l.IsNull() && l.Bool() {
			return types.NewBool(true), nil
		}
	}
	r, err := e.R.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	if e.Op == sql.OpAnd {
		switch {
		case !r.IsNull() && !r.Bool():
			return types.NewBool(false), nil
		case l.IsNull() || r.IsNull():
			return types.Null, nil
		default:
			return types.NewBool(true), nil
		}
	}
	switch {
	case !r.IsNull() && r.Bool():
		return types.NewBool(true), nil
	case l.IsNull() || r.IsNull():
		return types.Null, nil
	default:
		return types.NewBool(false), nil
	}
}

func evalArith(op sql.BinOp, l, r types.Value) (types.Value, error) {
	// String concatenation with +.
	if op == sql.OpAdd && l.K == types.KindString && r.K == types.KindString {
		return types.NewString(l.S + r.S), nil
	}
	bothInt := l.K == types.KindInt && r.K == types.KindInt
	if bothInt {
		a, b := l.I, r.I
		switch op {
		case sql.OpAdd:
			return types.NewInt(a + b), nil
		case sql.OpSub:
			return types.NewInt(a - b), nil
		case sql.OpMul:
			return types.NewInt(a * b), nil
		case sql.OpDiv:
			if b == 0 {
				return types.Null, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(a / b), nil
		case sql.OpMod:
			if b == 0 {
				return types.Null, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case sql.OpAdd:
		return types.NewFloat(a + b), nil
	case sql.OpSub:
		return types.NewFloat(a - b), nil
	case sql.OpMul:
		return types.NewFloat(a * b), nil
	case sql.OpDiv:
		if b == 0 {
			return types.Null, fmt.Errorf("exec: division by zero")
		}
		return types.NewFloat(a / b), nil
	case sql.OpMod:
		if b == 0 {
			return types.Null, fmt.Errorf("exec: division by zero")
		}
		return types.NewFloat(float64(int64(a) % int64(b))), nil
	}
	return types.Null, fmt.Errorf("exec: unsupported arithmetic on %s", op)
}

func (e *NotExpr) Eval(row types.Row, p Params) (types.Value, error) {
	v, err := e.X.Eval(row, p)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	return types.NewBool(!v.Bool()), nil
}

func (e *NegExpr) Eval(row types.Row, p Params) (types.Value, error) {
	v, err := e.X.Eval(row, p)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	switch v.K {
	case types.KindInt:
		return types.NewInt(-v.I), nil
	case types.KindFloat:
		return types.NewFloat(-v.F), nil
	}
	return types.Null, fmt.Errorf("exec: cannot negate %s", v.K)
}

func (e *LikeMatch) Eval(row types.Row, p Params) (types.Value, error) {
	x, err := e.X.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	pat, err := e.Pattern.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() || pat.IsNull() {
		return types.Null, nil
	}
	m := likeMatch(x.Display(), pat.Display())
	if e.Not {
		m = !m
	}
	return types.NewBool(m), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively
// (matching SQL Server's default collation behaviour).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func (e *InMatch) Eval(row types.Row, p Params) (types.Value, error) {
	x, err := e.X.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() {
		return types.Null, nil
	}
	sawNull := false
	for _, le := range e.List {
		v, err := le.Eval(row, p)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(x, v) {
			return types.NewBool(!e.Not), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(e.Not), nil
}

func (e *BetweenMatch) Eval(row types.Row, p Params) (types.Value, error) {
	x, err := e.X.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	lo, err := e.Lo.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	hi, err := e.Hi.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return types.Null, nil
	}
	in := types.Compare(x, lo) >= 0 && types.Compare(x, hi) <= 0
	if e.Not {
		in = !in
	}
	return types.NewBool(in), nil
}

func (e *IsNullMatch) Eval(row types.Row, p Params) (types.Value, error) {
	v, err := e.X.Eval(row, p)
	if err != nil {
		return types.Null, err
	}
	isNull := v.IsNull()
	if e.Not {
		isNull = !isNull
	}
	return types.NewBool(isNull), nil
}

func (e *CaseMatch) Eval(row types.Row, p Params) (types.Value, error) {
	for _, w := range e.Whens {
		c, err := w.Cond.Eval(row, p)
		if err != nil {
			return types.Null, err
		}
		if !c.IsNull() && c.Bool() {
			return w.Then.Eval(row, p)
		}
	}
	if e.Else != nil {
		return e.Else.Eval(row, p)
	}
	return types.Null, nil
}

func (e *ScalarFunc) Eval(row types.Row, p Params) (types.Value, error) {
	args := make([]types.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(row, p)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	switch e.Name {
	case "UPPER":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToUpper(args[0].Display())), nil
	case "LOWER":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToLower(args[0].Display())), nil
	case "LEN", "LENGTH":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt(int64(len(args[0].Display()))), nil
	case "ABS":
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].K == types.KindInt {
			if args[0].I < 0 {
				return types.NewInt(-args[0].I), nil
			}
			return args[0], nil
		}
		f := args[0].Float()
		if f < 0 {
			f = -f
		}
		return types.NewFloat(f), nil
	case "SUBSTRING":
		if len(args) != 3 || args[0].IsNull() {
			return types.Null, nil
		}
		s := args[0].Display()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		n := int(args[2].Int())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return types.NewString(s[start:end]), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null, nil
	}
	return types.Null, fmt.Errorf("exec: unknown function %s", e.Name)
}

// EvalBool evaluates a predicate; NULL counts as false (SQL filter
// semantics).
func EvalBool(e Expr, row types.Row, p Params) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(row, p)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
