package exec

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"

	"mtcache/internal/metrics"
	"mtcache/internal/storage"
	"mtcache/internal/trace"
	"mtcache/internal/types"
)

// ColInfo describes one output column of an operator.
type ColInfo struct {
	Table string // alias or table name, "" for computed columns
	Name  string
	Kind  types.Kind
}

// ResultSet is a fully materialized query result.
type ResultSet struct {
	Cols []ColInfo
	Rows []types.Row

	// CommitLSN is the backend commit position of any write the statement
	// performed (0 for pure reads, or when the transport predates LSN
	// acknowledgements). Forwarded stored-procedure calls travel as Query,
	// so the LSN rides on the result set; session routers use it to advance
	// a session's read-your-writes watermark.
	CommitLSN storage.LSN
}

// RemoteClient executes SQL on a linked server. The Remote operator uses
// Query; the engine's update forwarding uses Exec.
type RemoteClient interface {
	Query(sqlText string, params Params) (*ResultSet, error)
	Exec(sqlText string, params Params) (int64, error)
}

// LSNExecer is an optional extension of RemoteClient: clients that implement
// it return the backend commit LSN alongside the affected-row count of a
// forwarded update. The engine uses it to stamp Result.CommitLSN on a cache,
// which is what lets a session router guarantee read-your-writes — without
// it forwarded DML still works, the session just cannot learn its watermark.
type LSNExecer interface {
	ExecLSN(sqlText string, params Params) (int64, storage.LSN, error)
}

// SpanQuerier is an optional extension of RemoteClient: clients that
// implement it propagate the trace ID to the backend and return the
// backend-side span tree, which the Remote operator grafts into the
// cache-side trace. Clients that do not implement it still work — the trace
// just shows the round-trip as a leaf.
type SpanQuerier interface {
	QueryTraced(sqlText string, params Params, traceID string) (*ResultSet, *trace.WireSpan, error)
}

// Counters accumulates executor work for cost accounting and tests.
type Counters struct {
	RowsScanned   int64 // rows read from local heaps and indexes
	RowsRemote    int64 // rows received from the backend
	RemoteQueries int64 // DataTransfer activations
	StartupPruned int64 // startup filters whose input was never opened
}

// Ctx is the per-execution context.
type Ctx struct {
	Params   Params
	Env      Env             // expression environment; Run seeds Named from Params
	Txn      *storage.Txn
	Remote   RemoteClient
	Counters *Counters
	Span     *trace.Span     // execute-stage span, nil when tracing is off
	TraceID  string          // propagated to the backend on DataTransfer
	EstRows  float64         // optimizer output-cardinality estimate, 0 if unknown
	Context  context.Context // optional cancellation signal; nil means none
	RowMode  bool            // force row-at-a-time Next even for batch operators
}

// maxPrealloc caps estimate-driven allocations: estimates can be off by
// orders of magnitude, and a bad one must cost at most a bounded overshoot.
const maxPrealloc = 4096

// preallocSize converts a cardinality estimate into a slice/map capacity
// hint, clamped to [0, limit].
func preallocSize(est float64, limit int) int {
	if est <= 0 {
		return 0
	}
	n := int(est)
	if n > limit {
		return limit
	}
	return n
}

// Operator is a Volcano iterator.
type Operator interface {
	Columns() []ColInfo
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (types.Row, error) // (nil, nil) signals end of stream
	Close() error
}

// Run drains an operator into a ResultSet. Unless ctx.RowMode is set it
// pulls BatchSize-row batches through the tree (operators without a native
// batch path are adapted transparently by NextBatch).
func Run(op Operator, ctx *Ctx) (*ResultSet, error) {
	if ctx.Env.Named == nil {
		ctx.Env.Named = ctx.Params
	}
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	rs := &ResultSet{Cols: op.Columns()}
	if n := preallocSize(ctx.EstRows, maxPrealloc); n > 0 {
		rs.Rows = make([]types.Row, 0, n)
	}
	if ctx.RowMode {
		for {
			row, err := op.Next(ctx)
			if err != nil {
				return nil, err
			}
			if row == nil {
				return rs, nil
			}
			rs.Rows = append(rs.Rows, row)
		}
	}
	var b Batch
	for {
		if err := NextBatch(ctx, op, &b); err != nil {
			return nil, err
		}
		if len(b.Rows) == 0 {
			return rs, nil
		}
		rs.Rows = append(rs.Rows, b.Rows...)
	}
}

// ---------------------------------------------------------------- Scan

// Scan is a full table scan. When Parallel is set the optimizer chose this
// scan as an Exchange partitioning point: the Exchange binds each worker
// clone to a disjoint heap-slot range before Open.
type Scan struct {
	TableName string
	Cols      []ColInfo
	Parallel  bool // Exchange partitions this scan across workers

	td   *storage.TableView
	pos  int
	cap  int
	part *storage.SlotRange // worker's slot range, nil = whole heap
	pred *vecPred           // predicate pushed down by the parent Filter
	rhs  []types.Value      // pred's per-batch right-hand-side scratch
}

func (s *Scan) Columns() []ColInfo { return s.Cols }

func (s *Scan) Open(ctx *Ctx) error {
	s.td = ctx.Txn.Table(s.TableName)
	if s.td == nil {
		if err := ctx.Txn.Err(); err != nil {
			return err
		}
		return fmt.Errorf("exec: table %s does not exist", s.TableName)
	}
	s.pos = 0
	s.cap = s.td.Cap()
	if s.part != nil {
		s.pos = s.part.Lo
		if s.part.Hi < s.cap {
			s.cap = s.part.Hi
		}
	}
	return nil
}

func (s *Scan) Next(ctx *Ctx) (types.Row, error) {
	for s.pos < s.cap {
		row := s.td.At(s.pos)
		s.pos++
		if row != nil {
			if ctx.Counters != nil {
				ctx.Counters.RowsScanned++
			}
			return row, nil
		}
	}
	return nil, nil
}

// BatchNext fills b with up to BatchSize rows; an empty batch is EOS (empty
// heap-slot runs are skipped without ending the stream). A pushed-down
// predicate is applied before rows ever enter the batch, so filtered-out
// rows are never materialized into a window at all; the scan keeps going
// until at least one row survives or the heap is exhausted. RowsScanned
// counts rows examined (pre-filter), matching the unfused pipeline.
func (s *Scan) BatchNext(ctx *Ctx, b *Batch) error {
	b.Rows = b.Rows[:0]
	if s.pred != nil {
		var err error
		if s.rhs, err = s.pred.resolve(s.rhs, &ctx.Env); err != nil {
			return err
		}
	}
	examined := int64(0)
	for s.pos < s.cap && len(b.Rows) < BatchSize {
		row := s.td.At(s.pos)
		s.pos++
		if row == nil {
			continue
		}
		examined++
		if s.pred != nil {
			ok, err := s.pred.holds(row, s.rhs, &ctx.Env)
			if err != nil {
				return err
			}
			if !ok {
				// Keep scanning: an all-filtered window must not read as EOS.
				continue
			}
		}
		b.Rows = append(b.Rows, row)
	}
	if ctx.Counters != nil {
		ctx.Counters.RowsScanned += examined
	}
	return nil
}

func (s *Scan) Close() error { s.td = nil; return nil }

// ---------------------------------------------------------------- IndexScan

// IndexScan reads rows through an index, optionally bounded. Bounds are
// expressions evaluated at Open so parameterized seeks work; both bounds are
// inclusive (strict bounds carry a residual Filter above).
type IndexScan struct {
	TableName string
	IndexName string // "__pk" for the primary key index
	Cols      []ColInfo
	Lo, Hi    []Expr  // prefix bounds; nil slices mean unbounded
	Parallel  bool    // Exchange partitions this scan across workers
	EstRows   float64 // optimizer estimate of matched rows, for DOP costing

	rids []storage.RowID
	td   *storage.TableView
	pos  int
	part *indexPart    // worker's key range, nil = whole index
	pred *vecPred      // residual predicate pushed down by the parent Filter
	rhs  []types.Value // pred's per-batch right-hand-side scratch
}

// indexPart is one worker's index key range [lo, hi): full-key bounds cut at
// SeparatorKeys, nil meaning open. empty marks a worker with no range (more
// workers than separator-delimited partitions).
type indexPart struct {
	lo, hi types.Row
	empty  bool
}

func (s *IndexScan) Columns() []ColInfo { return s.Cols }

func (s *IndexScan) Open(ctx *Ctx) error {
	s.td = ctx.Txn.Table(s.TableName)
	if s.td == nil {
		if err := ctx.Txn.Err(); err != nil {
			return err
		}
		return fmt.Errorf("exec: table %s does not exist", s.TableName)
	}
	tree := s.td.Index(s.IndexName)
	if tree == nil {
		return fmt.Errorf("exec: index %s on %s does not exist", s.IndexName, s.TableName)
	}
	lo, err := evalBound(s.Lo, ctx)
	if err != nil {
		return err
	}
	hi, err := evalBound(s.Hi, ctx)
	if err != nil {
		return err
	}
	s.rids = s.rids[:0]
	if s.part != nil {
		// Partitioned scan: intersect the query bounds with the worker's key
		// range. Start at the larger of the two lower bounds (an entry
		// qualifies iff it is >= both, i.e. >= the max in tree order); stop
		// at the partition's exclusive upper separator or past the query's
		// inclusive prefix bound, whichever comes first.
		if s.part.empty {
			s.pos = 0
			return nil
		}
		start := s.part.lo
		if lo != nil && (start == nil || types.CompareRows(lo, start) > 0) {
			start = lo
		}
		tree.AscendPartition(start, s.part.hi, func(it storage.Item) bool {
			if hi != nil {
				pk := it.Key
				if len(hi) < len(pk) {
					pk = pk[:len(hi)]
				}
				if types.CompareRows(pk, hi) > 0 {
					return false
				}
			}
			s.rids = append(s.rids, it.RID)
			return true
		})
		s.pos = 0
		return nil
	}
	collect := func(it storage.Item) bool {
		s.rids = append(s.rids, it.RID)
		return true
	}
	switch {
	case lo != nil && hi != nil:
		tree.AscendRange(lo, hi, collect)
	case lo != nil:
		tree.AscendGE(lo, collect)
	default:
		tree.Ascend(collect)
		if hi != nil {
			// unreachable in practice: planner always sets lo when hi is set
			filtered := s.rids[:0]
			for _, rid := range s.rids {
				filtered = append(filtered, rid)
			}
			s.rids = filtered
		}
	}
	s.pos = 0
	return nil
}

func evalBound(bound []Expr, ctx *Ctx) (types.Row, error) {
	if bound == nil {
		return nil, nil
	}
	row := make(types.Row, len(bound))
	for i, e := range bound {
		v, err := e.Eval(nil, &ctx.Env)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func (s *IndexScan) Next(ctx *Ctx) (types.Row, error) {
	for s.pos < len(s.rids) {
		row := s.td.Get(s.rids[s.pos])
		s.pos++
		if row != nil {
			if ctx.Counters != nil {
				ctx.Counters.RowsScanned++
			}
			return row, nil
		}
	}
	return nil, nil
}

// BatchNext fills b with up to BatchSize visible rows; empty batch is EOS.
// A pushed-down residual predicate filters rows before they enter the
// batch, exactly as in Scan.BatchNext.
func (s *IndexScan) BatchNext(ctx *Ctx, b *Batch) error {
	b.Rows = b.Rows[:0]
	if s.pred != nil {
		var err error
		if s.rhs, err = s.pred.resolve(s.rhs, &ctx.Env); err != nil {
			return err
		}
	}
	examined := int64(0)
	for s.pos < len(s.rids) && len(b.Rows) < BatchSize {
		row := s.td.Get(s.rids[s.pos])
		s.pos++
		if row == nil {
			continue
		}
		examined++
		if s.pred != nil {
			ok, err := s.pred.holds(row, s.rhs, &ctx.Env)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		b.Rows = append(b.Rows, row)
	}
	if ctx.Counters != nil {
		ctx.Counters.RowsScanned += examined
	}
	return nil
}

func (s *IndexScan) Close() error { s.td = nil; return nil }

// ---------------------------------------------------------------- Filter

// Filter passes rows whose predicate evaluates to TRUE.
type Filter struct {
	Input Operator
	Pred  Expr

	in     Batch         // batch-mode input scratch
	vp     *vecPred      // compiled predicate, nil when the shape is not covered
	rhs    []types.Value // vp's per-batch right-hand-side scratch
	pushed bool          // vp was pushed down into the child scan
}

func (f *Filter) Columns() []ColInfo { return f.Input.Columns() }

func (f *Filter) Open(ctx *Ctx) error {
	f.vp, f.pushed = nil, false
	if !ctx.RowMode {
		f.vp = compilePred(f.Pred)
		if f.vp != nil {
			// Fuse into a child scan: the predicate then runs inside the
			// scan loop and rejected rows never enter a batch. (Each
			// execution works on a private CloneOperator tree, so the
			// pushed state is never shared across executions.)
			switch in := f.Input.(type) {
			case *Scan:
				in.pred, f.pushed = f.vp, true
			case *IndexScan:
				in.pred, f.pushed = f.vp, true
			}
		}
	}
	return f.Input.Open(ctx)
}

func (f *Filter) Next(ctx *Ctx) (types.Row, error) {
	for {
		row, err := f.Input.Next(ctx)
		if err != nil || row == nil {
			return row, err
		}
		ok, err := EvalBool(f.Pred, row, &ctx.Env)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// BatchNext keeps pulling input batches until at least one row passes the
// predicate (or EOS), so an all-filtered batch never reads as end of stream.
func (f *Filter) BatchNext(ctx *Ctx, b *Batch) error {
	if f.pushed {
		// The child scan already applies the predicate.
		return NextBatch(ctx, f.Input, b)
	}
	b.Rows = b.Rows[:0]
	f.in.Ephemeral = b.Ephemeral // pass-through rows: caller's promise extends
	for {
		if err := NextBatch(ctx, f.Input, &f.in); err != nil {
			return err
		}
		if len(f.in.Rows) == 0 {
			return nil
		}
		if f.vp != nil {
			var err error
			b.Rows, f.rhs, err = f.vp.sel(f.in.Rows, b.Rows, f.rhs, &ctx.Env)
			if err != nil {
				return err
			}
		} else {
			for _, row := range f.in.Rows {
				ok, err := EvalBool(f.Pred, row, &ctx.Env)
				if err != nil {
					return err
				}
				if ok {
					b.Rows = append(b.Rows, row)
				}
			}
		}
		if len(b.Rows) > 0 {
			return nil
		}
	}
}

func (f *Filter) Close() error { return f.Input.Close() }

// ---------------------------------------------------------------- StartupFilter

// StartupFilter is a Select with a startup predicate: the guard references
// only parameters and is evaluated once at Open. If it is false the input is
// never opened (paper §5.1: "if it evaluates to false, the operator's input
// expression is not opened"). Two StartupFilters with complementary guards
// under a UnionAll implement ChoosePlan.
type StartupFilter struct {
	Input  Operator
	Guard  Expr
	Branch string // "local"/"remote" when part of a ChoosePlan, else ""

	active bool
}

func (s *StartupFilter) Columns() []ColInfo { return s.Input.Columns() }

func (s *StartupFilter) Open(ctx *Ctx) error {
	ok, err := EvalBool(s.Guard, nil, &ctx.Env)
	if err != nil {
		return err
	}
	s.active = ok
	if !ok {
		if ctx.Counters != nil {
			ctx.Counters.StartupPruned++
		}
		return nil
	}
	if s.Branch != "" {
		metrics.Default.Counter("opt.chooseplan_" + s.Branch).Add(1)
		ctx.Span.Attr("chooseplan", s.Branch)
	}
	return s.Input.Open(ctx)
}

// Active reports whether the guard passed at the last Open (EXPLAIN ANALYZE).
func (s *StartupFilter) Active() bool { return s.active }

func (s *StartupFilter) Next(ctx *Ctx) (types.Row, error) {
	if !s.active {
		return nil, nil
	}
	return s.Input.Next(ctx)
}

// BatchNext passes batches through when the guard held at Open.
func (s *StartupFilter) BatchNext(ctx *Ctx, b *Batch) error {
	if !s.active {
		b.Rows = b.Rows[:0]
		return nil
	}
	return NextBatch(ctx, s.Input, b)
}

func (s *StartupFilter) Close() error {
	if !s.active {
		return nil
	}
	return s.Input.Close()
}

// ---------------------------------------------------------------- Project

// Project computes output expressions.
type Project struct {
	Input Operator
	Exprs []Expr
	Cols  []ColInfo

	in    Batch         // batch-mode input scratch
	arena rowArena      // output rows for batch mode (durable consumers)
	cols  []int         // all-ColExpr gather plan, nil when any expr is general
	slab  []types.Value // recycled output storage for ephemeral consumers
}

func (p *Project) Columns() []ColInfo { return p.Cols }

func (p *Project) Open(ctx *Ctx) error {
	p.cols = nil
	if !ctx.RowMode {
		cols := make([]int, len(p.Exprs))
		gather := true
		for i, e := range p.Exprs {
			c, isCol := e.(*ColExpr)
			if !isCol {
				gather = false
				break
			}
			cols[i] = c.I
		}
		if gather {
			p.cols = cols
		}
	}
	return p.Input.Open(ctx)
}

func (p *Project) Next(ctx *Ctx) (types.Row, error) {
	row, err := p.Input.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row, &ctx.Env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// BatchNext projects a whole input batch, carving output rows out of a
// chunked arena instead of one make per row. For a durable consumer, arena
// chunks are never reused, so emitted rows stay valid for the life of the
// result; an Ephemeral consumer instead gets rows carved from one recycled
// slab, making the steady-state projection allocation-free. All-column
// projections gather values by index without touching the expression
// interpreter.
func (p *Project) BatchNext(ctx *Ctx, b *Batch) error {
	p.in.Ephemeral = true // projected values are copied out immediately
	if err := NextBatch(ctx, p.Input, &p.in); err != nil {
		return err
	}
	b.Rows = b.Rows[:0]
	width := len(p.Exprs)
	need := len(p.in.Rows) * width
	var slab []types.Value
	if b.Ephemeral {
		if cap(p.slab) < need {
			p.slab = make([]types.Value, need)
		}
		slab = p.slab[:need]
	} else {
		p.arena.hint(need)
	}
	for _, row := range p.in.Rows {
		var out types.Row
		if slab != nil {
			out, slab = types.Row(slab[:width:width]), slab[width:]
		} else {
			out = p.arena.alloc(width)
		}
		if p.cols != nil && gatherRow(out, row, p.cols) {
			b.Rows = append(b.Rows, out)
			continue
		}
		for i, e := range p.Exprs {
			v, err := e.Eval(row, &ctx.Env)
			if err != nil {
				return err
			}
			out[i] = v
		}
		b.Rows = append(b.Rows, out)
	}
	return nil
}

// gatherRow copies the indexed columns of row into out, reporting false on
// an out-of-range ordinal (the caller's interpreted loop then surfaces the
// proper error).
func gatherRow(out, row types.Row, cols []int) bool {
	for i, c := range cols {
		if c < 0 || c >= len(row) {
			return false
		}
		out[i] = row[c]
	}
	return true
}

func (p *Project) Close() error { return p.Input.Close() }

// ---------------------------------------------------------------- Limit

// Limit passes the first N rows; N is evaluated at Open (TOP @n works).
type Limit struct {
	Input Operator
	N     Expr

	left int64
}

func (l *Limit) Columns() []ColInfo { return l.Input.Columns() }

func (l *Limit) Open(ctx *Ctx) error {
	v, err := l.N.Eval(nil, &ctx.Env)
	if err != nil {
		return err
	}
	l.left = v.Int()
	return l.Input.Open(ctx)
}

func (l *Limit) Next(ctx *Ctx) (types.Row, error) {
	if l.left <= 0 {
		return nil, nil
	}
	row, err := l.Input.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	l.left--
	return row, nil
}

// BatchNext truncates the child batch to the rows still owed.
func (l *Limit) BatchNext(ctx *Ctx, b *Batch) error {
	if l.left <= 0 {
		b.Rows = b.Rows[:0]
		return nil
	}
	if err := NextBatch(ctx, l.Input, b); err != nil {
		return err
	}
	if int64(len(b.Rows)) > l.left {
		b.Rows = b.Rows[:l.left]
	}
	l.left -= int64(len(b.Rows))
	return nil
}

func (l *Limit) Close() error { return l.Input.Close() }

// ---------------------------------------------------------------- Sort

// SortKey is one ORDER BY key.
type SortKey struct {
	E    Expr
	Desc bool
}

// Sort materializes and sorts its input.
type Sort struct {
	Input Operator
	Keys  []SortKey

	rows []types.Row
	pos  int
}

func (s *Sort) Columns() []ColInfo { return s.Input.Columns() }

func (s *Sort) Open(ctx *Ctx) error {
	if err := s.Input.Open(ctx); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	type keyed struct {
		row  types.Row
		keys types.Row
	}
	var all []keyed
	for {
		row, err := s.Input.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make(types.Row, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.E.Eval(row, &ctx.Env)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		all = append(all, keyed{row: row, keys: keys})
	}
	sort.SliceStable(all, func(i, j int) bool {
		for k := range s.Keys {
			c := types.Compare(all[i].keys[k], all[j].keys[k])
			if s.Keys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, k := range all {
		s.rows = append(s.rows, k.row)
	}
	s.pos = 0
	return nil
}

func (s *Sort) Next(*Ctx) (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// BatchNext slices the materialized output.
func (s *Sort) BatchNext(_ *Ctx, b *Batch) error {
	sliceBatch(s.rows, &s.pos, b)
	return nil
}

func (s *Sort) Close() error {
	s.rows = nil
	return s.Input.Close()
}

// ---------------------------------------------------------------- TopN

// TopN is Sort+Limit fused: it keeps only the N smallest rows under the sort
// order in a bounded heap instead of materializing and fully sorting the
// input. Ties resolve by input arrival order, so the output is exactly what
// the stable Sort + Limit pipeline it replaces would produce.
type TopN struct {
	Input Operator
	Keys  []SortKey
	N     Expr // evaluated at Open; non-positive yields no rows

	rows []types.Row
	pos  int
}

func (s *TopN) Columns() []ColInfo { return s.Input.Columns() }

// topEntry carries a row, its evaluated sort keys, and the input sequence
// number used as the stability tiebreak.
type topEntry struct {
	row  types.Row
	keys types.Row
	seq  int64
}

// topHeap is a max-heap under the sort order: the root is the worst row
// currently kept, the one a better incoming row evicts.
type topHeap struct {
	entries []topEntry
	keys    []SortKey
}

func (h *topHeap) cmp(a, b topEntry) int {
	for k := range h.keys {
		c := types.Compare(a.keys[k], b.keys[k])
		if h.keys[k].Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	switch {
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

func (h *topHeap) Len() int           { return len(h.entries) }
func (h *topHeap) Less(i, j int) bool { return h.cmp(h.entries[i], h.entries[j]) > 0 }
func (h *topHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *topHeap) Push(x any)         { h.entries = append(h.entries, x.(topEntry)) }
func (h *topHeap) Pop() any {
	last := h.entries[len(h.entries)-1]
	h.entries = h.entries[:len(h.entries)-1]
	return last
}

func (s *TopN) Open(ctx *Ctx) error {
	if err := s.Input.Open(ctx); err != nil {
		return err
	}
	nv, err := s.N.Eval(nil, &ctx.Env)
	if err != nil {
		return err
	}
	n := nv.Int()
	s.rows = nil
	s.pos = 0
	if n <= 0 {
		return nil
	}
	h := &topHeap{keys: s.Keys}
	var seq int64
	for {
		row, err := s.Input.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make(types.Row, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.E.Eval(row, &ctx.Env)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		e := topEntry{row: row, keys: keys, seq: seq}
		seq++
		if int64(h.Len()) < n {
			heap.Push(h, e)
		} else if h.cmp(e, h.entries[0]) < 0 {
			h.entries[0] = e
			heap.Fix(h, 0)
		}
	}
	sort.Slice(h.entries, func(i, j int) bool { return h.cmp(h.entries[i], h.entries[j]) < 0 })
	s.rows = make([]types.Row, len(h.entries))
	for i, e := range h.entries {
		s.rows[i] = e.row
	}
	return nil
}

func (s *TopN) Next(*Ctx) (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// BatchNext slices the materialized output.
func (s *TopN) BatchNext(_ *Ctx, b *Batch) error {
	sliceBatch(s.rows, &s.pos, b)
	return nil
}

func (s *TopN) Close() error {
	s.rows = nil
	return s.Input.Close()
}

// ---------------------------------------------------------------- Joins

// HashJoin is an equi-join. The right (build) side is hashed; the left side
// probes. Residual evaluates over the concatenated row.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []Expr
	LeftOuter           bool // LEFT JOIN: unmatched left rows padded with NULLs
	Residual            Expr
	BuildEst            float64 // optimizer estimate of build-side rows, 0 if unknown
	ShareBuild          bool    // Exchange installs one shared build table across workers

	table   map[uint64][]types.Row
	shared  *sharedBuild // when set, the build runs once and is read by all workers
	pending []types.Row
	cols    []ColInfo

	in      Batch     // batch-mode probe input scratch
	inPos   int       // cursor into in.Rows
	keyBuf  types.Row // probe-key scratch
	rkeyBuf types.Row // candidate right-key scratch
	arena   rowArena  // batch-mode output rows
	nullPad types.Row // NULL pad for unmatched outer rows
}

func (j *HashJoin) Columns() []ColInfo {
	if j.cols == nil {
		j.cols = append(append([]ColInfo{}, j.Left.Columns()...), j.Right.Columns()...)
	}
	return j.cols
}

func (j *HashJoin) Open(ctx *Ctx) error {
	if j.shared != nil {
		// Parallel probe: the first worker in materializes the build side
		// once; everyone reads the same immutable table.
		table, err := j.shared.get(ctx)
		if err != nil {
			return err
		}
		j.table = table
	} else {
		table, err := buildHashTable(ctx, j.Right, j.RightKeys, j.BuildEst)
		if err != nil {
			return err
		}
		j.table = table
	}
	j.pending = nil
	j.in.Rows = j.in.Rows[:0]
	j.inPos = 0
	j.nullPad = make(types.Row, len(j.Right.Columns()))
	return j.Left.Open(ctx)
}

// buildHashTable opens, drains and closes the build side into a hash table
// keyed by the join-key hash. Keys are evaluated into one reusable buffer
// and only their hash is kept — the probe side re-verifies candidates by
// value, so the build allocates nothing per row beyond the bucket slices.
// Rows with NULL keys are dropped (they never join).
func buildHashTable(ctx *Ctx, build Operator, keys []Expr, est float64) (map[uint64][]types.Row, error) {
	if err := build.Open(ctx); err != nil {
		return nil, err
	}
	defer build.Close()
	table := make(map[uint64][]types.Row, preallocSize(est, 1<<16))
	var b Batch
	keyBuf := make(types.Row, 0, len(keys))
	for {
		if err := NextBatch(ctx, build, &b); err != nil {
			return nil, err
		}
		if len(b.Rows) == 0 {
			return table, nil
		}
		for _, row := range b.Rows {
			key, null, err := evalKeysInto(keys, row, &ctx.Env, keyBuf)
			keyBuf = key[:0]
			if err != nil {
				return nil, err
			}
			if null {
				continue // NULL keys never join
			}
			h := key.Hash()
			table[h] = append(table[h], row)
		}
	}
}

func evalKeys(keys []Expr, row types.Row, env *Env) (types.Row, bool, error) {
	out := make(types.Row, len(keys))
	for i, k := range keys {
		v, err := k.Eval(row, env)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			return nil, true, nil
		}
		out[i] = v
	}
	return out, false, nil
}

// evalKeysInto is evalKeys writing into a reusable buffer; the returned
// slice aliases buf and is only valid until the next call.
func evalKeysInto(keys []Expr, row types.Row, env *Env, buf types.Row) (types.Row, bool, error) {
	buf = buf[:0]
	for _, k := range keys {
		v, err := k.Eval(row, env)
		if err != nil {
			return buf, false, err
		}
		if v.IsNull() {
			return buf, true, nil
		}
		buf = append(buf, v)
	}
	return buf, false, nil
}

func (j *HashJoin) Next(ctx *Ctx) (types.Row, error) {
	for {
		if len(j.pending) > 0 {
			row := j.pending[0]
			j.pending = j.pending[1:]
			return row, nil
		}
		left, err := j.Left.Next(ctx)
		if err != nil || left == nil {
			return left, err
		}
		key, null, err := evalKeys(j.LeftKeys, left, &ctx.Env)
		if err != nil {
			return nil, err
		}
		var matched bool
		if !null {
			for _, right := range j.table[key.Hash()] {
				rkey, _, err := evalKeys(j.RightKeys, right, &ctx.Env)
				if err != nil {
					return nil, err
				}
				if types.CompareRows(key, rkey) != 0 {
					continue // hash collision
				}
				combined := concatRows(left, right)
				ok, err := EvalBool(j.Residual, combined, &ctx.Env)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					j.pending = append(j.pending, combined)
				}
			}
		}
		if !matched && j.LeftOuter {
			j.pending = append(j.pending, concatRows(left, make(types.Row, len(j.Right.Columns()))))
		}
	}
}

// BatchNext probes a batch of left rows against the build table, reusing the
// probe-key buffer and carving output rows from the arena. The output batch
// may exceed BatchSize when a probe row matches many build rows.
func (j *HashJoin) BatchNext(ctx *Ctx, b *Batch) error {
	b.Rows = b.Rows[:0]
	// Probe rows only ever reach the output as arena concat copies, so the
	// probe side may recycle delivered rows once this window is consumed.
	j.in.Ephemeral = true
	for len(b.Rows) < BatchSize {
		if j.inPos >= len(j.in.Rows) {
			if err := NextBatch(ctx, j.Left, &j.in); err != nil {
				return err
			}
			j.inPos = 0
			if len(j.in.Rows) == 0 {
				return nil
			}
			// Size arena refills to this batch's expected output (~one
			// match per probe row); high-fanout probes refill at the same
			// granularity.
			j.arena.hint(len(j.in.Rows) * len(j.Columns()))
		}
		for j.inPos < len(j.in.Rows) && len(b.Rows) < BatchSize {
			left := j.in.Rows[j.inPos]
			j.inPos++
			key, null, err := evalKeysInto(j.LeftKeys, left, &ctx.Env, j.keyBuf)
			j.keyBuf = key[:0]
			if err != nil {
				return err
			}
			matched := false
			if !null {
				for _, right := range j.table[key.Hash()] {
					rkey, _, err := evalKeysInto(j.RightKeys, right, &ctx.Env, j.rkeyBuf)
					j.rkeyBuf = rkey[:0]
					if err != nil {
						return err
					}
					if types.CompareRows(key, rkey) != 0 {
						continue // hash collision
					}
					combined := j.arena.concat(left, right)
					ok, err := EvalBool(j.Residual, combined, &ctx.Env)
					if err != nil {
						return err
					}
					if ok {
						matched = true
						b.Rows = append(b.Rows, combined)
					}
				}
			}
			if !matched && j.LeftOuter {
				b.Rows = append(b.Rows, j.arena.concat(left, j.nullPad))
			}
		}
	}
	return nil
}

func concatRows(l, r types.Row) types.Row {
	out := make(types.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func (j *HashJoin) Close() error {
	j.table = nil
	return j.Left.Close()
}

// NestedLoop joins with an arbitrary predicate. The right side is
// materialized at Open and rescanned per left row.
type NestedLoop struct {
	Left, Right Operator
	Pred        Expr
	LeftOuter   bool

	rightRows []types.Row
	left      types.Row
	ri        int
	matched   bool
	cols      []ColInfo
}

func (j *NestedLoop) Columns() []ColInfo {
	if j.cols == nil {
		j.cols = append(append([]ColInfo{}, j.Left.Columns()...), j.Right.Columns()...)
	}
	return j.cols
}

func (j *NestedLoop) Open(ctx *Ctx) error {
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	j.rightRows = nil
	for {
		row, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		j.rightRows = append(j.rightRows, row)
	}
	j.Right.Close()
	j.left = nil
	j.ri = 0
	return j.Left.Open(ctx)
}

func (j *NestedLoop) Next(ctx *Ctx) (types.Row, error) {
	for {
		if j.left == nil {
			row, err := j.Left.Next(ctx)
			if err != nil || row == nil {
				return row, err
			}
			j.left = row
			j.ri = 0
			j.matched = false
		}
		for j.ri < len(j.rightRows) {
			right := j.rightRows[j.ri]
			j.ri++
			combined := concatRows(j.left, right)
			ok, err := EvalBool(j.Pred, combined, &ctx.Env)
			if err != nil {
				return nil, err
			}
			if ok {
				j.matched = true
				return combined, nil
			}
		}
		left := j.left
		j.left = nil
		if !j.matched && j.LeftOuter {
			return concatRows(left, make(types.Row, len(j.Right.Columns()))), nil
		}
	}
}

func (j *NestedLoop) Close() error {
	j.rightRows = nil
	return j.Left.Close()
}

// ---------------------------------------------------------------- UnionAll

// UnionAll concatenates its inputs. Combined with StartupFilters it
// implements ChoosePlan (paper figure 2b).
type UnionAll struct {
	Inputs []Operator

	cur int
}

func (u *UnionAll) Columns() []ColInfo { return u.Inputs[0].Columns() }

func (u *UnionAll) Open(ctx *Ctx) error {
	for _, in := range u.Inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	u.cur = 0
	return nil
}

func (u *UnionAll) Next(ctx *Ctx) (types.Row, error) {
	for u.cur < len(u.Inputs) {
		row, err := u.Inputs[u.cur].Next(ctx)
		if err != nil {
			return nil, err
		}
		if row != nil {
			return row, nil
		}
		u.cur++
	}
	return nil, nil
}

// BatchNext delegates to the current input, advancing on its EOS.
func (u *UnionAll) BatchNext(ctx *Ctx, b *Batch) error {
	for u.cur < len(u.Inputs) {
		if err := NextBatch(ctx, u.Inputs[u.cur], b); err != nil {
			return err
		}
		if len(b.Rows) > 0 {
			return nil
		}
		u.cur++
	}
	b.Rows = b.Rows[:0]
	return nil
}

func (u *UnionAll) Close() error {
	var first error
	for _, in := range u.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------- Remote

// Remote is the DataTransfer operator: it executes SQL text on the backend
// server and streams the result. Its appearance in a plan is exactly where
// the optimizer placed a DataTransfer enforcer (paper §5). It has no native
// batch path on purpose — it exercises the NextBatch adapter.
type Remote struct {
	SQLText string
	Cols    []ColInfo

	rows []types.Row
	pos  int
}

func (r *Remote) Columns() []ColInfo { return r.Cols }

func (r *Remote) Open(ctx *Ctx) error {
	if ctx.Remote == nil {
		return fmt.Errorf("exec: no remote server configured for query %q", r.SQLText)
	}
	sp := ctx.Span.Child("remote").Attr("sql", r.SQLText)
	start := time.Now()
	var rs *ResultSet
	var err error
	if sq, ok := ctx.Remote.(SpanQuerier); ok && ctx.TraceID != "" {
		var wspan *trace.WireSpan
		rs, wspan, err = sq.QueryTraced(r.SQLText, ctx.Params, ctx.TraceID)
		sp.Graft(wspan)
	} else {
		rs, err = ctx.Remote.Query(r.SQLText, ctx.Params)
	}
	metrics.Default.Histogram("exec.remote_roundtrip_seconds").ObserveDuration(time.Since(start))
	sp.End()
	if err != nil {
		return fmt.Errorf("exec: remote query failed: %w", err)
	}
	if ctx.Counters != nil {
		ctx.Counters.RemoteQueries++
		ctx.Counters.RowsRemote += int64(len(rs.Rows))
	}
	r.rows = rs.Rows
	r.pos = 0
	return nil
}

func (r *Remote) Next(*Ctx) (types.Row, error) {
	if r.pos >= len(r.rows) {
		return nil, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, nil
}

func (r *Remote) Close() error {
	r.rows = nil
	return nil
}

// ---------------------------------------------------------------- Values

// Values yields fixed rows (used for SELECT without FROM).
type Values struct {
	Cols []ColInfo
	Rows [][]Expr

	pos int
}

func (v *Values) Columns() []ColInfo { return v.Cols }
func (v *Values) Open(*Ctx) error    { v.pos = 0; return nil }

func (v *Values) Next(ctx *Ctx) (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	exprs := v.Rows[v.pos]
	v.pos++
	out := make(types.Row, len(exprs))
	for i, e := range exprs {
		val, err := e.Eval(nil, &ctx.Env)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}

func (v *Values) Close() error { return nil }

// ------------------------------------------------------------- VirtualScan

// VirtualScan yields the rows of a virtual system table (sys.*). The
// provider is called once per Open so a query sees one consistent
// materialization; there is no storage, no transaction and no index path.
// Like Remote, it deliberately relies on the NextBatch adapter.
type VirtualScan struct {
	Name string // full dotted table name, e.g. "sys.query_stats"
	Rows func() []types.Row
	Cols []ColInfo

	rows []types.Row
	pos  int
}

func (s *VirtualScan) Columns() []ColInfo { return s.Cols }

func (s *VirtualScan) Open(*Ctx) error {
	s.rows = s.Rows()
	s.pos = 0
	return nil
}

func (s *VirtualScan) Next(ctx *Ctx) (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	if ctx.Counters != nil {
		ctx.Counters.RowsScanned++
	}
	return row, nil
}

func (s *VirtualScan) Close() error {
	s.rows = nil
	return nil
}

// ---------------------------------------------------------------- Distinct

// Distinct removes duplicate rows (hash-based).
type Distinct struct {
	Input Operator

	seen map[uint64][]types.Row
}

func (d *Distinct) Columns() []ColInfo { return d.Input.Columns() }

func (d *Distinct) Open(ctx *Ctx) error {
	d.seen = make(map[uint64][]types.Row)
	return d.Input.Open(ctx)
}

func (d *Distinct) Next(ctx *Ctx) (types.Row, error) {
	for {
		row, err := d.Input.Next(ctx)
		if err != nil || row == nil {
			return row, err
		}
		h := row.Hash()
		dup := false
		for _, prev := range d.seen[h] {
			if types.RowsEqual(prev, row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], row)
		return row, nil
	}
}

func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}
