package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"mtcache/internal/types"
)

func constList(vals ...types.Value) []Expr {
	out := make([]Expr, len(vals))
	for i, v := range vals {
		out[i] = &ConstExpr{V: v}
	}
	return out
}

func evalIn(t *testing.T, m *InMatch, x types.Value) types.Value {
	t.Helper()
	v, err := m.X.(*ConstExpr).V, error(nil)
	_ = v
	m2 := *m
	m2.X = &ConstExpr{V: x}
	out, err := m2.Eval(nil, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInMatchBuildsSetOverThreshold(t *testing.T) {
	long := constList(
		types.NewInt(1), types.NewInt(2), types.NewInt(3), types.NewInt(4),
		types.NewInt(5), types.NewInt(6), types.NewInt(7), types.NewInt(8),
	)
	if m := NewInMatch(&ConstExpr{V: types.NewInt(0)}, long, false); m.set == nil {
		t.Error("8-element constant list should build the hash set")
	}
	short := constList(types.NewInt(1), types.NewInt(2))
	if m := NewInMatch(&ConstExpr{V: types.NewInt(0)}, short, false); m.set != nil {
		t.Error("short list should stay on the linear path")
	}
	// A non-constant element disables the set (it must be evaluated per row).
	mixed := append(constList(
		types.NewInt(1), types.NewInt(2), types.NewInt(3), types.NewInt(4),
		types.NewInt(5), types.NewInt(6), types.NewInt(7)),
		&ColExpr{I: 0})
	if m := NewInMatch(&ConstExpr{V: types.NewInt(0)}, mixed, false); m.set != nil {
		t.Error("non-constant list must not build the hash set")
	}
}

// Property: the hash-set fast path and the linear list path agree on every
// probe, including NULL semantics, NOT IN, duplicates and cross-kind
// numeric equality (1 = 1.0).
func TestInMatchSetMatchesLinearPath(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 8 + r.Intn(8)
		vals := make([]types.Value, n)
		for i := range vals {
			switch r.Intn(4) {
			case 0:
				vals[i] = types.NewInt(int64(r.Intn(10)))
			case 1:
				vals[i] = types.NewFloat(float64(r.Intn(10)))
			case 2:
				vals[i] = types.NewString(fmt.Sprintf("s%d", r.Intn(10)))
			default:
				vals[i] = types.Null
			}
		}
		for _, not := range []bool{false, true} {
			withSet := NewInMatch(&ConstExpr{V: types.Null}, constList(vals...), not)
			if withSet.set == nil {
				t.Fatal("set not built")
			}
			linear := &InMatch{X: withSet.X, List: withSet.List, Not: not}
			probes := []types.Value{
				types.NewInt(int64(r.Intn(12))),
				types.NewFloat(float64(r.Intn(12))),
				types.NewString(fmt.Sprintf("s%d", r.Intn(12))),
				types.Null,
			}
			for _, p := range probes {
				a := evalIn(t, withSet, p)
				b := evalIn(t, linear, p)
				if a.K != b.K || (a.K != types.KindNull && a.Bool() != b.Bool()) {
					t.Fatalf("set/linear divergence: probe %v not=%v: set=%v linear=%v (list %v)",
						p, not, a, b, vals)
				}
			}
		}
	}
}
