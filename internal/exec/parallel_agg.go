package exec

import "mtcache/internal/types"

// Two-phase parallel aggregation: each Exchange worker runs a PartialAgg
// over its partition, emitting per-group partial states instead of final
// results; a FinalAgg above the Exchange merges the partials. The split is
// lossless for COUNT/SUM/MIN/MAX and for AVG (shipped as sum+count), so
// FinalAgg's output is exactly what a serial HashAgg would produce, modulo
// group order. DISTINCT aggregates are not splittable and stay serial.

// PartialWidth is how many partial-state columns this aggregate ships from
// workers to the merge: AVG ships (sum, count), everything else one value.
func (s AggSpec) PartialWidth() int {
	if s.Func == AggAvg {
		return 2
	}
	return 1
}

// partials renders the accumulated state as partial-result cells, the
// mergeable form FinalAgg consumes.
func (a *aggState) partials(spec AggSpec) []types.Value {
	switch spec.Func {
	case AggCount, AggCountStar:
		return []types.Value{types.NewInt(a.count)}
	case AggAvg:
		if a.count == 0 {
			return []types.Value{types.Null, types.NewInt(0)}
		}
		return []types.Value{types.NewFloat(a.sum), types.NewInt(a.count)}
	default:
		return []types.Value{a.result(spec)}
	}
}

// PartialAgg is the per-worker half of a two-phase aggregation. Output rows
// are [group keys..., partial states...]; every worker emits a row for the
// global group even over an empty partition (FinalAgg merges them away).
type PartialAgg struct {
	Input   Operator
	GroupBy []Expr
	Aggs    []AggSpec
	Cols    []ColInfo

	out []types.Row
	pos int
}

func (p *PartialAgg) Columns() []ColInfo { return p.Cols }

func (p *PartialAgg) Open(ctx *Ctx) error {
	order, err := aggregateInput(ctx, p.Input, p.GroupBy, p.Aggs)
	if err != nil {
		return err
	}
	p.out = p.out[:0]
	for _, g := range order {
		row := make(types.Row, 0, len(p.Cols))
		row = append(row, g.keys...)
		for i, spec := range p.Aggs {
			row = append(row, g.states[i].partials(spec)...)
		}
		p.out = append(p.out, row)
	}
	p.pos = 0
	return nil
}

func (p *PartialAgg) Next(*Ctx) (types.Row, error) {
	if p.pos >= len(p.out) {
		return nil, nil
	}
	row := p.out[p.pos]
	p.pos++
	return row, nil
}

// BatchNext slices the materialized output.
func (p *PartialAgg) BatchNext(_ *Ctx, b *Batch) error {
	sliceBatch(p.out, &p.pos, b)
	return nil
}

func (p *PartialAgg) Close() error {
	p.out = nil
	return nil
}

// mergeState accumulates one aggregate across partial rows.
type mergeState struct {
	count   int64
	sum     float64
	sumInt  int64
	allInt  bool
	started bool
	best    types.Value // MIN/MAX
}

func (m *mergeState) merge(spec AggSpec, cells types.Row) {
	switch spec.Func {
	case AggCount, AggCountStar:
		m.count += cells[0].Int()
	case AggSum:
		v := cells[0]
		if v.IsNull() {
			return // empty partition
		}
		if v.K == types.KindInt {
			m.sumInt += v.I
		} else {
			m.allInt = false
		}
		m.sum += v.Float()
		m.started = true
	case AggAvg:
		cnt := cells[1].Int()
		if cnt == 0 {
			return
		}
		m.sum += cells[0].Float()
		m.count += cnt
	case AggMin:
		v := cells[0]
		if v.IsNull() {
			return
		}
		if !m.started || types.Compare(v, m.best) < 0 {
			m.best = v
		}
		m.started = true
	case AggMax:
		v := cells[0]
		if v.IsNull() {
			return
		}
		if !m.started || types.Compare(v, m.best) > 0 {
			m.best = v
		}
		m.started = true
	}
}

func (m *mergeState) result(spec AggSpec) types.Value {
	switch spec.Func {
	case AggCount, AggCountStar:
		return types.NewInt(m.count)
	case AggSum:
		if !m.started {
			return types.Null
		}
		if m.allInt {
			return types.NewInt(m.sumInt)
		}
		return types.NewFloat(m.sum)
	case AggAvg:
		if m.count == 0 {
			return types.Null
		}
		return types.NewFloat(m.sum / float64(m.count))
	default: // MIN/MAX
		if !m.started {
			return types.Null
		}
		return m.best
	}
}

// FinalAgg merges partial aggregate rows into final results. Input rows are
// [group keys... (GroupKeys of them), partial states...]; output matches the
// serial HashAgg layout [group keys..., agg results...].
type FinalAgg struct {
	Input     Operator
	GroupKeys int
	Aggs      []AggSpec
	Cols      []ColInfo

	out []types.Row
	pos int
}

func (f *FinalAgg) Columns() []ColInfo { return f.Cols }

// finalGroup is one output group's merge state.
type finalGroup struct {
	keys   types.Row
	states []*mergeState
}

func (f *FinalAgg) Open(ctx *Ctx) error {
	if err := f.Input.Open(ctx); err != nil {
		return err
	}
	groups := make(map[uint64][]*finalGroup)
	var order []*finalGroup
	newGroup := func(keys types.Row) *finalGroup {
		g := &finalGroup{keys: keys, states: make([]*mergeState, len(f.Aggs))}
		for i := range g.states {
			g.states[i] = &mergeState{allInt: true}
		}
		order = append(order, g)
		return g
	}
	if f.GroupKeys == 0 {
		groups[(types.Row{}).Hash()] = []*finalGroup{newGroup(types.Row{})}
	}
	var b Batch
	for {
		if err := NextBatch(ctx, f.Input, &b); err != nil {
			return err
		}
		if len(b.Rows) == 0 {
			break
		}
		for _, row := range b.Rows {
			keys := types.Row(row[:f.GroupKeys])
			hash := keys.Hash()
			var g *finalGroup
			for _, cand := range groups[hash] {
				if types.RowsEqual(cand.keys, keys) {
					g = cand
					break
				}
			}
			if g == nil {
				g = newGroup(keys)
				groups[hash] = append(groups[hash], g)
			}
			off := f.GroupKeys
			for i, spec := range f.Aggs {
				w := spec.PartialWidth()
				g.states[i].merge(spec, types.Row(row[off:off+w]))
				off += w
			}
		}
	}
	f.Input.Close()
	f.out = f.out[:0]
	for _, g := range order {
		row := make(types.Row, 0, len(g.keys)+len(f.Aggs))
		row = append(row, g.keys...)
		for i, spec := range f.Aggs {
			row = append(row, g.states[i].result(spec))
		}
		f.out = append(f.out, row)
	}
	f.pos = 0
	return nil
}

func (f *FinalAgg) Next(*Ctx) (types.Row, error) {
	if f.pos >= len(f.out) {
		return nil, nil
	}
	row := f.out[f.pos]
	f.pos++
	return row, nil
}

// BatchNext slices the materialized output.
func (f *FinalAgg) BatchNext(_ *Ctx, b *Batch) error {
	sliceBatch(f.out, &f.pos, b)
	return nil
}

func (f *FinalAgg) Close() error {
	f.out = nil
	return f.Input.Close()
}
