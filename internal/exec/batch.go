package exec

import (
	"mtcache/internal/types"
)

// BatchSize is the row count operators aim for per batch. 64 rows amortizes
// the per-call virtual dispatch and bounds checks across the tree while
// keeping a batch comfortably inside the L1/L2 working set; it matches the
// chunk size Exchange already uses on its worker channels.
const BatchSize = 64

// Batch is a reusable window of rows flowing between operators. Only the
// Rows slice header is reused between calls — by default the row values
// themselves are stable (MVCC snapshot rows from storage, or arena rows
// owned by the producing operator), so consumers may retain them.
//
// A consumer that copies out everything it keeps before its next pull —
// aggregation cloning group keys, a join probe emitting concatenated
// copies — sets Ephemeral before calling NextBatch. That releases the
// producer from the durability guarantee: it may overwrite the delivered
// rows on the following BatchNext call, which lets Project recycle one
// output slab instead of growing a fresh arena chunk per batch. Operators
// that merely pass rows through (Filter, Limit, UnionAll) propagate the
// flag; operators that retain input rows (Sort, TopN, Distinct, hash-join
// builds, Exchange workers, Run itself) leave it unset on the batches they
// own.
type Batch struct {
	Rows      []types.Row
	Ephemeral bool
}

// BatchOperator is the vectorized fast path of an Operator: BatchNext
// refills b (starting from b.Rows[:0]) with the next window of rows. An
// empty batch signals end of stream; a non-empty batch may hold any positive
// number of rows (typically up to BatchSize; joins may overshoot when one
// probe row matches many build rows). BatchNext and Next must not be mixed
// on the same operator instance within one execution.
type BatchOperator interface {
	Operator
	BatchNext(ctx *Ctx, b *Batch) error
}

// NextBatch pulls the next batch from op, using its native batch path when
// it has one and falling back to a row-at-a-time adapter otherwise (Remote,
// VirtualScan, Instrumented, NestedLoop, ... keep working unchanged).
func NextBatch(ctx *Ctx, op Operator, b *Batch) error {
	// RowMode forces the adapter everywhere — the measured "before" of the
	// vectorized-execution benchmarks.
	if bo, ok := op.(BatchOperator); ok && !ctx.RowMode {
		return bo.BatchNext(ctx, b)
	}
	b.Rows = b.Rows[:0]
	for len(b.Rows) < BatchSize {
		row, err := op.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		b.Rows = append(b.Rows, row)
	}
	return nil
}

// sliceBatch advances a cursor over fully materialized rows, handing out
// BatchSize windows without copying.
func sliceBatch(rows []types.Row, pos *int, b *Batch) {
	n := len(rows) - *pos
	if n > BatchSize {
		n = BatchSize
	}
	if n <= 0 {
		b.Rows = b.Rows[:0]
		return
	}
	b.Rows = append(b.Rows[:0], rows[*pos:*pos+n]...)
	*pos += n
}

// rowArena carves fixed-width output rows out of batch-sized chunks,
// replacing a make per row with one make per batch. Callers hint the coming
// batch's total width so chunks are sized to real demand — a point query
// allocates exactly its one row, a full scan batch one 64-row chunk — and
// live result rows never pin more than one batch of slack. Chunks are never
// reused or freed early — every row handed out owns its slice for the life
// of the result — so rows emitted from an arena are exactly as durable as
// individually allocated ones. The full-capacity reslice (buf[:n:n]) makes
// appending to an emitted row impossible to alias into a neighbour.
type rowArena struct {
	buf   []types.Value
	chunk int // refill granularity, set by hint
}

// hint sets the refill size for the coming batch (total values expected).
func (a *rowArena) hint(n int) { a.chunk = n }

func (a *rowArena) alloc(n int) types.Row {
	if n == 0 {
		return types.Row{}
	}
	if len(a.buf) < n {
		c := a.chunk
		if n > c {
			c = n
		}
		a.buf = make([]types.Value, c)
	}
	r := types.Row(a.buf[:n:n])
	a.buf = a.buf[n:]
	return r
}

// concat builds l ++ r in arena storage.
func (a *rowArena) concat(l, r types.Row) types.Row {
	out := a.alloc(len(l) + len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}
