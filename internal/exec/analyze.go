package exec

import (
	"time"

	"mtcache/internal/types"
)

// OpStats accumulates per-operator runtime statistics for EXPLAIN ANALYZE.
type OpStats struct {
	Rows   int64         // rows returned by Next
	Time   time.Duration // wall time inside Open + Next + Close
	Opened bool          // false when a StartupFilter pruned this subtree
}

// Instrumented wraps an operator, timing its calls and counting produced
// rows. It is transparent to execution: Columns and errors pass through.
type Instrumented struct {
	Op    Operator
	Stats OpStats
}

// Instrument wraps every operator in the tree with an *Instrumented shell,
// returning the new root. The input tree is mutated (child links are
// redirected), so instrument a private clone, never a cached plan.
func Instrument(op Operator) *Instrumented {
	switch x := op.(type) {
	case *Filter:
		x.Input = Instrument(x.Input)
	case *StartupFilter:
		x.Input = Instrument(x.Input)
	case *Project:
		x.Input = Instrument(x.Input)
	case *Limit:
		x.Input = Instrument(x.Input)
	case *Sort:
		x.Input = Instrument(x.Input)
	case *Distinct:
		x.Input = Instrument(x.Input)
	case *HashAgg:
		x.Input = Instrument(x.Input)
	case *TopN:
		x.Input = Instrument(x.Input)
	case *FinalAgg:
		x.Input = Instrument(x.Input)
	case *Exchange:
		// Deliberately not descending into the template: workers execute
		// private clones, so template-side shells would never see a row.
		// The Exchange's own shell carries the gathered totals and the
		// per-worker counts come from WorkerRows.
	case *HashJoin:
		x.Left = Instrument(x.Left)
		x.Right = Instrument(x.Right)
	case *NestedLoop:
		x.Left = Instrument(x.Left)
		x.Right = Instrument(x.Right)
	case *UnionAll:
		for i, in := range x.Inputs {
			x.Inputs[i] = Instrument(in)
		}
	}
	return &Instrumented{Op: op}
}

func (i *Instrumented) Columns() []ColInfo { return i.Op.Columns() }

func (i *Instrumented) Open(ctx *Ctx) error {
	start := time.Now()
	err := i.Op.Open(ctx)
	i.Stats.Time += time.Since(start)
	i.Stats.Opened = true
	return err
}

func (i *Instrumented) Next(ctx *Ctx) (types.Row, error) {
	start := time.Now()
	row, err := i.Op.Next(ctx)
	i.Stats.Time += time.Since(start)
	if row != nil {
		i.Stats.Rows++
	}
	return row, err
}

func (i *Instrumented) Close() error {
	start := time.Now()
	err := i.Op.Close()
	i.Stats.Time += time.Since(start)
	return err
}
