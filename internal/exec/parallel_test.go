package exec

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

func sortedRows(rows []types.Row) []types.Row {
	out := append([]types.Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return types.CompareRows(out[i], out[j]) < 0 })
	return out
}

func requireSameRows(t *testing.T, got, want []types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d", len(got), len(want))
	}
	g, w := sortedRows(got), sortedRows(want)
	for i := range w {
		if types.CompareRows(g[i], w[i]) != 0 {
			t.Fatalf("row %d = %v, want %v", i, g[i], w[i])
		}
	}
}

func parallelScan() *Scan {
	return &Scan{TableName: "nums", Cols: numsCols(), Parallel: true}
}

func TestExchangeScanEquivalence(t *testing.T) {
	s := newTestStore(t, 500)
	want := runOp(t, s, &Scan{TableName: "nums", Cols: numsCols()}, nil)
	for _, dop := range []int{1, 2, 3, 4, 8} {
		got := runOp(t, s, &Exchange{Template: parallelScan(), DOP: dop}, nil)
		requireSameRows(t, got.Rows, want.Rows)
	}
}

func TestExchangeIndexScanEquivalence(t *testing.T) {
	s := newTestStore(t, 500)
	mk := func(parallel bool) *IndexScan {
		return &IndexScan{
			TableName: "nums", IndexName: "__pk", Cols: numsCols(),
			Lo:       []Expr{&ConstExpr{V: types.NewInt(20)}},
			Hi:       []Expr{&ConstExpr{V: types.NewInt(399)}},
			Parallel: parallel,
		}
	}
	want := runOp(t, s, mk(false), nil)
	if len(want.Rows) != 380 {
		t.Fatalf("serial rows %d", len(want.Rows))
	}
	for _, dop := range []int{2, 4, 7} {
		got := runOp(t, s, &Exchange{Template: mk(true), DOP: dop}, nil)
		requireSameRows(t, got.Rows, want.Rows)
	}
}

func TestExchangeFilterProjectEquivalence(t *testing.T) {
	s := newTestStore(t, 400)
	mk := func(parallel bool) Operator {
		return &Project{
			Input: &Filter{
				Input: &Scan{TableName: "nums", Cols: numsCols(), Parallel: parallel},
				Pred:  &BinExpr{Op: sql.OpGE, L: &ColExpr{I: 0}, R: &ConstExpr{V: types.NewInt(100)}},
			},
			Exprs: []Expr{&BinExpr{Op: sql.OpMul, L: &ColExpr{I: 0}, R: &ConstExpr{V: types.NewInt(2)}}, &ColExpr{I: 1}},
			Cols:  []ColInfo{{Name: "a2", Kind: types.KindInt}, {Name: "b", Kind: types.KindString}},
		}
	}
	want := runOp(t, s, mk(false), nil)
	got := runOp(t, s, &Exchange{Template: mk(true), DOP: 4}, nil)
	requireSameRows(t, got.Rows, want.Rows)
}

func TestExchangeSharedBuildJoinEquivalence(t *testing.T) {
	s := newTestStore(t, 100)
	mk := func(parallel, share bool) *HashJoin {
		return &HashJoin{
			Left:       &Scan{TableName: "nums", Cols: numsCols(), Parallel: parallel},
			Right:      &Scan{TableName: "nums", Cols: numsCols()},
			LeftKeys:   []Expr{&ColExpr{I: 1}},
			RightKeys:  []Expr{&ColExpr{I: 1}},
			ShareBuild: share,
		}
	}
	want := runOp(t, s, mk(false, false), nil)
	if len(want.Rows) != 2000 { // 5 colors x 20x20 pairs
		t.Fatalf("serial join rows %d", len(want.Rows))
	}
	for _, dop := range []int{2, 4} {
		got := runOp(t, s, &Exchange{Template: mk(true, true), DOP: dop}, nil)
		requireSameRows(t, got.Rows, want.Rows)
	}
}

func TestExchangeWorkerErrorPropagation(t *testing.T) {
	s := newTestStore(t, 1000)
	divZero := &BinExpr{
		Op: sql.OpEQ,
		L:  &BinExpr{Op: sql.OpDiv, L: &ColExpr{I: 0}, R: &ConstExpr{V: types.NewInt(0)}},
		R:  &ConstExpr{V: types.NewInt(1)},
	}
	ex := &Exchange{Template: &Filter{Input: parallelScan(), Pred: divZero}, DOP: 4}
	tx := s.Begin(false)
	defer tx.Abort()
	ctx := &Ctx{Txn: tx, Counters: &Counters{}}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var got error
	for {
		row, err := ex.Next(ctx)
		if err != nil {
			got = err
			break
		}
		if row == nil {
			break
		}
	}
	if got == nil || !strings.Contains(got.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", got)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil { // double Close is a no-op
		t.Fatal(err)
	}
}

func TestExchangeContextCancellation(t *testing.T) {
	s := newTestStore(t, 2000)
	cctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: workers must stop before producing the stream
	ex := &Exchange{Template: parallelScan(), DOP: 2}
	tx := s.Begin(false)
	defer tx.Abort()
	ctx := &Ctx{Txn: tx, Counters: &Counters{}, Context: cctx}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for {
		row, err := ex.Next(ctx)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			break
		}
		if row == nil {
			t.Fatal("stream ended cleanly despite cancelled context")
		}
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeEarlyCloseNoGoroutineLeak closes a parallel stream after one
// row, repeatedly, and checks the goroutine count settles back to baseline.
func TestExchangeEarlyCloseNoGoroutineLeak(t *testing.T) {
	s := newTestStore(t, 5000)
	before := runtime.NumGoroutine()
	for iter := 0; iter < 10; iter++ {
		ex := &Exchange{Template: parallelScan(), DOP: 4}
		tx := s.Begin(false)
		ctx := &Ctx{Txn: tx, Counters: &Counters{}}
		if err := ex.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Next(ctx); err != nil {
			t.Fatal(err)
		}
		if err := ex.Close(); err != nil {
			t.Fatal(err)
		}
		tx.Abort()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after Close", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// newValsStore builds vals(id INT PK, g INT, x INT, f FLOAT) with n rows:
// g = id%3, x = NULL when id%5 == 0 else id, f = id * 0.5.
func newValsStore(t *testing.T, n int64) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	meta := &catalog.Table{
		Name: "vals",
		Columns: []catalog.Column{
			{Name: "id", Type: types.KindInt},
			{Name: "g", Type: types.KindInt},
			{Name: "x", Type: types.KindInt},
			{Name: "f", Type: types.KindFloat},
		},
		PrimaryKey: []int{0},
	}
	if err := s.CreateTable(meta); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(true)
	for i := int64(0); i < n; i++ {
		x := types.NewInt(i)
		if i%5 == 0 {
			x = types.Null
		}
		row := types.Row{types.NewInt(i), types.NewInt(i % 3), x, types.NewFloat(float64(i) * 0.5)}
		if _, err := tx.Insert("vals", row); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	return s
}

func valsCols() []ColInfo {
	return []ColInfo{
		{Table: "vals", Name: "id", Kind: types.KindInt},
		{Table: "vals", Name: "g", Kind: types.KindInt},
		{Table: "vals", Name: "x", Kind: types.KindInt},
		{Table: "vals", Name: "f", Kind: types.KindFloat},
	}
}

// testAggSpecs covers NULL-skipping, int-preserving SUM, float SUM, and AVG.
func testAggSpecs() ([]AggSpec, []ColInfo) {
	aggs := []AggSpec{
		{Func: AggCountStar},
		{Func: AggCount, Arg: &ColExpr{I: 2}},
		{Func: AggSum, Arg: &ColExpr{I: 2}},
		{Func: AggSum, Arg: &ColExpr{I: 3}},
		{Func: AggAvg, Arg: &ColExpr{I: 2}},
		{Func: AggMin, Arg: &ColExpr{I: 2}},
		{Func: AggMax, Arg: &ColExpr{I: 3}},
	}
	cols := []ColInfo{
		{Name: "cnt_star", Kind: types.KindInt},
		{Name: "cnt_x", Kind: types.KindInt},
		{Name: "sum_x", Kind: types.KindInt},
		{Name: "sum_f", Kind: types.KindFloat},
		{Name: "avg_x", Kind: types.KindFloat},
		{Name: "min_x", Kind: types.KindInt},
		{Name: "max_f", Kind: types.KindFloat},
	}
	return aggs, cols
}

// partialAggPlan wires PartialAgg -> Exchange -> FinalAgg over a parallel
// scan, mirroring what opt.parallelAgg emits.
func partialAggPlan(groupBy []Expr, nKeys int, aggs []AggSpec, keyCols, aggCols []ColInfo, dop int) Operator {
	partialCols := append([]ColInfo(nil), keyCols...)
	for i, a := range aggs {
		if a.Func == AggAvg {
			partialCols = append(partialCols,
				ColInfo{Name: "$sum", Kind: types.KindFloat},
				ColInfo{Name: "$cnt", Kind: types.KindInt})
		} else {
			partialCols = append(partialCols, aggCols[i])
		}
	}
	partial := &PartialAgg{
		Input:   &Scan{TableName: "vals", Cols: valsCols(), Parallel: true},
		GroupBy: groupBy,
		Aggs:    aggs,
		Cols:    partialCols,
	}
	return &FinalAgg{
		Input:     &Exchange{Template: partial, DOP: dop},
		GroupKeys: nKeys,
		Aggs:      aggs,
		Cols:      append(append([]ColInfo(nil), keyCols...), aggCols...),
	}
}

func TestPartialFinalAggGroupedEquivalence(t *testing.T) {
	s := newValsStore(t, 333)
	aggs, aggCols := testAggSpecs()
	groupBy := []Expr{&ColExpr{I: 1}}
	keyCols := []ColInfo{{Name: "g", Kind: types.KindInt}}
	serial := &HashAgg{
		Input:   &Scan{TableName: "vals", Cols: valsCols()},
		GroupBy: groupBy,
		Aggs:    aggs,
		Cols:    append(append([]ColInfo(nil), keyCols...), aggCols...),
	}
	want := runOp(t, s, serial, nil)
	if len(want.Rows) != 3 {
		t.Fatalf("serial groups %d", len(want.Rows))
	}
	for _, dop := range []int{1, 2, 4} {
		got := runOp(t, s, partialAggPlan(groupBy, 1, aggs, keyCols, aggCols, dop), nil)
		requireSameRows(t, got.Rows, want.Rows)
	}
}

func TestPartialFinalAggGlobalEquivalence(t *testing.T) {
	for _, n := range []int64{0, 1, 250} { // empty input must still yield one global row
		s := newValsStore(t, n)
		aggs, aggCols := testAggSpecs()
		serial := &HashAgg{
			Input: &Scan{TableName: "vals", Cols: valsCols()},
			Aggs:  aggs,
			Cols:  aggCols,
		}
		want := runOp(t, s, serial, nil)
		if len(want.Rows) != 1 {
			t.Fatalf("n=%d: serial global rows %d", n, len(want.Rows))
		}
		got := runOp(t, s, partialAggPlan(nil, 0, aggs, nil, aggCols, 4), nil)
		requireSameRows(t, got.Rows, want.Rows)
	}
}

func TestTopNMatchesSortLimit(t *testing.T) {
	s := newTestStore(t, 200)
	keys := []SortKey{{E: &ColExpr{I: 1}}} // only 5 distinct values: ties abound
	for _, n := range []int64{0, 7, 50, 500} {
		serial := &Limit{
			Input: &Sort{Input: &Scan{TableName: "nums", Cols: numsCols()}, Keys: keys},
			N:     &ConstExpr{V: types.NewInt(n)},
		}
		want := runOp(t, s, serial, nil)
		fused := &TopN{
			Input: &Scan{TableName: "nums", Cols: numsCols()},
			Keys:  keys,
			N:     &ConstExpr{V: types.NewInt(n)},
		}
		got := runOp(t, s, fused, nil)
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("n=%d: rows %d, want %d", n, len(got.Rows), len(want.Rows))
		}
		// Exact order must match: TopN's tiebreak is input order, the same
		// order the stable Sort preserves.
		for i := range want.Rows {
			if types.CompareRows(got.Rows[i], want.Rows[i]) != 0 {
				t.Fatalf("n=%d row %d = %v, want %v", n, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

func TestTopNDescWithParamN(t *testing.T) {
	s := newTestStore(t, 100)
	keys := []SortKey{{E: &ColExpr{I: 1}, Desc: true}, {E: &ColExpr{I: 0}, Desc: true}}
	serial := &Limit{
		Input: &Sort{Input: &Scan{TableName: "nums", Cols: numsCols()}, Keys: keys},
		N:     &ParamExpr{Name: "n"},
	}
	params := Params{"n": types.NewInt(9)}
	want := runOp(t, s, serial, params)
	got := runOp(t, s, &TopN{
		Input: &Scan{TableName: "nums", Cols: numsCols()},
		Keys:  keys,
		N:     &ParamExpr{Name: "n"},
	}, params)
	if len(got.Rows) != 9 || len(want.Rows) != 9 {
		t.Fatalf("rows %d/%d, want 9", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if types.CompareRows(got.Rows[i], want.Rows[i]) != 0 {
			t.Fatalf("row %d = %v, want %v", i, got.Rows[i], want.Rows[i])
		}
	}
}
