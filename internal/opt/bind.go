package opt

import (
	"fmt"
	"strings"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// scope resolves column references against an operator's output schema.
type scope struct {
	cols []exec.ColInfo
}

// resolve returns the ordinal of ref within the scope. Qualified references
// match on (table alias, name); unqualified must be unambiguous.
func (s *scope) resolve(ref *sql.ColumnRef) (int, error) {
	found := -1
	for i, c := range s.cols {
		if !strings.EqualFold(c.Name, ref.Name) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(c.Table, ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("opt: ambiguous column %s", ref.Name)
		}
		found = i
	}
	if found < 0 {
		if ref.Table != "" {
			return 0, fmt.Errorf("opt: unknown column %s.%s", ref.Table, ref.Name)
		}
		return 0, fmt.Errorf("opt: unknown column %s", ref.Name)
	}
	return found, nil
}

// kindOf returns the declared kind of column i.
func (s *scope) kindOf(i int) types.Kind { return s.cols[i].Kind }

// compileExpr lowers a SQL expression to an executable expression against
// the given scope. Aggregate function calls are rejected here; the planner
// rewrites them to agg-output column references before compiling.
func compileExpr(e sql.Expr, s *scope) (exec.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *sql.ColumnRef:
		i, err := s.resolve(x)
		if err != nil {
			return nil, err
		}
		return &exec.ColExpr{I: i}, nil
	case *sql.Literal:
		return &exec.ConstExpr{V: x.Val}, nil
	case *sql.Param:
		return &exec.ParamExpr{Name: x.Name}, nil
	case *sql.BinaryExpr:
		l, err := compileExpr(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, s)
		if err != nil {
			return nil, err
		}
		return &exec.BinExpr{Op: x.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		in, err := compileExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		if x.Op == sql.OpNot {
			return &exec.NotExpr{X: in}, nil
		}
		return &exec.NegExpr{X: in}, nil
	case *sql.LikeExpr:
		xx, err := compileExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		p, err := compileExpr(x.Pattern, s)
		if err != nil {
			return nil, err
		}
		return &exec.LikeMatch{X: xx, Pattern: p, Not: x.Not}, nil
	case *sql.InExpr:
		xx, err := compileExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		list := make([]exec.Expr, len(x.List))
		for i, item := range x.List {
			list[i], err = compileExpr(item, s)
			if err != nil {
				return nil, err
			}
		}
		return exec.NewInMatch(xx, list, x.Not), nil
	case *sql.BetweenExpr:
		xx, err := compileExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(x.Lo, s)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(x.Hi, s)
		if err != nil {
			return nil, err
		}
		return &exec.BetweenMatch{X: xx, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sql.IsNullExpr:
		xx, err := compileExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		return &exec.IsNullMatch{X: xx, Not: x.Not}, nil
	case *sql.CaseExpr:
		out := &exec.CaseMatch{}
		for _, w := range x.Whens {
			c, err := compileExpr(w.Cond, s)
			if err != nil {
				return nil, err
			}
			t, err := compileExpr(w.Then, s)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, struct{ Cond, Then exec.Expr }{c, t})
		}
		if x.Else != nil {
			e, err := compileExpr(x.Else, s)
			if err != nil {
				return nil, err
			}
			out.Else = e
		}
		return out, nil
	case *sql.FuncCall:
		if _, isAgg := exec.ParseAggFunc(x.Name, x.Star); isAgg {
			return nil, fmt.Errorf("opt: aggregate %s not allowed here", x.Name)
		}
		args := make([]exec.Expr, len(x.Args))
		var err error
		for i, a := range x.Args {
			args[i], err = compileExpr(a, s)
			if err != nil {
				return nil, err
			}
		}
		return &exec.ScalarFunc{Name: x.Name, Args: args}, nil
	}
	return nil, fmt.Errorf("opt: cannot compile expression %T", e)
}

// CompileScalar compiles an expression against an optional base-table scope.
// With a nil table the expression may reference only literals and
// parameters. Used by the engine's DML paths and view maintenance.
func CompileScalar(e sql.Expr, t *catalog.Table) (exec.Expr, error) {
	sc := &scope{}
	if t != nil {
		for _, c := range t.Columns {
			sc.cols = append(sc.cols, exec.ColInfo{Table: t.Name, Name: c.Name, Kind: c.Type})
		}
	}
	return compileExpr(e, sc)
}

// compileParamOnly compiles a guard expression that may reference only
// parameters (used for startup predicates).
func compileParamOnly(e sql.Expr) (exec.Expr, error) {
	if refs := columnRefs(e); len(refs) > 0 {
		return nil, fmt.Errorf("opt: guard references columns: %v", refs)
	}
	return compileExpr(e, &scope{})
}

// exprKind infers the result kind of an expression against a scope (best
// effort; used to type computed select items).
func exprKind(e sql.Expr, s *scope) types.Kind {
	switch x := e.(type) {
	case *sql.ColumnRef:
		if i, err := s.resolve(x); err == nil {
			return s.kindOf(i)
		}
	case *sql.Literal:
		return x.Val.K
	case *sql.BinaryExpr:
		if x.Op.IsComparison() || x.Op == sql.OpAnd || x.Op == sql.OpOr {
			return types.KindBool
		}
		lk := exprKind(x.L, s)
		rk := exprKind(x.R, s)
		if lk == types.KindFloat || rk == types.KindFloat {
			return types.KindFloat
		}
		if lk == types.KindString && rk == types.KindString {
			return types.KindString
		}
		return types.KindInt
	case *sql.UnaryExpr:
		if x.Op == sql.OpNot {
			return types.KindBool
		}
		return exprKind(x.X, s)
	case *sql.FuncCall:
		switch x.Name {
		case "COUNT", "LEN", "LENGTH":
			return types.KindInt
		case "AVG":
			return types.KindFloat
		case "SUM", "MIN", "MAX", "ABS":
			if len(x.Args) == 1 {
				return exprKind(x.Args[0], s)
			}
			return types.KindFloat
		case "UPPER", "LOWER", "SUBSTRING":
			return types.KindString
		case "COALESCE":
			if len(x.Args) > 0 {
				return exprKind(x.Args[0], s)
			}
		}
	case *sql.LikeExpr, *sql.InExpr, *sql.BetweenExpr, *sql.IsNullExpr:
		return types.KindBool
	case *sql.CaseExpr:
		if len(x.Whens) > 0 {
			return exprKind(x.Whens[0].Then, s)
		}
	}
	return types.KindString
}

// exprName picks a display name for a select item.
func exprName(item sql.SelectItem, idx int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*sql.ColumnRef); ok {
		return c.Name
	}
	if f, ok := item.Expr.(*sql.FuncCall); ok {
		return strings.ToLower(f.Name)
	}
	return fmt.Sprintf("col%d", idx+1)
}

// replaceExprs rewrites e, substituting any subexpression whose deparsed
// text equals a key of repl with the replacement expression. Used to map
// aggregate calls and group-by expressions to agg-output columns.
func replaceExprs(e sql.Expr, repl map[string]sql.Expr) sql.Expr {
	if e == nil {
		return nil
	}
	if r, ok := repl[sql.DeparseExpr(e)]; ok {
		return sql.CloneExpr(r)
	}
	switch x := e.(type) {
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op, L: replaceExprs(x.L, repl), R: replaceExprs(x.R, repl)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, X: replaceExprs(x.X, repl)}
	case *sql.FuncCall:
		out := &sql.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, replaceExprs(a, repl))
		}
		return out
	case *sql.LikeExpr:
		return &sql.LikeExpr{X: replaceExprs(x.X, repl), Pattern: replaceExprs(x.Pattern, repl), Not: x.Not}
	case *sql.InExpr:
		out := &sql.InExpr{X: replaceExprs(x.X, repl), Not: x.Not}
		for _, a := range x.List {
			out.List = append(out.List, replaceExprs(a, repl))
		}
		return out
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{X: replaceExprs(x.X, repl), Lo: replaceExprs(x.Lo, repl), Hi: replaceExprs(x.Hi, repl), Not: x.Not}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{X: replaceExprs(x.X, repl), Not: x.Not}
	case *sql.CaseExpr:
		out := &sql.CaseExpr{Else: replaceExprs(x.Else, repl)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sql.CaseWhen{Cond: replaceExprs(w.Cond, repl), Then: replaceExprs(w.Then, repl)})
		}
		return out
	}
	return e
}

// containsAgg reports whether e contains an aggregate function call.
func containsAgg(e sql.Expr) bool {
	found := false
	sql.WalkExpr(e, func(x sql.Expr) bool {
		if f, ok := x.(*sql.FuncCall); ok {
			if _, isAgg := exec.ParseAggFunc(f.Name, f.Star); isAgg {
				found = true
			}
		}
		return !found
	})
	return found
}
