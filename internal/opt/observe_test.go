package opt

import (
	"strings"
	"testing"
	"time"

	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/types"
)

// ChoosePlan branch-selection counters: a parameterized query executed inside
// the cached range takes the local branch, outside it the remote branch —
// and the counters record exactly which branch fired.
func TestChoosePlanBranchCounters(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	metrics.Default.Reset()

	p := optimize(t, env, "SELECT cname FROM customer WHERE cid = @cid")
	if !p.Dynamic {
		t.Fatalf("expected a dynamic plan:\n%s", Explain(p))
	}

	run := func(cid int64) {
		t.Helper()
		rs, _ := execute(t, p, store, b, exec.Params{"cid": types.NewInt(cid)})
		if len(rs.Rows) != 1 {
			t.Fatalf("cid=%d: rows=%d", cid, len(rs.Rows))
		}
	}

	run(5) // inside Cust1000: local branch
	if got := metrics.Default.Counter("opt.chooseplan_local").Value(); got != 1 {
		t.Errorf("chooseplan_local after in-range execution: %d", got)
	}
	if got := metrics.Default.Counter("opt.chooseplan_remote").Value(); got != 0 {
		t.Errorf("chooseplan_remote after in-range execution: %d", got)
	}

	run(1500) // outside Cust1000: remote branch
	if got := metrics.Default.Counter("opt.chooseplan_local").Value(); got != 1 {
		t.Errorf("chooseplan_local after out-of-range execution: %d", got)
	}
	if got := metrics.Default.Counter("opt.chooseplan_remote").Value(); got != 1 {
		t.Errorf("chooseplan_remote after out-of-range execution: %d", got)
	}
}

// Per-view hit/miss and plan-shape counters published by the planner.
func TestPlannerViewCounters(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)
	metrics.Default.Reset()

	optimize(t, env, "SELECT cname FROM customer WHERE cid <= 100")
	if got := metrics.Default.Counter("opt.view_hit.Cust1000").Value(); got != 1 {
		t.Errorf("view_hit.Cust1000: %d", got)
	}

	optimize(t, env, "SELECT total FROM orders WHERE okey = 7")
	if got := metrics.Default.Counter("opt.view_miss").Value(); got != 1 {
		t.Errorf("view_miss: %d", got)
	}
	if got := metrics.Default.Counter("opt.plan_remote").Value(); got != 1 {
		t.Errorf("plan_remote: %d", got)
	}

	optimize(t, env, "SELECT cname FROM customer WHERE cid = @cid")
	if got := metrics.Default.Counter("opt.plan_dynamic").Value(); got != 1 {
		t.Errorf("plan_dynamic: %d", got)
	}
}

// EXPLAIN of a dynamic plan must label each ChoosePlan branch with its
// location and show the DataTransfer boundary with its shipped SQL.
func TestExplainDynamicPlanGolden(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)
	p := optimize(t, env, "SELECT cid FROM customer WHERE cid <= @cid")
	text := Explain(p)
	for _, want := range []string{
		"dynamic(Fl=",
		"UnionAll",
		"StartupFilter (ChoosePlan branch=local)",
		"StartupFilter (ChoosePlan branch=remote)",
		"DataTransfer [SELECT",
		"Cust1000",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}

// EXPLAIN of a mixed-location plan shows location=Mixed and the boundary.
func TestExplainMixedLocationGolden(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)
	// customer is answerable from the cached view; orders is not, so its
	// subtree ships to the backend behind a DataTransfer.
	p := optimize(t, env, `SELECT c.cname, o.total FROM customer c, orders o
		WHERE c.cid = o.ckey AND c.cid <= 500 AND o.okey <= 100`)
	text := Explain(p)
	if p.FullyLocal || p.FullyRemote {
		t.Skipf("optimizer chose a single location; plan:\n%s", text)
	}
	for _, want := range []string{"location=Mixed", "DataTransfer [SELECT"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}

// EXPLAIN ANALYZE of a dynamic plan: the executed branch reports actual rows
// and time, the pruned branch renders "(never executed)".
func TestExplainAnalyzeDynamicPlan(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	p := optimize(t, env, "SELECT cid FROM customer WHERE cid <= @cid")
	if !p.Dynamic {
		t.Fatalf("expected a dynamic plan:\n%s", Explain(p))
	}

	analyze := func(cid int64) string {
		t.Helper()
		root := exec.Instrument(exec.CloneOperator(p.Root))
		tx := store.Begin(false)
		defer tx.Abort()
		start := time.Now()
		rs, err := exec.Run(root, &exec.Ctx{
			Params: exec.Params{"cid": types.NewInt(cid)},
			Txn:    tx, Remote: b, Counters: &exec.Counters{},
		})
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		if len(rs.Rows) != int(cid) {
			t.Fatalf("cid=%d: rows=%d", cid, len(rs.Rows))
		}
		return ExplainAnalyze(p, root, time.Since(start))
	}

	// In-range: local branch executed, remote branch pruned.
	text := analyze(50)
	for _, want := range []string{
		"actual_time=",
		"UnionAll (actual rows=50",
		"StartupFilter (ChoosePlan branch=local) (actual rows=50",
		"[executed]",
		"StartupFilter (ChoosePlan branch=remote) (actual rows=0",
		"[pruned]",
		"(never executed)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze(50) missing %q:\n%s", want, text)
		}
	}

	// Out-of-range: remote branch executed through the DataTransfer.
	text = analyze(1500)
	for _, want := range []string{
		"StartupFilter (ChoosePlan branch=remote) (actual rows=1500",
		"DataTransfer [SELECT",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze(1500) missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "StartupFilter (ChoosePlan branch=local) (actual rows=0") {
		t.Errorf("analyze(1500): local branch should be pruned:\n%s", text)
	}
}
