package opt

import (
	"fmt"
	"strings"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// planLeaf produces the candidate set for one FROM-clause relation:
//
//   - on a backend server: the best local access path;
//   - on a cache server: the remote access path for the shadow table, plus
//     a local path for every matching cached view (unconditional match), plus
//     a dynamic plan when the match holds only under a parameter guard.
func (pl *planner) planLeaf(ai *aliasInfo) (*candSet, error) {
	cs := &candSet{}
	if ai.derived != nil {
		return pl.planDerivedLeaf(ai)
	}
	t := ai.table
	neededSet := map[string]bool{}
	for _, c := range ai.needed {
		neededSet[c] = true
	}

	loc := pl.env.locationOf(t)
	if loc == Local {
		p, err := pl.localAccess(ai, t, t.Name, identityColMap(t), nil, ai.singleConj)
		if err != nil {
			return nil, err
		}
		cs.add(p)
		// Materialized-view matching applies on the backend too (regular MV
		// rewriting); on a cache server it is the cached-view machinery.
		if err := pl.addViewCandidates(cs, ai, neededSet, nil); err != nil {
			return nil, err
		}
		return cs, nil
	}

	// Remote (shadow) table.
	remote := pl.remoteAccess(ai, t)
	cs.add(remote)
	if err := pl.addViewCandidates(cs, ai, neededSet, remote); err != nil {
		return nil, err
	}
	return cs, nil
}

// addViewCandidates runs view matching over all materialized views — the
// DBA-declared ones in the catalog plus the synthetic views published by
// the intermediate-result cache — and adds local / dynamic candidates.
// remoteAlt is the remote path used as the guard-false branch of dynamic
// plans (nil on a backend server, where the alternative branch reads the
// base table locally).
func (pl *planner) addViewCandidates(cs *candSet, ai *aliasInfo, neededSet map[string]bool, remoteAlt *plan) error {
	for _, v := range pl.env.Cat.Tables() {
		if !v.IsView || !v.Materialized {
			continue
		}
		if pl.env.IsCache && !v.Cached {
			continue // shadowed backend MV definitions hold no local data
		}
		if v.Cached && !pl.env.viewFreshEnough(v.Name) {
			continue // too stale for the query's WITH FRESHNESS bound (§7)
		}
		if err := pl.matchViewCandidate(cs, ai, neededSet, remoteAlt, v); err != nil {
			return err
		}
	}
	if pl.env.Intermediates != nil {
		for _, v := range pl.env.Intermediates() {
			if !pl.env.intermediateFreshEnough(v.Name) {
				continue // stale beyond the query's tolerance
			}
			if err := pl.matchViewCandidate(cs, ai, neededSet, remoteAlt, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// matchViewCandidate matches one materialized view (catalog or
// intermediate) against ai's base table and adds the resulting local /
// dynamic candidates.
func (pl *planner) matchViewCandidate(cs *candSet, ai *aliasInfo, neededSet map[string]bool, remoteAlt *plan, v *catalog.Table) error {
	t := ai.table
	m := MatchView(v, t.Name, ai.singleConj, neededSet, pl.env.Opts.EnableDynamicPlans)
	if m == nil {
		return nil
	}
	local, err := pl.localAccess(ai, v, v.Name, m.ColMap, t, m.Residual)
	if err != nil {
		return err
	}
	local.usedViews = append(local.usedViews, v.Name)
	if m.Guard == nil {
		cs.add(local)
		return nil
	}
	// Guarded match → dynamic plan (paper §5.1).
	alt := remoteAlt
	if alt == nil {
		alt, err = pl.localAccess(ai, t, t.Name, identityColMap(t), nil, ai.singleConj)
		if err != nil {
			return err
		}
	}
	fl := EstimateGuardFrequency(m.GuardTerms, t.Stats)
	dynPlan := &plan{
		op:        local.op,
		loc:       Local,
		cols:      local.cols,
		card:      fl*local.card + (1-fl)*alt.card,
		cost:      fl*local.cost + (1-fl)*alt.cost,
		usedViews: local.usedViews,
		dyn:       &dynInfo{guardAST: m.Guard, fl: fl, alt: alt},
	}
	if !pl.env.Opts.PullUpChoosePlan {
		mat, err := pl.materialize(dynPlan)
		if err != nil {
			return err
		}
		dynPlan = mat
	}
	cs.add(dynPlan)

	// Mixed-result plan (§5.1.1): allowed for regular materialized views
	// only — never for cached views or intermediates, whose rows may be
	// stale.
	if pl.env.Opts.AllowMixedResults && !v.Cached && !pl.env.IsCache {
		if mixed := pl.mixedResultPlan(ai, local, m, fl); mixed != nil {
			cs.add(mixed)
		}
	}
	return nil
}

// mixedResultPlan builds UnionAll(viewPart, StartupFilter(NOT guard,
// remainderPart)) where the remainder fetches only rows outside the view
// (figure 3 in the paper).
func (pl *planner) mixedResultPlan(ai *aliasInfo, viewPart *plan, m *ViewMatch, fl float64) *plan {
	t := ai.table
	// The remainder reads the base table with the original predicates AND
	// NOT(view predicate). Single-conjunct view predicates negate into a
	// sargable comparison (cid <= 1000 → cid > 1000) so the remainder can
	// use an index; anything else falls back to a NOT filter.
	notViewPred := negatePred(m.View.ViewDef.Where)
	qualifyToAlias(notViewPred, ai.alias)
	conj := append(append([]sql.Expr{}, ai.singleConj...), notViewPred)
	remainder, err := pl.localAccess(ai, t, t.Name, identityColMap(t), nil, conj)
	if err != nil {
		return nil
	}
	guard, err := compileParamOnly(m.Guard)
	if err != nil {
		return nil
	}
	op := &exec.UnionAll{Inputs: []exec.Operator{
		viewPart.op,
		&exec.StartupFilter{Guard: &exec.NotExpr{X: guard}, Input: remainder.op},
	}}
	return &plan{
		op:        op,
		loc:       Local,
		cols:      viewPart.cols,
		card:      viewPart.card + (1-fl)*remainder.card,
		cost:      viewPart.cost + (1-fl)*remainder.cost,
		usedViews: append([]string{}, viewPart.usedViews...),
	}
}

// negatePred returns the logical negation of e, using a sargable comparison
// when e is a single comparison.
func negatePred(e sql.Expr) sql.Expr {
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op.IsComparison() {
		return &sql.BinaryExpr{Op: be.Op.Negate(), L: sql.CloneExpr(be.L), R: sql.CloneExpr(be.R)}
	}
	return &sql.UnaryExpr{Op: sql.OpNot, X: sql.CloneExpr(e)}
}

// qualifyToAlias rewrites unqualified column refs to the given alias.
func qualifyToAlias(e sql.Expr, alias string) {
	sql.WalkExpr(e, func(x sql.Expr) bool {
		if ref, ok := x.(*sql.ColumnRef); ok && ref.Table == "" {
			ref.Table = alias
		}
		return true
	})
}

func identityColMap(t *catalog.Table) map[string]int {
	m := make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		m[strings.ToLower(c.Name)] = i
	}
	return m
}

// localAccess plans a local read of storageTable (a base table, cached view
// or materialized view standing in for ai's base table). colMap maps base
// column names to the storage table's ordinals. baseTable is non-nil when
// reading through a view, for statistics.
func (pl *planner) localAccess(ai *aliasInfo, storageTable *catalog.Table, storageName string, colMap map[string]int, baseTable *catalog.Table, conj []sql.Expr) (*plan, error) {
	simple, _ := simplePreds(conj)
	// Scan schema follows the storage table's physical column order, exposed
	// under the query alias with *base* column names.
	reverse := make(map[int]string, len(colMap))
	for base, ord := range colMap {
		reverse[ord] = base
	}
	scanCols := make([]exec.ColInfo, len(storageTable.Columns))
	for i, c := range storageTable.Columns {
		name := reverse[i]
		if name == "" {
			name = strings.ToLower(c.Name)
		}
		scanCols[i] = exec.ColInfo{Table: ai.alias, Name: name, Kind: c.Type}
	}
	sc := &scope{cols: scanCols}

	stats := storageTable.Stats
	baseStats := stats
	if baseTable != nil {
		baseStats = baseTable.Stats
	}

	// Choose access path: best index vs full scan.
	bestOp, bestCost, bestCard := pl.scanPath(storageTable, storageName, scanCols, sc, baseStats, conj)
	if idxOp, idxCost, idxCard, ok := pl.indexPath(storageTable, storageName, scanCols, sc, baseStats, conj, simple); ok && idxCost < bestCost {
		bestOp, bestCost, bestCard = idxOp, idxCost, idxCard
	}

	// Project to the needed columns in canonical order.
	op, cols, err := projectNeeded(bestOp, ai, sc, colMap, storageTable)
	if err != nil {
		return nil, err
	}
	return &plan{op: op, loc: Local, cols: cols, card: bestCard, cost: bestCost + bestCard*costProjectRow}, nil
}

func projectNeeded(input exec.Operator, ai *aliasInfo, sc *scope, colMap map[string]int, storageTable *catalog.Table) (exec.Operator, []exec.ColInfo, error) {
	var exprs []exec.Expr
	var cols []exec.ColInfo
	for _, base := range ai.needed {
		ord, ok := colMap[base]
		if !ok {
			return nil, nil, fmt.Errorf("opt: column %s not available in %s", base, storageTable.Name)
		}
		exprs = append(exprs, &exec.ColExpr{I: ord})
		cols = append(cols, exec.ColInfo{Table: ai.alias, Name: base, Kind: storageTable.Columns[ord].Type})
	}
	return &exec.Project{Input: input, Exprs: exprs, Cols: cols}, cols, nil
}

// scanPath is a full scan plus residual filter.
func (pl *planner) scanPath(t *catalog.Table, storageName string, scanCols []exec.ColInfo, sc *scope, stats *catalog.TableStats, conj []sql.Expr) (exec.Operator, float64, float64) {
	rows := float64(t.Stats.RowCount)
	if rows < 1 {
		rows = 1
	}
	var op exec.Operator = &exec.Scan{TableName: storageName, Cols: scanCols}
	if t.Virtual {
		// Virtual system tables have no storage: scan the provider directly.
		op = &exec.VirtualScan{Name: storageName, Rows: t.RowsFn, Cols: scanCols}
	}
	cost := rows * costScanRow
	card := rows
	if pred := AndAll(conj); pred != nil {
		compiled, err := compileExpr(pred, sc)
		if err == nil {
			op = &exec.Filter{Input: op, Pred: compiled}
			cost += rows * costPredEval * float64(len(conj))
			card = rows * pl.selectivity(stats, conj)
		}
	}
	if card < 1 {
		card = 1
	}
	return op, cost, card
}

// indexPath finds the best index-driven access: the index whose key prefix
// is covered by sargable predicates with the lowest estimated rows.
func (pl *planner) indexPath(t *catalog.Table, storageName string, scanCols []exec.ColInfo, sc *scope, stats *catalog.TableStats, conj []sql.Expr, simple []simplePred) (exec.Operator, float64, float64, bool) {
	type boundSpec struct {
		lo, hi   []sql.Expr
		matchSel float64
	}
	var bestIdx *catalog.Index
	var bestBound boundSpec
	bestSel := 1.1

	indexes := append([]*catalog.Index{}, t.Indexes...)
	if len(t.PrimaryKey) > 0 {
		indexes = append(indexes, &catalog.Index{Name: "__pk", Table: t.Name, Columns: t.PrimaryKey, Unique: true})
	}
	for _, idx := range indexes {
		lo, hi, sel, usable := pl.indexBounds(idx, t, scanCols, simple, stats)
		if !usable {
			continue
		}
		if sel < bestSel {
			bestSel = sel
			bestIdx = idx
			bestBound = boundSpec{lo: lo, hi: hi, matchSel: sel}
		}
	}
	if bestIdx == nil {
		return nil, 0, 0, false
	}
	rows := float64(t.Stats.RowCount)
	if rows < 1 {
		rows = 1
	}
	matched := rows * bestBound.matchSel
	if matched < 1 {
		matched = 1
	}
	loE, err1 := compileBound(bestBound.lo)
	hiE, err2 := compileBound(bestBound.hi)
	if err1 != nil || err2 != nil {
		return nil, 0, 0, false
	}
	var op exec.Operator = &exec.IndexScan{
		TableName: storageName, IndexName: bestIdx.Name, Cols: scanCols, Lo: loE, Hi: hiE,
		EstRows: matched,
	}
	cost := costSeekBase + matched*costSeekRow
	card := matched
	if pred := AndAll(conj); pred != nil {
		compiled, err := compileExpr(pred, sc)
		if err != nil {
			return nil, 0, 0, false
		}
		op = &exec.Filter{Input: op, Pred: compiled}
		cost += matched * costPredEval * float64(len(conj))
		card = rows * pl.selectivity(stats, conj)
		if card > matched {
			card = matched
		}
	}
	if card < 1 {
		card = 1
	}
	return op, cost, card, true
}

// indexBounds computes seek bounds for an index from the sargable predicates:
// an equality per leading column, optionally one range on the next column.
func (pl *planner) indexBounds(idx *catalog.Index, t *catalog.Table, scanCols []exec.ColInfo, preds []simplePred, stats *catalog.TableStats) (lo, hi []sql.Expr, sel float64, usable bool) {
	sel = 1.0
	for _, ord := range idx.Columns {
		colName := strings.ToLower(scanCols[ord].Name)
		var eq *simplePred
		var rlo, rhi *simplePred
		for i := range preds {
			p := &preds[i]
			if colNameKey(p.col) != colName {
				continue
			}
			switch {
			case p.op == sql.OpEQ && p.eqSet == nil:
				eq = p
			case p.op == sql.OpGE || p.op == sql.OpGT:
				rlo = p
			case p.op == sql.OpLE || p.op == sql.OpLT:
				rhi = p
			}
		}
		if eq != nil {
			e := predValueExpr(eq)
			lo = append(lo, e)
			hi = append(hi, e)
			sel *= pl.eqSelectivity(stats, colName, eq)
			continue
		}
		if rlo != nil || rhi != nil {
			if rlo != nil {
				lo = append(lo, predValueExpr(rlo))
			}
			if rhi != nil {
				hi = append(hi, predValueExpr(rhi))
			}
			sel *= pl.rangeSelectivity(stats, colName, rlo, rhi)
		}
		break // only the first non-equality column can bound the seek
	}
	if len(lo) == 0 && len(hi) == 0 {
		return nil, nil, 1, false
	}
	return lo, hi, sel, true
}

func predValueExpr(p *simplePred) sql.Expr {
	if p.isParam() {
		return &sql.Param{Name: p.param}
	}
	return &sql.Literal{Val: p.lit}
}

func compileBound(bound []sql.Expr) ([]exec.Expr, error) {
	if bound == nil {
		return nil, nil
	}
	out := make([]exec.Expr, len(bound))
	for i, e := range bound {
		c, err := compileParamOnly(e)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func (pl *planner) eqSelectivity(stats *catalog.TableStats, col string, p *simplePred) float64 {
	cs := stats.Col(col)
	if p.isParam() {
		if cs != nil && cs.Distinct > 0 {
			return 1 / float64(cs.Distinct)
		}
		return 0.05
	}
	if cs != nil {
		return cs.SelectivityEq(p.lit)
	}
	return 0.05
}

func (pl *planner) rangeSelectivity(stats *catalog.TableStats, col string, rlo, rhi *simplePred) float64 {
	cs := stats.Col(col)
	if cs == nil {
		return 0.3
	}
	var lo, hi types.Value
	loOpen, hiOpen := false, false
	paramSide := false
	if rlo != nil {
		if rlo.isParam() {
			paramSide = true
		} else {
			lo, loOpen = rlo.lit, rlo.op == sql.OpGT
		}
	}
	if rhi != nil {
		if rhi.isParam() {
			paramSide = true
		} else {
			hi, hiOpen = rhi.lit, rhi.op == sql.OpLT
		}
	}
	sel := cs.SelectivityRange(lo, hi, loOpen, hiOpen)
	if paramSide {
		sel *= 0.4 // a parameterized bound narrows the range by an assumed factor
		if sel <= 0 {
			sel = 0.1
		}
	}
	return sel
}

// selectivity estimates the combined selectivity of a conjunct list against
// one table.
func (pl *planner) selectivity(stats *catalog.TableStats, conjuncts []sql.Expr) float64 {
	preds, residual := simplePreds(conjuncts)
	byCol := groupByCol(preds)
	sel := 1.0
	for col, ps := range byCol {
		r := rangeFromPreds(ps)
		cs := stats.Col(col)
		colSel := 1.0
		switch {
		case r.empty:
			return 0.0001
		case r.eq != nil:
			colSel = 0
			for _, v := range r.eq {
				if cs != nil {
					colSel += cs.SelectivityEq(v)
				} else {
					colSel += 0.05
				}
			}
		case !r.lo.IsNull() || !r.hi.IsNull():
			if cs != nil {
				colSel = cs.SelectivityRange(r.lo, r.hi, r.loOpen, r.hiOpen)
			} else {
				colSel = 0.3
			}
		}
		// Parameterized predicates on this column add further narrowing.
		for _, p := range ps {
			if !p.isParam() {
				continue
			}
			if p.op == sql.OpEQ {
				if cs != nil && cs.Distinct > 0 {
					colSel *= 1 / float64(cs.Distinct)
				} else {
					colSel *= 0.05
				}
			} else {
				colSel *= 0.4
			}
		}
		if colSel > 1 {
			colSel = 1
		}
		sel *= colSel
	}
	sel *= defaultResidualSel(residual)
	if sel < 1e-7 {
		sel = 1e-7
	}
	return sel
}

func defaultResidualSel(residual []sql.Expr) float64 {
	sel := 1.0
	for _, e := range residual {
		switch e.(type) {
		case *sql.LikeExpr:
			sel *= 0.12
		case *sql.IsNullExpr:
			sel *= 0.1
		default:
			sel *= 0.33
		}
	}
	return sel
}

// remoteAccess plans fetching this relation from the backend: the optimizer
// costs the backend's best access path using the shadowed statistics and
// indexes (the paper's "local optimization" alternative, §5), scaled by the
// remote-cost factor.
func (pl *planner) remoteAccess(ai *aliasInfo, t *catalog.Table) *plan {
	// Estimate the backend's execution cost with the shadow catalog.
	rows := float64(t.Stats.RowCount)
	if rows < 1 {
		rows = 1
	}
	scanCost := rows * costScanRow
	card := rows * pl.selectivity(t.Stats, ai.singleConj)
	if card < 1 {
		card = 1
	}
	cost := scanCost + rows*costPredEval*float64(len(ai.singleConj))
	// Backend indexes (shadowed) reduce the cost.
	scanCols := make([]exec.ColInfo, len(t.Columns))
	for i, c := range t.Columns {
		scanCols[i] = exec.ColInfo{Table: ai.alias, Name: strings.ToLower(c.Name), Kind: c.Type}
	}
	sc := &scope{cols: scanCols}
	if _, idxCost, idxCard, ok := pl.indexPath(t, t.Name, scanCols, sc, t.Stats, ai.singleConj, ai.simple); ok && idxCost < cost {
		cost = idxCost
		card = idxCard
	}
	cost *= pl.env.Opts.RemoteCostFactor

	cols := make([]exec.ColInfo, 0, len(ai.needed))
	for _, base := range ai.needed {
		ord := t.ColumnIndex(base)
		kind := types.KindString
		if ord >= 0 {
			kind = t.Columns[ord].Type
		}
		cols = append(cols, exec.ColInfo{Table: ai.alias, Name: base, Kind: kind})
	}
	rem := &remoteParts{
		from:  []sql.TableRef{&sql.TableName{Name: t.Name, Alias: ai.alias}},
		where: append([]sql.Expr{}, ai.singleConj...),
		cols:  cols,
	}
	return &plan{rem: rem, loc: Remote, cols: cols, card: card, cost: cost}
}

// planDerivedLeaf adapts a derived table's candidate set to leaf shape.
func (pl *planner) planDerivedLeaf(ai *aliasInfo) (*candSet, error) {
	if ai.derivedSet == nil {
		if _, err := pl.derivedCols(ai); err != nil {
			return nil, err
		}
	}
	out := &candSet{}
	relabel := func(p *plan) *plan {
		cols := make([]exec.ColInfo, len(p.cols))
		for i, c := range p.cols {
			cols[i] = exec.ColInfo{Table: ai.alias, Name: strings.ToLower(c.Name), Kind: c.Kind}
		}
		q := *p
		q.cols = cols
		return &q
	}
	if ai.derivedSet.local != nil {
		out.add(relabel(ai.derivedSet.local))
	}
	if ai.derivedSet.remote != nil {
		rp := relabel(ai.derivedSet.remote)
		// Wrap the derived AST so it can participate in remote merges.
		sub := rp.rem.toAST()
		rp.rem = &remoteParts{
			from: []sql.TableRef{&sql.SubqueryRef{Select: sub, Alias: ai.alias}},
			cols: rp.cols,
		}
		out.add(rp)
	}
	// Apply the outer query's single-table predicates on the derived output.
	if len(ai.singleConj) > 0 {
		if out.local != nil {
			sc := &scope{cols: out.local.cols}
			pred, err := compileExpr(AndAll(ai.singleConj), sc)
			if err != nil {
				return nil, err
			}
			p := *out.local
			p.op = &exec.Filter{Input: p.op, Pred: pred}
			p.cost += p.card * costPredEval
			p.card = p.card * 0.33
			if p.card < 1 {
				p.card = 1
			}
			out.local = &p
		}
		if out.remote != nil {
			p := *out.remote
			parts := *p.rem
			parts.where = append(append([]sql.Expr{}, parts.where...), ai.singleConj...)
			p.rem = &parts
			p.card = p.card * 0.33
			if p.card < 1 {
				p.card = 1
			}
			out.remote = &p
		}
	}
	return out, nil
}
