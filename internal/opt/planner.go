package opt

import (
	"fmt"
	"strings"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Plan is the optimizer's output: an executable operator tree plus metadata
// used by EXPLAIN, the engine's plan cache and the benchmarks.
type Plan struct {
	Root exec.Operator
	Cols []exec.ColInfo

	Cost float64
	Card float64

	UsedViews     []string // cached/materialized views the plan reads
	RemoteSQL     []string // deparsed remote subexpressions (DataTransfer inputs)
	Params        []string // parameter names in dense slot order (see exec.AssignParamSlots)
	NeedsParams   bool     // remote parts forward the named-parameter map verbatim
	Dynamic       bool     // contains a ChoosePlan
	FullyLocal    bool     // no DataTransfer anywhere
	FullyRemote   bool     // a single DataTransfer around the whole query
	GuardFraction float64  // Fl for the top dynamic plan, 0 if none
}

// plan is one candidate during optimization.
type plan struct {
	op  exec.Operator // non-nil iff loc == Local
	rem *remoteParts  // non-nil iff loc == Remote
	loc Location

	cols []exec.ColInfo
	card float64
	cost float64

	usedViews []string
	dyn       *dynInfo
}

// dynInfo marks a dynamic plan: the owning plan is the guard-true branch.
type dynInfo struct {
	guardAST sql.Expr
	fl       float64
	alt      *plan
}

// remoteParts is a shippable SPJ block under construction.
type remoteParts struct {
	from  []sql.TableRef
	where []sql.Expr
	cols  []exec.ColInfo
	full  *sql.SelectStmt // overrides from/where/cols when the whole query is pushed
}

func (r *remoteParts) toAST() *sql.SelectStmt {
	if r.full != nil {
		return r.full
	}
	s := &sql.SelectStmt{Where: AndAll(r.where)}
	s.From = append(s.From, r.from...)
	for _, c := range r.cols {
		s.Columns = append(s.Columns, sql.SelectItem{Expr: &sql.ColumnRef{Table: c.Table, Name: c.Name}})
	}
	return s
}

// candSet keeps the cheapest candidate per DataLocation — the property-based
// pruning that makes DataLocation a first-class physical property.
type candSet struct {
	local  *plan
	remote *plan
}

func (c *candSet) add(p *plan) {
	if p == nil {
		return
	}
	slot := &c.local
	if p.loc == Remote {
		slot = &c.remote
	}
	if *slot == nil || p.cost < (*slot).cost {
		*slot = p
	}
}

func (c *candSet) any() *plan {
	if c.local != nil {
		return c.local
	}
	return c.remote
}

// aliasInfo is one FROM-clause relation after normalization.
type aliasInfo struct {
	alias      string
	table      *catalog.Table // nil for derived tables
	derived    *sql.SelectStmt
	derivedSet *candSet

	needed      []string // lower-cased base column names, canonical order
	singleConj  []sql.Expr
	simple      []simplePred
	stats       *catalog.TableStats
	avgColBytes float64
}

// planner carries per-query state.
type planner struct {
	env  *Env
	stmt *sql.SelectStmt // qualified clone

	aliasStats   map[string]*catalog.TableStats
	allAliasCols []exec.ColInfo
	nAliases     int
}

// Optimize plans a SELECT statement.
func Optimize(stmt *sql.SelectStmt, env *Env) (*Plan, error) {
	p := &planner{env: env}
	final, err := p.planBlock(stmt, true)
	if err != nil {
		return nil, err
	}
	return p.finish(final)
}

// finish converts the winning candidate into a Plan.
func (pl *planner) finish(p *plan) (*Plan, error) {
	mat, err := pl.materialize(p)
	if err != nil {
		return nil, err
	}
	out := &Plan{
		Root:       mat.op,
		Cols:       mat.cols,
		Cost:       mat.cost,
		Card:       mat.card,
		UsedViews:  mat.usedViews,
		Dynamic:    p.dyn != nil,
		FullyLocal: true,
	}
	if p.dyn != nil {
		out.GuardFraction = p.dyn.fl
	}
	collectRemote(mat.op, &out.RemoteSQL)
	out.FullyLocal = len(out.RemoteSQL) == 0
	// Burn dense parameter slots into the compiled expressions once per plan,
	// so per-row parameter lookups on the hot path are slice loads. Remote
	// parts still need the named map forwarded to the backend.
	out.Params = exec.AssignParamSlots(mat.op)
	out.NeedsParams = len(out.RemoteSQL) > 0
	if r, ok := mat.op.(*exec.Remote); ok {
		_ = r
		out.FullyRemote = true
	}
	pl.countPlan(out)
	return out, nil
}

// countPlan publishes per-view hit/miss and plan-shape counters for plans
// produced on a cache (backend-side planning is not cache routing).
func (pl *planner) countPlan(p *Plan) {
	if !pl.env.IsCache {
		return
	}
	if len(p.UsedViews) == 0 {
		metrics.Default.Counter("opt.view_miss").Add(1)
	}
	for _, v := range p.UsedViews {
		metrics.Default.Counter("opt.view_hit." + v).Add(1)
	}
	switch {
	case p.Dynamic:
		metrics.Default.Counter("opt.plan_dynamic").Add(1)
	case p.FullyLocal:
		metrics.Default.Counter("opt.plan_local").Add(1)
	case p.FullyRemote:
		metrics.Default.Counter("opt.plan_remote").Add(1)
	default:
		metrics.Default.Counter("opt.plan_mixed").Add(1)
	}
}

func collectRemote(op exec.Operator, out *[]string) {
	switch x := op.(type) {
	case *exec.Remote:
		*out = append(*out, x.SQLText)
	case *exec.Filter:
		collectRemote(x.Input, out)
	case *exec.StartupFilter:
		collectRemote(x.Input, out)
	case *exec.Project:
		collectRemote(x.Input, out)
	case *exec.Limit:
		collectRemote(x.Input, out)
	case *exec.Sort:
		collectRemote(x.Input, out)
	case *exec.Distinct:
		collectRemote(x.Input, out)
	case *exec.HashAgg:
		collectRemote(x.Input, out)
	case *exec.PartialAgg:
		collectRemote(x.Input, out)
	case *exec.FinalAgg:
		collectRemote(x.Input, out)
	case *exec.TopN:
		collectRemote(x.Input, out)
	case *exec.Exchange:
		collectRemote(x.Template, out)
	case *exec.HashJoin:
		collectRemote(x.Left, out)
		collectRemote(x.Right, out)
	case *exec.NestedLoop:
		collectRemote(x.Left, out)
		collectRemote(x.Right, out)
	case *exec.UnionAll:
		for _, in := range x.Inputs {
			collectRemote(in, out)
		}
	}
}

// materialize turns any candidate into a Local, dyn-free plan: remote
// candidates get a DataTransfer; dynamic plans become
// UnionAll(StartupFilter(guard, main), StartupFilter(NOT guard, alt)) —
// exactly figure 2(b) of the paper.
func (pl *planner) materialize(p *plan) (*plan, error) {
	if p.dyn != nil {
		main := *p
		main.dyn = nil
		m, err := pl.materialize(&main)
		if err != nil {
			return nil, err
		}
		alt, err := pl.materialize(p.dyn.alt)
		if err != nil {
			return nil, err
		}
		guard, err := compileParamOnly(p.dyn.guardAST)
		if err != nil {
			return nil, err
		}
		op := &exec.UnionAll{Inputs: []exec.Operator{
			&exec.StartupFilter{Guard: guard, Input: m.op, Branch: branchOf(m.op)},
			&exec.StartupFilter{Guard: &exec.NotExpr{X: guard}, Input: alt.op, Branch: branchOf(alt.op)},
		}}
		fl := p.dyn.fl
		return &plan{
			op: op, loc: Local, cols: m.cols,
			card:      fl*m.card + (1-fl)*alt.card,
			cost:      fl*m.cost + (1-fl)*alt.cost,
			usedViews: append(append([]string{}, m.usedViews...), alt.usedViews...),
		}, nil
	}
	return pl.toLocal(p), nil
}

// branchOf labels a ChoosePlan branch by where its rows come from: "remote"
// when the subtree contains a DataTransfer, "local" otherwise.
func branchOf(op exec.Operator) string {
	var remote []string
	collectRemote(op, &remote)
	if len(remote) > 0 {
		return "remote"
	}
	return "local"
}

// toLocal applies the DataTransfer enforcer when needed.
func (pl *planner) toLocal(p *plan) *plan {
	if p.loc == Local {
		return p
	}
	ast := p.rem.toAST()
	bytes := p.card * rowBytesOf(p.cols)
	out := &plan{
		op:        &exec.Remote{SQLText: sql.Deparse(ast), Cols: p.cols},
		loc:       Local,
		cols:      p.cols,
		card:      p.card,
		cost:      p.cost + pl.env.Opts.TransferStartupCost + bytes*pl.env.Opts.TransferCostPerByte,
		usedViews: p.usedViews,
	}
	return out
}

func rowBytesOf(cols []exec.ColInfo) float64 {
	b := 0.0
	for _, c := range cols {
		switch c.Kind {
		case types.KindString:
			b += 24
		default:
			b += 9
		}
	}
	return b
}

// ------------------------------------------------------------------ block

// planBlock plans one SELECT block. When root is true the block's winner is
// returned without forcing location (finish handles the enforcer) — for
// derived tables the caller picks from the candidate set instead.
func (pl *planner) planBlock(orig *sql.SelectStmt, root bool) (*plan, error) {
	cs, err := pl.planBlockSet(orig)
	if err != nil {
		return nil, err
	}
	// Degree of parallelism is a physical property decided before the
	// DataLocation comparison: a parallelized local pipeline is cheaper, so
	// it can win plans that would otherwise ship to the backend. Dynamic
	// (ChoosePlan) candidates stay serial — their branches are chosen at
	// run time, after DOP would have to be fixed.
	if root && cs.local != nil && cs.local.dyn == nil {
		cs.local = pl.parallelize(cs.local)
	}
	// Pick the winner: compare the local candidate against the remote
	// candidate plus its transfer cost.
	var best *plan
	if cs.local != nil {
		best = cs.local
	}
	if cs.remote != nil {
		loc := pl.toLocal(cs.remote)
		if best == nil || loc.cost < best.cost {
			// Keep the remote form; materialize applies the transfer so the
			// FullyRemote flag stays observable.
			best = cs.remote
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no plan produced")
	}
	// DBCache-style ablation: prefer any view-using local plan.
	if pl.env.Opts.AlwaysUseCache && cs.local != nil && len(cs.local.usedViews) > 0 {
		best = cs.local
	}
	return best, nil
}

// planBlockSet produces the block's candidate set.
func (pl *planner) planBlockSet(orig *sql.SelectStmt) (*candSet, error) {
	stmt, aliases, leftJoins, err := pl.normalize(orig)
	if err != nil {
		return nil, err
	}
	pl.stmt = stmt

	// SELECT without FROM.
	if len(aliases) == 0 {
		return pl.planConstBlock(stmt)
	}

	preds := Conjuncts(stmt.Where)
	if err := pl.assignSinglePreds(aliases, preds); err != nil {
		return nil, err
	}
	multiPreds := multiAliasPreds(aliases, preds)

	// Leaf candidates.
	leaves := make([]*candSet, len(aliases))
	for i, ai := range aliases {
		leaves[i], err = pl.planLeaf(ai)
		if err != nil {
			return nil, err
		}
	}

	// Inner-join ordering (greedy, equi-pred connected first).
	inner := make([]int, 0, len(aliases))
	post := make([]int, 0)
	for i, ai := range aliases {
		if containsAlias(leftJoins, ai.alias) {
			post = append(post, i)
		} else {
			inner = append(inner, i)
		}
	}
	state, err := pl.orderJoins(aliases, leaves, inner, multiPreds)
	if err != nil {
		return nil, err
	}

	// Left joins, in query order.
	for _, lj := range leftJoins {
		idx := aliasIndex(aliases, lj.alias)
		state, err = pl.applyLeftJoin(state, leaves[idx], lj.on, aliases)
		if err != nil {
			return nil, err
		}
	}
	_ = post

	// Whole-query remote candidate: if every leaf can run remotely, the
	// entire (qualified) statement can ship as one SQL text. This is how
	// "completely remote plans" arise (paper §5).
	var spjRemote *plan
	if len(leftJoins) == 0 {
		spjRemote = state.remote
	}
	fullRemote := pl.wholeQueryRemote(aliases, leaves, stmt, spjRemote)

	// Stages above the join: aggregation, distinct, order by, top, project.
	out := &candSet{}
	if state.local != nil {
		p, err := pl.mapDyn(state.local, func(q *plan) (*plan, error) { return pl.applyStagesLocal(q, stmt) })
		if err != nil {
			return nil, err
		}
		out.add(p)
	}
	if state.remote != nil {
		// SPJ-only remote candidate: usable as-is only if the query has no
		// post-join stages and a plain column select list; otherwise
		// localize and apply the stages here.
		if !hasStages(stmt) && allPlainRefs(stmt) {
			if rp := pl.reprojectRemote(state.remote, stmt); rp != nil {
				out.add(rp)
			}
		} else {
			p, err := pl.applyStagesLocal(pl.toLocal(state.remote), stmt)
			if err != nil {
				return nil, err
			}
			out.add(p)
		}
	}
	out.add(fullRemote)
	if out.local == nil && out.remote == nil {
		return nil, fmt.Errorf("opt: no candidates for block")
	}
	return out, nil
}

// allPlainRefs reports whether every select item is a bare column reference.
func allPlainRefs(s *sql.SelectStmt) bool {
	for _, item := range s.Columns {
		if _, ok := item.Expr.(*sql.ColumnRef); !ok {
			return false
		}
	}
	return true
}

// reprojectRemote rewrites a merged SPJ remote candidate so its projection
// matches the statement's select list (order and naming).
func (pl *planner) reprojectRemote(p *plan, stmt *sql.SelectStmt) *plan {
	parts := *p.rem
	if parts.full != nil {
		return p
	}
	sc := &scope{cols: pl.allAliasCols}
	var astCols, outCols []exec.ColInfo
	for i, item := range stmt.Columns {
		ref := item.Expr.(*sql.ColumnRef)
		kind := exprKind(ref, sc)
		astCols = append(astCols, exec.ColInfo{Table: ref.Table, Name: ref.Name, Kind: kind})
		outCols = append(outCols, exec.ColInfo{Name: exprName(item, i), Kind: kind})
	}
	parts.cols = astCols
	out := *p
	out.rem = &parts
	out.cols = outCols
	return &out
}

func hasStages(s *sql.SelectStmt) bool {
	if len(s.GroupBy) > 0 || s.Having != nil || s.Distinct || len(s.OrderBy) > 0 || s.Top != nil {
		return true
	}
	for _, item := range s.Columns {
		if containsAgg(item.Expr) {
			return true
		}
	}
	// A final projection is always applied locally; SPJ remote candidates
	// already project the needed columns, so a plain select list does not
	// count as a stage only when it is simple column references.
	return false
}

// planConstBlock handles SELECT <exprs> with no FROM clause.
func (pl *planner) planConstBlock(stmt *sql.SelectStmt) (*candSet, error) {
	sc := &scope{}
	var exprs []exec.Expr
	var cols []exec.ColInfo
	for i, item := range stmt.Columns {
		e, err := compileExpr(item.Expr, sc)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		cols = append(cols, exec.ColInfo{Name: exprName(item, i), Kind: exprKind(item.Expr, sc)})
	}
	rows := [][]exec.Expr{exprs}
	p := &plan{op: &exec.Values{Cols: cols, Rows: rows}, loc: Local, cols: cols, card: 1, cost: 1}
	cs := &candSet{}
	cs.add(p)
	return cs, nil
}

// leftJoinStep is a deferred LEFT JOIN.
type leftJoinStep struct {
	alias string
	on    sql.Expr
}

func containsAlias(steps []leftJoinStep, alias string) bool {
	for _, s := range steps {
		if s.alias == alias {
			return true
		}
	}
	return false
}

func aliasIndex(aliases []*aliasInfo, alias string) int {
	for i, a := range aliases {
		if a.alias == alias {
			return i
		}
	}
	return -1
}

// ------------------------------------------------------------------ normalize

// normalize resolves the FROM clause, expands stars, qualifies every column
// reference with its alias and returns the rewritten statement.
func (pl *planner) normalize(orig *sql.SelectStmt) (*sql.SelectStmt, []*aliasInfo, []leftJoinStep, error) {
	stmt := cloneSelect(orig)
	var aliases []*aliasInfo
	var leftJoins []leftJoinStep
	var onConjs []sql.Expr

	var addRef func(ref sql.TableRef, underLeft bool) error
	addRef = func(ref sql.TableRef, underLeft bool) error {
		switch x := ref.(type) {
		case *sql.TableName:
			alias := x.Alias
			if alias == "" {
				alias = x.Name
			}
			// Resolve dotted names (sys.query_stats) against the catalog's
			// full-name key first, then fall back to the bare name so the
			// database qualifier of shadowed backend tables stays ignorable.
			t := pl.env.Cat.Table(x.FullName())
			if t == nil {
				t = pl.env.Cat.Table(x.Name)
			}
			if t == nil {
				return fmt.Errorf("opt: table or view %s does not exist", x.FullName())
			}
			// Plain (virtual) views expand to derived tables.
			if t.IsView && !t.Materialized {
				aliases = append(aliases, &aliasInfo{alias: strings.ToLower(alias), derived: cloneSelect(t.ViewDef)})
				return nil
			}
			aliases = append(aliases, &aliasInfo{alias: strings.ToLower(alias), table: t, stats: t.Stats})
			return nil
		case *sql.SubqueryRef:
			aliases = append(aliases, &aliasInfo{alias: strings.ToLower(x.Alias), derived: cloneSelect(x.Select)})
			return nil
		case *sql.JoinRef:
			if err := addRef(x.Left, underLeft); err != nil {
				return err
			}
			switch x.Type {
			case sql.JoinLeft:
				tn, ok := x.Right.(*sql.TableName)
				if !ok {
					return fmt.Errorf("opt: LEFT JOIN right side must be a table")
				}
				if err := addRef(x.Right, true); err != nil {
					return err
				}
				alias := tn.Alias
				if alias == "" {
					alias = tn.Name
				}
				leftJoins = append(leftJoins, leftJoinStep{alias: strings.ToLower(alias), on: x.On})
			default:
				if err := addRef(x.Right, underLeft); err != nil {
					return err
				}
				if x.On != nil {
					onConjs = append(onConjs, Conjuncts(x.On)...)
				}
			}
			return nil
		}
		return fmt.Errorf("opt: unsupported FROM item %T", ref)
	}
	for _, ref := range stmt.From {
		if err := addRef(ref, false); err != nil {
			return nil, nil, nil, err
		}
	}

	// Fill alias column info (needed for star expansion and qualification).
	colOwners := map[string][]string{} // column name -> aliases that have it
	aliasCols := map[string][]exec.ColInfo{}
	for _, ai := range aliases {
		var cols []exec.ColInfo
		if ai.table != nil {
			for _, c := range ai.table.Columns {
				cols = append(cols, exec.ColInfo{Table: ai.alias, Name: c.Name, Kind: c.Type})
			}
		} else {
			dcols, err := pl.derivedCols(ai)
			if err != nil {
				return nil, nil, nil, err
			}
			cols = dcols
		}
		aliasCols[ai.alias] = cols
		for _, c := range cols {
			k := strings.ToLower(c.Name)
			colOwners[k] = append(colOwners[k], ai.alias)
		}
	}

	// Star expansion.
	var items []sql.SelectItem
	for _, item := range stmt.Columns {
		if !item.Star {
			items = append(items, item)
			continue
		}
		for _, ai := range aliases {
			if item.StarTable != "" && !strings.EqualFold(item.StarTable, ai.alias) {
				continue
			}
			for _, c := range aliasCols[ai.alias] {
				items = append(items, sql.SelectItem{Expr: &sql.ColumnRef{Table: ai.alias, Name: c.Name}})
			}
		}
	}
	stmt.Columns = items

	// Qualify every column reference.
	qualify := func(e sql.Expr) error {
		var qerr error
		sql.WalkExpr(e, func(x sql.Expr) bool {
			ref, ok := x.(*sql.ColumnRef)
			if !ok {
				return true
			}
			if ref.Table != "" {
				ref.Table = strings.ToLower(ref.Table)
				return true
			}
			owners := colOwners[strings.ToLower(ref.Name)]
			switch len(owners) {
			case 1:
				ref.Table = owners[0]
			case 0:
				// Leave unqualified: may be a select-item alias (ORDER BY).
			default:
				qerr = fmt.Errorf("opt: ambiguous column %s", ref.Name)
			}
			return qerr == nil
		})
		return qerr
	}
	all := []sql.Expr{stmt.Having, stmt.Top}
	for _, item := range stmt.Columns {
		all = append(all, item.Expr)
	}
	if stmt.Where != nil {
		if err := qualify(stmt.Where); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, g := range stmt.GroupBy {
		all = append(all, g)
	}
	for _, o := range stmt.OrderBy {
		all = append(all, o.Expr)
	}
	for _, c := range onConjs {
		all = append(all, c)
	}
	for i := range leftJoins {
		all = append(all, leftJoins[i].on)
	}
	for _, e := range all {
		if e == nil {
			continue
		}
		if err := qualify(e); err != nil {
			return nil, nil, nil, err
		}
	}
	// Fold inner-join ON conjuncts into WHERE.
	if len(onConjs) > 0 {
		stmt.Where = AndAll(append(Conjuncts(stmt.Where), onConjs...))
	}
	// Rewrite FROM into the flat alias list (left joins reattached later by
	// the physical planner; the statement keeps them for whole-query
	// pushdown fidelity — so keep original FROM).
	_ = aliasCols

	// Compute needed columns per alias: everything referenced downstream of
	// the leaf access (select items, grouping, ordering, having, join
	// predicates). Columns referenced ONLY in single-alias WHERE conjuncts
	// are excluded — those predicates evaluate inside the leaf before the
	// projection, which is what lets a view that does not project a
	// predicate column still match when its definition implies the
	// predicate (e.g. view WHERE type='Tire' serving a type='Tire' query).
	needed := map[string]map[string]bool{}
	for _, ai := range aliases {
		needed[ai.alias] = map[string]bool{}
	}
	record := func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) bool {
			if ref, ok := x.(*sql.ColumnRef); ok && ref.Table != "" {
				if m, ok := needed[ref.Table]; ok {
					m[strings.ToLower(ref.Name)] = true
				}
			}
			return true
		})
	}
	for _, e := range all {
		if e != nil {
			record(e)
		}
	}
	// stmt.Where now includes folded ON conjuncts; single-alias conjuncts
	// evaluate inside the leaf and do not force projection.
	for _, conj := range Conjuncts(stmt.Where) {
		if singleAliasOf(conj) == "" {
			record(conj)
		}
	}
	for _, ai := range aliases {
		cols := aliasCols[ai.alias]
		for _, c := range cols {
			if needed[ai.alias][strings.ToLower(c.Name)] {
				ai.needed = append(ai.needed, strings.ToLower(c.Name))
			}
		}
		if len(ai.needed) == 0 && len(cols) > 0 {
			// e.g. COUNT(*) over a single table: keep one column around.
			ai.needed = append(ai.needed, strings.ToLower(cols[0].Name))
		}
	}

	// Publish per-block lookup state used by costing and final schemas.
	pl.aliasStats = map[string]*catalog.TableStats{}
	pl.allAliasCols = nil
	for _, ai := range aliases {
		pl.aliasStats[ai.alias] = ai.stats
		pl.allAliasCols = append(pl.allAliasCols, aliasCols[ai.alias]...)
	}
	pl.nAliases = len(aliases)
	return stmt, aliases, leftJoins, nil
}

func (pl *planner) derivedCols(ai *aliasInfo) ([]exec.ColInfo, error) {
	// Plan the derived block lazily just for its schema: reuse the block
	// planner once and cache the candidate set on the aliasInfo.
	cs, err := pl.subPlanner().planBlockSet(ai.derived)
	if err != nil {
		return nil, err
	}
	ai.derivedSet = cs
	p := cs.any()
	cols := make([]exec.ColInfo, len(p.cols))
	for i, c := range p.cols {
		cols[i] = exec.ColInfo{Table: ai.alias, Name: c.Name, Kind: c.Kind}
	}
	return cols, nil
}

func (pl *planner) subPlanner() *planner { return &planner{env: pl.env} }

func cloneSelect(s *sql.SelectStmt) *sql.SelectStmt {
	if s == nil {
		return nil
	}
	out := &sql.SelectStmt{
		Distinct:  s.Distinct,
		Top:       sql.CloneExpr(s.Top),
		Where:     sql.CloneExpr(s.Where),
		Having:    sql.CloneExpr(s.Having),
		Freshness: sql.CloneExpr(s.Freshness),
	}
	for _, c := range s.Columns {
		out.Columns = append(out.Columns, sql.SelectItem{
			Star: c.Star, StarTable: c.StarTable, Alias: c.Alias, Expr: sql.CloneExpr(c.Expr),
		})
	}
	for _, f := range s.From {
		out.From = append(out.From, cloneTableRef(f))
	}
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, sql.CloneExpr(g))
	}
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, sql.OrderItem{Expr: sql.CloneExpr(o.Expr), Desc: o.Desc})
	}
	return out
}

func cloneTableRef(r sql.TableRef) sql.TableRef {
	switch x := r.(type) {
	case *sql.TableName:
		c := *x
		return &c
	case *sql.JoinRef:
		return &sql.JoinRef{Type: x.Type, Left: cloneTableRef(x.Left), Right: cloneTableRef(x.Right), On: sql.CloneExpr(x.On)}
	case *sql.SubqueryRef:
		return &sql.SubqueryRef{Select: cloneSelect(x.Select), Alias: x.Alias}
	}
	return r
}

// assignSinglePreds splits the WHERE conjuncts into per-alias predicates.
func (pl *planner) assignSinglePreds(aliases []*aliasInfo, preds []sql.Expr) error {
	byAlias := map[string]*aliasInfo{}
	for _, ai := range aliases {
		byAlias[ai.alias] = ai
	}
	for _, c := range preds {
		owner := singleAliasOf(c)
		if owner == "" {
			continue
		}
		if ai, ok := byAlias[owner]; ok {
			ai.singleConj = append(ai.singleConj, c)
		}
	}
	for _, ai := range aliases {
		sp, _ := simplePreds(ai.singleConj)
		ai.simple = sp
	}
	return nil
}

// singleAliasOf returns the alias if all column references in e belong to
// one alias, else "".
func singleAliasOf(e sql.Expr) string {
	owner := ""
	multi := false
	sql.WalkExpr(e, func(x sql.Expr) bool {
		if ref, ok := x.(*sql.ColumnRef); ok && ref.Table != "" {
			if owner == "" {
				owner = ref.Table
			} else if owner != ref.Table {
				multi = true
			}
		}
		return !multi
	})
	if multi || owner == "" {
		return ""
	}
	return owner
}

// multiAliasPreds returns the conjuncts spanning more than one alias.
func multiAliasPreds(aliases []*aliasInfo, preds []sql.Expr) []sql.Expr {
	var out []sql.Expr
	for _, c := range preds {
		if singleAliasOf(c) == "" && len(columnRefs(c)) > 0 {
			out = append(out, c)
		}
	}
	return out
}
