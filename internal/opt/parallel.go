package opt

import (
	"fmt"
	"math"
	"runtime"

	"mtcache/internal/exec"
	"mtcache/internal/types"
)

// Degree-of-parallelism selection. Parallelism is modeled the same way the
// paper models data location: as a physical property with an enforcer. The
// Exchange operator is the enforcer; this pass decides, cost-based, where to
// place it and with what DOP. A pipeline of cost C run at DOP d costs
// roughly C/d + d·ParallelStartupCost + outRows·costExchangeRow, so small
// lookups never parallelize while large scans, probes and aggregations do.

// pipeInfo describes a partitionable pipeline: a Scan or IndexScan leaf
// under Filter/Project/HashJoin-probe wrappers.
type pipeInfo struct {
	rows    float64 // rows entering the pipeline at the partitioned leaf
	perRow  float64 // cost units of pipeline work per leaf row
	outRows float64 // estimated rows crossing the Exchange
	scan    *exec.Scan
	iscan   *exec.IndexScan
	joins   []*exec.HashJoin // probe-side joins to mark ShareBuild
}

// dopCap is the effective parallelism ceiling: Options.MaxDOP bounded by the
// scheduler's processor count. Below 2 the planner emits no Exchange at all,
// keeping serial plans identical to the pre-parallelism planner.
func (pl *planner) dopCap() int {
	cap := runtime.GOMAXPROCS(0)
	if m := pl.env.Opts.MaxDOP; m > 0 && m < cap {
		cap = m
	}
	return cap
}

// parallelize returns p unchanged, or a copy whose operator tree has the
// most profitable Exchange inserted and whose cost reflects the savings.
func (pl *planner) parallelize(p *plan) *plan {
	cap := pl.dopCap()
	if cap < 2 || p.op == nil {
		return p
	}
	// Work on a private clone: subtrees may be shared with other candidates
	// kept during planning, and markParallel mutates leaves in place.
	root := exec.CloneOperator(p.op)
	newRoot, saved, changed := pl.parallelizeOp(root, cap)
	if !changed {
		return p
	}
	q := *p
	q.op = newRoot
	q.cost = math.Max(p.cost-saved, 1)
	return &q
}

// parallelizeOp rewrites op bottom-up, returning the (possibly replaced)
// operator, the cost saved, and whether anything changed. It parallelizes at
// most one pipeline per branch — the outermost profitable one.
func (pl *planner) parallelizeOp(op exec.Operator, cap int) (exec.Operator, float64, bool) {
	if agg, ok := op.(*exec.HashAgg); ok {
		if out, saved, ok2 := pl.parallelAgg(agg, cap); ok2 {
			return out, saved, true
		}
		newIn, saved, changed := pl.parallelizeOp(agg.Input, cap)
		agg.Input = newIn
		return agg, saved, changed
	}
	if info, ok := pl.matchPipeline(op); ok {
		if ex, saved, ok2 := pl.wrapExchange(op, info, cap); ok2 {
			return ex, saved, true
		}
		return op, 0, false
	}
	var saved float64
	var changed bool
	descend := func(child exec.Operator) exec.Operator {
		out, s, c := pl.parallelizeOp(child, cap)
		saved += s
		changed = changed || c
		return out
	}
	switch x := op.(type) {
	case *exec.Filter:
		x.Input = descend(x.Input)
	case *exec.Project:
		x.Input = descend(x.Input)
	case *exec.Limit:
		x.Input = descend(x.Input)
	case *exec.Sort:
		x.Input = descend(x.Input)
	case *exec.TopN:
		x.Input = descend(x.Input)
	case *exec.Distinct:
		x.Input = descend(x.Input)
	case *exec.StartupFilter:
		x.Input = descend(x.Input)
	case *exec.HashJoin:
		x.Left = descend(x.Left)
		x.Right = descend(x.Right)
	case *exec.NestedLoop:
		x.Left = descend(x.Left)
		x.Right = descend(x.Right)
	case *exec.UnionAll:
		for i := range x.Inputs {
			x.Inputs[i] = descend(x.Inputs[i])
		}
	}
	return op, saved, changed
}

// matchPipeline recognizes a partitionable pipeline rooted at op: a heap or
// index scan, possibly under Filter/Project wrappers and hash-join probes.
// Anything else (Remote, Values, aggregates, sorts) breaks the pipeline.
func (pl *planner) matchPipeline(op exec.Operator) (pipeInfo, bool) {
	switch x := op.(type) {
	case *exec.Scan:
		rows := pl.statsRows(x.TableName)
		return pipeInfo{rows: rows, perRow: costScanRow, outRows: rows, scan: x}, rows > 0
	case *exec.IndexScan:
		rows := x.EstRows
		return pipeInfo{rows: rows, perRow: costSeekRow, outRows: rows, iscan: x}, rows > 1
	case *exec.Filter:
		info, ok := pl.matchPipeline(x.Input)
		if !ok {
			return info, false
		}
		info.perRow += costPredEval
		info.outRows = math.Max(info.outRows*defaultSelectivity, 1)
		return info, true
	case *exec.Project:
		info, ok := pl.matchPipeline(x.Input)
		if !ok {
			return info, false
		}
		info.perRow += costProjectRow * float64(len(x.Exprs))
		return info, true
	case *exec.HashJoin:
		if x.LeftOuter {
			// LEFT JOIN probes partition fine (each probe row is matched or
			// padded independently), but keep them serial until the padding
			// path has dedicated parallel tests.
			return pipeInfo{}, false
		}
		info, ok := pl.matchPipeline(x.Left)
		if !ok {
			return info, false
		}
		info.perRow += costHashProbe
		info.joins = append(info.joins, x)
		return info, true
	}
	return pipeInfo{}, false
}

// statsRows is the cataloged row count of a storage table, 0 when unknown.
func (pl *planner) statsRows(name string) float64 {
	t := pl.env.Cat.Table(name)
	if t == nil || t.Stats == nil {
		return 0
	}
	return float64(t.Stats.RowCount)
}

// chooseDOP picks the cheapest power-of-two DOP ≤ cap for a pipeline of the
// given cost, or 1 when serial wins.
func (pl *planner) chooseDOP(pipeCost, exchangeRows float64, cap int) (int, float64) {
	startup := pl.env.Opts.ParallelStartupCost
	best, bestCost := 1, pipeCost
	for d := 2; d <= cap; d *= 2 {
		c := pipeCost/float64(d) + float64(d)*startup + exchangeRows*costExchangeRow
		if c < bestCost {
			best, bestCost = d, c
		}
	}
	return best, pipeCost - bestCost
}

// wrapExchange wraps a matched pipeline in an Exchange when profitable.
func (pl *planner) wrapExchange(op exec.Operator, info pipeInfo, cap int) (exec.Operator, float64, bool) {
	pipeCost := info.rows * info.perRow
	dop, saved := pl.chooseDOP(pipeCost, info.outRows, cap)
	if dop < 2 {
		return nil, 0, false
	}
	markParallel(info)
	return &exec.Exchange{Template: op, DOP: dop}, saved, true
}

// parallelAgg splits a HashAgg into per-worker PartialAggs under an Exchange
// and a merging FinalAgg above it. DISTINCT aggregates are not mergeable and
// disqualify the split.
func (pl *planner) parallelAgg(agg *exec.HashAgg, cap int) (exec.Operator, float64, bool) {
	for _, s := range agg.Aggs {
		if s.Distinct {
			return nil, 0, false
		}
	}
	info, ok := pl.matchPipeline(agg.Input)
	if !ok {
		return nil, 0, false
	}
	// Workers do the aggregation work too; only tiny per-group partial rows
	// cross the Exchange.
	pipeCost := info.rows*info.perRow + info.outRows*costAggRow
	dop, saved := pl.chooseDOP(pipeCost, parallelAggExchangeRows, cap)
	if dop < 2 {
		return nil, 0, false
	}
	nKeys := len(agg.GroupBy)
	cols := append([]exec.ColInfo{}, agg.Cols[:nKeys]...)
	for i, spec := range agg.Aggs {
		cols = append(cols, partialCols(i, spec, agg.Cols[nKeys+i])...)
	}
	markParallel(info)
	partial := &exec.PartialAgg{Input: agg.Input, GroupBy: agg.GroupBy, Aggs: agg.Aggs, Cols: cols}
	ex := &exec.Exchange{Template: partial, DOP: dop}
	final := &exec.FinalAgg{Input: ex, GroupKeys: nKeys, Aggs: agg.Aggs, Cols: agg.Cols}
	return final, saved, true
}

// parallelAggExchangeRows stands in for dop×groups, the (small) number of
// partial rows gathered; group-count estimates are not tracked on the op.
const parallelAggExchangeRows = 256

// defaultSelectivity mirrors the generic predicate selectivity used for
// residual filters when no histogram applies.
const defaultSelectivity = 0.33

// partialCols names the partial-state columns one aggregate ships; AVG
// ships (sum, count).
func partialCols(i int, spec exec.AggSpec, final exec.ColInfo) []exec.ColInfo {
	if spec.Func == exec.AggAvg {
		return []exec.ColInfo{
			{Name: fmt.Sprintf("$p%d_sum", i), Kind: types.KindFloat},
			{Name: fmt.Sprintf("$p%d_cnt", i), Kind: types.KindInt},
		}
	}
	out := final
	out.Name = fmt.Sprintf("$p%d", i)
	return []exec.ColInfo{out}
}

// markParallel marks the pipeline's leaf for partition binding and its probe
// joins for shared builds.
func markParallel(info pipeInfo) {
	if info.scan != nil {
		info.scan.Parallel = true
	}
	if info.iscan != nil {
		info.iscan.Parallel = true
	}
	for _, j := range info.joins {
		j.ShareBuild = true
	}
}
