package opt

import (
	"fmt"
	"strings"

	"mtcache/internal/exec"
)

// ExplainOperator renders an operator tree as an indented outline, similar
// to a textual showplan. Remote operators print the SQL they ship — those
// lines are the DataTransfer boundaries.
func ExplainOperator(op exec.Operator) string {
	var b strings.Builder
	explainRec(&b, op, 0)
	return b.String()
}

// Explain renders a Plan with its headline properties.
func Explain(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%.1f card=%.0f", p.Cost, p.Card)
	if p.Dynamic {
		fmt.Fprintf(&b, " dynamic(Fl=%.3f)", p.GuardFraction)
	}
	switch {
	case p.FullyLocal:
		b.WriteString(" location=Local")
	case p.FullyRemote:
		b.WriteString(" location=Remote")
	default:
		b.WriteString(" location=Mixed")
	}
	if len(p.UsedViews) > 0 {
		fmt.Fprintf(&b, " views=%s", strings.Join(p.UsedViews, ","))
	}
	b.WriteString("\n")
	explainRec(&b, p.Root, 0)
	return b.String()
}

func explainRec(b *strings.Builder, op exec.Operator, depth int) {
	pad := strings.Repeat("  ", depth)
	switch x := op.(type) {
	case *exec.Scan:
		fmt.Fprintf(b, "%sScan %s\n", pad, x.TableName)
	case *exec.IndexScan:
		fmt.Fprintf(b, "%sIndexSeek %s.%s\n", pad, x.TableName, x.IndexName)
	case *exec.Filter:
		fmt.Fprintf(b, "%sFilter\n", pad)
		explainRec(b, x.Input, depth+1)
	case *exec.StartupFilter:
		fmt.Fprintf(b, "%sStartupFilter (ChoosePlan branch)\n", pad)
		explainRec(b, x.Input, depth+1)
	case *exec.Project:
		fmt.Fprintf(b, "%sProject %s\n", pad, colNames(x.Cols))
		explainRec(b, x.Input, depth+1)
	case *exec.Limit:
		fmt.Fprintf(b, "%sTop\n", pad)
		explainRec(b, x.Input, depth+1)
	case *exec.Sort:
		fmt.Fprintf(b, "%sSort\n", pad)
		explainRec(b, x.Input, depth+1)
	case *exec.Distinct:
		fmt.Fprintf(b, "%sDistinct\n", pad)
		explainRec(b, x.Input, depth+1)
	case *exec.HashAgg:
		fmt.Fprintf(b, "%sHashAggregate groups=%d aggs=%d\n", pad, len(x.GroupBy), len(x.Aggs))
		explainRec(b, x.Input, depth+1)
	case *exec.HashJoin:
		kind := "HashJoin"
		if x.LeftOuter {
			kind = "HashLeftJoin"
		}
		fmt.Fprintf(b, "%s%s\n", pad, kind)
		explainRec(b, x.Left, depth+1)
		explainRec(b, x.Right, depth+1)
	case *exec.NestedLoop:
		kind := "NestedLoop"
		if x.LeftOuter {
			kind = "NestedLoopLeft"
		}
		fmt.Fprintf(b, "%s%s\n", pad, kind)
		explainRec(b, x.Left, depth+1)
		explainRec(b, x.Right, depth+1)
	case *exec.UnionAll:
		fmt.Fprintf(b, "%sUnionAll\n", pad)
		for _, in := range x.Inputs {
			explainRec(b, in, depth+1)
		}
	case *exec.Remote:
		fmt.Fprintf(b, "%sDataTransfer [%s]\n", pad, x.SQLText)
	case *exec.Values:
		fmt.Fprintf(b, "%sValues rows=%d\n", pad, len(x.Rows))
	default:
		fmt.Fprintf(b, "%s%T\n", pad, op)
	}
}

func colNames(cols []exec.ColInfo) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}
