package opt

import (
	"fmt"
	"strings"
	"time"

	"mtcache/internal/exec"
)

// ExplainOperator renders an operator tree as an indented outline, similar
// to a textual showplan. Remote operators print the SQL they ship — those
// lines are the DataTransfer boundaries.
func ExplainOperator(op exec.Operator) string {
	var b strings.Builder
	explainRec(&b, op, 0)
	return b.String()
}

// Explain renders a Plan with its headline properties.
func Explain(p *Plan) string {
	var b strings.Builder
	b.WriteString(planHeader(p))
	b.WriteString("\n")
	explainRec(&b, p.Root, 0)
	return b.String()
}

// ExplainAnalyze renders a Plan annotated with the runtime statistics
// gathered by an instrumented execution of root (an exec.Instrument-wrapped
// clone of p.Root). Each operator line carries actual rows and wall time;
// subtrees a StartupFilter pruned render "(never executed)", and ChoosePlan
// branches state whether they executed or were pruned.
func ExplainAnalyze(p *Plan, root exec.Operator, total time.Duration) string {
	var b strings.Builder
	b.WriteString(planHeader(p))
	fmt.Fprintf(&b, " actual_time=%s\n", fmtOpDur(total))
	analyzeRec(&b, root, 0)
	return b.String()
}

func planHeader(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%.1f card=%.0f", p.Cost, p.Card)
	if p.Dynamic {
		fmt.Fprintf(&b, " dynamic(Fl=%.3f)", p.GuardFraction)
	}
	switch {
	case p.FullyLocal:
		b.WriteString(" location=Local")
	case p.FullyRemote:
		b.WriteString(" location=Remote")
	default:
		b.WriteString(" location=Mixed")
	}
	if len(p.UsedViews) > 0 {
		fmt.Fprintf(&b, " views=%s", strings.Join(p.UsedViews, ","))
	}
	return b.String()
}

// opLine renders one operator's own line (no children, no indent).
func opLine(op exec.Operator) string {
	switch x := op.(type) {
	case *exec.Scan:
		return fmt.Sprintf("Scan %s", x.TableName)
	case *exec.IndexScan:
		return fmt.Sprintf("IndexSeek %s.%s", x.TableName, x.IndexName)
	case *exec.Filter:
		return "Filter"
	case *exec.StartupFilter:
		if x.Branch != "" {
			return fmt.Sprintf("StartupFilter (ChoosePlan branch=%s)", x.Branch)
		}
		return "StartupFilter (ChoosePlan branch)"
	case *exec.Project:
		return fmt.Sprintf("Project %s", colNames(x.Cols))
	case *exec.Limit:
		return "Top"
	case *exec.Sort:
		return "Sort"
	case *exec.TopN:
		return "TopNSort"
	case *exec.Distinct:
		return "Distinct"
	case *exec.HashAgg:
		return fmt.Sprintf("HashAggregate groups=%d aggs=%d", len(x.GroupBy), len(x.Aggs))
	case *exec.PartialAgg:
		return fmt.Sprintf("PartialAggregate groups=%d aggs=%d", len(x.GroupBy), len(x.Aggs))
	case *exec.FinalAgg:
		return fmt.Sprintf("FinalAggregate groups=%d aggs=%d", x.GroupKeys, len(x.Aggs))
	case *exec.Exchange:
		return fmt.Sprintf("Gather (Exchange dop=%d)", x.DOP)
	case *exec.HashJoin:
		if x.ShareBuild {
			return "HashJoin (shared build)"
		}
		if x.LeftOuter {
			return "HashLeftJoin"
		}
		return "HashJoin"
	case *exec.NestedLoop:
		if x.LeftOuter {
			return "NestedLoopLeft"
		}
		return "NestedLoop"
	case *exec.UnionAll:
		return "UnionAll"
	case *exec.Remote:
		return fmt.Sprintf("DataTransfer [%s]", x.SQLText)
	case *exec.Values:
		return fmt.Sprintf("Values rows=%d", len(x.Rows))
	case *exec.VirtualScan:
		return fmt.Sprintf("VirtualScan %s", x.Name)
	default:
		return fmt.Sprintf("%T", op)
	}
}

// opChildren returns an operator's inputs in display order.
func opChildren(op exec.Operator) []exec.Operator {
	switch x := op.(type) {
	case *exec.Filter:
		return []exec.Operator{x.Input}
	case *exec.StartupFilter:
		return []exec.Operator{x.Input}
	case *exec.Project:
		return []exec.Operator{x.Input}
	case *exec.Limit:
		return []exec.Operator{x.Input}
	case *exec.Sort:
		return []exec.Operator{x.Input}
	case *exec.TopN:
		return []exec.Operator{x.Input}
	case *exec.Distinct:
		return []exec.Operator{x.Input}
	case *exec.HashAgg:
		return []exec.Operator{x.Input}
	case *exec.PartialAgg:
		return []exec.Operator{x.Input}
	case *exec.FinalAgg:
		return []exec.Operator{x.Input}
	case *exec.Exchange:
		return []exec.Operator{x.Template}
	case *exec.HashJoin:
		return []exec.Operator{x.Left, x.Right}
	case *exec.NestedLoop:
		return []exec.Operator{x.Left, x.Right}
	case *exec.UnionAll:
		return x.Inputs
	}
	return nil
}

func explainRec(b *strings.Builder, op exec.Operator, depth int) {
	if inst, ok := op.(*exec.Instrumented); ok {
		explainRec(b, inst.Op, depth)
		return
	}
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), opLine(op))
	for _, c := range opChildren(op) {
		explainRec(b, c, depth+1)
	}
}

func analyzeRec(b *strings.Builder, op exec.Operator, depth int) {
	inner := op
	inst, ok := op.(*exec.Instrumented)
	if ok {
		inner = inst.Op
	}
	line := opLine(inner)
	if ok {
		if !inst.Stats.Opened {
			line += " (never executed)"
		} else {
			line += fmt.Sprintf(" (actual rows=%d time=%s)", inst.Stats.Rows, fmtOpDur(inst.Stats.Time))
			if sf, isSF := inner.(*exec.StartupFilter); isSF {
				if sf.Active() {
					line += " [executed]"
				} else {
					line += " [pruned]"
				}
			}
			if ex, isEx := inner.(*exec.Exchange); isEx {
				if wr := ex.WorkerRows(); len(wr) > 0 {
					parts := make([]string, len(wr))
					for i, n := range wr {
						parts[i] = fmt.Sprint(n)
					}
					line += fmt.Sprintf(" worker_rows=[%s]", strings.Join(parts, " "))
				}
			}
		}
	}
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), line)
	for _, c := range opChildren(inner) {
		analyzeRec(b, c, depth+1)
	}
}

func fmtOpDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

func colNames(cols []exec.ColInfo) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}
