package opt

import (
	"fmt"
	"math"
	"strings"

	"mtcache/internal/exec"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// applyStagesLocal builds the post-join pipeline over a local plan:
// aggregation, HAVING, projection, DISTINCT, ORDER BY, TOP. The alternative
// branch of a dynamic plan goes through applyStagesAlt instead, which may
// push the whole statement to the backend.
func (pl *planner) applyStagesLocal(p *plan, stmt *sql.SelectStmt) (*plan, error) {
	if p.loc == Remote {
		return pl.applyStagesAlt(p, stmt)
	}
	cur := *p

	needAgg := len(stmt.GroupBy) > 0 || anyAggItems(stmt) || containsAgg(stmt.Having)
	items := stmt.Columns
	having := stmt.Having

	// ORDER BY may name a select-item alias; substitute the aliased
	// expression so the key resolves wherever the sort lands.
	orderBy := make([]sql.OrderItem, len(stmt.OrderBy))
	copy(orderBy, stmt.OrderBy)
	for i, o := range orderBy {
		ref, ok := o.Expr.(*sql.ColumnRef)
		if !ok || ref.Table != "" {
			continue
		}
		for _, item := range stmt.Columns {
			if item.Alias != "" && strings.EqualFold(item.Alias, ref.Name) {
				orderBy[i].Expr = sql.CloneExpr(item.Expr)
				break
			}
		}
	}

	if needAgg {
		newPlan, repl, err := pl.buildAgg(&cur, stmt)
		if err != nil {
			return nil, err
		}
		cur = *newPlan
		// Rewrite agg calls / group exprs to agg-output references.
		items = make([]sql.SelectItem, len(stmt.Columns))
		for i, it := range stmt.Columns {
			items[i] = sql.SelectItem{Alias: it.Alias, Expr: replaceExprs(it.Expr, repl)}
		}
		if having != nil {
			having = replaceExprs(having, repl)
		}
		for i, o := range orderBy {
			orderBy[i] = sql.OrderItem{Expr: replaceExprs(o.Expr, repl), Desc: o.Desc}
		}
	}

	if having != nil {
		sc := &scope{cols: cur.cols}
		pred, err := compileExpr(having, sc)
		if err != nil {
			return nil, err
		}
		cur.op = &exec.Filter{Input: cur.op, Pred: pred}
		cur.cost += cur.card * costPredEval
		cur.card = math.Max(cur.card*0.4, 1)
	}

	// Projection to the select list.
	preScope := &scope{cols: cur.cols}
	var exprs []exec.Expr
	var outCols []exec.ColInfo
	for i, item := range items {
		e, err := compileExpr(item.Expr, preScope)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		outCols = append(outCols, exec.ColInfo{
			Name: exprName(stmt.Columns[i], i),
			Kind: exprKind(item.Expr, preScope),
		})
	}

	// Decide whether ORDER BY can run after projection (resolving against
	// output aliases) or must run before it.
	sortAfter := true
	postScope := &scope{cols: outCols}
	type sortPair struct {
		e    sql.Expr
		desc bool
	}
	var sorts []sortPair
	for _, o := range orderBy {
		sorts = append(sorts, sortPair{o.Expr, o.Desc})
	}
	for _, s := range sorts {
		if _, err := compileExpr(s.e, postScope); err != nil {
			sortAfter = false
			break
		}
	}

	addSort := func(op exec.Operator, sc *scope) (exec.Operator, error) {
		if len(sorts) == 0 {
			return op, nil
		}
		var keys []exec.SortKey
		for _, s := range sorts {
			e, err := compileExpr(s.e, sc)
			if err != nil {
				return nil, err
			}
			keys = append(keys, exec.SortKey{E: e, Desc: s.desc})
		}
		cur.cost += cur.card * math.Log2(cur.card+2) * costSortFactor
		return &exec.Sort{Input: op, Keys: keys}, nil
	}

	if !sortAfter {
		op, err := addSort(cur.op, preScope)
		if err != nil {
			return nil, err
		}
		cur.op = op
	}
	cur.op = &exec.Project{Input: cur.op, Exprs: exprs, Cols: outCols}
	cur.cols = outCols
	cur.cost += cur.card * costProjectRow * float64(len(exprs))

	if stmt.Distinct {
		cur.op = &exec.Distinct{Input: cur.op}
		cur.cost += cur.card * costAggRow
		cur.card = math.Max(cur.card*0.5, 1)
	}
	// TOP n over an adjacent ORDER BY fuses into a bounded top-N heap
	// instead of a full materializing sort under a Limit.
	fuseTop := stmt.Top != nil && sortAfter && len(sorts) > 0
	if sortAfter && len(sorts) > 0 && !fuseTop {
		op, err := addSort(cur.op, postScope)
		if err != nil {
			return nil, err
		}
		cur.op = op
	}
	if stmt.Top != nil {
		n, err := compileParamOnly(stmt.Top)
		if err != nil {
			return nil, err
		}
		if fuseTop {
			var keys []exec.SortKey
			for _, s := range sorts {
				e, err := compileExpr(s.e, postScope)
				if err != nil {
					return nil, err
				}
				keys = append(keys, exec.SortKey{E: e, Desc: s.desc})
			}
			// A heap of min(card, n) entries replaces the full sort.
			heapSize := cur.card
			if lit, ok := stmt.Top.(*sql.Literal); ok {
				heapSize = math.Min(heapSize, float64(lit.Val.Int()))
			}
			cur.cost += cur.card * math.Log2(heapSize+2) * costSortFactor
			cur.op = &exec.TopN{Input: cur.op, Keys: keys, N: n}
		} else {
			cur.op = &exec.Limit{Input: cur.op, N: n}
		}
		if lit, ok := stmt.Top.(*sql.Literal); ok {
			cur.card = math.Min(cur.card, float64(lit.Val.Int()))
		}
	}
	return &cur, nil
}

// buildAgg constructs the HashAgg stage and the rewrite map from aggregate
// calls / group expressions to agg-output column references.
func (pl *planner) buildAgg(p *plan, stmt *sql.SelectStmt) (*plan, map[string]sql.Expr, error) {
	sc := &scope{cols: p.cols}
	repl := map[string]sql.Expr{}

	var groupExprs []exec.Expr
	var aggCols []exec.ColInfo
	for i, g := range stmt.GroupBy {
		e, err := compileExpr(g, sc)
		if err != nil {
			return nil, nil, err
		}
		groupExprs = append(groupExprs, e)
		name := fmt.Sprintf("$g%d", i)
		aggCols = append(aggCols, exec.ColInfo{Name: name, Kind: exprKind(g, sc)})
		repl[sql.DeparseExpr(g)] = &sql.ColumnRef{Name: name}
	}

	// Collect distinct aggregate calls from select items, HAVING, ORDER BY.
	var calls []*sql.FuncCall
	seen := map[string]bool{}
	collect := func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) bool {
			if f, ok := x.(*sql.FuncCall); ok {
				if _, isAgg := exec.ParseAggFunc(f.Name, f.Star); isAgg {
					key := sql.DeparseExpr(f)
					if !seen[key] {
						seen[key] = true
						calls = append(calls, f)
					}
					return false
				}
			}
			return true
		})
	}
	for _, it := range stmt.Columns {
		collect(it.Expr)
	}
	collect(stmt.Having)
	for _, o := range stmt.OrderBy {
		collect(o.Expr)
	}

	var specs []exec.AggSpec
	for i, f := range calls {
		fn, _ := exec.ParseAggFunc(f.Name, f.Star)
		spec := exec.AggSpec{Func: fn, Distinct: f.Distinct}
		kind := types.KindInt
		if !f.Star {
			if len(f.Args) != 1 {
				return nil, nil, fmt.Errorf("opt: aggregate %s needs one argument", f.Name)
			}
			arg, err := compileExpr(f.Args[0], sc)
			if err != nil {
				return nil, nil, err
			}
			spec.Arg = arg
			kind = exprKind(f, sc)
		}
		specs = append(specs, spec)
		name := fmt.Sprintf("$a%d", i)
		aggCols = append(aggCols, exec.ColInfo{Name: name, Kind: kind})
		repl[sql.DeparseExpr(f)] = &sql.ColumnRef{Name: name}
	}

	agg := &exec.HashAgg{Input: p.op, GroupBy: groupExprs, Aggs: specs, Cols: aggCols}
	groups := pl.estimateGroups(stmt.GroupBy, p.card)
	out := *p
	out.op = agg
	out.cols = aggCols
	out.cost = p.cost + p.card*costAggRow + groups*costAggGroup
	out.card = groups
	return &out, repl, nil
}

func (pl *planner) estimateGroups(groupBy []sql.Expr, card float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	d := 1.0
	for _, g := range groupBy {
		if ref, ok := g.(*sql.ColumnRef); ok {
			d *= pl.distinctOf(*ref, card)
		} else {
			d *= math.Sqrt(card)
		}
	}
	return math.Max(1, math.Min(d, card))
}

// applyStagesAlt handles the guard-false (remote) branch of a pulled-up
// dynamic plan, and SPJ remote candidates that still need stages. Two
// options are costed: push the whole statement to the backend (valid when
// the branch covers every relation) or localize and finish locally.
func (pl *planner) applyStagesAlt(p *plan, stmt *sql.SelectStmt) (*plan, error) {
	local, err := pl.applyStagesLocal(pl.toLocal(p), stmt)
	if err != nil {
		return nil, err
	}
	if p.rem == nil || !pl.coversAllAliases(p) {
		return local, nil
	}
	// A stage-free SPJ block ships as-is (cheapest remote form).
	if !hasStages(stmt) && allPlainRefs(stmt) {
		if rp := pl.reprojectRemote(p, stmt); rp != nil {
			localized := pl.toLocal(rp)
			if localized.cost < local.cost {
				return localized, nil
			}
			return local, nil
		}
	}
	cols := pl.finalCols(stmt)
	cost := p.cost
	card := p.card
	if len(stmt.GroupBy) > 0 || anyAggItems(stmt) || containsAgg(stmt.Having) {
		groups := pl.estimateGroups(stmt.GroupBy, card)
		cost += (card*costAggRow + groups*costAggGroup) * pl.env.Opts.RemoteCostFactor
		card = groups
	}
	if len(stmt.OrderBy) > 0 && card > 1 {
		cost += card * math.Log2(card+1) * costSortFactor * pl.env.Opts.RemoteCostFactor
	}
	if stmt.Top != nil {
		if lit, ok := stmt.Top.(*sql.Literal); ok {
			card = math.Min(card, float64(lit.Val.Int()))
		}
	}
	remote := &plan{
		rem:  &remoteParts{full: stmt, cols: cols},
		loc:  Remote,
		cols: cols,
		card: math.Max(card, 1),
		cost: cost,
	}
	localized := pl.toLocal(remote)
	if localized.cost < local.cost {
		return localized, nil
	}
	return local, nil
}

// coversAllAliases reports whether a remote fragment spans every relation of
// the current block.
func (pl *planner) coversAllAliases(p *plan) bool {
	if p.rem.full != nil {
		return true
	}
	return len(p.rem.from) == pl.nAliases
}
