package opt

import (
	"strings"
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// testBackend is a miniature server: catalog + store + optimizer, used both
// as the backend under test and as the loopback RemoteClient for cache-side
// plans. This exercises the real remote path: remote fragments are deparsed
// to SQL text, re-parsed and re-optimized here — exactly the paper's flow.
type testBackend struct {
	cat   *catalog.Catalog
	store *storage.Store
	env   *Env
}

func (b *testBackend) Query(sqlText string, params exec.Params) (*exec.ResultSet, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	p, err := Optimize(stmt.(*sql.SelectStmt), b.env)
	if err != nil {
		return nil, err
	}
	tx := b.store.Begin(false)
	defer tx.Abort()
	return exec.Run(p.Root, &exec.Ctx{Params: params, Txn: tx})
}

func (b *testBackend) Exec(string, exec.Params) (int64, error) { return 0, nil }

const nCustomers = 20000
const nOrders = 5000

// newBackend builds customer(cid PK, cname, caddress, segment) with
// nCustomers rows and orders(okey PK, ckey, total) with nOrders rows.
func newBackend(t *testing.T) *testBackend {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()

	cust := &catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "cid", Type: types.KindInt, NotNull: true},
			{Name: "cname", Type: types.KindString},
			{Name: "caddress", Type: types.KindString},
			{Name: "segment", Type: types.KindInt},
		},
		PrimaryKey: []int{0},
	}
	ord := &catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "okey", Type: types.KindInt, NotNull: true},
			{Name: "ckey", Type: types.KindInt},
			{Name: "total", Type: types.KindFloat},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "ix_orders_ckey", Columns: []int{1}}},
	}
	for _, tb := range []*catalog.Table{cust, ord} {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
		if err := store.CreateTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	tx := store.Begin(true)
	var custRows, ordRows []types.Row
	for i := int64(1); i <= nCustomers; i++ {
		row := types.Row{
			types.NewInt(i),
			types.NewString("name"), types.NewString("addr"),
			types.NewInt(i % 7),
		}
		if _, err := tx.Insert("customer", row); err != nil {
			t.Fatal(err)
		}
		custRows = append(custRows, row)
	}
	for i := int64(1); i <= nOrders; i++ {
		row := types.Row{types.NewInt(i), types.NewInt(i % nCustomers), types.NewFloat(float64(i) * 1.5)}
		if _, err := tx.Insert("orders", row); err != nil {
			t.Fatal(err)
		}
		ordRows = append(ordRows, row)
	}
	tx.CommitUnlogged()
	cust.Stats = catalog.BuildTableStats(cust.ColumnNames(), custRows)
	ord.Stats = catalog.BuildTableStats(ord.ColumnNames(), ordRows)

	return &testBackend{cat: cat, store: store, env: &Env{Cat: cat, Opts: DefaultOptions()}}
}

// newCache builds a cache server shadowing the backend, with cached view
// Cust1000 = SELECT cid, cname, caddress FROM customer WHERE cid <= 1000.
func newCache(t *testing.T, b *testBackend) (*Env, *storage.Store) {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	// Shadow tables: schema + stats, no data.
	for _, bt := range b.cat.Tables() {
		shadow := &catalog.Table{
			Name:       bt.Name,
			Columns:    append([]catalog.Column{}, bt.Columns...),
			PrimaryKey: append([]int{}, bt.PrimaryKey...),
			Indexes:    append([]*catalog.Index{}, bt.Indexes...),
			Stats:      bt.Stats.Clone(),
		}
		if err := cat.AddTable(shadow); err != nil {
			t.Fatal(err)
		}
		if err := store.CreateTable(shadow); err != nil {
			t.Fatal(err)
		}
	}
	// Cached view.
	def := sql.MustParseSelect("SELECT cid, cname, caddress FROM customer WHERE cid <= 1000")
	view := &catalog.Table{
		Name: "Cust1000",
		Columns: []catalog.Column{
			{Name: "cid", Type: types.KindInt},
			{Name: "cname", Type: types.KindString},
			{Name: "caddress", Type: types.KindString},
		},
		PrimaryKey:   []int{0},
		IsView:       true,
		Materialized: true,
		Cached:       true,
		ViewDef:      def,
	}
	if err := cat.AddTable(view); err != nil {
		t.Fatal(err)
	}
	if err := store.CreateTable(view); err != nil {
		t.Fatal(err)
	}
	tx := store.Begin(true)
	var rows []types.Row
	btx := b.store.Begin(false)
	btx.Table("customer").Scan(func(_ storage.RowID, r types.Row) bool {
		if r[0].Int() <= 1000 {
			row := types.Row{r[0], r[1], r[2]}
			tx.Insert("Cust1000", row)
			rows = append(rows, row)
		}
		return true
	})
	btx.Abort()
	tx.CommitUnlogged()
	view.Stats = catalog.BuildTableStats(view.ColumnNames(), rows)

	return &Env{Cat: cat, IsCache: true, Opts: DefaultOptions()}, store
}

func optimize(t *testing.T, env *Env, query string) *Plan {
	t.Helper()
	p, err := Optimize(sql.MustParseSelect(query), env)
	if err != nil {
		t.Fatalf("optimize %q: %v", query, err)
	}
	return p
}

func execute(t *testing.T, p *Plan, store *storage.Store, remote exec.RemoteClient, params exec.Params) (*exec.ResultSet, *exec.Counters) {
	t.Helper()
	tx := store.Begin(false)
	defer tx.Abort()
	ctr := &exec.Counters{}
	rs, err := exec.Run(p.Root, &exec.Ctx{Params: params, Txn: tx, Remote: remote, Counters: ctr})
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, ExplainOperator(p.Root))
	}
	return rs, ctr
}

// ---------------------------------------------------------------- backend

func TestBackendPointQueryUsesIndex(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, "SELECT cname FROM customer WHERE cid = 42")
	rs, ctr := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 1 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if ctr.RowsScanned > 2 {
		t.Errorf("point query scanned %d rows; index seek expected:\n%s", ctr.RowsScanned, ExplainOperator(p.Root))
	}
	if !p.FullyLocal {
		t.Error("backend plans must be local")
	}
}

func TestBackendRangeQueryUsesIndex(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, "SELECT cid FROM customer WHERE cid BETWEEN 100 AND 199")
	rs, ctr := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 100 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if ctr.RowsScanned > 120 {
		t.Errorf("range query scanned %d rows", ctr.RowsScanned)
	}
}

func TestBackendSecondaryIndex(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, "SELECT okey, total FROM orders WHERE ckey = 7")
	_, ctr := execute(t, p, b.store, nil, nil)
	if ctr.RowsScanned > 10 {
		t.Errorf("secondary index not used: scanned %d", ctr.RowsScanned)
	}
}

func TestBackendJoin(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, `SELECT c.cname, o.total FROM customer c, orders o
		WHERE c.cid = o.ckey AND o.okey <= 10`)
	rs, _ := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 10 {
		t.Fatalf("join rows: %d", len(rs.Rows))
	}
	if len(rs.Cols) != 2 || rs.Cols[0].Name != "cname" {
		t.Errorf("join schema: %v", rs.Cols)
	}
}

func TestBackendGroupByOrderByTop(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, `SELECT TOP 3 segment, COUNT(*) AS cnt, SUM(cid) AS s
		FROM customer GROUP BY segment ORDER BY cnt DESC, segment`)
	rs, _ := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 3 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if rs.Rows[0][1].Int() < rs.Rows[1][1].Int() {
		t.Error("not sorted by count desc")
	}
	if rs.Cols[1].Name != "cnt" {
		t.Errorf("alias lost: %v", rs.Cols)
	}
}

func TestBackendHavingAndAggExpr(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, `SELECT segment, AVG(total) FROM orders o, customer c
		WHERE o.ckey = c.cid GROUP BY segment HAVING COUNT(*) > 0 ORDER BY segment`)
	rs, _ := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 7 {
		t.Fatalf("groups: %d", len(rs.Rows))
	}
}

func TestBackendDerivedTable(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, `SELECT o.okey FROM orders o, (SELECT MAX(okey) AS m FROM orders) AS x
		WHERE o.okey > x.m - 5`)
	rs, _ := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 5 {
		t.Fatalf("derived-table query rows: %d", len(rs.Rows))
	}
}

// ---------------------------------------------------------------- cache

func TestCacheUnconditionalViewMatch(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	p := optimize(t, env, "SELECT cid, cname FROM customer WHERE cid <= 500")
	if !p.FullyLocal {
		t.Fatalf("query inside cached view should be local:\n%s", Explain(p))
	}
	if len(p.UsedViews) == 0 || p.UsedViews[0] != "Cust1000" {
		t.Errorf("view not used: %v", p.UsedViews)
	}
	rs, ctr := execute(t, p, store, b, nil)
	if len(rs.Rows) != 500 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if ctr.RemoteQueries != 0 {
		t.Error("local plan touched the backend")
	}
}

func TestCacheQueryOutsideViewGoesRemote(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	p := optimize(t, env, "SELECT cid, cname FROM customer WHERE cid BETWEEN 5000 AND 5004")
	if p.FullyLocal {
		t.Fatalf("query outside view must be remote:\n%s", Explain(p))
	}
	rs, ctr := execute(t, p, store, b, nil)
	if len(rs.Rows) != 5 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if ctr.RemoteQueries != 1 {
		t.Errorf("remote queries: %d", ctr.RemoteQueries)
	}
}

func TestCacheMissingColumnRejectsView(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)
	// segment is not projected by Cust1000.
	p := optimize(t, env, "SELECT cid, segment FROM customer WHERE cid <= 10")
	if len(p.UsedViews) != 0 {
		t.Errorf("view with missing column was used:\n%s", Explain(p))
	}
}

func TestCacheDynamicPlanParameterized(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	p := optimize(t, env, "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid")
	if !p.Dynamic {
		t.Fatalf("parameterized query should produce a dynamic plan:\n%s", Explain(p))
	}
	if p.GuardFraction <= 0 || p.GuardFraction >= 1 {
		t.Errorf("Fl should be in (0,1): %f", p.GuardFraction)
	}

	// Parameter within the view: local branch runs, no remote traffic.
	rs, ctr := execute(t, p, store, b, exec.Params{"cid": types.NewInt(500)})
	if len(rs.Rows) != 500 {
		t.Fatalf("local branch rows: %d", len(rs.Rows))
	}
	if ctr.RemoteQueries != 0 {
		t.Errorf("local branch went remote (%d remote queries)", ctr.RemoteQueries)
	}
	if ctr.StartupPruned != 1 {
		t.Errorf("exactly one branch should be pruned, got %d", ctr.StartupPruned)
	}

	// Parameter outside the view: remote branch runs.
	rs, ctr = execute(t, p, store, b, exec.Params{"cid": types.NewInt(1500)})
	if len(rs.Rows) != 1500 {
		t.Fatalf("remote branch rows: %d", len(rs.Rows))
	}
	if ctr.RemoteQueries != 1 {
		t.Errorf("remote branch remote queries: %d", ctr.RemoteQueries)
	}
}

func TestCacheDynamicPlanBoundaryValue(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	p := optimize(t, env, "SELECT cid FROM customer WHERE cid <= @cid")
	// Exactly at the view boundary: the view still contains all rows.
	rs, ctr := execute(t, p, store, b, exec.Params{"cid": types.NewInt(1000)})
	if len(rs.Rows) != 1000 {
		t.Fatalf("boundary rows: %d", len(rs.Rows))
	}
	if ctr.RemoteQueries != 0 {
		t.Error("boundary value should stay local")
	}
	// One above: must go remote.
	rs, ctr = execute(t, p, store, b, exec.Params{"cid": types.NewInt(1001)})
	if len(rs.Rows) != 1001 || ctr.RemoteQueries != 1 {
		t.Errorf("rows=%d remote=%d", len(rs.Rows), ctr.RemoteQueries)
	}
}

func TestCacheEqualityParamDynamicPlan(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	p := optimize(t, env, "SELECT cid, cname, caddress FROM customer WHERE cid = @cid")
	if !p.Dynamic {
		t.Fatalf("equality param should be dynamic:\n%s", Explain(p))
	}
	rs, ctr := execute(t, p, store, b, exec.Params{"cid": types.NewInt(77)})
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != 77 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	if ctr.RemoteQueries != 0 {
		t.Error("cid=77 should hit the view")
	}
	rs, ctr = execute(t, p, store, b, exec.Params{"cid": types.NewInt(4321)})
	if len(rs.Rows) != 1 || ctr.RemoteQueries != 1 {
		t.Errorf("remote point: rows=%d remote=%d", len(rs.Rows), ctr.RemoteQueries)
	}
}

func TestCachePaperJoinExampleChoosePlanPullup(t *testing.T) {
	// The paper's §5.1.2 example: customer ⋈ orders with c.ckey <= @key.
	b := newBackend(t)
	env, store := newCache(t, b)
	p := optimize(t, env, `SELECT c.cname, o.total FROM customer c, orders o
		WHERE c.cid <= @key AND c.cid = o.ckey AND o.okey <= 100`)
	if !p.Dynamic {
		t.Fatalf("expected dynamic plan:\n%s", Explain(p))
	}
	// Guard true: local branch uses the view; orders is transferred.
	rs, ctr := execute(t, p, store, b, exec.Params{"key": types.NewInt(900)})
	want := 0
	for i := 1; i <= 100; i++ {
		if i%nCustomers <= 900 && i%nCustomers >= 1 {
			want++
		}
	}
	if len(rs.Rows) != want {
		t.Fatalf("guard-true rows: %d want %d", len(rs.Rows), want)
	}
	_ = ctr
	// Guard false: the whole join should be pushed remotely as one query.
	rs, ctr = execute(t, p, store, b, exec.Params{"key": types.NewInt(5000)})
	want = 0
	for i := 1; i <= 100; i++ {
		if i%nCustomers <= 5000 && i%nCustomers >= 1 {
			want++
		}
	}
	if len(rs.Rows) != want {
		t.Fatalf("guard-false rows: %d want %d", len(rs.Rows), want)
	}
	if ctr.RemoteQueries != 1 {
		t.Errorf("guard-false should push one remote query, got %d:\n%s", ctr.RemoteQueries, ExplainOperator(p.Root))
	}
}

func TestCacheCostBasedRemoteChoice(t *testing.T) {
	// A highly selective predicate on a column the backend can seek but the
	// cache can only scan: the optimizer should pick the backend even though
	// the cached view contains the rows (paper: "if there is an index on the
	// backend that greatly reduces the cost ... it will be executed on the
	// backend").
	b := newBackend(t)
	env, store := newCache(t, b)
	// Add a cached full-copy view of orders WITHOUT any index.
	def := sql.MustParseSelect("SELECT okey, ckey, total FROM orders")
	v := &catalog.Table{
		Name: "AllOrders",
		Columns: []catalog.Column{
			{Name: "okey", Type: types.KindInt},
			{Name: "ckey", Type: types.KindInt},
			{Name: "total", Type: types.KindFloat},
		},
		IsView: true, Materialized: true, Cached: true, ViewDef: def,
	}
	if err := env.Cat.AddTable(v); err != nil {
		t.Fatal(err)
	}
	store.CreateTable(v)
	tx := store.Begin(true)
	var rows []types.Row
	btx := b.store.Begin(false)
	btx.Table("orders").Scan(func(_ storage.RowID, r types.Row) bool {
		tx.Insert("AllOrders", r.Clone())
		rows = append(rows, r)
		return true
	})
	btx.Abort()
	tx.CommitUnlogged()
	v.Stats = catalog.BuildTableStats(v.ColumnNames(), rows)

	p := optimize(t, env, "SELECT total FROM orders WHERE okey = 123")
	if p.FullyLocal {
		t.Fatalf("backend index seek should beat a local view scan:\n%s", Explain(p))
	}

	// DBCache-style ablation: always use the cache when a view matches.
	env.Opts.AlwaysUseCache = true
	p = optimize(t, env, "SELECT total FROM orders WHERE okey = 123")
	if !p.FullyLocal {
		t.Fatalf("AlwaysUseCache should force the view:\n%s", Explain(p))
	}
	env.Opts.AlwaysUseCache = false
}

func TestCacheWholeQueryPushdown(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	// Aggregation over a table with no matching view: ship the whole thing.
	p := optimize(t, env, `SELECT segment, COUNT(*) AS cnt FROM customer
		WHERE segment >= 0 GROUP BY segment ORDER BY cnt DESC`)
	if p.FullyLocal {
		t.Fatal("no local data: must go remote")
	}
	rs, ctr := execute(t, p, store, b, nil)
	if len(rs.Rows) != 7 {
		t.Fatalf("groups: %d", len(rs.Rows))
	}
	if ctr.RemoteQueries != 1 {
		t.Errorf("expected one pushed query, got %d\n%s", ctr.RemoteQueries, ExplainOperator(p.Root))
	}
	// The aggregation must have happened on the backend: only 7 rows moved.
	if ctr.RowsRemote != 7 {
		t.Errorf("rows transferred: %d, want 7 (aggregated remotely)", ctr.RowsRemote)
	}
}

func TestDynamicPlansDisabledAblation(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)
	env.Opts.EnableDynamicPlans = false
	p := optimize(t, env, "SELECT cid FROM customer WHERE cid <= @cid")
	if p.Dynamic {
		t.Fatal("dynamic plans disabled but produced one")
	}
	if len(p.UsedViews) != 0 {
		t.Error("without dynamic plans the guarded view cannot be used")
	}
}

// ---------------------------------------------------------------- view matching

func mkView(t *testing.T, def string, cols ...string) *catalog.Table {
	t.Helper()
	v := &catalog.Table{
		Name: "v", IsView: true, Materialized: true, Cached: true,
		ViewDef: sql.MustParseSelect(def),
	}
	for _, c := range cols {
		v.Columns = append(v.Columns, catalog.Column{Name: c, Type: types.KindInt})
	}
	return v
}

func predsOf(t *testing.T, where string) []simplePred {
	t.Helper()
	ps, _ := simplePreds(conjOf(t, where))
	return ps
}

func conjOf(t *testing.T, where string) []sql.Expr {
	t.Helper()
	stmt := sql.MustParseSelect("SELECT x FROM t WHERE " + where)
	return Conjuncts(stmt.Where)
}

func TestMatchViewContainment(t *testing.T) {
	v := mkView(t, "SELECT cid, cname FROM customer WHERE cid <= 1000", "cid", "cname")
	need := map[string]bool{"cid": true}

	if m := MatchView(v, "customer", conjOf(t, "cid <= 500"), need, true); m == nil || m.Guard != nil {
		t.Error("cid <= 500 should match unconditionally")
	}
	if m := MatchView(v, "customer", conjOf(t, "cid <= 1000"), need, true); m == nil || m.Guard != nil {
		t.Error("cid <= 1000 should match unconditionally")
	}
	if m := MatchView(v, "customer", conjOf(t, "cid < 1001"), need, true); m == nil || m.Guard != nil {
		t.Error("cid < 1001 should match unconditionally")
	}
	if m := MatchView(v, "customer", conjOf(t, "cid <= 2000"), need, true); m != nil && m.Guard == nil {
		t.Error("cid <= 2000 must not match unconditionally")
	}
	if m := MatchView(v, "customer", conjOf(t, "cid = 400"), need, true); m == nil || m.Guard != nil {
		t.Error("point inside should match")
	}
	if m := MatchView(v, "customer", nil, need, true); m != nil && m.Guard == nil {
		t.Error("no predicate must not match a restricted view")
	}
}

func TestMatchViewGuards(t *testing.T) {
	v := mkView(t, "SELECT cid FROM customer WHERE cid <= 1000", "cid")
	need := map[string]bool{"cid": true}

	m := MatchView(v, "customer", conjOf(t, "cid <= @p"), need, true)
	if m == nil || m.Guard == nil {
		t.Fatal("param query should match with guard")
	}
	text := sql.DeparseExpr(m.Guard)
	if !strings.Contains(text, "@p") || !strings.Contains(text, "1000") {
		t.Errorf("guard text: %s", text)
	}
	// Without dynamic plans the guarded match is rejected.
	if MatchView(v, "customer", conjOf(t, "cid <= @p"), need, false) != nil {
		t.Error("guarded match must be nil when dynamic plans are off")
	}
	// Lower-bound view.
	v2 := mkView(t, "SELECT cid FROM customer WHERE cid >= 100", "cid")
	m = MatchView(v2, "customer", conjOf(t, "cid >= @p"), need, true)
	if m == nil || m.Guard == nil {
		t.Fatal("lower-bound guard failed")
	}
	// Two-sided view with equality parameter.
	v3 := mkView(t, "SELECT cid FROM customer WHERE cid >= 100 AND cid <= 200", "cid")
	m = MatchView(v3, "customer", conjOf(t, "cid = @p"), need, true)
	if m == nil || m.Guard == nil {
		t.Fatal("two-sided guard failed")
	}
	if len(m.GuardTerms) != 2 {
		t.Errorf("expected 2 guard terms, got %d", len(m.GuardTerms))
	}
}

func TestMatchViewInSet(t *testing.T) {
	v := mkView(t, "SELECT cid, segment FROM customer WHERE segment IN (1, 2, 3)", "cid", "segment")
	need := map[string]bool{"cid": true}
	if m := MatchView(v, "customer", conjOf(t, "segment = 2"), need, true); m == nil || m.Guard != nil {
		t.Error("segment = 2 inside IN-set should match")
	}
	if m := MatchView(v, "customer", conjOf(t, "segment = 9"), need, true); m != nil && m.Guard == nil {
		t.Error("segment = 9 outside IN-set must not match unconditionally")
	}
	m := MatchView(v, "customer", conjOf(t, "segment = @s"), need, true)
	if m == nil || m.Guard == nil {
		t.Fatal("param against IN-set should produce IN guard")
	}
	if !strings.Contains(sql.DeparseExpr(m.Guard), "IN") {
		t.Errorf("guard: %s", sql.DeparseExpr(m.Guard))
	}
}

func TestMatchViewExtraQueryPredsAreFine(t *testing.T) {
	v := mkView(t, "SELECT cid, cname FROM customer WHERE cid <= 1000", "cid", "cname")
	need := map[string]bool{"cid": true, "cname": true}
	// Additional predicates only narrow the query; containment still holds.
	m := MatchView(v, "customer", conjOf(t, "cid <= 800 AND cname = 'x'"), need, true)
	if m == nil || m.Guard != nil {
		t.Error("extra conjuncts should not break containment")
	}
	// cid <= 800 is NOT implied by the view (view holds up to 1000), so it
	// stays residual; cname = 'x' stays residual too.
	if len(m.Residual) != 2 {
		t.Errorf("residual: %d conjuncts", len(m.Residual))
	}
}

func TestMatchViewWrongTable(t *testing.T) {
	v := mkView(t, "SELECT cid FROM customer WHERE cid <= 1000", "cid")
	if MatchView(v, "orders", nil, map[string]bool{"cid": true}, true) != nil {
		t.Error("view over customer must not match orders")
	}
}

func TestEstimateGuardFrequencyUniform(t *testing.T) {
	var rows []types.Row
	for i := int64(1); i <= 2000; i++ {
		rows = append(rows, types.Row{types.NewInt(i)})
	}
	stats := catalog.BuildTableStats([]string{"cid"}, rows)
	terms := []GuardTerm{{Param: "p", Op: sql.OpLE, Bound: types.NewInt(1000), Col: "cid"}}
	fl := EstimateGuardFrequency(terms, stats)
	if fl < 0.4 || fl > 0.6 {
		t.Errorf("Fl = %f, want ~0.5 (uniform assumption)", fl)
	}
}

func TestImplicationProver(t *testing.T) {
	cases := []struct {
		query, view string
		implies     bool
	}{
		{"x <= 5", "x <= 10", true},
		{"x <= 10", "x <= 10", true},
		{"x <= 11", "x <= 10", false},
		{"x < 10", "x <= 10", true},
		{"x <= 10", "x < 10", false},
		{"x = 5", "x <= 10", true},
		{"x = 15", "x <= 10", false},
		{"x >= 3 AND x <= 5", "x >= 1 AND x <= 10", true},
		{"x >= 0", "x >= 1", false},
		{"x IN (1, 2)", "x <= 10", true},
		{"x IN (1, 20)", "x <= 10", false},
		{"x = 2", "x IN (1, 2, 3)", true},
		{"x = 7", "x IN (1, 2, 3)", false},
		{"x BETWEEN 2 AND 3", "x IN (1, 2, 3)", false}, // ranges don't imply finite sets
		{"x > 5", "x > 4", true},
		{"x > 4", "x > 5", false},
		{"x >= 6", "x > 5", true},
	}
	for _, c := range cases {
		q := rangeFromPreds(predsOf(t, c.query))
		v := rangeFromPreds(predsOf(t, c.view))
		if got := v.impliedBy(q); got != c.implies {
			t.Errorf("(%s) implies (%s): got %v want %v", c.query, c.view, got, c.implies)
		}
	}
}

func TestSelectivitySanity(t *testing.T) {
	b := newBackend(t)
	pl := &planner{env: b.env}
	cust := b.cat.Table("customer")
	sel := pl.selectivity(cust.Stats, Conjuncts(sql.MustParseSelect("SELECT cid FROM customer WHERE cid <= 1000").Where))
	if sel < 0.02 || sel > 0.12 {
		t.Errorf("cid <= 1000 of 20000: selectivity %f, want ~0.05", sel)
	}
}

func TestMatchViewRedundantPredicateElimination(t *testing.T) {
	// View filters type='Tire' but does not project type. A query filtering
	// type='Tire' must still match: the conjunct is implied by the view.
	v := mkView(t, "SELECT id, name FROM part WHERE ptype = 'Tire'", "id", "name")
	need := map[string]bool{"name": true}
	m := MatchView(v, "part", conjOf(t, "ptype = 'Tire' AND id <= 10"), need, true)
	if m == nil {
		t.Fatal("implied predicate should not require projection")
	}
	if m.Guard != nil {
		t.Error("match should be unconditional")
	}
	if len(m.Residual) != 1 || !strings.Contains(sql.DeparseExpr(m.Residual[0]), "id") {
		t.Errorf("only id <= 10 should remain residual: %v", m.Residual)
	}
	// But a query needing the type column VALUE still cannot use the view.
	if MatchView(v, "part", conjOf(t, "ptype = 'Tire'"), map[string]bool{"ptype": true}, true) != nil {
		t.Error("output column missing from projection must reject")
	}
	// And a filter on an unprojected column that is NOT implied must reject.
	if MatchView(v, "part", conjOf(t, "ptype = 'Bolt'"), need, true) != nil {
		t.Error("contradicting filter must reject")
	}
}
