package opt

import (
	"errors"
	"testing"

	"mtcache/internal/sql"
)

// TestLocalOnlyPlansInsideView: a query the cached view covers must get a
// fully local, non-dynamic plan even when the cost-based winner would be
// remote or dynamic.
func TestLocalOnlyPlansInsideView(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)

	p, err := OptimizeLocalOnly(sql.MustParseSelect(
		"SELECT cname FROM customer WHERE cid <= 500"), env)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FullyLocal || p.Dynamic {
		t.Fatalf("local-only plan must be fully local and static:\n%s", Explain(p))
	}
	rs, ctr := execute(t, p, store, b, nil)
	if len(rs.Rows) != 500 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if ctr.RemoteQueries != 0 {
		t.Error("local-only plan touched the backend")
	}
}

// TestLocalOnlyParameterizedNeverDynamic: with a parameter the default
// optimizer builds a ChoosePlan whose remote branch could fire at run time;
// local-only planning must refuse that shape.
func TestLocalOnlyParameterizedNeverDynamic(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)

	stmt := sql.MustParseSelect("SELECT cname FROM customer WHERE cid = @cid")
	def, err := Optimize(stmt, env)
	if err != nil {
		t.Fatal(err)
	}
	if !def.Dynamic {
		t.Skipf("expected the default plan to be dynamic:\n%s", Explain(def))
	}
	// Containment does not hold for all parameter values, so no static local
	// plan exists: the local-only planner must reject rather than hand back
	// a plan that silently drops rows.
	if _, err := OptimizeLocalOnly(stmt, env); !errors.Is(err, ErrNoLocalPlan) {
		t.Fatalf("want ErrNoLocalPlan, got %v", err)
	}
}

// TestLocalOnlyOutsideViewFails: data the cache does not hold cannot be
// conjured locally.
func TestLocalOnlyOutsideViewFails(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)

	_, err := OptimizeLocalOnly(sql.MustParseSelect(
		"SELECT cname FROM customer WHERE cid BETWEEN 5000 AND 5004"), env)
	if !errors.Is(err, ErrNoLocalPlan) {
		t.Fatalf("want ErrNoLocalPlan, got %v", err)
	}
}
