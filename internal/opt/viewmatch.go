package opt

import (
	"strings"

	"mtcache/internal/catalog"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// ViewMatch is a successful substitution of a view for a base-table
// reference.
type ViewMatch struct {
	View *catalog.Table

	// ColMap maps base-table column names (lower-cased) to view output
	// ordinals.
	ColMap map[string]int

	// Guard is nil for an unconditional match. Otherwise it is a predicate
	// over parameters only; the view contains all required rows exactly when
	// the guard is true, and the optimizer builds a ChoosePlan (paper §5.1).
	Guard sql.Expr

	// GuardTerms describe the guard for selectivity (Fl) estimation.
	GuardTerms []GuardTerm

	// Residual holds the query conjuncts that must still be evaluated on
	// the view's rows. Conjuncts the view definition already implies are
	// dropped — so their columns need not be in the view's projection.
	Residual []sql.Expr
}

// GuardTerm is one conjunct of a guard: @Param Op Bound (or @Param IN EqSet),
// derived from view predicate bounds on column Col.
type GuardTerm struct {
	Param string
	Op    sql.BinOp
	Bound types.Value
	EqSet []types.Value
	Col   string // underlying base-table column, for statistics
}

// MatchView tests whether view can substitute for a reference to base table
// tableName given the query's single-table conjuncts and the set of
// downstream-needed columns (lower-cased names). dynamicOK enables guarded
// (parameterized) matches.
//
// The test follows the select-project case of the Goldstein–Larson
// view-matching conditions: (1) the view is over the same table, (2) the
// query predicate implies the view predicate (possibly conditionally on
// parameter values — the guard), (3) query conjuncts the view definition
// already implies are dropped from the residual, and (4) every needed
// column — downstream needs plus residual-conjunct columns — is in the
// view's projection.
func MatchView(view *catalog.Table, tableName string, conjuncts []sql.Expr, needed map[string]bool, dynamicOK bool) *ViewMatch {
	if view.ViewDef == nil || !view.IsView {
		return nil
	}
	def := view.ViewDef
	// Select-project views only: single table, no grouping, no top.
	if len(def.From) != 1 || def.GroupBy != nil || def.Having != nil || def.Top != nil || def.Distinct {
		return nil
	}
	base, ok := def.From[0].(*sql.TableName)
	if !ok || !strings.EqualFold(base.Name, tableName) {
		return nil
	}

	// Projection map: base column name -> view ordinal.
	colMap := make(map[string]int)
	for i, item := range def.Columns {
		if item.Star {
			// SELECT *: identity map over the view's columns.
			for j, c := range view.Columns {
				colMap[strings.ToLower(c.Name)] = j
			}
			break
		}
		ref, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			return nil // computed view columns are not matchable
		}
		colMap[strings.ToLower(ref.Name)] = i
	}

	// View predicate must be fully understood.
	viewPreds, viewResidual := simplePreds(Conjuncts(def.Where))
	if len(viewResidual) > 0 {
		return nil
	}
	byColView := groupByCol(viewPreds)

	preds, _ := simplePreds(conjuncts)
	byColQuery := groupByCol(preds)

	// Containment check per view-predicate column.
	var guardExprs []sql.Expr
	var guardTerms []GuardTerm
	for col, vPreds := range byColView {
		vRange := rangeFromPreds(vPreds)
		qPreds := byColQuery[col]
		qRange := rangeFromPreds(qPreds)
		if vRange.impliedBy(qRange) {
			continue
		}
		if !dynamicOK {
			return nil
		}
		exprs, terms, ok := deriveGuard(col, vRange, qRange, qPreds)
		if !ok {
			return nil
		}
		guardExprs = append(guardExprs, exprs...)
		guardTerms = append(guardTerms, terms...)
	}

	// Residual: drop conjuncts the view definition implies (redundancy
	// elimination). A conjunct is redundant when, for every simple predicate
	// it contributes, the view's range on that column is contained in the
	// predicate's range.
	var residual []sql.Expr
	for _, c := range conjuncts {
		ps, ok := asSimplePreds(c)
		if !ok {
			residual = append(residual, c)
			continue
		}
		redundant := true
		for _, p := range ps {
			if p.isParam() {
				redundant = false
				break
			}
			vPreds, okCol := byColView[colNameKey(p.col)]
			if !okCol {
				redundant = false
				break
			}
			vRange := rangeFromPreds(vPreds)
			pRange := rangeFromPreds([]simplePred{p})
			if !pRange.impliedBy(vRange) {
				redundant = false
				break
			}
		}
		if !redundant {
			residual = append(residual, c)
		}
	}

	// Column availability: downstream needs plus residual columns.
	for col := range needed {
		if _, ok := colMap[col]; !ok {
			return nil
		}
	}
	for _, c := range residual {
		for _, ref := range columnRefs(c) {
			if _, ok := colMap[colNameKey(ref)]; !ok {
				return nil
			}
		}
	}

	m := &ViewMatch{View: view, ColMap: colMap, GuardTerms: guardTerms, Residual: residual}
	m.Guard = AndAll(guardExprs)
	return m
}

func groupByCol(preds []simplePred) map[string][]simplePred {
	out := make(map[string][]simplePred)
	for _, p := range preds {
		k := colNameKey(p.col)
		out[k] = append(out[k], p)
	}
	return out
}

// deriveGuard finds parameter conditions under which the query predicates on
// one column imply the view's range on that column. Returns ok=false when no
// sound guard exists.
func deriveGuard(col string, vRange, qRange valueRange, qPreds []simplePred) ([]sql.Expr, []GuardTerm, bool) {
	var exprs []sql.Expr
	var terms []GuardTerm

	paramOf := func(ops ...sql.BinOp) *simplePred {
		for i := range qPreds {
			p := &qPreds[i]
			if !p.isParam() {
				continue
			}
			for _, op := range ops {
				if p.op == op {
					return p
				}
			}
		}
		return nil
	}
	emit := func(param string, op sql.BinOp, bound types.Value) {
		exprs = append(exprs, &sql.BinaryExpr{
			Op: op,
			L:  &sql.Param{Name: param},
			R:  &sql.Literal{Val: bound},
		})
		terms = append(terms, GuardTerm{Param: param, Op: op, Bound: bound, Col: col})
	}

	// Finite-set view predicate: only @p = ... can be guarded into it.
	if vRange.eq != nil {
		if qRange.eq != nil {
			sub := true
			for _, v := range qRange.eq {
				if !vRange.containsEqAware(v) {
					sub = false
					break
				}
			}
			if sub {
				return nil, nil, true
			}
		}
		p := paramOf(sql.OpEQ)
		if p == nil {
			return nil, nil, false
		}
		var list []sql.Expr
		for _, v := range vRange.eq {
			list = append(list, &sql.Literal{Val: v})
		}
		exprs = append(exprs, &sql.InExpr{X: &sql.Param{Name: p.param}, List: list})
		terms = append(terms, GuardTerm{Param: p.param, EqSet: vRange.eq, Col: col, Op: sql.OpEQ})
		return exprs, terms, true
	}

	// Upper bound of the view range.
	if !vRange.hi.IsNull() {
		hiDone := qRange.hiSatisfies(vRange.hi, vRange.hiOpen)
		if !hiDone {
			p := paramOf(sql.OpEQ, sql.OpLE, sql.OpLT)
			if p == nil {
				return nil, nil, false
			}
			// Query pred: X <= @p (or X = @p, X < @p). Containment requires
			// @p within the view's upper bound. X < @p is safe with @p <= hi
			// as well because X < @p <= hi.
			op := sql.OpLE
			if vRange.hiOpen && p.op != sql.OpLT {
				op = sql.OpLT
			}
			emit(p.param, op, vRange.hi)
		}
	}
	// Lower bound of the view range.
	if !vRange.lo.IsNull() {
		loDone := qRange.loSatisfies(vRange.lo, vRange.loOpen)
		if !loDone {
			p := paramOf(sql.OpEQ, sql.OpGE, sql.OpGT)
			if p == nil {
				return nil, nil, false
			}
			op := sql.OpGE
			if vRange.loOpen && p.op != sql.OpGT {
				op = sql.OpGT
			}
			emit(p.param, op, vRange.lo)
		}
	}
	return exprs, terms, true
}

// hiSatisfies reports whether this (query) range's upper side already stays
// within bound.
func (r *valueRange) hiSatisfies(bound types.Value, open bool) bool {
	probe := valueRange{hi: bound, hiOpen: open}
	return probe.impliedBy(*r)
}

// loSatisfies is the mirror of hiSatisfies.
func (r *valueRange) loSatisfies(bound types.Value, open bool) bool {
	probe := valueRange{lo: bound, loOpen: open}
	return probe.impliedBy(*r)
}

// EstimateGuardFrequency estimates Fl — the probability that the guard is
// true at run time. Per the paper (§5.1), the parameter is assumed uniformly
// distributed between the min and max of the guarded column, for lack of a
// parameter-value distribution.
func EstimateGuardFrequency(terms []GuardTerm, stats *catalog.TableStats) float64 {
	f := 1.0
	for _, t := range terms {
		cs := stats.Col(t.Col)
		var p float64
		switch {
		case t.EqSet != nil:
			p = 0
			for _, v := range t.EqSet {
				p += cs.SelectivityEq(v)
			}
			if p > 1 {
				p = 1
			}
		case t.Op == sql.OpLE || t.Op == sql.OpLT:
			p = cs.FractionLE(t.Bound)
		case t.Op == sql.OpGE || t.Op == sql.OpGT:
			p = 1 - cs.FractionLE(t.Bound)
		case t.Op == sql.OpEQ:
			p = cs.SelectivityEq(t.Bound)
		default:
			p = 0.5
		}
		f *= p
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}
