package opt

import (
	"strings"

	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Conjuncts splits a predicate into its top-level AND factors.
func Conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == sql.OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// AndAll rebuilds a conjunction; nil for an empty list.
func AndAll(list []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, e := range list {
		if out == nil {
			out = e
		} else {
			out = &sql.BinaryExpr{Op: sql.OpAnd, L: out, R: e}
		}
	}
	return out
}

// columnRefs collects the distinct column references in an expression.
func columnRefs(e sql.Expr) []sql.ColumnRef {
	var out []sql.ColumnRef
	seen := map[string]bool{}
	sql.WalkExpr(e, func(x sql.Expr) bool {
		if c, ok := x.(*sql.ColumnRef); ok {
			k := strings.ToLower(c.Table) + "." + strings.ToLower(c.Name)
			if !seen[k] {
				seen[k] = true
				out = append(out, *c)
			}
		}
		return true
	})
	return out
}

// simplePred is a normalized predicate of the form  col op rhs  where rhs is
// a literal or a parameter. BETWEEN expands into two simplePreds; IN over
// literals becomes an eqSet.
type simplePred struct {
	col   sql.ColumnRef
	op    sql.BinOp // comparison; for eqSet entries op is OpEQ
	lit   types.Value
	param string // parameter name; lit unused when param != ""
	eqSet []types.Value
}

func (p simplePred) isParam() bool { return p.param != "" }

// simplePreds extracts as many normalized predicates as possible from a
// conjunct list. Conjuncts that don't normalize (LIKE, OR, expressions)
// are returned in residual; they still execute as filters but cannot help
// prove view containment.
func simplePreds(conjuncts []sql.Expr) (preds []simplePred, residual []sql.Expr) {
	for _, c := range conjuncts {
		ps, ok := asSimplePreds(c)
		if ok {
			preds = append(preds, ps...)
		} else {
			residual = append(residual, c)
		}
	}
	return preds, residual
}

func asSimplePreds(e sql.Expr) ([]simplePred, bool) {
	switch x := e.(type) {
	case *sql.BinaryExpr:
		if !x.Op.IsComparison() {
			return nil, false
		}
		if p, ok := normalizeCmp(x.Op, x.L, x.R); ok {
			return []simplePred{p}, true
		}
		if p, ok := normalizeCmp(x.Op.Flip(), x.R, x.L); ok {
			return []simplePred{p}, true
		}
		return nil, false
	case *sql.BetweenExpr:
		if x.Not {
			return nil, false
		}
		col, ok := x.X.(*sql.ColumnRef)
		if !ok {
			return nil, false
		}
		lo, okLo := normalizeCmp(sql.OpGE, col, x.Lo)
		hi, okHi := normalizeCmp(sql.OpLE, col, x.Hi)
		if !okLo || !okHi {
			return nil, false
		}
		return []simplePred{lo, hi}, true
	case *sql.InExpr:
		if x.Not {
			return nil, false
		}
		col, ok := x.X.(*sql.ColumnRef)
		if !ok {
			return nil, false
		}
		var set []types.Value
		for _, item := range x.List {
			lit, ok := item.(*sql.Literal)
			if !ok {
				return nil, false
			}
			set = append(set, lit.Val)
		}
		return []simplePred{{col: *col, op: sql.OpEQ, eqSet: set}}, true
	}
	return nil, false
}

func normalizeCmp(op sql.BinOp, l, r sql.Expr) (simplePred, bool) {
	col, ok := l.(*sql.ColumnRef)
	if !ok {
		return simplePred{}, false
	}
	switch rhs := r.(type) {
	case *sql.Literal:
		return simplePred{col: *col, op: op, lit: rhs.Val}, true
	case *sql.Param:
		return simplePred{col: *col, op: op, param: rhs.Name}, true
	}
	return simplePred{}, false
}

// colKey is the case-folded identity of a column reference.
func colKey(c sql.ColumnRef) string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Name)
}

// colNameKey folds just the column name (for unqualified matching inside a
// single-table view definition).
func colNameKey(c sql.ColumnRef) string { return strings.ToLower(c.Name) }

// valueRange is the set of values a column may take under a conjunction of
// constant predicates.
type valueRange struct {
	lo, hi         types.Value // zero Value = unbounded
	loOpen, hiOpen bool
	eq             []types.Value // non-nil: value must be in this set
	empty          bool
}

// rangeFromPreds folds all constant predicates on one column into a range.
// Parameterized predicates are skipped (they don't constrain at plan time).
func rangeFromPreds(preds []simplePred) valueRange {
	r := valueRange{}
	for _, p := range preds {
		if p.isParam() {
			continue
		}
		if p.eqSet != nil {
			r.intersectEq(p.eqSet)
			continue
		}
		switch p.op {
		case sql.OpEQ:
			r.intersectEq([]types.Value{p.lit})
		case sql.OpLT:
			r.boundHi(p.lit, true)
		case sql.OpLE:
			r.boundHi(p.lit, false)
		case sql.OpGT:
			r.boundLo(p.lit, true)
		case sql.OpGE:
			r.boundLo(p.lit, false)
		case sql.OpNE:
			// NE doesn't tighten a range usefully; ignore.
		}
	}
	return r
}

func (r *valueRange) boundHi(v types.Value, open bool) {
	// Integer domains admit exact tightening: x < 1001 ⟺ x <= 1000, which
	// lets the containment prover see through off-by-one bound styles.
	if open && v.K == types.KindInt {
		v, open = types.NewInt(v.I-1), false
	}
	if r.hi.IsNull() || types.Compare(v, r.hi) < 0 || (types.Equal(v, r.hi) && open) {
		r.hi, r.hiOpen = v, open
	}
	r.check()
}

func (r *valueRange) boundLo(v types.Value, open bool) {
	if open && v.K == types.KindInt {
		v, open = types.NewInt(v.I+1), false
	}
	if r.lo.IsNull() || types.Compare(v, r.lo) > 0 || (types.Equal(v, r.lo) && open) {
		r.lo, r.loOpen = v, open
	}
	r.check()
}

func (r *valueRange) intersectEq(set []types.Value) {
	if r.eq == nil {
		r.eq = append([]types.Value(nil), set...)
	} else {
		var keep []types.Value
		for _, v := range r.eq {
			for _, w := range set {
				if types.Equal(v, w) {
					keep = append(keep, v)
					break
				}
			}
		}
		r.eq = keep
	}
	if len(r.eq) == 0 {
		r.empty = true
	}
	r.check()
}

func (r *valueRange) check() {
	if r.eq != nil {
		var keep []types.Value
		for _, v := range r.eq {
			if r.contains(v) {
				keep = append(keep, v)
			}
		}
		// eq set dominates the range; fold bounds into the set
		r.eq = keep
		if len(r.eq) == 0 {
			r.empty = true
		}
		return
	}
	if !r.lo.IsNull() && !r.hi.IsNull() {
		c := types.Compare(r.lo, r.hi)
		if c > 0 || (c == 0 && (r.loOpen || r.hiOpen)) {
			r.empty = true
		}
	}
}

// contains reports whether value v satisfies the range bounds.
func (r *valueRange) contains(v types.Value) bool {
	if !r.lo.IsNull() {
		c := types.Compare(v, r.lo)
		if c < 0 || (c == 0 && r.loOpen) {
			return false
		}
	}
	if !r.hi.IsNull() {
		c := types.Compare(v, r.hi)
		if c > 0 || (c == 0 && r.hiOpen) {
			return false
		}
	}
	return true
}

// implied reports whether every value permitted by q is permitted by r
// (q ⊆ r): i.e. the query range implies the view predicate's range.
func (r *valueRange) impliedBy(q valueRange) bool {
	if q.empty {
		return true
	}
	if q.eq != nil {
		for _, v := range q.eq {
			if !r.containsEqAware(v) {
				return false
			}
		}
		return true
	}
	if r.eq != nil {
		// r is a finite set but q is a (possibly unbounded) range: only an
		// empty q (handled) or point range can be contained.
		if !q.lo.IsNull() && !q.hi.IsNull() && types.Equal(q.lo, q.hi) && !q.loOpen && !q.hiOpen {
			return r.containsEqAware(q.lo)
		}
		return false
	}
	// range vs range: q's bounds must be inside r's.
	if !r.lo.IsNull() {
		if q.lo.IsNull() {
			return false
		}
		c := types.Compare(q.lo, r.lo)
		if c < 0 || (c == 0 && r.loOpen && !q.loOpen) {
			return false
		}
	}
	if !r.hi.IsNull() {
		if q.hi.IsNull() {
			return false
		}
		c := types.Compare(q.hi, r.hi)
		if c > 0 || (c == 0 && r.hiOpen && !q.hiOpen) {
			return false
		}
	}
	return true
}

func (r *valueRange) containsEqAware(v types.Value) bool {
	if r.eq != nil {
		for _, w := range r.eq {
			if types.Equal(v, w) {
				return true
			}
		}
		return false
	}
	return r.contains(v)
}
