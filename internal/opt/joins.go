package opt

import (
	"fmt"
	"math"
	"strings"

	"mtcache/internal/exec"
	"mtcache/internal/sql"
)

// eqPred is an equi-join predicate between two join states.
type eqPred struct {
	l, r sql.ColumnRef
	ast  sql.Expr
}

// joinState is one entry in the greedy join-ordering worklist.
type joinState struct {
	aliases map[string]bool
	cs      *candSet
	n       int // number of base relations covered
}

// orderJoins greedily builds a join tree over the given alias indexes,
// preferring equi-connected pairs with the smallest estimated result.
func (pl *planner) orderJoins(aliases []*aliasInfo, leaves []*candSet, idxs []int, multiPreds []sql.Expr) (*candSet, error) {
	if len(idxs) == 0 {
		return nil, fmt.Errorf("opt: query has no inner relations")
	}
	var states []*joinState
	for _, i := range idxs {
		states = append(states, &joinState{
			aliases: map[string]bool{aliases[i].alias: true},
			cs:      leaves[i],
			n:       1,
		})
	}
	pending := append([]sql.Expr{}, multiPreds...)

	for len(states) > 1 {
		bestI, bestJ := -1, -1
		var bestCard = math.MaxFloat64
		var bestEq []eqPred
		var bestResidual []sql.Expr
		// Prefer equi-connected pairs.
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				eqs, residual := connecting(pending, states[i].aliases, states[j].aliases)
				if len(eqs) == 0 {
					continue
				}
				card := pl.joinCard(states[i].cs.any().card, states[j].cs.any().card, eqs)
				if card < bestCard {
					bestCard, bestI, bestJ, bestEq, bestResidual = card, i, j, eqs, residual
				}
			}
		}
		if bestI < 0 {
			// No equi-connection: cross join the two smallest inputs.
			type sized struct {
				idx  int
				card float64
			}
			small := []sized{}
			for i, s := range states {
				small = append(small, sized{i, s.cs.any().card})
			}
			// selection of two minima
			a, b := 0, 1
			if small[b].card < small[a].card {
				a, b = b, a
			}
			for k := 2; k < len(small); k++ {
				if small[k].card < small[a].card {
					b = a
					a = k
				} else if small[k].card < small[b].card {
					b = k
				}
			}
			bestI, bestJ = states[a].n*0+min2(a, b), max2(a, b)
			_, bestResidual = connecting(pending, states[bestI].aliases, states[bestJ].aliases)
			bestEq = nil
		}
		merged, err := pl.joinSets(states[bestI], states[bestJ], bestEq, bestResidual)
		if err != nil {
			return nil, err
		}
		// Remove applied predicates.
		pending = removePreds(pending, bestEq, bestResidual)
		// Replace the two states with the merged one.
		ns := []*joinState{merged}
		for k, s := range states {
			if k != bestI && k != bestJ {
				ns = append(ns, s)
			}
		}
		states = ns
	}
	final := states[0]
	// Any remaining multi-alias predicates apply as filters on top.
	if len(pending) > 0 {
		applicable, rest := connecting2(pending, final.aliases)
		if len(rest) > 0 {
			return nil, fmt.Errorf("opt: unresolved predicates: %v", sql.DeparseExpr(AndAll(rest)))
		}
		cs := &candSet{}
		if final.cs.local != nil {
			p, err := pl.mapDyn(final.cs.local, func(q *plan) (*plan, error) {
				return pl.filterPlan(q, applicable)
			})
			if err != nil {
				return nil, err
			}
			cs.add(p)
		}
		if final.cs.remote != nil {
			p, err := pl.filterPlan(final.cs.remote, applicable)
			if err != nil {
				return nil, err
			}
			cs.add(p)
		}
		final.cs = cs
	}
	return final.cs, nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// connecting splits pending predicates into equi-join predicates linking
// setA and setB, and other predicates fully evaluable over the union.
func connecting(pending []sql.Expr, setA, setB map[string]bool) ([]eqPred, []sql.Expr) {
	var eqs []eqPred
	var residual []sql.Expr
	union := map[string]bool{}
	for a := range setA {
		union[a] = true
	}
	for b := range setB {
		union[b] = true
	}
	for _, p := range pending {
		if !coveredBy(p, union) {
			continue
		}
		if be, ok := p.(*sql.BinaryExpr); ok && be.Op == sql.OpEQ {
			lc, lok := be.L.(*sql.ColumnRef)
			rc, rok := be.R.(*sql.ColumnRef)
			if lok && rok {
				la, ra := strings.ToLower(lc.Table), strings.ToLower(rc.Table)
				switch {
				case setA[la] && setB[ra]:
					eqs = append(eqs, eqPred{l: *lc, r: *rc, ast: p})
					continue
				case setA[ra] && setB[la]:
					eqs = append(eqs, eqPred{l: *rc, r: *lc, ast: p})
					continue
				}
			}
		}
		// Applies across the pair but is not a simple equi-join: residual.
		if !coveredBy(p, setA) && !coveredBy(p, setB) {
			residual = append(residual, p)
		}
	}
	return eqs, residual
}

// connecting2 splits pending into those evaluable over set and the rest.
func connecting2(pending []sql.Expr, set map[string]bool) (app, rest []sql.Expr) {
	for _, p := range pending {
		if coveredBy(p, set) {
			app = append(app, p)
		} else {
			rest = append(rest, p)
		}
	}
	return app, rest
}

func coveredBy(e sql.Expr, set map[string]bool) bool {
	ok := true
	sql.WalkExpr(e, func(x sql.Expr) bool {
		if ref, k := x.(*sql.ColumnRef); k && ref.Table != "" {
			if !set[strings.ToLower(ref.Table)] {
				ok = false
			}
		}
		return ok
	})
	return ok
}

func removePreds(pending []sql.Expr, eqs []eqPred, residual []sql.Expr) []sql.Expr {
	used := map[sql.Expr]bool{}
	for _, e := range eqs {
		used[e.ast] = true
	}
	for _, r := range residual {
		used[r] = true
	}
	var out []sql.Expr
	for _, p := range pending {
		if !used[p] {
			out = append(out, p)
		}
	}
	return out
}

// joinCard estimates the cardinality of an equi-join.
func (pl *planner) joinCard(cl, cr float64, eqs []eqPred) float64 {
	card := cl * cr
	for _, e := range eqs {
		dl := pl.distinctOf(e.l, cl)
		dr := pl.distinctOf(e.r, cr)
		d := math.Max(dl, dr)
		if d < 1 {
			d = 1
		}
		card /= d
	}
	if card < 1 {
		card = 1
	}
	return card
}

func (pl *planner) distinctOf(ref sql.ColumnRef, fallbackCard float64) float64 {
	if st := pl.aliasStats[strings.ToLower(ref.Table)]; st != nil {
		if cs := st.Col(ref.Name); cs != nil && cs.Distinct > 0 {
			return float64(cs.Distinct)
		}
	}
	return math.Sqrt(fallbackCard)
}

// joinSets combines two states, producing local and remote candidates.
func (pl *planner) joinSets(a, b *joinState, eqs []eqPred, residual []sql.Expr) (*joinState, error) {
	out := &joinState{aliases: map[string]bool{}, n: a.n + b.n}
	for k := range a.aliases {
		out.aliases[k] = true
	}
	for k := range b.aliases {
		out.aliases[k] = true
	}
	cs := &candSet{}

	// Remote × Remote → merged remote plan (pushes the join to the backend).
	if ar, br := a.cs.remote, b.cs.remote; ar != nil && br != nil && ar.rem.full == nil && br.rem.full == nil {
		if p := pl.remoteJoin(ar, br, eqs, residual); p != nil {
			cs.add(p)
		}
	}
	// Local joins over every viable pairing. Dynamic inputs pull their
	// ChoosePlan above the join (§5.1.2): the guard-true branch joins
	// locally, while the guard-false branch is joined against the *other
	// side's full candidate set* — so an all-remote alternative branch can
	// merge into one larger remote query.
	lefts := localized(pl, a.cs)
	rights := localized(pl, b.cs)
	for _, lp := range lefts {
		for _, rp := range rights {
			var p *plan
			var err error
			switch {
			case lp.dyn != nil && pl.env.Opts.PullUpChoosePlan:
				p, err = pl.pullUpJoinLeft(lp, rp, b.cs, eqs, residual)
			case rp.dyn != nil && pl.env.Opts.PullUpChoosePlan:
				p, err = pl.pullUpJoinRight(lp, rp, a.cs, eqs, residual)
			default:
				p, err = pl.localJoin(lp, rp, eqs, residual)
			}
			if err != nil {
				return nil, err
			}
			cs.add(p)
		}
	}
	if cs.local == nil && cs.remote == nil {
		return nil, fmt.Errorf("opt: join produced no candidates")
	}
	out.cs = cs
	return out, nil
}

// localized returns the plans from a candidate set usable as local join
// inputs (applying DataTransfer to the remote one).
func localized(pl *planner, cs *candSet) []*plan {
	var out []*plan
	if cs.local != nil {
		out = append(out, cs.local)
	}
	if cs.remote != nil {
		out = append(out, pl.toLocal(cs.remote))
	}
	return out
}

// localizedCost is the cost of a plan as a local input: remote plans pay
// their DataTransfer.
func (pl *planner) localizedCost(p *plan) float64 {
	if p.loc == Local {
		return p.cost
	}
	return pl.toLocal(p).cost
}

// pullUpJoinLeft pulls a left-side ChoosePlan above the join.
func (pl *planner) pullUpJoinLeft(lp, rp *plan, bSet *candSet, eqs []eqPred, residual []sql.Expr) (*plan, error) {
	main := *lp
	main.dyn = nil
	jm, err := pl.localJoin(&main, rp, eqs, residual)
	if err != nil {
		return nil, err
	}
	alt, err := pl.joinAltWithSet(lp.dyn.alt, bSet, eqs, residual, true)
	if err != nil {
		return nil, err
	}
	return pl.assembleDyn(jm, alt, lp.dyn), nil
}

// pullUpJoinRight mirrors pullUpJoinLeft for a right-side ChoosePlan.
func (pl *planner) pullUpJoinRight(lp, rp *plan, aSet *candSet, eqs []eqPred, residual []sql.Expr) (*plan, error) {
	main := *rp
	main.dyn = nil
	jm, err := pl.localJoin(lp, &main, eqs, residual)
	if err != nil {
		return nil, err
	}
	alt, err := pl.joinAltWithSet(rp.dyn.alt, aSet, eqs, residual, false)
	if err != nil {
		return nil, err
	}
	return pl.assembleDyn(jm, alt, rp.dyn), nil
}

func (pl *planner) assembleDyn(jm, alt *plan, d *dynInfo) *plan {
	out := *jm
	fl := d.fl
	out.dyn = &dynInfo{guardAST: d.guardAST, fl: fl, alt: alt}
	out.card = fl*jm.card + (1-fl)*alt.card
	out.cost = fl*jm.cost + (1-fl)*pl.localizedCost(alt)
	return &out
}

// joinAltWithSet joins a dynamic plan's alternative branch against the other
// side's full candidate set, keeping the remote merge when it is cheapest —
// this is what lets pull-up "push a larger query to the backend server".
// altIsLeft records which join side the branch stands on.
func (pl *planner) joinAltWithSet(alt *plan, other *candSet, eqs []eqPred, residual []sql.Expr, altIsLeft bool) (*plan, error) {
	var best *plan
	bestCost := math.MaxFloat64
	consider := func(p *plan) {
		if p == nil {
			return
		}
		if c := pl.localizedCost(p); c < bestCost {
			best, bestCost = p, c
		}
	}
	if alt.loc == Remote && alt.rem.full == nil && other.remote != nil && other.remote.rem.full == nil {
		if altIsLeft {
			consider(pl.remoteJoin(alt, other.remote, eqs, residual))
		} else {
			consider(pl.remoteJoin(other.remote, alt, eqs, residual))
		}
	}
	for _, op := range localized(pl, other) {
		var p *plan
		var err error
		if altIsLeft {
			p, err = pl.localJoin(pl.toLocal(alt), op, eqs, residual)
		} else {
			p, err = pl.localJoin(op, pl.toLocal(alt), eqs, residual)
		}
		if err != nil {
			return nil, err
		}
		consider(p)
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no alternative-branch join")
	}
	return best, nil
}

// localJoin builds a local hash or nested-loop join.
func (pl *planner) localJoin(a, b *plan, eqs []eqPred, residual []sql.Expr) (*plan, error) {
	am, err := pl.materialize(a) // flattens any non-pulled dyn
	if err != nil {
		return nil, err
	}
	bm, err := pl.materialize(b)
	if err != nil {
		return nil, err
	}
	cols := append(append([]exec.ColInfo{}, am.cols...), bm.cols...)
	combined := &scope{cols: cols}
	var op exec.Operator
	var cost float64
	card := pl.joinCard(am.card, bm.card, eqs)
	if len(eqs) > 0 {
		lScope := &scope{cols: am.cols}
		rScope := &scope{cols: bm.cols}
		var lk, rk []exec.Expr
		for _, e := range eqs {
			le, err := compileExpr(&e.l, lScope)
			if err != nil {
				return nil, err
			}
			re, err := compileExpr(&e.r, rScope)
			if err != nil {
				return nil, err
			}
			lk = append(lk, le)
			rk = append(rk, re)
		}
		var res exec.Expr
		if len(residual) > 0 {
			res, err = compileExpr(AndAll(residual), combined)
			if err != nil {
				return nil, err
			}
		}
		op = &exec.HashJoin{Left: am.op, Right: bm.op, LeftKeys: lk, RightKeys: rk, Residual: res, BuildEst: bm.card}
		cost = am.cost + bm.cost + bm.card*costHashBuild + am.card*costHashProbe + card*costJoinOutRow
	} else {
		var pred exec.Expr
		if len(residual) > 0 {
			pred, err = compileExpr(AndAll(residual), combined)
			if err != nil {
				return nil, err
			}
			card = am.card * bm.card * defaultResidualSel(residual)
			if card < 1 {
				card = 1
			}
		} else {
			card = am.card * bm.card
		}
		op = &exec.NestedLoop{Left: am.op, Right: bm.op, Pred: pred}
		cost = am.cost + bm.cost + am.card*bm.card*costNLPair
	}
	return &plan{
		op: op, loc: Local, cols: cols, card: card, cost: cost,
		usedViews: append(append([]string{}, am.usedViews...), bm.usedViews...),
	}, nil
}

// pullUpThrough applies f to both branches of a dynamic plan and
// reassembles the ChoosePlan on top.
func (pl *planner) pullUpThrough(p *plan, f func(*plan) (*plan, error)) (*plan, error) {
	main := *p
	main.dyn = nil
	jm, err := f(&main)
	if err != nil {
		return nil, err
	}
	ja, err := f(p.dyn.alt)
	if err != nil {
		return nil, err
	}
	fl := p.dyn.fl
	out := *jm
	out.dyn = &dynInfo{guardAST: p.dyn.guardAST, fl: fl, alt: ja}
	out.card = fl*jm.card + (1-fl)*ja.card
	out.cost = fl*jm.cost + (1-fl)*ja.cost
	return &out, nil
}

// remoteJoin merges two remote SPJ fragments into one larger remote
// fragment — this is the optimizer "pushing the largest possible subquery to
// the backend" while staying cost-based.
func (pl *planner) remoteJoin(a, b *plan, eqs []eqPred, residual []sql.Expr) *plan {
	parts := &remoteParts{
		from:  append(append([]sql.TableRef{}, a.rem.from...), b.rem.from...),
		where: append(append([]sql.Expr{}, a.rem.where...), b.rem.where...),
		cols:  append(append([]exec.ColInfo{}, a.cols...), b.cols...),
	}
	for _, e := range eqs {
		parts.where = append(parts.where, e.ast)
	}
	parts.where = append(parts.where, residual...)
	card := pl.joinCard(a.card, b.card, eqs)
	var joinCost float64
	if len(eqs) > 0 {
		joinCost = b.card*costHashBuild + a.card*costHashProbe + card*costJoinOutRow
	} else {
		joinCost = a.card * b.card * costNLPair
		card = a.card * b.card * defaultResidualSel(residual)
		if card < 1 {
			card = 1
		}
	}
	return &plan{
		rem: parts, loc: Remote,
		cols: parts.cols,
		card: card,
		cost: a.cost + b.cost + joinCost*pl.env.Opts.RemoteCostFactor,
	}
}

// filterPlan applies leftover predicates to a plan in its own location.
func (pl *planner) filterPlan(p *plan, preds []sql.Expr) (*plan, error) {
	if len(preds) == 0 {
		return p, nil
	}
	out := *p
	sel := defaultResidualSel(preds)
	if p.loc == Remote {
		parts := *p.rem
		parts.where = append(append([]sql.Expr{}, parts.where...), preds...)
		out.rem = &parts
		out.card = p.card * sel
		out.cost = p.cost + p.card*costPredEval*pl.env.Opts.RemoteCostFactor
	} else {
		pred, err := compileExpr(AndAll(preds), &scope{cols: p.cols})
		if err != nil {
			return nil, err
		}
		out.op = &exec.Filter{Input: p.op, Pred: pred}
		out.card = p.card * sel
		out.cost = p.cost + p.card*costPredEval*float64(len(preds))
	}
	if out.card < 1 {
		out.card = 1
	}
	return &out, nil
}

// applyLeftJoin attaches a deferred LEFT JOIN (local execution only; the
// whole-query remote candidate covers the pushed-down case).
func (pl *planner) applyLeftJoin(state *candSet, right *candSet, on sql.Expr, aliases []*aliasInfo) (*candSet, error) {
	out := &candSet{}
	lefts := localized(pl, state)
	rights := localized(pl, right)
	onConjs := Conjuncts(on)
	for _, lp := range lefts {
		for _, rp := range rights {
			p, err := pl.leftJoinPlans(lp, rp, onConjs)
			if err != nil {
				return nil, err
			}
			out.add(p)
		}
	}
	if out.local == nil {
		return nil, fmt.Errorf("opt: left join produced no plan")
	}
	return out, nil
}

func (pl *planner) leftJoinPlans(a, b *plan, onConjs []sql.Expr) (*plan, error) {
	if a.dyn != nil && pl.env.Opts.PullUpChoosePlan {
		return pl.pullUpThrough(a, func(branch *plan) (*plan, error) {
			return pl.leftJoinPlans(branch, b, onConjs)
		})
	}
	am, err := pl.materialize(a)
	if err != nil {
		return nil, err
	}
	bm, err := pl.materialize(b)
	if err != nil {
		return nil, err
	}
	leftAliases := map[string]bool{}
	for _, c := range am.cols {
		leftAliases[strings.ToLower(c.Table)] = true
	}
	rightAliases := map[string]bool{}
	for _, c := range bm.cols {
		rightAliases[strings.ToLower(c.Table)] = true
	}
	var eqs []eqPred
	var residual []sql.Expr
	for _, c := range onConjs {
		if be, ok := c.(*sql.BinaryExpr); ok && be.Op == sql.OpEQ {
			lc, lok := be.L.(*sql.ColumnRef)
			rc, rok := be.R.(*sql.ColumnRef)
			if lok && rok {
				la, ra := strings.ToLower(lc.Table), strings.ToLower(rc.Table)
				if leftAliases[la] && rightAliases[ra] {
					eqs = append(eqs, eqPred{l: *lc, r: *rc, ast: c})
					continue
				}
				if leftAliases[ra] && rightAliases[la] {
					eqs = append(eqs, eqPred{l: *rc, r: *lc, ast: c})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	cols := append(append([]exec.ColInfo{}, am.cols...), bm.cols...)
	combined := &scope{cols: cols}
	card := pl.joinCard(am.card, bm.card, eqs)
	if card < am.card {
		card = am.card // left join preserves all left rows
	}
	var op exec.Operator
	var cost float64
	if len(eqs) > 0 {
		lScope := &scope{cols: am.cols}
		rScope := &scope{cols: bm.cols}
		var lk, rk []exec.Expr
		for _, e := range eqs {
			le, err := compileExpr(&e.l, lScope)
			if err != nil {
				return nil, err
			}
			re, err := compileExpr(&e.r, rScope)
			if err != nil {
				return nil, err
			}
			lk = append(lk, le)
			rk = append(rk, re)
		}
		var res exec.Expr
		if len(residual) > 0 {
			res, err = compileExpr(AndAll(residual), combined)
			if err != nil {
				return nil, err
			}
		}
		op = &exec.HashJoin{Left: am.op, Right: bm.op, LeftKeys: lk, RightKeys: rk, LeftOuter: true, Residual: res, BuildEst: bm.card}
		cost = am.cost + bm.cost + bm.card*costHashBuild + am.card*costHashProbe + card*costJoinOutRow
	} else {
		var pred exec.Expr
		if len(residual) > 0 {
			pred, err = compileExpr(AndAll(residual), combined)
			if err != nil {
				return nil, err
			}
		}
		op = &exec.NestedLoop{Left: am.op, Right: bm.op, Pred: pred, LeftOuter: true}
		cost = am.cost + bm.cost + am.card*bm.card*costNLPair
	}
	return &plan{
		op: op, loc: Local, cols: cols, card: card, cost: cost,
		usedViews: append(append([]string{}, am.usedViews...), bm.usedViews...),
	}, nil
}

// mapDyn applies a plan transformation to the main and alternative branches
// of a dynamic plan (or directly when the plan is not dynamic).
func (pl *planner) mapDyn(p *plan, f func(*plan) (*plan, error)) (*plan, error) {
	if p.dyn == nil {
		return f(p)
	}
	return pl.pullUpThrough(p, f)
}

// wholeQueryRemote builds the completely-remote candidate: the original
// qualified statement shipped as one SQL text, valid when every relation is
// available on the backend (always true on a cache: shadow tables mirror the
// backend). spjRemote, when non-nil, is the join ordering's merged remote
// candidate — its cost and cardinality anchor this candidate's estimate so
// the two remote forms never disagree about the SPJ core.
func (pl *planner) wholeQueryRemote(aliases []*aliasInfo, leaves []*candSet, stmt *sql.SelectStmt, spjRemote *plan) *plan {
	if !pl.env.IsCache {
		return nil
	}
	var cost, card float64
	if spjRemote != nil {
		cost = spjRemote.cost
		card = spjRemote.card
	} else {
		var cards []float64
		for _, leaf := range leaves {
			r := leaf.remote
			if r == nil {
				return nil // some relation (e.g. local-only derived data) cannot ship
			}
			cost += r.cost
			cards = append(cards, r.card)
		}
		// Rough join cost estimate in increasing-cardinality order.
		sortFloats(cards)
		card = cards[0]
		for i := 1; i < len(cards); i++ {
			joined := card * cards[i] / math.Max(math.Sqrt(math.Max(card, cards[i])), 1)
			cost += (cards[i]*costHashBuild + card*costHashProbe + joined*costJoinOutRow) * pl.env.Opts.RemoteCostFactor
			card = math.Max(joined, 1)
		}
	}
	// Stage costs (agg/sort) on the backend.
	if len(stmt.GroupBy) > 0 || anyAggItems(stmt) {
		groups := pl.estimateGroups(stmt.GroupBy, card)
		cost += (card*costAggRow + groups*costAggGroup) * pl.env.Opts.RemoteCostFactor
		card = groups
	}
	if len(stmt.OrderBy) > 0 && card > 1 {
		cost += card * math.Log2(card+1) * costSortFactor * pl.env.Opts.RemoteCostFactor
	}
	if stmt.Top != nil {
		if lit, ok := stmt.Top.(*sql.Literal); ok {
			card = math.Min(card, float64(lit.Val.Int()))
		}
	}
	cols := pl.finalCols(stmt)
	return &plan{
		rem:  &remoteParts{full: stmt, cols: cols},
		loc:  Remote,
		cols: cols,
		card: math.Max(card, 1),
		cost: cost,
	}
}

func anyAggItems(stmt *sql.SelectStmt) bool {
	for _, it := range stmt.Columns {
		if containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// finalCols computes the output schema of the full statement.
func (pl *planner) finalCols(stmt *sql.SelectStmt) []exec.ColInfo {
	sc := &scope{cols: pl.allAliasCols}
	var cols []exec.ColInfo
	for i, item := range stmt.Columns {
		cols = append(cols, exec.ColInfo{Name: exprName(item, i), Kind: exprKind(item.Expr, sc)})
	}
	return cols
}
