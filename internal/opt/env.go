// Package opt implements cost-based query optimization, including the
// MTCache extensions described in the paper:
//
//   - DataLocation as a physical property of every candidate plan (Local or
//     Remote) with a DataTransfer enforcer whose cost is proportional to the
//     estimated data volume plus a startup cost (§5);
//   - a remote-cost multiplier > 1 so that local execution is favored when
//     costs are close, modeling a heavily loaded backend (§5);
//   - select-project view matching against cached and materialized views,
//     following the Goldstein–Larson view-matching framework (§5, [10]);
//   - dynamic plans for parameterized queries: ChoosePlan implemented as a
//     UnionAll over two branches with complementary startup predicates, with
//     weighted-average costing Fl·Cl + (1−Fl)·Cr (§5.1);
//   - ChoosePlan pull-up above joins, letting the optimizer push larger
//     subexpressions to the backend (§5.1.2);
//   - mixed-result plans for regular materialized views, disallowed for
//     cached views because they could combine data of different freshness
//     (§5.1.1).
package opt

import (
	"mtcache/internal/catalog"
)

// Location is the DataLocation physical property.
type Location uint8

const (
	// Local data is on this server (cached views and their indexes on a
	// cache server; everything on a backend server).
	Local Location = iota
	// Remote data lives on the backend server and needs a DataTransfer to
	// be consumed locally.
	Remote
)

func (l Location) String() string {
	if l == Local {
		return "Local"
	}
	return "Remote"
}

// Options tunes the optimizer. The zero value is not usable; call
// DefaultOptions.
type Options struct {
	// RemoteCostFactor multiplies the estimated cost of every remote
	// operation. The paper sets it "greater than 1.0" to model that the
	// backend is shared and likely loaded.
	RemoteCostFactor float64

	// TransferStartupCost is the fixed cost of one DataTransfer.
	TransferStartupCost float64

	// TransferCostPerByte is the per-byte cost of one DataTransfer.
	TransferCostPerByte float64

	// EnableDynamicPlans produces ChoosePlan branches for parameterized
	// queries (paper §5.1). Disabling it is an ablation: the optimizer then
	// uses the cached view only when containment holds for all parameter
	// values.
	EnableDynamicPlans bool

	// PullUpChoosePlan propagates ChoosePlan above joins and other
	// operators (paper §5.1.2). Disabling it freezes ChoosePlan at the
	// leaves.
	PullUpChoosePlan bool

	// AllowMixedResults permits plans whose result mixes view rows and
	// remote base-table rows. Per §5.1.1 this is only ever applied to
	// regular materialized views; cached views never produce mixed results
	// regardless of this flag, because the cached view may be stale.
	AllowMixedResults bool

	// AlwaysUseCache is the DBCache-style heuristic ablation: when a cached
	// view matches, use it unconditionally instead of cost-comparing with
	// the remote plan.
	AlwaysUseCache bool

	// MaxDOP caps intra-query parallelism. The effective cap is
	// min(MaxDOP, GOMAXPROCS); values < 2 disable parallel plans entirely,
	// so a serial plan stays byte-identical to the pre-parallelism planner
	// output.
	MaxDOP int

	// ParallelStartupCost is the per-worker cost of starting an Exchange
	// (goroutine + partition binding + channel traffic floor). Parallelism
	// is chosen only when the pipeline cost it divides outweighs this, so
	// small lookups stay serial.
	ParallelStartupCost float64
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		RemoteCostFactor:    1.4,
		TransferStartupCost: 2000,
		TransferCostPerByte: 0.15,
		EnableDynamicPlans:  true,
		PullUpChoosePlan:    true,
		AllowMixedResults:   true,
		MaxDOP:              8,
		ParallelStartupCost: 400,
	}
}

// Env is everything the optimizer needs about the server it runs on.
type Env struct {
	Cat *catalog.Catalog

	// IsCache marks an MTCache server: base tables (shadow tables) are
	// Remote, cached views are Local. On a backend server everything is
	// Local and no DataTransfer is ever needed.
	IsCache bool

	// HasFreshness marks that the query declared WITH FRESHNESS;
	// MaxStaleness is its bound in seconds. Without the clause any
	// staleness is acceptable (the paper's default caching behaviour).
	HasFreshness bool
	MaxStaleness float64

	// Staleness reports a cached view's current staleness in seconds.
	// nil (or a false second return) means unknown, which under a declared
	// bound counts as too stale.
	Staleness func(viewName string) (float64, bool)

	// Intermediates lists the synthetic materialized-view catalog entries
	// of the intermediate-result cache (never stored in Cat; they come and
	// go with admission/eviction). nil when the cache is disabled.
	Intermediates func() []*catalog.Table

	// IntermediateStaleness reports an intermediate's staleness in seconds
	// (false when the name is not a live intermediate).
	IntermediateStaleness func(name string) (float64, bool)

	Opts Options
}

// viewFreshEnough applies the freshness bound to a cached view.
func (e *Env) viewFreshEnough(viewName string) bool {
	if !e.HasFreshness {
		return true
	}
	if e.Staleness == nil {
		return false
	}
	s, ok := e.Staleness(viewName)
	return ok && s <= e.MaxStaleness
}

// intermediateFreshEnough gates an intermediate result. Unlike cached
// views — which replication keeps continuously maintained, so "no
// freshness clause" accepts any staleness — an invalidated intermediate
// is a point-in-time snapshot known to be out of date: without WITH
// FRESHNESS only a fresh (never-invalidated-since-computed) intermediate
// is usable; under a declared bound a stale one is usable while its age
// stays within the bound.
func (e *Env) intermediateFreshEnough(name string) bool {
	if e.IntermediateStaleness == nil {
		return false
	}
	s, ok := e.IntermediateStaleness(name)
	if !ok {
		return false
	}
	if s <= 0 {
		return true
	}
	return e.HasFreshness && s <= e.MaxStaleness
}

// locationOf returns the DataLocation of a table or view, per the paper's
// rule: "cached views and their indexes are Local and all other data sources
// are Remote" (on a cache server).
func (e *Env) locationOf(t *catalog.Table) Location {
	// Virtual system tables (sys.*) describe *this* server's runtime state;
	// they are always scanned locally, on backend and cache alike.
	if t.Virtual {
		return Local
	}
	if !e.IsCache {
		return Local
	}
	if t.Cached || (t.IsView && t.Materialized && !t.Cached && localMV(t)) {
		return Local
	}
	return Remote
}

// localMV reports whether a materialized view on a cache server is local.
// On a cache server the only materialized views that exist locally are the
// cached ones; shadowed backend MV definitions are remote.
func localMV(t *catalog.Table) bool { return t.Cached }

// Cost-model unit constants. One unit ≈ the cost of scanning one row.
const (
	costScanRow    = 1.0
	costSeekBase   = 4.0  // B-tree descent
	costSeekRow    = 1.1  // per row fetched through an index
	costPredEval   = 0.15 // per conjunct per row
	costProjectRow = 0.05
	costHashBuild  = 1.6
	costHashProbe  = 1.2
	costJoinOutRow = 0.3
	costNLPair     = 0.35
	costSortFactor = 0.3 // × n·log₂(n)
	costAggRow     = 1.1
	costAggGroup   = 0.6

	costExchangeRow = 0.05 // per row gathered through an Exchange channel
)
