package opt

import (
	"errors"

	"mtcache/internal/sql"
)

// ErrNoLocalPlan reports that a query cannot be answered from local data
// alone — some required table or column is not covered by a cached view.
var ErrNoLocalPlan = errors.New("opt: no fully local plan")

// OptimizeLocalOnly plans a query under the constraint that no DataTransfer
// may appear anywhere in the plan. It is the graceful-degradation path: when
// the backend is unreachable and the query declared no freshness bound, the
// engine re-plans onto the (possibly stale) cached views and answers locally
// rather than failing.
//
// The constraint is enforced by steering the search — remote operations cost
// effectively infinity, dynamic plans (whose remote branch could still reach
// the backend at run time) and mixed results are disabled, and a matching
// cached view is used unconditionally — and then verified on the result: any
// plan that still contains a DataTransfer is rejected with ErrNoLocalPlan.
func OptimizeLocalOnly(stmt *sql.SelectStmt, env *Env) (*Plan, error) {
	local := *env
	local.Opts.RemoteCostFactor = 1e12
	local.Opts.EnableDynamicPlans = false
	local.Opts.PullUpChoosePlan = false
	local.Opts.AllowMixedResults = false
	local.Opts.AlwaysUseCache = true
	p, err := Optimize(stmt, &local)
	if err != nil {
		return nil, err
	}
	if !p.FullyLocal || p.Dynamic {
		return nil, ErrNoLocalPlan
	}
	return p, nil
}
