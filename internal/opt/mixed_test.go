package opt

import (
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// mixedSetup builds a BACKEND with a regular (non-cached) materialized view
// mv1000 = customers with cid <= 1000, populated and indexed.
func mixedSetup(t *testing.T) (*Env, *storage.Store) {
	t.Helper()
	b := newBackend(t)
	def := sql.MustParseSelect("SELECT cid, cname, caddress FROM customer WHERE cid <= 1000")
	mv := &catalog.Table{
		Name: "mv1000",
		Columns: []catalog.Column{
			{Name: "cid", Type: types.KindInt},
			{Name: "cname", Type: types.KindString},
			{Name: "caddress", Type: types.KindString},
		},
		PrimaryKey: []int{0}, IsView: true, Materialized: true, ViewDef: def,
	}
	if err := b.cat.AddTable(mv); err != nil {
		t.Fatal(err)
	}
	b.store.CreateTable(mv)
	tx := b.store.Begin(true)
	var rows []types.Row
	btx := b.store // direct fill
	_ = btx
	src := tx.Table("customer")
	src.Scan(func(_ storage.RowID, r types.Row) bool {
		if r[0].Int() <= 1000 {
			row := types.Row{r[0], r[1], r[2]}
			tx.Insert("mv1000", row)
			rows = append(rows, row)
		}
		return true
	})
	tx.CommitUnlogged()
	mv.Stats = catalog.BuildTableStats(mv.ColumnNames(), rows)
	return b.env, b.store
}

// Mixed-result plans (§5.1.1, figure 3): for a regular materialized view
// the guard-false branch reads only the REMAINDER of the base table, and
// both branches contribute rows.
func TestMixedResultPlanExecution(t *testing.T) {
	env, store := mixedSetup(t)
	env.Opts.AllowMixedResults = true
	p := optimize(t, env, "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid")

	run := func(v int64) (*exec.ResultSet, *exec.Counters) {
		tx := store.Begin(false)
		defer tx.Abort()
		ctr := &exec.Counters{}
		rs, err := exec.Run(p.Root, &exec.Ctx{Txn: tx, Params: exec.Params{"cid": types.NewInt(v)}, Counters: ctr})
		if err != nil {
			t.Fatalf("execute: %v\n%s", err, ExplainOperator(p.Root))
		}
		return rs, ctr
	}
	// Inside the view: exactly the view rows.
	rs, _ := run(700)
	if len(rs.Rows) != 700 {
		t.Fatalf("in-view rows: %d", len(rs.Rows))
	}
	// Outside the view: view rows + remainder, no duplicates.
	rs, _ = run(1500)
	if len(rs.Rows) != 1500 {
		t.Fatalf("mixed rows: %d\n%s", len(rs.Rows), ExplainOperator(p.Root))
	}
	seen := map[int64]bool{}
	for _, row := range rs.Rows {
		id := row[0].Int()
		if seen[id] {
			t.Fatalf("duplicate cid %d in mixed result", id)
		}
		seen[id] = true
	}
}

func TestMixedResultDisallowedForCachedViews(t *testing.T) {
	// On a cache server, even with AllowMixedResults on, cached views never
	// produce mixed results (their rows may be stale — §5.1.1).
	b := newBackend(t)
	env, _ := newCache(t, b)
	env.Opts.AllowMixedResults = true
	p := optimize(t, env, "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid")
	if !p.Dynamic {
		t.Fatalf("expected a (non-mixed) dynamic plan:\n%s", Explain(p))
	}
	// A dynamic plan prunes exactly one branch per execution; a mixed plan
	// would leave the view branch guard-free. Verify by structure: the
	// UnionAll must have two StartupFilters.
	u, ok := p.Root.(*exec.UnionAll)
	if !ok {
		t.Fatalf("expected UnionAll root:\n%s", ExplainOperator(p.Root))
	}
	for _, in := range u.Inputs {
		if _, ok := in.(*exec.StartupFilter); !ok {
			t.Fatalf("cached-view plan has an unguarded branch (mixed result):\n%s", ExplainOperator(p.Root))
		}
	}
}

// A dynamic view on the RIGHT side of a join exercises pullUpJoinRight.
func TestChoosePlanPullUpRightSide(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	// orders first in FROM so the view-backed customer lands on the right.
	p := optimize(t, env, `SELECT o.total, c.cname FROM orders o, customer c
		WHERE o.okey <= 40 AND c.cid = o.ckey AND c.cid <= @key`)
	if !p.Dynamic {
		t.Skipf("join order put the dynamic side left; structure:\n%s", Explain(p))
	}
	tx := store.Begin(false)
	defer tx.Abort()
	ctr := &exec.Counters{}
	rs, err := exec.Run(p.Root, &exec.Ctx{Txn: tx, Params: exec.Params{"key": types.NewInt(900)}, Remote: b, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 40 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
}

// A three-table query with a predicate spanning all three exercises
// filterPlan (residual application after the join tree completes).
func TestResidualPredicateOverThreeTables(t *testing.T) {
	b := newBackend(t)
	// third table
	seg := &catalog.Table{
		Name: "segments",
		Columns: []catalog.Column{
			{Name: "sid", Type: types.KindInt},
			{Name: "sname", Type: types.KindString},
		},
		PrimaryKey: []int{0},
	}
	b.cat.AddTable(seg)
	b.store.CreateTable(seg)
	tx := b.store.Begin(true)
	var rows []types.Row
	for i := int64(0); i < 7; i++ {
		row := types.Row{types.NewInt(i), types.NewString("seg")}
		tx.Insert("segments", row)
		rows = append(rows, row)
	}
	tx.CommitUnlogged()
	seg.Stats = catalog.BuildTableStats(seg.ColumnNames(), rows)

	p := optimize(t, b.env, `SELECT c.cid FROM customer c, orders o, segments s
		WHERE c.cid = o.ckey AND c.segment = s.sid
		AND o.okey + s.sid < c.cid + 100 AND o.okey <= 20`)
	rs, _ := execute(t, p, b.store, nil, nil)
	// Ground truth: for okey 1..20, ckey = okey, segment = okey%7; predicate
	// okey + sid < cid + 100 always true here (okey<=20, cid=okey).
	if len(rs.Rows) != 20 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
}
