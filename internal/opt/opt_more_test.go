package opt

import (
	"strings"
	"testing"

	"mtcache/internal/catalog"
	"mtcache/internal/exec"
	"mtcache/internal/sql"
	"mtcache/internal/types"
)

// Additional optimizer coverage: left joins, derived tables, overlapping
// views, plan explain output, and error paths.

func TestBackendLeftJoin(t *testing.T) {
	b := newBackend(t)
	// Customers with cid 19990..19999; most have no orders (ckey ranges over
	// i%nCustomers for 5000 orders → only low cids match).
	p := optimize(t, b.env, `SELECT c.cid, o.total FROM customer c
		LEFT JOIN orders o ON c.cid = o.ckey
		WHERE c.cid BETWEEN 19990 AND 19999`)
	rs, _ := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 10 {
		t.Fatalf("left join rows: %d", len(rs.Rows))
	}
	nulls := 0
	for _, row := range rs.Rows {
		if row[1].IsNull() {
			nulls++
		}
	}
	if nulls != 10 {
		t.Errorf("unmatched customers should have NULL totals: %d/10", nulls)
	}
}

func TestBackendLeftJoinWithMatches(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, `SELECT c.cid, COUNT(o.okey) AS n FROM customer c
		LEFT JOIN orders o ON c.cid = o.ckey
		WHERE c.cid <= 3
		GROUP BY c.cid ORDER BY c.cid`)
	rs, _ := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 3 {
		t.Fatalf("groups: %d", len(rs.Rows))
	}
	// Every low cid has exactly one order (okey = i, ckey = i%20000).
	for _, row := range rs.Rows {
		if row[1].Int() != 1 {
			t.Errorf("cid %d count %d", row[0].Int(), row[1].Int())
		}
	}
}

func TestCacheDerivedTableUsesView(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	// MAX over the view's key range: the derived block should match the
	// cached view and stay local.
	p := optimize(t, env, `SELECT x.m FROM (SELECT MAX(cid) AS m FROM customer WHERE cid <= 900) AS x`)
	rs, ctr := execute(t, p, store, b, nil)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != 900 {
		t.Fatalf("derived result: %v", rs.Rows)
	}
	if ctr.RemoteQueries != 0 {
		t.Errorf("derived block inside the view should be local (remote=%d):\n%s",
			ctr.RemoteQueries, ExplainOperator(p.Root))
	}
}

func TestOverlappingViewsPickCheapest(t *testing.T) {
	b := newBackend(t)
	env, store := newCache(t, b)
	// Add a second, smaller cached view covering cid <= 100.
	def := sql.MustParseSelect("SELECT cid, cname, caddress FROM customer WHERE cid <= 100")
	small := &catalog.Table{
		Name: "Cust100",
		Columns: []catalog.Column{
			{Name: "cid", Type: types.KindInt},
			{Name: "cname", Type: types.KindString},
			{Name: "caddress", Type: types.KindString},
		},
		PrimaryKey: []int{0}, IsView: true, Materialized: true, Cached: true, ViewDef: def,
	}
	if err := env.Cat.AddTable(small); err != nil {
		t.Fatal(err)
	}
	store.CreateTable(small)
	tx := store.Begin(true)
	var rows []types.Row
	for i := int64(1); i <= 100; i++ {
		row := types.Row{types.NewInt(i), types.NewString("name"), types.NewString("addr")}
		tx.Insert("Cust100", row)
		rows = append(rows, row)
	}
	tx.CommitUnlogged()
	small.Stats = catalog.BuildTableStats(small.ColumnNames(), rows)

	// A query both views contain: scanning the smaller view is cheaper.
	p := optimize(t, env, "SELECT cname FROM customer WHERE cid <= 50")
	if len(p.UsedViews) != 1 || p.UsedViews[0] != "Cust100" {
		t.Errorf("expected the smaller view, got %v\n%s", p.UsedViews, Explain(p))
	}
	rs, _ := execute(t, p, store, b, nil)
	if len(rs.Rows) != 50 {
		t.Errorf("rows: %d", len(rs.Rows))
	}
}

func TestExplainShowsStructure(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)
	p := optimize(t, env, "SELECT cid FROM customer WHERE cid <= @cid")
	text := Explain(p)
	for _, want := range []string{"dynamic", "UnionAll", "StartupFilter", "DataTransfer", "Cust1000"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}

func TestOptimizeErrors(t *testing.T) {
	b := newBackend(t)
	bad := []string{
		"SELECT nope FROM customer",
		"SELECT cid FROM missing_table",
		"SELECT m.cid FROM customer c",
	}
	for _, q := range bad {
		if _, err := Optimize(sql.MustParseSelect(q), b.env); err == nil {
			t.Errorf("Optimize(%q) should fail", q)
		}
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	b := newBackend(t)
	// `total` exists only in orders, but `cid`... make truly ambiguous:
	// self-join exposes duplicate column names without qualification.
	q := "SELECT cname FROM customer a, customer b WHERE a.cid = b.cid"
	if _, err := Optimize(sql.MustParseSelect(q), b.env); err == nil {
		t.Error("ambiguous cname in self-join should fail")
	}
}

func TestCrossJoinWithoutPredicate(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, `SELECT COUNT(*) FROM
		(SELECT cid FROM customer WHERE cid <= 3) AS a,
		(SELECT okey FROM orders WHERE okey <= 4) AS b`)
	rs, _ := execute(t, p, b.store, nil, nil)
	if rs.Rows[0][0].Int() != 12 {
		t.Errorf("cross join count: %v", rs.Rows[0][0])
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, "SELECT 1 + 2 AS three, 'x' AS s")
	rs, _ := execute(t, p, b.store, nil, nil)
	if rs.Rows[0][0].Int() != 3 || rs.Rows[0][1].Str() != "x" {
		t.Errorf("const select: %v", rs.Rows)
	}
	if rs.Cols[0].Name != "three" {
		t.Errorf("alias: %v", rs.Cols)
	}
}

func TestDistinctQuery(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, "SELECT DISTINCT segment FROM customer WHERE cid <= 100")
	rs, _ := execute(t, p, b.store, nil, nil)
	if len(rs.Rows) != 7 {
		t.Errorf("distinct segments: %d", len(rs.Rows))
	}
}

func TestParameterizedTop(t *testing.T) {
	b := newBackend(t)
	p := optimize(t, b.env, "SELECT TOP @n cid FROM customer ORDER BY cid")
	tx := b.store.Begin(false)
	defer tx.Abort()
	rs, err := exec.Run(p.Root, &exec.Ctx{Txn: tx, Params: exec.Params{"n": types.NewInt(7)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 7 {
		t.Errorf("TOP @n rows: %d", len(rs.Rows))
	}
}

func TestViewMatchingDisabledOnBackendMVsWhenCache(t *testing.T) {
	// A cache shadowing a backend that HAS a materialized view definition:
	// the shadow MV must not be treated as local data.
	b := newBackend(t)
	env, store := newCache(t, b)
	shadowMV := &catalog.Table{
		Name: "mv_shadow", IsView: true, Materialized: true, // NOT Cached
		ViewDef: sql.MustParseSelect("SELECT cid FROM customer WHERE cid <= 5000"),
		Columns: []catalog.Column{{Name: "cid", Type: types.KindInt}},
		Stats:   catalog.NewTableStats(),
	}
	if err := env.Cat.AddTable(shadowMV); err != nil {
		t.Fatal(err)
	}
	p := optimize(t, env, "SELECT cid FROM customer WHERE cid <= 3000")
	for _, v := range p.UsedViews {
		if strings.EqualFold(v, "mv_shadow") {
			t.Fatalf("shadowed backend MV used as local data:\n%s", Explain(p))
		}
	}
	rs, _ := execute(t, p, store, b, nil)
	if len(rs.Rows) != 3000 {
		t.Errorf("rows: %d", len(rs.Rows))
	}
}

func TestGuardFractionWeightsCost(t *testing.T) {
	b := newBackend(t)
	env, _ := newCache(t, b)
	p := optimize(t, env, "SELECT cid FROM customer WHERE cid <= @cid")
	if !p.Dynamic {
		t.Fatal("expected dynamic plan")
	}
	// Fl for @cid <= 1000 under uniform [1, 20000] ≈ 0.05.
	if p.GuardFraction < 0.03 || p.GuardFraction > 0.08 {
		t.Errorf("Fl = %f, want ≈ 0.05", p.GuardFraction)
	}
}
