// Package resilience provides the failure taxonomy and retry policy shared
// by the wire transport and the engine's graceful-degradation path.
//
// The paper's value proposition is that a mid-tier cache degrades gracefully
// (§2, §6): when the backend is slow or unreachable, local plans and
// stale-tolerant reads keep serving. That requires every remote failure to
// be classified — is it worth retrying? may the engine fall back to local,
// possibly stale, data? — and retried under a bounded, jittered backoff so a
// struggling backend is not stampeded.
//
// The taxonomy is two sentinel errors plus a terminal marker:
//
//   - ErrTimeout: the request exceeded its deadline. The backend may be up
//     but slow (or the network black-holed). Retryable.
//   - ErrBackendDown: the connection could not be established or broke
//     mid-request. Retryable after re-dialing.
//   - Terminal(err): wraps an otherwise-retryable error to stop retries —
//     used for non-idempotent requests that may already have executed.
//
// Application-level errors reported by the backend (bad SQL, constraint
// violations) wrap neither sentinel and are never retried: the request was
// delivered and executed; retrying cannot change the answer.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// ErrTimeout marks a request that exceeded its I/O deadline.
var ErrTimeout = errors.New("backend request timed out")

// ErrBackendDown marks a connection that could not be established or broke
// before a response arrived.
var ErrBackendDown = errors.New("backend unreachable")

// terminalError wraps a transport error whose request must not be retried
// (e.g. a non-idempotent request that may already have executed).
type terminalError struct{ err error }

func (t *terminalError) Error() string { return t.err.Error() }
func (t *terminalError) Unwrap() error { return t.err }

// Terminal marks err as non-retryable while preserving its chain, so
// Degradable still sees the underlying sentinel.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// Retryable reports whether a failed request may be reissued: the error
// chain carries a transport sentinel and no Terminal marker.
func Retryable(err error) bool {
	var t *terminalError
	if errors.As(err, &t) {
		return false
	}
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrBackendDown)
}

// Degradable reports whether a failed remote read may fall back to local,
// possibly stale, data: the failure is a transport failure (the backend
// never answered), not an application error (the backend answered "no").
func Degradable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrBackendDown)
}

// Classify wraps a raw transport error with the matching sentinel: timeouts
// become ErrTimeout, everything else ErrBackendDown. Errors already carrying
// a sentinel pass through unchanged; nil stays nil.
func Classify(err error) error {
	if err == nil || Degradable(err) {
		return err
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return fmt.Errorf("%w: %v", ErrBackendDown, err)
}

// Policy bounds the retry loop for one logical request.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first.
	MaxAttempts int

	// BaseDelay is the backoff before the first retry; each further retry
	// multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64

	// Jitter spreads each delay uniformly over ±Jitter·delay so synchronized
	// clients do not retry in lockstep.
	Jitter float64

	// RequestTimeout is the per-round-trip I/O deadline. Zero disables
	// deadlines (not recommended: a stalled backend then hangs the caller).
	RequestTimeout time.Duration

	// PoolSize is the number of multiplexed connections the client keeps to
	// the backend. Each connection carries any number of concurrent
	// requests, so the pool exists for parallel serialization and failure
	// isolation, not per-request checkout; a handful of connections is
	// plenty. <= 0 selects the default (4).
	PoolSize int
}

// DefaultPolicy returns a policy suited to LAN backends: 4 attempts,
// 10ms..500ms exponential backoff with 25% jitter, 2s request deadline,
// 4 pooled connections.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:    4,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       500 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.25,
		RequestTimeout: 2 * time.Second,
		PoolSize:       4,
	}
}

// Delay returns the jittered backoff before retry n (n >= 1). rng may be
// nil, in which case the shared math/rand source is used.
func (p Policy) Delay(n int, rng *rand.Rand) time.Duration {
	if n < 1 {
		n = 1
	}
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult <= 1 {
		mult = 1
	}
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		f := rand.Float64
		if rng != nil {
			f = rng.Float64
		}
		d *= 1 + p.Jitter*(2*f()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Do runs op under the policy: it is retried while it fails with a
// Retryable error, sleeping the backoff between attempts. The attempt index
// (0-based) is passed to op. The last error is returned.
func Do(p Policy, op func(attempt int) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(p.Delay(attempt, nil))
		}
		if err = op(attempt); err == nil || !Retryable(err) {
			return err
		}
	}
	return err
}
