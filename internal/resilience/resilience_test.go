package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"
)

func TestClassifyTimeout(t *testing.T) {
	err := Classify(&net.OpError{Op: "read", Err: &timeoutErr{}})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout not classified: %v", err)
	}
	if errors.Is(err, ErrBackendDown) {
		t.Fatal("timeout must not also be backend-down")
	}
}

type timeoutErr struct{}

func (*timeoutErr) Error() string   { return "i/o timeout" }
func (*timeoutErr) Timeout() bool   { return true }
func (*timeoutErr) Temporary() bool { return true }

func TestClassifyConnectionError(t *testing.T) {
	err := Classify(errors.New("connection reset by peer"))
	if !errors.Is(err, ErrBackendDown) {
		t.Fatalf("transport error not classified: %v", err)
	}
}

func TestClassifyPassthrough(t *testing.T) {
	in := fmt.Errorf("wrapped: %w", ErrBackendDown)
	if out := Classify(in); out != in {
		t.Error("already-classified errors must pass through")
	}
	if Classify(nil) != nil {
		t.Error("nil must stay nil")
	}
}

func TestTerminalStopsRetryKeepsDegradable(t *testing.T) {
	base := Classify(errors.New("broken pipe"))
	term := Terminal(base)
	if Retryable(term) {
		t.Fatal("terminal errors must not be retryable")
	}
	if !Degradable(term) {
		t.Fatal("terminal transport errors must stay degradable")
	}
	if !Retryable(base) {
		t.Fatal("classified transport errors must be retryable")
	}
}

func TestServerErrorsNotRetryable(t *testing.T) {
	appErr := errors.New("table does not exist")
	if Retryable(appErr) || Degradable(appErr) {
		t.Fatal("application errors are terminal and not degradable")
	}
}

func TestDelayIsBoundedExponential(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2}
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		got := p.Delay(i+1, rng)
		if got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterStaysInBand(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.25}
	rng := rand.New(rand.NewSource(7))
	lo, hi := 75*time.Millisecond, 125*time.Millisecond
	varied := false
	prev := time.Duration(-1)
	for i := 0; i < 200; i++ {
		d := p.Delay(1, rng)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if prev >= 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Error("jitter produced constant delays")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, Multiplier: 1}
	calls := 0
	err := Do(p, func(int) error {
		calls++
		if calls < 3 {
			return Classify(errors.New("conn refused"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoStopsOnTerminal(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	appErr := errors.New("syntax error")
	err := Do(p, func(int) error { calls++; return appErr })
	if !errors.Is(err, appErr) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, Multiplier: 1}
	calls := 0
	err := Do(p, func(int) error { calls++; return Classify(errors.New("down")) })
	if calls != 3 {
		t.Fatalf("calls=%d", calls)
	}
	if !errors.Is(err, ErrBackendDown) {
		t.Fatalf("final error lost its classification: %v", err)
	}
}
