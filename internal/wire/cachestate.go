package wire

// cachestate.go persists a RemoteCache's durable state: one checkpoint file
// holding, per cached view, the view's rows and the highest replication LSN
// applied to them. A cache applies pulled batches unlogged (replicated
// changes must not re-enter a WAL), so its durability story is
// checkpoint + resubscribe rather than log replay: on restart it reloads the
// checkpointed rows and asks the backend to resume the change stream at the
// checkpointed LSN (reqResume). Only when the backend can no longer serve
// that position does it fall back to a full reseed.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"mtcache/internal/storage"
	"mtcache/internal/types"
)

const (
	cacheCkptMagic = "MTCCKPT1"
	cacheCkptFile  = "cache-state.ckpt"
)

var cacheCRCTable = crc32.MakeTable(crc32.Castagnoli)

// cacheCheckpoint is the serialized durable state of one RemoteCache.
type cacheCheckpoint struct {
	Views []cacheViewState
}

// cacheViewState is one cached view's rows plus its replication cursor: the
// rows reflect every pulled batch up through LastLSN, atomically (the
// checkpoint is taken under pullMu, so no pull round is half-applied).
type cacheViewState struct {
	Name    string
	LastLSN storage.LSN
	Rows    []types.Row
}

// writeCacheCheckpoint durably writes the state file: temp file, fsync,
// rename, directory fsync — a crash mid-write leaves the previous
// checkpoint intact.
func writeCacheCheckpoint(dir string, ck *cacheCheckpoint) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("wire: encode cache checkpoint: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(cacheCkptMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload.Bytes(), cacheCRCTable))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, cacheCkptFile+".tmp")
	final := filepath.Join(dir, cacheCkptFile)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("wire: write cache checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wire: sync cache checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// loadCacheCheckpoint reads the state file. A missing file returns (nil,
// nil) — a fresh cache; a damaged file returns an error and the caller
// reseeds from the backend (the cache's source of truth is always the
// backend, so a lost checkpoint costs a reseed, never correctness).
func loadCacheCheckpoint(dir string) (*cacheCheckpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, cacheCkptFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < len(cacheCkptMagic)+8 || string(data[:len(cacheCkptMagic)]) != cacheCkptMagic {
		return nil, errors.New("wire: cache checkpoint: bad magic")
	}
	body := data[len(cacheCkptMagic):]
	n := binary.LittleEndian.Uint32(body[0:4])
	sum := binary.LittleEndian.Uint32(body[4:8])
	payload := body[8:]
	if uint32(len(payload)) < n {
		return nil, io.ErrUnexpectedEOF
	}
	payload = payload[:n]
	if crc32.Checksum(payload, cacheCRCTable) != sum {
		return nil, errors.New("wire: cache checkpoint: CRC mismatch")
	}
	ck := new(cacheCheckpoint)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(ck); err != nil {
		return nil, fmt.Errorf("wire: decode cache checkpoint: %w", err)
	}
	return ck, nil
}
