package wire

import (
	"fmt"
	"testing"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/metrics"
)

// TestCacheRestartResumesFromCheckpoint is the deployed-pair recovery test:
// a cache with a data directory checkpoints its state, "crashes" (the
// process object is discarded), and a replacement cache over the same data
// directory re-creates the same cached view. The replacement must restore
// the view from its local checkpoint and resume the change stream at the
// checkpointed LSN — observable as a wire.view_resumed count with no new
// wire.view_seeded — and immediately serve every pre-crash commit
// (read-your-writes across the restart). Commits made while the cache was
// down arrive through the resumed stream, not a reseed.
func TestCacheRestartResumesFromCheckpoint(t *testing.T) {
	b, srv := newWiredBackend(t)
	dir := t.TempDir()
	ddl := "CREATE CACHED VIEW tires AS SELECT id, name, qty FROM part WHERE type = 'Tire'"

	seeded := metrics.Default.Counter("wire.view_seeded")
	resumed := metrics.Default.Counter("wire.view_resumed")
	seeded0, resumed0 := seeded.Value(), resumed.Value()

	c1 := dial(t, srv)
	rc1, err := NewRemoteCacheDurable("cache", c1, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc1.CreateCachedView(ddl); err != nil {
		t.Fatal(err)
	}
	if seeded.Value() != seeded0+1 {
		t.Fatalf("fresh cache did not seed: %d", seeded.Value()-seeded0)
	}

	// Commit through the cache (forwarded DML), pull it back, checkpoint.
	if _, err := rc1.DB.Exec("INSERT INTO part (id, name, type, qty) VALUES (5001, 'precrash', 'Tire', 42)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rc1.Pull(); err != nil {
		t.Fatal(err)
	}
	preLSN := rc1.LastLSN("tires")
	if preLSN == 0 {
		t.Fatal("no LSN applied before the checkpoint")
	}
	if err := rc1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash: no graceful shutdown, just drop the process state. (The wire
	// connection closing is the only thing the backend observes.)
	c1.Close()

	// A commit lands while the cache is down.
	if _, err := b.Exec("INSERT INTO part (id, name, type, qty) VALUES (5002, 'downtime', 'Tire', 43)", nil); err != nil {
		t.Fatal(err)
	}

	// Replacement process: same name, same data directory, same view DDL.
	c2 := dial(t, srv)
	rc2, err := NewRemoteCacheDurable("cache", c2, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc2.CreateCachedView(ddl); err != nil {
		t.Fatal(err)
	}
	if resumed.Value() != resumed0+1 {
		t.Fatalf("restarted cache did not resume (resumed=%d)", resumed.Value()-resumed0)
	}
	if seeded.Value() != seeded0+1 {
		t.Fatalf("restarted cache reseeded instead of resuming (seeded=%d)", seeded.Value()-seeded0)
	}
	if got := rc2.LastLSN("tires"); got != preLSN {
		t.Fatalf("resume cursor %d, want checkpointed %d", got, preLSN)
	}

	// Read-your-writes for pre-crash commits, straight from the local
	// checkpoint — before any pull.
	res, err := rc2.DB.Exec("SELECT qty FROM part WHERE type = 'Tire' AND id = 5001", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("pre-crash commit not visible after restart: %v", res.Rows)
	}
	if res.Counters.RemoteQueries != 0 {
		t.Fatalf("pre-crash read went remote (%d remote queries)", res.Counters.RemoteQueries)
	}

	// The downtime commit arrives through the resumed stream.
	if _, err := rc2.Pull(); err != nil {
		t.Fatal(err)
	}
	res, err = rc2.DB.Exec("SELECT qty FROM part WHERE type = 'Tire' AND id = 5002", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 43 {
		t.Fatalf("downtime commit not delivered on the resumed stream: %v", res.Rows)
	}
	if got, want := rc2.DB.TableRowCount("tires"), 252; got != want {
		t.Fatalf("view has %d rows after resume, want %d", got, want)
	}
}

// TestCacheRestartReseedsWhenBackendForgot covers the fallback: when the
// backend restarted too (losing subscriptions and log), resume is refused
// and the cache transparently reseeds from a fresh snapshot.
func TestCacheRestartReseedsWhenBackendForgot(t *testing.T) {
	_, srv := newWiredBackend(t)
	dir := t.TempDir()
	ddl := "CREATE CACHED VIEW tires AS SELECT id, name, qty FROM part WHERE type = 'Tire'"

	c1 := dial(t, srv)
	rc1, err := NewRemoteCacheDurable("cache", c1, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc1.CreateCachedView(ddl); err != nil {
		t.Fatal(err)
	}
	if _, err := rc1.Pull(); err != nil {
		t.Fatal(err)
	}
	if err := rc1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Replace the whole backend: a brand-new server with the same schema but
	// no subscriptions and a much shorter log (100 rows, so the old
	// checkpoint's ~1000 LSN lies past its WAL end). The cache's resume
	// position is meaningless here and must be refused.
	b2 := core.NewBackend("backend")
	if err := b2.ExecScript(`
		CREATE TABLE part (
			id INT PRIMARY KEY,
			name VARCHAR(40) NOT NULL,
			type VARCHAR(20),
			qty INT
		);
	`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		typ := "Tire"
		if i%4 != 0 {
			typ = "Bolt"
		}
		stmt := fmt.Sprintf("INSERT INTO part (id, name, type, qty) VALUES (%d, 'part%d', '%s', %d)", i, i, typ, i)
		if _, err := b2.Exec(stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	b2.DB.Analyze()
	srv2, err := Serve(b2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)

	seeded := metrics.Default.Counter("wire.view_seeded")
	seeded0 := seeded.Value()
	c2 := dial(t, srv2)
	rc2, err := NewRemoteCacheDurable("cache", c2, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc2.CreateCachedView(ddl); err != nil {
		t.Fatal(err)
	}
	if seeded.Value() != seeded0+1 {
		t.Fatal("cache did not reseed against the replaced backend")
	}
	if got := rc2.DB.TableRowCount("tires"); got != 25 {
		t.Fatalf("reseeded view has %d rows, want 25", got)
	}
	// And the reseeded subscription streams normally.
	if _, err := b2.Exec("UPDATE part SET qty = 777 WHERE id = 4", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := rc2.Pull(); err != nil {
			t.Fatal(err)
		}
		res, err := rc2.DB.Exec("SELECT qty FROM part WHERE type = 'Tire' AND id = 4", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 1 && res.Rows[0][0].Int() == 777 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update never arrived on the reseeded subscription")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
