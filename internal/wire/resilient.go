package wire

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/querystore"
	"mtcache/internal/repl"
	"mtcache/internal/resilience"
	"mtcache/internal/storage"
	"mtcache/internal/trace"
	"mtcache/internal/types"
)

// BackendClient is the client surface a RemoteCache needs. Both the bare
// *Client and the fault-tolerant *ResilientClient implement it.
type BackendClient interface {
	exec.RemoteClient
	exec.LSNExecer
	Snapshot() ([]byte, error)
	Provision(table string, columns []string, filter, subName string) (int, storage.LSN, []types.Row, error)
	Resume(table string, columns []string, filter, subName string, fromLSN storage.LSN) (int, bool, error)
	Pull(subID, max int, ack storage.LSN) ([]repl.TxnBatch, storage.LSN, error)
	Close() error
}

var (
	_ BackendClient = (*Client)(nil)
	_ BackendClient = (*ResilientClient)(nil)
)

// ResilientClient wraps the wire protocol with per-request deadlines,
// bounded exponential backoff with jitter, a sized connection pool, and
// automatic re-dial of broken pooled connections. It is the cache's
// production backend link: a dropped TCP frame costs a retry, not a query.
//
// Pooling composes with multiplexing: each pooled connection carries any
// number of concurrent requests, requests spread round-robin over the pool,
// and a connection dying mid-flight fails only the requests on it — the
// idempotent ones retry on the next pooled connection (re-dialed lazily)
// under the same policy as before.
//
// Retry rules follow idempotency: Query, Snapshot, Provision and Pull are
// idempotent (Provision resets by name; Pull re-delivers until acked) and
// retry on any transport failure. Exec forwards DML, which may have executed
// on the backend even though the response was lost — it retries only while
// no connection could be produced (connect phase) and turns terminal the
// moment a request may have reached the backend.
type ResilientClient struct {
	addr   string
	policy resilience.Policy
	reg    *metrics.Registry
	pool   *Pool

	mu     sync.Mutex
	closed bool
}

// DialResilient connects to a wire server with the given retry policy. The
// first pooled connection is dialed eagerly (retried under the policy) so a
// dead address fails fast; the rest of the pool fills lazily under load.
// reg may be nil to use metrics.Default.
func DialResilient(addr string, policy resilience.Policy, reg *metrics.Registry) (*ResilientClient, error) {
	if reg == nil {
		reg = metrics.Default
	}
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	size := policy.PoolSize
	if size < 1 {
		size = 1
	}
	r := &ResilientClient{
		addr:   addr,
		policy: policy,
		reg:    reg,
		pool:   NewPool(addr, size, policy.RequestTimeout, reg),
	}
	err := resilience.Do(policy, func(int) error {
		_, err := r.conn()
		return err
	})
	if err != nil {
		r.pool.Close()
		return nil, err
	}
	return r, nil
}

// Addr returns the backend address the client (re-)dials.
func (r *ResilientClient) Addr() string { return r.addr }

// Pool exposes the connection pool (observability and tests).
func (r *ResilientClient) Pool() *Pool { return r.pool }

// Close closes every pooled connection and stops further re-dials.
func (r *ResilientClient) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.pool.Close()
}

// conn produces a live connection from the pool, which dials lazily.
func (r *ResilientClient) conn() (*Client, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, resilience.Terminal(fmt.Errorf("wire: client closed: %w", resilience.ErrBackendDown))
	}
	return r.pool.Get()
}

// do runs one request under the retry policy. Connect-phase failures retry
// for every request kind; post-connect transport failures retry only for
// idempotent requests. Server-reported errors are terminal. A request
// failure only evicts its connection from the pool when the connection
// itself broke — a timed-out request on a live multiplexed connection
// leaves the other in-flight requests on it undisturbed.
func (r *ResilientClient) do(idempotent bool, fn func(c *Client) error) error {
	var last error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.reg.Counter("wire.retries").Add(1)
			querystore.Emit("wire_retry", "addr", r.addr, "attempt", strconv.Itoa(attempt))
			time.Sleep(r.policy.Delay(attempt, nil))
		}
		c, err := r.conn()
		if err != nil {
			last = err
			if !resilience.Retryable(err) {
				return err
			}
			continue
		}
		err = fn(c)
		if err == nil {
			return nil
		}
		last = err
		if !resilience.Retryable(err) {
			return err
		}
		if errors.Is(err, resilience.ErrTimeout) {
			r.reg.Counter("wire.timeouts").Add(1)
		}
		if c.Broken() {
			r.pool.Invalidate(c)
		}
		if !idempotent {
			// The request may have executed on the backend; retrying could
			// apply it twice. Surface the transport failure as terminal.
			return resilience.Terminal(last)
		}
	}
	r.reg.Counter("wire.backend_down").Add(1)
	querystore.Emit("retry_exhausted", "addr", r.addr,
		"attempts", strconv.Itoa(r.policy.MaxAttempts), "error", last.Error())
	return fmt.Errorf("wire: %s failed after %d attempts: %w", r.addr, r.policy.MaxAttempts, last)
}

// Query implements exec.RemoteClient (idempotent: retried).
func (r *ResilientClient) Query(sqlText string, params exec.Params) (*exec.ResultSet, error) {
	var rs *exec.ResultSet
	err := r.do(true, func(c *Client) error {
		var e error
		rs, e = c.Query(sqlText, params)
		return e
	})
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// QueryTraced implements exec.SpanQuerier (idempotent: retried). The
// backend-side span tree of the successful attempt is returned.
func (r *ResilientClient) QueryTraced(sqlText string, params exec.Params, traceID string) (*exec.ResultSet, *trace.WireSpan, error) {
	var (
		rs   *exec.ResultSet
		span *trace.WireSpan
	)
	err := r.do(true, func(c *Client) error {
		var e error
		rs, span, e = c.QueryTraced(sqlText, params, traceID)
		return e
	})
	if err != nil {
		return nil, nil, err
	}
	return rs, span, nil
}

// Exec implements exec.RemoteClient. Forwarded DML is not idempotent, so it
// retries only on connect-phase failures.
func (r *ResilientClient) Exec(sqlText string, params exec.Params) (int64, error) {
	n, _, err := r.ExecLSN(sqlText, params)
	return n, err
}

// ExecLSN implements exec.LSNExecer under the same retry rules as Exec: the
// forwarded DML's backend commit LSN rides back with the row count.
func (r *ResilientClient) ExecLSN(sqlText string, params exec.Params) (int64, storage.LSN, error) {
	var (
		n   int64
		lsn storage.LSN
	)
	err := r.do(false, func(c *Client) error {
		var e error
		n, lsn, e = c.ExecLSN(sqlText, params)
		return e
	})
	if err != nil {
		return 0, 0, err
	}
	return n, lsn, nil
}

// AppliedLSN probes how far the server's data is applied (idempotent:
// retried).
func (r *ResilientClient) AppliedLSN() (storage.LSN, error) {
	var lsn storage.LSN
	err := r.do(true, func(c *Client) error {
		var e error
		lsn, e = c.AppliedLSN()
		return e
	})
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

// Snapshot fetches the backend catalog snapshot (idempotent: retried).
func (r *ResilientClient) Snapshot() ([]byte, error) {
	var data []byte
	err := r.do(true, func(c *Client) error {
		var e error
		data, e = c.Snapshot()
		return e
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Provision creates or resets a pull subscription (idempotent by
// subscription name: retried).
func (r *ResilientClient) Provision(table string, columns []string, filter, subName string) (int, storage.LSN, []types.Row, error) {
	var (
		subID int
		lsn   storage.LSN
		rows  []types.Row
	)
	err := r.do(true, func(c *Client) error {
		var e error
		subID, lsn, rows, e = c.Provision(table, columns, filter, subName)
		return e
	})
	if err != nil {
		return 0, 0, nil, err
	}
	return subID, lsn, rows, nil
}

// Resume reattaches a pull subscription at a durable position (idempotent:
// repeating it reattaches to the same subscription, so it is retried).
func (r *ResilientClient) Resume(table string, columns []string, filter, subName string, fromLSN storage.LSN) (int, bool, error) {
	var (
		subID int
		ok    bool
	)
	err := r.do(true, func(c *Client) error {
		var e error
		subID, ok, e = c.Resume(table, columns, filter, subName, fromLSN)
		return e
	})
	if err != nil {
		return 0, false, err
	}
	return subID, ok, nil
}

// Pull fetches pending transactions (idempotent: unacknowledged batches are
// re-delivered, so a retried pull never loses data).
func (r *ResilientClient) Pull(subID, max int, ack storage.LSN) ([]repl.TxnBatch, storage.LSN, error) {
	var (
		batches []repl.TxnBatch
		through storage.LSN
	)
	err := r.do(true, func(c *Client) error {
		var e error
		batches, through, e = c.Pull(subID, max, ack)
		return e
	})
	if err != nil {
		return nil, 0, err
	}
	return batches, through, nil
}
