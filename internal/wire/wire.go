// Package wire implements the network transport between cache servers and
// the backend: a length-free gob-framed TCP protocol carrying
//
//   - Query / Exec — the linked-server path (paper §2.1): remote
//     subexpressions and forwarded updates travel as SQL text plus
//     parameters, results come back as rows;
//   - Snapshot — the shadow-database setup payload (§4);
//   - Provision / Pull — pull subscriptions (§2.2): a cache provisions an
//     article+subscription for a cached view, receives the initial
//     population, and then periodically pulls committed transactions.
//
// The in-process transport (engine.Link) and this TCP transport implement
// the same exec.RemoteClient interface; a cache cannot tell them apart.
package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/exec"
	"mtcache/internal/repl"
	"mtcache/internal/resilience"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/trace"
	"mtcache/internal/types"
)

// reqKind enumerates request types.
type reqKind uint8

const (
	reqQuery reqKind = iota
	reqExec
	reqSnapshot
	reqProvision
	reqPull
)

// request is one client->server frame.
type request struct {
	Kind   reqKind
	SQL    string
	Params map[string]types.Value

	// Provision fields.
	Table   string
	Columns []string
	Filter  string // deparsed predicate, "" = none
	SubName string

	// Pull fields. AckLSN acknowledges every batch at or below it from the
	// previous pull; the server deletes acknowledged batches and re-delivers
	// unacknowledged ones, making Pull safe to retry (at-least-once delivery,
	// deduplicated by LSN on the subscriber).
	SubID  int
	Max    int
	AckLSN storage.LSN

	// TraceID joins the server-side execution to the caller's trace (""
	// disables tracing). Appended after the original fields: gob zero-values
	// it when absent from an older client's stream and older servers skip it,
	// so both directions stay compatible.
	TraceID string
}

// response is one server->client frame.
type response struct {
	Err  string
	Cols []exec.ColInfo
	Rows []types.Row
	N    int64

	Snapshot []byte

	SubID    int
	StartLSN storage.LSN
	Batches  []repl.TxnBatch

	// Span carries the server-side span tree for traced Query/Exec requests
	// (nil otherwise). Same append-only compatibility rules as
	// request.TraceID.
	Span *trace.WireSpan
}

// Server exposes a backend over TCP.
type Server struct {
	backend *core.BackendServer
	ln      net.Listener

	mu      sync.Mutex
	subs    []*repl.Subscription
	conns   map[net.Conn]bool
	stopped bool
	wg      sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and returns it. The
// chosen address is available via Addr.
func Serve(backend *core.BackendServer, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{backend: backend, ln: ln, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every active connection and waits for the
// connection handlers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.stopped = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *request) *response {
	resp := &response{}
	switch req.Kind {
	case reqQuery, reqExec:
		if req.TraceID != "" {
			res, tr, err := s.backend.DB.ExecTraced(req.SQL, req.Params, req.TraceID)
			if err != nil {
				resp.Err = err.Error()
				return resp
			}
			resp.Cols = res.Cols
			resp.Rows = res.Rows
			resp.N = res.RowsAffected
			resp.Span = trace.Export(tr.Root)
			return resp
		}
		res, err := s.backend.DB.Exec(req.SQL, req.Params)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Cols = res.Cols
		resp.Rows = res.Rows
		resp.N = res.RowsAffected
	case reqSnapshot:
		data, err := s.backend.Snapshot().Encode()
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Snapshot = data
	case reqProvision:
		var filter sql.Expr
		if req.Filter != "" {
			f, err := sql.ParseExpr(req.Filter)
			if err != nil {
				resp.Err = fmt.Sprintf("wire: bad filter: %v", err)
				return resp
			}
			filter = f
		}
		art, err := s.backend.Repl.EnsureArticle(req.Table, req.Columns, filter)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		rows, lsn, err := s.backend.Repl.SnapshotRows(art)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		// Provision is idempotent by subscription name: a client retrying a
		// provision whose response was lost must not leave an orphan
		// subscription behind (an undrained queue would pin the WAL forever).
		s.mu.Lock()
		resp.SubID = -1
		for i, sub := range s.subs {
			if sub.Name == req.SubName && sub.Article == art {
				resp.SubID = i
				break
			}
		}
		s.mu.Unlock()
		if resp.SubID >= 0 {
			s.backend.Repl.ResetRemote(s.subs[resp.SubID], lsn)
		} else {
			sub := s.backend.Repl.SubscribeRemote(art, req.SubName, lsn)
			s.mu.Lock()
			s.subs = append(s.subs, sub)
			resp.SubID = len(s.subs) - 1
			s.mu.Unlock()
		}
		resp.Rows = rows
		resp.StartLSN = lsn
	case reqPull:
		s.mu.Lock()
		if req.SubID < 0 || req.SubID >= len(s.subs) {
			s.mu.Unlock()
			resp.Err = "wire: unknown subscription"
			return resp
		}
		sub := s.subs[req.SubID]
		s.mu.Unlock()
		s.backend.Repl.RunLogReader()
		resp.Batches = s.backend.Repl.DrainAfter(sub, req.AckLSN, req.Max)
	default:
		resp.Err = "wire: unknown request kind"
	}
	return resp
}

// ServerError is an application-level error reported by the backend (bad
// SQL, missing table, constraint violation). It is terminal: the request was
// delivered and executed, so retrying cannot change the answer.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "wire: server: " + e.Msg }

// Client is a TCP connection to a backend server. It implements
// exec.RemoteClient, so an engine.Database can use it directly as its
// backend link.
//
// Client itself fails hard on the first transport error; wrap it in a
// ResilientClient (DialResilient) for retry, backoff and re-dial.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
}

// Dial connects to a wire server. timeout bounds the connection attempt and
// every subsequent round trip (read+write deadline per request); zero
// disables deadlines.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, resilience.Classify(err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), timeout: timeout}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response under the client's
// deadline. A stalled backend therefore fails the request with ErrTimeout
// instead of hanging the caller forever. Transport errors are classified
// (ErrTimeout / ErrBackendDown); server-reported errors come back as
// *ServerError and are never retryable.
func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, resilience.Classify(fmt.Errorf("wire: send: %w", err))
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, resilience.Classify(fmt.Errorf("wire: recv: %w", err))
	}
	if resp.Err != "" {
		return nil, &ServerError{Msg: resp.Err}
	}
	return &resp, nil
}

// Query implements exec.RemoteClient.
func (c *Client) Query(sqlText string, params exec.Params) (*exec.ResultSet, error) {
	resp, err := c.roundTrip(&request{Kind: reqQuery, SQL: sqlText, Params: params})
	if err != nil {
		return nil, err
	}
	return &exec.ResultSet{Cols: resp.Cols, Rows: resp.Rows}, nil
}

// QueryTraced implements exec.SpanQuerier: the query executes under the
// caller's trace ID on the backend, and the backend-side span tree comes back
// with the rows.
func (c *Client) QueryTraced(sqlText string, params exec.Params, traceID string) (*exec.ResultSet, *trace.WireSpan, error) {
	resp, err := c.roundTrip(&request{Kind: reqQuery, SQL: sqlText, Params: params, TraceID: traceID})
	if err != nil {
		return nil, nil, err
	}
	return &exec.ResultSet{Cols: resp.Cols, Rows: resp.Rows}, resp.Span, nil
}

// Exec implements exec.RemoteClient.
func (c *Client) Exec(sqlText string, params exec.Params) (int64, error) {
	resp, err := c.roundTrip(&request{Kind: reqExec, SQL: sqlText, Params: params})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Snapshot fetches the backend catalog snapshot.
func (c *Client) Snapshot() ([]byte, error) {
	resp, err := c.roundTrip(&request{Kind: reqSnapshot})
	if err != nil {
		return nil, err
	}
	return resp.Snapshot, nil
}

// Provision creates an article + pull subscription on the backend and
// returns the subscription id, the LSN the change stream starts from, and
// the initial population. Provisioning the same subscription name again
// resets it, so a retried provision leaves no orphan subscription.
func (c *Client) Provision(table string, columns []string, filter, subName string) (int, storage.LSN, []types.Row, error) {
	resp, err := c.roundTrip(&request{
		Kind: reqProvision, Table: table, Columns: columns, Filter: filter, SubName: subName,
	})
	if err != nil {
		return 0, 0, nil, err
	}
	return resp.SubID, resp.StartLSN, resp.Rows, nil
}

// Pull returns up to max pending transactions for a subscription, first
// acknowledging (deleting) every batch at or below ack. Returned batches
// stay queued on the backend until a later Pull acknowledges them, so a
// response lost in transit is simply re-delivered.
func (c *Client) Pull(subID, max int, ack storage.LSN) ([]repl.TxnBatch, error) {
	resp, err := c.roundTrip(&request{Kind: reqPull, SubID: subID, Max: max, AckLSN: ack})
	if err != nil {
		return nil, err
	}
	return resp.Batches, nil
}
