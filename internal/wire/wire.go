// Package wire implements the network transport between cache servers and
// the backend: a length-free gob-framed TCP protocol carrying
//
//   - Query / Exec — the linked-server path (paper §2.1): remote
//     subexpressions and forwarded updates travel as SQL text plus
//     parameters, results come back as rows;
//   - Snapshot — the shadow-database setup payload (§4);
//   - Provision / Pull — pull subscriptions (§2.2): a cache provisions an
//     article+subscription for a cached view, receives the initial
//     population, and then periodically pulls committed transactions.
//
// Protocol v2 multiplexes one connection: every request carries a
// correlation ID (an append-only gob field, like request.TraceID) that the
// server echoes on the response, so many requests can be in flight
// concurrently and responses may return out of order. The server handles
// each request in its own goroutine, bounded by a server-wide semaphore;
// responses are serialized onto the connection under a per-connection write
// lock. v1 peers interoperate: a v1 client sends no ID (gob omits
// zero-valued fields) and runs strictly one request at a time, so the
// concurrent server needs no ordering for it; a v1 server echoes no ID and
// answers in arrival order, which the v2 client detects and falls back to
// FIFO matching (see Client.deliver).
//
// The in-process transport (engine.Link) and this TCP transport implement
// the same exec.RemoteClient interface; a cache cannot tell them apart.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/engine"
	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/repl"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/trace"
	"mtcache/internal/types"
)

// reqKind enumerates request types.
type reqKind uint8

const (
	reqQuery reqKind = iota
	reqExec
	reqSnapshot
	reqProvision
	reqPull
	// reqResume re-creates a pull subscription for a cache that restarted
	// with durable state: like reqProvision but starting the stream at the
	// cache's checkpointed LSN instead of taking a fresh snapshot. The server
	// answers SubID = -1 (no error) when the backend can no longer serve that
	// position and the cache must fall back to a full reseed.
	reqResume
	// reqApplied asks the server how far its data is applied: a cache answers
	// the LSN its pull subscriptions have all reached, the backend answers its
	// last committed LSN. Session routers use it to probe read-your-writes
	// eligibility without issuing a query.
	reqApplied
)

// request is one client->server frame.
type request struct {
	Kind   reqKind
	SQL    string
	Params map[string]types.Value

	// Provision fields.
	Table   string
	Columns []string
	Filter  string // deparsed predicate, "" = none
	SubName string

	// Pull fields. AckLSN acknowledges every batch at or below it from the
	// previous pull; the server deletes acknowledged batches and re-delivers
	// unacknowledged ones, making Pull safe to retry (at-least-once delivery,
	// deduplicated by LSN on the subscriber).
	SubID  int
	Max    int
	AckLSN storage.LSN

	// TraceID joins the server-side execution to the caller's trace (""
	// disables tracing). Appended after the original fields: gob zero-values
	// it when absent from an older client's stream and older servers skip it,
	// so both directions stay compatible.
	TraceID string

	// ID correlates the response with this request on a multiplexed
	// connection (protocol v2). IDs start at 1; 0 is reserved for v1 peers
	// that predate multiplexing (gob omits the zero value, so a v1 server
	// sees exactly the frame it always saw). Same append-only compatibility
	// rules as TraceID.
	ID uint64

	// FromLSN is the resume position for reqResume: the first LSN the
	// restarted subscriber has not applied. Same append-only compatibility
	// rules as TraceID.
	FromLSN storage.LSN

	// MinLSN gates reqQuery/reqExec on session freshness: a cache must have
	// applied at least this LSN before answering, or report Stale instead of
	// serving data the session's own writes have not reached. Zero (the v1
	// wire value) disables the gate. Same append-only compatibility rules as
	// TraceID.
	MinLSN storage.LSN

	// WaitMs bounds how long the server may block waiting for MinLSN to be
	// applied before giving up with Stale. Same append-only compatibility
	// rules as TraceID.
	WaitMs int64
}

// response is one server->client frame.
type response struct {
	Err  string
	Cols []exec.ColInfo
	Rows []types.Row
	N    int64

	Snapshot []byte

	SubID    int
	StartLSN storage.LSN
	Batches  []repl.TxnBatch

	// Span carries the server-side span tree for traced Query/Exec requests
	// (nil otherwise). Same append-only compatibility rules as
	// request.TraceID.
	Span *trace.WireSpan

	// ID echoes request.ID (0 for requests from v1 clients). Same
	// append-only compatibility rules as request.TraceID.
	ID uint64

	// LSN is the commit LSN of any write the request performed on the
	// backend (0 for pure reads) — the session's read-your-writes watermark.
	// Same append-only compatibility rules as request.TraceID.
	LSN storage.LSN

	// Applied is the LSN the answering server has applied through (for a
	// cache, the floor across its pull subscriptions; for the backend, its
	// last committed LSN). Same append-only compatibility rules as
	// request.TraceID.
	Applied storage.LSN

	// Stale reports that a MinLSN-gated request was refused because the
	// server could not reach the session watermark within WaitMs. The
	// response carries no rows; the client should retry against the backend.
	// Same append-only compatibility rules as request.TraceID.
	Stale bool

	// ThroughLSN on a pull response is the position the subscription's change
	// stream is complete through: every relevant change at or below it has
	// been delivered in or before this response. It can run ahead of the last
	// batch's LSN when the log reader filtered intervening transactions that
	// did not touch the article. Same append-only compatibility rules as
	// request.TraceID.
	ThroughLSN storage.LSN
}

// DefaultMaxInFlight bounds concurrent request handling per server when
// ServerOptions leaves MaxInFlight unset.
const DefaultMaxInFlight = 64

// ServerOptions tunes a wire server.
type ServerOptions struct {
	// MaxInFlight bounds the number of requests being handled concurrently
	// across all connections. When every slot is busy, a connection's read
	// loop blocks before spawning the next handler — natural backpressure
	// instead of unbounded goroutine growth. <= 0 selects
	// DefaultMaxInFlight.
	MaxInFlight int
}

// Server exposes a backend — or a cache (ServeCache) — over TCP. Exactly one
// of backend/cache is non-nil; replication requests (Snapshot, Provision,
// Resume, Pull) are answered only by a backend.
type Server struct {
	backend *core.BackendServer
	cache   *RemoteCache
	ln      net.Listener
	sem     chan struct{} // server-wide handler slots

	mu      sync.Mutex
	subs    []*repl.Subscription
	conns   map[net.Conn]bool
	stopped bool
	wg      sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with default options
// and returns it. The chosen address is available via Addr.
func Serve(backend *core.BackendServer, addr string) (*Server, error) {
	return ServeOpts(backend, addr, ServerOptions{})
}

// ServeOpts starts a server with explicit options.
func ServeOpts(backend *core.BackendServer, addr string, opts ServerOptions) (*Server, error) {
	s := &Server{backend: backend}
	return startServer(s, addr, opts)
}

// ServeCache exposes a cache server over TCP with the same protocol a
// backend speaks: clients Query/Exec against the cache exactly as they would
// against the backend (the cache forwards what it cannot answer), and
// MinLSN-gated requests are answered Stale when the cache has not applied the
// session's watermark yet. Replication requests are rejected — a cache is a
// subscriber, not a publisher.
func ServeCache(cache *RemoteCache, addr string, opts ServerOptions) (*Server, error) {
	s := &Server{cache: cache}
	return startServer(s, addr, opts)
}

func startServer(s *Server, addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	s.ln = ln
	s.sem = make(chan struct{}, opts.MaxInFlight)
	s.conns = map[net.Conn]bool{}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// execDB returns the database requests execute against.
func (s *Server) execDB() *engine.Database {
	if s.cache != nil {
		return s.cache.DB
	}
	return s.backend.DB
}

// appliedLSN reports how far this server's data is applied: a cache answers
// the floor across its pull subscriptions, the backend its last committed
// LSN (WAL().End() is the LSN the next commit will receive).
func (s *Server) appliedLSN() storage.LSN {
	if s.cache != nil {
		return s.cache.AppliedLSN()
	}
	return s.backend.DB.Store().WAL().End() - 1
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every active connection and waits for the
// connection handlers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.stopped = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serveConn demultiplexes one connection: each decoded request is handled
// in its own goroutine (bounded by the server semaphore) and its response —
// tagged with the request's correlation ID — is written back under a
// per-connection write lock, in completion order rather than arrival order.
// The decode loop exits on the first transport error; in-flight handlers
// finish (their writes fail harmlessly on the dead connection) before the
// connection is released.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	inflight := metrics.Default.Gauge("wire.server_inflight")
	for {
		req := new(request)
		if err := dec.Decode(req); err != nil {
			return
		}
		s.sem <- struct{}{}
		inflight.Add(1)
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			defer func() {
				inflight.Add(-1)
				<-s.sem
			}()
			resp := s.handle(req)
			resp.ID = req.ID
			wmu.Lock()
			err := enc.Encode(resp)
			wmu.Unlock()
			if err != nil {
				// A failed or partial write corrupts the gob stream for
				// every multiplexed response after it; sever the connection
				// so the client fails fast and re-dials.
				conn.Close()
			}
		}()
	}
}

func (s *Server) handle(req *request) *response {
	resp := &response{}
	switch req.Kind {
	case reqQuery, reqExec:
		db := s.execDB()
		if req.TraceID != "" {
			res, tr, err := db.ExecTraced(req.SQL, req.Params, req.TraceID)
			if err != nil {
				resp.Err = err.Error()
				return resp
			}
			resp.Cols = res.Cols
			resp.Rows = res.Rows
			resp.N = res.RowsAffected
			resp.LSN = res.CommitLSN
			resp.Span = trace.Export(tr.Root)
			return resp
		}
		var res *engine.Result
		var err error
		if req.MinLSN > 0 {
			res, err = db.ExecSession(req.SQL, req.Params, req.MinLSN, time.Duration(req.WaitMs)*time.Millisecond)
			if errors.Is(err, engine.ErrSessionStale) {
				// Not an error on the wire: the cache is simply behind the
				// session's watermark. The client reroutes to the backend.
				resp.Stale = true
				resp.Applied = s.appliedLSN()
				return resp
			}
		} else {
			res, err = db.Exec(req.SQL, req.Params)
		}
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Cols = res.Cols
		resp.Rows = res.Rows
		resp.N = res.RowsAffected
		resp.LSN = res.CommitLSN
		resp.Applied = s.appliedLSN()
	case reqApplied:
		resp.Applied = s.appliedLSN()
	case reqSnapshot:
		if s.backend == nil {
			resp.Err = "wire: not a backend server"
			return resp
		}
		data, err := s.backend.Snapshot().Encode()
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Snapshot = data
	case reqProvision:
		if s.backend == nil {
			resp.Err = "wire: not a backend server"
			return resp
		}
		var filter sql.Expr
		if req.Filter != "" {
			f, err := sql.ParseExpr(req.Filter)
			if err != nil {
				resp.Err = fmt.Sprintf("wire: bad filter: %v", err)
				return resp
			}
			filter = f
		}
		art, err := s.backend.Repl.EnsureArticle(req.Table, req.Columns, filter)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		rows, lsn, err := s.backend.Repl.SnapshotRows(art)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		// Provision is idempotent by subscription name: a client retrying a
		// provision whose response was lost must not leave an orphan
		// subscription behind (an undrained queue would pin the WAL forever).
		s.mu.Lock()
		resp.SubID = -1
		for i, sub := range s.subs {
			if sub.Name == req.SubName && sub.Article == art {
				resp.SubID = i
				break
			}
		}
		s.mu.Unlock()
		if resp.SubID >= 0 {
			s.backend.Repl.ResetRemote(s.subs[resp.SubID], lsn)
		} else {
			sub := s.backend.Repl.SubscribeRemote(art, req.SubName, lsn)
			s.mu.Lock()
			s.subs = append(s.subs, sub)
			resp.SubID = len(s.subs) - 1
			s.mu.Unlock()
		}
		resp.Rows = rows
		resp.StartLSN = lsn
	case reqResume:
		if s.backend == nil {
			resp.Err = "wire: not a backend server"
			return resp
		}
		var filter sql.Expr
		if req.Filter != "" {
			f, err := sql.ParseExpr(req.Filter)
			if err != nil {
				resp.Err = fmt.Sprintf("wire: bad filter: %v", err)
				return resp
			}
			filter = f
		}
		art, err := s.backend.Repl.EnsureArticle(req.Table, req.Columns, filter)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		// Fast path: the backend never restarted and still holds this
		// subscription — reattach to it. Its queue retains every batch the
		// cache has not acknowledged, so the stream continues seamlessly.
		s.mu.Lock()
		resp.SubID = -1
		for i, sub := range s.subs {
			if sub.Name == req.SubName && sub.Article == art {
				resp.SubID = i
				break
			}
		}
		s.mu.Unlock()
		if resp.SubID < 0 {
			// The backend restarted (or never saw this subscriber): resume is
			// possible only while the WAL still retains FromLSN onward.
			sub, ok := s.backend.Repl.ResumeRemote(art, req.SubName, req.FromLSN)
			if !ok {
				resp.StartLSN = req.FromLSN
				return resp // SubID = -1: caller must reseed via Provision
			}
			s.mu.Lock()
			s.subs = append(s.subs, sub)
			resp.SubID = len(s.subs) - 1
			s.mu.Unlock()
		}
		resp.StartLSN = req.FromLSN
	case reqPull:
		if s.backend == nil {
			resp.Err = "wire: not a backend server"
			return resp
		}
		s.mu.Lock()
		if req.SubID < 0 || req.SubID >= len(s.subs) {
			s.mu.Unlock()
			resp.Err = "wire: unknown subscription"
			return resp
		}
		sub := s.subs[req.SubID]
		s.mu.Unlock()
		s.backend.Repl.RunLogReader()
		resp.Batches, resp.ThroughLSN = s.backend.Repl.DrainAfterThrough(sub, req.AckLSN, req.Max)
	default:
		resp.Err = "wire: unknown request kind"
	}
	return resp
}

// ServerError is an application-level error reported by the backend (bad
// SQL, missing table, constraint violation). It is terminal: the request was
// delivered and executed, so retrying cannot change the answer.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "wire: server: " + e.Msg }
