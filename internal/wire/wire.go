// Package wire implements the network transport between cache servers and
// the backend: a length-free gob-framed TCP protocol carrying
//
//   - Query / Exec — the linked-server path (paper §2.1): remote
//     subexpressions and forwarded updates travel as SQL text plus
//     parameters, results come back as rows;
//   - Snapshot — the shadow-database setup payload (§4);
//   - Provision / Pull — pull subscriptions (§2.2): a cache provisions an
//     article+subscription for a cached view, receives the initial
//     population, and then periodically pulls committed transactions.
//
// The in-process transport (engine.Link) and this TCP transport implement
// the same exec.RemoteClient interface; a cache cannot tell them apart.
package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/exec"
	"mtcache/internal/repl"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// reqKind enumerates request types.
type reqKind uint8

const (
	reqQuery reqKind = iota
	reqExec
	reqSnapshot
	reqProvision
	reqPull
)

// request is one client->server frame.
type request struct {
	Kind   reqKind
	SQL    string
	Params map[string]types.Value

	// Provision fields.
	Table   string
	Columns []string
	Filter  string // deparsed predicate, "" = none
	SubName string

	// Pull fields.
	SubID int
	Max   int
}

// response is one server->client frame.
type response struct {
	Err  string
	Cols []exec.ColInfo
	Rows []types.Row
	N    int64

	Snapshot []byte

	SubID    int
	StartLSN storage.LSN
	Batches  []repl.TxnBatch
}

// Server exposes a backend over TCP.
type Server struct {
	backend *core.BackendServer
	ln      net.Listener

	mu      sync.Mutex
	subs    []*repl.Subscription
	conns   map[net.Conn]bool
	stopped bool
	wg      sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and returns it. The
// chosen address is available via Addr.
func Serve(backend *core.BackendServer, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{backend: backend, ln: ln, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every active connection and waits for the
// connection handlers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.stopped = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *request) *response {
	resp := &response{}
	switch req.Kind {
	case reqQuery, reqExec:
		res, err := s.backend.DB.Exec(req.SQL, req.Params)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Cols = res.Cols
		resp.Rows = res.Rows
		resp.N = res.RowsAffected
	case reqSnapshot:
		data, err := s.backend.Snapshot().Encode()
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Snapshot = data
	case reqProvision:
		var filter sql.Expr
		if req.Filter != "" {
			f, err := sql.ParseExpr(req.Filter)
			if err != nil {
				resp.Err = fmt.Sprintf("wire: bad filter: %v", err)
				return resp
			}
			filter = f
		}
		art, err := s.backend.Repl.EnsureArticle(req.Table, req.Columns, filter)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		rows, lsn, err := s.backend.Repl.SnapshotRows(art)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		sub := s.backend.Repl.SubscribeRemote(art, req.SubName, lsn)
		s.mu.Lock()
		s.subs = append(s.subs, sub)
		resp.SubID = len(s.subs) - 1
		s.mu.Unlock()
		resp.Rows = rows
		resp.StartLSN = lsn
	case reqPull:
		s.mu.Lock()
		if req.SubID < 0 || req.SubID >= len(s.subs) {
			s.mu.Unlock()
			resp.Err = "wire: unknown subscription"
			return resp
		}
		sub := s.subs[req.SubID]
		s.mu.Unlock()
		s.backend.Repl.RunLogReader()
		resp.Batches = s.backend.Repl.Drain(sub, req.Max)
	default:
		resp.Err = "wire: unknown request kind"
	}
	return resp
}

// Client is a TCP connection to a backend server. It implements
// exec.RemoteClient, so an engine.Database can use it directly as its
// backend link.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a wire server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("wire: server: %s", resp.Err)
	}
	return &resp, nil
}

// Query implements exec.RemoteClient.
func (c *Client) Query(sqlText string, params exec.Params) (*exec.ResultSet, error) {
	resp, err := c.roundTrip(&request{Kind: reqQuery, SQL: sqlText, Params: params})
	if err != nil {
		return nil, err
	}
	return &exec.ResultSet{Cols: resp.Cols, Rows: resp.Rows}, nil
}

// Exec implements exec.RemoteClient.
func (c *Client) Exec(sqlText string, params exec.Params) (int64, error) {
	resp, err := c.roundTrip(&request{Kind: reqExec, SQL: sqlText, Params: params})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Snapshot fetches the backend catalog snapshot.
func (c *Client) Snapshot() ([]byte, error) {
	resp, err := c.roundTrip(&request{Kind: reqSnapshot})
	if err != nil {
		return nil, err
	}
	return resp.Snapshot, nil
}

// Provision creates an article + pull subscription on the backend and
// returns the subscription id plus the initial population.
func (c *Client) Provision(table string, columns []string, filter, subName string) (int, []types.Row, error) {
	resp, err := c.roundTrip(&request{
		Kind: reqProvision, Table: table, Columns: columns, Filter: filter, SubName: subName,
	})
	if err != nil {
		return 0, nil, err
	}
	return resp.SubID, resp.Rows, nil
}

// Pull drains up to max pending transactions for a subscription.
func (c *Client) Pull(subID, max int) ([]repl.TxnBatch, error) {
	resp, err := c.roundTrip(&request{Kind: reqPull, SubID: subID, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Batches, nil
}
