package wire

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mtcache/internal/core"
	"mtcache/internal/exec"
	"mtcache/internal/metrics"
	"mtcache/internal/resilience"
	"mtcache/internal/types"
)

// chaosRig is a full stack with a fault-injecting proxy in the middle:
// backend <- wire server <- proxy <- resilient client <- remote cache.
type chaosRig struct {
	backend *core.BackendServer
	srv     *Server
	proxy   *FaultProxy
	client  *ResilientClient
	cache   *RemoteCache
}

// newChaosRig builds the rig with a 5000-row part table, a qty index that
// exists only on the backend (so qty queries plan remote and must cross the
// faulty link) and a cached view covering the whole table (so those same
// queries can degrade onto local data when the backend is gone).
func newChaosRig(t *testing.T, policy resilience.Policy) *chaosRig {
	t.Helper()
	b := core.NewBackend("backend")
	err := b.ExecScript(`
		CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL, qty INT);
		CREATE INDEX idx_qty ON part(qty);
	`)
	if err != nil {
		t.Fatal(err)
	}
	var rows []types.Row
	for i := 1; i <= 5000; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("part%d", i)),
			types.NewInt(int64(i)),
		})
	}
	if err := b.DB.BulkLoad("part", rows); err != nil {
		t.Fatal(err)
	}
	b.DB.Analyze()

	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewFaultProxy("127.0.0.1:0", srv.Addr(), 42)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	client, err := DialResilient(proxy.Addr(), policy, metrics.NewRegistry())
	if err != nil {
		proxy.Close()
		srv.Close()
		t.Fatal(err)
	}
	cache, err := NewRemoteCache("cache1", client, nil)
	if err == nil {
		err = cache.CreateCachedView(`CREATE CACHED VIEW cv_part AS SELECT id, name, qty FROM part`)
	}
	if err != nil {
		client.Close()
		proxy.Close()
		srv.Close()
		t.Fatal(err)
	}
	rig := &chaosRig{backend: b, srv: srv, proxy: proxy, client: client, cache: cache}
	t.Cleanup(rig.close)
	return rig
}

func (r *chaosRig) close() {
	r.cache.StopPulling()
	r.client.Close()
	r.proxy.Close()
	r.srv.Close()
}

func chaosPolicy() resilience.Policy {
	p := resilience.DefaultPolicy()
	p.MaxAttempts = 12
	p.BaseDelay = 5 * time.Millisecond
	p.MaxDelay = 80 * time.Millisecond
	return p
}

// TestChaosWorkloadZeroErrors is the headline chaos test: with 10% chunk
// drops and 50ms added latency per chunk, a 500-query mixed workload (remote
// qty lookups and local id lookups) must complete with zero
// application-visible errors — every transport failure is absorbed by the
// retry/re-dial layer.
func TestChaosWorkloadZeroErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos workload is slow")
	}
	rig := newChaosRig(t, chaosPolicy())
	rig.proxy.SetFaults(FaultConfig{DropRate: 0.10, Delay: 50 * time.Millisecond})

	const queries = 500
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := w; q < queries; q += workers {
				var err error
				if q%2 == 0 {
					// Remote plan: crosses the faulty link.
					_, err = rig.cache.DB.Exec("SELECT name FROM part WHERE qty = @q",
						exec.Params{"q": types.NewInt(int64(q%5000) + 1)})
				} else {
					// Local plan: served by the cached view's index.
					_, err = rig.cache.DB.Exec("SELECT name FROM part WHERE id = @id",
						exec.Params{"id": types.NewInt(int64(q%5000) + 1)})
				}
				if err != nil {
					errs <- fmt.Errorf("query %d: %w", q, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		failures++
		t.Error(err)
	}
	if failures > 0 {
		t.Fatalf("%d/%d queries failed under chaos (want 0)", failures, queries)
	}
	if rig.proxy.Stats().Drops == 0 {
		t.Fatal("proxy injected no faults; the test exercised nothing")
	}
}

// viewQtyByID reads a cached view's rows straight from storage (bypassing
// the planner, so the faulty link cannot interfere with the check).
func viewQtyByID(t *testing.T, rc *RemoteCache, view string) map[int64]int64 {
	t.Helper()
	tx := rc.DB.Store().Begin(false)
	defer tx.Abort()
	td := tx.Table(view)
	if td == nil {
		t.Fatalf("no storage for %s", view)
	}
	out := map[int64]int64{}
	for _, row := range td.Rows() {
		out[row[0].Int()] = row[2].Int()
	}
	return out
}

// TestChaosPullConvergence applies backend updates while the pull path runs
// through a lossy link, and checks the cached view converges to exactly the
// state a fault-free twin cache reaches: no lost batches, no duplicated
// applications.
func TestChaosPullConvergence(t *testing.T) {
	rig := newChaosRig(t, chaosPolicy())

	// Fault-free twin connected straight to the wire server.
	twinClient, err := Dial(rig.srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer twinClient.Close()
	twin, err := NewRemoteCache("twin", twinClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.CreateCachedView(`CREATE CACHED VIEW cv_part AS SELECT id, name, qty FROM part`); err != nil {
		t.Fatal(err)
	}

	rig.proxy.SetFaults(FaultConfig{DropRate: 0.15})
	for i := 1; i <= 40; i++ {
		stmt := fmt.Sprintf("UPDATE part SET qty = %d WHERE id = %d", 100000+i, i)
		if _, err := rig.backend.Exec(stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := twin.Pull(); err != nil {
		t.Fatal(err)
	}
	want := viewQtyByID(t, twin, "cv_part")

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rig.cache.Pull() //nolint:errcheck — convergence is checked below
		got := viewQtyByID(t, rig.cache, "cv_part")
		if len(got) == len(want) {
			same := true
			for id, qty := range want {
				if got[id] != qty {
					same = false
					break
				}
			}
			if same {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("cached view did not converge to the fault-free state under a lossy pull link")
}

// TestChaosPartitionDegradesGracefully partitions the backend away entirely.
// Stale-tolerant queries (no freshness bound) must still be answered from
// the local cached view; a strict-freshness query must fail fast with
// ErrBackendDown rather than hang.
func TestChaosPartitionDegradesGracefully(t *testing.T) {
	policy := chaosPolicy()
	policy.MaxAttempts = 3
	policy.RequestTimeout = 500 * time.Millisecond
	rig := newChaosRig(t, policy)

	// Warm check: remote plan works while the link is healthy.
	if _, err := rig.cache.DB.Exec("SELECT name FROM part WHERE qty = 42", nil); err != nil {
		t.Fatal(err)
	}
	rig.proxy.Partition()

	// Stale-tolerant query: re-planned onto the cached view.
	res, err := rig.cache.DB.Exec("SELECT name FROM part WHERE qty = 42", nil)
	if err != nil {
		t.Fatalf("stale-tolerant query should degrade to local data: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "part42" {
		t.Fatalf("degraded answer wrong: %v", res.Rows)
	}

	// Strict freshness: the cache cannot prove the bound with the backend
	// gone, so the query must fail fast with the typed transport error.
	start := time.Now()
	_, err = rig.cache.DB.Exec("SELECT name FROM part WHERE qty = 42 WITH FRESHNESS 0.000001", nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("strict-freshness query should fail when partitioned")
	}
	if !errors.Is(err, resilience.ErrBackendDown) && !errors.Is(err, resilience.ErrTimeout) {
		t.Fatalf("want ErrBackendDown/ErrTimeout, got: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("strict-freshness query hung for %v instead of failing fast", elapsed)
	}

	// Healing the partition restores remote execution.
	rig.proxy.Heal()
	if _, err := rig.cache.DB.Exec("SELECT name FROM part WHERE qty = 42", nil); err != nil {
		t.Fatalf("query after heal: %v", err)
	}
}

// TestChaosNoGoroutineLeaks runs a faulty workload, tears the whole rig
// down, and checks the goroutine count returns to its pre-test level.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		rig := newChaosRig(t, chaosPolicy())
		rig.proxy.SetFaults(FaultConfig{DropRate: 0.3})
		rig.cache.StartPulling(5 * time.Millisecond)
		for q := 0; q < 30; q++ {
			rig.cache.DB.Exec("SELECT name FROM part WHERE qty = @q", //nolint:errcheck
				exec.Params{"q": types.NewInt(int64(q + 1))})
		}
		rig.close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after teardown", before, runtime.NumGoroutine())
}

// TestChaosMuxPartitionFailsInFlight is the multiplexed-failure contract:
// with several requests in flight on pooled multiplexed connections, a
// partition must fail exactly those requests — each with a classified
// transport error (degradable, never a *ServerError) — the pool must
// recover after the partition heals, and nothing may leak.
func TestChaosMuxPartitionFailsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		// One attempt: every transport failure surfaces instead of being
		// retried away, so the test sees the raw in-flight failures.
		policy := chaosPolicy()
		policy.MaxAttempts = 1
		policy.PoolSize = 2
		rig := newChaosRig(t, policy)

		// Slow every chunk so the batch of remote queries is reliably still
		// in flight when the partition hits.
		rig.proxy.SetFaults(FaultConfig{Delay: 200 * time.Millisecond})

		const inFlight = 8
		var wg sync.WaitGroup
		failures := make(chan error, inFlight)
		for q := 0; q < inFlight; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				// qty is indexed only on the backend, so the query plans
				// remote; the strict freshness bound forbids degrading onto
				// the cached view, so a cut connection must surface as an
				// error rather than a silent stale answer.
				_, err := rig.cache.DB.Exec(
					"SELECT name FROM part WHERE qty = @q WITH FRESHNESS 0.000001",
					exec.Params{"q": types.NewInt(int64(q + 1))})
				failures <- err
			}(q)
		}
		time.Sleep(60 * time.Millisecond) // let the requests reach the wire
		rig.proxy.Partition()
		wg.Wait()
		close(failures)

		failed := 0
		for err := range failures {
			if err == nil {
				// A request that cleared the proxy before the partition is
				// fine — the contract is about the ones that were cut off.
				continue
			}
			failed++
			if !resilience.Degradable(err) {
				t.Errorf("in-flight failure not classified as transport error: %v", err)
			}
			var se *ServerError
			if errors.As(err, &se) {
				t.Errorf("in-flight failure surfaced as a server error: %v", err)
			}
		}
		if failed == 0 {
			t.Error("partition during in-flight requests produced no failures; the contract was not exercised")
		}

		// Heal: the pool re-dials lazily and the very next queries succeed.
		rig.proxy.Heal()
		for q := 0; q < 4; q++ {
			if _, err := rig.cache.DB.Exec("SELECT name FROM part WHERE qty = @q",
				exec.Params{"q": types.NewInt(int64(q + 100))}); err != nil {
				t.Fatalf("query after heal: %v", err)
			}
		}
		if rig.client.Pool().Open() == 0 {
			t.Error("pool should hold live connections after heal")
		}
		rig.close()
	}()

	// Every reader, handler and proxy pump must be gone after teardown.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after teardown", before, runtime.NumGoroutine())
}
