package wire

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultConfig describes the failures a FaultProxy injects, rolled
// independently per forwarded chunk.
type FaultConfig struct {
	DropRate     float64       // probability a chunk is silently dropped (conn then closed)
	ResetRate    float64       // probability the connection is reset mid-stream
	TruncateRate float64       // probability a chunk is cut short before forwarding
	Delay        time.Duration // added latency per chunk
}

// FaultProxyStats counts injected faults.
type FaultProxyStats struct {
	Conns     int64
	Drops     int64
	Resets    int64
	Truncates int64
}

// FaultProxy is a TCP proxy that forwards traffic to a target address while
// injecting faults: dropped chunks, connection resets, truncated frames and
// added latency. Tests and mtbench put it between a cache's wire client and
// the backend server to exercise the retry/re-dial/degradation paths.
//
// Partition simulates a full network partition: every active connection is
// severed and new ones are refused until Heal is called.
type FaultProxy struct {
	ln     net.Listener
	target string

	mu          sync.Mutex
	cfg         FaultConfig
	rng         *rand.Rand
	partitioned bool
	closed      bool
	conns       map[net.Conn]bool
	stats       FaultProxyStats
	wg          sync.WaitGroup
}

// NewFaultProxy listens on addr (use "127.0.0.1:0") and forwards to target.
// seed makes the fault rolls reproducible.
func NewFaultProxy(addr, target string, seed int64) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{
		ln:     ln,
		target: target,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  map[net.Conn]bool{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; dial this instead of the target.
func (p *FaultProxy) Addr() string { return p.ln.Addr().String() }

// SetFaults swaps the active fault configuration.
func (p *FaultProxy) SetFaults(cfg FaultConfig) {
	p.mu.Lock()
	p.cfg = cfg
	p.mu.Unlock()
}

// Partition severs every connection and refuses new ones until Heal.
func (p *FaultProxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Heal ends a partition: new connections are accepted again.
func (p *FaultProxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (p *FaultProxy) Stats() FaultProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close shuts the proxy down and waits for its goroutines.
func (p *FaultProxy) Close() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *FaultProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.partitioned {
		return false
	}
	p.conns[c] = true
	return true
}

func (p *FaultProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *FaultProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if !p.track(client) {
			client.Close()
			continue
		}
		p.mu.Lock()
		p.stats.Conns++
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(client)
			p.serve(client)
		}()
	}
}

func (p *FaultProxy) serve(client net.Conn) {
	defer client.Close()
	backend, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		return
	}
	if !p.track(backend) {
		backend.Close()
		return
	}
	defer p.untrack(backend)
	defer backend.Close()
	done := make(chan struct{}, 2)
	go func() { p.pump(backend, client); done <- struct{}{} }()
	go func() { p.pump(client, backend); done <- struct{}{} }()
	// Either direction failing (or a fault closing a conn) ends the pair:
	// closing both sides unblocks the other pump.
	<-done
	client.Close()
	backend.Close()
	<-done
}

// roll draws the per-chunk fault decision under the proxy lock.
type faultRoll struct {
	drop, reset bool
	truncate    bool
	delay       time.Duration
}

func (p *FaultProxy) roll() faultRoll {
	p.mu.Lock()
	defer p.mu.Unlock()
	var r faultRoll
	cfg := p.cfg
	r.delay = cfg.Delay
	switch {
	case cfg.DropRate > 0 && p.rng.Float64() < cfg.DropRate:
		r.drop = true
		p.stats.Drops++
	case cfg.ResetRate > 0 && p.rng.Float64() < cfg.ResetRate:
		r.reset = true
		p.stats.Resets++
	case cfg.TruncateRate > 0 && p.rng.Float64() < cfg.TruncateRate:
		r.truncate = true
		p.stats.Truncates++
	}
	return r
}

// pump copies src→dst chunk by chunk, rolling a fault per chunk.
func (p *FaultProxy) pump(dst, src net.Conn) {
	buf := make([]byte, 16*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			r := p.roll()
			if r.delay > 0 {
				time.Sleep(r.delay)
			}
			switch {
			case r.drop:
				// Swallow the chunk. The peers now disagree about stream
				// position, so sever the pair to surface the fault promptly
				// rather than letting gob mis-frame.
				return
			case r.reset:
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.SetLinger(0) // RST instead of FIN
				}
				return
			case r.truncate:
				if n > 1 {
					n = n / 2
				}
				dst.Write(buf[:n]) //nolint:errcheck — pair torn down next
				return
			default:
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			return
		}
	}
}
