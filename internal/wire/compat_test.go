package wire

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	"mtcache/internal/exec"
	"mtcache/internal/storage"
	"mtcache/internal/trace"
	"mtcache/internal/types"
)

// requestV1 and responseV1 are the pre-multiplexing frame layouts: every
// field the v1 protocol had, and no correlation ID. Gob matches struct
// fields by name, so encoding these against a v2 peer (and decoding a v2
// peer's frames into them) reproduces exactly what a v1 binary on the other
// end of the connection would see.
type requestV1 struct {
	Kind   reqKind
	SQL    string
	Params map[string]types.Value

	Table   string
	Columns []string
	Filter  string
	SubName string

	SubID  int
	Max    int
	AckLSN storage.LSN

	TraceID string
}

type responseV1 struct {
	Err  string
	Cols []exec.ColInfo
	Rows []types.Row
	N    int64

	Snapshot []byte

	SubID    int
	StartLSN storage.LSN

	Span *trace.WireSpan
}

// TestCompatOldClientNewServer speaks raw v1 frames at a real v2 server:
// requests carry no ID, the server must still answer (handling them one at
// a time from the client's point of view), and the responses must decode
// into the v1 layout — the echoed ID is zero, which gob omits, so the old
// client never sees a field it does not know.
func TestCompatOldClientNewServer(t *testing.T) {
	_, srv := newWiredBackend(t)
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	// A v1 client is strictly one-in-flight: send, wait, repeat.
	for i := 1; i <= 3; i++ {
		req := requestV1{Kind: reqQuery, SQL: "SELECT name FROM part WHERE id = @id",
			Params: map[string]types.Value{"id": types.NewInt(int64(i))}}
		if err := enc.Encode(&req); err != nil {
			t.Fatal(err)
		}
		var resp responseV1
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err != "" {
			t.Fatalf("round %d: server error: %s", i, resp.Err)
		}
		if len(resp.Rows) != 1 || resp.Rows[0][0].Str() != "part"+string(rune('0'+i)) {
			t.Fatalf("round %d: wrong rows: %v", i, resp.Rows)
		}
	}

	// Exec works too — the full v1 surface, not just Query.
	req := requestV1{Kind: reqExec, SQL: "UPDATE part SET qty = 0 WHERE id = 1"}
	if err := enc.Encode(&req); err != nil {
		t.Fatal(err)
	}
	var resp responseV1
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || resp.N != 1 {
		t.Fatalf("exec: n=%d err=%q", resp.N, resp.Err)
	}
}

// serveV1 is a minimal pre-multiplexing server: one connection, decode a
// request, answer it, repeat — strictly in arrival order, echoing no ID.
// Responses carry the request's SQL so the client side can verify pairing.
func serveV1(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req requestV1
					if err := dec.Decode(&req); err != nil {
						return
					}
					resp := responseV1{Rows: []types.Row{{types.NewString(req.SQL)}}}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr()
}

// TestCompatNewClientOldServer points the multiplexed client at a v1 server
// that never echoes IDs: the client must fall back to FIFO matching and
// still pair every response with its own request, even with many concurrent
// callers racing onto the one connection.
func TestCompatNewClientOldServer(t *testing.T) {
	addr := serveV1(t)
	c, err := Dial(addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				sql := "QUERY-" + string(rune('A'+w)) + "-" + string(rune('a'+q))
				rs, err := c.Query(sql, nil)
				if err != nil {
					errs <- err
					return
				}
				if got := rs.Rows[0][0].Str(); got != sql {
					t.Errorf("FIFO mis-pair: sent %q, got response for %q", sql, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCompatFrameRoundTrip pins the append-only frame contract at the gob
// level, both directions: a v2 frame decodes into the v1 layout (the new
// trailing fields are simply dropped) and a v1 frame decodes into the v2
// layout with the new fields zero — no error, no data loss on the shared
// fields.
func TestCompatFrameRoundTrip(t *testing.T) {
	encdec := func(in, out any) {
		t.Helper()
		r, w := net.Pipe()
		defer r.Close()
		defer w.Close()
		done := make(chan error, 1)
		go func() { done <- gob.NewEncoder(w).Encode(in) }()
		if err := gob.NewDecoder(r).Decode(out); err != nil {
			t.Fatalf("decode %T into %T: %v", in, out, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("encode %T: %v", in, err)
		}
	}

	// v2 request -> v1 decoder: ID dropped, the rest intact.
	v2req := &request{Kind: reqQuery, SQL: "SELECT 1", TraceID: "t-1", ID: 42,
		Params: map[string]types.Value{"x": types.NewInt(7)}}
	var v1req requestV1
	encdec(v2req, &v1req)
	if v1req.SQL != v2req.SQL || v1req.TraceID != "t-1" || v1req.Params["x"].Int() != 7 {
		t.Fatalf("v1 view of v2 request lost fields: %+v", v1req)
	}

	// v1 request -> v2 decoder: ID zero-valued, marking a v1 peer.
	var v2back request
	encdec(&requestV1{Kind: reqExec, SQL: "UPDATE t SET x = 1"}, &v2back)
	if v2back.ID != 0 || v2back.SQL != "UPDATE t SET x = 1" || v2back.Kind != reqExec {
		t.Fatalf("v2 view of v1 request wrong: %+v", v2back)
	}

	// v2 response -> v1 decoder and back.
	v2resp := &response{N: 3, ID: 42, Rows: []types.Row{{types.NewString("a")}}}
	var v1resp responseV1
	encdec(v2resp, &v1resp)
	if v1resp.N != 3 || len(v1resp.Rows) != 1 {
		t.Fatalf("v1 view of v2 response lost fields: %+v", v1resp)
	}
	var v2respBack response
	encdec(&responseV1{Err: "boom", SubID: 5}, &v2respBack)
	if v2respBack.ID != 0 || v2respBack.Err != "boom" || v2respBack.SubID != 5 {
		t.Fatalf("v2 view of v1 response wrong: %+v", v2respBack)
	}
}
