package wire

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mtcache/internal/metrics"
)

// dummyListener accepts connections and holds them open so Dial succeeds
// without a real wire server behind it (the pool tests never issue requests).
func dummyListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				close(done)
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		<-done
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	return ln
}

// A slow dial on one slot must not block Gets routed to other slots: dialing
// happens under per-slot state, not the pool lock. Regression test — the
// pool used to dial while holding its mutex, serializing every Get behind
// the slowest dial.
func TestPoolSlowDialDoesNotBlockOtherSlots(t *testing.T) {
	ln := dummyListener(t)
	p := NewPool(ln.Addr().String(), 2, time.Second, metrics.NewRegistry())
	defer p.Close()

	block := make(chan struct{})
	dialing := make(chan struct{})
	realDial := p.dialFn
	var once sync.Once
	p.dialFn = func(addr string, timeout time.Duration) (*Client, error) {
		var first bool
		once.Do(func() { first = true })
		if first {
			close(dialing)
			<-block // the cold slot's dial hangs until released
		}
		return realDial(addr, timeout)
	}

	// Get #1 routes to slot 0 and parks inside the slow dial.
	res1 := make(chan error, 1)
	go func() {
		_, err := p.Get()
		res1 <- err
	}()
	<-dialing

	// Get #2 routes to slot 1 and must complete while slot 0 is still
	// dialing.
	res2 := make(chan error, 1)
	go func() {
		_, err := p.Get()
		res2 <- err
	}()
	select {
	case err := <-res2:
		if err != nil {
			t.Fatalf("Get on warm path failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get blocked behind another slot's dial")
	}

	close(block)
	if err := <-res1; err != nil {
		t.Fatalf("slow-dial Get failed: %v", err)
	}
}

// A slot whose dial fails must fall back to another slot's live connection
// instead of failing the request. Regression test — Get used to return the
// dial error even when the rest of the pool held working connections.
func TestPoolDialFailureFallsBackToLiveSlot(t *testing.T) {
	ln := dummyListener(t)
	reg := metrics.NewRegistry()
	p := NewPool(ln.Addr().String(), 2, time.Second, reg)
	defer p.Close()

	// Warm slot 0 with a real connection.
	c0, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}

	// Slot 1's dial fails.
	realDial := p.dialFn
	failing := true
	p.dialFn = func(addr string, timeout time.Duration) (*Client, error) {
		if failing {
			return nil, fmt.Errorf("wire: dial refused (test)")
		}
		return realDial(addr, timeout)
	}

	c, err := p.Get() // round-robin routes this Get to the cold slot 1
	if err != nil {
		t.Fatalf("Get failed despite a live pooled connection: %v", err)
	}
	if c != c0 {
		t.Fatalf("fallback returned a different connection than the live slot")
	}
	if got := reg.Counter("wire.pool_fallbacks").Value(); got != 1 {
		t.Fatalf("pool_fallbacks = %v, want 1", got)
	}
	if got := reg.Counter("wire.dial_failures").Value(); got != 1 {
		t.Fatalf("dial_failures = %v, want 1", got)
	}

	// Once every slot is unreachable, the dial error does surface.
	p.Invalidate(c0)
	if _, err := p.Get(); err == nil {
		t.Fatal("Get succeeded with all slots dead and dials failing")
	}

	// And a recovered dial heals the pool.
	failing = false
	if _, err := p.Get(); err != nil {
		t.Fatalf("Get after dial recovery failed: %v", err)
	}
}

// Concurrent Gets with a mix of live slots, broken slots and failing dials
// must never return an error while any slot holds a live connection.
func TestPoolConcurrentGetTorture(t *testing.T) {
	ln := dummyListener(t)
	p := NewPool(ln.Addr().String(), 4, time.Second, metrics.NewRegistry())
	defer p.Close()

	// Warm one slot so a live connection always exists.
	if _, err := p.Get(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get()
				if err != nil {
					errs <- err
					return
				}
				if c == nil {
					errs <- fmt.Errorf("nil client")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Get failed: %v", err)
	}
}
