package wire

import (
	"fmt"
	"sync"
	"time"

	"mtcache/internal/metrics"
	"mtcache/internal/resilience"
)

// Pool is a sized set of multiplexed client connections to one backend
// address. Because each connection is itself multiplexed, Get never checks
// a connection out — it hands back a shared *Client round-robin, dialing
// slots lazily on first use and re-dialing slots whose connection broke.
// The pool therefore spreads concurrent load over up to size TCP
// connections while any single slow dial or dead slot costs only the
// requests routed to it.
//
// Dialing happens under a per-slot lock, never the pool lock: a slow dial
// delays only the requests round-robined onto that cold slot, while Gets
// routed to warm slots proceed untouched. And when a slot's dial fails, Get
// falls back to any other slot already holding a live connection before
// reporting failure — one bad dial must not fail a request the rest of the
// pool could serve.
//
// Metrics (on the registry passed to NewPool):
//
//	wire.pool_open          gauge: currently open pooled connections
//	wire.pool_wait_seconds  histogram: time Get spent producing a connection
//	                        (≈0 on the hot path, dial time on a cold slot)
//	wire.dial_failures      counter: failed dials
//	wire.reconnects         counter: re-dials of a slot that had a live
//	                        connection before
//	wire.pool_fallbacks     counter: Gets served by another slot's live
//	                        connection after their own slot's dial failed
type Pool struct {
	addr    string
	size    int
	timeout time.Duration
	reg     *metrics.Registry
	dialFn  func(addr string, timeout time.Duration) (*Client, error) // test seam

	slots []*poolSlot

	mu     sync.Mutex // guards next, closed
	next   int
	closed bool
}

// poolSlot is one pooled connection position. dialMu is held for the
// duration of a (re-)dial; mu only for quick reads and writes of the slot
// state, so observers (Open, fallback scans, Invalidate) never wait behind
// an in-progress dial.
type poolSlot struct {
	dialMu sync.Mutex

	mu     sync.Mutex
	c      *Client
	dialed bool // slot ever held a connection (distinguishes re-dials)
}

// client returns the slot's connection if it is live, else nil.
func (s *poolSlot) client() *Client {
	s.mu.Lock()
	c := s.c
	s.mu.Unlock()
	if c != nil && !c.Broken() {
		return c
	}
	return nil
}

// NewPool creates a pool of up to size connections to addr. No connection
// is dialed until the first Get. size < 1 is clamped to 1; reg may be nil
// to use metrics.Default. timeout is passed through to each Dial and bounds
// every round trip on the pooled connections.
func NewPool(addr string, size int, timeout time.Duration, reg *metrics.Registry) *Pool {
	if size < 1 {
		size = 1
	}
	if reg == nil {
		reg = metrics.Default
	}
	p := &Pool{
		addr:    addr,
		size:    size,
		timeout: timeout,
		reg:     reg,
		dialFn:  Dial,
		slots:   make([]*poolSlot, size),
	}
	for i := range p.slots {
		p.slots[i] = &poolSlot{}
	}
	return p
}

// Size returns the pool's slot count.
func (p *Pool) Size() int { return p.size }

// Open returns the number of currently live pooled connections.
func (p *Pool) Open() int {
	n := 0
	for _, s := range p.slots {
		if s.client() != nil {
			n++
		}
	}
	return n
}

// Get returns the next connection round-robin, dialing the slot if it is
// empty or its connection broke. Only requests routed to the cold slot wait
// on its dial; if the dial fails, Get answers with any other slot's live
// connection before giving up.
func (p *Pool) Get() (*Client, error) {
	start := time.Now()
	defer func() {
		p.reg.Histogram("wire.pool_wait_seconds").ObserveDuration(time.Since(start))
	}()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, resilience.Terminal(fmt.Errorf("wire: pool closed: %w", resilience.ErrBackendDown))
	}
	slot := p.next
	p.next = (p.next + 1) % p.size
	p.mu.Unlock()

	c, err := p.getSlot(p.slots[slot])
	if err == nil {
		return c, nil
	}
	// This slot's dial failed — scan the rest of the pool for a live
	// connection. The scan takes only the quick per-slot lock, so it never
	// waits behind another slot's in-progress dial.
	for i, s := range p.slots {
		if i == slot {
			continue
		}
		if lc := s.client(); lc != nil {
			p.reg.Counter("wire.pool_fallbacks").Add(1)
			return lc, nil
		}
	}
	return nil, err
}

// getSlot returns the slot's live connection, dialing under the slot lock
// when it is cold or broken.
func (p *Pool) getSlot(s *poolSlot) (*Client, error) {
	if c := s.client(); c != nil {
		return c, nil
	}
	s.dialMu.Lock()
	defer s.dialMu.Unlock()
	// Re-check: a Get that held dialMu ahead of us may have just re-dialed.
	s.mu.Lock()
	old := s.c
	s.mu.Unlock()
	if old != nil && !old.Broken() {
		return old, nil
	}
	if old != nil {
		old.Close()
		s.mu.Lock()
		s.c = nil
		s.mu.Unlock()
		p.publishOpen()
	}
	c, err := p.dialFn(p.addr, p.timeout)
	if err != nil {
		p.reg.Counter("wire.dial_failures").Add(1)
		return nil, err
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		c.Close()
		return nil, resilience.Terminal(fmt.Errorf("wire: pool closed: %w", resilience.ErrBackendDown))
	}
	s.mu.Lock()
	if s.dialed {
		p.reg.Counter("wire.reconnects").Add(1)
	}
	s.dialed = true
	s.c = c
	s.mu.Unlock()
	p.publishOpen()
	return c, nil
}

// Invalidate drops a broken connection from its slot so the next Get
// re-dials it. Requests still in flight on the connection fail with the
// connection; callers on other pooled connections are untouched.
func (p *Pool) Invalidate(c *Client) {
	for _, s := range p.slots {
		s.mu.Lock()
		if s.c == c {
			s.c = nil
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
	}
	p.publishOpen()
	c.Close()
}

// Close closes every pooled connection and refuses further Gets.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	var first error
	for _, s := range p.slots {
		s.mu.Lock()
		c := s.c
		s.c = nil
		s.mu.Unlock()
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	p.publishOpen()
	return first
}

func (p *Pool) publishOpen() {
	p.reg.Gauge("wire.pool_open").Set(float64(p.Open()))
}
