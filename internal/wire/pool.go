package wire

import (
	"fmt"
	"sync"
	"time"

	"mtcache/internal/metrics"
	"mtcache/internal/resilience"
)

// Pool is a sized set of multiplexed client connections to one backend
// address. Because each connection is itself multiplexed, Get never checks
// a connection out — it hands back a shared *Client round-robin, dialing
// slots lazily on first use and re-dialing slots whose connection broke.
// The pool therefore spreads concurrent load over up to size TCP
// connections while any single slow dial or dead slot costs only the
// requests routed to it.
//
// Metrics (on the registry passed to NewPool):
//
//	wire.pool_open          gauge: currently open pooled connections
//	wire.pool_wait_seconds  histogram: time Get spent producing a connection
//	                        (≈0 on the hot path, dial time on a cold slot)
//	wire.dial_failures      counter: failed dials
//	wire.reconnects         counter: re-dials of a slot that had a live
//	                        connection before
type Pool struct {
	addr    string
	size    int
	timeout time.Duration
	reg     *metrics.Registry

	mu     sync.Mutex
	slots  []*Client
	dialed []bool // slot ever held a connection (distinguishes re-dials)
	next   int
	closed bool
}

// NewPool creates a pool of up to size connections to addr. No connection
// is dialed until the first Get. size < 1 is clamped to 1; reg may be nil
// to use metrics.Default. timeout is passed through to each Dial and bounds
// every round trip on the pooled connections.
func NewPool(addr string, size int, timeout time.Duration, reg *metrics.Registry) *Pool {
	if size < 1 {
		size = 1
	}
	if reg == nil {
		reg = metrics.Default
	}
	return &Pool{
		addr:    addr,
		size:    size,
		timeout: timeout,
		reg:     reg,
		slots:   make([]*Client, size),
		dialed:  make([]bool, size),
	}
}

// Size returns the pool's slot count.
func (p *Pool) Size() int { return p.size }

// Open returns the number of currently live pooled connections.
func (p *Pool) Open() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.openLocked()
}

func (p *Pool) openLocked() int {
	n := 0
	for _, c := range p.slots {
		if c != nil && !c.Broken() {
			n++
		}
	}
	return n
}

// Get returns the next connection round-robin, dialing the slot if it is
// empty or its connection broke. Dialing happens under the pool lock: a
// slow dial briefly delays other Gets, bounded by the dial timeout —
// acceptable because a dial only happens when a slot is cold or the backend
// just dropped a connection, exactly when callers are about to retry
// anyway.
func (p *Pool) Get() (*Client, error) {
	start := time.Now()
	defer func() {
		p.reg.Histogram("wire.pool_wait_seconds").ObserveDuration(time.Since(start))
	}()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, resilience.Terminal(fmt.Errorf("wire: pool closed: %w", resilience.ErrBackendDown))
	}
	slot := p.next
	p.next = (p.next + 1) % p.size
	if c := p.slots[slot]; c != nil {
		if !c.Broken() {
			return c, nil
		}
		c.Close()
		p.slots[slot] = nil
		p.publishOpenLocked()
	}
	c, err := Dial(p.addr, p.timeout)
	if err != nil {
		p.reg.Counter("wire.dial_failures").Add(1)
		return nil, err
	}
	if p.dialed[slot] {
		p.reg.Counter("wire.reconnects").Add(1)
	}
	p.dialed[slot] = true
	p.slots[slot] = c
	p.publishOpenLocked()
	return c, nil
}

// Invalidate drops a broken connection from its slot so the next Get
// re-dials it. Requests still in flight on the connection fail with the
// connection; callers on other pooled connections are untouched.
func (p *Pool) Invalidate(c *Client) {
	p.mu.Lock()
	for i, s := range p.slots {
		if s == c {
			p.slots[i] = nil
			break
		}
	}
	p.publishOpenLocked()
	p.mu.Unlock()
	c.Close()
}

// Close closes every pooled connection and refuses further Gets.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	conns := make([]*Client, 0, len(p.slots))
	for i, c := range p.slots {
		if c != nil {
			conns = append(conns, c)
			p.slots[i] = nil
		}
	}
	p.publishOpenLocked()
	p.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (p *Pool) publishOpenLocked() {
	p.reg.Gauge("wire.pool_open").Set(float64(p.openLocked()))
}
