package wire

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/core"
	"mtcache/internal/engine"
	"mtcache/internal/metrics"
	"mtcache/internal/opt"
	"mtcache/internal/repl"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
)

// RemoteCache is an MTCache server connected to its backend over TCP. It
// mirrors core.CacheServer but uses pull subscriptions: a local distribution
// agent periodically pulls committed transactions and applies them.
//
// The agent is fault-tolerant: a failed pull leaves the subscription's
// batches queued on the backend (they are only deleted once acknowledged by
// a later pull), a failing subscription does not block the others, and
// batches are applied exactly once and in LSN order — each subscription
// tracks the last applied LSN and skips re-delivered batches.
type RemoteCache struct {
	DB     *engine.Database
	client BackendClient
	reg    *metrics.Registry

	// pullMu serializes whole pull-and-apply rounds. With a multiplexed
	// transport a manual Pull can genuinely overlap the background agent's
	// round; overlapping rounds would read the same lastLSN and apply the
	// same batch twice.
	pullMu sync.Mutex

	mu     sync.Mutex
	pulls  []pullSub
	stopCh chan struct{}
	wg     sync.WaitGroup
}

type pullSub struct {
	subID    int
	view     string
	lastPull time.Time
	lastLSN  storage.LSN // highest LSN applied; pulls ack and dedup with it
}

// NewRemoteCache dials nothing itself: pass a connected BackendClient (a
// bare *Client, or a *ResilientClient for retry/backoff/re-dial). It
// performs the shadow setup over the wire and registers the cached-view
// hook.
func NewRemoteCache(name string, client BackendClient, options *opt.Options) (*RemoteCache, error) {
	db := engine.New(engine.Config{Name: name, Role: engine.Cache, Remote: client, Options: options})
	rc := &RemoteCache{DB: db, client: client, reg: metrics.Default}
	data, err := client.Snapshot()
	if err != nil {
		return nil, err
	}
	snap, err := catalog.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := core.ImportSnapshotInto(db, snap); err != nil {
		return nil, err
	}
	db.OnCachedViewCreate(rc.provision)
	db.SetStalenessProbe(func(view string) (float64, bool) {
		rc.mu.Lock()
		defer rc.mu.Unlock()
		for _, p := range rc.pulls {
			if strings.EqualFold(p.view, view) {
				if p.lastPull.IsZero() {
					return 0, false
				}
				return time.Since(p.lastPull).Seconds(), true
			}
		}
		return 0, false
	})
	return rc, nil
}

func (rc *RemoteCache) provision(view *catalog.Table) error {
	def := view.ViewDef
	if len(def.From) != 1 {
		return fmt.Errorf("wire: cached views must be select-project over one table")
	}
	tn, ok := def.From[0].(*sql.TableName)
	if !ok {
		return fmt.Errorf("wire: cached view source must be a table or materialized view")
	}
	var cols []string
	for _, item := range def.Columns {
		if item.Star {
			cols = nil
			break
		}
		ref, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			return fmt.Errorf("wire: cached views may project only plain columns")
		}
		cols = append(cols, ref.Name)
	}
	filter := ""
	if def.Where != nil {
		filter = sql.DeparseExpr(def.Where)
	}
	subID, startLSN, rows, err := rc.client.Provision(tn.Name, cols, filter, rc.DB.Name+"."+view.Name)
	if err != nil {
		return err
	}
	// Initial population.
	tx := rc.DB.Store().Begin(true)
	for _, row := range rows {
		if _, err := tx.Insert(view.Name, row); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.CommitUnlogged(); err != nil {
		return err
	}
	if err := rc.DB.AnalyzeTable(view.Name); err != nil {
		return err
	}
	rc.mu.Lock()
	// startLSN is the first LSN the change stream will produce; lastLSN holds
	// the highest LSN already applied, so seed it one below the stream start.
	rc.pulls = append(rc.pulls, pullSub{subID: subID, view: view.Name, lastPull: time.Now(), lastLSN: startLSN - 1})
	rc.mu.Unlock()
	return nil
}

// CreateCachedView runs a CREATE CACHED VIEW statement.
func (rc *RemoteCache) CreateCachedView(ddl string) error {
	_, err := rc.DB.Exec(ddl, nil)
	return err
}

// CopyProcedureText installs a procedure from source text.
func (rc *RemoteCache) CopyProcedureText(text string) error {
	return rc.DB.CopyProcedureFrom(text)
}

// Pull performs one pull-and-apply round for every subscription and returns
// the number of transactions applied. A failing subscription is skipped —
// its unacknowledged batches stay queued on the backend and are re-delivered
// next round — and the remaining subscriptions still pull. The first error
// encountered is returned alongside the applied count.
func (rc *RemoteCache) Pull() (int, error) {
	rc.pullMu.Lock()
	defer rc.pullMu.Unlock()
	rc.mu.Lock()
	pulls := append([]pullSub(nil), rc.pulls...)
	rc.mu.Unlock()
	total := 0
	var firstErr error
	pullStart := time.Now()
	defer func() {
		rc.reg.Histogram("repl.pull_seconds").ObserveDuration(time.Since(pullStart))
	}()
	for i, p := range pulls {
		batches, err := rc.client.Pull(p.subID, 0, p.lastLSN)
		if err != nil {
			rc.reg.Counter("wire.pull_failures").Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		applied := p.lastLSN
		for _, b := range batches {
			if b.LSN <= applied {
				// Re-delivered batch from a pull whose response was lost —
				// already applied; acknowledging happens on the next pull.
				rc.reg.Counter("wire.pull_redelivered").Add(1)
				continue
			}
			if err := rc.applyBatch(p.view, b); err != nil {
				// Stop this subscription at the failed batch to preserve LSN
				// order; everything unapplied is still queued on the backend.
				rc.reg.Counter("wire.pull_failures").Add(1)
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			applied = b.LSN
			total++
		}
		rc.mu.Lock()
		if i < len(rc.pulls) && rc.pulls[i].subID == p.subID {
			rc.pulls[i].lastLSN = applied
			rc.pulls[i].lastPull = time.Now()
		}
		rc.mu.Unlock()
	}
	rc.publishLag()
	return total, firstErr
}

// publishLag refreshes the per-view replication-lag gauges: seconds since
// each subscription's last successful pull (how stale the view may be).
func (rc *RemoteCache) publishLag() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, p := range rc.pulls {
		if p.lastPull.IsZero() {
			continue
		}
		rc.reg.Gauge("repl.lag_seconds." + p.view).Set(time.Since(p.lastPull).Seconds())
	}
}

func (rc *RemoteCache) applyBatch(view string, b repl.TxnBatch) error {
	if len(b.Changes) > 0 && !strings.EqualFold(b.Changes[0].Table, view) {
		// Change records carry the source table name; the target is the view.
		for i := range b.Changes {
			b.Changes[i].Table = view
		}
	}
	return repl.ApplyBatch(rc.DB, view, b)
}

// LastLSN reports the highest LSN applied for a cached view's subscription
// (0 when the view has no subscription).
func (rc *RemoteCache) LastLSN(view string) storage.LSN {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, p := range rc.pulls {
		if strings.EqualFold(p.view, view) {
			return p.lastLSN
		}
	}
	return 0
}

// StartPulling launches the background pull agent. The agent survives failed
// pulls: an error leaves the subscription's state untouched (the backend
// re-delivers unacknowledged batches) and the agent simply retries on its
// next tick.
func (rc *RemoteCache) StartPulling(interval time.Duration) {
	rc.mu.Lock()
	if rc.stopCh != nil {
		rc.mu.Unlock()
		return
	}
	rc.stopCh = make(chan struct{})
	stop := rc.stopCh
	rc.mu.Unlock()
	rc.wg.Add(1)
	go func() {
		defer rc.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				rc.Pull() //nolint:errcheck — agent retries next tick
			}
		}
	}()
}

// StopPulling halts the pull agent.
func (rc *RemoteCache) StopPulling() {
	rc.mu.Lock()
	if rc.stopCh == nil {
		rc.mu.Unlock()
		return
	}
	close(rc.stopCh)
	rc.stopCh = nil
	rc.mu.Unlock()
	rc.wg.Wait()
}
