package wire

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/core"
	"mtcache/internal/engine"
	"mtcache/internal/metrics"
	"mtcache/internal/opt"
	"mtcache/internal/querystore"
	"mtcache/internal/repl"
	"mtcache/internal/sql"
	"mtcache/internal/storage"
	"mtcache/internal/types"
)

// RemoteCache is an MTCache server connected to its backend over TCP. It
// mirrors core.CacheServer but uses pull subscriptions: a local distribution
// agent periodically pulls committed transactions and applies them.
//
// The agent is fault-tolerant: a failed pull leaves the subscription's
// batches queued on the backend (they are only deleted once acknowledged by
// a later pull), a failing subscription does not block the others, and
// batches are applied exactly once and in LSN order — each subscription
// tracks the last applied LSN and skips re-delivered batches.
type RemoteCache struct {
	DB     *engine.Database
	client BackendClient
	reg    *metrics.Registry

	// pullMu serializes whole pull-and-apply rounds. With a multiplexed
	// transport a manual Pull can genuinely overlap the background agent's
	// round; overlapping rounds would read the same lastLSN and apply the
	// same batch twice.
	pullMu sync.Mutex

	mu     sync.Mutex
	pulls  []pullSub
	stopCh chan struct{}
	wg     sync.WaitGroup

	// Durable-cache state (nil/empty for a purely in-memory cache). recovered
	// holds the loaded checkpoint's per-view state until the view's
	// provisioning hook consumes it: a view found there resumes its
	// subscription at the checkpointed LSN instead of reseeding.
	dataDir   string
	recovered map[string]*cacheViewState
}

type pullSub struct {
	subID    int
	view     string
	lastPull time.Time
	lastLSN  storage.LSN // highest LSN applied; pulls ack and dedup with it
	// through is the LSN this subscription's view is known current through:
	// lastLSN plus the pull responses' ThroughLSN, which also advances past
	// commits that never touch the view. Without it, a cache's applied
	// position would stall at the last write that happened to hit one of its
	// views, wedging every session gated on a later watermark.
	through storage.LSN
}

// NewRemoteCache dials nothing itself: pass a connected BackendClient (a
// bare *Client, or a *ResilientClient for retry/backoff/re-dial). It
// performs the shadow setup over the wire and registers the cached-view
// hook.
func NewRemoteCache(name string, client BackendClient, options *opt.Options) (*RemoteCache, error) {
	return newRemoteCache(name, client, options, "")
}

// NewRemoteCacheDurable is NewRemoteCache plus a data directory the cache
// checkpoints its state to (see Checkpoint). When the directory already
// holds a checkpoint from a previous run, cached views re-created with the
// same definitions restore their rows from it and resume their change
// streams at the checkpointed LSN — no reseed over the wire — as long as the
// backend still retains that log position.
func NewRemoteCacheDurable(name string, client BackendClient, options *opt.Options, dataDir string) (*RemoteCache, error) {
	return newRemoteCache(name, client, options, dataDir)
}

func newRemoteCache(name string, client BackendClient, options *opt.Options, dataDir string) (*RemoteCache, error) {
	db := engine.New(engine.Config{Name: name, Role: engine.Cache, Remote: client, Options: options})
	rc := &RemoteCache{DB: db, client: client, reg: metrics.Default, dataDir: dataDir}
	if dataDir != "" {
		ck, err := loadCacheCheckpoint(dataDir)
		if err != nil {
			// A damaged checkpoint costs a reseed, never correctness: the
			// backend is the source of truth.
			metrics.Default.Counter("wire.cache_ckpt_errors").Add(1)
		} else if ck != nil {
			rc.recovered = make(map[string]*cacheViewState, len(ck.Views))
			for i := range ck.Views {
				v := &ck.Views[i]
				rc.recovered[strings.ToLower(v.Name)] = v
			}
		}
	}
	data, err := client.Snapshot()
	if err != nil {
		return nil, err
	}
	snap, err := catalog.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := core.ImportSnapshotInto(db, snap); err != nil {
		return nil, err
	}
	db.OnCachedViewCreate(rc.provision)
	// Session gate: MinLSN-gated requests wait for replication to reach the
	// session's watermark (kicking pulls) instead of serving stale rows.
	db.SetSessionGate(rc.WaitApplied)
	db.SetStalenessProbe(func(view string) (float64, bool) {
		rc.mu.Lock()
		defer rc.mu.Unlock()
		for _, p := range rc.pulls {
			if strings.EqualFold(p.view, view) {
				if p.lastPull.IsZero() {
					return 0, false
				}
				return time.Since(p.lastPull).Seconds(), true
			}
		}
		return 0, false
	})
	// Cache-side sys.repl_status: one row per pull subscription.
	_ = db.RegisterVirtualTable("sys.repl_status", engine.ReplStatusColumns(), func() []types.Row {
		rc.mu.Lock()
		defer rc.mu.Unlock()
		rows := make([]types.Row, 0, len(rc.pulls))
		for _, p := range rc.pulls {
			stale := -1.0
			if !p.lastPull.IsZero() {
				stale = time.Since(p.lastPull).Seconds()
			}
			rows = append(rows, types.Row{
				types.NewString(p.view),
				types.NewString(fmt.Sprintf("pull sub %d", p.subID)),
				types.NewInt(0), // pending batches are queued backend-side
				types.NewInt(0),
				types.NewString(""),
				types.NewInt(int64(p.lastLSN)),
				types.NewFloat(stale),
			})
		}
		return rows
	})
	return rc, nil
}

// viewSource extracts the (table, columns, filter) a cached view publishes
// over, shared by the provision and resume paths.
func viewSource(view *catalog.Table) (table string, cols []string, filter string, err error) {
	def := view.ViewDef
	if len(def.From) != 1 {
		return "", nil, "", fmt.Errorf("wire: cached views must be select-project over one table")
	}
	tn, ok := def.From[0].(*sql.TableName)
	if !ok {
		return "", nil, "", fmt.Errorf("wire: cached view source must be a table or materialized view")
	}
	for _, item := range def.Columns {
		if item.Star {
			cols = nil
			break
		}
		ref, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			return "", nil, "", fmt.Errorf("wire: cached views may project only plain columns")
		}
		cols = append(cols, ref.Name)
	}
	if def.Where != nil {
		filter = sql.DeparseExpr(def.Where)
	}
	return tn.Name, cols, filter, nil
}

func (rc *RemoteCache) provision(view *catalog.Table) error {
	table, cols, filter, err := viewSource(view)
	if err != nil {
		return err
	}
	subName := rc.DB.Name + "." + view.Name

	// A view present in the loaded checkpoint tries to resume its change
	// stream at the checkpointed position before falling back to a reseed.
	// Resume is attempted before any population: on a miss there is nothing
	// to undo.
	if st, ok := rc.recovered[strings.ToLower(view.Name)]; ok {
		delete(rc.recovered, strings.ToLower(view.Name))
		subID, resumed, rerr := rc.client.Resume(table, cols, filter, subName, st.LastLSN+1)
		if rerr == nil && resumed {
			if err := rc.populate(view.Name, st.Rows); err != nil {
				return err
			}
			rc.reg.Counter("wire.view_resumed").Add(1)
			querystore.Emit("view_resumed", "view", view.Name, "lsn", fmt.Sprint(st.LastLSN))
			rc.mu.Lock()
			rc.pulls = append(rc.pulls, pullSub{subID: subID, view: view.Name, lastPull: time.Now(), lastLSN: st.LastLSN, through: st.LastLSN})
			rc.mu.Unlock()
			return nil
		}
		if rerr != nil {
			return rerr
		}
		// resumed == false: the backend cannot serve the checkpointed
		// position anymore; fall through to a fresh snapshot.
	}

	subID, startLSN, rows, err := rc.client.Provision(table, cols, filter, subName)
	if err != nil {
		return err
	}
	if err := rc.populate(view.Name, rows); err != nil {
		return err
	}
	rc.reg.Counter("wire.view_seeded").Add(1)
	querystore.Emit("view_seeded", "view", view.Name, "rows", fmt.Sprint(len(rows)))
	rc.mu.Lock()
	// startLSN is the first LSN the change stream will produce; lastLSN holds
	// the highest LSN already applied, so seed it one below the stream start.
	rc.pulls = append(rc.pulls, pullSub{subID: subID, view: view.Name, lastPull: time.Now(), lastLSN: startLSN - 1, through: startLSN - 1})
	rc.mu.Unlock()
	return nil
}

// populate bulk-inserts a view's initial rows (from a backend snapshot or a
// local checkpoint) and refreshes its statistics.
func (rc *RemoteCache) populate(view string, rows []types.Row) error {
	tx := rc.DB.Store().Begin(true)
	for _, row := range rows {
		if _, err := tx.Insert(view, row); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.CommitUnlogged(); err != nil {
		return err
	}
	// Seeding replaces the view's contents; intermediates derived from it
	// are stale.
	rc.DB.InvalidateIntermediates(view)
	return rc.DB.AnalyzeTable(view)
}

// CreateCachedView runs a CREATE CACHED VIEW statement.
func (rc *RemoteCache) CreateCachedView(ddl string) error {
	_, err := rc.DB.Exec(ddl, nil)
	return err
}

// CopyProcedureText installs a procedure from source text.
func (rc *RemoteCache) CopyProcedureText(text string) error {
	return rc.DB.CopyProcedureFrom(text)
}

// Pull performs one pull-and-apply round for every subscription and returns
// the number of transactions applied. A failing subscription is skipped —
// its unacknowledged batches stay queued on the backend and are re-delivered
// next round — and the remaining subscriptions still pull. The first error
// encountered is returned alongside the applied count.
func (rc *RemoteCache) Pull() (int, error) {
	rc.pullMu.Lock()
	defer rc.pullMu.Unlock()
	rc.mu.Lock()
	pulls := append([]pullSub(nil), rc.pulls...)
	rc.mu.Unlock()
	total := 0
	var firstErr error
	pullStart := time.Now()
	defer func() {
		rc.reg.Histogram("repl.pull_seconds").ObserveDuration(time.Since(pullStart))
	}()
	for i, p := range pulls {
		batches, through, err := rc.client.Pull(p.subID, 0, p.lastLSN)
		if err != nil {
			rc.reg.Counter("wire.pull_failures").Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		applied := p.lastLSN
		applyOK := true
		for _, b := range batches {
			if b.LSN <= applied {
				// Re-delivered batch from a pull whose response was lost —
				// already applied; acknowledging happens on the next pull.
				rc.reg.Counter("wire.pull_redelivered").Add(1)
				continue
			}
			if err := rc.applyBatch(p.view, b); err != nil {
				// Stop this subscription at the failed batch to preserve LSN
				// order; everything unapplied is still queued on the backend.
				rc.reg.Counter("wire.pull_failures").Add(1)
				applyOK = false
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			applied = b.LSN
			total++
		}
		rc.mu.Lock()
		if i < len(rc.pulls) && rc.pulls[i].subID == p.subID {
			rc.pulls[i].lastLSN = applied
			// The view is current through the stream-completeness position
			// only when everything delivered was applied; a failed apply caps
			// it at the last applied batch.
			cur := applied
			if applyOK && through > cur {
				cur = through
			}
			if cur > rc.pulls[i].through {
				rc.pulls[i].through = cur
			}
			rc.pulls[i].lastPull = time.Now()
		}
		rc.mu.Unlock()
	}
	rc.publishLag()
	return total, firstErr
}

// publishLag refreshes the per-view replication-lag gauges: seconds since
// each subscription's last successful pull (how stale the view may be).
func (rc *RemoteCache) publishLag() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, p := range rc.pulls {
		if p.lastPull.IsZero() {
			continue
		}
		rc.reg.Gauge("repl.lag_seconds." + p.view).Set(time.Since(p.lastPull).Seconds())
	}
}

func (rc *RemoteCache) applyBatch(view string, b repl.TxnBatch) error {
	if len(b.Changes) > 0 && !strings.EqualFold(b.Changes[0].Table, view) {
		// Change records carry the source table name; the target is the view.
		for i := range b.Changes {
			b.Changes[i].Table = view
		}
	}
	return repl.ApplyBatch(rc.DB, view, b)
}

// appliedFloor is the AppliedLSN answer for a cache with no pull
// subscriptions: such a cache holds no replicated data at all, every query
// forwards to the backend, so it is vacuously current at any watermark.
const appliedFloor = storage.LSN(1) << 62

// AppliedLSN reports the LSN this cache's replicated data is current
// through: the floor across its pull subscriptions' completeness positions.
// A session whose last write committed at or below this value reads its own
// writes from this cache.
func (rc *RemoteCache) AppliedLSN() storage.LSN {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	min := appliedFloor
	for _, p := range rc.pulls {
		cur := p.through
		if p.lastLSN > cur {
			cur = p.lastLSN
		}
		if cur < min {
			min = cur
		}
	}
	return min
}

// WaitApplied blocks until the cache has applied min, kicking pull rounds
// instead of waiting for the background agent's next tick, and gives up when
// the budget runs out. It returns the applied position reached and whether
// it satisfies min — the engine's session gate (engine.SetSessionGate).
func (rc *RemoteCache) WaitApplied(min storage.LSN, budget time.Duration) (storage.LSN, bool) {
	if a := rc.AppliedLSN(); a >= min {
		return a, true
	}
	deadline := time.Now().Add(budget)
	for {
		rc.Pull() //nolint:errcheck — a failed kick only delays the recheck
		if a := rc.AppliedLSN(); a >= min {
			return a, true
		}
		if !time.Now().Before(deadline) {
			return rc.AppliedLSN(), false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// LastLSN reports the highest LSN applied for a cached view's subscription
// (0 when the view has no subscription).
func (rc *RemoteCache) LastLSN(view string) storage.LSN {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, p := range rc.pulls {
		if strings.EqualFold(p.view, view) {
			return p.lastLSN
		}
	}
	return 0
}

// Checkpoint writes the cache's durable state file: every subscribed view's
// rows plus the LSN they are current through. It runs under pullMu so no
// pull round is half-applied — the rows and cursors are mutually consistent,
// which is what lets a restart resume the stream at LastLSN+1 with no gap
// and no double-apply. Requires a data directory (NewRemoteCacheDurable).
func (rc *RemoteCache) Checkpoint() error {
	if rc.dataDir == "" {
		return fmt.Errorf("wire: cache has no data directory")
	}
	rc.pullMu.Lock()
	defer rc.pullMu.Unlock()
	start := time.Now()
	rc.mu.Lock()
	pulls := append([]pullSub(nil), rc.pulls...)
	rc.mu.Unlock()

	ck := &cacheCheckpoint{}
	tx := rc.DB.Store().Begin(false)
	for _, p := range pulls {
		tv := tx.Table(p.view)
		if tv == nil {
			continue
		}
		ck.Views = append(ck.Views, cacheViewState{Name: p.view, LastLSN: p.lastLSN, Rows: tv.Rows()})
	}
	tx.Abort()
	if err := writeCacheCheckpoint(rc.dataDir, ck); err != nil {
		return err
	}
	rc.reg.Counter("wire.cache_checkpoints").Add(1)
	querystore.Emit("cache_checkpoint", "views", fmt.Sprint(len(ck.Views)))
	rc.reg.Histogram("wire.cache_checkpoint_seconds").ObserveDuration(time.Since(start))
	return nil
}

// StartPulling launches the background pull agent. The agent survives failed
// pulls: an error leaves the subscription's state untouched (the backend
// re-delivers unacknowledged batches) and the agent simply retries on its
// next tick.
func (rc *RemoteCache) StartPulling(interval time.Duration) {
	rc.mu.Lock()
	if rc.stopCh != nil {
		rc.mu.Unlock()
		return
	}
	rc.stopCh = make(chan struct{})
	stop := rc.stopCh
	rc.mu.Unlock()
	rc.wg.Add(1)
	go func() {
		defer rc.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				rc.Pull() //nolint:errcheck — agent retries next tick
			}
		}
	}()
}

// StopPulling halts the pull agent.
func (rc *RemoteCache) StopPulling() {
	rc.mu.Lock()
	if rc.stopCh == nil {
		rc.mu.Unlock()
		return
	}
	close(rc.stopCh)
	rc.stopCh = nil
	rc.mu.Unlock()
	rc.wg.Wait()
}
