package wire

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mtcache/internal/catalog"
	"mtcache/internal/core"
	"mtcache/internal/engine"
	"mtcache/internal/opt"
	"mtcache/internal/repl"
	"mtcache/internal/sql"
)

// RemoteCache is an MTCache server connected to its backend over TCP. It
// mirrors core.CacheServer but uses pull subscriptions: a local distribution
// agent periodically pulls committed transactions and applies them.
type RemoteCache struct {
	DB     *engine.Database
	client *Client

	mu     sync.Mutex
	pulls  []pullSub
	stopCh chan struct{}
	wg     sync.WaitGroup
}

type pullSub struct {
	subID    int
	view     string
	lastPull time.Time
}

// NewRemoteCache dials nothing itself: pass a connected Client. It performs
// the shadow setup over the wire and registers the cached-view hook.
func NewRemoteCache(name string, client *Client, options *opt.Options) (*RemoteCache, error) {
	db := engine.New(engine.Config{Name: name, Role: engine.Cache, Remote: client, Options: options})
	rc := &RemoteCache{DB: db, client: client}
	data, err := client.Snapshot()
	if err != nil {
		return nil, err
	}
	snap, err := catalog.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := core.ImportSnapshotInto(db, snap); err != nil {
		return nil, err
	}
	db.OnCachedViewCreate(rc.provision)
	db.SetStalenessProbe(func(view string) (float64, bool) {
		rc.mu.Lock()
		defer rc.mu.Unlock()
		for _, p := range rc.pulls {
			if strings.EqualFold(p.view, view) {
				if p.lastPull.IsZero() {
					return 0, false
				}
				return time.Since(p.lastPull).Seconds(), true
			}
		}
		return 0, false
	})
	return rc, nil
}

func (rc *RemoteCache) provision(view *catalog.Table) error {
	def := view.ViewDef
	if len(def.From) != 1 {
		return fmt.Errorf("wire: cached views must be select-project over one table")
	}
	tn, ok := def.From[0].(*sql.TableName)
	if !ok {
		return fmt.Errorf("wire: cached view source must be a table or materialized view")
	}
	var cols []string
	for _, item := range def.Columns {
		if item.Star {
			cols = nil
			break
		}
		ref, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			return fmt.Errorf("wire: cached views may project only plain columns")
		}
		cols = append(cols, ref.Name)
	}
	filter := ""
	if def.Where != nil {
		filter = sql.DeparseExpr(def.Where)
	}
	subID, rows, err := rc.client.Provision(tn.Name, cols, filter, rc.DB.Name+"."+view.Name)
	if err != nil {
		return err
	}
	// Initial population.
	tx := rc.DB.Store().Begin(true)
	for _, row := range rows {
		if _, err := tx.Insert(view.Name, row); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.CommitUnlogged(); err != nil {
		return err
	}
	if err := rc.DB.AnalyzeTable(view.Name); err != nil {
		return err
	}
	rc.mu.Lock()
	rc.pulls = append(rc.pulls, pullSub{subID: subID, view: view.Name, lastPull: time.Now()})
	rc.mu.Unlock()
	return nil
}

// CreateCachedView runs a CREATE CACHED VIEW statement.
func (rc *RemoteCache) CreateCachedView(ddl string) error {
	_, err := rc.DB.Exec(ddl, nil)
	return err
}

// CopyProcedureText installs a procedure from source text.
func (rc *RemoteCache) CopyProcedureText(text string) error {
	return rc.DB.CopyProcedureFrom(text)
}

// Pull performs one pull-and-apply round for every subscription and returns
// the number of transactions applied.
func (rc *RemoteCache) Pull() (int, error) {
	rc.mu.Lock()
	pulls := append([]pullSub(nil), rc.pulls...)
	rc.mu.Unlock()
	total := 0
	for i, p := range pulls {
		batches, err := rc.client.Pull(p.subID, 0)
		if err != nil {
			return total, err
		}
		for _, b := range batches {
			if err := rc.applyBatch(p.view, b); err != nil {
				return total, err
			}
			total++
		}
		rc.mu.Lock()
		if i < len(rc.pulls) {
			rc.pulls[i].lastPull = time.Now()
		}
		rc.mu.Unlock()
	}
	return total, nil
}

func (rc *RemoteCache) applyBatch(view string, b repl.TxnBatch) error {
	if !strings.EqualFold(b.Changes[0].Table, view) && len(b.Changes) > 0 {
		// Change records carry the source table name; the target is the view.
		for i := range b.Changes {
			b.Changes[i].Table = view
		}
	}
	return repl.ApplyBatch(rc.DB, view, b)
}

// StartPulling launches the background pull agent.
func (rc *RemoteCache) StartPulling(interval time.Duration) {
	rc.mu.Lock()
	if rc.stopCh != nil {
		rc.mu.Unlock()
		return
	}
	rc.stopCh = make(chan struct{})
	stop := rc.stopCh
	rc.mu.Unlock()
	rc.wg.Add(1)
	go func() {
		defer rc.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				rc.Pull() //nolint:errcheck — agent retries next tick
			}
		}
	}()
}

// StopPulling halts the pull agent.
func (rc *RemoteCache) StopPulling() {
	rc.mu.Lock()
	if rc.stopCh == nil {
		rc.mu.Unlock()
		return
	}
	close(rc.stopCh)
	rc.stopCh = nil
	rc.mu.Unlock()
	rc.wg.Wait()
}
